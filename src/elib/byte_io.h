// Big-endian (network order) byte serialization helpers used by all packet
// header codecs.

#ifndef SRC_ELIB_BYTE_IO_H_
#define SRC_ELIB_BYTE_IO_H_

#include <cstdint>
#include <cstring>

namespace escort {

inline void PutU8(uint8_t* p, uint8_t v) { p[0] = v; }

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline uint8_t GetU8(const uint8_t* p) { return p[0]; }

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>((static_cast<uint16_t>(p[0]) << 8) | p[1]);
}

inline uint32_t GetU32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

// RFC 1071 internet checksum over `len` bytes, with an optional starting
// partial sum (for pseudo-headers).
uint16_t InternetChecksum(const uint8_t* data, size_t len, uint32_t initial = 0);

// Partial (un-folded) sum usable as `initial` above.
uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t acc = 0);

}  // namespace escort

#endif  // SRC_ELIB_BYTE_IO_H_
