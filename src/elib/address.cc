#include "src/elib/address.h"

#include <cstdio>
#include <tuple>

namespace escort {

MacAddr MacAddr::FromIndex(uint64_t index) {
  MacAddr mac;
  mac.bytes[0] = 0x02;  // locally administered
  mac.bytes[1] = 0x00;
  mac.bytes[2] = static_cast<uint8_t>(index >> 24);
  mac.bytes[3] = static_cast<uint8_t>(index >> 16);
  mac.bytes[4] = static_cast<uint8_t>(index >> 8);
  mac.bytes[5] = static_cast<uint8_t>(index);
  return mac;
}

bool MacAddr::IsBroadcast() const { return *this == Broadcast(); }

std::string MacAddr::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1], bytes[2],
                bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string Ip4Addr::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value >> 24, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

bool Subnet::Contains(Ip4Addr addr) const {
  if (prefix_len <= 0) {
    return true;
  }
  uint32_t mask = prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
  return (addr.value & mask) == (base.value & mask);
}

std::string Subnet::ToString() const { return base.ToString() + "/" + std::to_string(prefix_len); }

bool ConnKey::operator<(const ConnKey& other) const {
  return std::tie(local_addr.value, local_port, remote_addr.value, remote_port) <
         std::tie(other.local_addr.value, other.local_port, other.remote_addr.value,
                  other.remote_port);
}

}  // namespace escort
