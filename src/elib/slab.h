// Generation-tagged slab tables: the flyweight-connection substrate.
//
// A Slab<T> owns its values in fixed-size chunks and addresses them by
// ConnHandle{index, gen} instead of by pointer. This is the classic TCB-table
// idiom (an array of control blocks indexed by connection id): creation pops
// a freelist slot in O(1), lookup is two array indexations, and release
// bumps the slot's generation so every outstanding handle to the old
// incarnation goes stale *immediately* — a deferred closure that captured a
// handle cannot act on a reincarnated slot the way a captured key (ConnKey,
// port number) can match a brand-new connection by coincidence.
//
// Why not shared_ptr graphs: at 10^6 simulated connections the per-object
// control blocks, the atomic refcount traffic and the pointer-chasing
// dominate both memory and time. A slab slot is inline storage reused across
// incarnations (chunks are never returned until the slab dies), so
// bytes/connection is sizeof(Slot) + amortized chunk bookkeeping and the
// high-water mark is exact — the memory block in the bench JSON reads it
// straight off the table.
//
// Concurrency contract: a slab is owned by one shard context (the testbed
// gives each shard its own client-peer slab; the server's PCB slab lives on
// stream 0). No internal locking — ESCORT_SHARD_CONTEXT, same rules as the
// shard heaps.
//
// Slot-struct contract (EL013, tools/lint/escort_lint.py): a type stored in
// a slab (marked ESCORT_SLAB_SLOT at its definition) must not own
// shared_ptr members — shared ownership from inside a reusable slot defeats
// the generation tag (the referent survives Release) and reintroduces the
// refcount webs the slab exists to remove.

#ifndef SRC_ELIB_SLAB_H_
#define SRC_ELIB_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace escort {

// Generation-tagged reference to a slab slot. gen == 0 is the null handle
// (live generations start at 1). Copy it freely into deferred closures and
// revalidate with Slab::Find at fire time (the EA001 blessed idiom).
struct ConnHandle {
  uint32_t index = 0;
  uint32_t gen = 0;

  bool valid() const { return gen != 0; }

  friend bool operator==(const ConnHandle& a, const ConnHandle& b) {
    return a.index == b.index && a.gen == b.gen;
  }
  friend bool operator!=(const ConnHandle& a, const ConnHandle& b) { return !(a == b); }
};

// ESCORT_SHARD_CONTEXT
template <typename T>
class Slab {
 public:
  static constexpr size_t kChunkSlots = 1024;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  // Pops a free slot (or grows by one chunk) and returns its handle. The
  // value is default-initialized: reused slots are reset here, not at
  // Release, so a caller may finish running a method of the released value
  // (the storage stays alive and inert until the slot is recycled).
  ConnHandle Create() {
    uint32_t index;
    if (free_head_ != kNone) {
      index = free_head_;
      Slot& s = *slot(index);
      free_head_ = s.next_free;
      s.next_free = kNone;
      s.value = T{};
      s.alive = true;
    } else {
      index = static_cast<uint32_t>(size_);
      if (index % kChunkSlots == 0) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
      }
      ++size_;
      slot(index)->alive = true;
    }
    ++live_;
    if (live_ > high_water_) {
      high_water_ = live_;
    }
    return ConnHandle{index, slot(index)->gen};
  }

  // Resolves a handle; nullptr if the slot was released (or re-issued to a
  // newer incarnation) since the handle was taken.
  T* Find(ConnHandle h) {
    if (h.gen == 0 || h.index >= size_) {
      return nullptr;
    }
    Slot& s = *slot(h.index);
    if (!s.alive || s.gen != h.gen) {
      return nullptr;
    }
    return &s.value;
  }

  const T* Find(ConnHandle h) const { return const_cast<Slab*>(this)->Find(h); }

  // Retires the slot: every copy of `h` goes stale now; storage is recycled
  // on a future Create. Returns false for an already-stale handle.
  bool Release(ConnHandle h) {
    if (Find(h) == nullptr) {
      return false;
    }
    Slot& s = *slot(h.index);
    s.alive = false;
    ++s.gen;  // invalidates all outstanding handles to this incarnation
    s.next_free = free_head_;
    free_head_ = h.index;
    --live_;
    return true;
  }

  size_t live() const { return live_; }
  size_t high_water() const { return high_water_; }
  size_t capacity() const { return chunks_.size() * kChunkSlots; }
  static constexpr size_t slot_bytes() { return sizeof(Slot); }
  size_t bytes_reserved() const { return capacity() * sizeof(Slot); }

 private:
  struct Slot {
    T value{};
    uint32_t gen = 1;
    uint32_t next_free = kNone;
    bool alive = false;
  };

  static constexpr uint32_t kNone = ~static_cast<uint32_t>(0);

  Slot* slot(uint32_t index) {
    return &chunks_[index / kChunkSlots][index % kChunkSlots];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t free_head_ = kNone;
  size_t size_ = 0;  // slots ever materialized (dense prefix of the table)
  size_t live_ = 0;
  size_t high_water_ = 0;
};

}  // namespace escort

#endif  // SRC_ELIB_SLAB_H_
