#include "src/elib/message.h"

#include <cstring>

namespace escort {

Message::SharedState::~SharedState() {
  if (kernel != nullptr && buf != nullptr && locker != nullptr) {
    kernel->UnlockIoBuffer(buf, locker);
  }
}

Message Message::Alloc(Kernel* kernel, Owner* owner, PdId current_pd,
                       const std::vector<PdId>& read_domains, uint64_t capacity,
                       uint64_t headroom) {
  Message msg;
  IoBuffer* buf = kernel->AllocIoBuffer(owner, capacity + headroom, current_pd, read_domains);
  if (buf == nullptr) {
    return msg;
  }
  auto state = std::make_shared<SharedState>();
  state->kernel = kernel;
  state->buf = buf;
  state->locker = owner;  // Alloc leaves one kernel lock held by the owner
  msg.state_ = std::move(state);
  msg.head_ = headroom;
  msg.len_ = 0;
  return msg;
}

Message Message::FromBuffer(Kernel* kernel, IoBuffer* buf, Owner* locker, uint64_t offset,
                            uint64_t len) {
  Message msg;
  if (buf == nullptr || offset + len > buf->size()) {
    return msg;
  }
  auto state = std::make_shared<SharedState>();
  state->kernel = kernel;
  state->buf = buf;
  state->locker = locker;
  msg.state_ = std::move(state);
  msg.head_ = offset;
  msg.len_ = len;
  return msg;
}

const uint8_t* Message::Data(PdId pd) const {
  if (!valid() || !state_->buf->CanRead(pd)) {
    return nullptr;
  }
  return state_->buf->bytes().data() + head_;
}

uint8_t* Message::MutableData(PdId pd) {
  if (!valid() || !state_->buf->CanWrite(pd)) {
    return nullptr;
  }
  return state_->buf->bytes().data() + head_;
}

bool Message::Prepend(PdId pd, const void* src, uint64_t len) {
  if (!valid() || head_ < len || !state_->buf->CanWrite(pd)) {
    return false;
  }
  head_ -= len;
  len_ += len;
  if (src != nullptr) {
    std::memcpy(state_->buf->bytes().data() + head_, src, len);
  }
  return true;
}

bool Message::PrependHeaderFragment(Kernel* kernel, PdId pd, const void* src, uint64_t len) {
  if (!valid() || head_ < len) {
    return false;
  }
  if (state_->buf->CanWrite(pd)) {
    return Prepend(pd, src, len);
  }
  // Fragment: a domain-local header buffer chained in front of the payload.
  kernel->ConsumeCharged(kernel->costs().iobuffer_alloc_cached +
                         len * kernel->costs().per_byte_touch);
  head_ -= len;
  len_ += len;
  if (src != nullptr) {
    std::memcpy(state_->buf->bytes().data() + head_, src, len);
  }
  return true;
}

bool Message::Strip(uint64_t len) {
  if (!valid() || len > len_) {
    return false;
  }
  head_ += len;
  len_ -= len;
  return true;
}

bool Message::Append(PdId pd, const void* src, uint64_t len) {
  if (!valid() || head_ + len_ + len > state_->buf->size() || !state_->buf->CanWrite(pd)) {
    return false;
  }
  if (src != nullptr) {
    std::memcpy(state_->buf->bytes().data() + head_ + len_, src, len);
  }
  len_ += len;
  return true;
}

bool Message::Trim(uint64_t len) {
  if (!valid() || len > len_) {
    return false;
  }
  len_ -= len;
  return true;
}

bool Message::EnsureWritable(Kernel* kernel, Owner* owner, PdId pd,
                             const std::vector<PdId>& read_domains) {
  if (!valid()) {
    return false;
  }
  if (state_->buf->CanWrite(pd)) {
    return true;
  }
  // Lost write permission (locked, or only a read mapping here): copy into
  // a fresh buffer. The library hides this from the module.
  Message fresh = Alloc(kernel, owner, pd, read_domains, state_->buf->size() - head_, head_);
  if (!fresh.valid()) {
    return false;
  }
  const uint8_t* src = state_->buf->bytes().data() + head_;
  fresh.len_ = len_;
  std::memcpy(fresh.state_->buf->bytes().data() + fresh.head_, src, len_);
  kernel->Consume(len_ * kernel->costs().per_byte_touch);
  fresh.kind = kind;
  fresh.aux = aux;
  fresh.note = note;
  state_ = std::move(fresh.state_);
  head_ = fresh.head_;
  return true;
}

void Message::LockForOwner(Owner* owner) {
  if (!valid()) {
    return;
  }
  state_->kernel->LockIoBuffer(state_->buf, owner);
  // The library-level lock bookkeeping: the new lock belongs to `owner`;
  // release of the library reference keeps releasing the original locker's
  // kernel lock, and the extra lock pins the buffer for `owner`.
}

std::vector<uint8_t> Message::CopyOut(PdId pd) const {
  std::vector<uint8_t> out;
  const uint8_t* p = Data(pd);
  if (p == nullptr) {
    return out;
  }
  out.assign(p, p + len_);
  return out;
}

}  // namespace escort
