// Message library (paper §3.3, [Mosberger TR97-19]): the user-level view of
// IOBuffers, tailored for manipulating network messages.
//
//  * A Message is a (head, length) window onto an IOBuffer, with headroom so
//    protocol modules can prepend/strip headers without copying.
//  * Copying a Message adds a *library-level* reference — no kernel call;
//    the kernel lock is released when the last library reference drops, so
//    each owner holds at most one kernel lock per buffer.
//  * Modules can transparently lose write permission (the buffer was locked
//    or the module's domain only has a read mapping): EnsureWritable()
//    re-allocates and copies, exactly as the real library does.
//  * Messages also carry an intra-path control tag (kind/aux) used by the
//    stages of a path to label requests flowing between them; the tag is
//    not part of the wire data.

#ifndef SRC_ELIB_MESSAGE_H_
#define SRC_ELIB_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/iobuffer.h"
#include "src/kernel/kernel.h"

namespace escort {

// Intra-path message kinds (control plane between stages).
enum class MsgKind : uint32_t {
  kData = 0,       // raw wire data (frames/segments)
  kFileRequest,    // HTTP -> FS: resolve + read a file
  kFileData,       // FS -> HTTP: file contents
  kFileError,      // FS -> HTTP: lookup failed
  kTcpSend,        // HTTP -> TCP: application bytes to transmit
  kConnClose,      // HTTP -> TCP: close after transmit completes
  kCgiRequest,     // HTTP -> CGI
  kStreamChunk,    // QoS stream generator -> TCP
};

class Message {
 public:
  Message() = default;

  // Allocates a fresh message backed by a kernel IOBuffer. `headroom` bytes
  // are reserved in front of the payload window for headers to come.
  static Message Alloc(Kernel* kernel, Owner* owner, PdId current_pd,
                       const std::vector<PdId>& read_domains, uint64_t capacity,
                       uint64_t headroom);

  // Wraps an existing IOBuffer (e.g. a cached file block just associated
  // with a path). `locker` must already hold one kernel lock on `buf`; the
  // lock is released when the last library reference drops.
  static Message FromBuffer(Kernel* kernel, IoBuffer* buf, Owner* locker, uint64_t offset,
                            uint64_t len);

  // Copying shares the buffer (library-level refcount: no kernel call).
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  Message(Message&&) = default;
  Message& operator=(Message&&) = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t size() const { return len_; }
  uint64_t headroom() const { return head_; }

  // Read-only access from domain `pd`; nullptr on a protection fault.
  const uint8_t* Data(PdId pd) const;

  // Writable access from domain `pd`; nullptr if the domain cannot write
  // (locked buffer or read-only mapping). See EnsureWritable().
  uint8_t* MutableData(PdId pd);

  // Prepends `len` header bytes (copies from `src` if non-null). Fails if
  // headroom is exhausted or the domain cannot write.
  bool Prepend(PdId pd, const void* src, uint64_t len);

  // Prepends a header from a domain that may lack write permission on the
  // payload buffer: models the message library's fragment chains — each
  // domain keeps its headers in a small buffer of its own, so no payload
  // copy is needed. Charges the small fragment cost instead of a
  // reallocation. (The bytes land in this buffer's headroom, which stands
  // in for the fragment; the *payload window* is never written.)
  bool PrependHeaderFragment(Kernel* kernel, PdId pd, const void* src, uint64_t len);

  // Removes `len` bytes from the front (header strip). No copy.
  bool Strip(uint64_t len);

  // Appends payload bytes at the tail. Fails when capacity is exhausted.
  bool Append(PdId pd, const void* src, uint64_t len);

  // Drops `len` bytes from the tail.
  bool Trim(uint64_t len);

  // Guarantees the current domain can write: if not, re-allocates a fresh
  // buffer (owned by `owner`) and copies the visible window. Returns false
  // only if allocation fails.
  bool EnsureWritable(Kernel* kernel, Owner* owner, PdId pd,
                      const std::vector<PdId>& read_domains);

  // Kernel-locks the underlying buffer for `owner` (consistency check
  // barrier: revokes all write permission).
  void LockForOwner(Owner* owner);

  // The underlying buffer (for association / cache use).
  IoBuffer* buffer() const { return state_ ? state_->buf : nullptr; }

  // Extracts the window into a plain byte vector (test/diagnostic helper;
  // performs a checked read from domain `pd`).
  std::vector<uint8_t> CopyOut(PdId pd) const;

  // Control tag.
  MsgKind kind = MsgKind::kData;
  uint64_t aux = 0;
  std::string note;  // free-form (file names, request targets)

 private:
  struct SharedState {
    Kernel* kernel = nullptr;
    IoBuffer* buf = nullptr;
    Owner* locker = nullptr;
    ~SharedState();
  };

  std::shared_ptr<SharedState> state_;
  uint64_t head_ = 0;  // window start within the buffer
  uint64_t len_ = 0;   // window length
};

}  // namespace escort

#endif  // SRC_ELIB_MESSAGE_H_
