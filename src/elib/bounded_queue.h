// Bounded FIFO queue (one of the Escort support libraries). Paths use four
// of these for their source/sink ends; drops are counted so overload
// behaviour is observable.

#ifndef SRC_ELIB_BOUNDED_QUEUE_H_
#define SRC_ELIB_BOUNDED_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

namespace escort {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity = 64) : capacity_(capacity) {}

  bool Push(T item) {
    if (queue_.size() >= capacity_) {
      ++drops_;
      return false;
    }
    queue_.push_back(std::move(item));
    if (queue_.size() > high_water_) {
      high_water_ = queue_.size();
    }
    return true;
  }

  std::optional<T> Pop() {
    if (queue_.empty()) {
      return std::nullopt;
    }
    T item = std::move(queue_.front());
    queue_.pop_front();
    return item;
  }

  void Clear() { queue_.clear(); }

  size_t size() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }
  uint64_t drops() const { return drops_; }
  size_t high_water() const { return high_water_; }

 private:
  size_t capacity_;
  std::deque<T> queue_;
  uint64_t drops_ = 0;
  size_t high_water_ = 0;
};

}  // namespace escort

#endif  // SRC_ELIB_BOUNDED_QUEUE_H_
