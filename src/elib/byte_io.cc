#include "src/elib/byte_io.h"

namespace escort {

uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t acc) {
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    acc += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {
    acc += static_cast<uint32_t>(data[i]) << 8;
  }
  return acc;
}

uint16_t InternetChecksum(const uint8_t* data, size_t len, uint32_t initial) {
  uint32_t acc = ChecksumPartial(data, len, initial);
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  return static_cast<uint16_t>(~acc);
}

}  // namespace escort
