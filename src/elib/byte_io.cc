#include "src/elib/byte_io.h"

namespace escort {

uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t acc) {
  // Four independent word accumulators break the loop-carried dependency
  // (ones'-complement partial sums are associative). The 64-bit partial
  // sums cannot overflow for any realistic frame, and the final fold back
  // to 32 bits keeps the return value identical to a straight 32-bit sum
  // whenever that sum does not wrap — which it never does below ~128 KiB
  // of payload.
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    s0 += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
    s1 += (static_cast<uint32_t>(data[i + 2]) << 8) | data[i + 3];
    s2 += (static_cast<uint32_t>(data[i + 4]) << 8) | data[i + 5];
    s3 += (static_cast<uint32_t>(data[i + 6]) << 8) | data[i + 7];
  }
  uint64_t sum = acc + s0 + s1 + s2 + s3;
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 32) {
    sum = (sum & 0xffffffff) + (sum >> 32);
  }
  return static_cast<uint32_t>(sum);
}

uint16_t InternetChecksum(const uint8_t* data, size_t len, uint32_t initial) {
  uint32_t acc = ChecksumPartial(data, len, initial);
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  return static_cast<uint16_t>(~acc);
}

}  // namespace escort
