// Participant addresses (one of the Escort support libraries): Ethernet MAC
// and IPv4 addresses plus subnet matching, used by the modules and by the
// per-subnet SYN policies.

#ifndef SRC_ELIB_ADDRESS_H_
#define SRC_ELIB_ADDRESS_H_

#include <array>
#include <cstdint>
#include <string>

namespace escort {

struct MacAddr {
  std::array<uint8_t, 6> bytes{};

  static MacAddr Broadcast() { return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}; }
  static MacAddr FromIndex(uint64_t index);

  bool IsBroadcast() const;
  bool operator==(const MacAddr& other) const { return bytes == other.bytes; }
  bool operator!=(const MacAddr& other) const { return !(*this == other); }
  std::string ToString() const;
};

struct Ip4Addr {
  uint32_t value = 0;

  static Ip4Addr FromOctets(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return Ip4Addr{(static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
                   (static_cast<uint32_t>(c) << 8) | d};
  }

  bool operator==(const Ip4Addr& other) const { return value == other.value; }
  bool operator!=(const Ip4Addr& other) const { return value != other.value; }
  bool operator<(const Ip4Addr& other) const { return value < other.value; }
  std::string ToString() const;
};

// CIDR-style subnet (the SYN policy distinguishes a trusted from an
// untrusted part of the Internet by prefix).
struct Subnet {
  Ip4Addr base;
  int prefix_len = 0;  // 0 matches everything

  bool Contains(Ip4Addr addr) const;
  std::string ToString() const;
};

// Full four-tuple identifying a TCP connection.
struct ConnKey {
  Ip4Addr local_addr;
  uint16_t local_port = 0;
  Ip4Addr remote_addr;
  uint16_t remote_port = 0;

  bool operator==(const ConnKey& other) const {
    return local_addr == other.local_addr && local_port == other.local_port &&
           remote_addr == other.remote_addr && remote_port == other.remote_port;
  }
  bool operator<(const ConnKey& other) const;
};

}  // namespace escort

#endif  // SRC_ELIB_ADDRESS_H_
