// SCSI: simulated block-device driver module.
//
// Holds the disk image (an array of fixed-size blocks) and models the
// device: one outstanding operation at a time, seek latency plus a transfer
// time proportional to the bytes moved. Reads complete asynchronously — the
// completion is delivered back down the path as a work item charged to the
// requesting path.

#ifndef SRC_FS_SCSI_H_
#define SRC_FS_SCSI_H_

#include <cstdint>
#include <vector>

#include "src/path/path.h"

namespace escort {

class ScsiDiskModule : public Module {
 public:
  static constexpr uint64_t kBlockSize = 4096;

  ScsiDiskModule() : Module("SCSI", {ServiceInterface::kAsyncIo, ServiceInterface::kFileAccess}) {}

  // Disk geometry / timing (CDC-era SCSI disk).
  Cycles seek_latency = CyclesFromMillis(1.5);
  double transfer_bytes_per_sec = 20e6;

  // --- Configuration-time direct access (mkfs) --------------------------------
  // Allocates `count` contiguous blocks, returns the first LBA.
  uint64_t AllocBlocks(uint64_t count);
  // Writes bytes into the image starting at `lba` (no simulation cost;
  // used when the file system is populated at build time).
  void WriteDirect(uint64_t lba, const std::vector<uint8_t>& bytes);
  // Reads `len` bytes starting at `lba` into `out` (test/config helper).
  bool ReadDirect(uint64_t lba, uint64_t len, std::vector<uint8_t>* out) const;

  // Packs a read request into a message aux word.
  static uint64_t PackRequest(uint64_t lba, uint64_t byte_len) {
    return (lba << 32) | (byte_len & 0xffffffffULL);
  }
  static uint64_t AuxLba(uint64_t aux) { return aux >> 32; }
  static uint64_t AuxLen(uint64_t aux) { return aux & 0xffffffffULL; }

  OpenResult Open(Path* path, const Attributes& attrs) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t reads_issued() const { return reads_; }
  uint64_t blocks_allocated() const { return next_lba_; }

 private:
  std::vector<uint8_t> image_;
  uint64_t next_lba_ = 0;
  Cycles disk_free_ = 0;  // time the head becomes available
  uint64_t reads_ = 0;
};

}  // namespace escort

#endif  // SRC_FS_SCSI_H_
