#include "src/fs/fs.h"

#include "src/path/path_manager.h"

namespace escort {

void FsModule::AddFile(const std::string& name, const std::vector<uint8_t>& bytes) {
  uint64_t blocks = (bytes.size() + ScsiDiskModule::kBlockSize - 1) / ScsiDiskModule::kBlockSize;
  if (blocks == 0) {
    blocks = 1;
  }
  Inode inode;
  inode.name = name;
  inode.lba = scsi_->AllocBlocks(blocks);
  inode.size = bytes.size();
  scsi_->WriteDirect(inode.lba, bytes);
  inodes_[name] = inode;
}

void FsModule::AddDocument(const std::string& name, uint64_t size) {
  std::vector<uint8_t> bytes(size);
  for (uint64_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>('A' + (i % 26));
  }
  AddFile(name, bytes);
}

const Inode* FsModule::Lookup(const std::string& name) const {
  auto it = inodes_.find(name);
  return it == inodes_.end() ? nullptr : &it->second;
}

OpenResult FsModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.next = scsi_;
  return r;
}

void FsModule::ReplyFromCache(Stage& stage, const Inode& inode, IoBuffer* buf) {
  // Associate the cached buffer with the requesting path: the path gets
  // read mappings along its stages, is fully charged for the buffer, and
  // the association includes a lock on the path's behalf. No data is
  // copied.
  Path* path = stage.path;
  std::vector<PdId> read_pds;
  for (const auto& s : path->stages()) {
    read_pds.push_back(s->pd);
  }
  kernel()->AssociateIoBuffer(buf, path, read_pds);
  Message reply = Message::FromBuffer(kernel(), buf, path, 0, inode.size);
  reply.kind = MsgKind::kFileData;
  reply.note = inode.name;
  path->ForwardDown(stage, std::move(reply));
}

void FsModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);

  if (dir == Direction::kUp) {
    if (msg.kind != MsgKind::kFileRequest) {
      return;
    }
    const Inode* inode = Lookup(msg.note);
    if (inode == nullptr) {
      ++lookup_failures_;
      Message err = Message::Alloc(kernel(), stage.path, pd(), stage.path->StageDomains(), 1, 0);
      if (err.valid()) {
        err.kind = MsgKind::kFileError;
        err.note = msg.note;
        stage.path->ForwardDown(stage, std::move(err));
      }
      return;
    }
    auto cached = cache_.find(inode->name);
    if (cached != cache_.end()) {
      ++cache_hits_;
      kernel()->ConsumeCharged(kernel()->costs().fs_read_block_hit);
      ReplyFromCache(stage, *inode, cached->second);
      return;
    }
    // Miss: read the extent from the device; the reply comes back kDown.
    ++cache_misses_;
    Message disk_req = std::move(msg);
    disk_req.kind = MsgKind::kFileRequest;
    disk_req.aux = ScsiDiskModule::PackRequest(inode->lba, inode->size);
    disk_req.note = inode->name;
    stage.path->ForwardUp(stage, std::move(disk_req));
    return;
  }

  // Down: completion from SCSI.
  if (msg.kind == MsgKind::kFileData) {
    const Inode* inode = Lookup(msg.note);
    const uint8_t* data = msg.Data(pd());
    if (inode != nullptr && data != nullptr && cache_.find(inode->name) == cache_.end()) {
      // Populate the cache: the buffer is owned by FS's protection domain
      // and lives until the domain dies.
      Owner* fs_domain = domain();
      IoBuffer* buf = kernel()->AllocIoBuffer(fs_domain, inode->size, pd(), {pd()});
      if (buf != nullptr) {
        buf->Write(pd(), 0, data, inode->size);
        kernel()->Consume(inode->size * kernel()->costs().per_byte_touch);
        cache_[inode->name] = buf;
        ReplyFromCache(stage, *inode, buf);
        return;
      }
    }
    if (inode != nullptr && data != nullptr) {
      auto it = cache_.find(inode->name);
      if (it != cache_.end()) {
        ReplyFromCache(stage, *inode, it->second);
        return;
      }
    }
    // Fall back: pass the raw data down as the document.
    stage.path->ForwardDown(stage, std::move(msg));
    return;
  }
  if (msg.kind == MsgKind::kFileError) {
    stage.path->ForwardDown(stage, std::move(msg));
  }
}

Cycles FsModule::ProcessCost(Direction /*dir*/) const { return kernel()->costs().fs_lookup; }

}  // namespace escort
