#include "src/fs/scsi.h"

#include <algorithm>
#include <cstring>

#include "src/path/path_manager.h"

namespace escort {

uint64_t ScsiDiskModule::AllocBlocks(uint64_t count) {
  uint64_t lba = next_lba_;
  next_lba_ += count;
  image_.resize(next_lba_ * kBlockSize, 0);
  return lba;
}

void ScsiDiskModule::WriteDirect(uint64_t lba, const std::vector<uint8_t>& bytes) {
  uint64_t offset = lba * kBlockSize;
  if (offset + bytes.size() > image_.size()) {
    image_.resize(offset + bytes.size(), 0);
    next_lba_ = (image_.size() + kBlockSize - 1) / kBlockSize;
  }
  std::memcpy(image_.data() + offset, bytes.data(), bytes.size());
}

bool ScsiDiskModule::ReadDirect(uint64_t lba, uint64_t len, std::vector<uint8_t>* out) const {
  uint64_t offset = lba * kBlockSize;
  if (offset + len > image_.size()) {
    return false;
  }
  out->assign(image_.begin() + static_cast<long>(offset),
              image_.begin() + static_cast<long>(offset + len));
  return true;
}

OpenResult ScsiDiskModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.next = nullptr;  // end of the path
  return r;
}

void ScsiDiskModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  if (dir != Direction::kUp || msg.kind != MsgKind::kFileRequest) {
    return;
  }
  uint64_t lba = AuxLba(msg.aux);
  uint64_t len = AuxLen(msg.aux);
  uint64_t offset = lba * kBlockSize;
  Path* path = stage.path;
  Stage* stage_ptr = &stage;
  std::string note = msg.note;

  if (offset + len > image_.size()) {
    Message err = Message::Alloc(kernel(), path, pd(), path->StageDomains(), 1, 0);
    if (err.valid()) {
      err.kind = MsgKind::kFileError;
      err.note = note;
      path->ForwardDown(*stage_ptr, std::move(err));
    }
    return;
  }

  // Model the device: serialize operations, seek + transfer.
  ++reads_;
  Cycles now = kernel()->now();
  Cycles start = std::max(now, disk_free_);
  Cycles transfer = CyclesFromSeconds(static_cast<double>(len) / transfer_bytes_per_sec);
  Cycles done = start + seek_latency + transfer;
  disk_free_ = done;

  std::vector<uint8_t> bytes(image_.begin() + static_cast<long>(offset),
                             image_.begin() + static_cast<long>(offset + len));
  Kernel* k = kernel();
  PdId my_pd = pd();
  // The completion fires after the seek + transfer delay, during which the
  // path can be killed AND reaped (ReapRetired frees retired paths at the
  // next demux). Capture value keys — the owner id and stage index — and
  // revalidate through the manager at each hop (EA001); the old
  // `path->destroyed()` guard dereferenced freed memory. The manager itself
  // is cell-lifetime and safe to capture.
  PathManager* pm = path->manager();
  uint64_t path_id = path->id();
  size_t stage_index = static_cast<size_t>(stage.index);
  k->event_queue()->ScheduleAt(done, [this, k, my_pd, pm, path_id, stage_index, note,
                                      bytes = std::move(bytes)] {
    Path* path = pm->FindLive(path_id);
    if (path == nullptr) {
      return;  // killed while the disk was seeking
    }
    // Completion interrupt: build the reply and send it down the path,
    // charged to the path.
    Thread* t = path->GrabThread();
    t->Push(k->costs().fs_read_block_hit, my_pd,
            [this, k, my_pd, pm, path_id, stage_index, note, bytes] {
      // Revalidate again: the kill can land between the completion
      // interrupt and this work item's dispatch.
      Path* path = pm->FindLive(path_id);
      if (path == nullptr) {
        return;
      }
      Stage* stage = path->stage(stage_index);
      if (stage == nullptr) {
        return;
      }
      Message reply = Message::Alloc(k, path, my_pd, path->StageDomains(), bytes.size(), 0);
      if (!reply.valid()) {
        return;
      }
      reply.Append(my_pd, bytes.data(), bytes.size());
      k->Consume(bytes.size() * k->costs().per_byte_touch);
      reply.kind = MsgKind::kFileData;
      reply.note = note;
      path->ForwardDown(*stage, std::move(reply));
    }, /*yields=*/true);
  });
}

Cycles ScsiDiskModule::ProcessCost(Direction /*dir*/) const { return kernel()->costs().scsi_op; }

}  // namespace escort
