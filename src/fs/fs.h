// FS: a simple extent-based file system module.
//
// Name -> extent mapping with a block cache built on IOBuffers: a cached
// document buffer is *associated* with every path that serves it (paper
// §3.3's web-cache use case) — the path is fully charged for the buffer, no
// copy is made, and one copy of each document is stored.

#ifndef SRC_FS_FS_H_
#define SRC_FS_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/fs/scsi.h"
#include "src/path/path.h"

namespace escort {

struct Inode {
  std::string name;
  uint64_t lba = 0;
  uint64_t size = 0;
};

class FsModule : public Module {
 public:
  FsModule() : Module("FS", {ServiceInterface::kFileAccess, ServiceInterface::kAsyncIo}) {}

  void SetNeighbors(ScsiDiskModule* scsi) { scsi_ = scsi; }

  // mkfs-time: stores `bytes` as `/name` on the disk.
  void AddFile(const std::string& name, const std::vector<uint8_t>& bytes);
  // Convenience: a document of `size` filled with a pattern.
  void AddDocument(const std::string& name, uint64_t size);

  const Inode* Lookup(const std::string& name) const;
  size_t file_count() const { return inodes_.size(); }

  OpenResult Open(Path* path, const Attributes& attrs) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t lookup_failures() const { return lookup_failures_; }

 private:
  void ReplyFromCache(Stage& stage, const Inode& inode, IoBuffer* buf);

  ScsiDiskModule* scsi_ = nullptr;
  std::map<std::string, Inode> inodes_;
  std::map<std::string, IoBuffer*> cache_;  // document buffers, held by FS's domain
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t lookup_failures_ = 0;
};

}  // namespace escort

#endif  // SRC_FS_FS_H_
