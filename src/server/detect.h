// Statistical attack detection (the online-policy extension of §4.4).
//
// The static defenses are threshold heuristics: a SYN budget, a 2 ms
// runaway budget. This module adds the *detection* layer the paper's §4.4.4
// discussion implies — policies that accumulate evidence and decide, rather
// than trip on a single event:
//
//  * SprtDetector — Wald's sequential probability ratio test, per source
//    /24 subnet, over connection *outcomes* (completed vs. aborted /
//    half-open / budget-dropped). The test compares H0 "benign subnet, bad
//    outcome rate lambda0" against H1 "attacking subnet, bad outcome rate
//    lambda1" and decides as soon as the log-likelihood ratio crosses the
//    (alpha, beta)-derived thresholds — the same detector shape the RUNOS
//    SDN controller uses for its SYN-flood protection.
//
//  * BaselineDetector — the data-driven resource-accounting detector of
//    muDoS: learn per-request-class cycle/page/IOBuffer distributions from
//    the kernel ledger during warmup (clean teardowns only), freeze, then
//    periodically flag any live path whose consumption is a k-sigma
//    outlier for its class and pathKill it — typically long before the
//    static 2 ms budget would.
//
// Both detectors chain confirmed detections into
// BlacklistPolicy::RecordViolation, so the §4.4.4 penalty-path machinery
// does the containment.
//
// Determinism contract (DESIGN.md §6.10): accumulator state lives in
// ordered containers keyed by subnet/class; SPRT arithmetic is fixed-point
// (integer micro-nats) so no float accumulation order can leak in; all
// observations originate on the server machine's shard, so the detection
// sequence — and its FNV digest — is bit-identical at any --shards/--jobs.

#ifndef SRC_SERVER_DETECT_H_
#define SRC_SERVER_DETECT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/elib/address.h"
#include "src/net/tcp.h"
#include "src/sim/types.h"

namespace escort {

class BlacklistPolicy;
class EscortWebServer;
class KernelEvent;
class Owner;
class Path;
class Thread;

enum class DetectMode { kOff, kSprt, kBaseline };

const char* DetectModeName(DetectMode m);
// Parses "off" / "sprt" / "baseline"; returns false on anything else.
bool ParseDetectMode(const std::string& s, DetectMode* out);

// Detection thresholds, carried in ExperimentSpec and recorded in the
// bench JSON spec block.
struct DetectSpec {
  DetectMode mode = DetectMode::kOff;

  // SPRT: decide H1 (attack) with false-positive probability <= alpha and
  // miss probability <= beta, against bad-outcome rates lambda0 (benign)
  // vs. lambda1 (attacking).
  double sprt_alpha = 0.01;
  double sprt_beta = 0.02;
  double sprt_lambda0 = 0.33;
  double sprt_lambda1 = 0.60;
  // After a subnet is reported, ignore its outcomes this long before
  // restarting the test (the penalty path needs time to bite; without a
  // holdoff every dropped penalty SYN would re-report immediately).
  Cycles sprt_holdoff = CyclesFromMillis(500);

  // Baseline: flag a path whose consumption exceeds mean + k*sigma of its
  // class, once the class has at least min_samples warmup observations.
  double baseline_k_sigma = 3.0;
  uint64_t baseline_min_samples = 16;
  // Lower bound on sigma as a fraction of the mean (plus one unit). The
  // simulator is deterministic, so a class of identical requests has
  // sigma == 0 exactly and mean + k*sigma becomes a knife edge that flags
  // one-cycle jitter; the floor demands a real multiple of the norm.
  double baseline_sigma_floor_frac = 0.25;
  // The periodic scan backstops the per-item ledger watch: it catches
  // outliers whose threads are blocked (a hoarder that stopped running
  // never re-enters the kernel on its own).
  Cycles baseline_scan_period = CyclesFromMillis(5.0);
};

// One confirmed detection. `subnet` is the /24 key (addr >> 8); `source`
// is a static string ("sprt" / "baseline").
struct DetectionEvent {
  Cycles when = 0;
  Ip4Addr addr{};
  uint32_t subnet = 0;
  const char* source = "";
};

// Base class: owns the detection log and the blacklist chaining. Concrete
// detectors install themselves on the server's hooks at construction.
class DetectionPolicy {
 public:
  DetectionPolicy(EscortWebServer* server, BlacklistPolicy* blacklist);
  virtual ~DetectionPolicy() = default;

  DetectionPolicy(const DetectionPolicy&) = delete;
  DetectionPolicy& operator=(const DetectionPolicy&) = delete;

  const std::vector<DetectionEvent>& detections() const { return detections_; }

  // FNV-1a over every (when, addr, source) in order — the sharded-
  // equivalence witness recorded in the bench JSON.
  uint64_t DecisionDigest() const;

 protected:
  // Records the detection, chains it into the blacklist, and emits a
  // `policy` trace instant.
  void ReportDetection(Ip4Addr addr, const char* source);

  EscortWebServer* const server_;
  BlacklistPolicy* const blacklist_;  // may be null (detection-only mode)
  std::vector<DetectionEvent> detections_;
  MetricCounter* m_decisions_ = nullptr;
};

// Per-subnet SPRT over TCP connection outcomes.
class SprtDetector : public DetectionPolicy {
 public:
  SprtDetector(EscortWebServer* server, BlacklistPolicy* blacklist, const DetectSpec& spec);
  ~SprtDetector() override;

  // Folds one outcome into the source's subnet accumulator. Installed as
  // TcpModule::conn_outcome_hook; public so tests can drive it directly.
  void Observe(Ip4Addr remote, TcpConnOutcome outcome);

  // Fixed-point conversion: micro-nats, ln(x) * 2^20, rounded once at
  // configuration time. All per-observation arithmetic is integer.
  static int64_t MicroNats(double x);

  int64_t accept_attack_threshold() const { return accept_llr_; }
  int64_t accept_benign_threshold() const { return reject_llr_; }
  int64_t bad_increment() const { return inc_bad_; }
  int64_t good_increment() const { return inc_good_; }
  // Current accumulator value for the subnet of `addr` (0 if untracked).
  int64_t SubnetLlr(Ip4Addr addr) const;

 private:
  // Per-/24 sequential test state. Integer micro-nats only — the
  // determinism contract for detection state (lint rule EL014).
  // ESCORT_DETECT_ACCUMULATOR
  struct SprtState {
    int64_t llr = 0;            // micro-nats
    uint64_t observations = 0;  // outcomes folded since the last restart
    Cycles holdoff_until = 0;   // ignore outcomes until this deadline
    // LLR trajectory gauge ("detect.llr.<a>.<b>.<c>", micro-nats),
    // registered on the subnet's first observation; null = metrics off.
    MetricGauge* llr_gauge = nullptr;
  };

  const DetectSpec spec_;
  int64_t inc_bad_ = 0;     // ln(lambda1/lambda0), micro-nats (> 0)
  int64_t inc_good_ = 0;    // ln((1-lambda1)/(1-lambda0)), micro-nats (< 0)
  int64_t accept_llr_ = 0;  // A = ln((1-beta)/alpha): decide attack
  int64_t reject_llr_ = 0;  // B = ln(beta/(1-alpha)): decide benign, restart
  std::map<uint32_t, SprtState> subnets_;
};

// Learned per-request-class ledger baselines.
class BaselineDetector : public DetectionPolicy {
 public:
  // Learns from clean path teardowns until the server clock reaches
  // `warmup` cycles from construction, then freezes and starts the
  // periodic outlier scan.
  BaselineDetector(EscortWebServer* server, BlacklistPolicy* blacklist, const DetectSpec& spec,
                   Cycles warmup);
  ~BaselineDetector() override;

  // Kernel ledger watch: consulted after every work item (the only point a
  // non-preemptive, non-yielding thread re-enters the kernel). Returns true
  // — having recorded the detection — when the owner is a path whose
  // consumption is an outlier for its class; the kernel then kills it
  // through the runaway machinery, typically long before the 2 ms budget.
  bool WatchThread(Owner* owner, Thread* t);

  // Scripted-ledger entry points (the scan and teardown hooks call these;
  // tests drive them directly).
  void LearnSample(const std::string& cls, uint64_t kilocycles, uint64_t pages,
                   uint64_t iobuffer_locks);
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  // True once the class is learned (n >= min_samples) and any dimension
  // exceeds mean + k*sigma.
  bool IsOutlier(const std::string& cls, uint64_t kilocycles, uint64_t pages,
                 uint64_t iobuffer_locks) const;
  size_t classes_learned() const { return classes_.size(); }
  uint64_t samples_learned(const std::string& cls) const;
  uint64_t paths_killed() const { return paths_killed_; }

 private:
  // Sum/sum-of-squares moments per consumption dimension. Cycle samples
  // are pre-scaled to kilocycles (cycles >> 10) so sum_sq stays far from
  // uint64 overflow across any warmup length. Integer state only (EL014);
  // mean/sigma are derived in double at compare time, a pure function of
  // identical integer inputs.
  // ESCORT_DETECT_ACCUMULATOR
  struct Moments {
    uint64_t sum = 0;
    uint64_t sum_sq = 0;
  };
  // ESCORT_DETECT_ACCUMULATOR
  struct ClassStats {
    uint64_t n = 0;
    Moments kilocycles;
    Moments pages;
    Moments iobuffer_locks;
  };

  void OnTeardown(Path* path, bool killed);
  void ScanLivePaths();
  bool DimensionExceeds(const Moments& m, uint64_t n, uint64_t value) const;

  const DetectSpec spec_;
  const Cycles warmup_end_;
  bool frozen_ = false;
  uint64_t paths_killed_ = 0;
  std::map<std::string, ClassStats> classes_;
  KernelEvent* scan_event_ = nullptr;
};

// Builds the detector selected by spec.mode (nullptr for kOff).
std::unique_ptr<DetectionPolicy> MakeDetector(EscortWebServer* server, BlacklistPolicy* blacklist,
                                              const DetectSpec& spec, Cycles warmup);

}  // namespace escort

#endif  // SRC_SERVER_DETECT_H_
