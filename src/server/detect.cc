#include "src/server/detect.h"

#include <cmath>

#include "src/kernel/kernel.h"
#include "src/path/path_manager.h"
#include "src/server/policy.h"
#include "src/server/web_server.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"

namespace escort {

namespace {

// /24 aggregation: one accumulator per source subnet, so a flood that
// rotates addresses within its subnet still converges on one test.
uint32_t SubnetOf(Ip4Addr addr) { return addr.value >> 8; }

constexpr double kMicroNatScale = static_cast<double>(1 << 20);

// Request class: the stable account label, i.e. the path name minus the
// per-path "#<counter>" suffix PathManager::Create appends.
std::string ClassOf(const Path& path) {
  const std::string& name = path.name();
  size_t hash = name.rfind('#');
  return hash == std::string::npos ? name : name.substr(0, hash);
}

}  // namespace

const char* DetectModeName(DetectMode m) {
  switch (m) {
    case DetectMode::kOff: return "off";
    case DetectMode::kSprt: return "sprt";
    case DetectMode::kBaseline: return "baseline";
  }
  return "?";
}

bool ParseDetectMode(const std::string& s, DetectMode* out) {
  if (s == "off") {
    *out = DetectMode::kOff;
  } else if (s == "sprt") {
    *out = DetectMode::kSprt;
  } else if (s == "baseline") {
    *out = DetectMode::kBaseline;
  } else {
    return false;
  }
  return true;
}

DetectionPolicy::DetectionPolicy(EscortWebServer* server, BlacklistPolicy* blacklist)
    : server_(server), blacklist_(blacklist) {
  if (MetricsRegistry* m = server_->kernel().metrics(); m != nullptr) {
    m_decisions_ =
        ESCORT_METRIC_COUNTER(m, "detect.decisions", "confirmed attack detections");
  }
}

uint64_t DetectionPolicy::DecisionDigest() const {
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const DetectionEvent& e : detections_) {
    mix(e.when, 8);
    mix(e.addr.value, 4);
    for (const char* p = e.source; *p != '\0'; ++p) {
      mix(static_cast<uint64_t>(static_cast<unsigned char>(*p)), 1);
    }
  }
  return h;
}

void DetectionPolicy::ReportDetection(Ip4Addr addr, const char* source) {
  Cycles now = server_->kernel().now();
  detections_.push_back(DetectionEvent{now, addr, SubnetOf(addr), source});
  MetricAdd(m_decisions_);
  if (blacklist_ != nullptr) {
    blacklist_->RecordViolation(addr, now);
  }
  Tracer* t = server_->kernel().tracer();
  if (t != nullptr && t->lifecycle_enabled()) {
    t->Instant(now, "policy", std::string("detect-") + source, "policy",
               {{"addr", Tracer::Str(addr.ToString())}});
  }
}

// ---------------------------------------------------------------------------
// SprtDetector

int64_t SprtDetector::MicroNats(double x) {
  return static_cast<int64_t>(std::llround(std::log(x) * kMicroNatScale));
}

SprtDetector::SprtDetector(EscortWebServer* server, BlacklistPolicy* blacklist,
                           const DetectSpec& spec)
    : DetectionPolicy(server, blacklist), spec_(spec) {
  // Wald's increments and boundaries, converted to micro-nats exactly once
  // — observation-time arithmetic is pure integer addition/comparison.
  inc_bad_ = MicroNats(spec_.sprt_lambda1 / spec_.sprt_lambda0);
  inc_good_ = MicroNats((1.0 - spec_.sprt_lambda1) / (1.0 - spec_.sprt_lambda0));
  accept_llr_ = MicroNats((1.0 - spec_.sprt_beta) / spec_.sprt_alpha);
  reject_llr_ = MicroNats(spec_.sprt_beta / (1.0 - spec_.sprt_alpha));
  server_->tcp()->conn_outcome_hook = [this](Ip4Addr remote, TcpConnOutcome outcome) {
    Observe(remote, outcome);
  };
}

SprtDetector::~SprtDetector() {
  // Server teardown reclaims every surviving path (firing kPathKilled
  // outcomes); the hook must not outlive the detector.
  server_->tcp()->conn_outcome_hook = nullptr;
}

int64_t SprtDetector::SubnetLlr(Ip4Addr addr) const {
  auto it = subnets_.find(SubnetOf(addr));
  return it == subnets_.end() ? 0 : it->second.llr;
}

void SprtDetector::Observe(Ip4Addr remote, TcpConnOutcome outcome) {
  Cycles now = server_->kernel().now();
  const uint32_t subnet = SubnetOf(remote);
  SprtState& st = subnets_[subnet];
  if (now < st.holdoff_until) {
    return;  // already reported; let the penalty path take effect
  }
  if (st.llr_gauge == nullptr) {
    if (MetricsRegistry* m = server_->kernel().metrics(); m != nullptr) {
      // Per-subnet LLR trajectory, sampled by the sim-time sampler into a
      // series. Integer micro-nats (EL014).
      const std::string name = "detect.llr." + std::to_string((subnet >> 16) & 0xff) +
                               "." + std::to_string((subnet >> 8) & 0xff) + "." +
                               std::to_string(subnet & 0xff);
      st.llr_gauge = ESCORT_METRIC_GAUGE(m, name, "SPRT log-likelihood ratio, micro-nats");
    }
  }
  st.llr += outcome == TcpConnOutcome::kCompleted ? inc_good_ : inc_bad_;
  st.observations += 1;
  MetricSet(st.llr_gauge, st.llr);
  if (st.llr >= accept_llr_) {
    // H1 accepted: the subnet's bad-outcome rate is lambda1-like.
    ReportDetection(remote, "sprt");
    st.llr = 0;
    st.observations = 0;
    st.holdoff_until = now + spec_.sprt_holdoff;
    MetricSet(st.llr_gauge, st.llr);
  } else if (st.llr <= reject_llr_) {
    // H0 accepted: benign. Restart the test so the subnet stays watched.
    st.llr = 0;
    st.observations = 0;
    MetricSet(st.llr_gauge, st.llr);
  }
}

// ---------------------------------------------------------------------------
// BaselineDetector

BaselineDetector::BaselineDetector(EscortWebServer* server, BlacklistPolicy* blacklist,
                                   const DetectSpec& spec, Cycles warmup)
    : DetectionPolicy(server, blacklist),
      spec_(spec),
      warmup_end_(server->kernel().now() + warmup) {
  server_->paths().set_teardown_hook(
      [this](Path* path, bool killed) { OnTeardown(path, killed); });
  server_->kernel().set_ledger_watch(
      [this](Owner* owner, Thread* t) { return WatchThread(owner, t); });
  // The scan is kernel work (the ledger readout the paper's accounting
  // makes cheap): a kernel-owned periodic event, like the softclock.
  // NOLINT-EA001(kernel-owned event: the kernel outlives the sweep cell; the detector cancels it in its destructor before the server dies)
  scan_event_ = server_->kernel().RegisterEvent(
      server_->kernel().kernel_owner(), "detect-scan", spec_.baseline_scan_period,
      spec_.baseline_scan_period, server_->kernel().costs().tcp_timeout_scan, kKernelDomain,
      [this] { ScanLivePaths(); });
}

BaselineDetector::~BaselineDetector() {
  server_->kernel().CancelEvent(scan_event_);
  server_->kernel().set_ledger_watch(nullptr);
  server_->paths().set_teardown_hook(nullptr);
}

bool BaselineDetector::WatchThread(Owner* owner, Thread* /*t*/) {
  if (owner->type() != OwnerType::kPath) {
    return false;
  }
  if (!frozen_) {
    if (server_->kernel().now() < warmup_end_) {
      return false;
    }
    Freeze();
  }
  auto* path = static_cast<Path*>(owner);
  auto raddr = path->attrs.GetInt("raddr");
  if (!raddr.has_value()) {
    return false;
  }
  if (!IsOutlier(ClassOf(*path), path->usage().cycles >> 10, path->usage().pages,
                 path->usage().iobuffer_locks)) {
    return false;
  }
  // Record before returning: the kernel kills the path (via the runaway
  // machinery) as soon as we say yes, and the teardown hook must see the
  // detection as already confirmed.
  ReportDetection(Ip4Addr{static_cast<uint32_t>(*raddr)}, "baseline");
  ++paths_killed_;
  return true;
}

uint64_t BaselineDetector::samples_learned(const std::string& cls) const {
  auto it = classes_.find(cls);
  return it == classes_.end() ? 0 : it->second.n;
}

void BaselineDetector::LearnSample(const std::string& cls, uint64_t kilocycles, uint64_t pages,
                                   uint64_t iobuffer_locks) {
  if (frozen_) {
    return;
  }
  ClassStats& st = classes_[cls];
  st.n += 1;
  st.kilocycles.sum += kilocycles;
  st.kilocycles.sum_sq += kilocycles * kilocycles;
  st.pages.sum += pages;
  st.pages.sum_sq += pages * pages;
  st.iobuffer_locks.sum += iobuffer_locks;
  st.iobuffer_locks.sum_sq += iobuffer_locks * iobuffer_locks;
}

bool BaselineDetector::DimensionExceeds(const Moments& m, uint64_t n, uint64_t value) const {
  // mean + k*sigma from integer moments. Computed fresh from the same
  // integers every time — no accumulated float state, so the comparison is
  // a pure function of the sample set and bit-stable across shard counts.
  double dn = static_cast<double>(n);
  double mean = static_cast<double>(m.sum) / dn;
  double var = static_cast<double>(m.sum_sq) / dn - mean * mean;
  if (var < 0.0) {
    var = 0.0;
  }
  double sigma = std::sqrt(var);
  double sigma_floor = spec_.baseline_sigma_floor_frac * mean + 1.0;
  if (sigma < sigma_floor) {
    sigma = sigma_floor;
  }
  return static_cast<double>(value) > mean + spec_.baseline_k_sigma * sigma;
}

bool BaselineDetector::IsOutlier(const std::string& cls, uint64_t kilocycles, uint64_t pages,
                                 uint64_t iobuffer_locks) const {
  auto it = classes_.find(cls);
  if (it == classes_.end() || it->second.n < spec_.baseline_min_samples) {
    return false;  // unlearned class: never flag on ignorance
  }
  const ClassStats& st = it->second;
  return DimensionExceeds(st.kilocycles, st.n, kilocycles) ||
         DimensionExceeds(st.pages, st.n, pages) ||
         DimensionExceeds(st.iobuffer_locks, st.n, iobuffer_locks);
}

void BaselineDetector::OnTeardown(Path* path, bool killed) {
  if (frozen_ || killed) {
    return;  // killed paths are the anomaly; never let them set the norm
  }
  if (server_->kernel().now() >= warmup_end_) {
    Freeze();
    return;
  }
  // Only TCP active paths (they carry the remote address attribute) have a
  // request-class consumption profile worth learning.
  if (!path->attrs.GetInt("raddr").has_value()) {
    return;
  }
  LearnSample(ClassOf(*path), path->usage().cycles >> 10, path->usage().pages,
              path->usage().iobuffer_locks);
}

void BaselineDetector::ScanLivePaths() {
  Kernel& kernel = server_->kernel();
  if (!frozen_) {
    if (kernel.now() < warmup_end_) {
      return;  // still learning
    }
    Freeze();
  }
  // Ledger readout cost: proportional to the live-path population, like
  // the TCP master scan.
  kernel.Consume(kernel.costs().tcp_timeout_scan * server_->paths().live_paths().size());

  // Collect ids first: killing mutates the live list. Revalidate through
  // FindLive at kill time (the EA001 idiom).
  std::vector<uint64_t> outliers;
  std::vector<Ip4Addr> addrs;
  for (Path* path : server_->paths().live_paths()) {
    auto raddr = path->attrs.GetInt("raddr");
    if (!raddr.has_value()) {
      continue;
    }
    if (IsOutlier(ClassOf(*path), path->usage().cycles >> 10, path->usage().pages,
                  path->usage().iobuffer_locks)) {
      outliers.push_back(path->id());
      addrs.push_back(Ip4Addr{static_cast<uint32_t>(*raddr)});
    }
  }
  for (size_t i = 0; i < outliers.size(); ++i) {
    Path* path = server_->paths().FindLive(outliers[i]);
    if (path == nullptr) {
      continue;
    }
    // Report first (the kill's teardown hook must see the entry as an
    // already-confirmed detection), then reclaim. ReportDetection chains
    // the blacklist; KillPathForViolation deliberately skips the server's
    // violation hook so the strike is not double-counted.
    ReportDetection(addrs[i], "baseline");
    server_->KillPathForViolation(path);
    ++paths_killed_;
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<DetectionPolicy> MakeDetector(EscortWebServer* server, BlacklistPolicy* blacklist,
                                              const DetectSpec& spec, Cycles warmup) {
  switch (spec.mode) {
    case DetectMode::kOff:
      return nullptr;
    case DetectMode::kSprt:
      return std::make_unique<SprtDetector>(server, blacklist, spec);
    case DetectMode::kBaseline:
      return std::make_unique<BaselineDetector>(server, blacklist, spec, warmup);
  }
  return nullptr;
}

}  // namespace escort
