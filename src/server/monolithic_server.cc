#include "src/server/monolithic_server.h"

#include <algorithm>

namespace escort {

MonolithicServer::MonolithicServer(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr ip,
                                   CostModel costs)
    : eq_(eq), link_(link), mac_(mac), ip_(ip), costs_(costs) {
  link_->Attach(mac_, this, NetworkModel::Calibrated().server_link_latency);
}

MonolithicServer::~MonolithicServer() { link_->Detach(mac_); }

void MonolithicServer::AddDocument(const std::string& name, uint64_t size) {
  std::vector<uint8_t> bytes(size);
  for (uint64_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<uint8_t>('A' + (i % 26));
  }
  docs_[name] = std::move(bytes);
}

void MonolithicServer::CpuRun(Cycles cost, std::function<void()> fn) {
  Cycles start = std::max(eq_->now(), cpu_free_);
  cpu_free_ = start + cost;
  cpu_busy_total_ += cost;
  eq_->ScheduleAt(cpu_free_, std::move(fn));
}

double MonolithicServer::cpu_utilization(Cycles window) const {
  if (window == 0) {
    return 0.0;
  }
  return static_cast<double>(cpu_busy_total_) / static_cast<double>(window);
}

void MonolithicServer::SendSegment(const ConnKey& key, uint8_t flags, uint32_t seq, uint32_t ack,
                                   const std::vector<uint8_t>& payload) {
  auto mac = arp_.find(key.remote_addr);
  MacAddr dst = mac != arp_.end() ? mac->second : MacAddr::Broadcast();
  TcpHeader hdr;
  hdr.src_port = key.local_port;
  hdr.dst_port = key.remote_port;
  hdr.seq = seq;
  hdr.ack = ack;
  hdr.flags = flags;
  link_->Send(mac_, BuildTcpFrame(mac_, dst, ip_, key.remote_addr, hdr, payload));
}

void MonolithicServer::DeliverFrame(const std::vector<uint8_t>& frame) {
  auto parsed = ParseFrame(frame);
  if (!parsed.has_value()) {
    return;
  }
  if (parsed->is_arp) {
    arp_[parsed->arp.sender_ip] = parsed->arp.sender_mac;
    if (parsed->arp.opcode == 1 && parsed->arp.target_ip == ip_) {
      ArpPacket reply;
      reply.opcode = 2;
      reply.sender_mac = mac_;
      reply.sender_ip = ip_;
      reply.target_mac = parsed->arp.sender_mac;
      reply.target_ip = parsed->arp.sender_ip;
      link_->Send(mac_, BuildArpFrame(mac_, parsed->arp.sender_mac, reply));
    }
    return;
  }
  if (!parsed->is_tcp || parsed->ip.dst != ip_ || !parsed->tcp.checksum_ok) {
    return;
  }
  arp_[parsed->ip.src] = parsed->eth.src;
  // Interrupt + softirq processing occupies the CPU before the stack runs.
  WireFrame f = std::move(*parsed);
  CpuRun(costs_.linux_syn_cost / 2, [this, f = std::move(f)] { HandleTcp(f); });
}

void MonolithicServer::HandleTcp(const WireFrame& f) {
  ConnKey key{ip_, f.tcp.dst_port, f.ip.src, f.tcp.src_port};
  auto it = conns_.find(key);

  if (it == conns_.end()) {
    if ((f.tcp.flags & kTcpSyn) != 0 && (f.tcp.flags & kTcpAck) == 0 && f.tcp.dst_port == 80) {
      // Global listen queue: no notion of who is asking (the paper's
      // motivating weakness — all accounting happens after dispatch).
      if (half_open_ >= costs_.linux_syn_backlog) {
        ++syn_drops_;
        return;
      }
      Conn c;
      c.key = key;
      c.iss = next_iss_;
      next_iss_ += 64'000;
      c.snd_nxt = c.iss + 1;
      c.snd_una = c.iss;
      c.send_base = c.iss + 1;
      c.rcv_nxt = f.tcp.seq + 1;
      conns_[key] = c;
      ++half_open_;
      SendSegment(key, kTcpSyn | kTcpAck, c.iss, c.rcv_nxt, {});
    }
    return;
  }

  Conn& c = it->second;
  if ((f.tcp.flags & kTcpRst) != 0) {
    if (c.state == Conn::State::kSynRecvd && half_open_ > 0) {
      --half_open_;
    }
    conns_.erase(it);
    return;
  }

  if ((f.tcp.flags & kTcpAck) != 0) {
    if (c.state == Conn::State::kSynRecvd && f.tcp.ack == c.iss + 1) {
      c.state = Conn::State::kEstablished;
      if (half_open_ > 0) {
        --half_open_;
      }
    }
    if (static_cast<int32_t>(f.tcp.ack - c.snd_una) > 0) {
      c.snd_una = f.tcp.ack;
      c.cwnd_segments = std::min<uint32_t>(c.cwnd_segments + 1, 16);
      if (c.fin_sent && c.snd_una == c.fin_seq + 1) {
        if (c.state == Conn::State::kFinWait1) {
          c.state = Conn::State::kFinWait2;
        }
      } else {
        PumpSend(c);
      }
    }
  }

  uint32_t seg_len = static_cast<uint32_t>(f.payload.size());
  if (seg_len > 0 && f.tcp.seq == c.rcv_nxt) {
    c.rcv_nxt += seg_len;
    c.reqbuf.append(reinterpret_cast<const char*>(f.payload.data()), seg_len);
    SendSegment(c.key, kTcpAck, c.snd_nxt, c.rcv_nxt, {});
    if (!c.responded && c.reqbuf.find("\r\n\r\n") != std::string::npos) {
      c.responded = true;
      // Process-per-connection: fork + exec + Apache request handling.
      ConnKey k = c.key;
      uint64_t body_len = 0;
      size_t sp1 = c.reqbuf.find(' ');
      size_t sp2 = c.reqbuf.find(' ', sp1 + 1);
      std::string target =
          sp1 != std::string::npos && sp2 != std::string::npos
              ? c.reqbuf.substr(sp1 + 1, sp2 - sp1 - 1)
              : "";
      auto doc = docs_.find(target);
      if (doc != docs_.end()) {
        body_len = doc->second.size();
      }
      Cycles cost = costs_.linux_request_cpu + body_len * costs_.linux_request_per_byte;
      CpuRun(cost, [this, k, target] {
        auto conn = conns_.find(k);
        if (conn == conns_.end()) {
          return;
        }
        HandleRequest(conn->second);
        (void)target;
      });
    }
  } else if (seg_len > 0) {
    SendSegment(c.key, kTcpAck, c.snd_nxt, c.rcv_nxt, {});
  }

  if ((f.tcp.flags & kTcpFin) != 0 && f.tcp.seq + seg_len == c.rcv_nxt) {
    c.rcv_nxt += 1;
    SendSegment(c.key, kTcpAck, c.snd_nxt, c.rcv_nxt, {});
    if (c.state == Conn::State::kFinWait2 || c.state == Conn::State::kFinWait1) {
      conns_.erase(it);
    }
  }
}

void MonolithicServer::HandleRequest(Conn& c) {
  size_t sp1 = c.reqbuf.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos : c.reqbuf.find(' ', sp1 + 1);
  std::string target;
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    target = c.reqbuf.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  auto doc = docs_.find(target);
  std::string hdr;
  if (doc == docs_.end()) {
    hdr = "HTTP/1.0 404 Not Found\r\nServer: Apache/1.2.6\r\nContent-Length: 0\r\n\r\n";
  } else {
    hdr = "HTTP/1.0 200 OK\r\nServer: Apache/1.2.6\r\nContent-Length: " +
          std::to_string(doc->second.size()) + "\r\n\r\n";
  }
  c.sendbuf.assign(hdr.begin(), hdr.end());
  if (doc != docs_.end()) {
    c.sendbuf.insert(c.sendbuf.end(), doc->second.begin(), doc->second.end());
  }
  c.send_base = c.snd_nxt;
  ++served_;
  PumpSend(c);
}

void MonolithicServer::PumpSend(Conn& c) {
  constexpr uint32_t kMss = 1460;
  for (;;) {
    uint32_t in_flight = c.snd_nxt - c.snd_una;
    if (in_flight >= c.cwnd_segments * kMss) {
      return;
    }
    uint32_t off = c.snd_nxt - c.send_base;
    if (off >= c.sendbuf.size()) {
      break;
    }
    uint32_t len = std::min<uint32_t>(kMss, static_cast<uint32_t>(c.sendbuf.size()) - off);
    std::vector<uint8_t> payload(c.sendbuf.begin() + off, c.sendbuf.begin() + off + len);
    SendSegment(c.key, kTcpAck | kTcpPsh, c.snd_nxt, c.rcv_nxt, payload);
    c.snd_nxt += len;
  }
  if (!c.fin_sent && c.responded && c.snd_nxt - c.send_base >= c.sendbuf.size()) {
    c.fin_sent = true;
    c.fin_seq = c.snd_nxt;
    SendSegment(c.key, kTcpFin | kTcpAck, c.snd_nxt, c.rcv_nxt, {});
    c.snd_nxt += 1;
    c.state = Conn::State::kFinWait1;
  }
}

}  // namespace escort
