#include "src/server/health.h"

#include "src/sim/trace.h"

namespace escort {

namespace {

// Default SLO rule set. Detection/containment rules watch the counters
// the kernel, TCP and policy layers maintain; pressure rules watch
// service-health symptoms. Thresholds are collapse-grade on purpose: a
// *defended* attack cell must not sit in a breached state forever (that
// would block the recovery milestone), and a benign cell must never
// breach at all.
std::vector<HealthRule> DefaultRules(const HealthConfig& c) {
  std::vector<HealthRule> rules;

  HealthRule goodput;
  goodput.name = "goodput-collapse";
  goodput.role = RuleRole::kPressure;
  goodput.kind = RuleKind::kRateBelowBaselineFrac;
  goodput.metric = "tcp.conns_completed";
  goodput.threshold = c.goodput_collapse_frac;
  goodput.persistence = c.goodput_persistence;
  goodput.trailing_samples = c.goodput_trailing_samples;
  rules.push_back(goodput);

  HealthRule p99;
  p99.name = "p99-latency";
  p99.role = RuleRole::kPressure;
  p99.kind = RuleKind::kHistogramP99Above;
  p99.metric = "tcp.conn_lifetime_us";
  p99.threshold = static_cast<double>(c.p99_latency_us);
  p99.persistence = c.p99_persistence;
  rules.push_back(p99);

  HealthRule backlog;
  backlog.name = "half-open-backlog";
  backlog.role = RuleRole::kPressure;
  backlog.kind = RuleKind::kGaugeAbove;
  backlog.metric = "tcp.half_open";
  backlog.threshold = static_cast<double>(c.half_open_high_water);
  backlog.persistence = 3;
  rules.push_back(backlog);

  if (c.total_pages > 0 && c.memory_page_frac > 0.0) {
    HealthRule mem;
    mem.name = "memory-pages";
    mem.role = RuleRole::kPressure;
    mem.kind = RuleKind::kGaugeAbove;
    mem.metric = "kernel.pages_in_use";
    mem.threshold = c.memory_page_frac * static_cast<double>(c.total_pages);
    mem.persistence = 3;
    rules.push_back(mem);
  }

  HealthRule decision;
  decision.name = "detector-decision";
  decision.role = RuleRole::kDetection;
  decision.kind = RuleKind::kCounterDeltaAbove;
  decision.metric = "detect.decisions";
  rules.push_back(decision);

  HealthRule runaway;
  runaway.name = "runaway-kill";
  runaway.role = RuleRole::kDetection;
  runaway.kind = RuleKind::kCounterDeltaAbove;
  runaway.metric = "kernel.runaway_detections";
  rules.push_back(runaway);

  // A per-subnet SYN-budget drop is both detection (the kernel named an
  // over-budget subnet) and containment (the SYN was refused), so the
  // same counter appears under both roles.
  HealthRule syn_detect;
  syn_detect.name = "syn-budget";
  syn_detect.role = RuleRole::kDetection;
  syn_detect.kind = RuleKind::kCounterDeltaAbove;
  syn_detect.metric = "tcp.syns_dropped";
  rules.push_back(syn_detect);

  HealthRule syn_drop;
  syn_drop.name = "syn-drop";
  syn_drop.role = RuleRole::kContainment;
  syn_drop.kind = RuleKind::kCounterDeltaAbove;
  syn_drop.metric = "tcp.syns_dropped";
  rules.push_back(syn_drop);

  HealthRule pathkill;
  pathkill.name = "path-kill";
  pathkill.role = RuleRole::kContainment;
  pathkill.kind = RuleKind::kCounterDeltaAbove;
  pathkill.metric = "server.paths_killed";
  rules.push_back(pathkill);

  HealthRule strike;
  strike.name = "blacklist-strike";
  strike.role = RuleRole::kContainment;
  strike.kind = RuleKind::kCounterDeltaAbove;
  strike.metric = "policy.strikes";
  rules.push_back(strike);

  return rules;
}

}  // namespace

HealthMonitor::HealthMonitor(MetricsRegistry* registry, HealthConfig config)
    : registry_(registry), config_(config), rules_(DefaultRules(config)) {
  states_.resize(rules_.size());
}

void HealthMonitor::AddRule(HealthRule rule) {
  rules_.push_back(std::move(rule));
  states_.resize(rules_.size());
}

void HealthMonitor::OpenWindow(Cycles now) {
  window_open_ = now;
  window_opened_ = true;
  const MetricCounter* completed = registry_->FindCounter("tcp.conns_completed");
  if (completed != nullptr && now > 0) {
    const double rate =
        static_cast<double>(completed->value()) / SecondsFromCycles(now);
    baseline_rate_ = rate >= config_.min_baseline_rate ? rate : 0.0;
  }
}

bool HealthMonitor::Evaluate(size_t i, Cycles now, uint64_t* delta_out) {
  const HealthRule& rule = rules_[i];
  RuleState& st = states_[i];
  *delta_out = 0;
  switch (rule.kind) {
    case RuleKind::kCounterDeltaAbove: {
      const MetricCounter* c = registry_->FindCounter(rule.metric);
      if (c == nullptr) return false;
      const uint64_t v = c->value();
      const uint64_t delta = v >= st.last_counter ? v - st.last_counter : 0;
      st.last_counter = v;
      *delta_out = delta;
      return static_cast<double>(delta) > rule.threshold;
    }
    case RuleKind::kGaugeAbove: {
      const MetricGauge* g = registry_->FindGauge(rule.metric);
      if (g == nullptr) return false;
      return static_cast<double>(g->value()) > rule.threshold;
    }
    case RuleKind::kHistogramP99Above: {
      const MetricHistogram* h = registry_->FindHistogram(rule.metric);
      if (h == nullptr || h->count() == 0) return false;
      return static_cast<double>(h->Percentile(0.99)) > rule.threshold;
    }
    case RuleKind::kRateBelowBaselineFrac: {
      const MetricCounter* c = registry_->FindCounter(rule.metric);
      if (c == nullptr || baseline_rate_ <= 0.0 || !window_opened_ ||
          now <= window_open_) {
        return false;
      }
      const uint32_t cap = rule.trailing_samples > 0 ? rule.trailing_samples : 1;
      if (st.ring.size() != cap) st.ring.assign(cap, 0);
      const uint64_t v = c->value();
      bool breach = false;
      if (st.ring_filled >= cap) {
        const uint64_t oldest = st.ring[st.ring_next];
        const double window_s =
            SecondsFromCycles(registry_->config().sample_interval) *
            static_cast<double>(cap);
        const double rate = static_cast<double>(v - oldest) / window_s;
        breach = rate < rule.threshold * baseline_rate_;
      }
      st.ring[st.ring_next] = v;
      st.ring_next = (st.ring_next + 1) % cap;
      if (st.ring_filled < cap) ++st.ring_filled;
      return breach;
    }
  }
  return false;
}

void HealthMonitor::Sample(Cycles now) {
  bool any_pressure = false;
  uint64_t detect_delta = 0;
  uint64_t contain_delta = 0;
  const std::string* detect_trigger = nullptr;
  const std::string* contain_trigger = nullptr;
  const std::string* pressure_trigger = nullptr;

  for (size_t i = 0; i < rules_.size(); ++i) {
    uint64_t delta = 0;
    const bool breach = Evaluate(i, now, &delta);
    RuleState& st = states_[i];
    if (!breach) {
      st.streak = 0;
      continue;
    }
    ++st.streak;
    const HealthRule& rule = rules_[i];
    switch (rule.role) {
      case RuleRole::kPressure:
        any_pressure = true;
        if (st.streak >= rule.persistence && pressure_trigger == nullptr) {
          pressure_trigger = &rule.name;
        }
        break;
      case RuleRole::kDetection:
        detect_delta += delta > 0 ? delta : 1;
        if (detect_trigger == nullptr) detect_trigger = &rule.name;
        break;
      case RuleRole::kContainment:
        contain_delta += delta > 0 ? delta : 1;
        if (contain_trigger == nullptr) contain_trigger = &rule.name;
        break;
    }
  }

  if (!open_) {
    const std::string* trigger = detect_trigger != nullptr ? detect_trigger
                                 : contain_trigger != nullptr ? contain_trigger
                                                              : pressure_trigger;
    if (trigger != nullptr) {
      open_ = true;
      clean_streak_ = 0;
      IncidentRecord rec;
      rec.trigger = *trigger;
      rec.onset = now;
      incidents_.push_back(rec);
      if (tracer_ != nullptr) tracer_->DumpFlight("incident:" + *trigger, now);
    }
  }

  if (!open_) return;
  IncidentRecord& rec = incidents_.back();
  if (any_pressure) ++rec.pressure_breaches;
  if (detect_trigger != nullptr) {
    rec.detection_signals += detect_delta;
    if (rec.detected == 0) rec.detected = now;
  }
  if (contain_trigger != nullptr) {
    rec.containment_actions += contain_delta;
    if (rec.contained == 0) rec.contained = now;
  }
  if (rec.contained != 0 && rec.recovered == 0) {
    if (any_pressure) {
      clean_streak_ = 0;
    } else if (now > rec.contained) {
      if (++clean_streak_ >= config_.recovery_clean_samples) rec.recovered = now;
    }
  }
}

}  // namespace escort
