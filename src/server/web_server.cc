#include "src/server/web_server.h"

#include "src/sim/metrics.h"

namespace escort {

const char* ServerConfigName(ServerConfig c) {
  switch (c) {
    case ServerConfig::kScout:
      return "Scout";
    case ServerConfig::kAccounting:
      return "Accounting";
    case ServerConfig::kAccountingPd:
      return "Accounting_PD";
  }
  return "?";
}

EscortWebServer::EscortWebServer(EventQueue* eq, SharedLink* link, WebServerOptions options)
    : options_(std::move(options)), link_(link) {
  KernelConfig kc;
  kc.accounting = options_.config != ServerConfig::kScout;
  kc.protection_domains = options_.config == ServerConfig::kAccountingPd;
  kc.scheduler = options_.scheduler;
  kc.costs = options_.costs;
  kernel_ = std::make_unique<Kernel>(eq, kc);
  // Attach before anything builds so boot-time work (listener passive
  // paths, module registration) appears in the timeline too.
  kernel_->set_tracer(options_.tracer);
  kernel_->set_metrics(options_.metrics);
  if (options_.metrics != nullptr) {
    m_paths_killed_ = ESCORT_METRIC_COUNTER(options_.metrics, "server.paths_killed",
                                            "paths destroyed for resource violations");
  }

  // Protection domains: in the PD configuration every module runs in its
  // own domain (the paper's worst case, Figure 3); otherwise everything is
  // configured into the privileged domain.
  auto domain_for = [&](const std::string& name) -> PdId {
    if (options_.config != ServerConfig::kAccountingPd) {
      return kKernelDomain;
    }
    return kernel_->CreateDomain(name)->pd_id();
  };

  graph_ = std::make_unique<ModuleGraph>(kernel_.get());
  eth_ = graph_->Add(std::make_unique<EthDriverModule>(options_.mac), domain_for("eth"));
  arp_ = graph_->Add(std::make_unique<ArpModule>(options_.ip, options_.mac), domain_for("arp"));
  ip_ = graph_->Add(std::make_unique<IpModule>(options_.ip), domain_for("ip"));
  tcp_ = graph_->Add(std::make_unique<TcpModule>(options_.ip), domain_for("tcp"));
  http_ = graph_->Add(std::make_unique<HttpServerModule>(), domain_for("http"));
  cgi_ = graph_->Add(std::make_unique<CgiModule>(), domain_for("cgi"));
  fs_ = graph_->Add(std::make_unique<FsModule>(), domain_for("fs"));
  scsi_ = graph_->Add(std::make_unique<ScsiDiskModule>(), domain_for("scsi"));

  // The module graph of Figure 1 (plus CGI between HTTP and FS).
  graph_->Connect(eth_, arp_, ServiceInterface::kAsyncIo);
  graph_->Connect(eth_, ip_, ServiceInterface::kAsyncIo);
  graph_->Connect(ip_, arp_, ServiceInterface::kNameResolution);
  graph_->Connect(ip_, tcp_, ServiceInterface::kAsyncIo);
  graph_->Connect(tcp_, http_, ServiceInterface::kAsyncIo);
  graph_->Connect(http_, cgi_, ServiceInterface::kFileAccess);
  graph_->Connect(cgi_, fs_, ServiceInterface::kFileAccess);
  graph_->Connect(fs_, scsi_, ServiceInterface::kFileAccess);

  eth_->SetUpstream(ip_, arp_);
  ip_->SetNeighbors(tcp_, arp_);
  tcp_->SetNeighbors(ip_, http_);
  http_->SetNeighbors(tcp_, cgi_);
  cgi_->SetNeighbors(fs_);
  fs_->SetNeighbors(scsi_);

  eth_->SetTransmit([this](std::vector<uint8_t> frame) {
    link_->Send(options_.mac, std::move(frame));
  });
  link_->Attach(options_.mac, this, NetworkModel::Calibrated().server_link_latency);

  // On-link route for the whole testbed.
  ip_->routes().Add(Route{Subnet{Ip4Addr{0}, 0}, Ip4Addr{0}, 10});

  paths_ = std::make_unique<PathManager>(kernel_.get(), graph_.get());
  graph_->InitAll(paths_.get());

  // Publish documents.
  for (const auto& doc : options_.documents) {
    fs_->AddDocument(doc.name, doc.size);
  }

  // Listeners (passive paths). With split_listeners the SYN policy gets a
  // trusted and an untrusted passive path; the untrusted one is budgeted.
  if (options_.split_listeners) {
    trusted_listener_ = tcp_->Listen(80, options_.trusted_subnet);
    untrusted_listener_ = tcp_->Listen(80, Subnet{Ip4Addr{0}, 0});
    untrusted_listener_->syn_limit = options_.untrusted_syn_limit;
    // Slow-walk untrusted half-open connections: accepted-SYN rate under a
    // flood is budget/hold, so the long hold bounds the amplification.
    untrusted_listener_->syn_recvd_timeout = CyclesFromMillis(1500);
  } else {
    trusted_listener_ = tcp_->Listen(80, Subnet{Ip4Addr{0}, 0});
    untrusted_listener_ = trusted_listener_;
  }
  for (TcpListener* l : {trusted_listener_, untrusted_listener_}) {
    l->active_label = "Main Active Path";
    l->active_tickets = options_.active_tickets;
    l->active_max_run = options_.active_max_run;
  }

  // Runaway policy: the 2 ms CPU budget was exceeded -> pathKill. The kill
  // reclaims every resource of the path in every domain it crosses.
  kernel_->set_runaway_handler([this](Owner* owner, Thread* /*t*/) {
    if (owner->type() != OwnerType::kPath) {
      return;
    }
    auto* path = static_cast<Path*>(owner);
    if (violation_hook_) {
      // The offender's address is a path invariant fixed at creation.
      if (auto raddr = path->attrs.GetInt("raddr"); raddr.has_value()) {
        violation_hook_(Ip4Addr{static_cast<uint32_t>(*raddr)});
      }
    }
    Cycles cost = paths_->Kill(path);
    ++paths_killed_;
    MetricAdd(m_paths_killed_);
    kill_cost_cycles_.Add(static_cast<double>(cost));
  });
  // Protection faults (illegal domain crossing) get the same treatment.
  kernel_->set_fault_handler([this](Owner* owner, Thread* /*t*/) {
    if (owner->type() != OwnerType::kPath) {
      return;
    }
    auto* path = static_cast<Path*>(owner);
    Cycles cost = paths_->Kill(path);
    ++paths_killed_;
    MetricAdd(m_paths_killed_);
    kill_cost_cycles_.Add(static_cast<double>(cost));
  });
}

EscortWebServer::~EscortWebServer() {
  if (link_ != nullptr) {
    link_->Detach(options_.mac);
  }
}

void EscortWebServer::DeliverFrame(const std::vector<uint8_t>& frame) {
  eth_->ReceiveFrame(frame);
}

EscortWebServer::ConnSlabStats EscortWebServer::conn_slab_stats() const {
  const Slab<TcpPcb>& slab = tcp_->pcb_slab();
  ConnSlabStats s;
  s.slot_bytes = Slab<TcpPcb>::slot_bytes();
  s.live = slab.live();
  s.high_water = slab.high_water();
  s.bytes_reserved = slab.bytes_reserved();
  return s;
}

Cycles EscortWebServer::KillPathForViolation(Path* path) {
  Cycles cost = paths_->Kill(path);
  ++paths_killed_;
  MetricAdd(m_paths_killed_);
  kill_cost_cycles_.Add(static_cast<double>(cost));
  return cost;
}

void EscortWebServer::ConfigureQosListener(TcpListener* listener) {
  listener->active_label = "QoS Path";
  listener->active_tickets = options_.qos_tickets;
  if (MetricsRegistry* m = kernel_->metrics(); m != nullptr) {
    m_qos_tickets_ = ESCORT_METRIC_GAUGE(m, "policy.qos_tickets",
                                         "proportional-share tickets for QoS paths");
    m_qos_tickets_->Set(static_cast<int64_t>(options_.qos_tickets));
  }
  Tracer* t = kernel_->tracer();
  if (t != nullptr && t->lifecycle_enabled()) {
    // QoS throttling is ticket-based: record the share decision so the
    // timeline explains why QoS paths outrun best-effort ones.
    t->Instant(kernel_->now(), "policy", "qos-tickets", "policy",
               {{"tickets", Tracer::Num(options_.qos_tickets)}});
  }
  // A QoS stream legitimately consumes CPU for long stretches; exempt it
  // from the runaway budget (it yields at every hop anyway).
  listener->active_max_run = 0;
}

}  // namespace escort
