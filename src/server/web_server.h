// The Escort web server: the paper's example system.
//
// Assembles the module graph of Figure 1 (ETH, ARP, IP, TCP, HTTP, FS,
// SCSI — plus the CGI module), places the modules into protection domains
// according to the configuration, boots the kernel, opens the listeners
// (passive paths) and installs the DoS policies:
//
//   * per-subnet passive paths with a demux-time SYN_RECVD budget
//     (§4.4.1),
//   * a per-owner CPU budget (2 ms without yield) whose violation triggers
//     pathKill (§4.4.3),
//   * proportional-share tickets for QoS paths (§4.4.2).
//
// The three measured configurations (§4.1.1):
//   kScout         — single domain, no accounting (base Scout),
//   kAccounting    — single domain, fine-grain accounting,
//   kAccountingPd  — accounting + one protection domain per module.

#ifndef SRC_SERVER_WEB_SERVER_H_
#define SRC_SERVER_WEB_SERVER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fs/fs.h"
#include "src/fs/scsi.h"
#include "src/net/arp.h"
#include "src/net/eth.h"
#include "src/net/http.h"
#include "src/net/ip.h"
#include "src/net/tcp.h"
#include "src/path/path_manager.h"
#include "src/server/cgi.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/workload/network.h"

namespace escort {

enum class ServerConfig { kScout, kAccounting, kAccountingPd };

const char* ServerConfigName(ServerConfig c);

struct WebServerOptions {
  ServerConfig config = ServerConfig::kAccounting;
  SchedulerKind scheduler = SchedulerKind::kProportionalShare;
  CostModel costs = CostModel::Calibrated();

  MacAddr mac = MacAddr::FromIndex(1);
  Ip4Addr ip = Ip4Addr::FromOctets(10, 0, 0, 1);

  // SYN policy: when true, two passive paths are configured — one for the
  // trusted subnet (unlimited) and one for everything else, budgeted.
  bool split_listeners = true;
  Subnet trusted_subnet = Subnet{Ip4Addr::FromOctets(10, 0, 0, 0), 8};
  uint32_t untrusted_syn_limit = 4;

  // Per-owner CPU budget: runaway threads are detected after this much CPU
  // without a yield and their path is killed (0 disables).
  Cycles active_max_run = CyclesFromMillis(2.0);

  // Proportional-share tickets for regular active paths and for QoS paths.
  uint64_t active_tickets = 100;
  uint64_t qos_tickets = 12'000;

  // Documents published by the file system at boot.
  struct Doc {
    std::string name;
    uint64_t size;
  };
  std::vector<Doc> documents = {{"/doc1b", 1}, {"/doc1k", 1024}, {"/doc10k", 10240}};

  // Deterministic trace sink (see src/sim/trace.h). Not owned; null = off.
  Tracer* tracer = nullptr;

  // Metrics registry (see src/sim/metrics.h). Not owned; null = off. The
  // server installs it on its kernel, so every layer above (TCP, policy,
  // detectors) publishes through kernel().metrics().
  MetricsRegistry* metrics = nullptr;
};

class EscortWebServer : public NetEndpoint {
 public:
  EscortWebServer(EventQueue* eq, SharedLink* link, WebServerOptions options);
  ~EscortWebServer() override;

  EscortWebServer(const EscortWebServer&) = delete;
  EscortWebServer& operator=(const EscortWebServer&) = delete;

  // NetEndpoint: frames from the wire enter the ETH driver.
  void DeliverFrame(const std::vector<uint8_t>& frame) override;

  Kernel& kernel() { return *kernel_; }
  PathManager& paths() { return *paths_; }
  ModuleGraph& graph() { return *graph_; }
  const WebServerOptions& options() const { return options_; }

  EthDriverModule* eth() { return eth_; }
  ArpModule* arp() { return arp_; }
  IpModule* ip_module() { return ip_; }
  TcpModule* tcp() { return tcp_; }
  HttpServerModule* http() { return http_; }
  CgiModule* cgi() { return cgi_; }
  FsModule* fs() { return fs_; }
  ScsiDiskModule* scsi() { return scsi_; }

  TcpListener* trusted_listener() { return trusted_listener_; }
  TcpListener* untrusted_listener() { return untrusted_listener_; }

  // Marks a listener's future active paths as QoS paths (label + tickets).
  void ConfigureQosListener(TcpListener* listener);

  // DoS bookkeeping.
  uint64_t paths_killed() const { return paths_killed_; }
  Samples& kill_cost_cycles() { return kill_cost_cycles_; }

  // pathKill on behalf of a detection policy (src/server/detect.h):
  // charges the standard kill bookkeeping but does NOT invoke the
  // violation hook — the detector records its own violation, so the strike
  // would otherwise be double-counted. Returns the reclamation cost.
  Cycles KillPathForViolation(Path* path);

  // Memory footprint of the server-side connection table (slab-indexed
  // PCBs). Feeds the determinism-exempt `memory` block of the bench JSON.
  struct ConnSlabStats {
    size_t slot_bytes = 0;
    size_t live = 0;
    size_t high_water = 0;
    size_t bytes_reserved = 0;
  };
  ConnSlabStats conn_slab_stats() const;

  // Invoked with the remote address whenever a path is killed for a
  // resource-bound violation (feeds the blacklist policy).
  void set_violation_hook(std::function<void(Ip4Addr)> hook) {
    violation_hook_ = std::move(hook);
  }

  // Pre-seeds the server ARP table (the testbed's static neighbourhood).
  void AddArpEntry(Ip4Addr ip, MacAddr mac) { arp_->AddEntry(ip, mac); }

 private:
  WebServerOptions options_;
  SharedLink* link_ = nullptr;

  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<ModuleGraph> graph_;
  std::unique_ptr<PathManager> paths_;

  EthDriverModule* eth_ = nullptr;
  ArpModule* arp_ = nullptr;
  IpModule* ip_ = nullptr;
  TcpModule* tcp_ = nullptr;
  HttpServerModule* http_ = nullptr;
  CgiModule* cgi_ = nullptr;
  FsModule* fs_ = nullptr;
  ScsiDiskModule* scsi_ = nullptr;

  TcpListener* trusted_listener_ = nullptr;
  TcpListener* untrusted_listener_ = nullptr;

  uint64_t paths_killed_ = 0;
  Samples kill_cost_cycles_;
  std::function<void(Ip4Addr)> violation_hook_;
  MetricCounter* m_paths_killed_ = nullptr;
  MetricGauge* m_qos_tickets_ = nullptr;
};

}  // namespace escort

#endif  // SRC_SERVER_WEB_SERVER_H_
