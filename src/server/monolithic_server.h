// MonolithicServer: the Linux 2.0.34 + Apache 1.2.6 comparator.
//
// A calibrated *model*, not a Linux reproduction (see DESIGN.md §2): a
// monolithic kernel with a single CPU timeline, a global listen backlog
// (no pre-dispatch accounting — the classic SYN-flood weakness the paper's
// introduction describes), a process-per-connection cost for each request,
// and the measured 11,003-cycle kill+waitpid for Table 2. Its TCP speaks
// the same wire format as everything else in the testbed.

#ifndef SRC_SERVER_MONOLITHIC_SERVER_H_
#define SRC_SERVER_MONOLITHIC_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/workload/network.h"
#include "src/workload/wire.h"

namespace escort {

class MonolithicServer : public NetEndpoint {
 public:
  MonolithicServer(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr ip,
                   CostModel costs = CostModel::Calibrated());
  ~MonolithicServer() override;

  void AddDocument(const std::string& name, uint64_t size);

  void DeliverFrame(const std::vector<uint8_t>& frame) override;

  // Table 2 reference: cycles from kill(2) to waitpid(2) returning.
  Cycles KillProcessCost() const { return costs_.linux_kill_process; }

  uint64_t connections_served() const { return served_; }
  uint64_t syn_drops() const { return syn_drops_; }
  size_t half_open() const { return half_open_; }
  double cpu_utilization(Cycles window) const;

 private:
  struct Conn {
    ConnKey key;
    enum class State { kSynRecvd, kEstablished, kFinWait1, kFinWait2, kClosed } state =
        State::kSynRecvd;
    uint32_t iss = 0;
    uint32_t snd_nxt = 0;
    uint32_t snd_una = 0;
    uint32_t rcv_nxt = 0;
    std::string reqbuf;
    std::vector<uint8_t> sendbuf;
    uint32_t send_base = 0;  // seq of sendbuf[0]
    uint32_t cwnd_segments = 2;
    bool fin_sent = false;
    uint32_t fin_seq = 0;
    bool responded = false;
  };

  // Serializes work on the single CPU; runs `fn` when the CPU gets to it.
  void CpuRun(Cycles cost, std::function<void()> fn);
  void SendSegment(const ConnKey& key, uint8_t flags, uint32_t seq, uint32_t ack,
                   const std::vector<uint8_t>& payload);
  void HandleTcp(const WireFrame& f);
  void PumpSend(Conn& c);
  void HandleRequest(Conn& c);

  EventQueue* const eq_;
  SharedLink* const link_;
  const MacAddr mac_;
  const Ip4Addr ip_;
  const CostModel costs_;

  std::map<ConnKey, Conn> conns_;
  std::map<std::string, std::vector<uint8_t>> docs_;
  std::map<Ip4Addr, MacAddr> arp_;
  size_t half_open_ = 0;
  uint64_t served_ = 0;
  uint64_t syn_drops_ = 0;
  uint32_t next_iss_ = 99'000;
  Cycles cpu_free_ = 0;
  Cycles cpu_busy_total_ = 0;
};

}  // namespace escort

#endif  // SRC_SERVER_MONOLITHIC_SERVER_H_
