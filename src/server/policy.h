// DoS policy engine (paper §2.5, §4.4).
//
// The paper's measured policies live in the web server itself (per-subnet
// SYN budgets, the 2 ms runaway budget, QoS tickets). This module adds the
// *alternative* policies §4.4.4 sketches:
//
//  * Offender blacklisting: "clients that have previously violated some
//    resource bound can be identified and their future connection request
//    packets demultiplexed to a different distinct passive path with a very
//    small resource allocation." Implemented as a penalty listener with a
//    tiny SYN budget + low proportional-share tickets, fed by a blacklist
//    the runaway handler appends to.
//  * Passive-path CPU limiting: "the passive path that fields requests for
//    new TCP connections can be given a limited share of the CPU, meaning
//    that existing active paths are allowed to run in preference to
//    starting new paths."

#ifndef SRC_SERVER_POLICY_H_
#define SRC_SERVER_POLICY_H_

#include <cstdint>
#include <map>
#include <set>

#include "src/elib/address.h"
#include "src/net/tcp.h"
#include "src/sim/types.h"

namespace escort {

class EscortWebServer;

// Tracks resource-bound violators by source address and steers their
// future connection attempts onto a penalty passive path.
class BlacklistPolicy {
 public:
  struct Options {
    // Violations before an address is blacklisted.
    uint32_t strikes = 1;
    // Penalty listener budget: at most this many outstanding half-open
    // connections from blacklisted sources.
    uint32_t penalty_syn_limit = 1;
    // Proportional-share tickets for penalty-path connections.
    uint64_t penalty_tickets = 5;
    // Runaway budget for penalty-path connections: a known offender gets a
    // twentieth of the normal 2 ms before the kernel pulls the plug ("a
    // very small resource allocation").
    Cycles penalty_max_run = CyclesFromMillis(0.1);
    // Entries expire after this long (0 = never).
    Cycles expiry = 0;
    // Chain the server's violation hook so static-policy kills (runaway
    // budget) record strikes automatically. Detection experiments turn
    // this off: there the blacklist must be fed only by the detector's
    // confirmed decisions, or a warmup-time static kill blacklists every
    // attacker before the detector ever sees one.
    bool chain_violation_hook = true;
  };

  // Installs the policy on a running server: creates the penalty listener
  // and chains the runaway handler so violations are recorded.
  BlacklistPolicy(EscortWebServer* server, Options options);

  // Records a violation by `addr` (the runaway handler calls this).
  void RecordViolation(Ip4Addr addr, Cycles now);

  bool IsBlacklisted(Ip4Addr addr, Cycles now) const;
  size_t size() const { return entries_.size(); }
  uint64_t violations_recorded() const { return violations_; }
  TcpListener* penalty_listener() { return penalty_listener_; }

 private:
  struct Entry {
    uint32_t strikes = 0;
    Cycles last_violation = 0;
  };

  EscortWebServer* const server_;
  const Options options_;
  TcpListener* penalty_listener_ = nullptr;
  std::map<Ip4Addr, Entry> entries_;
  uint64_t violations_ = 0;
  MetricCounter* m_strikes_ = nullptr;
  MetricGauge* m_blacklist_size_ = nullptr;
};

}  // namespace escort

#endif  // SRC_SERVER_POLICY_H_
