// CGI: the untrusted script-execution module.
//
// Placed between HTTP and FS in the active web path so scripts run inside
// their own protection domain in the Accounting_PD configuration. File
// traffic passes through transparently. The /cgi-bin/loop target emulates
// the paper's attack: an infinite-loop thread on the request's path that
// never yields — detected by the kernel's max-runtime check and removed
// with pathKill.

#ifndef SRC_SERVER_CGI_H_
#define SRC_SERVER_CGI_H_

#include <cstdint>
#include <string>

#include "src/path/path.h"

namespace escort {

class CgiModule : public Module {
 public:
  CgiModule() : Module("CGI", {ServiceInterface::kFileAccess, ServiceInterface::kAsyncIo}) {}

  void SetNeighbors(Module* fs_above) { fs_ = fs_above; }

  // Work-chunk size of the runaway loop (it re-queues itself with no yield
  // until the kernel intervenes).
  Cycles runaway_chunk = CyclesFromMicros(50);

  OpenResult Open(Path* path, const Attributes& attrs) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t scripts_started() const { return scripts_; }
  uint64_t runaways_started() const { return runaways_; }
  uint64_t runaway_chunks_run() const { return chunks_; }

 private:
  void StartRunaway(Path* path);
  void PushRunawayChunk(Thread* t, Path* path);

  Module* fs_ = nullptr;
  uint64_t scripts_ = 0;
  uint64_t runaways_ = 0;
  uint64_t chunks_ = 0;
};

}  // namespace escort

#endif  // SRC_SERVER_CGI_H_
