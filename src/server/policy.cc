#include "src/server/policy.h"

#include "src/server/web_server.h"
#include "src/sim/metrics.h"

namespace escort {

BlacklistPolicy::BlacklistPolicy(EscortWebServer* server, Options options)
    : server_(server), options_(options) {
  // The penalty passive path: same port, whole Internet, but only reachable
  // through the demux override, with a tiny budget and tiny tickets.
  penalty_listener_ = server_->tcp()->Listen(80, Subnet{Ip4Addr{0}, 0});
  penalty_listener_->penalty = true;
  penalty_listener_->syn_limit = options_.penalty_syn_limit;
  penalty_listener_->active_label = "Penalty Path";
  penalty_listener_->active_tickets = options_.penalty_tickets;
  penalty_listener_->active_max_run = options_.penalty_max_run;

  server_->tcp()->listener_override = [this](Ip4Addr src) -> TcpListener* {
    if (IsBlacklisted(src, server_->kernel().now())) {
      return penalty_listener_;
    }
    return nullptr;
  };
  if (options_.chain_violation_hook) {
    server_->set_violation_hook(
        [this](Ip4Addr addr) { RecordViolation(addr, server_->kernel().now()); });
  }
  if (MetricsRegistry* m = server_->kernel().metrics(); m != nullptr) {
    m_strikes_ = ESCORT_METRIC_COUNTER(m, "policy.strikes",
                                       "resource-bound violations recorded");
    m_blacklist_size_ =
        ESCORT_METRIC_GAUGE(m, "policy.blacklist_size", "tracked offender addresses");
  }
}

void BlacklistPolicy::RecordViolation(Ip4Addr addr, Cycles now) {
  ++violations_;
  if (options_.expiry != 0) {
    // Expired entries are dead weight: under churning attacker subnets the
    // table would otherwise grow without bound (and size() misreport).
    // Violations are the only mutation point, so pruning here bounds the
    // table by the set of sources active within one expiry window.
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now >= it->second.last_violation + options_.expiry) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
  Entry& e = entries_[addr];
  e.strikes += 1;
  e.last_violation = now;
  MetricAdd(m_strikes_);
  MetricSet(m_blacklist_size_, static_cast<int64_t>(entries_.size()));
  Tracer* t = server_->kernel().tracer();
  if (t != nullptr && t->lifecycle_enabled()) {
    t->Instant(now, "policy", e.strikes >= options_.strikes ? "blacklist-insert"
                                                            : "blacklist-strike",
               "policy",
               {{"addr", Tracer::Str(addr.ToString())},
                {"strikes", Tracer::Num(e.strikes)}});
  }
}

bool BlacklistPolicy::IsBlacklisted(Ip4Addr addr, Cycles now) const {
  auto it = entries_.find(addr);
  if (it == entries_.end() || it->second.strikes < options_.strikes) {
    return false;
  }
  // Deadline convention (see the PR3 master-scan fix): a deadline landing
  // exactly on `now` is due *now* — expiry at `now >= deadline`, not one
  // cycle later.
  if (options_.expiry != 0 && now >= it->second.last_violation + options_.expiry) {
    return false;
  }
  return true;
}

}  // namespace escort
