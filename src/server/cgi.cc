#include "src/server/cgi.h"

#include "src/path/path_manager.h"

namespace escort {

OpenResult CgiModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.next = fs_;
  return r;
}

void CgiModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);

  if (dir == Direction::kDown) {
    // File data / errors pass through on their way back to HTTP.
    stage.path->ForwardDown(stage, std::move(msg));
    return;
  }

  switch (msg.kind) {
    case MsgKind::kFileRequest:
      // Static content: pass through to the file system.
      stage.path->ForwardUp(stage, std::move(msg));
      return;
    case MsgKind::kCgiRequest:
      break;
    default:
      return;
  }

  kernel()->ConsumeCharged(kernel()->costs().cgi_dispatch);
  ++scripts_;
  const std::string script = msg.note.rfind("/cgi-bin/", 0) == 0 ? msg.note.substr(9) : msg.note;

  if (script == "loop") {
    // The attack: a runaway script. The thread never yields; the kernel's
    // per-owner run budget catches it and the policy removes the path.
    ++runaways_;
    StartRunaway(stage.path);
    return;
  }

  if (script == "hello") {
    // A benign script: burn a little CPU, produce output.
    kernel()->Consume(CyclesFromMicros(200));
    static const char kBody[] = "Hello from the Escort CGI module\n";
    Message out =
        Message::Alloc(kernel(), stage.path, pd(), stage.path->StageDomains(), sizeof(kBody) - 1, 0);
    if (out.valid()) {
      out.Append(pd(), kBody, sizeof(kBody) - 1);
      out.kind = MsgKind::kFileData;
      stage.path->ForwardDown(stage, std::move(out));
    }
    return;
  }

  Message err = Message::Alloc(kernel(), stage.path, pd(), stage.path->StageDomains(), 1, 0);
  if (err.valid()) {
    err.kind = MsgKind::kFileError;
    stage.path->ForwardDown(stage, std::move(err));
  }
}

void CgiModule::StartRunaway(Path* path) {
  // Self-requeueing, never-yielding work chunks. The closure lives in the
  // thread's queue and dies with it when the path is killed; `path` and the
  // thread outlive every queued item.
  PushRunawayChunk(path->GrabThread(), path);
}

void CgiModule::PushRunawayChunk(Thread* t, Path* path) {
  t->Push(runaway_chunk, pd(),
          // NOLINT-EA001(t is the path's own thread: queued chunks are freed with the thread at pathKill, before path is reclaimed)
          [this, t, path] {
            ++chunks_;
            if (!path->destroyed()) {
              PushRunawayChunk(t, path);
            }
          },
          /*yields=*/false);
}

Cycles CgiModule::ProcessCost(Direction /*dir*/) const { return 800; }

}  // namespace escort
