// SLO health monitor and incident forensics (observability layer).
//
// The paper's defense story is a timeline: an attack *onsets*, the kernel
// ledger / detectors *detect* it, the policy layer *contains* it (SYN
// drops, path kills, blacklist inserts), and service *recovers*. The
// HealthMonitor turns the metrics plane (src/sim/metrics.h) into exactly
// that timeline: declarative SLO rules evaluated at each sim-time sample
// tick, feeding a single incident state machine per run that records
// onset -> detection -> containment -> recovery spans with derived
// time-to-detect (TTD) and time-to-recover (TTR).
//
// Rule roles:
//  * kPressure    — service degradation symptoms (goodput collapse vs the
//                   warmup baseline, p99 connection latency, half-open
//                   backlog high-water, memory-page high-water). Pressure
//                   alone opens an incident only after `persistence`
//                   consecutive breached samples.
//  * kDetection   — the system *named* a culprit (detector decision,
//                   runaway-budget kill, per-subnet SYN-budget drop).
//                   Opens an incident immediately and stamps `detected`.
//  * kContainment — resources were reclaimed or denied (SYN drops, path
//                   kills, blacklist strikes). Stamps `contained`.
//
// Recovery is a service-health milestone, not attacker departure: after
// containment, `recovery_clean_samples` consecutive ticks with zero
// pressure breaches stamp `recovered`. Under a sustained attack that the
// defense absorbs (the paper's point), recovery is therefore finite even
// though the attacker never stops. One incident per run: signals after
// the incident opens accumulate into its counts instead of opening
// reopen-flood incidents for every subsequent SYN drop.
//
// Everything runs on stream 0 at fixed sim times, so incident records are
// deterministic and byte-identical across --jobs/--shards (they are part
// of the schema-v6 bench JSON determinism contract).

#ifndef SRC_SERVER_HEALTH_H_
#define SRC_SERVER_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/sim/types.h"

namespace escort {

class Tracer;

enum class RuleRole : uint8_t { kPressure, kDetection, kContainment };

enum class RuleKind : uint8_t {
  // Counter grew since the previous sample (delta > threshold).
  kCounterDeltaAbove,
  // Gauge value > threshold.
  kGaugeAbove,
  // Histogram p99 > threshold (histogram unit, e.g. microseconds).
  kHistogramP99Above,
  // Trailing counter rate over `trailing_samples` ticks fell below
  // threshold (a fraction) times the warmup baseline rate. Disarmed until
  // OpenWindow() establishes a baseline.
  kRateBelowBaselineFrac,
};

struct HealthRule {
  std::string name;
  RuleRole role = RuleRole::kPressure;
  RuleKind kind = RuleKind::kGaugeAbove;
  std::string metric;  // registry metric name the rule watches
  double threshold = 0.0;
  // Consecutive breached samples before a pressure rule can open an
  // incident (detection/containment rules open on the first signal).
  uint32_t persistence = 1;
  // Window for kRateBelowBaselineFrac, in sample ticks.
  uint32_t trailing_samples = 20;
};

struct IncidentRecord {
  std::string trigger;  // rule that opened the incident
  Cycles onset = 0;
  Cycles detected = 0;    // 0 = no detection-class signal observed
  Cycles contained = 0;   // 0 = no containment-class signal observed
  Cycles recovered = 0;   // 0 = pressure never stayed clean post-containment
  uint64_t pressure_breaches = 0;
  uint64_t detection_signals = 0;
  uint64_t containment_actions = 0;

  bool has_ttd() const { return detected >= onset && detected != 0; }
  bool has_ttr() const { return recovered >= onset && recovered != 0; }
  // Milliseconds; -1 when the milestone was never reached.
  double ttd_ms() const { return has_ttd() ? MillisFromCycles(detected - onset) : -1.0; }
  double ttr_ms() const { return has_ttr() ? MillisFromCycles(recovered - onset) : -1.0; }
};

struct HealthConfig {
  // Goodput collapse: trailing completion rate < this fraction of the
  // warmup baseline rate.
  double goodput_collapse_frac = 0.35;
  uint32_t goodput_persistence = 4;
  uint32_t goodput_trailing_samples = 20;
  // Minimum warmup completion rate (conns/s) required to arm the goodput
  // rule; idle warmups give no meaningful baseline.
  double min_baseline_rate = 5.0;
  // p99 connection lifetime SLO, microseconds. Collapse-grade on purpose:
  // a loaded benign cell legitimately queues for ~100 ms of lifetime (64
  // clients over ~1000 conns/s is 64 ms by Little's law, and the log2
  // histogram rounds the p99 up to its bucket bound), so the default sits
  // an order of magnitude above that. Tighten per run via --health-p99-ms.
  uint64_t p99_latency_us = 1'000'000;
  uint32_t p99_persistence = 4;
  // Half-open backlog high-water. Deliberately far above the per-subnet
  // SYN budget (4) so a *defended* SYN flood never breaches it.
  int64_t half_open_high_water = 64;
  // Memory high-water as a fraction of total kernel pages (0 disables).
  double memory_page_frac = 0.5;
  uint64_t total_pages = 0;
  // Clean samples after containment before `recovered` is stamped.
  uint32_t recovery_clean_samples = 4;
};

class HealthMonitor {
 public:
  // Builds the default rule set over `registry`. The registry must
  // outlive the monitor.
  HealthMonitor(MetricsRegistry* registry, HealthConfig config);

  // Appends a custom rule (before the first Sample()).
  void AddRule(HealthRule rule);
  const std::vector<HealthRule>& rules() const { return rules_; }

  // Flight-recorder hookup: incident opening triggers a dump.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Captures the goodput baseline from warmup totals. Call once at the
  // measurement-window boundary (a serial point), before window samples.
  void OpenWindow(Cycles now);

  // Evaluates every rule and advances the incident state machine.
  // Called from the stream-0 sampler at fixed sim times after
  // MetricsRegistry::Sample. ESCORT_SERIAL_ONLY.
  void Sample(Cycles now);

  const std::vector<IncidentRecord>& incidents() const { return incidents_; }
  bool incident_open() const { return open_; }
  double baseline_rate() const { return baseline_rate_; }

 private:
  struct RuleState {
    uint64_t last_counter = 0;
    bool last_valid = false;
    uint32_t streak = 0;
    // Ring of counter values for trailing-rate rules.
    std::vector<uint64_t> ring;
    uint32_t ring_next = 0;
    uint32_t ring_filled = 0;
  };

  // Returns true when the rule's raw predicate breaches at this tick;
  // counter-delta rules report the delta through `delta_out`.
  bool Evaluate(size_t i, Cycles now, uint64_t* delta_out);

  MetricsRegistry* const registry_;
  const HealthConfig config_;
  Tracer* tracer_ = nullptr;
  std::vector<HealthRule> rules_;
  std::vector<RuleState> states_;
  double baseline_rate_ = 0.0;  // conns/s from warmup; 0 = not armed
  Cycles window_open_ = 0;
  bool window_opened_ = false;
  bool open_ = false;
  uint32_t clean_streak_ = 0;
  std::vector<IncidentRecord> incidents_;
};

}  // namespace escort

#endif  // SRC_SERVER_HEALTH_H_
