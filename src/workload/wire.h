// Raw-frame builders/parsers for the client machines.
//
// Client machines live outside the server under test, so they do not use
// kernel IOBuffers; they build and parse frames as plain byte vectors. The
// implementation is deliberately independent of src/net/headers.cc — the
// two codecs cross-check each other in the interop tests.

#ifndef SRC_WORKLOAD_WIRE_H_
#define SRC_WORKLOAD_WIRE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/elib/address.h"
#include "src/net/headers.h"

namespace escort {

struct WireFrame {
  EthHeader eth;
  Ip4Header ip;
  TcpHeader tcp;
  std::vector<uint8_t> payload;
  bool is_tcp = false;
  bool is_arp = false;
  ArpPacket arp;
};

// Builds a complete Ethernet+IPv4+TCP frame with correct checksums.
std::vector<uint8_t> BuildTcpFrame(const MacAddr& src_mac, const MacAddr& dst_mac, Ip4Addr src_ip,
                                   Ip4Addr dst_ip, const TcpHeader& tcp,
                                   const std::vector<uint8_t>& payload);

// Builds an Ethernet+ARP frame.
std::vector<uint8_t> BuildArpFrame(const MacAddr& src_mac, const MacAddr& dst_mac,
                                   const ArpPacket& arp);

// Parses a frame; returns nullopt on malformed input. Checksums are
// verified and reported in the embedded headers.
std::optional<WireFrame> ParseFrame(const std::vector<uint8_t>& bytes);

}  // namespace escort

#endif  // SRC_WORKLOAD_WIRE_H_
