#include "src/workload/placement.h"

#include <algorithm>
#include <numeric>

#include "src/workload/experiment.h"

namespace escort {

namespace {

// Rough bytes-per-request of the fetched document, parsed from the doc
// path ("/doc1b" → 1, "/doc1k" → 1024, "/doc10k" → 10240). Unknown names
// fall back to 1K — placement only needs relative magnitudes.
uint64_t DocBytes(const std::string& doc) {
  size_t pos = doc.find_first_of("0123456789");
  if (pos == std::string::npos) {
    return 1024;
  }
  uint64_t n = 0;
  while (pos < doc.size() && doc[pos] >= '0' && doc[pos] <= '9') {
    n = n * 10 + static_cast<uint64_t>(doc[pos] - '0');
    ++pos;
  }
  if (pos < doc.size() && (doc[pos] == 'k' || doc[pos] == 'K')) {
    n *= 1024;
  }
  return n == 0 ? 1024 : n;
}

// Weights from a prior round-robin run's per-shard events_fired: the prior
// run homed actor i on shard 1 + i % (P-1), so shard q's fired count is
// split evenly over the actors that lived there. Empty result = no usable
// profile (caller falls back to spec weights).
std::vector<uint64_t> ProfileWeights(const ExperimentSpec& spec, int actors) {
  const std::vector<uint64_t>& prior = spec.profile_shard_events;
  if (prior.size() < 2 || actors <= 0) {
    return {};
  }
  int lanes = static_cast<int>(prior.size()) - 1;
  std::vector<uint64_t> residents(static_cast<size_t>(lanes), 0);
  for (int i = 0; i < actors; ++i) {
    ++residents[static_cast<size_t>(i % lanes)];
  }
  std::vector<uint64_t> weights(static_cast<size_t>(actors), 1);
  for (int i = 0; i < actors; ++i) {
    size_t q = static_cast<size_t>(i % lanes);
    uint64_t share = residents[q] > 0 ? prior[q + 1] / residents[q] : 0;
    // Scale up so integer division keeps some resolution, floor at 1 so
    // idle actors still spread instead of stacking on one shard.
    weights[static_cast<size_t>(i)] = share * 16 + 1;
  }
  return weights;
}

}  // namespace

const char* PlacementModeName(PlacementMode mode) {
  switch (mode) {
    case PlacementMode::kRoundRobin:
      return "rr";
    case PlacementMode::kWeighted:
      return "weighted";
    case PlacementMode::kProfile:
      return "profile";
  }
  return "rr";
}

bool ParsePlacementMode(const std::string& name, PlacementMode* mode) {
  if (name == "rr") {
    *mode = PlacementMode::kRoundRobin;
    return true;
  }
  if (name == "weighted") {
    *mode = PlacementMode::kWeighted;
    return true;
  }
  if (name == "profile") {
    *mode = PlacementMode::kProfile;
    return true;
  }
  return false;
}

int ActorCount(const ExperimentSpec& spec) {
  int n = spec.clients + spec.cgi_attackers;
  if (spec.qos_stream) {
    ++n;
  }
  if (spec.syn_attack_rate > 0) {
    ++n;
  }
  return n;
}

std::vector<uint64_t> ActorWeights(const ExperimentSpec& spec) {
  std::vector<uint64_t> weights;
  weights.reserve(static_cast<size_t>(ActorCount(spec)));
  // Clients: a base of connection churn plus wire events proportional to
  // the document size (one TCP segment per ~256 bytes of payload).
  uint64_t client_weight = 64 + DocBytes(spec.doc) / 256;
  for (int i = 0; i < spec.clients; ++i) {
    weights.push_back(client_weight);
  }
  // CGI attackers fire one slow request per second — light on the wire.
  for (int i = 0; i < spec.cgi_attackers; ++i) {
    weights.push_back(24);
  }
  // The QoS stream is a steady bulk flow: heavier than any single client.
  if (spec.qos_stream) {
    weights.push_back(96);
  }
  // A SYN flood's event count scales directly with its rate.
  if (spec.syn_attack_rate > 0) {
    uint64_t w = static_cast<uint64_t>(spec.syn_attack_rate / 25.0);
    weights.push_back(w < 1 ? 1 : w);
  }
  return weights;
}

std::vector<int> ComputePlacement(const ExperimentSpec& spec) {
  int shards = spec.shards;
  if (shards < 1) {
    shards = 1;
  }
  if (shards > 64) {
    shards = 64;
  }
  int actors = ActorCount(spec);
  std::vector<int> map(static_cast<size_t>(actors), 0);
  int lanes = shards - 1;  // shard 0 is reserved for the server/kernel
  if (lanes <= 0 || actors == 0) {
    return map;
  }
  if (spec.placement == PlacementMode::kRoundRobin) {
    for (int i = 0; i < actors; ++i) {
      map[static_cast<size_t>(i)] = 1 + i % lanes;
    }
    return map;
  }
  std::vector<uint64_t> weights;
  if (spec.placement == PlacementMode::kProfile) {
    weights = ProfileWeights(spec, actors);
  }
  if (weights.empty()) {
    weights = ActorWeights(spec);
  }
  // LPT greedy bin packing: heaviest actor first onto the least-loaded
  // lane. stable_sort + lowest-lane tie-break keep the map a pure function
  // of the weights.
  std::vector<int> order(static_cast<size_t>(actors));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&weights](int a, int b) {
    return weights[static_cast<size_t>(a)] > weights[static_cast<size_t>(b)];
  });
  std::vector<uint64_t> load(static_cast<size_t>(lanes), 0);
  for (int i : order) {
    size_t lane = 0;
    for (size_t l = 1; l < load.size(); ++l) {
      if (load[l] < load[lane]) {
        lane = l;
      }
    }
    map[static_cast<size_t>(i)] = 1 + static_cast<int>(lane);
    load[lane] += weights[static_cast<size_t>(i)];
  }
  return map;
}

std::map<std::string, std::vector<uint64_t>> ParseProfileShardEvents(const std::string& json) {
  // Minimal scan of our own serializer's output (Sweep::ToJson): each cell
  // object carries "id": "..." followed later by "per_shard": [{...,
  // "events_fired": N, ...}, ...]. Keys are emitted with exactly one
  // colon-space, which is all this scanner relies on.
  std::map<std::string, std::vector<uint64_t>> out;
  size_t pos = 0;
  for (;;) {
    size_t id_key = json.find("\"id\": \"", pos);
    if (id_key == std::string::npos) {
      break;
    }
    size_t id_start = id_key + 7;
    size_t id_end = json.find('"', id_start);
    if (id_end == std::string::npos) {
      break;
    }
    std::string id = json.substr(id_start, id_end - id_start);
    size_t next_id = json.find("\"id\": \"", id_end);
    size_t block = json.find("\"per_shard\": [", id_end);
    if (block == std::string::npos || (next_id != std::string::npos && block > next_id)) {
      pos = id_end;
      continue;
    }
    size_t block_end = json.find(']', block);
    if (block_end == std::string::npos) {
      break;
    }
    std::vector<uint64_t> fired;
    size_t cursor = block;
    for (;;) {
      size_t key = json.find("\"events_fired\": ", cursor);
      if (key == std::string::npos || key > block_end) {
        break;
      }
      uint64_t n = 0;
      size_t digits = key + 16;
      while (digits < json.size() && json[digits] >= '0' && json[digits] <= '9') {
        n = n * 10 + static_cast<uint64_t>(json[digits] - '0');
        ++digits;
      }
      fired.push_back(n);
      cursor = digits;
    }
    if (!fired.empty()) {
      out[id] = std::move(fired);
    }
    pos = block_end;
  }
  return out;
}

}  // namespace escort
