// Experiment harness: builds the Figure 7 testbed, applies load, and
// measures using the paper's protocol (warm-up, then a fixed measurement
// window; the paper used 60 s + 10 s averages, scaled down here and
// overridable through ESCORT_WARMUP_S / ESCORT_WINDOW_S).

#ifndef SRC_WORKLOAD_EXPERIMENT_H_
#define SRC_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/server/detect.h"
#include "src/server/health.h"
#include "src/server/monolithic_server.h"
#include "src/server/web_server.h"
#include "src/sim/metrics.h"
#include "src/workload/http_client.h"
#include "src/workload/placement.h"

namespace escort {

struct ExperimentSpec {
  bool linux_server = false;               // use the Apache/Linux comparator
  ServerConfig config = ServerConfig::kAccounting;
  int clients = 1;
  std::string doc = "/doc1b";
  bool qos_stream = false;
  double syn_attack_rate = 0.0;            // SYNs/s from the untrusted subnet
  int cgi_attackers = 0;                   // one attack/s each
  int shards = 1;                          // event-queue shards (bit-identical at any N)
  // Adaptive per-shard lookahead horizons (ShardedEventQueue): collapses
  // the window count; results stay bit-identical either way.
  bool adaptive_lookahead = false;
  // Hierarchical timer wheel for ScheduleTimerAt/After (O(1) arm/cancel).
  // false routes timers through the comparison heap instead; results stay
  // bit-identical either way (the wheel preserves the queue's total event
  // order), only memory and host wall-clock change.
  bool timer_wheel = true;
  // Stream→shard placement for the actor machines (src/workload/
  // placement.h). Results are bit-identical for any map; only shard load
  // balance changes.
  PlacementMode placement = PlacementMode::kRoundRobin;
  // Resolved actor→shard map. Empty: computed from the spec by
  // BuildTestbed. The sweep runner resolves it up front so the bench JSON
  // records the exact map used.
  std::vector<int> placement_map;
  // Prior run's per-shard events_fired (profile placement mode); attached
  // by the sweep runner from --placement profile=PATH.
  std::vector<uint64_t> profile_shard_events;
  double warmup_s = 0.6;
  double window_s = 2.0;
  // Online attack detection (src/server/detect.h). kOff leaves the server
  // exactly as before — no hooks installed, no blacklist created.
  DetectSpec detect;
  WebServerOptions server_options;         // config/scheduler filled in by Run

  // Deterministic tracing (src/sim/trace.h). `trace.path` empty = off.
  // When `tracer` is null and tracing is on, RunExperiment owns a Tracer
  // and writes `trace.path` itself; the sweep runner instead passes a
  // per-cell sink here and merges all cells into one trace document.
  TraceConfig trace;
  Tracer* tracer = nullptr;                // not owned

  // Deterministic metrics plane (src/sim/metrics.h). Collection is on by
  // default — the registry feeds the HealthMonitor, so incidents land in
  // the bench JSON even without --metrics. A standalone JSON document is
  // written only when `metrics.path` is set (or the sweep runner passes a
  // per-cell `metrics_registry` sink and merges the cells itself).
  MetricsConfig metrics;
  MetricsRegistry* metrics_registry = nullptr;  // not owned
  bool collect_metrics = true;
  // SLO rules for the HealthMonitor (incident detection). Always active
  // when collect_metrics is on; thresholds are overridable per run.
  HealthConfig health;
};

// Memory footprint of one cell: slab/wheel occupancy and reservations at
// the end of the measurement window. The counts are deterministic, but the
// block is exempt from cross-run JSON equality (like shard_utilization)
// because it is exactly what the timer-wheel / heap-fallback axis is
// allowed to change while every workload metric stays bit-identical.
struct MemoryProfile {
  // Server-side TCP PCB slab (EscortWebServer only).
  uint64_t pcb_slot_bytes = 0;
  uint64_t pcb_live = 0;
  uint64_t pcb_high_water = 0;
  uint64_t pcb_bytes_reserved = 0;
  // Client-side TcpPeer slabs, summed over the per-shard pools.
  uint64_t peer_slot_bytes = 0;
  uint64_t peer_live = 0;
  uint64_t peer_high_water = 0;
  uint64_t peer_bytes_reserved = 0;
  // Timer wheels, summed over shards (all zero in heap-fallback mode).
  uint64_t timers_armed = 0;
  uint64_t timer_high_water = 0;
  uint64_t timer_capacity = 0;
  uint64_t timer_bytes_reserved = 0;
};

// Detection outcomes over the whole run (warmup + window), classified
// against the testbed's ground truth (the attacker addresses are fixed by
// construction). Deterministic at any --shards/--jobs; the digest is the
// equality witness.
struct DetectionStats {
  uint64_t detections = 0;
  uint64_t true_positives = 0;   // detections naming a real attacker
  uint64_t false_positives = 0;  // detections naming an innocent client
  uint64_t paths_killed_by_detector = 0;
  uint64_t blacklist_size = 0;  // entries at the window end
  // First true-positive latency, measured from the named attacker's start
  // time (0 when nothing was detected).
  double first_detection_ms = 0.0;
  // FNV-1a over the ordered (when, addr, source) decision sequence.
  uint64_t decision_digest = 0;
};

struct ExperimentResult {
  double conns_per_sec = 0.0;
  double qos_bytes_per_sec = 0.0;
  uint64_t completions_total = 0;
  uint64_t client_failures = 0;
  uint64_t paths_killed = 0;
  uint64_t syns_dropped_at_demux = 0;
  uint64_t syns_sent = 0;
  uint64_t runaway_detections = 0;
  double kill_cost_mean = 0.0;
  CycleLedger ledger;       // cycles by account label over the window
  Cycles window_cycles = 0;  // elapsed cycles in the window
  uint64_t pd_crossings = 0;
  Cycles accounting_overhead = 0;
  // Event-queue scheduling profile over the whole run (warmup + window):
  // feeds the bench JSON `shard_utilization` block. Inherently depends on
  // the shard partition, so it is excluded from cross-shard equality.
  ShardProfile shard_profile;
  // Slab and timer-wheel footprint at the end of the window: feeds the
  // bench JSON `memory` block (determinism-exempt, see MemoryProfile).
  MemoryProfile memory;
  // Detection decisions (bench JSON `detection` block). All-zero when
  // spec.detect.mode == kOff.
  DetectionStats detection;
  // HealthMonitor incident records (bench JSON schema-v6 `incidents`
  // block): onset → detection → containment → recovery with derived
  // TTD/TTR. Empty when collect_metrics is off or the run stayed healthy.
  std::vector<IncidentRecord> incidents;
  // Wall-clock spent inside the event-queue run (warmup + window), which
  // is what the bench JSON `perf` block rates: testbed construction and
  // teardown are setup cost, not scheduler throughput. Machine-dependent
  // by nature — excluded from cross-shard equality like shard_profile.
  double sim_wall_ms = 0.0;
};

// Scale factors from the environment (ESCORT_WARMUP_S / ESCORT_WINDOW_S),
// for quick runs vs full fidelity.
double EnvSeconds(const char* name, double fallback);

// The full testbed: server + clients + optional attackers/QoS stream.
ExperimentResult RunExperiment(const ExperimentSpec& spec);

// Table 1: N serial one-byte requests against an otherwise idle server;
// returns the ledger covering exactly those requests.
struct AccuracyResult {
  CycleLedger ledger;
  Cycles total_measured = 0;
  uint64_t requests = 0;
};
AccuracyResult RunAccountingAccuracy(ServerConfig config, uint64_t requests = 100);

// Table 2: launch runaway-CGI attacks and report the measured pathKill
// reclamation cost.
struct KillCostResult {
  double mean_cycles = 0.0;
  double min_cycles = 0.0;
  double max_cycles = 0.0;
  uint64_t kills = 0;
};
KillCostResult RunKillCost(ServerConfig config, int attacks = 10);

}  // namespace escort

#endif  // SRC_WORKLOAD_EXPERIMENT_H_
