// Deterministic stream→shard placement for the experiment testbed.
//
// Every actor (client machine, CGI attacker, QoS endpoint, SYN attacker)
// is one event stream; the server/kernel/link stay on shard 0 and actors
// are spread over shards 1..N-1. Placement changes only which shard an
// actor's stream is homed on — results are bit-identical for any map (the
// queue's total event order is independent of the partition) — but it
// decides how evenly event work spreads across the shards.
//
// Three modes, all pure functions of the experiment spec (plus, for
// profile mode, a prior run's per-shard event counts), so any placement is
// reproducible from the recorded bench JSON spec alone:
//
//  * round-robin — the historical default: actor i on shard 1 + i % (N-1).
//  * weighted    — spec-derived per-actor weights (a 10K-byte client costs
//                  more events than a CGI attacker) packed greedily,
//                  heaviest first, onto the least-loaded shard (LPT).
//  * profile     — weights taken from a prior round-robin run's
//                  `shard_utilization` per-shard `events_fired`, then LPT.
//                  Falls back to spec weights when no usable profile is
//                  attached.

#ifndef SRC_WORKLOAD_PLACEMENT_H_
#define SRC_WORKLOAD_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace escort {

struct ExperimentSpec;

enum class PlacementMode {
  kRoundRobin,
  kWeighted,
  kProfile,
};

// Canonical flag spelling ("rr", "weighted", "profile").
const char* PlacementModeName(PlacementMode mode);

// Parses a canonical mode name. Returns false on anything else.
bool ParsePlacementMode(const std::string& name, PlacementMode* mode);

// Number of actor streams BuildTestbed will create for `spec`, in
// construction order: clients, CGI attackers, QoS endpoint, SYN attacker.
int ActorCount(const ExperimentSpec& spec);

// Spec-derived relative weight per actor (same order as ActorCount).
// Weights are integer event-rate estimates — a client fetching a larger
// document ticks more wire/TCP events per request; the QoS stream is a
// steady high-rate flow; a SYN flood scales with its rate. Every weight is
// >= 1 so zero-weight actors still spread.
std::vector<uint64_t> ActorWeights(const ExperimentSpec& spec);

// Per-actor shard assignment for `spec` (same order as ActorCount); every
// entry is in [0, spec.shards). Shard 0 is returned for every actor when
// the spec has a single shard. Deterministic: depends only on the spec
// (and spec.profile_shard_events in profile mode).
std::vector<int> ComputePlacement(const ExperimentSpec& spec);

// Extracts per-cell per-shard `events_fired` from a bench JSON document
// (the output of Sweep::WriteJson): cell id → events_fired vector indexed
// by shard. Returns an empty map when the text contains no usable
// `per_shard` blocks. Pure text scan — no file or console I/O here.
std::map<std::string, std::vector<uint64_t>> ParseProfileShardEvents(const std::string& json);

}  // namespace escort

#endif  // SRC_WORKLOAD_PLACEMENT_H_
