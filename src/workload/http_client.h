// Workload drivers (paper §4.1.2):
//
//   HttpClient  — a regular client: serial requests for the same document.
//   CgiAttacker — one GET /cgi-bin/loop per second (runaway CGI script).
//   SynAttacker — raw SYNs at a fixed rate from the untrusted subnet,
//                 never completing the handshake.
//   QosReceiver — the endpoint of the 1 MB/s guaranteed TCP stream.

#ifndef SRC_WORKLOAD_HTTP_CLIENT_H_
#define SRC_WORKLOAD_HTTP_CLIENT_H_

#include <memory>
#include <string>

#include "src/sim/stats.h"
#include "src/workload/client_machine.h"

namespace escort {

// The workload drivers run on their machine's stream — a shard-worker
// context under --shards > 1. EA002: no ESCORT_SERIAL_ONLY calls here;
// completions go through ESCORT_SHARD_SAFE meters only.
//
// Each driver is a ConnOwner: one long-lived object receives the events of
// every connection it opens, instead of wiring four std::function callbacks
// (and a shared_ptr self-slot) into each TcpPeer — at a million clients
// that web of captures was most of the per-connection footprint.
// ESCORT_SHARD_CONTEXT
class HttpClient : public ConnOwner {
 public:
  HttpClient(ClientMachine* machine, Ip4Addr server, std::string target);

  void Start(Cycles initial_delay = 0);
  void Stop() { stopped_ = true; }

  // Completions are recorded here (shared across clients by the harness).
  void set_meter(RateMeter* meter) { meter_ = meter; }

  // Optional cap: stop after this many completed requests (0 = unlimited).
  uint64_t max_requests = 0;
  Cycles think_time = 0;            // delay between requests
  Cycles retry_backoff = CyclesFromMillis(200);

  uint64_t completed() const { return completed_; }
  uint64_t failed() const { return failed_; }
  uint64_t bytes_received() const { return bytes_; }
  Cycles last_completion() const { return last_completion_; }

 private:
  void StartRequest();
  void ScheduleNext(Cycles delay);

  void OnConnected(TcpPeer* peer) override;
  void OnData(TcpPeer* peer, const std::vector<uint8_t>& bytes) override;
  void OnClosed(TcpPeer* peer) override;
  void OnFailed(TcpPeer* peer) override;

  ClientMachine* const machine_;
  const Ip4Addr server_;
  const std::string target_;
  RateMeter* meter_ = nullptr;
  bool stopped_ = false;
  bool in_flight_ = false;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t bytes_ = 0;
  uint64_t req_bytes_this_conn_ = 0;
  Cycles last_completion_ = 0;
};

// ESCORT_SHARD_CONTEXT
class CgiAttacker : public ConnOwner {
 public:
  CgiAttacker(ClientMachine* machine, Ip4Addr server, Cycles period = CyclesFromSeconds(1.0));

  void Start(Cycles initial_delay = 0);
  void Stop() { stopped_ = true; }

  uint64_t attacks_launched() const { return attacks_; }

 private:
  void LaunchAttack();
  void OnConnected(TcpPeer* peer) override;

  ClientMachine* const machine_;
  const Ip4Addr server_;
  const Cycles period_;
  bool stopped_ = false;
  uint64_t attacks_ = 0;
};

// ESCORT_SHARD_CONTEXT
class SynAttacker {
 public:
  SynAttacker(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr src_ip, Ip4Addr server_ip,
              MacAddr server_mac, double syns_per_sec);

  void Start(Cycles initial_delay = 0);
  void Stop() { stopped_ = true; }

  uint64_t syns_sent() const { return sent_; }

 private:
  void SendOne();

  EventQueue* const eq_;
  SharedLink* const link_;
  const MacAddr mac_;
  const Ip4Addr src_ip_;
  const Ip4Addr server_ip_;
  const MacAddr server_mac_;
  const Cycles period_;
  bool stopped_ = false;
  uint64_t sent_ = 0;
  uint16_t next_port_ = 1;
  uint32_t next_seq_ = 7;
};

// ESCORT_SHARD_CONTEXT
class QosReceiver : public ConnOwner {
 public:
  QosReceiver(ClientMachine* machine, Ip4Addr server);

  void Start(Cycles initial_delay = 0);

  ThroughputMeter& meter() { return meter_; }
  bool connected() const { return connected_; }
  uint64_t bytes_received() const { return bytes_; }

 private:
  void Connect();
  void OnConnected(TcpPeer* peer) override;
  void OnData(TcpPeer* peer, const std::vector<uint8_t>& bytes) override;
  void OnClosed(TcpPeer* peer) override;
  void OnFailed(TcpPeer* peer) override;

  ClientMachine* const machine_;
  const Ip4Addr server_;
  ThroughputMeter meter_;
  bool connected_ = false;
  uint64_t bytes_ = 0;
};

}  // namespace escort

#endif  // SRC_WORKLOAD_HTTP_CLIENT_H_
