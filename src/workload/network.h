// The simulated testbed network (paper Figure 7).
//
// One shared 100 Mbps Ethernet segment connects the server, the QoS
// receiver, the SYN attacker, and (through the switch + hub, which we fold
// into per-endpoint latency) the client/attacker machines. The segment
// serializes transmissions (a busy medium delays later frames) so the QoS
// stream competes with client traffic for wire capacity exactly as in the
// paper's topology.

#ifndef SRC_WORKLOAD_NETWORK_H_
#define SRC_WORKLOAD_NETWORK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/elib/address.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"

namespace escort {

class NetEndpoint {
 public:
  virtual ~NetEndpoint() = default;
  virtual void DeliverFrame(const std::vector<uint8_t>& frame) = 0;
};

class SharedLink {
 public:
  SharedLink(EventQueue* eq, NetworkModel model) : eq_(eq), model_(model) {}

  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;

  // Attaches an endpoint. The port remembers the event queue's current
  // stream: deliveries to this endpoint execute in that stream's context
  // (testbeds construct each machine inside an EventQueue::StreamScope).
  void Attach(const MacAddr& mac, NetEndpoint* endpoint, Cycles extra_latency = 0);
  void Detach(const MacAddr& mac);

  // Transmits a frame. Unicast goes to the owner of the destination MAC;
  // broadcast goes to everyone except the sender. Delivery happens after
  // the medium frees up + serialization + latency.
  //
  // The medium is the one piece of state shared between streams, so the
  // send runs as a sequenced transaction (EventQueue::PostSequenced):
  // inline on a serial queue, deposited and drained in deterministic key
  // order on a sharded one. Either way arbitration order and results are
  // identical. Safe to call from any stream (EA002 barrier).
  // ESCORT_SHARD_SAFE
  void Send(const MacAddr& src, std::vector<uint8_t> frame);

  // Lower bound on the wire time of any frame (the 84-byte minimum wire
  // frame at link bandwidth). Every delivery happens at least this long
  // after its send, which makes it the conservative lookahead for
  // ShardedEventQueue.
  static Cycles MinDeliveryLatency(const NetworkModel& model);

  // Test hook: drop every n-th frame (0 = no loss).
  void set_drop_every(uint64_t n) { drop_every_ = n; }

  uint64_t frames_sent() const { return frames_; }
  uint64_t bytes_sent() const { return bytes_; }
  uint64_t frames_dropped() const { return dropped_; }
  double utilization(Cycles window_start, Cycles window_end) const;

 private:
  struct Port {
    NetEndpoint* endpoint = nullptr;
    Cycles extra_latency = 0;
    EventQueue::StreamId stream = 0;  // deliveries run in this stream
  };

  Cycles SerializationTime(size_t frame_bytes) const;
  // Body of Send: runs at a serial point in sequenced-transaction order.
  void TransmitSequenced(const MacAddr& src, const MacAddr& dst, std::vector<uint8_t> frame,
                         Cycles send_time);

  EventQueue* const eq_;
  const NetworkModel model_;
  std::map<MacAddr, Port, bool (*)(const MacAddr&, const MacAddr&)> ports_{
      [](const MacAddr& a, const MacAddr& b) { return a.bytes < b.bytes; }};
  Cycles medium_free_ = 0;
  uint64_t frames_ = 0;
  uint64_t bytes_ = 0;
  uint64_t dropped_ = 0;
  uint64_t drop_every_ = 0;
  Cycles busy_cycles_ = 0;
};

}  // namespace escort

#endif  // SRC_WORKLOAD_NETWORK_H_
