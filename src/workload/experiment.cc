#include "src/workload/experiment.h"

#include <cstdlib>
#include <map>

#include "src/kernel/audit.h"
#include "src/server/policy.h"
#include "src/sim/parallel.h"

namespace escort {

double EnvSeconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  double parsed = std::atof(v);
  return parsed > 0 ? parsed : fallback;
}

namespace {

// Fixed testbed addressing (Figure 7).
const Ip4Addr kServerIp = Ip4Addr::FromOctets(10, 0, 0, 1);
const MacAddr kServerMac = MacAddr::FromIndex(1);
const Ip4Addr kQosIp = Ip4Addr::FromOctets(10, 0, 2, 1);
const Ip4Addr kSynAttackerIp = Ip4Addr::FromOctets(192, 168, 9, 9);

// Client i's address. The first 254 stay on the historical 10.0.1/24 (the
// bench JSON goldens and every small-testbed test pin those bytes); larger
// cells spill into 10.8.0.0/13 and beyond, which the trusted 10/8 listener
// still covers. Good for ~16M clients before colliding with other subnets.
Ip4Addr ClientIp(int i) {
  if (i < 254) {
    return Ip4Addr::FromOctets(10, 0, 1, static_cast<uint8_t>(1 + i));
  }
  int j = i - 254;
  return Ip4Addr::FromOctets(10, static_cast<uint8_t>(8 + j / 65536),
                             static_cast<uint8_t>((j / 256) % 256),
                             static_cast<uint8_t>(j % 256));
}

// Client i's MAC index. The first 100 keep the historical 100+i; beyond
// that, jump past the CGI-attacker (200+i) and untrusted-test (300+i)
// ranges so a million clients never collide with another actor family.
uint64_t ClientMacIndex(int i) {
  return i < 100 ? 100 + static_cast<uint64_t>(i) : 1000 + static_cast<uint64_t>(i);
}
Ip4Addr CgiAttackerIp(int i) {
  return Ip4Addr::FromOctets(10, 0, 3, static_cast<uint8_t>(1 + i));
}

struct Testbed {
  // The sharded queue IS the serial queue at shards=1 — and bit-identical
  // to it at any other shard count (ordering keys are assigned per stream,
  // independent of the shard partition). The lookahead window is the
  // minimum link delivery latency: the only cross-stream interaction is
  // the wire.
  Testbed(int shards, bool adaptive)
      : eq(shards, SharedLink::MinDeliveryLatency(NetworkModel::Calibrated()), adaptive) {}

  ShardedEventQueue eq;
  std::unique_ptr<SharedLink> link;
  std::unique_ptr<EscortWebServer> server;
  std::unique_ptr<MonolithicServer> linux_server;
  // Declared after `server` so the end-of-run audit checks run while the
  // kernel is still alive (members are destroyed in reverse order).
  std::unique_ptr<AuditScope> audit;
  // Online detection (spec.detect.mode != kOff): the blacklist does the
  // containment, the detector feeds it. Declared after `server` so both
  // are destroyed first — the detector's destructor cancels its kernel
  // scan event and unhooks the path manager.
  std::unique_ptr<BlacklistPolicy> blacklist;
  std::unique_ptr<DetectionPolicy> detector;
  // One TcpPeer slab per shard, shared by every machine homed there (the
  // flyweight connection pool). Declared before `machines` so the slabs
  // outlive them: a machine's destructor releases its slots.
  std::vector<std::unique_ptr<Slab<TcpPeer>>> peer_slabs;
  std::vector<std::unique_ptr<ClientMachine>> machines;
  std::vector<std::unique_ptr<HttpClient>> clients;
  std::vector<std::unique_ptr<CgiAttacker>> cgi_attackers;
  std::unique_ptr<SynAttacker> syn_attacker;
  std::unique_ptr<ClientMachine> qos_machine;
  std::unique_ptr<QosReceiver> qos_receiver;
  RateMeter completions;
};

std::unique_ptr<Testbed> BuildTestbed(const ExperimentSpec& spec, Tracer* tracer = nullptr,
                                      MetricsRegistry* metrics = nullptr) {
  auto tb = std::make_unique<Testbed>(spec.shards, spec.adaptive_lookahead);
  // Must precede any construction that arms a timer (the server's master
  // event, client retransmits): heap-fallback mode is a whole-run choice.
  tb->eq.set_timer_wheel(spec.timer_wheel);
  // Attach at the serial point, before any timer is armed, so the
  // occupancy series covers every arm/fire/cancel of the run.
  tb->eq.AttachMetrics(metrics);
  tb->peer_slabs.resize(static_cast<size_t>(spec.shards));
  for (auto& slab : tb->peer_slabs) {
    slab = std::make_unique<Slab<TcpPeer>>();
  }
  tb->link = std::make_unique<SharedLink>(&tb->eq, NetworkModel::Calibrated());

  if (spec.linux_server) {
    tb->linux_server =
        std::make_unique<MonolithicServer>(&tb->eq, tb->link.get(), kServerMac, kServerIp,
                                           spec.server_options.costs);
    for (const auto& doc : spec.server_options.documents) {
      tb->linux_server->AddDocument(doc.name, doc.size);
    }
  } else {
    WebServerOptions opts = spec.server_options;
    opts.config = spec.config;
    opts.mac = kServerMac;
    opts.ip = kServerIp;
    opts.tracer = tracer;
    opts.metrics = metrics;
    tb->server = std::make_unique<EscortWebServer>(&tb->eq, tb->link.get(), opts);
    // Every experiment run doubles as a resource-conservation audit
    // (enforced — i.e. violations abort — under ESCORT_AUDIT builds).
    tb->audit = std::make_unique<AuditScope>(&tb->server->kernel());
    if (spec.detect.mode != DetectMode::kOff) {
      // Detections chain into the §4.4.4 blacklist: one confirmed
      // detection is one strike, and the baseline learns from the
      // env-resolved warmup window (same clock RunExperiment uses).
      BlacklistPolicy::Options bl;
      bl.strikes = 1;
      // The blacklist is fed ONLY by the detector: static-policy kills do
      // not record strikes in detection cells, so the measured containment
      // (and every false positive) is attributable to the detector.
      bl.chain_violation_hook = false;
      tb->blacklist = std::make_unique<BlacklistPolicy>(tb->server.get(), bl);
      tb->detector =
          MakeDetector(tb->server.get(), tb->blacklist.get(), spec.detect,
                       CyclesFromSeconds(EnvSeconds("ESCORT_WARMUP_S", spec.warmup_s)));
    }
  }

  // Every machine (client, attacker, QoS endpoint) is its own event
  // stream, homed per the placement map over shards 1..N-1 (the server/
  // kernel stay on shard 0). Stream ids depend only on construction order
  // — never on the shard count or the map — which is what keeps results
  // bit-identical at any N and under any placement.
  std::vector<int> placement = spec.placement_map;
  if (placement.empty()) {
    placement = ComputePlacement(spec);
  }
  int next_actor = 0;
  int actor_shard = 0;  // home shard of the most recent actor_stream()
  auto actor_stream = [&]() -> EventQueue::StreamId {
    size_t idx = static_cast<size_t>(next_actor++);
    actor_shard = idx < placement.size() ? placement[idx] : 0;
    return tb->eq.NewStream(actor_shard);
  };

  // Machines file their connections in the slab of the shard they were
  // just homed on (actor_stream() runs first, via the StreamScope).
  auto add_machine = [&](Ip4Addr ip, uint64_t mac_index, uint64_t seed) {
    auto machine = std::make_unique<ClientMachine>(
        &tb->eq, tb->link.get(), MacAddr::FromIndex(mac_index), ip,
        NetworkModel::Calibrated(), seed,
        tb->peer_slabs[static_cast<size_t>(actor_shard)].get());
    machine->AddArpEntry(kServerIp, kServerMac);
    if (tb->server != nullptr) {
      tb->server->AddArpEntry(ip, machine->mac());
    }
    tb->machines.push_back(std::move(machine));
    return tb->machines.back().get();
  };

  // Regular clients.
  for (int i = 0; i < spec.clients; ++i) {
    EventQueue::StreamScope scope(&tb->eq, actor_stream());
    ClientMachine* m =
        add_machine(ClientIp(i), ClientMacIndex(i), 0xc11e47 + static_cast<uint64_t>(i));
    auto client = std::make_unique<HttpClient>(m, kServerIp, spec.doc);
    client->set_meter(&tb->completions);
    client->Start(CyclesFromMillis(static_cast<double>(i % 37) * 0.9));
    tb->clients.push_back(std::move(client));
  }

  // CGI attackers (trusted subnet, like regular clients).
  for (int i = 0; i < spec.cgi_attackers; ++i) {
    EventQueue::StreamScope scope(&tb->eq, actor_stream());
    ClientMachine* m = add_machine(CgiAttackerIp(i), 200 + static_cast<uint64_t>(i),
                                   0xa77acc + static_cast<uint64_t>(i));
    auto attacker = std::make_unique<CgiAttacker>(m, kServerIp);
    attacker->Start(CyclesFromMillis(5.0 + static_cast<double>(i % 50) * 19.0));
    tb->cgi_attackers.push_back(std::move(attacker));
  }

  // QoS stream.
  if (spec.qos_stream) {
    EventQueue::StreamScope scope(&tb->eq, actor_stream());
    tb->qos_machine = std::make_unique<ClientMachine>(
        &tb->eq, tb->link.get(), MacAddr::FromIndex(50), kQosIp, NetworkModel::Calibrated(),
        0x9075ULL, tb->peer_slabs[static_cast<size_t>(actor_shard)].get());
    tb->qos_machine->AddArpEntry(kServerIp, kServerMac);
    if (tb->server != nullptr) {
      tb->server->AddArpEntry(kQosIp, tb->qos_machine->mac());
    }
    tb->qos_receiver = std::make_unique<QosReceiver>(tb->qos_machine.get(), kServerIp);
    tb->qos_receiver->Start(CyclesFromMillis(3.0));
  }

  // SYN attacker (untrusted subnet).
  if (spec.syn_attack_rate > 0) {
    EventQueue::StreamScope scope(&tb->eq, actor_stream());
    MacAddr amac = MacAddr::FromIndex(60);
    tb->syn_attacker = std::make_unique<SynAttacker>(&tb->eq, tb->link.get(), amac,
                                                     kSynAttackerIp, kServerIp, kServerMac,
                                                     spec.syn_attack_rate);
    // The attacker is not attached to the link: SYN-ACKs to it vanish,
    // exactly like replies to a spoofed source.
    tb->syn_attacker->Start(CyclesFromMillis(1.0));
  }

  return tb;
}

// One ledger-family sample: cycle balances per account label (from the
// kernel snapshot, a sorted map) plus live pages/threads/IOBuffer locks
// aggregated per label. account_labels() iterates in owner-id (creation)
// order; the aggregation still goes through a string-keyed map so series
// emission is sorted by label.
void SampleLedger(Tracer* tracer, Kernel& kernel, Cycles now) {
  CycleLedger snapshot = kernel.Snapshot();
  for (const auto& [label, cycles] : snapshot.totals()) {
    tracer->Counter(now, "cycles/" + label, {{"cycles", Tracer::Num(cycles)}});
  }

  struct Balances {
    uint64_t pages = 0;
    uint64_t threads = 0;
    uint64_t iobuffer_locks = 0;
  };
  std::map<std::string, Balances> balances;
  for (const auto& [id, rec] : kernel.account_labels()) {
    Balances& b = balances[rec.label];
    const ResourceUsage& u = rec.owner->usage();
    b.pages += u.pages;
    b.threads += u.threads;
    b.iobuffer_locks += u.iobuffer_locks;
  }
  for (const auto& [label, b] : balances) {
    tracer->Counter(now, "pages/" + label, {{"pages", Tracer::Num(b.pages)}});
    tracer->Counter(now, "threads/" + label, {{"threads", Tracer::Num(b.threads)}});
    tracer->Counter(now, "iobufs/" + label, {{"locks", Tracer::Num(b.iobuffer_locks)}});
  }
}

// Self-rescheduling stream-0 sampler, bounded by `end` so RunUntil always
// drains. Scheduled from the main context (stream 0) and rescheduled from
// its own execution context (also stream 0), so emission order is part of
// the queue's deterministic total order.
void ScheduleLedgerSampler(EventQueue* eq, Kernel* kernel, Tracer* tracer, Cycles at,
                           Cycles interval, Cycles end) {
  if (at > end) {
    return;
  }
  eq->ScheduleAt(at, [eq, kernel, tracer, at, interval, end] {
    SampleLedger(tracer, *kernel, eq->now());
    ScheduleLedgerSampler(eq, kernel, tracer, at + interval, interval, end);
  });
}

// One metrics-plane tick: refresh the per-account cycle gauges from the
// kernel ledger, snapshot every counter/gauge into its sim-time series,
// then let the health monitor evaluate its SLO rules. Same stream-0
// contract as SampleLedger, so the sampled series — and every incident
// decision — are part of the queue's deterministic total order.
void SampleMetrics(MetricsRegistry* registry, HealthMonitor* health, Kernel* kernel,
                   Cycles now) {
  CycleLedger snapshot = kernel->Snapshot();
  for (const auto& [label, cycles] : snapshot.totals()) {
    MetricSet(ESCORT_METRIC_GAUGE(registry, "kernel.cycles." + label,
                                  "cycles charged to this ledger account"),
              static_cast<int64_t>(cycles));
  }
  registry->Sample(now);
  if (health != nullptr) {
    health->Sample(now);
  }
}

void ScheduleMetricsSampler(EventQueue* eq, MetricsRegistry* registry, HealthMonitor* health,
                            Kernel* kernel, Cycles at, Cycles interval, Cycles end) {
  if (at > end) {
    return;
  }
  eq->ScheduleAt(at, [eq, registry, health, kernel, at, interval, end] {
    SampleMetrics(registry, health, kernel, eq->now());
    ScheduleMetricsSampler(eq, registry, health, kernel, at + interval, interval, end);
  });
}

}  // namespace

ExperimentResult RunExperiment(const ExperimentSpec& spec) {
  double warmup_s = EnvSeconds("ESCORT_WARMUP_S", spec.warmup_s);
  double window_s = EnvSeconds("ESCORT_WINDOW_S", spec.window_s);

  // Tracing: use the caller's sink (sweep cells) or own one for the run.
  std::unique_ptr<Tracer> owned_tracer;
  Tracer* tracer = spec.tracer;
  if (tracer == nullptr && spec.trace.enabled()) {
    owned_tracer = std::make_unique<Tracer>(spec.trace);
    tracer = owned_tracer.get();
  }

  // Metrics: use the caller's registry (sweep cells) or own one for the
  // run. On by default — the health monitor needs the registry, and the
  // zero-perturbation test pins that collection never changes results.
  std::unique_ptr<MetricsRegistry> owned_metrics;
  MetricsRegistry* metrics = spec.metrics_registry;
  if (metrics == nullptr && spec.collect_metrics) {
    owned_metrics = std::make_unique<MetricsRegistry>(spec.metrics);
    metrics = owned_metrics.get();
  }

  auto tb = BuildTestbed(spec, tracer, metrics);
  EventQueue& eq = tb->eq;

  std::unique_ptr<HealthMonitor> health;
  if (metrics != nullptr && tb->server != nullptr) {
    HealthConfig hc = spec.health;
    if (hc.total_pages == 0) {
      hc.total_pages = tb->server->kernel().pages().total_pages();
    }
    health = std::make_unique<HealthMonitor>(metrics, hc);
    health->set_tracer(tracer);
  }

  Cycles run_end = CyclesFromSeconds(warmup_s) + CyclesFromSeconds(window_s);
  if (tracer != nullptr && tracer->ledger_enabled() && tb->server != nullptr) {
    Cycles interval = tracer->config().sample_interval > 0
                          ? tracer->config().sample_interval
                          : CyclesFromMillis(5.0);
    ScheduleLedgerSampler(&eq, &tb->server->kernel(), tracer, 0, interval, run_end);
  }
  if (metrics != nullptr && tb->server != nullptr) {
    Cycles interval = metrics->config().sample_interval > 0 ? metrics->config().sample_interval
                                                            : CyclesFromMillis(5.0);
    ScheduleMetricsSampler(&eq, metrics, health.get(), &tb->server->kernel(), 0, interval,
                           run_end);
  }

  double sim_start_ms = MonotonicMillis();
  eq.RunUntil(CyclesFromSeconds(warmup_s));

  Cycles window_start = eq.now();
  tb->completions.OpenWindow(window_start);
  if (health != nullptr) {
    health->OpenWindow(window_start);
  }
  if (tb->qos_receiver != nullptr) {
    tb->qos_receiver->meter().OpenWindow(window_start);
  }
  if (tb->server != nullptr) {
    tb->server->kernel().ResetAccounting();
  }

  eq.RunUntil(window_start + CyclesFromSeconds(window_s));
  Cycles window_end = eq.now();
  double sim_wall_ms = MonotonicMillis() - sim_start_ms;

  ExperimentResult r;
  r.sim_wall_ms = sim_wall_ms;
  r.conns_per_sec = tb->completions.CloseWindow(window_end);
  r.completions_total = tb->completions.total();
  r.window_cycles = window_end - window_start;
  if (tb->qos_receiver != nullptr) {
    r.qos_bytes_per_sec = tb->qos_receiver->meter().CloseWindowBytesPerSec(window_end);
  }
  for (const auto& c : tb->clients) {
    r.client_failures += c->failed();
  }
  if (tb->syn_attacker != nullptr) {
    r.syns_sent = tb->syn_attacker->syns_sent();
  }
  if (tb->server != nullptr) {
    EscortWebServer& s = *tb->server;
    r.paths_killed = s.paths_killed();
    r.runaway_detections = s.kernel().runaway_detections();
    r.kill_cost_mean = s.kill_cost_cycles().Mean();
    r.ledger = s.kernel().Snapshot();
    r.pd_crossings = s.kernel().pd_crossings();
    r.accounting_overhead = s.kernel().accounting_overhead_cycles();
    for (const auto& l : s.tcp()->listeners()) {
      r.syns_dropped_at_demux += l->syns_dropped_at_demux;
    }
  }
  if (tb->detector != nullptr) {
    // Classify against the testbed's ground truth: the SYN attacker's
    // address and the CGI attacker subnet are fixed by construction, so
    // every detection is decidable. Latency is measured from the named
    // attacker family's start time.
    const Ip4Addr cgi_net = CgiAttackerIp(0);
    Cycles syn_start = CyclesFromMillis(1.0);
    Cycles cgi_start = CyclesFromMillis(5.0);
    DetectionStats& d = r.detection;
    d.detections = tb->detector->detections().size();
    for (const DetectionEvent& e : tb->detector->detections()) {
      bool is_syn_attacker = spec.syn_attack_rate > 0 && e.addr.value == kSynAttackerIp.value;
      bool is_cgi_attacker =
          spec.cgi_attackers > 0 && (e.addr.value >> 8) == (cgi_net.value >> 8);
      if (is_syn_attacker || is_cgi_attacker) {
        d.true_positives += 1;
        if (d.first_detection_ms == 0.0) {
          Cycles start = is_syn_attacker ? syn_start : cgi_start;
          d.first_detection_ms = MillisFromCycles(e.when > start ? e.when - start : 0);
        }
      } else {
        d.false_positives += 1;
      }
    }
    d.decision_digest = tb->detector->DecisionDigest();
    if (tb->blacklist != nullptr) {
      d.blacklist_size = tb->blacklist->size();
    }
    if (auto* baseline = dynamic_cast<BaselineDetector*>(tb->detector.get());
        baseline != nullptr) {
      d.paths_killed_by_detector = baseline->paths_killed();
    }
  }
  r.shard_profile = tb->eq.Profile();

  // Memory footprint (bench JSON `memory` block): slab occupancy at the
  // window end plus high-water marks over the whole run.
  if (tb->server != nullptr) {
    EscortWebServer::ConnSlabStats cs = tb->server->conn_slab_stats();
    r.memory.pcb_slot_bytes = cs.slot_bytes;
    r.memory.pcb_live = cs.live;
    r.memory.pcb_high_water = cs.high_water;
    r.memory.pcb_bytes_reserved = cs.bytes_reserved;
  }
  for (const auto& slab : tb->peer_slabs) {
    r.memory.peer_slot_bytes = Slab<TcpPeer>::slot_bytes();
    r.memory.peer_live += slab->live();
    r.memory.peer_high_water += slab->high_water();
    r.memory.peer_bytes_reserved += slab->bytes_reserved();
  }
  EventQueue::TimerWheelStats ts = tb->eq.timer_stats();
  r.memory.timers_armed = ts.armed;
  r.memory.timer_high_water = ts.high_water;
  r.memory.timer_capacity = ts.capacity;
  r.memory.timer_bytes_reserved = ts.bytes_reserved;

  if (tracer != nullptr) {
    if (tracer->shard_profile_enabled()) {
      // Shard-family events are per-partition by nature; they only appear
      // when explicitly requested (TraceConfig.shard_profile) because they
      // break cross-shard byte-identity of the trace.
      const ShardProfile& p = r.shard_profile;
      for (size_t i = 0; i < p.per_shard.size(); ++i) {
        tracer->Counter(window_end, "shard/" + std::to_string(i),
                        {{"events_fired", Tracer::Num(p.per_shard[i].events_fired)},
                         {"windows_woken", Tracer::Num(p.per_shard[i].windows_woken)},
                         {"windows_active", Tracer::Num(p.per_shard[i].windows_active)}});
      }
    }
    tracer->Finalize(window_end);
    // Detach before teardown: the trace is finalized; teardown-time
    // pathKill events (for paths surviving the window) are bookkeeping,
    // not part of the deterministic trace stream.
    if (tb->server != nullptr) {
      tb->server->kernel().set_tracer(nullptr);
    }
    if (owned_tracer != nullptr) {
      owned_tracer->WriteStandalone();
    }
  }
  if (health != nullptr) {
    r.incidents = health->incidents();
  }
  if (owned_metrics != nullptr && !spec.metrics.path.empty()) {
    // Tear the testbed down first so the document includes teardown-time
    // bookkeeping exactly like a sweep-merged cell does (the sweep
    // serializes after RunExperiment returns). Teardown order is serial
    // and partition-independent, so this stays byte-stable.
    health.reset();
    tb.reset();
    MetricsRegistry::WriteFile(
        spec.metrics.path,
        MetricsRegistry::WrapDocument({owned_metrics->SerializeCell("run")}));
  }
  return r;
}

AccuracyResult RunAccountingAccuracy(ServerConfig config, uint64_t requests) {
  ExperimentSpec spec;
  spec.config = config;
  spec.clients = 0;

  auto tb = BuildTestbed(spec);
  EventQueue& eq = tb->eq;

  // One serial client, driven manually so we can bracket exactly N
  // requests. The serial-measurement client is fast (the paper's
  // micro-measurement host), so idle time reflects the wire, not a slow
  // client.
  NetworkModel fast_client = NetworkModel::Calibrated();
  fast_client.client_processing = CyclesFromMicros(250);
  auto machine = std::make_unique<ClientMachine>(&eq, tb->link.get(), MacAddr::FromIndex(100),
                                                 ClientIp(0), fast_client, 0x7ab1e1);
  machine->AddArpEntry(kServerIp, kServerMac);
  tb->server->AddArpEntry(ClientIp(0), machine->mac());
  HttpClient client(machine.get(), kServerIp, "/doc1b");

  // Warm caches with a handful of requests first.
  client.max_requests = 5;
  client.Start();
  while (client.completed() < 5 && eq.Step()) {
  }
  // Let in-flight teardown settle.
  eq.RunUntil(eq.now() + CyclesFromMillis(50));

  tb->server->kernel().ResetAccounting();
  Cycles start = eq.now();
  client.max_requests = 5 + requests;
  client.Start();
  while (client.completed() < 5 + requests && eq.Step()) {
  }
  Cycles end = client.last_completion() != 0 ? client.last_completion() : eq.now();

  AccuracyResult res;
  res.requests = requests;
  res.ledger = tb->server->kernel().Snapshot();
  res.total_measured = end - start;
  return res;
}

KillCostResult RunKillCost(ServerConfig config, int attacks) {
  ExperimentSpec spec;
  spec.config = config;
  spec.clients = 0;
  spec.cgi_attackers = 1;

  auto tb = BuildTestbed(spec);
  EventQueue& eq = tb->eq;
  Cycles deadline = CyclesFromSeconds(static_cast<double>(attacks) + 2.0);
  while (tb->server->paths_killed() < static_cast<uint64_t>(attacks) && eq.now() < deadline) {
    if (!eq.Step()) {
      break;
    }
  }
  KillCostResult res;
  res.kills = tb->server->paths_killed();
  res.mean_cycles = tb->server->kill_cost_cycles().Mean();
  res.min_cycles = tb->server->kill_cost_cycles().Min();
  res.max_cycles = tb->server->kill_cost_cycles().Max();
  return res;
}

}  // namespace escort
