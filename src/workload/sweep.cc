#include "src/workload/sweep.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/sim/parallel.h"
#include "src/sim/trace.h"

namespace escort {

const std::vector<int>& ClientSweep() {
  static const std::vector<int> kClients = {1, 2, 4, 8, 16, 32, 48, 64};
  return kClients;
}

const std::vector<DocSpec>& DocSweep() {
  static const std::vector<DocSpec> kDocs = {
      {"1-byte", "/doc1b"}, {"1K-byte", "/doc1k"}, {"10K-byte", "/doc10k"}};
  return kDocs;
}

void PrintHeaderRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

namespace {

[[noreturn]] void UsageAndExit(const char* argv0, const char* bad) {
  if (bad != nullptr) {
    std::fprintf(stderr, "unknown argument: %s\n", bad);
  }
  std::fprintf(stderr,
               "usage: %s [--quick] [--jobs N] [--shards N] [--clients N]\n"
               "       [--adaptive-lookahead] [--timer-wheel|--no-timer-wheel]\n"
               "       [--placement MODE] [--detect MODE] [--json PATH] [--trace PATH]\n"
               "  --quick      run the bench's reduced grid\n"
               "  --jobs N     worker threads (default: hardware concurrency)\n"
               "  --shards N   event-queue shards within each cell (default 1;\n"
               "               results are bit-identical at any N)\n"
               "  --clients N  override every cell's regular-client count (the\n"
               "               scale axis; up to 16M)\n"
               "  --adaptive-lookahead\n"
               "               per-shard adaptive window horizons (fewer\n"
               "               barriers, bit-identical results)\n"
               "  --timer-wheel / --no-timer-wheel\n"
               "               force the hierarchical timer wheel on/off (default\n"
               "               on; workload metrics bit-identical either way)\n"
               "  --placement MODE\n"
               "               stream->shard placement: rr (default), weighted,\n"
               "               or profile=PATH (a prior run's bench JSON)\n"
               "  --detect MODE\n"
               "               online attack detection in every cell: off\n"
               "               (default), sprt, or baseline (src/server/detect.h)\n"
               "  --json PATH  also write machine-readable results to PATH\n"
               "  --trace PATH write a deterministic Chrome trace (Perfetto /\n"
               "               chrome://tracing) covering every cell\n"
               "  --metrics PATH\n"
               "               write a deterministic metrics JSON (counters,\n"
               "               gauges, histograms, sim-time series) covering\n"
               "               every cell; byte-identical across --jobs/--shards\n"
               "  --health-p99-ms MS\n"
               "               p99 connection-lifetime SLO for incident\n"
               "               detection (default 100)\n"
               "  --health-goodput-frac F\n"
               "               goodput-collapse fraction of the warmup baseline\n"
               "               (default 0.35)\n",
               argv0);
  std::exit(2);
}

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "sweep: %s\n", msg.c_str());
  std::exit(1);
}

// `--jobs fast` must be an error, not a silent fall-through to the
// hardware-concurrency default (atoi("fast") == 0 would do exactly that).
int ParseCount(const char* argv0, const char* flag, const char* value, long max) {
  char* end = nullptr;
  long n = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || n < 1 || n > max) {
    std::fprintf(stderr, "%s expects an integer in [1, %ld], got '%s'\n", flag, max, value);
    UsageAndExit(argv0, nullptr);
  }
  return static_cast<int>(n);
}

int ParseJobs(const char* argv0, const char* value) {
  return ParseCount(argv0, "--jobs", value, 4096);
}

int ParseShards(const char* argv0, const char* value) {
  return ParseCount(argv0, "--shards", value, 64);
}

int ParseClients(const char* argv0, const char* value) {
  return ParseCount(argv0, "--clients", value, 16'000'000);
}

// Same strictness as ParseCount for the health-rule thresholds:
// `--health-p99-ms fast` must be an error, not a silent 0.
double ParsePositiveDouble(const char* argv0, const char* flag, const char* value) {
  char* end = nullptr;
  double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    std::fprintf(stderr, "%s expects a positive number, got '%s'\n", flag, value);
    UsageAndExit(argv0, nullptr);
  }
  return v;
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    v = 0.0;  // metrics are finite by construction; never emit invalid JSON
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

void AppendKey(std::string* out, const char* key) {
  AppendEscaped(out, key);
  *out += ": ";
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, n);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// Cell ids become part of flight-dump filenames; keep them path-safe.
std::string PathSafe(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '-' || c == '.' || c == '_';
    if (!ok) {
      c = '-';
    }
  }
  return out;
}

}  // namespace

SweepOptions ParseSweepArgs(int argc, char** argv) {
  SweepOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      opts.jobs = ParseJobs(argv[0], argv[++i]);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      opts.jobs = ParseJobs(argv[0], a + 7);
    } else if (std::strcmp(a, "--shards") == 0 && i + 1 < argc) {
      opts.shards = ParseShards(argv[0], argv[++i]);
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      opts.shards = ParseShards(argv[0], a + 9);
    } else if (std::strcmp(a, "--clients") == 0 && i + 1 < argc) {
      opts.clients = ParseClients(argv[0], argv[++i]);
    } else if (std::strncmp(a, "--clients=", 10) == 0) {
      opts.clients = ParseClients(argv[0], a + 10);
    } else if (std::strcmp(a, "--adaptive-lookahead") == 0) {
      opts.adaptive_lookahead = true;
    } else if (std::strcmp(a, "--timer-wheel") == 0) {
      opts.timer_wheel = 1;
    } else if (std::strcmp(a, "--no-timer-wheel") == 0) {
      opts.timer_wheel = 0;
    } else if (std::strcmp(a, "--placement") == 0 && i + 1 < argc) {
      opts.placement = argv[++i];
    } else if (std::strncmp(a, "--placement=", 12) == 0) {
      opts.placement = a + 12;
    } else if (std::strcmp(a, "--detect") == 0 && i + 1 < argc) {
      opts.detect = argv[++i];
    } else if (std::strncmp(a, "--detect=", 9) == 0) {
      opts.detect = a + 9;
    } else if (std::strcmp(a, "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      opts.json_path = a + 7;
    } else if (std::strcmp(a, "--trace") == 0 && i + 1 < argc) {
      opts.trace_path = argv[++i];
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      opts.trace_path = a + 8;
    } else if (std::strcmp(a, "--metrics") == 0 && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else if (std::strncmp(a, "--metrics=", 10) == 0) {
      opts.metrics_path = a + 10;
    } else if (std::strcmp(a, "--health-p99-ms") == 0 && i + 1 < argc) {
      opts.health_p99_ms = ParsePositiveDouble(argv[0], "--health-p99-ms", argv[++i]);
    } else if (std::strncmp(a, "--health-p99-ms=", 16) == 0) {
      opts.health_p99_ms = ParsePositiveDouble(argv[0], "--health-p99-ms", a + 16);
    } else if (std::strcmp(a, "--health-goodput-frac") == 0 && i + 1 < argc) {
      opts.health_goodput_frac =
          ParsePositiveDouble(argv[0], "--health-goodput-frac", argv[++i]);
    } else if (std::strncmp(a, "--health-goodput-frac=", 22) == 0) {
      opts.health_goodput_frac =
          ParsePositiveDouble(argv[0], "--health-goodput-frac", a + 22);
    } else {
      UsageAndExit(argv[0], a);
    }
  }
  return opts;
}

Sweep::Sweep(std::string bench_name) : name_(std::move(bench_name)) {}

SweepCell& Sweep::Add(std::string id, const ExperimentSpec& spec) {
  return AddCustom(std::move(id), spec, CellFn());
}

SweepCell& Sweep::AddCustom(std::string id, const ExperimentSpec& spec, CellFn run) {
  if (index_.count(id) != 0) {
    Die("duplicate cell id '" + id + "' in sweep " + name_);
  }
  index_[id] = cells_.size();
  SweepCell cell;
  cell.id = std::move(id);
  cell.spec = spec;
  cell.run = std::move(run);
  cells_.push_back(std::move(cell));
  return cells_.back();
}

void Sweep::Run(const SweepOptions& opts) {
  jobs_used_ = opts.jobs <= 0 ? HardwareConcurrency() : opts.jobs;
  // --placement: resolve the mode (and load the profile feedback JSON)
  // once for the whole sweep.
  bool override_placement = !opts.placement.empty();
  PlacementMode mode = PlacementMode::kRoundRobin;
  std::map<std::string, std::vector<uint64_t>> profile;
  if (override_placement) {
    std::string name = opts.placement;
    std::string profile_path;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      profile_path = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    if (!ParsePlacementMode(name, &mode)) {
      Die("unknown --placement mode '" + opts.placement + "' (rr, weighted, profile=PATH)");
    }
    if (mode == PlacementMode::kProfile) {
      if (profile_path.empty()) {
        Die("--placement profile requires a prior bench JSON: profile=PATH");
      }
      std::string text;
      if (!ReadFileToString(profile_path, &text)) {
        Die("cannot read placement profile " + profile_path);
      }
      profile = ParseProfileShardEvents(text);
      if (profile.empty()) {
        Die("no per_shard events_fired data in placement profile " + profile_path);
      }
    }
  }
  // --detect: resolve the mode once for the whole sweep.
  bool override_detect = !opts.detect.empty();
  DetectMode detect_mode = DetectMode::kOff;
  if (override_detect && !ParseDetectMode(opts.detect, &detect_mode)) {
    Die("unknown --detect mode '" + opts.detect + "' (off, sprt, baseline)");
  }
  // Resolve the env overrides once, up front, so every cell runs — and is
  // recorded in the JSON — with the warmup/window actually used.
  for (SweepCell& cell : cells_) {
    cell.spec.warmup_s = EnvSeconds("ESCORT_WARMUP_S", cell.spec.warmup_s);
    cell.spec.window_s = EnvSeconds("ESCORT_WINDOW_S", cell.spec.window_s);
    if (opts.shards > 0) {
      cell.spec.shards = opts.shards;
    }
    if (opts.clients > 0) {
      cell.spec.clients = opts.clients;
    }
    if (opts.adaptive_lookahead) {
      cell.spec.adaptive_lookahead = true;
    }
    if (opts.timer_wheel >= 0) {
      cell.spec.timer_wheel = opts.timer_wheel != 0;
    }
    if (override_detect) {
      cell.spec.detect.mode = detect_mode;
    }
    if (override_placement) {
      cell.spec.placement = mode;
      if (mode == PlacementMode::kProfile) {
        auto it = profile.find(cell.id);
        if (it != profile.end()) {
          cell.spec.profile_shard_events = it->second;
        }
      }
    }
    // Record the exact actor→shard map the testbed will use, so any run is
    // reproducible from its JSON spec alone.
    cell.spec.placement_map = ComputePlacement(cell.spec);
    // Health-rule overrides (--health-p99-ms / --health-goodput-frac).
    if (opts.health_p99_ms > 0.0) {
      cell.spec.health.p99_latency_us = static_cast<uint64_t>(opts.health_p99_ms * 1000.0);
    }
    if (opts.health_goodput_frac > 0.0) {
      cell.spec.health.goodput_collapse_frac = opts.health_goodput_frac;
    }
  }
  // Tracing: each cell gets its own sink (cells run concurrently), and the
  // per-cell buffers are merged in grid order afterwards — one trace
  // "process" per cell — so the document is byte-identical at any --jobs.
  std::vector<std::unique_ptr<Tracer>> tracers;
  if (!opts.trace_path.empty()) {
    tracers.resize(cells_.size());
    for (size_t i = 0; i < cells_.size(); ++i) {
      TraceConfig tc;
      tc.path = opts.trace_path;
      tc.flight_path = opts.trace_path + "." + PathSafe(cells_[i].id) + ".flight.json";
      tracers[i] = std::make_unique<Tracer>(tc);
      cells_[i].spec.trace = tc;
      cells_[i].spec.tracer = tracers[i].get();
    }
  }
  // Metrics: same shape as tracing — each cell gets its own registry
  // (cells run concurrently), and the per-cell fragments are merged in
  // grid order afterwards, so the document is byte-identical at any
  // --jobs (and, by the registry's contract, any --shards).
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  if (!opts.metrics_path.empty()) {
    registries.resize(cells_.size());
    for (size_t i = 0; i < cells_.size(); ++i) {
      MetricsConfig mc;
      mc.path = opts.metrics_path;
      registries[i] = std::make_unique<MetricsRegistry>(mc);
      cells_[i].spec.metrics = mc;
      cells_[i].spec.metrics_registry = registries[i].get();
    }
  }
  results_.assign(cells_.size(), CellResult());
  std::vector<JobOutcome> outcomes =
      ParallelFor(jobs_used_, cells_.size(), [this](size_t i) {
        const SweepCell& cell = cells_[i];
        // Wall-clock per cell for the JSON `perf` block. Parallel cells
        // share cores, so per-cell wall time is only comparable between
        // runs at the same --jobs; the perf gate pins jobs for that reason.
        double start_ms = MonotonicMillis();
        if (cell.run) {
          results_[i].metrics = cell.run(cell.spec);
        } else {
          results_[i].metrics.experiment = RunExperiment(cell.spec);
        }
        results_[i].wall_ms = MonotonicMillis() - start_ms;
        // Prefer the experiment's own run-phase timing when it reports
        // one: the perf block rates the scheduler, and the outer span
        // includes testbed construction and teardown.
        if (results_[i].metrics.experiment.sim_wall_ms > 0.0) {
          results_[i].wall_ms = results_[i].metrics.experiment.sim_wall_ms;
        }
      });
  for (size_t i = 0; i < outcomes.size(); ++i) {
    results_[i].ok = outcomes[i].ok;
    results_[i].error = outcomes[i].error;
  }
  if (!opts.trace_path.empty()) {
    std::vector<std::string> fragments;
    fragments.reserve(tracers.size());
    for (size_t i = 0; i < tracers.size(); ++i) {
      fragments.push_back(tracers[i]->SerializeEvents(static_cast<uint32_t>(i), cells_[i].id));
    }
    if (!Tracer::WriteFile(opts.trace_path, Tracer::WrapDocument(fragments))) {
      Die("cannot write trace output to " + opts.trace_path);
    }
  }
  if (!opts.metrics_path.empty()) {
    std::vector<std::string> fragments;
    fragments.reserve(registries.size());
    for (size_t i = 0; i < registries.size(); ++i) {
      fragments.push_back(registries[i]->SerializeCell(cells_[i].id));
    }
    if (!MetricsRegistry::WriteFile(opts.metrics_path,
                                    MetricsRegistry::WrapDocument(fragments))) {
      Die("cannot write metrics output to " + opts.metrics_path);
    }
  }
  if (!opts.json_path.empty() && !WriteJson(opts.json_path)) {
    Die("cannot write JSON output to " + opts.json_path);
  }
}

const CellResult& Sweep::Cell(const std::string& id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    Die("unknown cell id '" + id + "' in sweep " + name_);
  }
  if (results_.size() != cells_.size()) {
    Die("sweep " + name_ + " queried before Run()");
  }
  return results_[it->second];
}

const ExperimentResult& Sweep::Result(const std::string& id) const {
  const CellResult& r = Cell(id);
  if (!r.ok) {
    Die("cell '" + id + "' failed: " + r.error);
  }
  return r.metrics.experiment;
}

double Sweep::Extra(const std::string& id, const std::string& key) const {
  const CellResult& r = Cell(id);
  if (!r.ok) {
    Die("cell '" + id + "' failed: " + r.error);
  }
  for (const auto& [k, v] : r.metrics.extra) {
    if (k == key) {
      return v;
    }
  }
  Die("cell '" + id + "' has no extra metric '" + key + "'");
}

int Sweep::failed_count() const {
  int n = 0;
  for (const CellResult& r : results_) {
    n += r.ok ? 0 : 1;
  }
  return n;
}

std::string Sweep::ToJson() const {
  std::string out;
  out.reserve(4096 + 1024 * cells_.size());
  out += "{\n  ";
  AppendKey(&out, "schema_version");
  out += "6,\n  ";
  AppendKey(&out, "bench");
  AppendEscaped(&out, name_);
  out += ",\n  ";
  AppendKey(&out, "jobs");
  AppendUint(&out, static_cast<uint64_t>(jobs_used_));
  out += ",\n  ";
  AppendKey(&out, "cells");
  out += "[";
  for (size_t i = 0; i < cells_.size(); ++i) {
    const SweepCell& cell = cells_[i];
    const CellResult& r = results_[i];
    const ExperimentResult& e = r.metrics.experiment;
    out += i == 0 ? "\n" : ",\n";
    out += "    {";
    AppendKey(&out, "id");
    AppendEscaped(&out, cell.id);
    out += ", ";
    AppendKey(&out, "ok");
    out += r.ok ? "true" : "false";
    out += ", ";
    AppendKey(&out, "error");
    AppendEscaped(&out, r.error);
    out += ",\n     ";
    AppendKey(&out, "tags");
    out += "{";
    bool first = true;
    for (const auto& [k, v] : cell.tags) {
      if (!first) {
        out += ", ";
      }
      first = false;
      AppendKey(&out, k.c_str());
      AppendEscaped(&out, v);
    }
    out += "},\n     ";
    AppendKey(&out, "spec");
    out += "{";
    AppendKey(&out, "linux_server");
    out += cell.spec.linux_server ? "true" : "false";
    out += ", ";
    AppendKey(&out, "config");
    AppendEscaped(&out, ServerConfigName(cell.spec.config));
    out += ", ";
    AppendKey(&out, "clients");
    AppendUint(&out, static_cast<uint64_t>(cell.spec.clients));
    out += ", ";
    AppendKey(&out, "doc");
    AppendEscaped(&out, cell.spec.doc);
    out += ", ";
    AppendKey(&out, "qos_stream");
    out += cell.spec.qos_stream ? "true" : "false";
    out += ", ";
    AppendKey(&out, "syn_attack_rate");
    AppendDouble(&out, cell.spec.syn_attack_rate);
    out += ", ";
    AppendKey(&out, "cgi_attackers");
    AppendUint(&out, static_cast<uint64_t>(cell.spec.cgi_attackers));
    out += ", ";
    AppendKey(&out, "shards");
    AppendUint(&out, static_cast<uint64_t>(cell.spec.shards));
    out += ", ";
    AppendKey(&out, "adaptive_lookahead");
    out += cell.spec.adaptive_lookahead ? "true" : "false";
    out += ", ";
    AppendKey(&out, "timer_wheel");
    out += cell.spec.timer_wheel ? "true" : "false";
    out += ", ";
    AppendKey(&out, "placement");
    AppendEscaped(&out, PlacementModeName(cell.spec.placement));
    out += ", ";
    AppendKey(&out, "placement_map");
    out += "[";
    // Elided (schema v4) for huge cells: a million-entry map would dwarf
    // the document, and the map is recomputable from the spec (it is only
    // spelled out so small-cell runs are reproducible at a glance).
    if (ActorCount(cell.spec) <= 4096) {
      for (size_t m = 0; m < cell.spec.placement_map.size(); ++m) {
        if (m != 0) {
          out += ", ";
        }
        AppendUint(&out, static_cast<uint64_t>(cell.spec.placement_map[m]));
      }
    }
    out += "], ";
    AppendKey(&out, "warmup_s");
    AppendDouble(&out, cell.spec.warmup_s);
    out += ", ";
    AppendKey(&out, "window_s");
    AppendDouble(&out, cell.spec.window_s);
    out += ", ";
    AppendKey(&out, "detect");
    AppendEscaped(&out, DetectModeName(cell.spec.detect.mode));
    out += "},\n     ";
    AppendKey(&out, "metrics");
    out += "{";
    AppendKey(&out, "conns_per_sec");
    AppendDouble(&out, e.conns_per_sec);
    out += ", ";
    AppendKey(&out, "qos_bytes_per_sec");
    AppendDouble(&out, e.qos_bytes_per_sec);
    out += ", ";
    AppendKey(&out, "completions_total");
    AppendUint(&out, e.completions_total);
    out += ", ";
    AppendKey(&out, "client_failures");
    AppendUint(&out, e.client_failures);
    out += ", ";
    AppendKey(&out, "paths_killed");
    AppendUint(&out, e.paths_killed);
    out += ", ";
    AppendKey(&out, "syns_dropped_at_demux");
    AppendUint(&out, e.syns_dropped_at_demux);
    out += ", ";
    AppendKey(&out, "syns_sent");
    AppendUint(&out, e.syns_sent);
    out += ", ";
    AppendKey(&out, "runaway_detections");
    AppendUint(&out, e.runaway_detections);
    out += ", ";
    AppendKey(&out, "kill_cost_mean");
    AppendDouble(&out, e.kill_cost_mean);
    out += ", ";
    AppendKey(&out, "window_cycles");
    AppendUint(&out, e.window_cycles);
    out += ", ";
    AppendKey(&out, "pd_crossings");
    AppendUint(&out, e.pd_crossings);
    out += ", ";
    AppendKey(&out, "accounting_overhead");
    AppendUint(&out, e.accounting_overhead);
    out += ", ";
    AppendKey(&out, "ledger_total");
    AppendUint(&out, e.ledger.Total());
    out += "},\n     ";
    AppendKey(&out, "ledger");
    out += "{";
    first = true;
    for (const auto& [label, cycles] : e.ledger.totals()) {
      if (!first) {
        out += ", ";
      }
      first = false;
      AppendEscaped(&out, label);
      out += ": ";
      AppendUint(&out, cycles);
    }
    out += "},\n     ";
    // Scheduling profile of the cell's sharded event queue (schema v2).
    // Depends on the shard partition by nature, so check_bench_json.py
    // strips it for --expect-equal comparisons.
    const ShardProfile& sp = e.shard_profile;
    AppendKey(&out, "shard_utilization");
    out += "{";
    AppendKey(&out, "shards");
    AppendUint(&out, static_cast<uint64_t>(sp.shards));
    out += ", ";
    AppendKey(&out, "lookahead_cycles");
    AppendUint(&out, sp.lookahead);
    out += ", ";
    AppendKey(&out, "windows_run");
    AppendUint(&out, sp.windows_run);
    out += ", ";
    AppendKey(&out, "parallel_windows");
    AppendUint(&out, sp.parallel_windows);
    out += ", ";
    AppendKey(&out, "mean_window_cycles");
    AppendDouble(&out, sp.windows_run > 0
                           ? static_cast<double>(sp.window_cycles) /
                                 static_cast<double>(sp.windows_run)
                           : 0.0);
    out += ", ";
    AppendKey(&out, "txns_drained");
    AppendUint(&out, sp.txns_drained);
    out += ", ";
    AppendKey(&out, "max_mailbox_depth");
    AppendUint(&out, sp.max_mailbox_depth);
    out += ", ";
    // Load balance in one number: max/mean of per-shard events_fired
    // (1.0 = perfectly even; `shards` = everything on one shard).
    uint64_t fired_total = 0;
    uint64_t fired_max = 0;
    for (const auto& per : sp.per_shard) {
      fired_total += per.events_fired;
      if (per.events_fired > fired_max) {
        fired_max = per.events_fired;
      }
    }
    AppendKey(&out, "imbalance");
    AppendDouble(&out, fired_total > 0 && !sp.per_shard.empty()
                           ? static_cast<double>(fired_max) * static_cast<double>(sp.per_shard.size()) /
                                 static_cast<double>(fired_total)
                           : 0.0);
    out += ", ";
    AppendKey(&out, "per_shard");
    out += "[";
    for (size_t s = 0; s < sp.per_shard.size(); ++s) {
      if (s != 0) {
        out += ", ";
      }
      out += "{";
      AppendKey(&out, "shard");
      AppendUint(&out, static_cast<uint64_t>(s));
      out += ", ";
      AppendKey(&out, "events_fired");
      AppendUint(&out, sp.per_shard[s].events_fired);
      out += ", ";
      AppendKey(&out, "windows_woken");
      AppendUint(&out, sp.per_shard[s].windows_woken);
      out += ", ";
      AppendKey(&out, "windows_active");
      AppendUint(&out, sp.per_shard[s].windows_active);
      out += ", ";
      // Wasted-wakeup fraction: of the windows this shard was dispatched
      // in, how many fired nothing. Parked windows cost nothing under the
      // gang scheduler, so they are not idleness; participation over the
      // whole run is still windows_active / windows_run.
      AppendKey(&out, "idle_fraction");
      AppendDouble(&out, sp.per_shard[s].windows_woken > 0
                             ? 1.0 - static_cast<double>(sp.per_shard[s].windows_active) /
                                         static_cast<double>(sp.per_shard[s].windows_woken)
                             : 0.0);
      out += "}";
    }
    out += "]},\n     ";
    // Host wall-clock performance of the cell (schema v3). Machine- and
    // load-dependent by nature: determinism-exempt like shard_utilization
    // (check_bench_json.py strips both for --expect-equal), consumed by
    // tools/check_perf_regression.py.
    uint64_t perf_events = 0;
    for (const auto& per : sp.per_shard) {
      perf_events += per.events_fired;
    }
    AppendKey(&out, "perf");
    out += "{";
    AppendKey(&out, "wall_ms");
    AppendDouble(&out, r.wall_ms);
    out += ", ";
    AppendKey(&out, "events_per_sec");
    AppendDouble(&out, r.wall_ms > 0.0 ? static_cast<double>(perf_events) * 1000.0 / r.wall_ms
                                       : 0.0);
    out += ", ";
    AppendKey(&out, "windows_per_sec");
    AppendDouble(&out, r.wall_ms > 0.0 ? static_cast<double>(sp.windows_run) * 1000.0 / r.wall_ms
                                       : 0.0);
    out += "},\n     ";
    // Slab/timer-wheel footprint of the cell (schema v4). Deterministic
    // counts, but exempt from --expect-equal comparisons like
    // shard_utilization: the timer-wheel axis is allowed to move exactly
    // this block while every workload metric stays bit-identical.
    const MemoryProfile& mem = e.memory;
    AppendKey(&out, "memory");
    out += "{";
    AppendKey(&out, "pcb_slot_bytes");
    AppendUint(&out, mem.pcb_slot_bytes);
    out += ", ";
    AppendKey(&out, "pcb_live");
    AppendUint(&out, mem.pcb_live);
    out += ", ";
    AppendKey(&out, "pcb_high_water");
    AppendUint(&out, mem.pcb_high_water);
    out += ", ";
    AppendKey(&out, "pcb_bytes_reserved");
    AppendUint(&out, mem.pcb_bytes_reserved);
    out += ", ";
    AppendKey(&out, "peer_slot_bytes");
    AppendUint(&out, mem.peer_slot_bytes);
    out += ", ";
    AppendKey(&out, "peer_live");
    AppendUint(&out, mem.peer_live);
    out += ", ";
    AppendKey(&out, "peer_high_water");
    AppendUint(&out, mem.peer_high_water);
    out += ", ";
    AppendKey(&out, "peer_bytes_reserved");
    AppendUint(&out, mem.peer_bytes_reserved);
    out += ", ";
    AppendKey(&out, "timers_armed");
    AppendUint(&out, mem.timers_armed);
    out += ", ";
    AppendKey(&out, "timer_high_water");
    AppendUint(&out, mem.timer_high_water);
    out += ", ";
    AppendKey(&out, "timer_capacity");
    AppendUint(&out, mem.timer_capacity);
    out += ", ";
    AppendKey(&out, "timer_bytes_reserved");
    AppendUint(&out, mem.timer_bytes_reserved);
    out += ", ";
    // The headline scale number: total reserved connection+timer bytes per
    // regular client (0 when the cell has none).
    AppendKey(&out, "bytes_per_client");
    AppendDouble(&out, cell.spec.clients > 0
                           ? static_cast<double>(mem.pcb_bytes_reserved +
                                                 mem.peer_bytes_reserved +
                                                 mem.timer_bytes_reserved) /
                                 static_cast<double>(cell.spec.clients)
                           : 0.0);
    out += "},\n     ";
    // Detection decisions (schema v5). Deterministic at any --shards /
    // --jobs — the decision_digest is the equality witness the CI
    // detection-determinism step byte-diffs — but the block is stripped by
    // --expect-equal alongside memory/perf so detection-on runs stay
    // comparable against detection-off baselines of the same grid.
    const DetectionStats& det = e.detection;
    AppendKey(&out, "detection");
    out += "{";
    AppendKey(&out, "detections");
    AppendUint(&out, det.detections);
    out += ", ";
    AppendKey(&out, "true_positives");
    AppendUint(&out, det.true_positives);
    out += ", ";
    AppendKey(&out, "false_positives");
    AppendUint(&out, det.false_positives);
    out += ", ";
    AppendKey(&out, "paths_killed_by_detector");
    AppendUint(&out, det.paths_killed_by_detector);
    out += ", ";
    AppendKey(&out, "blacklist_size");
    AppendUint(&out, det.blacklist_size);
    out += ", ";
    AppendKey(&out, "first_detection_ms");
    AppendDouble(&out, det.first_detection_ms);
    out += ", ";
    AppendKey(&out, "decision_digest");
    AppendUint(&out, det.decision_digest);
    out += "},\n     ";
    // HealthMonitor incident forensics (schema v6): the onset →
    // detection → containment → recovery timeline with derived TTD/TTR.
    // Fully deterministic (stream-0 sampling at fixed sim times) and NOT
    // exempt from --expect-equal: incident records must be byte-identical
    // at any --jobs/--shards.
    AppendKey(&out, "incidents");
    out += "{";
    AppendKey(&out, "count");
    AppendUint(&out, static_cast<uint64_t>(e.incidents.size()));
    out += ", ";
    AppendKey(&out, "records");
    out += "[";
    for (size_t n = 0; n < e.incidents.size(); ++n) {
      const IncidentRecord& inc = e.incidents[n];
      if (n != 0) {
        out += ", ";
      }
      out += "{";
      AppendKey(&out, "trigger");
      AppendEscaped(&out, inc.trigger);
      out += ", ";
      AppendKey(&out, "onset_ms");
      AppendDouble(&out, MillisFromCycles(inc.onset));
      out += ", ";
      AppendKey(&out, "detected_ms");
      AppendDouble(&out, inc.detected != 0 ? MillisFromCycles(inc.detected) : -1.0);
      out += ", ";
      AppendKey(&out, "contained_ms");
      AppendDouble(&out, inc.contained != 0 ? MillisFromCycles(inc.contained) : -1.0);
      out += ", ";
      AppendKey(&out, "recovered_ms");
      AppendDouble(&out, inc.recovered != 0 ? MillisFromCycles(inc.recovered) : -1.0);
      out += ", ";
      AppendKey(&out, "ttd_ms");
      AppendDouble(&out, inc.ttd_ms());
      out += ", ";
      AppendKey(&out, "ttr_ms");
      AppendDouble(&out, inc.ttr_ms());
      out += ", ";
      AppendKey(&out, "pressure_breaches");
      AppendUint(&out, inc.pressure_breaches);
      out += ", ";
      AppendKey(&out, "detection_signals");
      AppendUint(&out, inc.detection_signals);
      out += ", ";
      AppendKey(&out, "containment_actions");
      AppendUint(&out, inc.containment_actions);
      out += "}";
    }
    out += "]},\n     ";
    AppendKey(&out, "extra");
    out += "{";
    first = true;
    for (const auto& [k, v] : r.metrics.extra) {
      if (!first) {
        out += ", ";
      }
      first = false;
      AppendKey(&out, k.c_str());
      AppendDouble(&out, v);
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Sweep::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace escort
