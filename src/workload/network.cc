#include "src/workload/network.h"

#include <algorithm>
#include <utility>

namespace escort {

void SharedLink::Attach(const MacAddr& mac, NetEndpoint* endpoint, Cycles extra_latency) {
  ports_[mac] = Port{endpoint, extra_latency, eq_->current_stream()};
}

void SharedLink::Detach(const MacAddr& mac) { ports_.erase(mac); }

Cycles SharedLink::SerializationTime(size_t frame_bytes) const {
  // Preamble + IFG + CRC overhead on the wire; 64-byte minimum frame.
  size_t wire_bytes = std::max<size_t>(frame_bytes + 24, 84);
  double secs = static_cast<double>(wire_bytes * 8) / model_.link_bandwidth_bps;
  return CyclesFromSeconds(secs);
}

Cycles SharedLink::MinDeliveryLatency(const NetworkModel& model) {
  double secs = static_cast<double>(84 * 8) / model.link_bandwidth_bps;
  return CyclesFromSeconds(secs);
}

void SharedLink::Send(const MacAddr& src, std::vector<uint8_t> frame) {
  if (frame.size() < 14) {
    return;
  }
  MacAddr dst;
  std::copy_n(frame.begin(), 6, dst.bytes.begin());
  eq_->PostSequenced([this, src, dst, f = std::move(frame)](Cycles send_time) mutable {
    TransmitSequenced(src, dst, std::move(f), send_time);
  });
}

void SharedLink::TransmitSequenced(const MacAddr& src, const MacAddr& dst,
                                   std::vector<uint8_t> frame, Cycles send_time) {
  // All shared medium state (arbitration, counters, the drop hook) is
  // touched only here, in deterministic transaction order.
  if (drop_every_ != 0 && (frames_ + 1) % drop_every_ == 0) {
    ++frames_;
    ++dropped_;
    return;
  }
  Cycles tx = SerializationTime(frame.size());
  Cycles start = std::max(send_time, medium_free_);
  medium_free_ = start + tx;
  busy_cycles_ += tx;
  ++frames_;
  bytes_ += frame.size();

  Cycles at = medium_free_;
  if (dst.IsBroadcast()) {
    for (auto& [mac, port] : ports_) {
      if (mac == src) {
        continue;
      }
      NetEndpoint* ep = port.endpoint;
      eq_->ScheduleAtFrom(port.stream, at + port.extra_latency,
                          [ep, frame] { ep->DeliverFrame(frame); });
    }
    return;
  }
  auto it = ports_.find(dst);
  if (it == ports_.end()) {
    return;
  }
  NetEndpoint* ep = it->second.endpoint;
  eq_->ScheduleAtFrom(it->second.stream, at + it->second.extra_latency,
                      [ep, frame = std::move(frame)] { ep->DeliverFrame(frame); });
}

double SharedLink::utilization(Cycles window_start, Cycles window_end) const {
  if (window_end <= window_start) {
    return 0.0;
  }
  return static_cast<double>(busy_cycles_) / static_cast<double>(window_end - window_start);
}

}  // namespace escort
