#include "src/workload/wire.h"

#include <cstring>

#include "src/elib/byte_io.h"

namespace escort {

namespace {

uint32_t PseudoSum(Ip4Addr src, Ip4Addr dst, uint16_t tcp_len) {
  uint8_t pseudo[12];
  PutU32(pseudo, src.value);
  PutU32(pseudo + 4, dst.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoTcp;
  PutU16(pseudo + 10, tcp_len);
  return ChecksumPartial(pseudo, sizeof(pseudo));
}

}  // namespace

std::vector<uint8_t> BuildTcpFrame(const MacAddr& src_mac, const MacAddr& dst_mac, Ip4Addr src_ip,
                                   Ip4Addr dst_ip, const TcpHeader& tcp,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> f(kEthHeaderLen + kIpHeaderLen + kTcpHeaderLen + payload.size(), 0);
  uint8_t* p = f.data();

  // Ethernet
  std::memcpy(p, dst_mac.bytes.data(), 6);
  std::memcpy(p + 6, src_mac.bytes.data(), 6);
  PutU16(p + 12, kEtherTypeIp);

  // IPv4
  uint8_t* ip = p + kEthHeaderLen;
  ip[0] = 0x45;
  PutU16(ip + 2, static_cast<uint16_t>(kIpHeaderLen + kTcpHeaderLen + payload.size()));
  PutU16(ip + 4, 0);
  ip[8] = 64;
  ip[9] = kIpProtoTcp;
  PutU32(ip + 12, src_ip.value);
  PutU32(ip + 16, dst_ip.value);
  PutU16(ip + 10, InternetChecksum(ip, kIpHeaderLen));

  // TCP
  uint8_t* t = ip + kIpHeaderLen;
  PutU16(t, tcp.src_port);
  PutU16(t + 2, tcp.dst_port);
  PutU32(t + 4, tcp.seq);
  PutU32(t + 8, tcp.ack);
  t[12] = 5 << 4;
  t[13] = tcp.flags;
  PutU16(t + 14, tcp.window);
  if (!payload.empty()) {
    std::memcpy(t + kTcpHeaderLen, payload.data(), payload.size());
  }
  uint16_t tcp_len = static_cast<uint16_t>(kTcpHeaderLen + payload.size());
  uint32_t acc = PseudoSum(src_ip, dst_ip, tcp_len);
  acc = ChecksumPartial(t, tcp_len, acc);
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  PutU16(t + 16, static_cast<uint16_t>(~acc));
  return f;
}

std::vector<uint8_t> BuildArpFrame(const MacAddr& src_mac, const MacAddr& dst_mac,
                                   const ArpPacket& arp) {
  std::vector<uint8_t> f(kEthHeaderLen + kArpPacketLen, 0);
  uint8_t* p = f.data();
  std::memcpy(p, dst_mac.bytes.data(), 6);
  std::memcpy(p + 6, src_mac.bytes.data(), 6);
  PutU16(p + 12, kEtherTypeArp);
  uint8_t* a = p + kEthHeaderLen;
  PutU16(a, 1);
  PutU16(a + 2, kEtherTypeIp);
  a[4] = 6;
  a[5] = 4;
  PutU16(a + 6, arp.opcode);
  std::memcpy(a + 8, arp.sender_mac.bytes.data(), 6);
  PutU32(a + 14, arp.sender_ip.value);
  std::memcpy(a + 18, arp.target_mac.bytes.data(), 6);
  PutU32(a + 24, arp.target_ip.value);
  return f;
}

std::optional<WireFrame> ParseFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kEthHeaderLen) {
    return std::nullopt;
  }
  WireFrame f;
  const uint8_t* p = bytes.data();
  std::memcpy(f.eth.dst.bytes.data(), p, 6);
  std::memcpy(f.eth.src.bytes.data(), p + 6, 6);
  f.eth.ethertype = GetU16(p + 12);

  if (f.eth.ethertype == kEtherTypeArp) {
    if (bytes.size() < kEthHeaderLen + kArpPacketLen) {
      return std::nullopt;
    }
    const uint8_t* a = p + kEthHeaderLen;
    f.is_arp = true;
    f.arp.opcode = GetU16(a + 6);
    std::memcpy(f.arp.sender_mac.bytes.data(), a + 8, 6);
    f.arp.sender_ip.value = GetU32(a + 14);
    std::memcpy(f.arp.target_mac.bytes.data(), a + 18, 6);
    f.arp.target_ip.value = GetU32(a + 24);
    return f;
  }

  if (f.eth.ethertype != kEtherTypeIp || bytes.size() < kEthHeaderLen + kIpHeaderLen) {
    return std::nullopt;
  }
  const uint8_t* ip = p + kEthHeaderLen;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0xf) != 5) {
    return std::nullopt;
  }
  f.ip.total_length = GetU16(ip + 2);
  f.ip.ttl = ip[8];
  f.ip.protocol = ip[9];
  f.ip.src.value = GetU32(ip + 12);
  f.ip.dst.value = GetU32(ip + 16);
  f.ip.checksum_ok = InternetChecksum(ip, kIpHeaderLen) == 0;
  if (f.ip.protocol != kIpProtoTcp) {
    return f;
  }
  if (bytes.size() < kEthHeaderLen + kIpHeaderLen + kTcpHeaderLen ||
      f.ip.total_length < kIpHeaderLen + kTcpHeaderLen) {
    return std::nullopt;
  }
  const uint8_t* t = ip + kIpHeaderLen;
  f.is_tcp = true;
  f.tcp.src_port = GetU16(t);
  f.tcp.dst_port = GetU16(t + 2);
  f.tcp.seq = GetU32(t + 4);
  f.tcp.ack = GetU32(t + 8);
  f.tcp.flags = t[13];
  f.tcp.window = GetU16(t + 14);
  uint16_t tcp_len = static_cast<uint16_t>(f.ip.total_length - kIpHeaderLen);
  if (kEthHeaderLen + kIpHeaderLen + tcp_len > bytes.size()) {
    return std::nullopt;
  }
  uint32_t acc = PseudoSum(f.ip.src, f.ip.dst, tcp_len);
  acc = ChecksumPartial(t, tcp_len, acc);
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  f.tcp.checksum_ok = static_cast<uint16_t>(~acc) == 0;
  f.payload.assign(t + kTcpHeaderLen, t + tcp_len);
  return f;
}

}  // namespace escort
