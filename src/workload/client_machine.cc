#include "src/workload/client_machine.h"

namespace escort {

// --- TcpPeer --------------------------------------------------------------------

void TcpPeer::Connect() {
  state_ = State::kSynSent;
  SendFlags(kTcpSyn, iss_, {});
  snd_nxt_ = iss_ + 1;
  snd_una_ = iss_;
  ArmTimer();
}

void TcpPeer::SendData(const std::vector<uint8_t>& bytes) {
  if (state_ != State::kEstablished) {
    return;
  }
  SendFlags(kTcpAck | kTcpPsh, snd_nxt_, bytes);
  snd_nxt_ += static_cast<uint32_t>(bytes.size());
  ArmTimer();
}

void TcpPeer::Close() {
  if (state_ == State::kEstablished) {
    fin_sent_ = true;
    fin_seq_ = snd_nxt_;
    SendFlags(kTcpFin | kTcpAck, snd_nxt_, {});
    snd_nxt_ += 1;
    state_ = State::kFinWait1;
    ArmTimer();
  } else if (state_ == State::kCloseWait) {
    fin_sent_ = true;
    fin_seq_ = snd_nxt_;
    SendFlags(kTcpFin | kTcpAck, snd_nxt_, {});
    snd_nxt_ += 1;
    state_ = State::kLastAck;
    ArmTimer();
  }
}

void TcpPeer::Abort() {
  CancelTimer();
  state_ = State::kClosed;
  machine_->ReleaseConnection(this);
}

void TcpPeer::Fail() {
  CancelTimer();
  state_ = State::kFailed;
  if (owner_ != nullptr) {
    owner_->OnFailed(this);
  }
  machine_->ReleaseConnection(this);
}

void TcpPeer::SendFlags(uint8_t flags, uint32_t seq, const std::vector<uint8_t>& payload) {
  last_flags_ = flags;
  last_seq_ = seq;
  last_payload_ = payload;
  machine_->SendTcp(this, flags, seq, rcv_nxt_, payload);
}

void TcpPeer::ArmTimer() {
  CancelTimer();
  timer_armed_ = true;
  ClientMachine* m = machine_;
  ConnHandle h = self_;
  // Wheel timer, O(1) arm/cancel. The handle goes stale the moment the
  // connection is released — including when the local port is re-issued to
  // a later connection, which a port capture would silently mistake for
  // this one.
  timer_id_ = m->eq()->ScheduleTimerAfter(m->retransmit_timeout, [m, h] {
    if (TcpPeer* p = m->ResolvePeer(h); p != nullptr) {
      p->OnTimer();
    }
  });
}

void TcpPeer::CancelTimer() {
  if (timer_armed_) {
    machine_->eq()->CancelTimer(timer_id_);
    timer_armed_ = false;
  }
}

void TcpPeer::OnTimer() {
  timer_armed_ = false;
  if (state_ == State::kClosed || state_ == State::kFailed) {
    return;
  }
  if (++retransmits_ > machine_->max_retransmits) {
    Fail();
    return;
  }
  // Retransmit whatever we sent last.
  machine_->SendTcp(this, last_flags_, last_seq_, rcv_nxt_, last_payload_);
  ArmTimer();
}

void TcpPeer::OnSegment(const TcpHeader& hdr, const std::vector<uint8_t>& payload) {
  if ((hdr.flags & kTcpRst) != 0) {
    Fail();
    return;
  }

  if (state_ == State::kSynSent) {
    if ((hdr.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) && hdr.ack == iss_ + 1) {
      rcv_nxt_ = hdr.seq + 1;
      snd_una_ = hdr.ack;
      state_ = State::kEstablished;
      CancelTimer();
      SendFlags(kTcpAck, snd_nxt_, {});
      if (owner_ != nullptr) {
        owner_->OnConnected(this);
      }
    }
    return;
  }

  if ((hdr.flags & kTcpAck) != 0 && static_cast<int32_t>(hdr.ack - snd_una_) > 0) {
    snd_una_ = hdr.ack;
    CancelTimer();
    if (fin_sent_ && snd_una_ == fin_seq_ + 1) {
      if (state_ == State::kFinWait1) {
        state_ = State::kFinWait2;
      } else if (state_ == State::kLastAck) {
        state_ = State::kClosed;
        if (owner_ != nullptr) {
          owner_->OnClosed(this);
        }
        machine_->ReleaseConnection(this);
        return;
      }
    }
  }

  uint32_t seg_len = static_cast<uint32_t>(payload.size());
  bool made_progress = false;
  if (seg_len > 0 && hdr.seq == rcv_nxt_) {
    rcv_nxt_ += seg_len;
    bytes_received_ += seg_len;
    made_progress = true;
    if (owner_ != nullptr) {
      owner_->OnData(this, payload);
    }
    if (state_ == State::kClosed || state_ == State::kFailed) {
      return;  // callback tore the connection down
    }
  }

  bool fin = (hdr.flags & kTcpFin) != 0 && hdr.seq + seg_len == rcv_nxt_;
  if (fin) {
    rcv_nxt_ += 1;
    made_progress = true;
    switch (state_) {
      case State::kEstablished: {
        // Server closed first: ACK, then close our side after the client
        // processing delay.
        state_ = State::kCloseWait;
        SendFlags(kTcpAck, snd_nxt_, {});
        ClientMachine* m = machine_;
        ConnHandle h = self_;
        m->eq()->ScheduleTimerAfter(m->model().client_processing / 2, [m, h] {
          TcpPeer* p = m->ResolvePeer(h);
          if (p != nullptr && p->state_ == State::kCloseWait) {
            p->Close();
          }
        });
        return;
      }
      case State::kFinWait2:
      case State::kFinWait1:
        state_ = State::kClosed;
        SendFlags(kTcpAck, snd_nxt_, {});
        CancelTimer();
        if (owner_ != nullptr) {
          owner_->OnClosed(this);
        }
        machine_->ReleaseConnection(this);
        return;
      default:
        SendFlags(kTcpAck, snd_nxt_, {});
        return;
    }
  }

  if (made_progress || seg_len > 0) {
    // ACK in-order data (and dup-ACK out-of-order segments). With
    // coalescing, only every n-th segment is acknowledged immediately; a
    // delayed ACK covers the tail.
    ++unacked_segments_;
    if (ack_every <= 1 || unacked_segments_ >= ack_every || seg_len == 0) {
      unacked_segments_ = 0;
      SendFlags(kTcpAck, snd_nxt_, {});
      return;
    }
    if (!delack_pending_) {
      delack_pending_ = true;
      ClientMachine* m = machine_;
      ConnHandle h = self_;
      m->eq()->ScheduleTimerAfter(delayed_ack, [m, h] {
        TcpPeer* p = m->ResolvePeer(h);
        if (p == nullptr) {
          return;  // released (or slot re-issued) before the delack fired
        }
        p->delack_pending_ = false;
        if (p->unacked_segments_ > 0 && p->state_ != State::kClosed &&
            p->state_ != State::kFailed) {
          p->unacked_segments_ = 0;
          p->SendFlags(kTcpAck, p->snd_nxt_, {});
        }
      });
    }
  }
}

// --- ClientMachine ---------------------------------------------------------------

ClientMachine::ClientMachine(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr ip,
                             NetworkModel model, uint64_t seed, Slab<TcpPeer>* peer_slab)
    : eq_(eq), link_(link), mac_(mac), ip_(ip), model_(model), rng_(seed),
      slab_(peer_slab != nullptr ? peer_slab : &own_slab_) {
  link_->Attach(mac_, this, model_.client_link_latency);
}

ClientMachine::~ClientMachine() {
  // Return this machine's slots to the (possibly shared) slab.
  for (const auto& [port, h] : conns_) {
    slab_->Release(h);
  }
  link_->Detach(mac_);
}

TcpPeer* ClientMachine::FindPeer(uint16_t local_port) {
  for (const auto& [port, h] : conns_) {
    if (port == local_port) {
      return slab_->Find(h);
    }
  }
  return nullptr;
}

TcpPeer* ClientMachine::OpenConnection(Ip4Addr remote, uint16_t remote_port, ConnOwner* owner) {
  uint16_t port = next_port_++;
  if (next_port_ < 4096) {
    next_port_ = 4096;  // wrap
  }
  uint32_t iss = static_cast<uint32_t>(rng_.Next());
  ConnHandle h = slab_->Create();
  TcpPeer* peer = slab_->Find(h);
  peer->machine_ = this;
  peer->owner_ = owner;
  peer->self_ = h;
  peer->local_port_ = port;
  peer->remote_ = remote;
  peer->remote_port_ = remote_port;
  peer->iss_ = iss;
  peer->snd_nxt_ = iss;
  conns_.emplace_back(port, h);
  return peer;
}

void ClientMachine::ReleaseConnection(TcpPeer* peer) {
  if (peer == nullptr) {
    return;
  }
  peer->CancelTimer();
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].second == peer->self_) {
      conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  // The released peer may be finishing one of its own methods (Fail, the
  // FIN path): the slab keeps the storage inert until the slot is reused,
  // so the tail of that method is safe; every outstanding handle is stale
  // as of now.
  slab_->Release(peer->self_);
}

void ClientMachine::SendTcp(TcpPeer* peer, uint8_t flags, uint32_t seq, uint32_t ack,
                            const std::vector<uint8_t>& payload) {
  auto it = arp_.find(peer->remote_);
  if (it == arp_.end()) {
    return;  // no ARP mapping: drop (the topology builder preloads these)
  }
  TcpHeader hdr;
  hdr.src_port = peer->local_port_;
  hdr.dst_port = peer->remote_port_;
  hdr.seq = seq;
  hdr.ack = ack;
  hdr.flags = flags;
  hdr.window = 0xffff;
  Transmit(BuildTcpFrame(mac_, it->second, ip_, peer->remote_, hdr, payload));
}

void ClientMachine::DeliverFrame(const std::vector<uint8_t>& frame) {
  ++frames_rx_;
  auto parsed = ParseFrame(frame);
  if (!parsed.has_value()) {
    return;
  }
  if (parsed->is_arp) {
    // Answer requests for our IP; learn replies.
    arp_[parsed->arp.sender_ip] = parsed->arp.sender_mac;
    if (parsed->arp.opcode == 1 && parsed->arp.target_ip == ip_) {
      ArpPacket reply;
      reply.opcode = 2;
      reply.sender_mac = mac_;
      reply.sender_ip = ip_;
      reply.target_mac = parsed->arp.sender_mac;
      reply.target_ip = parsed->arp.sender_ip;
      Transmit(BuildArpFrame(mac_, parsed->arp.sender_mac, reply));
    }
    return;
  }
  if (!parsed->is_tcp || parsed->ip.dst != ip_ || !parsed->tcp.checksum_ok) {
    return;
  }
  TcpPeer* peer = FindPeer(parsed->tcp.dst_port);
  if (peer == nullptr) {
    return;
  }
  // Client-side processing delay before the peer reacts. The dispatch
  // captures the handle, not the port: a connection released and its port
  // re-issued between schedule and fire must not swallow the segment.
  TcpHeader hdr = parsed->tcp;
  std::vector<uint8_t> payload = std::move(parsed->payload);
  ConnHandle h = peer->self_;
  eq_->ScheduleTimerAfter(model_.client_processing / 4, [this, h, hdr, payload] {
    if (TcpPeer* p = ResolvePeer(h); p != nullptr) {
      p->OnSegment(hdr, payload);
    }
  });
}

}  // namespace escort
