#include "src/workload/http_client.h"

namespace escort {

// --- HttpClient -----------------------------------------------------------------

HttpClient::HttpClient(ClientMachine* machine, Ip4Addr server, std::string target)
    : machine_(machine), server_(server), target_(std::move(target)) {}

void HttpClient::Start(Cycles initial_delay) {
  machine_->eq()->ScheduleTimerAfter(initial_delay, [this] { StartRequest(); });
}

void HttpClient::ScheduleNext(Cycles delay) {
  if (stopped_ || (max_requests != 0 && completed_ >= max_requests)) {
    return;
  }
  machine_->eq()->ScheduleTimerAfter(delay, [this] { StartRequest(); });
}

void HttpClient::StartRequest() {
  if (stopped_ || in_flight_) {
    return;
  }
  in_flight_ = true;
  req_bytes_this_conn_ = 0;
  TcpPeer* peer = machine_->OpenConnection(server_, 80, this);
  peer->Connect();
}

void HttpClient::OnConnected(TcpPeer* peer) {
  std::string req = "GET " + target_ + " HTTP/1.0\r\nHost: server\r\n\r\n";
  peer->SendData(std::vector<uint8_t>(req.begin(), req.end()));
}

void HttpClient::OnData(TcpPeer*, const std::vector<uint8_t>& bytes) {
  bytes_ += bytes.size();
  req_bytes_this_conn_ += bytes.size();
}

void HttpClient::OnClosed(TcpPeer*) {
  in_flight_ = false;
  ++completed_;
  last_completion_ = machine_->eq()->now();
  if (meter_ != nullptr) {
    meter_->Record(last_completion_);
  }
  ScheduleNext(think_time + machine_->model().client_processing / 2);
}

void HttpClient::OnFailed(TcpPeer*) {
  in_flight_ = false;
  ++failed_;
  ScheduleNext(retry_backoff);
}

// --- CgiAttacker -----------------------------------------------------------------

CgiAttacker::CgiAttacker(ClientMachine* machine, Ip4Addr server, Cycles period)
    : machine_(machine), server_(server), period_(period) {}

void CgiAttacker::Start(Cycles initial_delay) {
  machine_->eq()->ScheduleTimerAfter(initial_delay, [this] { LaunchAttack(); });
}

void CgiAttacker::LaunchAttack() {
  if (stopped_) {
    return;
  }
  ++attacks_;
  // No response will ever come: the server kills the path. The client TCP
  // gives up after its retransmit budget and releases the connection.
  TcpPeer* peer = machine_->OpenConnection(server_, 80, this);
  peer->Connect();
  machine_->eq()->ScheduleTimerAfter(period_, [this] { LaunchAttack(); });
}

void CgiAttacker::OnConnected(TcpPeer* peer) {
  std::string req = "GET /cgi-bin/loop HTTP/1.0\r\n\r\n";
  peer->SendData(std::vector<uint8_t>(req.begin(), req.end()));
}

// --- SynAttacker ------------------------------------------------------------------

SynAttacker::SynAttacker(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr src_ip,
                         Ip4Addr server_ip, MacAddr server_mac, double syns_per_sec)
    : eq_(eq),
      link_(link),
      mac_(mac),
      src_ip_(src_ip),
      server_ip_(server_ip),
      server_mac_(server_mac),
      period_(CyclesFromSeconds(1.0 / syns_per_sec)) {}

void SynAttacker::Start(Cycles initial_delay) {
  eq_->ScheduleTimerAfter(initial_delay, [this] { SendOne(); });
}

void SynAttacker::SendOne() {
  if (stopped_) {
    return;
  }
  ++sent_;
  TcpHeader hdr;
  hdr.src_port = next_port_;
  next_port_ = static_cast<uint16_t>(next_port_ + 13);  // rotate source ports
  if (next_port_ == 0) {
    next_port_ = 1;
  }
  hdr.dst_port = 80;
  hdr.seq = next_seq_;
  next_seq_ += 104729;
  hdr.flags = kTcpSyn;
  link_->Send(mac_, BuildTcpFrame(mac_, server_mac_, src_ip_, server_ip_, hdr, {}));
  eq_->ScheduleTimerAfter(period_, [this] { SendOne(); });
}

// --- QosReceiver -------------------------------------------------------------------

QosReceiver::QosReceiver(ClientMachine* machine, Ip4Addr server)
    : machine_(machine), server_(server) {}

void QosReceiver::Start(Cycles initial_delay) {
  machine_->eq()->ScheduleTimerAfter(initial_delay, [this] { Connect(); });
}

void QosReceiver::Connect() {
  TcpPeer* peer = machine_->OpenConnection(server_, 80, this);
  // A streaming receiver never times out the transfer and coalesces ACKs.
  machine_->max_retransmits = 1000000;
  peer->ack_every = 4;
  peer->Connect();
}

void QosReceiver::OnConnected(TcpPeer* peer) {
  connected_ = true;
  std::string req = "GET /stream HTTP/1.0\r\n\r\n";
  peer->SendData(std::vector<uint8_t>(req.begin(), req.end()));
}

void QosReceiver::OnData(TcpPeer*, const std::vector<uint8_t>& bytes) {
  bytes_ += bytes.size();
  meter_.Record(machine_->eq()->now(), bytes.size());
}

void QosReceiver::OnClosed(TcpPeer*) { connected_ = false; }

void QosReceiver::OnFailed(TcpPeer*) {
  connected_ = false;
  // The stream must stay up: reconnect.
  machine_->eq()->ScheduleTimerAfter(CyclesFromMillis(100), [this] { Connect(); });
}

}  // namespace escort
