// Client machines: the PentiumPro workstations of the testbed.
//
// Each machine owns a MAC/IP, answers ARP, and multiplexes TCP connections
// by local port. The client-side TCP (TcpPeer) is a deliberately small,
// independent implementation — it interoperates with the server's TCP
// module over real frames, which cross-checks both codecs and state
// machines. Client-side compute is modelled as fixed delays; client
// machines are never the bottleneck (one logical client per machine, as in
// the paper).
//
// Flyweight connections: TcpPeers live by value in a generation-tagged
// Slab<TcpPeer> (see src/elib/slab.h) that the testbed shares across every
// machine of a shard, so a million concurrent clients cost
// slab-slot bytes per connection instead of a heap allocation plus a
// callback web of std::function captures. Deferred work (retransmit timers,
// delayed ACKs, dispatch delays) captures the peer's ConnHandle and
// revalidates through the slab at fire time — a released (or re-issued)
// slot resolves to nothing, which a port-number capture cannot guarantee
// once next_port_ wraps.

#ifndef SRC_WORKLOAD_CLIENT_MACHINE_H_
#define SRC_WORKLOAD_CLIENT_MACHINE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/elib/slab.h"
#include "src/sim/rng.h"
#include "src/workload/network.h"
#include "src/workload/wire.h"

namespace escort {

class ClientMachine;
class TcpPeer;

// Connection-event receiver: the workload driver (HttpClient, QosReceiver,
// ...) implements this instead of handing four std::function callbacks to
// every connection. The peer passes itself to each hook, so one long-lived
// owner serves any number of consecutive connections without per-connection
// capture state. Hooks run on the machine's stream (shard context); default
// implementations ignore the event.
class ConnOwner {
 public:
  virtual ~ConnOwner() = default;
  virtual void OnConnected(TcpPeer*) {}
  virtual void OnData(TcpPeer*, const std::vector<uint8_t>&) {}
  virtual void OnClosed(TcpPeer*) {}   // graceful close completed
  virtual void OnFailed(TcpPeer*) {}   // gave up (retransmit limit / RST)
};

// Runs on per-client-machine streams, i.e. on shard workers under
// --shards > 1: methods of this class must not call ESCORT_SERIAL_ONLY
// APIs (EA002) — only ESCORT_SHARD_SAFE meters and PostSequenced.
// ESCORT_SHARD_CONTEXT
// ESCORT_KERNEL_LIFETIME
// ESCORT_SLAB_SLOT: stored by value in the testbed's Slab<TcpPeer>;
// reclaimed when the connection closes (ReleaseConnection bumps the slot
// generation). Deferred closures capture the ConnHandle and revalidate via
// ClientMachine::ResolvePeer at fire time (the EA001 idiom).
class TcpPeer {
 public:
  enum class State { kClosed, kSynSent, kEstablished, kCloseWait, kLastAck, kFinWait1, kFinWait2, kTimeWait, kFailed };

  TcpPeer() = default;

  State state() const { return state_; }
  uint16_t local_port() const { return local_port_; }
  uint64_t bytes_received() const { return bytes_received_; }
  int retransmits() const { return retransmits_; }
  ConnHandle handle() const { return self_; }

  void Connect();
  void SendData(const std::vector<uint8_t>& bytes);  // one segment worth
  void Close();                                      // active close
  void Abort();                                      // silent abandon

  // ACK coalescing: acknowledge every n-th data segment (plus a delayed
  // ACK for the tail). Streaming receivers set this above 1.
  int ack_every = 1;
  Cycles delayed_ack = CyclesFromMillis(2.0);

 private:
  friend class ClientMachine;

  void OnSegment(const TcpHeader& hdr, const std::vector<uint8_t>& payload);
  void SendFlags(uint8_t flags, uint32_t seq, const std::vector<uint8_t>& payload);
  void ArmTimer();
  void CancelTimer();
  void OnTimer();
  void Fail();

  // Set by ClientMachine::OpenConnection (slab slots are default-initialized
  // and re-initialized in place on reuse).
  ClientMachine* machine_ = nullptr;
  ConnOwner* owner_ = nullptr;
  ConnHandle self_;
  uint16_t local_port_ = 0;
  Ip4Addr remote_{};
  uint16_t remote_port_ = 0;
  uint32_t iss_ = 0;

  State state_ = State::kClosed;
  uint32_t snd_nxt_ = 0;
  uint32_t snd_una_ = 0;
  uint32_t rcv_nxt_ = 0;
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;
  uint64_t bytes_received_ = 0;
  int retransmits_ = 0;

  // Last thing we sent, for the (simple) client retransmit.
  uint8_t last_flags_ = 0;
  uint32_t last_seq_ = 0;
  std::vector<uint8_t> last_payload_;

  EventQueue::TimerId timer_id_ = 0;
  bool timer_armed_ = false;
  int unacked_segments_ = 0;
  bool delack_pending_ = false;
};

// ESCORT_SHARD_CONTEXT
class ClientMachine : public NetEndpoint {
 public:
  // `peer_slab` is the connection table this machine files its TcpPeers in;
  // the testbed passes one slab per shard (machines on a shard share it).
  // nullptr gives the machine a private table (unit tests, examples).
  ClientMachine(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr ip, NetworkModel model,
                uint64_t seed, Slab<TcpPeer>* peer_slab = nullptr);
  ~ClientMachine() override;

  EventQueue* eq() { return eq_; }
  MacAddr mac() const { return mac_; }
  Ip4Addr ip() const { return ip_; }
  Rng& rng() { return rng_; }
  const NetworkModel& model() const { return model_; }

  void AddArpEntry(Ip4Addr ip, MacAddr mac) { arp_[ip] = mac; }

  // Opens a connection (does not send the SYN; call Connect()). The owner
  // must outlive the connection; it may be null (fire-and-forget senders).
  TcpPeer* OpenConnection(Ip4Addr remote, uint16_t remote_port, ConnOwner* owner);
  void ReleaseConnection(TcpPeer* peer);

  // Handle revalidation against the shared slab (EA001): nullptr once the
  // connection was released or its slot re-issued.
  TcpPeer* ResolvePeer(ConnHandle h) { return slab_->Find(h); }

  // Live connections on this machine.
  size_t conn_count() const { return conns_.size(); }

  // Forces the next local port (tests drive the 16-bit wrap).
  void set_next_port_for_test(uint16_t port) { next_port_ = port; }

  // NetEndpoint
  void DeliverFrame(const std::vector<uint8_t>& frame) override;

  // Sends a raw frame onto the wire (also used by the SYN attacker).
  void Transmit(std::vector<uint8_t> frame) { link_->Send(mac_, std::move(frame)); }

  // Client-side TCP knobs.
  Cycles retransmit_timeout = CyclesFromMillis(1000);
  int max_retransmits = 4;

  uint64_t frames_received() const { return frames_rx_; }

 private:
  friend class TcpPeer;

  void SendTcp(TcpPeer* peer, uint8_t flags, uint32_t seq, uint32_t ack,
               const std::vector<uint8_t>& payload);
  TcpPeer* FindPeer(uint16_t local_port);

  EventQueue* const eq_;
  SharedLink* const link_;
  const MacAddr mac_;
  const Ip4Addr ip_;
  const NetworkModel model_;
  Rng rng_;

  std::map<Ip4Addr, MacAddr> arp_;
  // Fallback table for slab-less construction; slab_ points at it then.
  Slab<TcpPeer> own_slab_;
  Slab<TcpPeer>* slab_ = nullptr;
  // Port demux. A machine has a handful of live connections (one logical
  // client per machine): a flat vector beats a node-based map at a million
  // machines — no per-connection heap allocation at all.
  std::vector<std::pair<uint16_t, ConnHandle>> conns_;
  uint16_t next_port_ = 4096;
  uint64_t frames_rx_ = 0;
};

}  // namespace escort

#endif  // SRC_WORKLOAD_CLIENT_MACHINE_H_
