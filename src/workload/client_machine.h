// Client machines: the PentiumPro workstations of the testbed.
//
// Each machine owns a MAC/IP, answers ARP, and multiplexes TCP connections
// by local port. The client-side TCP (TcpPeer) is a deliberately small,
// independent implementation — it interoperates with the server's TCP
// module over real frames, which cross-checks both codecs and state
// machines. Client-side compute is modelled as fixed delays; client
// machines are never the bottleneck (one logical client per machine, as in
// the paper).

#ifndef SRC_WORKLOAD_CLIENT_MACHINE_H_
#define SRC_WORKLOAD_CLIENT_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/sim/rng.h"
#include "src/workload/network.h"
#include "src/workload/wire.h"

namespace escort {

class ClientMachine;

// Runs on per-client-machine streams, i.e. on shard workers under
// --shards > 1: methods of this class must not call ESCORT_SERIAL_ONLY
// APIs (EA002) — only ESCORT_SHARD_SAFE meters and PostSequenced.
// ESCORT_SHARD_CONTEXT
// ESCORT_KERNEL_LIFETIME
// Reclaimed when the connection closes (ClientMachine erases the conns_
// entry); deferred closures must capture the local port key and look the
// peer up again at fire time.
class TcpPeer {
 public:
  struct Callbacks {
    std::function<void()> on_connected;
    std::function<void(const std::vector<uint8_t>&)> on_data;
    std::function<void()> on_closed;  // graceful close completed
    std::function<void()> on_failed;  // gave up (retransmit limit)
  };

  enum class State { kClosed, kSynSent, kEstablished, kCloseWait, kLastAck, kFinWait1, kFinWait2, kTimeWait, kFailed };

  State state() const { return state_; }
  uint16_t local_port() const { return local_port_; }
  uint64_t bytes_received() const { return bytes_received_; }
  int retransmits() const { return retransmits_; }

  void Connect();
  void SendData(const std::vector<uint8_t>& bytes);  // one segment worth
  void Close();                                      // active close
  void Abort();                                      // silent abandon

  // ACK coalescing: acknowledge every n-th data segment (plus a delayed
  // ACK for the tail). Streaming receivers set this above 1.
  int ack_every = 1;
  Cycles delayed_ack = CyclesFromMillis(2.0);

 private:
  friend class ClientMachine;

  TcpPeer(ClientMachine* machine, uint16_t local_port, Ip4Addr remote, uint16_t remote_port,
          uint32_t iss, Callbacks cbs)
      : machine_(machine),
        local_port_(local_port),
        remote_(remote),
        remote_port_(remote_port),
        iss_(iss),
        snd_nxt_(iss),
        cbs_(std::move(cbs)) {}

  void OnSegment(const TcpHeader& hdr, const std::vector<uint8_t>& payload);
  void SendFlags(uint8_t flags, uint32_t seq, const std::vector<uint8_t>& payload);
  void ArmTimer();
  void CancelTimer();
  void OnTimer();
  void Fail();

  ClientMachine* const machine_;
  const uint16_t local_port_;
  const Ip4Addr remote_;
  const uint16_t remote_port_;
  const uint32_t iss_;

  State state_ = State::kClosed;
  uint32_t snd_nxt_;
  uint32_t snd_una_ = 0;
  uint32_t rcv_nxt_ = 0;
  bool fin_sent_ = false;
  uint32_t fin_seq_ = 0;
  uint64_t bytes_received_ = 0;
  int retransmits_ = 0;

  // Last thing we sent, for the (simple) client retransmit.
  uint8_t last_flags_ = 0;
  uint32_t last_seq_ = 0;
  std::vector<uint8_t> last_payload_;

  uint64_t timer_id_ = 0;
  bool timer_armed_ = false;
  int unacked_segments_ = 0;
  bool delack_pending_ = false;

  Callbacks cbs_;
};

// ESCORT_SHARD_CONTEXT
class ClientMachine : public NetEndpoint {
 public:
  ClientMachine(EventQueue* eq, SharedLink* link, MacAddr mac, Ip4Addr ip, NetworkModel model,
                uint64_t seed);
  ~ClientMachine() override;

  EventQueue* eq() { return eq_; }
  MacAddr mac() const { return mac_; }
  Ip4Addr ip() const { return ip_; }
  Rng& rng() { return rng_; }
  const NetworkModel& model() const { return model_; }

  void AddArpEntry(Ip4Addr ip, MacAddr mac) { arp_[ip] = mac; }

  // Opens a connection object (does not send the SYN; call Connect()).
  TcpPeer* OpenConnection(Ip4Addr remote, uint16_t remote_port, TcpPeer::Callbacks cbs);
  void ReleaseConnection(TcpPeer* peer);

  // NetEndpoint
  void DeliverFrame(const std::vector<uint8_t>& frame) override;

  // Sends a raw frame onto the wire (also used by the SYN attacker).
  void Transmit(std::vector<uint8_t> frame) { link_->Send(mac_, std::move(frame)); }

  // Client-side TCP knobs.
  Cycles retransmit_timeout = CyclesFromMillis(1000);
  int max_retransmits = 4;

  uint64_t frames_received() const { return frames_rx_; }

 private:
  friend class TcpPeer;

  void SendTcp(TcpPeer* peer, uint8_t flags, uint32_t seq, uint32_t ack,
               const std::vector<uint8_t>& payload);

  EventQueue* const eq_;
  SharedLink* const link_;
  const MacAddr mac_;
  const Ip4Addr ip_;
  const NetworkModel model_;
  Rng rng_;

  std::map<Ip4Addr, MacAddr> arp_;
  std::map<uint16_t, std::unique_ptr<TcpPeer>> conns_;
  uint16_t next_port_ = 4096;
  uint64_t frames_rx_ = 0;
};

}  // namespace escort

#endif  // SRC_WORKLOAD_CLIENT_MACHINE_H_
