// Declarative sweep harness for the figure/table bench binaries.
//
// The paper's evaluation (§4) is a grid of independent simulation cells —
// configuration × client count × document size. A bench declares its grid
// as SweepCells up front, hands it to Sweep::Run, and reads the collected
// results back by cell id to print its tables. Cells execute on a thread
// pool (src/sim/parallel.h), one fully isolated simulation world per cell;
// results always come back in grid order, bit-identical to a serial run
// (tests/test_parallel_equivalence.cc is the regression test).
//
// Isolation contract (see DESIGN.md): a cell's run function may touch only
// state it creates itself plus the immutable CostModel::Calibrated() /
// NetworkModel::Calibrated() singletons. No cell may write to globals,
// static locals, or another cell's state — escort_lint EL009/EL010 enforce
// this statically, the TSan CI job dynamically.
//
// Every bench built on this harness accepts:
//   --jobs N     worker threads (default: hardware concurrency)
//   --shards N   event-queue shards *within* each cell (default 1;
//                results are bit-identical at any N — see
//                ShardedEventQueue). Recorded in the JSON spec.
//   --clients N  override every cell's regular-client count (the scale
//                axis; Figure 8's million-client cells). Recorded in the
//                JSON spec.
//   --adaptive-lookahead
//                per-shard adaptive window horizons (fewer barriers, same
//                results — see ShardedEventQueue::ComputeHorizons).
//                Recorded in the JSON spec.
//   --timer-wheel / --no-timer-wheel
//                force the hierarchical timer wheel on/off for every cell
//                (default: each spec's own value, normally on). Workload
//                metrics are bit-identical either way; only the `memory`
//                and `perf` blocks move. Recorded in the JSON spec.
//   --placement MODE
//                stream→shard placement: rr (default), weighted, or
//                profile=PATH (feed back a prior run's bench JSON). The
//                resolved actor→shard map is recorded in the JSON spec.
//   --detect MODE
//                online attack detection for every cell: off (default:
//                keep each spec's own mode), sprt, or baseline
//                (src/server/detect.h). Recorded in the JSON spec; the
//                per-cell `detection` block carries the decisions.
//   --json PATH  machine-readable BENCH_*.json output for the perf
//                trajectory, alongside the human-readable tables
//   --trace PATH deterministic Chrome trace-event JSON of every cell
//                (one process per cell, merged in grid order; byte-
//                identical across --jobs and --shards). Flight-recorder
//                dumps land next to it as PATH.<cell>.flight.json.
//   --metrics PATH
//                deterministic metrics JSON of every cell (src/sim/
//                metrics.h: counters, gauges, log2 histograms, sim-time
//                series; merged in grid order, byte-identical across
//                --jobs and --shards — the same contract as --trace).
//   --health-p99-ms MS / --health-goodput-frac F
//                HealthMonitor SLO overrides (src/server/health.h): the
//                p99 connection-lifetime threshold and the goodput-
//                collapse fraction of the warmup baseline.
//   --quick      the bench's reduced grid

#ifndef SRC_WORKLOAD_SWEEP_H_
#define SRC_WORKLOAD_SWEEP_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/workload/experiment.h"

namespace escort {

// What one cell measured: the common ExperimentResult block plus named
// extras for bench-specific numbers (kill-cost min/max, penalty drops...).
struct CellMetrics {
  ExperimentResult experiment;
  std::vector<std::pair<std::string, double>> extra;
};

// A cell's body. It receives the (env-resolved) spec and must be
// thread-pure per the isolation contract above.
using CellFn = std::function<CellMetrics(const ExperimentSpec&)>;

struct SweepCell {
  std::string id;                            // unique within the sweep
  std::map<std::string, std::string> tags;   // free-form labels for JSON
  ExperimentSpec spec;
  CellFn run;                                // empty: RunExperiment(spec)
};

struct CellResult {
  bool ok = false;
  std::string error;   // exception text when !ok
  CellMetrics metrics;
  // Host wall-clock spent running this cell (the JSON `perf` block).
  // Machine-dependent by nature — never part of determinism comparisons.
  double wall_ms = 0.0;
};

struct SweepOptions {
  int jobs = 0;            // <= 0: hardware concurrency
  int shards = 0;          // <= 0: keep each spec's own value (default 1)
  int clients = 0;         // <= 0: keep each spec's own value
  bool adaptive_lookahead = false;
  // -1: keep each spec's own value (default on); 0/1: force the timer
  // wheel off/on for every cell (--no-timer-wheel / --timer-wheel).
  int timer_wheel = -1;
  // "" keeps each spec's own mode; else "rr", "weighted", or
  // "profile=PATH" (PATH: a prior run's bench JSON to feed back).
  std::string placement;
  // "" keeps each spec's own detection mode; else "off", "sprt", or
  // "baseline" (--detect).
  std::string detect;
  std::string json_path;    // empty: no JSON emitted
  std::string trace_path;   // empty: no trace emitted
  std::string metrics_path; // empty: no standalone metrics document
  // <= 0: keep the HealthConfig defaults (src/server/health.h).
  double health_p99_ms = 0.0;
  double health_goodput_frac = 0.0;
  bool quick = false;
};

// Parses the common bench flags (--jobs N, --shards N, --clients N,
// --adaptive-lookahead, --timer-wheel / --no-timer-wheel,
// --placement MODE, --detect MODE, --json PATH, --trace PATH,
// --metrics PATH, --health-p99-ms MS, --health-goodput-frac F, --quick).
// Prints usage and exits with status 2 on an unknown argument.
SweepOptions ParseSweepArgs(int argc, char** argv);

class Sweep {
 public:
  explicit Sweep(std::string bench_name);

  // Adds a cell measured by RunExperiment(spec).
  SweepCell& Add(std::string id, const ExperimentSpec& spec);
  // Adds a cell with a custom body (Table 1/2, policy benches). The spec
  // still carries whatever grid coordinates apply (config, clients, ...)
  // so the JSON record stays self-describing.
  SweepCell& AddCustom(std::string id, const ExperimentSpec& spec, CellFn run);

  size_t size() const { return cells_.size(); }
  const std::string& name() const { return name_; }

  // Runs every cell (ESCORT_WARMUP_S / ESCORT_WINDOW_S are resolved into
  // each spec first, so the JSON records the values actually used), then
  // writes opts.json_path if set. Results are stored in grid order.
  void Run(const SweepOptions& opts);

  // Lookup by id; both die with a message on an unknown id, Result()
  // additionally dies if the cell failed (benches want hard errors, not
  // silently zeroed tables).
  const CellResult& Cell(const std::string& id) const;
  const ExperimentResult& Result(const std::string& id) const;
  // Named extra of a cell, dying if absent.
  double Extra(const std::string& id, const std::string& key) const;

  const std::vector<SweepCell>& cells() const { return cells_; }
  const std::vector<CellResult>& results() const { return results_; }
  int failed_count() const;

  // JSON serialization of the whole sweep (schema_version 6; the schema
  // is pinned by tests/test_bench_json.cc and tools/check_bench_json.py).
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  std::string name_;
  int jobs_used_ = 1;
  std::vector<SweepCell> cells_;
  std::vector<CellResult> results_;
  std::map<std::string, size_t> index_;
};

// Canonical grids from the paper's figures, shared by the benches.
const std::vector<int>& ClientSweep();

struct DocSpec {
  const char* label;
  const char* path;
};
const std::vector<DocSpec>& DocSweep();

void PrintHeaderRule();

}  // namespace escort

#endif  // SRC_WORKLOAD_SWEEP_H_
