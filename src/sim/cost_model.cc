#include "src/sim/cost_model.h"

namespace escort {

const CostModel& CostModel::Calibrated() {
  static const CostModel model{};
  return model;
}

const NetworkModel& NetworkModel::Calibrated() {
  static const NetworkModel model{};
  return model;
}

}  // namespace escort
