#include "src/sim/stats.h"

#include <cmath>
#include <numeric>

namespace escort {

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return std::accumulate(values_.begin(), values_.end(), 0.0) / static_cast<double>(values_.size());
}

double Samples::Min() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::Max() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  // Out-of-range p would produce a negative rank, which casts to a huge
  // size_t and reads out of bounds; clamp to the documented domain.
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Samples::StdDev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  double mean = Mean();
  double sum = 0.0;
  for (double v : values_) {
    sum += (v - mean) * (v - mean);
  }
  return std::sqrt(sum / static_cast<double>(values_.size() - 1));
}

std::string WithCommas(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace escort
