// Hierarchical timer wheel: O(1) arm/cancel for per-connection timers.
//
// Per-connection TCP timers (retransmit, delayed ACK, CLOSE_WAIT auto-close,
// client think time) are armed and cancelled millions of times per cell at
// million-client scale; pushing each through the shard heaps costs O(log n)
// per operation against heaps that are mostly *other connections' timers*.
// The wheel files an armed timer into one of 6 cascading levels of 256 slots
// (level-0 slot width 2^16 sim-cycles ≈ 218 µs at 300 MHz; each level is
// 256x coarser, 6 levels cover the whole 64-bit cycle range) — an array
// store, O(1). Cancel unlinks the doubly-linked slot entry, O(1).
//
// Exactness contract: the wheel is a *staging structure*, never an ordering
// authority. Every armed timer carries the full total-order key
// (when, stream, seq, minor) assigned by the event queue, and expiry goes
// through a two-stage path: CollectUpTo moves whole slots whose tick the
// cursor has reached into a key-ordered due-heap, and PeekDue/PopDue only
// ever surface the key-minimum of that heap, after proving (via the
// occupancy bitmaps) that no slot still holds an earlier entry. The queue
// then merges the wheel's due-top against its shard heap by the same key —
// so the global fire order is bit-identical to the heap-only path, ties and
// all. tests/test_timer_wheel.cc drives ~100k randomized ops against a naive
// reference heap and asserts identical fire order.
//
// Handles are generation-tagged (index, gen) like slab ConnHandles: Cancel
// of a fired or re-armed timer is rejected by the generation check, never by
// luck.
//
// Owned by one shard (ShardedEventQueue keeps one wheel per shard; the
// serial queue keeps one). No locking — ESCORT_SHARD_CONTEXT.

#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/types.h"

namespace escort {

// Full deterministic-order key, mirroring ShardedEventQueue::Key. The
// serial queue uses stream = minor = 0 and its global FIFO seq.
struct TimerKey {
  Cycles when = 0;
  uint32_t stream = 0;
  uint64_t seq = 0;
  uint32_t minor = 0;
};

inline bool TimerKeyLess(const TimerKey& a, const TimerKey& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.minor < b.minor;
}

// Generation-tagged reference to an armed timer.
struct TimerRef {
  uint32_t index = 0;
  uint32_t gen = 0;
};

// ESCORT_SHARD_CONTEXT
class TimerWheel {
 public:
  using Callback = std::function<void()>;

  TimerWheel();
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Files a timer. `key.when` must be >= the time of every timer already
  // fired (the cursor never moves backwards). O(1).
  TimerRef Arm(const TimerKey& key, uint32_t exec_stream, Callback fn);

  // Cancels an armed timer; false if it already fired, was cancelled, or
  // the slot was re-issued (generation mismatch). O(1).
  bool Cancel(TimerRef ref);

  // True if any timer is armed; on true, *key is the key-minimum armed
  // timer, staged at the top of the due-heap (collecting slots as needed).
  bool PeekDue(TimerKey* key);

  // Pops the due-top surfaced by a preceding PeekDue and returns its
  // callback; the timer's handle goes stale before the callback is handed
  // back.
  Callback PopDue(TimerKey* key, uint32_t* exec_stream);

  // Live armed timers (slots + due-heap).
  size_t armed() const { return armed_; }
  size_t high_water() const { return high_water_; }
  size_t capacity() const { return entries_.capacity(); }
  size_t bytes_reserved() const;
  static size_t entry_bytes();

 private:
  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 8;
  static constexpr size_t kSlots = size_t{1} << kSlotBits;  // 256 per level
  static constexpr int kTickBits = 16;  // level-0 slot width in cycles
  static constexpr int32_t kNil = -1;

  enum class State : uint8_t { kFree, kInSlot, kInDue };

  struct Entry {
    TimerKey key;
    Callback fn;
    uint32_t gen = 1;
    uint32_t exec_stream = 0;
    int32_t prev = kNil;  // slot list links (next doubles as freelist link)
    int32_t next = kNil;
    int16_t level = kNil;
    int16_t slot = kNil;
    State state = State::kFree;
    bool alive = false;
  };

  struct Level {
    int32_t heads[kSlots];
    uint64_t occupied[kSlots / 64];
  };

  static uint64_t TickOf(Cycles when) { return when >> kTickBits; }
  Cycles collected_boundary() const { return cursor_tick_ << kTickBits; }

  int32_t AllocEntry();
  void FreeEntry(int32_t idx);
  // Files entries_[idx] into (level, slot) by the cursor-relative placement
  // rule; requires TickOf(key.when) >= cursor_tick_.
  void Place(int32_t idx);
  void Unlink(int32_t idx);
  // Moves every entry of the slot into the due-heap (level 0) or refiles it
  // downward (cascade).
  void DrainSlot(int level, size_t slot, bool to_due);
  // Advances the cursor so every slot entry with tick < target_tick is in
  // the due-heap; cascades outer levels at rotation boundaries.
  void CollectUpTo(uint64_t target_tick);
  void Cascade();
  // First occupied slot index >= from at `level`, or kNil.
  int FirstOccupied(const Level& lv, size_t from) const;
  // Lower bound on the earliest slot-filed entry (bitmap scan); false when
  // no entries are filed.
  bool SlotMinLowerBound(Cycles* out) const;

  void DuePush(int32_t idx);
  int32_t DuePop();

  std::vector<Entry> entries_;
  int32_t free_head_ = kNil;
  Level levels_[kLevels];
  std::vector<int32_t> due_;  // min-heap of entry indices, by full key
  uint64_t cursor_tick_ = 0;  // slot entries all have tick >= cursor_tick_
  size_t armed_ = 0;          // live timers (slots + due)
  size_t slot_live_ = 0;      // live timers still filed in slots
  // Invariant: no slot-filed entry has when < slot_min_bound_. Raised to
  // the collected boundary after collections, lowered by arms — lets the
  // hot PeekDue path skip the bitmap scan entirely.
  Cycles slot_min_bound_ = 0;
  size_t high_water_ = 0;
};

}  // namespace escort

#endif  // SRC_SIM_TIMER_WHEEL_H_
