#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/sim/metrics.h"
#include "src/sim/parallel.h"

namespace escort {

// ---- serial queue ----------------------------------------------------------

EventQueue::EventId EventQueue::ScheduleAt(Cycles when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = ledger_.Append();
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (!ledger_.Mark(id)) {
    return false;
  }
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && ledger_.IsConsumed(heap_.top().id)) {
    heap_.pop();
  }
}

bool EventQueue::TimerFirst(TimerKey* tk) const {
  if (wheel_ == nullptr || !wheel_->PeekDue(tk)) {
    return false;
  }
  if (heap_.empty()) {
    return true;
  }
  const Event& top = heap_.top();
  if (tk->when != top.when) {
    return tk->when < top.when;
  }
  return tk->seq < top.seq;
}

bool EventQueue::Step() {
  SkipCancelled();
  TimerKey tk;
  if (TimerFirst(&tk)) {
    uint32_t exec_stream;
    TimerKey key;
    TimerWheel::Callback fn = wheel_->PopDue(&key, &exec_stream);
    now_ = key.when;
    ++fired_count_;
    MetricRecord(timer_series_, 0, key.when, -1);
    fn();
    return true;
  }
  if (heap_.empty()) {
    return false;
  }
  // Move the callback out before popping so the event can reschedule itself.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  ledger_.Mark(ev.id);  // mark consumed so Cancel() on a fired id fails
  --live_count_;
  now_ = ev.when;
  ++fired_count_;
  ev.fn();
  return true;
}

void EventQueue::RunUntil(Cycles deadline) {
  Cycles when;
  while (PeekNext(&when) && when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventQueue::RunToCompletion() {
  while (Step()) {
  }
}

bool EventQueue::PeekNext(Cycles* when) const {
  SkipCancelled();
  TimerKey tk;
  bool have_timer = wheel_ != nullptr && wheel_->PeekDue(&tk);
  if (heap_.empty()) {
    if (!have_timer) {
      return false;
    }
    *when = tk.when;
    return true;
  }
  *when = have_timer && tk.when < heap_.top().when ? tk.when : heap_.top().when;
  return true;
}

EventQueue::TimerId EventQueue::ScheduleTimerAt(Cycles when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  if (!use_timer_wheel_) {
    return ScheduleAt(when, std::move(fn)) | kTimerHeapBit;
  }
  if (wheel_ == nullptr) {
    wheel_ = std::make_unique<TimerWheel>();
  }
  // One sequence number from the same global FIFO counter ScheduleAt uses:
  // timers and events interleave exactly as if both lived in the heap.
  TimerKey key{when, 0, next_seq_++, 0};
  TimerRef ref = wheel_->Arm(key, 0, std::move(fn));
  MetricRecord(timer_series_, 0, now_, 1);
  return (static_cast<TimerId>(ref.index) << 32) | ref.gen;
}

bool EventQueue::CancelTimer(TimerId id) {
  if ((id & kTimerHeapBit) != 0) {
    return Cancel(id & ~kTimerHeapBit);
  }
  if (wheel_ == nullptr) {
    return false;
  }
  const bool cancelled = wheel_->Cancel(TimerRef{
      static_cast<uint32_t>((id >> 32) & 0xffffff), static_cast<uint32_t>(id)});
  if (cancelled) {
    MetricRecord(timer_series_, 0, now_, -1);
  }
  return cancelled;
}

void EventQueue::AttachMetrics(MetricsRegistry* m) {
  timer_series_ =
      m == nullptr ? nullptr
                   : ESCORT_METRIC_SHARDED(m, "sim.timers_armed",
                                           "timer-wheel resident timers", 1);
}

EventQueue::TimerWheelStats EventQueue::timer_stats() const {
  TimerWheelStats stats;
  if (wheel_ != nullptr) {
    stats.armed = wheel_->armed();
    stats.high_water = wheel_->high_water();
    stats.capacity = wheel_->capacity();
    stats.bytes_reserved = wheel_->bytes_reserved();
  }
  return stats;
}

// ---- sharded queue ---------------------------------------------------------

namespace {

// Execution context of the event (or sequenced transaction) currently
// running on this thread. Owned per worker; `owner` distinguishes nested
// queues (a test may drive several). Allowed in src/sim/ by EL010: this is
// part of the parallel execution machinery, invisible to simulation code.
struct ExecContext {
  const ShardedEventQueue* owner = nullptr;
  EventQueue::StreamId stream = 0;  // context whose code is running
  Cycles now = 0;                   // that context's local clock
  bool sequenced = false;           // inside a PostSequenced body
  uint64_t seq = 0;                 // the transaction's sequence number
  uint32_t next_minor = 0;          // minor index for the txn's children
};

thread_local ExecContext tls_exec;

constexpr uint64_t kLocalIdMask = (uint64_t{1} << 56) - 1;

}  // namespace

ShardedEventQueue::ShardedEventQueue(int shards, Cycles lookahead, bool adaptive)
    : lookahead_(lookahead), adaptive_(adaptive) {
  if (shards < 1) {
    shards = 1;
  }
  if (shards > 64) {
    shards = 64;
  }
  shards_.resize(static_cast<size_t>(shards));
  streams_.push_back(Stream{0, 0});  // stream 0: server / kernel / main context
  earliest_.reserve(shards_.size());
  horizons_.reserve(shards_.size());
  active_.reserve(shards_.size());
  if (shards > 1) {
    // The gang's body is bound exactly once: window dispatches carry only a
    // shard index through an atomic slot, never a fresh closure.
    gang_ = std::make_unique<ShardGang>(shards - 1, [this](size_t s) { RunShardWindow(s); });
  }
}

ShardedEventQueue::~ShardedEventQueue() = default;

Cycles ShardedEventQueue::now() const {
  if (tls_exec.owner == this) {
    return tls_exec.now;
  }
  return now_floor_;
}

const Cycles& ShardedEventQueue::now_ref() const { return shards_[0].clock; }

EventQueue::StreamId ShardedEventQueue::NewStream(int shard) {
  // Streams may only be created at serial points (testbed construction).
  StreamId id = static_cast<StreamId>(streams_.size());
  int home = shard % static_cast<int>(shards_.size());
  if (home < 0) {
    home = 0;
  }
  streams_.push_back(Stream{home, 0});
  return id;
}

EventQueue::StreamId ShardedEventQueue::current_stream() const {
  if (tls_exec.owner == this) {
    return tls_exec.stream;
  }
  return main_stream_;
}

EventQueue::StreamId ShardedEventQueue::SwapCurrentStream(StreamId stream) {
  StreamId prev = main_stream_;
  main_stream_ = stream;
  return prev;
}

void ShardedEventQueue::NoteInsert(size_t shard, Cycles when) {
  if (inline_window_shard_ >= 0 && shard != static_cast<size_t>(inline_window_shard_)) {
    // Cross-shard insert while a window runs inline: the running shard must
    // not advance to the new event's time or any later wire transaction it
    // posts would overtake the insert's own. A no-op under the default
    // conservative horizon (deliveries land at >= horizon); only adaptive
    // windows can be shrunk by it.
    Shard& running = shards_[static_cast<size_t>(inline_window_shard_)];
    if (when < running.window_cap) {
      running.window_cap = when;
    }
  }
  if (draining_ && when < drain_floor_) {
    // A transaction body just scheduled a pending event below the release
    // floor: later-keyed transactions must wait for it (see
    // DrainTransactions).
    drain_floor_ = when;
  }
}

EventQueue::EventId ShardedEventQueue::Insert(size_t shard, Key key, StreamId exec,
                                              Callback fn) {
  NoteInsert(shard, key.when);
  Shard& sh = shards_[shard];
  // Tripwire for the window-cap proofs: an insert below the target
  // shard's executed position would run in its past and silently break
  // the shard-count-independent total order.
  assert(key.when >= sh.clock && "insert below target shard's clock");
  uint64_t local = sh.ledger.Append();
  EventId id = (static_cast<EventId>(shard) << kShardShift) | local;
  sh.heap.push(Event{key, id, exec, std::move(fn)});
  ++sh.live;
  return id;
}

EventQueue::EventId ShardedEventQueue::ScheduleAt(Cycles when, Callback fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  Cycles base = ctx != nullptr ? ctx->now : now_floor_;
  if (when < base) {
    when = base;
  }
  if (ctx != nullptr && ctx->sequenced) {
    // Children of a sequenced transaction reuse its (stream, seq) and are
    // ordered by minor index — byte-identical keys at any shard count.
    Key key{when, ctx->stream, ctx->seq, ++ctx->next_minor};
    return Insert(static_cast<size_t>(streams_[ctx->stream].shard), key, ctx->stream,
                  std::move(fn));
  }
  StreamId s = ctx != nullptr ? ctx->stream : main_stream_;
  Key key{when, s, streams_[s].next_seq++, 0};
  return Insert(static_cast<size_t>(streams_[s].shard), key, s, std::move(fn));
}

EventQueue::EventId ShardedEventQueue::ScheduleAtFrom(StreamId exec_stream, Cycles when,
                                                      Callback fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  Cycles base = ctx != nullptr ? ctx->now : now_floor_;
  if (when < base) {
    when = base;
  }
  Key key;
  if (ctx != nullptr && ctx->sequenced) {
    key = Key{when, ctx->stream, ctx->seq, ++ctx->next_minor};
  } else {
    StreamId ks = ctx != nullptr ? ctx->stream : main_stream_;
    key = Key{when, ks, streams_[ks].next_seq++, 0};
  }
  // The event lands on the *executing* stream's home shard: its callback
  // runs as that stream's action. Cross-shard inserts happen only at
  // serial points (transaction drains, single-shard windows).
  return Insert(static_cast<size_t>(streams_[exec_stream].shard), key, exec_stream,
                std::move(fn));
}

bool ShardedEventQueue::Cancel(EventId id) {
  size_t shard = static_cast<size_t>(id >> kShardShift);
  if (shard >= shards_.size()) {
    return false;
  }
  Shard& sh = shards_[shard];
  if (!sh.ledger.Mark(id & kLocalIdMask)) {
    return false;
  }
  if (sh.live > 0) {
    --sh.live;
  }
  return true;
}

bool ShardedEventQueue::TimerFirst(const Shard& sh, TimerKey* tk) const {
  if (sh.wheel == nullptr || !sh.wheel->PeekDue(tk)) {
    return false;
  }
  if (sh.heap.empty()) {
    return true;
  }
  const Key& hk = sh.heap.top().key;
  Key wk{tk->when, tk->stream, tk->seq, tk->minor};
  return wk < hk;
}

bool ShardedEventQueue::PeekShard(size_t s, Key* key) const {
  const Shard& sh = shards_[s];
  while (!sh.heap.empty() && sh.ledger.IsConsumed(sh.heap.top().id & kLocalIdMask)) {
    sh.heap.pop();
  }
  TimerKey tk;
  if (TimerFirst(sh, &tk)) {
    *key = Key{tk.when, tk.stream, tk.seq, tk.minor};
    return true;
  }
  if (sh.heap.empty()) {
    return false;
  }
  *key = sh.heap.top().key;
  return true;
}

bool ShardedEventQueue::GlobalPeek(size_t* shard, Key* key) const {
  bool found = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Key k;
    if (!PeekShard(s, &k)) {
      continue;
    }
    if (!found || k < *key) {
      found = true;
      *shard = s;
      *key = k;
    }
  }
  return found;
}

void ShardedEventQueue::ExecuteTop(size_t s) {
  Shard& sh = shards_[s];
  TimerKey tk;
  if (TimerFirst(sh, &tk)) {
    uint32_t exec_stream = 0;
    TimerWheel::Callback fn = sh.wheel->PopDue(&tk, &exec_stream);
    ++sh.fired;
    sh.clock = tk.when;
    MetricRecord(timer_series_, static_cast<uint32_t>(s), tk.when, -1);
    ExecContext saved = tls_exec;
    tls_exec = ExecContext{this, static_cast<StreamId>(exec_stream), tk.when, false, 0, 0};
    fn();
    tls_exec = saved;
    return;
  }
  Event ev = sh.heap.pop();
  sh.ledger.Mark(ev.id & kLocalIdMask);
  --sh.live;
  ++sh.fired;
  sh.clock = ev.key.when;
  ExecContext saved = tls_exec;
  tls_exec = ExecContext{this, ev.exec, ev.key.when, false, 0, 0};
  ev.fn();
  tls_exec = saved;
}

void ShardedEventQueue::RunShardWindow(size_t s) {
  Shard& sh = shards_[s];
  Key k;
  uint64_t fired_before = sh.fired;
  // window_cap can shrink while the loop runs (a posted send self-caps, an
  // inline cross-shard insert caps the running shard) — re-read every
  // iteration.
  while (PeekShard(s, &k) && k.when < sh.window_horizon && k.when < sh.window_cap) {
    ExecuteTop(s);
  }
  if (sh.fired != fired_before) {
    ++sh.windows_active;
  }
}

void ShardedEventQueue::RunTxn(Txn& txn) {
  ExecContext saved = tls_exec;
  tls_exec = ExecContext{this, txn.stream, txn.when, true, txn.seq, 0};
  txn.fn(txn.when);
  tls_exec = saved;
}

void ShardedEventQueue::DrainTransactions() {
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    if (!txns_.empty()) {
      if (txns_.size() > max_mailbox_depth_) {
        max_mailbox_depth_ = txns_.size();
      }
      held_txns_.insert(held_txns_.end(), std::make_move_iterator(txns_.begin()),
                        std::make_move_iterator(txns_.end()));
      txns_.clear();
      // Key order == the order the bodies run inline in a serial execution
      // (seqs are allocated in send order, monotonic per stream).
      std::stable_sort(held_txns_.begin(), held_txns_.end(), [](const Txn& a, const Txn& b) {
        if (a.when != b.when) return a.when < b.when;
        if (a.stream != b.stream) return a.stream < b.stream;
        return a.seq < b.seq;
      });
    }
  }
  if (held_txns_.empty()) {
    return;
  }
  // Release floor: a transaction at time w may run only once no shard has a
  // pending event with when <= w — such an event could still post an
  // earlier-keyed transaction, and the global order must match the serial
  // one. A conservative window executes everything below t_min + lookahead,
  // so its boundary always releases the whole buffer (legacy behavior);
  // only adaptive windows, whose shards stop at staggered points, hold
  // transactions back. The floor shrinks while bodies run: a released body
  // inserts future events (deliveries at >= w + lookahead) that newly
  // bound the transactions behind it (see Insert).
  Cycles floor = kNoEvent;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Key k;
    if (PeekShard(s, &k) && k.when < floor) {
      floor = k.when;
    }
  }
  drain_floor_ = floor;
  draining_ = true;
  size_t released = 0;
  while (released < held_txns_.size() && held_txns_[released].when < drain_floor_) {
    RunTxn(held_txns_[released]);
    ++released;
  }
  draining_ = false;
  txns_drained_ += released;
  if (released > 0) {
    held_txns_.erase(held_txns_.begin(),
                     held_txns_.begin() + static_cast<ptrdiff_t>(released));
  }
}

void ShardedEventQueue::PostSequenced(SequencedFn fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  StreamId stream = ctx != nullptr ? ctx->stream : main_stream_;
  Cycles when = ctx != nullptr ? ctx->now : now_floor_;
  // Exactly one sequence number per transaction, consumed at post time, so
  // the transaction's key does not depend on when the body runs.
  uint64_t seq = streams_[stream].next_seq++;
  if (in_parallel_window_ || inline_window_shard_ >= 0) {
    // Self-cap: the deposited body runs at a window boundary and may
    // insert back onto this shard at >= when + lookahead (the minimum
    // delivery latency), so this shard must not run past that point.
    // Other shards are already bounded by their horizons (<= when +
    // lookahead) in this window, and by the held-transaction cap
    // afterwards (see RunUntil). A no-op for the default conservative
    // horizon; only adaptive windows can be shrunk by it. The cap covers
    // the posting shard even when the frame's destination lives
    // elsewhere: consequences of the send (a reply, a timer the receiver
    // arms) can reach back here two hops later, and nothing else bounds
    // this shard until the delivery is actually inserted.
    int own = streams_[stream].shard;
    Cycles step = lookahead_ > 0 ? lookahead_ : 1;
    Cycles cap = when > kNoEvent - step ? kNoEvent : when + step;
    Shard& own_shard = shards_[static_cast<size_t>(own)];
    if (cap < own_shard.window_cap) {
      own_shard.window_cap = cap;
    }
    std::lock_guard<std::mutex> lock(txn_mu_);
    txns_.push_back(Txn{when, stream, seq, std::move(fn)});
    return;
  }
  Txn t{when, stream, seq, std::move(fn)};
  RunTxn(t);
}

bool ShardedEventQueue::Step() {
  DrainTransactions();
  size_t s;
  Key k;
  if (!GlobalPeek(&s, &k)) {
    return false;
  }
  ExecuteTop(s);
  now_floor_ = k.when;
  // Keep the stream-0 shard clock monotonic for now_ref() observers even
  // when the event ran elsewhere.
  if (shards_[0].clock < now_floor_) {
    shards_[0].clock = now_floor_;
  }
  return true;
}

void ShardedEventQueue::ComputeHorizons(const std::vector<Cycles>& earliest, Cycles lookahead,
                                        Cycles deadline, bool adaptive,
                                        std::vector<Cycles>* horizons) {
  Cycles step = lookahead > 0 ? lookahead : 1;
  size_t n = earliest.size();
  horizons->assign(n, 0);
  // Windows execute events with when < H, so H may reach deadline + 1.
  Cycles cap = deadline >= kNoEvent - 1 ? kNoEvent : deadline + 1;
  Cycles t_min = kNoEvent;
  for (Cycles e : earliest) {
    if (e < t_min) {
      t_min = e;
    }
  }
  if (t_min == kNoEvent) {
    return;  // all shards empty: no window to bound
  }
  if (!adaptive) {
    // Classic conservative window: every shard shares H = T + lookahead.
    Cycles h = t_min > kNoEvent - step ? kNoEvent : t_min + step;
    if (h > cap) {
      h = cap;
    }
    for (size_t i = 0; i < n; ++i) {
      (*horizons)[i] = h;
    }
    return;
  }
  // Adaptive: shard r may run until the earliest instant any *other*
  // shard's pending work could land a cross-shard effect on it (a send
  // posted at t delivers at >= t + lookahead). Empty shards are excluded —
  // they gain events only from running shards, which self-cap at insert or
  // post time (see Insert/PostSequenced). O(n^2) over <= 64 shards.
  for (size_t r = 0; r < n; ++r) {
    Cycles h = cap;
    for (size_t s = 0; s < n; ++s) {
      if (s == r || earliest[s] == kNoEvent) {
        continue;
      }
      Cycles hs = earliest[s] > kNoEvent - step ? kNoEvent : earliest[s] + step;
      if (hs < h) {
        h = hs;
      }
    }
    (*horizons)[r] = h;
  }
}

void ShardedEventQueue::RunUntil(Cycles deadline) {
  for (;;) {
    DrainTransactions();
    // One pass collects each shard's earliest pending time (compacting
    // cancelled heads as a side effect) and the global minimum.
    earliest_.assign(shards_.size(), kNoEvent);
    Cycles t_min = kNoEvent;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Key key;
      if (PeekShard(i, &key)) {
        earliest_[i] = key.when;
        if (key.when < t_min) {
          t_min = key.when;
        }
      }
    }
    if (t_min == kNoEvent || t_min > deadline) {
      break;
    }
    ++windows_run_;
    // Conservative window: shard r runs events with when < min(H_r, cap_r).
    // Non-adaptive, every H_r is T + lookahead: cross-stream effects posted
    // inside the window land at >= T + lookahead, so shards cannot miss
    // each other's messages. Adaptive H_r extends to the earliest instant
    // another shard's pending work could reach r; caps shrink at runtime
    // when this shard's own sends bound it (see DESIGN.md §6.8).
    ComputeHorizons(earliest_, lookahead_, deadline, adaptive_, &horizons_);
    if (!held_txns_.empty()) {
      // A held transaction at time w will, once released, insert events
      // at >= w + lookahead — and its consequences can propagate to any
      // shard from there — so no shard may run past w + lookahead until
      // it is released. (Conservative boundaries release every
      // transaction, so the buffer is only ever non-empty here under
      // adaptive horizons.) held_txns_ is sorted ascending: the oldest
      // transaction gives the binding cap.
      Cycles step = lookahead_ > 0 ? lookahead_ : 1;
      Cycles w = held_txns_.front().when;
      Cycles held_cap = w > kNoEvent - step ? kNoEvent : w + step;
      for (size_t i = 0; i < shards_.size(); ++i) {
        if (horizons_[i] > held_cap) {
          horizons_[i] = held_cap;
        }
      }
    }
    active_.clear();
    Cycles h_max = t_min;
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (earliest_[i] == kNoEvent || earliest_[i] >= horizons_[i]) {
        continue;
      }
      active_.push_back(i);
      Shard& sh = shards_[i];
      ++sh.windows_woken;
      sh.window_horizon = horizons_[i];
      sh.window_cap = kNoEvent;
      if (horizons_[i] > h_max) {
        h_max = horizons_[i];
      }
    }
    window_cycles_ += h_max - t_min;
    if (gang_ != nullptr && active_.size() > 1) {
      ++parallel_windows_;
      in_parallel_window_ = true;
      std::string error = gang_->Run(active_);
      in_parallel_window_ = false;
      if (!error.empty()) {
        throw std::runtime_error("sharded event queue worker failed: " + error);
      }
    } else {
      // At most one shard can be active here (multi-shard queues always
      // have a gang), so inline cross-shard inserts are safe and captured
      // by inline_window_shard_.
      for (size_t i : active_) {
        inline_window_shard_ = static_cast<int>(i);
        RunShardWindow(i);
        inline_window_shard_ = -1;
      }
    }
  }
  if (now_floor_ < deadline) {
    now_floor_ = deadline;
  }
  for (Shard& sh : shards_) {
    if (sh.clock < deadline) {
      sh.clock = deadline;
    }
  }
}

void ShardedEventQueue::RunToCompletion() {
  while (Step()) {
  }
}

bool ShardedEventQueue::PeekNext(Cycles* when) const {
  size_t s;
  Key k;
  if (!GlobalPeek(&s, &k)) {
    return false;
  }
  *when = k.when;
  return true;
}

bool ShardedEventQueue::empty() const { return pending() == 0; }

size_t ShardedEventQueue::pending() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.live;
    if (sh.wheel != nullptr) {
      n += sh.wheel->armed();
    }
  }
  return n;
}

EventQueue::TimerId ShardedEventQueue::ScheduleTimerAt(Cycles when, Callback fn) {
  if (!use_timer_wheel_) {
    return ScheduleAt(when, std::move(fn)) | kTimerHeapBit;
  }
  // Key assignment is byte-identical to ScheduleAt: one seq (or minor) is
  // consumed per call in the same order, so the wheel path and the heap
  // path — and any shard count — produce the same total order.
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  Cycles base = ctx != nullptr ? ctx->now : now_floor_;
  if (when < base) {
    when = base;
  }
  Key key;
  StreamId exec;
  if (ctx != nullptr && ctx->sequenced) {
    key = Key{when, ctx->stream, ctx->seq, ++ctx->next_minor};
    exec = ctx->stream;
  } else {
    exec = ctx != nullptr ? ctx->stream : main_stream_;
    key = Key{when, exec, streams_[exec].next_seq++, 0};
  }
  size_t shard = static_cast<size_t>(streams_[exec].shard);
  NoteInsert(shard, key.when);
  Shard& sh = shards_[shard];
  assert(key.when >= sh.clock && "timer armed below target shard's clock");
  if (sh.wheel == nullptr) {
    sh.wheel = std::make_unique<TimerWheel>();
  }
  TimerRef ref = sh.wheel->Arm(TimerKey{key.when, key.stream, key.seq, key.minor},
                               static_cast<uint32_t>(exec), std::move(fn));
  // Occupancy +1 at the arm time. `base` is the caller's event time (or
  // the serial-point floor) — partition-independent, so the merged series
  // is identical at any shard count.
  MetricRecord(timer_series_, static_cast<uint32_t>(shard), base, 1);
  return (static_cast<TimerId>(shard) << kShardShift) |
         (static_cast<TimerId>(ref.index) << 32) | ref.gen;
}

bool ShardedEventQueue::CancelTimer(TimerId id) {
  if ((id & kTimerHeapBit) != 0) {
    return Cancel(id & ~kTimerHeapBit);
  }
  size_t shard = static_cast<size_t>(id >> kShardShift);
  if (shard >= shards_.size()) {
    return false;
  }
  Shard& sh = shards_[shard];
  if (sh.wheel == nullptr) {
    return false;
  }
  const bool cancelled =
      sh.wheel->Cancel(TimerRef{static_cast<uint32_t>((id >> 32) & 0xffffff),
                                static_cast<uint32_t>(id)});
  if (cancelled) {
    ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
    MetricRecord(timer_series_, static_cast<uint32_t>(shard),
                 ctx != nullptr ? ctx->now : now_floor_, -1);
  }
  return cancelled;
}

void ShardedEventQueue::AttachMetrics(MetricsRegistry* m) {
  timer_series_ = m == nullptr
                      ? nullptr
                      : ESCORT_METRIC_SHARDED(m, "sim.timers_armed",
                                              "timer-wheel resident timers",
                                              static_cast<uint32_t>(shards_.size()));
}

EventQueue::TimerWheelStats ShardedEventQueue::timer_stats() const {
  TimerWheelStats st;
  for (const Shard& sh : shards_) {
    if (sh.wheel != nullptr) {
      st.armed += sh.wheel->armed();
      st.high_water += sh.wheel->high_water();
      st.capacity += sh.wheel->capacity();
      st.bytes_reserved += sh.wheel->bytes_reserved();
    }
  }
  return st;
}

ShardProfile ShardedEventQueue::Profile() const {
  ShardProfile p;
  p.shards = shard_count();
  p.lookahead = lookahead_;
  p.windows_run = windows_run_;
  p.parallel_windows = parallel_windows_;
  p.window_cycles = window_cycles_;
  p.txns_drained = txns_drained_;
  p.max_mailbox_depth = max_mailbox_depth_;
  p.per_shard.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    ShardProfile::PerShard entry;
    entry.events_fired = sh.fired;
    entry.windows_woken = sh.windows_woken;
    entry.windows_active = sh.windows_active;
    p.per_shard.push_back(entry);
  }
  return p;
}

uint64_t ShardedEventQueue::fired_count() const {
  uint64_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.fired;
  }
  return n;
}

size_t ShardedEventQueue::consumed_slot_count() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.ledger.slot_count();
  }
  return n;
}

}  // namespace escort
