#include "src/sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/sim/parallel.h"

namespace escort {

// ---- serial queue ----------------------------------------------------------

EventQueue::EventId EventQueue::ScheduleAt(Cycles when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = ledger_.Append();
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (!ledger_.Mark(id)) {
    return false;
  }
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && ledger_.IsConsumed(heap_.top().id)) {
    heap_.pop();
  }
}

bool EventQueue::Step() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  // Move the callback out before popping so the event can reschedule itself.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  ledger_.Mark(ev.id);  // mark consumed so Cancel() on a fired id fails
  --live_count_;
  now_ = ev.when;
  ++fired_count_;
  ev.fn();
  return true;
}

void EventQueue::RunUntil(Cycles deadline) {
  for (;;) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventQueue::RunToCompletion() {
  while (Step()) {
  }
}

bool EventQueue::PeekNext(Cycles* when) const {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.top().when;
  return true;
}

// ---- sharded queue ---------------------------------------------------------

namespace {

// Execution context of the event (or sequenced transaction) currently
// running on this thread. Owned per worker; `owner` distinguishes nested
// queues (a test may drive several). Allowed in src/sim/ by EL010: this is
// part of the parallel execution machinery, invisible to simulation code.
struct ExecContext {
  const ShardedEventQueue* owner = nullptr;
  EventQueue::StreamId stream = 0;  // context whose code is running
  Cycles now = 0;                   // that context's local clock
  bool sequenced = false;           // inside a PostSequenced body
  uint64_t seq = 0;                 // the transaction's sequence number
  uint32_t next_minor = 0;          // minor index for the txn's children
};

thread_local ExecContext tls_exec;

constexpr uint64_t kLocalIdMask = (uint64_t{1} << 56) - 1;

}  // namespace

ShardedEventQueue::ShardedEventQueue(int shards, Cycles lookahead) : lookahead_(lookahead) {
  if (shards < 1) {
    shards = 1;
  }
  if (shards > 64) {
    shards = 64;
  }
  shards_.resize(static_cast<size_t>(shards));
  streams_.push_back(Stream{0, 0});  // stream 0: server / kernel / main context
  if (shards > 1) {
    pool_ = std::make_unique<ThreadPool>(shards);
  }
}

ShardedEventQueue::~ShardedEventQueue() = default;

Cycles ShardedEventQueue::now() const {
  if (tls_exec.owner == this) {
    return tls_exec.now;
  }
  return now_floor_;
}

const Cycles& ShardedEventQueue::now_ref() const { return shards_[0].clock; }

EventQueue::StreamId ShardedEventQueue::NewStream(int shard) {
  // Streams may only be created at serial points (testbed construction).
  StreamId id = static_cast<StreamId>(streams_.size());
  int home = shard % static_cast<int>(shards_.size());
  if (home < 0) {
    home = 0;
  }
  streams_.push_back(Stream{home, 0});
  return id;
}

EventQueue::StreamId ShardedEventQueue::current_stream() const {
  if (tls_exec.owner == this) {
    return tls_exec.stream;
  }
  return main_stream_;
}

EventQueue::StreamId ShardedEventQueue::SwapCurrentStream(StreamId stream) {
  StreamId prev = main_stream_;
  main_stream_ = stream;
  return prev;
}

EventQueue::EventId ShardedEventQueue::Insert(size_t shard, Key key, StreamId exec,
                                              Callback fn) {
  Shard& sh = shards_[shard];
  uint64_t local = sh.ledger.Append();
  EventId id = (static_cast<EventId>(shard) << kShardShift) | local;
  sh.heap.push(Event{key, id, exec, std::move(fn)});
  ++sh.live;
  return id;
}

EventQueue::EventId ShardedEventQueue::ScheduleAt(Cycles when, Callback fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  Cycles base = ctx != nullptr ? ctx->now : now_floor_;
  if (when < base) {
    when = base;
  }
  if (ctx != nullptr && ctx->sequenced) {
    // Children of a sequenced transaction reuse its (stream, seq) and are
    // ordered by minor index — byte-identical keys at any shard count.
    Key key{when, ctx->stream, ctx->seq, ++ctx->next_minor};
    return Insert(static_cast<size_t>(streams_[ctx->stream].shard), key, ctx->stream,
                  std::move(fn));
  }
  StreamId s = ctx != nullptr ? ctx->stream : main_stream_;
  Key key{when, s, streams_[s].next_seq++, 0};
  return Insert(static_cast<size_t>(streams_[s].shard), key, s, std::move(fn));
}

EventQueue::EventId ShardedEventQueue::ScheduleAtFrom(StreamId exec_stream, Cycles when,
                                                      Callback fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  Cycles base = ctx != nullptr ? ctx->now : now_floor_;
  if (when < base) {
    when = base;
  }
  Key key;
  if (ctx != nullptr && ctx->sequenced) {
    key = Key{when, ctx->stream, ctx->seq, ++ctx->next_minor};
  } else {
    StreamId ks = ctx != nullptr ? ctx->stream : main_stream_;
    key = Key{when, ks, streams_[ks].next_seq++, 0};
  }
  // The event lands on the *executing* stream's home shard: its callback
  // runs as that stream's action. Cross-shard inserts happen only at
  // serial points (transaction drains, single-shard windows).
  return Insert(static_cast<size_t>(streams_[exec_stream].shard), key, exec_stream,
                std::move(fn));
}

bool ShardedEventQueue::Cancel(EventId id) {
  size_t shard = static_cast<size_t>(id >> kShardShift);
  if (shard >= shards_.size()) {
    return false;
  }
  Shard& sh = shards_[shard];
  if (!sh.ledger.Mark(id & kLocalIdMask)) {
    return false;
  }
  if (sh.live > 0) {
    --sh.live;
  }
  return true;
}

bool ShardedEventQueue::PeekShard(size_t s, Key* key) const {
  const Shard& sh = shards_[s];
  while (!sh.heap.empty() && sh.ledger.IsConsumed(sh.heap.top().id & kLocalIdMask)) {
    sh.heap.pop();
  }
  if (sh.heap.empty()) {
    return false;
  }
  *key = sh.heap.top().key;
  return true;
}

bool ShardedEventQueue::GlobalPeek(size_t* shard, Key* key) const {
  bool found = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Key k;
    if (!PeekShard(s, &k)) {
      continue;
    }
    if (!found || k < *key) {
      found = true;
      *shard = s;
      *key = k;
    }
  }
  return found;
}

void ShardedEventQueue::ExecuteTop(size_t s) {
  Shard& sh = shards_[s];
  Event ev = std::move(const_cast<Event&>(sh.heap.top()));
  sh.heap.pop();
  sh.ledger.Mark(ev.id & kLocalIdMask);
  --sh.live;
  ++sh.fired;
  sh.clock = ev.key.when;
  ExecContext saved = tls_exec;
  tls_exec = ExecContext{this, ev.exec, ev.key.when, false, 0, 0};
  ev.fn();
  tls_exec = saved;
}

void ShardedEventQueue::RunShardWindow(size_t s, Cycles horizon) {
  Key k;
  while (PeekShard(s, &k) && k.when < horizon) {
    ExecuteTop(s);
  }
}

void ShardedEventQueue::RunTxn(Txn& txn) {
  ExecContext saved = tls_exec;
  tls_exec = ExecContext{this, txn.stream, txn.when, true, txn.seq, 0};
  txn.fn(txn.when);
  tls_exec = saved;
}

void ShardedEventQueue::DrainTransactions() {
  while (!txns_.empty()) {
    std::vector<Txn> batch;
    batch.swap(txns_);
    txns_drained_ += batch.size();
    if (batch.size() > max_mailbox_depth_) {
      max_mailbox_depth_ = batch.size();
    }
    // Key order == the order the bodies run inline in a serial execution
    // (seqs are allocated in send order, monotonic per stream).
    std::stable_sort(batch.begin(), batch.end(), [](const Txn& a, const Txn& b) {
      if (a.when != b.when) return a.when < b.when;
      if (a.stream != b.stream) return a.stream < b.stream;
      return a.seq < b.seq;
    });
    for (Txn& t : batch) {
      RunTxn(t);
    }
  }
}

void ShardedEventQueue::PostSequenced(SequencedFn fn) {
  ExecContext* ctx = (tls_exec.owner == this) ? &tls_exec : nullptr;
  StreamId stream = ctx != nullptr ? ctx->stream : main_stream_;
  Cycles when = ctx != nullptr ? ctx->now : now_floor_;
  // Exactly one sequence number per transaction, consumed at post time, so
  // the transaction's key does not depend on when the body runs.
  uint64_t seq = streams_[stream].next_seq++;
  if (in_parallel_window_) {
    std::lock_guard<std::mutex> lock(txn_mu_);
    txns_.push_back(Txn{when, stream, seq, std::move(fn)});
    return;
  }
  Txn t{when, stream, seq, std::move(fn)};
  RunTxn(t);
}

bool ShardedEventQueue::Step() {
  DrainTransactions();
  size_t s;
  Key k;
  if (!GlobalPeek(&s, &k)) {
    return false;
  }
  ExecuteTop(s);
  now_floor_ = k.when;
  // Keep the stream-0 shard clock monotonic for now_ref() observers even
  // when the event ran elsewhere.
  if (shards_[0].clock < now_floor_) {
    shards_[0].clock = now_floor_;
  }
  return true;
}

void ShardedEventQueue::RunUntil(Cycles deadline) {
  constexpr Cycles kMaxCycles = ~static_cast<Cycles>(0);
  std::vector<size_t> active;
  for (;;) {
    DrainTransactions();
    size_t s;
    Key k;
    if (!GlobalPeek(&s, &k) || k.when > deadline) {
      break;
    }
    ++windows_run_;
    // Conservative window [T, H): T is the global minimum event time, H is
    // T + lookahead (capped at the deadline). Cross-stream effects posted
    // inside the window land at >= T + lookahead >= H, so shards cannot
    // miss each other's messages.
    Cycles step = lookahead_ > 0 ? lookahead_ : 1;
    Cycles horizon = k.when > kMaxCycles - step ? kMaxCycles : k.when + step;
    if (deadline != kMaxCycles && horizon > deadline + 1) {
      horizon = deadline + 1;
    }
    window_cycles_ += horizon - k.when;
    active.clear();
    for (size_t i = 0; i < shards_.size(); ++i) {
      Key key;
      if (PeekShard(i, &key) && key.when < horizon) {
        active.push_back(i);
        ++shards_[i].windows_active;
      }
    }
    if (pool_ != nullptr && active.size() > 1) {
      ++parallel_windows_;
      in_parallel_window_ = true;
      std::vector<JobOutcome> outcomes =
          pool_->RunIndexed(active.size(), [this, &active, horizon](size_t i) {
            RunShardWindow(active[i], horizon);
          });
      in_parallel_window_ = false;
      for (const JobOutcome& o : outcomes) {
        if (!o.ok) {
          throw std::runtime_error("sharded event queue worker failed: " + o.error);
        }
      }
    } else {
      for (size_t i : active) {
        RunShardWindow(i, horizon);
      }
    }
  }
  if (now_floor_ < deadline) {
    now_floor_ = deadline;
  }
  for (Shard& sh : shards_) {
    if (sh.clock < deadline) {
      sh.clock = deadline;
    }
  }
}

void ShardedEventQueue::RunToCompletion() {
  while (Step()) {
  }
}

bool ShardedEventQueue::PeekNext(Cycles* when) const {
  size_t s;
  Key k;
  if (!GlobalPeek(&s, &k)) {
    return false;
  }
  *when = k.when;
  return true;
}

bool ShardedEventQueue::empty() const { return pending() == 0; }

size_t ShardedEventQueue::pending() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.live;
  }
  return n;
}

ShardProfile ShardedEventQueue::Profile() const {
  ShardProfile p;
  p.shards = shard_count();
  p.lookahead = lookahead_;
  p.windows_run = windows_run_;
  p.parallel_windows = parallel_windows_;
  p.window_cycles = window_cycles_;
  p.txns_drained = txns_drained_;
  p.max_mailbox_depth = max_mailbox_depth_;
  p.per_shard.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    ShardProfile::PerShard entry;
    entry.events_fired = sh.fired;
    entry.windows_active = sh.windows_active;
    p.per_shard.push_back(entry);
  }
  return p;
}

uint64_t ShardedEventQueue::fired_count() const {
  uint64_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.fired;
  }
  return n;
}

size_t ShardedEventQueue::consumed_slot_count() const {
  size_t n = 0;
  for (const Shard& sh : shards_) {
    n += sh.ledger.slot_count();
  }
  return n;
}

}  // namespace escort
