#include "src/sim/event_queue.h"

#include <utility>

namespace escort {

EventQueue::EventId EventQueue::ScheduleAt(Cycles when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  cancelled_.push_back(false);
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id >= cancelled_.size() || cancelled_[id]) {
    return false;
  }
  cancelled_[id] = true;
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) {
    heap_.pop();
  }
}

bool EventQueue::Step() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  // Move the callback out before popping so the event can reschedule itself.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  cancelled_[ev.id] = true;  // mark consumed so Cancel() on a fired id fails
  --live_count_;
  now_ = ev.when;
  ++fired_count_;
  ev.fn();
  return true;
}

void EventQueue::RunUntil(Cycles deadline) {
  for (;;) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void EventQueue::RunToCompletion() {
  while (Step()) {
  }
}

bool EventQueue::PeekNext(Cycles* when) const {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.top().when;
  return true;
}

}  // namespace escort
