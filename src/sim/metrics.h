// Deterministic metrics plane: counters, gauges, log2-bucketed histograms
// and per-shard time-binned series, sampled into sim-time series and
// exported as a byte-stable JSON document.
//
// Determinism contract (same as the tracer, src/sim/trace.h):
//
//  * Serial-domain metrics (counters, gauges, histograms) may only be
//    mutated from stream 0 or at serial points. All server-side code runs
//    on stream 0, so kernel/TCP/policy/detector instrumentation is safe by
//    construction. `Sample()` runs on stream 0 at fixed sim times, so the
//    sampled series are identical at any --jobs/--shards setting.
//  * Shard-domain metrics use `ShardedSeries`: each shard appends
//    (time-bin, delta) pairs to its own lane with no synchronization.
//    Lanes are merged at a serial point by summing deltas per bin and
//    prefix-summing into a cumulative series. Bin boundaries are fixed sim
//    times and every delta lands in the bin of its (partition-independent)
//    event time, so the merged series is identical at any shard count.
//  * Serialization iterates std::map (sorted by metric name) — the
//    document does not depend on registration order, worker count, or
//    pointer values. The same `--metrics PATH` document is byte-identical
//    across --jobs/--shards (CI diffs it).
//
// Zero cost when disabled: instrumented components hold raw metric
// pointers that stay null when no registry is attached; every hot-path
// site is a single null test (see MetricAdd/MetricObserve helpers).
//
// Registration goes through the ESCORT_METRIC_* macros so escort_lint
// EL015 can flag ad-hoc registration (or static counters) elsewhere.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/types.h"

namespace escort {

struct MetricsConfig {
  // Standalone JSON document path (--metrics PATH). Empty: no standalone
  // file; the registry still feeds the bench-JSON `incidents` block.
  std::string path;
  // Sampling period for counter/gauge series and the health monitor.
  Cycles sample_interval = CyclesFromMillis(5.0);
  // Histogram bucket count: bucket 0 holds value 0, bucket k>0 holds
  // [2^(k-1), 2^k). 40 buckets cover ~1.8 hours of cycle-valued samples.
  uint32_t histogram_buckets = 40;
};

// Monotonic counter. ESCORT_SERIAL_ONLY: mutate from stream 0 or at
// serial points.
class MetricCounter {
 public:
  void Add(uint64_t delta) { value_ += delta; }
  void Increment() { ++value_; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Signed instantaneous value. ESCORT_SERIAL_ONLY.
class MetricGauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log2-bucketed histogram of non-negative integer samples (cycles, us,
// bytes). ESCORT_SERIAL_ONLY.
class MetricHistogram {
 public:
  explicit MetricHistogram(uint32_t buckets);

  // Bucket index for a value: 0 for 0, else 1 + floor(log2(v)), clamped
  // to the last bucket.
  static uint32_t BucketOf(uint64_t v, uint32_t buckets);
  // Inclusive upper bound of a bucket (0 for bucket 0, 2^k - 1 for k>0).
  static uint64_t BucketUpperBound(uint32_t bucket);

  void Observe(uint64_t v);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  // Upper bound of the bucket holding the p-quantile (p in [0,1]);
  // 0 when empty. Deterministic: pure function of the bucket vector.
  uint64_t Percentile(double p) const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
};

// Per-shard time-binned delta accumulator for quantities mutated inside
// shard windows (timer-wheel occupancy). ESCORT_SHARD_SAFE: lane `i` may
// only be touched by the shard that owns it; `Merged()` only at serial
// points.
class ShardedSeries {
 public:
  ShardedSeries(uint32_t lanes, Cycles bin_interval);

  // Records `delta` at sim time `when` into `lane`. Appends are
  // shard-local; consecutive records in the same bin coalesce.
  void Record(uint32_t lane, Cycles when, int64_t delta);

  // Merges all lanes into a cumulative series [(bin_start_cycles, value)],
  // one entry per bin with any activity. ESCORT_SERIAL_ONLY.
  std::vector<std::pair<Cycles, int64_t>> Merged() const;

  uint32_t lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  Cycles bin_interval() const { return interval_; }

 private:
  struct Lane {
    // (bin index, summed delta), bin indices non-decreasing per lane.
    std::vector<std::pair<uint64_t, int64_t>> bins;
  };

  std::vector<Lane> lanes_;
  Cycles interval_;
};

// Registry of named metrics for one experiment cell. Instance-based (no
// global state); the kernel, event queue and server modules hold a raw
// pointer that is null when metrics are disabled.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsConfig config = MetricsConfig{});

  const MetricsConfig& config() const { return config_; }

  // Get-or-create by name. Returned pointers are stable for the registry's
  // lifetime. ESCORT_SERIAL_ONLY. Call through the ESCORT_METRIC_* macros
  // (escort_lint EL015).
  MetricCounter* RegisterCounter(const std::string& name, const char* help);
  MetricGauge* RegisterGauge(const std::string& name, const char* help);
  MetricHistogram* RegisterHistogram(const std::string& name, const char* help);
  ShardedSeries* RegisterShardedSeries(const std::string& name, const char* help,
                                       uint32_t lanes);

  // Lookup without creating (null when absent).
  const MetricCounter* FindCounter(const std::string& name) const;
  const MetricGauge* FindGauge(const std::string& name) const;
  const MetricHistogram* FindHistogram(const std::string& name) const;

  // Appends one series point per counter/gauge (coalescing repeats of the
  // same value). Called from the stream-0 sampler at fixed sim times.
  // ESCORT_SERIAL_ONLY.
  void Sample(Cycles now);

  size_t counter_count() const { return counters_.size(); }
  size_t gauge_count() const { return gauges_.size(); }
  size_t histogram_count() const { return histograms_.size(); }
  size_t sharded_count() const { return sharded_.size(); }

  // Byte-stable JSON fragment for one sweep cell. ESCORT_SERIAL_ONLY.
  std::string SerializeCell(const std::string& cell_id) const;

  // Wraps per-cell fragments (grid order) into the pinned document.
  static std::string WrapDocument(const std::vector<std::string>& fragments);

  // Writes `json` to `path` ("wb"); false on I/O error.
  static bool WriteFile(const std::string& path, const std::string& json);

 private:
  struct SeriesPoint {
    Cycles ts = 0;
    int64_t value = 0;
  };
  struct CounterEntry {
    std::string help;
    MetricCounter metric;
    std::vector<SeriesPoint> series;
  };
  struct GaugeEntry {
    std::string help;
    MetricGauge metric;
    std::vector<SeriesPoint> series;
  };
  struct HistogramEntry {
    std::string help;
    MetricHistogram metric;
    explicit HistogramEntry(uint32_t buckets) : metric(buckets) {}
  };
  struct ShardedEntry {
    std::string help;
    ShardedSeries series;
    ShardedEntry(uint32_t lanes, Cycles interval) : series(lanes, interval) {}
  };

  const MetricsConfig config_;
  // std::map: sorted iteration makes serialization independent of
  // registration order (EL004-friendly, byte-stable).
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
  std::map<std::string, ShardedEntry> sharded_;
};

// Null-safe hot-path helpers: one pointer test when metrics are disabled.
inline void MetricAdd(MetricCounter* c, uint64_t delta = 1) {
  if (c != nullptr) c->Add(delta);
}
inline void MetricAdd(MetricGauge* g, int64_t delta) {
  if (g != nullptr) g->Add(delta);
}
inline void MetricSet(MetricGauge* g, int64_t v) {
  if (g != nullptr) g->Set(v);
}
inline void MetricObserve(MetricHistogram* h, uint64_t v) {
  if (h != nullptr) h->Observe(v);
}
inline void MetricRecord(ShardedSeries* s, uint32_t lane, Cycles when, int64_t delta) {
  if (s != nullptr) s->Record(lane, when, delta);
}

// EL015: all metric registration goes through these macros so the linter
// can spot ad-hoc registration calls and static counters elsewhere.
#define ESCORT_METRIC_COUNTER(registry, name, help) \
  ((registry)->RegisterCounter((name), (help)))
#define ESCORT_METRIC_GAUGE(registry, name, help) \
  ((registry)->RegisterGauge((name), (help)))
#define ESCORT_METRIC_HISTOGRAM(registry, name, help) \
  ((registry)->RegisterHistogram((name), (help)))
#define ESCORT_METRIC_SHARDED(registry, name, help, lanes) \
  ((registry)->RegisterShardedSeries((name), (help), (lanes)))

}  // namespace escort

#endif  // SRC_SIM_METRICS_H_
