// Deterministic pseudo-random number generator (xoshiro256**).
//
// All stochastic choices in the simulation (client think times, attacker
// jitter) draw from explicitly seeded Rng instances so experiments are
// reproducible bit-for-bit.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace escort {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Exponentially distributed with the given mean (for Poisson arrivals).
  double NextExponential(double mean);

 private:
  uint64_t s_[4];
};

}  // namespace escort

#endif  // SRC_SIM_RNG_H_
