#include "src/sim/trace.h"

#include <cinttypes>
#include <cstdio>

namespace escort {

namespace {

// The header block shared by full traces and flight dumps. ts values are
// sim-cycles; Perfetto displays them as microseconds, which at 300 MHz
// reads as "cycles / 1e6" on the ruler — close enough for navigation,
// and exact values are in the event itself.
void AppendDocumentHead(std::string* out) {
  *out += "{\n";
  *out += "\"displayTimeUnit\": \"ms\",\n";
  *out += "\"otherData\": {\"clock\": \"sim-cycles\", \"cpu_hz\": ";
  *out += Tracer::Num(kCpuHz);
  *out += "},\n";
}

void AppendArgs(std::string* out, const Tracer::Args& args) {
  *out += "\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) {
      *out += ",";
    }
    first = false;
    *out += Tracer::Str(key);
    *out += ":";
    *out += value;
  }
  *out += "}";
}

void AppendMetadata(std::string* out, uint32_t pid, uint32_t tid, const char* what,
                    const std::string& name) {
  *out += "{\"name\":\"";
  *out += what;
  *out += "\",\"ph\":\"M\",\"ts\":0,\"pid\":";
  *out += Tracer::Num(pid);
  *out += ",\"tid\":";
  *out += Tracer::Num(tid);
  *out += ",";
  AppendArgs(out, {{"name", Tracer::Str(name)}});
  *out += "}";
}

}  // namespace

std::string OwnerTrack(uint64_t owner_id, const std::string& owner_name) {
  return "owner " + std::to_string(owner_id) + " (" + owner_name + ")";
}

Tracer::Tracer(TraceConfig config) : config_(std::move(config)) {}

std::string Tracer::Str(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Tracer::Num(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

uint32_t Tracer::TrackId(const std::string& track) {
  auto it = track_ids_.find(track);
  if (it != track_ids_.end()) {
    return it->second;
  }
  track_names_.push_back(track);
  uint32_t tid = static_cast<uint32_t>(track_names_.size());  // tids from 1
  track_ids_.emplace(track, tid);
  return tid;
}

void Tracer::Push(TraceEvent ev) {
  if (config_.flight_capacity > 0) {
    if (flight_.size() >= config_.flight_capacity) {
      flight_.pop_front();
    }
    flight_.push_back(ev);
  }
  events_.push_back(std::move(ev));
}

void Tracer::BeginSpan(Cycles ts, const std::string& track, const std::string& name,
                       const char* category, Args args) {
  uint32_t tid = TrackId(track);
  open_spans_[tid] += 1;
  Push(TraceEvent{'B', ts, tid, category, name, std::move(args)});
}

void Tracer::EndSpan(Cycles ts, const std::string& track) {
  uint32_t tid = TrackId(track);
  auto it = open_spans_.find(tid);
  if (it == open_spans_.end() || it->second == 0) {
    return;  // span began before tracing attached; keep the output balanced
  }
  it->second -= 1;
  Push(TraceEvent{'E', ts, tid, "", "", {}});
}

void Tracer::Instant(Cycles ts, const std::string& track, const std::string& name,
                     const char* category, Args args) {
  Push(TraceEvent{'I', ts, TrackId(track), category, name, std::move(args)});
}

void Tracer::Counter(Cycles ts, const std::string& name, Args series) {
  Push(TraceEvent{'C', ts, 0, "counter", name, std::move(series)});
}

void Tracer::Finalize(Cycles ts) {
  // Close inner spans before outer ones? Depth per track suffices: emit
  // one E per open level, per track in tid order (deterministic).
  for (auto& [tid, depth] : open_spans_) {
    while (depth > 0) {
      depth -= 1;
      Push(TraceEvent{'E', ts, tid, "", "", {}});
    }
  }
}

void Tracer::AppendEvent(std::string* out, const TraceEvent& ev, uint32_t pid) {
  *out += "{\"ph\":\"";
  *out += ev.ph;
  *out += "\",\"ts\":";
  *out += Num(ev.ts);
  *out += ",\"pid\":";
  *out += Num(pid);
  *out += ",\"tid\":";
  *out += Num(ev.tid);
  if (ev.ph != 'E') {
    *out += ",\"cat\":";
    *out += Str(ev.category);
    *out += ",\"name\":";
    *out += Str(ev.name);
    *out += ",";
    AppendArgs(out, ev.args);
  }
  *out += "}";
}

std::string Tracer::SerializeEvents(uint32_t pid, const std::string& process_name) const {
  std::string out;
  AppendMetadata(&out, pid, 0, "process_name", process_name);
  for (size_t i = 0; i < track_names_.size(); ++i) {
    out += ",\n";
    AppendMetadata(&out, pid, static_cast<uint32_t>(i + 1), "thread_name", track_names_[i]);
  }
  for (const TraceEvent& ev : events_) {
    out += ",\n";
    AppendEvent(&out, ev, pid);
  }
  return out;
}

std::string Tracer::WrapDocument(const std::vector<std::string>& fragments) {
  std::string out;
  AppendDocumentHead(&out);
  out += "\"traceEvents\": [\n";
  bool first = true;
  for (const std::string& frag : fragments) {
    if (frag.empty()) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += frag;
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::SerializeStandalone() const {
  return WrapDocument({SerializeEvents(0, "escort")});
}

bool Tracer::WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int rc = std::fclose(f);
  return written == content.size() && rc == 0;
}

bool Tracer::WriteStandalone() const {
  return WriteFile(config_.path, SerializeStandalone());
}

void Tracer::DumpFlight(const std::string& reason, Cycles ts) {
  std::string out;
  AppendDocumentHead(&out);
  out += "\"flight\": {\"reason\": ";
  out += Str(reason);
  out += ", \"ts\": ";
  out += Num(ts);
  out += ", \"depth\": ";
  out += Num(flight_.size());
  out += "},\n";
  out += "\"traceEvents\": [\n";
  AppendMetadata(&out, 0, 0, "process_name", "escort flight recorder");
  for (size_t i = 0; i < track_names_.size(); ++i) {
    out += ",\n";
    AppendMetadata(&out, 0, static_cast<uint32_t>(i + 1), "thread_name", track_names_[i]);
  }
  for (const TraceEvent& ev : flight_) {
    out += ",\n";
    AppendEvent(&out, ev, 0);
  }
  // Flight dumps may truncate a span's B while keeping its E (ring
  // eviction), so mark the document as a partial window.
  out += "\n],\n\"partial\": true}\n";

  ++flight_dumps_;
  last_flight_dump_ = std::move(out);
  WriteFile(config_.ResolvedFlightPath(), last_flight_dump_);
}

void Tracer::Diag(const std::string& text) {
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

}  // namespace escort
