#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace escort {

TimerWheel::TimerWheel() {
  for (Level& lv : levels_) {
    std::fill(std::begin(lv.heads), std::end(lv.heads), kNil);
    std::fill(std::begin(lv.occupied), std::end(lv.occupied), uint64_t{0});
  }
}

TimerWheel::~TimerWheel() = default;

size_t TimerWheel::entry_bytes() { return sizeof(Entry); }

size_t TimerWheel::bytes_reserved() const {
  return entries_.capacity() * sizeof(Entry) + due_.capacity() * sizeof(int32_t) +
         sizeof(levels_);
}

int32_t TimerWheel::AllocEntry() {
  if (free_head_ != kNil) {
    int32_t idx = free_head_;
    free_head_ = entries_[static_cast<size_t>(idx)].next;
    entries_[static_cast<size_t>(idx)].next = kNil;
    return idx;
  }
  // TimerId packs the index into 24 bits (see EventQueue::ScheduleTimerAt).
  assert(entries_.size() < (size_t{1} << 24) && "timer wheel entry index overflow");
  int32_t idx = static_cast<int32_t>(entries_.size());
  entries_.emplace_back();
  return idx;
}

void TimerWheel::FreeEntry(int32_t idx) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  e.fn = nullptr;
  ++e.gen;  // every outstanding TimerRef to this incarnation goes stale
  e.state = State::kFree;
  e.alive = false;
  e.prev = kNil;
  e.level = static_cast<int16_t>(kNil);
  e.slot = static_cast<int16_t>(kNil);
  e.next = free_head_;
  free_head_ = idx;
}

void TimerWheel::Place(int32_t idx) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  uint64_t t = TickOf(e.key.when);
  assert(t >= cursor_tick_ && "timer filed behind the wheel cursor");
  // Cursor-relative placement: the lowest level whose rotation (shared
  // high digits with the cursor) still covers the tick. Ticks are 48 bits
  // (64 - kTickBits), so 6 levels x 8 bits always suffice.
  uint64_t diff = t ^ cursor_tick_;
  int level = 0;
  if (diff != 0) {
    int msb = 63 - std::countl_zero(diff);
    level = msb / kSlotBits;
    if (level >= kLevels) {
      level = kLevels - 1;
    }
  }
  size_t slot = (t >> (level * kSlotBits)) & (kSlots - 1);
  Level& lv = levels_[level];
  e.level = static_cast<int16_t>(level);
  e.slot = static_cast<int16_t>(slot);
  e.prev = kNil;
  e.next = lv.heads[slot];
  if (e.next != kNil) {
    entries_[static_cast<size_t>(e.next)].prev = idx;
  }
  lv.heads[slot] = idx;
  lv.occupied[slot >> 6] |= uint64_t{1} << (slot & 63);
  e.state = State::kInSlot;
}

void TimerWheel::Unlink(int32_t idx) {
  Entry& e = entries_[static_cast<size_t>(idx)];
  Level& lv = levels_[e.level];
  size_t slot = static_cast<size_t>(e.slot);
  if (e.prev != kNil) {
    entries_[static_cast<size_t>(e.prev)].next = e.next;
  } else {
    lv.heads[slot] = e.next;
  }
  if (e.next != kNil) {
    entries_[static_cast<size_t>(e.next)].prev = e.prev;
  }
  if (lv.heads[slot] == kNil) {
    lv.occupied[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  }
  e.prev = kNil;
  e.next = kNil;
}

TimerRef TimerWheel::Arm(const TimerKey& key, uint32_t exec_stream, Callback fn) {
  int32_t idx = AllocEntry();
  Entry& e = entries_[static_cast<size_t>(idx)];
  e.key = key;
  e.fn = std::move(fn);
  e.exec_stream = exec_stream;
  e.alive = true;
  ++armed_;
  if (armed_ > high_water_) {
    high_water_ = armed_;
  }
  if (key.when < collected_boundary()) {
    // The cursor already passed this tick (it can run ahead of execution
    // time): stage directly in the key-ordered due-heap.
    e.state = State::kInDue;
    DuePush(idx);
  } else {
    Place(idx);
    ++slot_live_;
    if (key.when < slot_min_bound_) {
      slot_min_bound_ = key.when;
    }
  }
  return TimerRef{static_cast<uint32_t>(idx), e.gen};
}

bool TimerWheel::Cancel(TimerRef ref) {
  if (ref.index >= entries_.size()) {
    return false;
  }
  Entry& e = entries_[ref.index];
  if (!e.alive || e.gen != ref.gen) {
    return false;
  }
  --armed_;
  if (e.state == State::kInSlot) {
    Unlink(static_cast<int32_t>(ref.index));
    --slot_live_;
    FreeEntry(static_cast<int32_t>(ref.index));
  } else {
    // Already staged in the due-heap: stale the handle now, recycle the
    // entry when the heap pops it (heaps have no O(1) removal).
    e.alive = false;
    ++e.gen;
    e.fn = nullptr;
  }
  return true;
}

void TimerWheel::DrainSlot(int level, size_t slot, bool to_due) {
  Level& lv = levels_[level];
  int32_t idx = lv.heads[slot];
  lv.heads[slot] = kNil;
  lv.occupied[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
  while (idx != kNil) {
    Entry& e = entries_[static_cast<size_t>(idx)];
    int32_t next = e.next;
    e.prev = kNil;
    e.next = kNil;
    if (to_due) {
      e.state = State::kInDue;
      DuePush(idx);
      --slot_live_;
    } else {
      Place(idx);  // cascade: refile downward relative to the advanced cursor
    }
    idx = next;
  }
}

void TimerWheel::Cascade() {
  // The cursor just entered a new level-0 rotation (low 8 bits are zero):
  // refile the outer-level slot(s) that cover it. Placement is absolute
  // (cursor-relative), so refiled entries land at the right level whatever
  // the order. When a level's digit also wrapped to zero, the next level
  // out entered a new slot too.
  for (int level = 1; level < kLevels; ++level) {
    size_t digit = (cursor_tick_ >> (level * kSlotBits)) & (kSlots - 1);
    if (levels_[level].heads[digit] != kNil) {
      DrainSlot(level, digit, /*to_due=*/false);
    }
    if (digit != 0) {
      break;
    }
  }
}

void TimerWheel::CollectUpTo(uint64_t target_tick) {
  while (cursor_tick_ < target_tick) {
    if ((cursor_tick_ & (kSlots - 1)) == 0) {
      Cascade();
    }
    size_t slot0 = cursor_tick_ & (kSlots - 1);
    uint64_t block_end = (cursor_tick_ | (kSlots - 1)) + 1;
    int s = FirstOccupied(levels_[0], slot0);
    if (s != kNil) {
      uint64_t s_tick = (cursor_tick_ & ~uint64_t{kSlots - 1}) | static_cast<uint64_t>(s);
      if (s_tick >= target_tick) {
        cursor_tick_ = target_tick;
        break;
      }
      DrainSlot(0, static_cast<size_t>(s), /*to_due=*/true);
      cursor_tick_ = s_tick + 1;
    } else {
      // Rest of the rotation is empty: jump straight to its boundary.
      if (block_end >= target_tick) {
        cursor_tick_ = target_tick;
        break;
      }
      cursor_tick_ = block_end;
    }
  }
  if (collected_boundary() > slot_min_bound_) {
    slot_min_bound_ = collected_boundary();
  }
}

int TimerWheel::FirstOccupied(const Level& lv, size_t from) const {
  if (from >= kSlots) {
    return kNil;
  }
  size_t word = from >> 6;
  uint64_t bits = lv.occupied[word] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>((word << 6) + static_cast<size_t>(std::countr_zero(bits)));
    }
    if (++word >= kSlots / 64) {
      return kNil;
    }
    bits = lv.occupied[word];
  }
}

bool TimerWheel::SlotMinLowerBound(Cycles* out) const {
  if (slot_live_ == 0) {
    return false;
  }
  // Levels are scanned inward-out: every level-0 entry in the current
  // rotation precedes every entry filed further out. The scan starts at
  // the cursor's own digit (inclusive) — a just-entered rotation may still
  // have its cascade pending.
  int s = FirstOccupied(levels_[0], cursor_tick_ & (kSlots - 1));
  if (s != kNil) {
    *out = ((cursor_tick_ & ~uint64_t{kSlots - 1}) | static_cast<uint64_t>(s)) << kTickBits;
    return true;
  }
  for (int level = 1; level < kLevels; ++level) {
    size_t digit = (cursor_tick_ >> (level * kSlotBits)) & (kSlots - 1);
    int d = FirstOccupied(levels_[level], digit);
    if (d != kNil) {
      uint64_t base = cursor_tick_ & ~((uint64_t{1} << ((level + 1) * kSlotBits)) - 1);
      *out = (base | (static_cast<uint64_t>(d) << (level * kSlotBits))) << kTickBits;
      return true;
    }
  }
  return false;
}

bool TimerWheel::PeekDue(TimerKey* key) {
  for (;;) {
    while (!due_.empty() && !entries_[static_cast<size_t>(due_.front())].alive) {
      FreeEntry(DuePop());
    }
    if (!due_.empty()) {
      const Entry& top = entries_[static_cast<size_t>(due_.front())];
      // No slot entry can precede the due-top once the bound clears it;
      // ties on `when` force a collection so seq order is decided by the
      // due-heap, never by where an entry happened to be filed.
      if (slot_live_ == 0 || top.key.when < slot_min_bound_) {
        *key = top.key;
        return true;
      }
      CollectUpTo(TickOf(top.key.when) + 1);
      continue;
    }
    if (slot_live_ == 0) {
      return false;
    }
    Cycles lb;
    if (!SlotMinLowerBound(&lb)) {
      return false;
    }
    uint64_t target = TickOf(lb) + 1;
    if (target <= cursor_tick_) {
      target = cursor_tick_ + 1;  // pending cascade: force one tick of progress
    }
    CollectUpTo(target);
  }
}

TimerWheel::Callback TimerWheel::PopDue(TimerKey* key, uint32_t* exec_stream) {
  // A preceding PeekDue staged the wheel-wide minimum at due_.front() and
  // swept cancelled tops.
  int32_t idx = DuePop();
  Entry& e = entries_[static_cast<size_t>(idx)];
  *key = e.key;
  *exec_stream = e.exec_stream;
  Callback fn = std::move(e.fn);
  --armed_;
  FreeEntry(idx);
  return fn;
}

void TimerWheel::DuePush(int32_t idx) {
  due_.push_back(idx);
  std::push_heap(due_.begin(), due_.end(), [this](int32_t a, int32_t b) {
    return TimerKeyLess(entries_[static_cast<size_t>(b)].key,
                        entries_[static_cast<size_t>(a)].key);
  });
}

int32_t TimerWheel::DuePop() {
  std::pop_heap(due_.begin(), due_.end(), [this](int32_t a, int32_t b) {
    return TimerKeyLess(entries_[static_cast<size_t>(b)].key,
                        entries_[static_cast<size_t>(a)].key);
  });
  int32_t idx = due_.back();
  due_.pop_back();
  return idx;
}

}  // namespace escort
