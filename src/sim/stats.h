// Measurement helpers: counters, rate meters and histograms.
//
// The paper reports ten-second averages measured after one minute of
// warm-up; `RateMeter` implements exactly that protocol.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace escort {

// Monotonic event counter with a windowed-rate reading.
//
// One RateMeter is shared by every client in a testbed, so under a
// ShardedEventQueue it is incremented concurrently from several shards.
// The counters are relaxed atomics: sums and maxima are commutative, so
// the readings stay bit-identical at any shard count. Open/CloseWindow
// and the accessors are only called at serial points.
class RateMeter {
 public:
  RateMeter() = default;

  // ESCORT_SHARD_SAFE
  void Record(Cycles now, uint64_t count = 1) {
    total_.fetch_add(count, std::memory_order_relaxed);
    if (window_open_.load(std::memory_order_relaxed)) {
      window_count_.fetch_add(count, std::memory_order_relaxed);
    }
    // last_event_ is the max over all recordings (equivalent to "last
    // assignment" under a serial queue, where `now` is monotonic).
    Cycles prev = last_event_.load(std::memory_order_relaxed);
    while (prev < now &&
           !last_event_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  // Opens the measurement window (call after warm-up, at a serial point:
  // window_start_ is deliberately plain — see DESIGN.md §6.5).
  // ESCORT_SERIAL_ONLY
  void OpenWindow(Cycles now) {
    window_start_ = now;
    window_count_.store(0, std::memory_order_relaxed);
    window_open_.store(true, std::memory_order_relaxed);
  }

  // Closes the window and returns events/second over it.
  // ESCORT_SERIAL_ONLY
  double CloseWindow(Cycles now) {
    window_open_.store(false, std::memory_order_relaxed);
    double secs = SecondsFromCycles(now - window_start_);
    if (secs <= 0) {
      return 0.0;
    }
    return static_cast<double>(window_count_.load(std::memory_order_relaxed)) / secs;
  }

  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  uint64_t window_count() const { return window_count_.load(std::memory_order_relaxed); }
  Cycles last_event() const { return last_event_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> window_count_{0};
  Cycles window_start_ = 0;  // written/read at serial points only
  std::atomic<Cycles> last_event_{0};
  // Record() reads this from shard threads while the window toggles
  // happen at serial points; the atomic makes that cross-thread read
  // well-defined (relaxed suffices — the drain barrier at the window
  // boundary publishes the toggle before any shard can Record again).
  std::atomic<bool> window_open_{false};
};

// Byte-throughput meter for QoS streams (bytes/second over a window).
//
// Same commutative relaxed-atomic contract as RateMeter: Record() may be
// called concurrently from several shards (sums commute, last_event_ is
// a max), while OpenWindow/Close and the accessors are serial-point-only.
class ThroughputMeter {
 public:
  // ESCORT_SHARD_SAFE
  void Record(Cycles now, uint64_t bytes) {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (window_open_.load(std::memory_order_relaxed)) {
      window_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
    Cycles prev = last_event_.load(std::memory_order_relaxed);
    while (prev < now &&
           !last_event_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  // ESCORT_SERIAL_ONLY
  void OpenWindow(Cycles now) {
    window_start_ = now;
    window_bytes_.store(0, std::memory_order_relaxed);
    window_open_.store(true, std::memory_order_relaxed);
  }

  // ESCORT_SERIAL_ONLY
  double CloseWindowBytesPerSec(Cycles now) {
    window_open_.store(false, std::memory_order_relaxed);
    double secs = SecondsFromCycles(now - window_start_);
    if (secs <= 0) {
      return 0.0;
    }
    return static_cast<double>(window_bytes_.load(std::memory_order_relaxed)) / secs;
  }

  uint64_t total_bytes() const { return total_bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> window_bytes_{0};
  Cycles window_start_ = 0;  // written/read at serial points only
  std::atomic<Cycles> last_event_{0};
  std::atomic<bool> window_open_{false};
};

// Simple sample accumulator (latency distributions, kill costs).
//
// NOT shard-safe, by design: the values vector is ordered and Mean() is
// floating-point-order dependent, so there is no commutative contract to
// convert to. Every Add() site must run on stream 0 or at a serial point
// (today: the kernel's runaway/fault handlers and end-of-run harvests).
// EA002 (tools/analyze/escort_analyzer.py) proves Add() is unreachable
// from shard-worker call paths.
class Samples {
 public:
  // ESCORT_SERIAL_ONLY
  void Add(double v) { values_.push_back(v); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Percentile(double p) const;  // p in [0,100]
  double StdDev() const;

 private:
  std::vector<double> values_;
};

// Formats a value with thousands separators ("1,123,195") as the paper does.
std::string WithCommas(uint64_t v);

}  // namespace escort

#endif  // SRC_SIM_STATS_H_
