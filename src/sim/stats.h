// Measurement helpers: counters, rate meters and histograms.
//
// The paper reports ten-second averages measured after one minute of
// warm-up; `RateMeter` implements exactly that protocol.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace escort {

// Monotonic event counter with a windowed-rate reading.
class RateMeter {
 public:
  RateMeter() = default;

  void Record(Cycles now, uint64_t count = 1) {
    total_ += count;
    if (window_open_) {
      window_count_ += count;
    }
    last_event_ = now;
  }

  // Opens the measurement window (call after warm-up).
  void OpenWindow(Cycles now) {
    window_open_ = true;
    window_start_ = now;
    window_count_ = 0;
  }

  // Closes the window and returns events/second over it.
  double CloseWindow(Cycles now) {
    window_open_ = false;
    double secs = SecondsFromCycles(now - window_start_);
    if (secs <= 0) {
      return 0.0;
    }
    return static_cast<double>(window_count_) / secs;
  }

  uint64_t total() const { return total_; }
  uint64_t window_count() const { return window_count_; }
  Cycles last_event() const { return last_event_; }

 private:
  uint64_t total_ = 0;
  uint64_t window_count_ = 0;
  Cycles window_start_ = 0;
  Cycles last_event_ = 0;
  bool window_open_ = false;
};

// Byte-throughput meter for QoS streams (bytes/second over a window).
class ThroughputMeter {
 public:
  void Record(Cycles now, uint64_t bytes) {
    total_bytes_ += bytes;
    if (window_open_) {
      window_bytes_ += bytes;
    }
    last_event_ = now;
  }

  void OpenWindow(Cycles now) {
    window_open_ = true;
    window_start_ = now;
    window_bytes_ = 0;
  }

  double CloseWindowBytesPerSec(Cycles now) {
    window_open_ = false;
    double secs = SecondsFromCycles(now - window_start_);
    if (secs <= 0) {
      return 0.0;
    }
    return static_cast<double>(window_bytes_) / secs;
  }

  uint64_t total_bytes() const { return total_bytes_; }

 private:
  uint64_t total_bytes_ = 0;
  uint64_t window_bytes_ = 0;
  Cycles window_start_ = 0;
  Cycles last_event_ = 0;
  bool window_open_ = false;
};

// Simple sample accumulator (latency distributions, kill costs).
class Samples {
 public:
  void Add(double v) { values_.push_back(v); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  double Percentile(double p) const;  // p in [0,100]
  double StdDev() const;

 private:
  std::vector<double> values_;
};

// Formats a value with thousands separators ("1,123,195") as the paper does.
std::string WithCommas(uint64_t v);

}  // namespace escort

#endif  // SRC_SIM_STATS_H_
