// Deterministic trace subsystem: Chrome trace-event JSON timelines.
//
// The tracer turns Escort's resource accounting into inspectable
// timelines: per-owner ledger balances become counter tracks, path
// lifecycles become duration spans, and policy actions (runaway
// detection, blacklist inserts, pathKill) become instant events. The
// output loads directly into Perfetto / chrome://tracing.
//
// Determinism contract
// --------------------
// Timestamps are sim-cycles, never wall clock, and every emission site
// executes either on stream 0 (the server/kernel stream, which runs on
// exactly one worker at a time with happens-before edges through the
// pool dispatch) or at a serial point of the ShardedEventQueue. Events
// are appended to a single unsynchronized buffer in execution order,
// which the queue's total event order makes independent of the shard
// count — so a trace is byte-identical across `--jobs` and `--shards`.
// Emitting from any other stream is a contract violation (TSan would
// flag it as a data race on the buffer).
//
// Zero overhead when disabled: components hold a `Tracer*` that stays
// nullptr unless `--trace` is given; every instrumentation site is a
// single pointer test, with no allocation behind it.
//
// The flight recorder keeps the most recent events in a bounded ring
// and dumps them to `<trace>.flight.json` when something goes wrong
// (audit violation, pathKill), giving post-mortem context.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/types.h"

namespace escort {

// Per-family enable bits and output locations. `path` empty = disabled.
struct TraceConfig {
  std::string path;  // Chrome trace JSON output; empty disables tracing

  // Event families (ISSUE terminology): owner/ledger counter tracks,
  // path lifecycle + policy events, and per-shard queue profiling. The
  // first two are deterministic across shard counts; shard profiling is
  // inherently per-partition and therefore off by default (it always
  // flows into the bench JSON `shard_utilization` block instead).
  bool ledger = true;
  bool lifecycle = true;
  bool shard_profile = false;

  // Ledger sampling cadence in sim time.
  Cycles sample_interval = CyclesFromMillis(5.0);

  // Flight recorder: ring capacity and dump location (empty = derive
  // `path + ".flight.json"`).
  size_t flight_capacity = 256;
  std::string flight_path;

  bool enabled() const { return !path.empty(); }
  std::string ResolvedFlightPath() const {
    return flight_path.empty() ? path + ".flight.json" : flight_path;
  }
};

// Track name for an owner (paths, protection domains): the owner id is
// the stable identity, the name makes the Perfetto track readable.
std::string OwnerTrack(uint64_t owner_id, const std::string& owner_name);

class Tracer {
 public:
  // Argument list for an event: (key, pre-encoded JSON value). Encode
  // values with Str()/Num() so serialization stays byte-stable.
  using Args = std::vector<std::pair<std::string, std::string>>;

  explicit Tracer(TraceConfig config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TraceConfig& config() const { return config_; }
  bool ledger_enabled() const { return config_.ledger; }
  bool lifecycle_enabled() const { return config_.lifecycle; }
  bool shard_profile_enabled() const { return config_.shard_profile; }

  // JSON value encoders for Args.
  static std::string Str(const std::string& s);
  static std::string Num(uint64_t v);

  // Emission is serial-point-only (see the determinism contract above):
  // the event buffer is a single unsynchronized vector, so every emitter
  // must run on stream 0 or at a ShardedEventQueue serial point. EA002
  // proves these are unreachable from shard-worker call paths.

  // Duration span on `track` (ph "B"). Spans on one track must nest.
  // ESCORT_SERIAL_ONLY
  void BeginSpan(Cycles ts, const std::string& track, const std::string& name,
                 const char* category, Args args = {});
  // Closes the innermost open span on `track` (ph "E"). Ignored if the
  // track has no open span (e.g. the span began before tracing attached).
  // ESCORT_SERIAL_ONLY
  void EndSpan(Cycles ts, const std::string& track);
  // Instant event (ph "I").
  // ESCORT_SERIAL_ONLY
  void Instant(Cycles ts, const std::string& track, const std::string& name,
               const char* category, Args args = {});
  // Counter sample (ph "C"): `series` maps series name -> value.
  // ESCORT_SERIAL_ONLY
  void Counter(Cycles ts, const std::string& name, Args series);

  // Closes every still-open span at `ts` so the output always balances.
  // ESCORT_SERIAL_ONLY
  void Finalize(Cycles ts);

  // --- Flight recorder -------------------------------------------------
  // Serializes the ring (most recent events, oldest first) plus `reason`
  // and writes it to ResolvedFlightPath(). Keeps the dump in memory for
  // tests. Best effort on I/O failure.
  // ESCORT_SERIAL_ONLY
  void DumpFlight(const std::string& reason, Cycles ts);
  uint64_t flight_dumps() const { return flight_dumps_; }
  const std::string& last_flight_dump() const { return last_flight_dump_; }

  // --- Serialization ---------------------------------------------------
  size_t event_count() const { return events_.size(); }
  // Comma-joined trace-event objects for one process (pid) of a merged
  // trace, preceded by process/thread metadata. No enclosing brackets.
  std::string SerializeEvents(uint32_t pid, const std::string& process_name) const;
  // Complete single-process trace document.
  std::string SerializeStandalone() const;
  // Writes SerializeStandalone() to config().path. Returns false on I/O error.
  bool WriteStandalone() const;

  // Wraps pre-serialized per-process fragments into one trace document
  // (the sweep runner merges per-cell tracers in grid order with this).
  static std::string WrapDocument(const std::vector<std::string>& fragments);
  static bool WriteFile(const std::string& path, const std::string& content);

  // All stderr diagnostics in src/ funnel through here (lint rule EL011):
  // keeping one choke point means a future consumer can redirect or
  // timestamp diagnostics without touching emission sites. Writes `text`
  // verbatim.
  static void Diag(const std::string& text);

 private:
  struct TraceEvent {
    char ph;
    Cycles ts;
    uint32_t tid;
    const char* category;
    std::string name;
    Args args;
  };

  // tid 0 is the process-wide pseudo-track (counters); named tracks get
  // ids from 1 in first-use order (deterministic — allocation follows
  // event order).
  uint32_t TrackId(const std::string& track);
  void Push(TraceEvent ev);
  static void AppendEvent(std::string* out, const TraceEvent& ev, uint32_t pid);

  TraceConfig config_;
  std::vector<TraceEvent> events_;
  std::vector<std::string> track_names_;          // index = tid - 1
  std::map<std::string, uint32_t> track_ids_;
  std::map<uint32_t, uint32_t> open_spans_;       // tid -> open-depth
  std::deque<TraceEvent> flight_;
  uint64_t flight_dumps_ = 0;
  std::string last_flight_dump_;
};

}  // namespace escort

#endif  // SRC_SIM_TRACE_H_
