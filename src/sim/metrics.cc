#include "src/sim/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

namespace escort {

namespace {

// JSON string literal with escaping (same rules as the tracer).
std::string Str(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string SNum(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

MetricHistogram::MetricHistogram(uint32_t buckets)
    : buckets_(buckets > 1 ? buckets : 2, 0) {}

uint32_t MetricHistogram::BucketOf(uint64_t v, uint32_t buckets) {
  if (v == 0) return 0;
  uint32_t k = 1;
  while (v > 1 && k + 1 < buckets) {
    v >>= 1;
    ++k;
  }
  return k;
}

uint64_t MetricHistogram::BucketUpperBound(uint32_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~0ull;
  return (1ull << bucket) - 1;
}

void MetricHistogram::Observe(uint64_t v) {
  buckets_[BucketOf(v, static_cast<uint32_t>(buckets_.size()))] += 1;
  count_ += 1;
  sum_ += v;
}

uint64_t MetricHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the p-quantile sample, 1-based, rounded up.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count_));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(static_cast<uint32_t>(buckets_.size()) - 1);
}

ShardedSeries::ShardedSeries(uint32_t lanes, Cycles bin_interval)
    : lanes_(lanes > 0 ? lanes : 1), interval_(bin_interval > 0 ? bin_interval : 1) {}

void ShardedSeries::Record(uint32_t lane, Cycles when, int64_t delta) {
  if (lane >= lanes_.size()) lane = static_cast<uint32_t>(lanes_.size()) - 1;
  Lane& l = lanes_[lane];
  const uint64_t bin = when / interval_;
  if (!l.bins.empty() && l.bins.back().first == bin) {
    l.bins.back().second += delta;
    return;
  }
  l.bins.emplace_back(bin, delta);
}

std::vector<std::pair<Cycles, int64_t>> ShardedSeries::Merged() const {
  // Elementwise bin sum across lanes. A shard may briefly run behind the
  // serial clock, so per-lane bins are only *mostly* sorted; std::map
  // absorbs any order and keys the result deterministically.
  std::map<uint64_t, int64_t> by_bin;
  for (const Lane& l : lanes_) {
    for (const auto& [bin, delta] : l.bins) by_bin[bin] += delta;
  }
  std::vector<std::pair<Cycles, int64_t>> out;
  out.reserve(by_bin.size());
  int64_t running = 0;
  for (const auto& [bin, delta] : by_bin) {
    running += delta;
    out.emplace_back(bin * interval_, running);
  }
  return out;
}

MetricsRegistry::MetricsRegistry(MetricsConfig config) : config_(std::move(config)) {}

MetricCounter* MetricsRegistry::RegisterCounter(const std::string& name,
                                                const char* help) {
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second.help = help;
  return &it->second.metric;
}

MetricGauge* MetricsRegistry::RegisterGauge(const std::string& name, const char* help) {
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second.help = help;
  return &it->second.metric;
}

MetricHistogram* MetricsRegistry::RegisterHistogram(const std::string& name,
                                                    const char* help) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, HistogramEntry(config_.histogram_buckets)).first;
    it->second.help = help;
  }
  return &it->second.metric;
}

ShardedSeries* MetricsRegistry::RegisterShardedSeries(const std::string& name,
                                                      const char* help,
                                                      uint32_t lanes) {
  auto it = sharded_.find(name);
  if (it == sharded_.end()) {
    it = sharded_.emplace(name, ShardedEntry(lanes, config_.sample_interval)).first;
    it->second.help = help;
  }
  return &it->second.series;
}

const MetricCounter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second.metric;
}

const MetricGauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second.metric;
}

const MetricHistogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second.metric;
}

void MetricsRegistry::Sample(Cycles now) {
  for (auto& [name, e] : counters_) {
    const int64_t v = static_cast<int64_t>(e.metric.value());
    if (!e.series.empty() && e.series.back().value == v) continue;
    e.series.push_back(SeriesPoint{now, v});
  }
  for (auto& [name, e] : gauges_) {
    const int64_t v = e.metric.value();
    if (!e.series.empty() && e.series.back().value == v) continue;
    e.series.push_back(SeriesPoint{now, v});
  }
}

namespace {

void AppendSeries(std::string* out, const std::vector<std::pair<Cycles, int64_t>>& pts) {
  *out += "[";
  bool first = true;
  for (const auto& [ts, v] : pts) {
    if (!first) *out += ",";
    first = false;
    *out += "[" + Num(ts) + "," + SNum(v) + "]";
  }
  *out += "]";
}

}  // namespace

std::string MetricsRegistry::SerializeCell(const std::string& cell_id) const {
  std::string out = "{\"cell\": " + Str(cell_id) +
                    ", \"sample_interval\": " + Num(config_.sample_interval) + ",\n";

  out += "\"counters\": [";
  bool first = true;
  for (const auto& [name, e] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": " + Str(name) + ", \"help\": " + Str(e.help) +
           ", \"value\": " + Num(e.metric.value()) + ", \"series\": ";
    std::vector<std::pair<Cycles, int64_t>> pts;
    pts.reserve(e.series.size());
    for (const SeriesPoint& p : e.series) pts.emplace_back(p.ts, p.value);
    AppendSeries(&out, pts);
    out += "}";
  }
  out += "],\n";

  out += "\"gauges\": [";
  first = true;
  for (const auto& [name, e] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\": " + Str(name) + ", \"help\": " + Str(e.help) +
           ", \"value\": " + SNum(e.metric.value()) + ", \"series\": ";
    std::vector<std::pair<Cycles, int64_t>> pts;
    pts.reserve(e.series.size());
    for (const SeriesPoint& p : e.series) pts.emplace_back(p.ts, p.value);
    AppendSeries(&out, pts);
    out += "}";
  }
  out += "],\n";

  out += "\"histograms\": [";
  first = true;
  for (const auto& [name, e] : histograms_) {
    if (!first) out += ",";
    first = false;
    const MetricHistogram& h = e.metric;
    out += "\n{\"name\": " + Str(name) + ", \"help\": " + Str(e.help) +
           ", \"count\": " + Num(h.count()) + ", \"sum\": " + Num(h.sum()) +
           ", \"p50\": " + Num(h.Percentile(0.50)) +
           ", \"p90\": " + Num(h.Percentile(0.90)) +
           ", \"p99\": " + Num(h.Percentile(0.99)) + ", \"buckets\": [";
    // Trailing empty buckets are elided to keep the document compact.
    size_t last = h.buckets().size();
    while (last > 0 && h.buckets()[last - 1] == 0) --last;
    for (size_t b = 0; b < last; ++b) {
      if (b != 0) out += ",";
      out += Num(h.buckets()[b]);
    }
    out += "]}";
  }
  out += "],\n";

  out += "\"sharded\": [";
  first = true;
  for (const auto& [name, e] : sharded_) {
    if (!first) out += ",";
    first = false;
    // No lane count here: lanes mirror the shard partition, and the
    // document must be byte-identical at any --shards. Merged() already
    // collapses the partition away.
    out += "\n{\"name\": " + Str(name) + ", \"help\": " + Str(e.help) + ", \"series\": ";
    AppendSeries(&out, e.series.Merged());
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::WrapDocument(const std::vector<std::string>& fragments) {
  std::string out = "{\n\"escort_metrics_schema\": 1,\n\"cpu_hz\": " + Num(kCpuHz) +
                    ",\n\"cells\": [\n";
  bool first = true;
  for (const std::string& f : fragments) {
    if (f.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += f;
  }
  out += "\n]\n}\n";
  return out;
}

bool MetricsRegistry::WriteFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return wrote == json.size();
}

}  // namespace escort
