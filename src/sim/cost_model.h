// Calibrated cycle costs for every operation in the simulated system.
//
// The paper reports all micro-results in cycles on a 300 MHz AlphaPC 21064.
// This reproduction times every kernel and module operation with the
// constants below. `CostModel::Calibrated()` is tuned so that the headline
// shapes of the paper hold:
//
//   * base Scout serves ~800 one-byte connections/s at saturation,
//   * fine-grain accounting costs ~8%,
//   * each additional protection domain costs ~25% (full separation >4x),
//   * the Linux/Apache comparator peaks at ~400 connections/s,
//   * pathKill costs ~18k cycles (no PDs) / ~110k cycles (full PDs).
//
// Tests and benches may construct modified copies to run ablations (e.g.
// "what if the PAL TLB-invalidate bug were fixed" — the paper predicts >2x
// improvement in per-domain overhead).

#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include "src/sim/types.h"

namespace escort {

struct CostModel {
  // --- Interrupt / demux ------------------------------------------------
  Cycles interrupt_overhead = 2'000;   // per received frame, charged to kernel
  Cycles demux_per_module = 700;       // per module consulted during demux
  Cycles demux_drop = 400;             // rejecting a frame at demux time

  // --- Network stack, per packet ---------------------------------------
  Cycles eth_rx = 2'400;
  Cycles eth_tx = 2'800;
  Cycles arp_process = 2'000;
  Cycles ip_rx = 3'400;
  Cycles ip_tx = 3'800;
  Cycles tcp_rx_segment = 7'000;
  Cycles tcp_tx_segment = 7'800;
  Cycles tcp_conn_setup = 17'000;     // SYN processing + PCB allocation
  Cycles tcp_conn_teardown = 10'000;  // FIN handling + PCB release
  Cycles tcp_timeout_scan = 600;      // TCP master event, per active PCB
  Cycles per_byte_touch = 2;          // checksum + copy, per payload byte

  // --- HTTP / file system -----------------------------------------------
  Cycles http_parse = 12'000;
  Cycles http_respond = 9'000;
  Cycles fs_lookup = 9'000;       // name -> inode, cache hit
  Cycles fs_read_block_hit = 4'000;
  Cycles scsi_op = 30'000;        // CPU cost of issuing a disk op (miss only)
  Cycles cgi_dispatch = 18'000;   // spawning the CGI handler thread

  // --- Path operations ----------------------------------------------------
  Cycles path_create_base = 9'000;
  Cycles path_create_per_stage = 2'200;
  Cycles path_destroy_base = 5'000;
  Cycles path_destroy_per_stage = 1'400;

  // --- pathKill reclamation (Table 2) ------------------------------------
  Cycles pathkill_base = 12'000;
  Cycles reclaim_per_thread = 5'000;
  Cycles reclaim_per_iobuffer = 1'100;
  Cycles reclaim_per_page = 700;
  Cycles reclaim_per_event = 500;
  Cycles reclaim_per_semaphore = 500;
  Cycles pathkill_per_pd = 13'200;  // tear down stacks/mappings/IPC per domain

  // --- Kernel object management ------------------------------------------
  Cycles alloc_page = 1'200;
  Cycles free_page = 800;
  Cycles alloc_kmem = 500;
  Cycles free_kmem = 350;
  Cycles heap_alloc = 700;   // PD heap handing a sub-page object to a path
  Cycles heap_free = 500;
  Cycles iobuffer_alloc = 1'500;
  Cycles iobuffer_alloc_cached = 600;  // reuse from buffer cache (one mapping)
  Cycles iobuffer_lock = 400;
  Cycles iobuffer_unlock = 400;
  Cycles iobuffer_associate = 900;
  Cycles thread_create = 3'000;
  Cycles thread_dispatch = 600;   // scheduler decision + context load
  Cycles semaphore_op = 300;
  Cycles event_register = 600;
  Cycles syscall_overhead = 450;  // trap in/out of the privileged domain

  // --- Accounting (the 8%) -------------------------------------------------
  // Extra cycles per ownership charge/uncharge when accounting is enabled.
  Cycles accounting_op = 280;

  // --- Protection domains ---------------------------------------------------
  // Cost of one protection-domain boundary crossing by a path thread:
  // trap + domain switch + full TLB invalidate (the OSF1 PAL bug) + the
  // TLB refill misses the invalidate induces afterwards.
  Cycles pd_crossing = 52'000;
  // The paper predicts custom PAL code would cut per-domain overhead by >2x;
  // ablation benches model that by scaling pd_crossing down.
  //
  // TLB-refill penalty: after a crossing the invalidated TLB makes the
  // subsequent module work slower; applied as a percentage surcharge on the
  // dynamic cycles consumed by an item that crossed a boundary.
  uint32_t pd_tlb_refill_percent = 30;

  // --- Softclock / timers ----------------------------------------------------
  Cycles softclock_tick = 220;       // per 1 ms timer interrupt (kernel)
  Cycles tcp_master_event = 380;     // per TCP master-event firing (TCP's PD)
  Cycles softclock_period_ms = 1;    // softclock granularity

  // --- Runaway detection -----------------------------------------------------
  Cycles max_thread_run_default = CyclesFromMillis(2.0);  // 2 ms, per paper

  // --- Linux/Apache comparator (calibrated model, see DESIGN.md §2) ---------
  Cycles linux_request_cpu = 730'000;      // ~400 conn/s peak at 300 MHz
  Cycles linux_request_per_byte = 4;       // weaker zero-copy story
  Cycles linux_syn_cost = 4'000;           // kernel SYN-queue work per SYN
  Cycles linux_kill_process = 11'003;      // Table 2 reference row
  uint32_t linux_syn_backlog = 128;        // classic listen-queue depth

  // Returns the calibrated default instance used by all experiments.
  static const CostModel& Calibrated();
};

// Parameters of the simulated network testbed (Figure 7).
struct NetworkModel {
  double link_bandwidth_bps = 100e6;  // 100 Mbps Ethernet
  Cycles client_link_latency = CyclesFromMicros(120);  // client NIC->switch->hub
  Cycles server_link_latency = CyclesFromMicros(60);   // hub->server NIC
  uint32_t mtu = 1460;                                 // TCP payload per segment
  Cycles client_processing = CyclesFromMicros(2000);   // client-side per req/resp

  static const NetworkModel& Calibrated();
};

}  // namespace escort

#endif  // SRC_SIM_COST_MODEL_H_
