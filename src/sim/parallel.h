// Thread-pool job system for running independent simulation cells in
// parallel (the sweep harness in src/workload/sweep.h is the main client).
//
// Contract: jobs must be *isolated* — each job owns its entire mutable
// world (EventQueue, Kernel, testbed) and may only share immutable data
// such as the calibrated CostModel/NetworkModel singletons. The pool
// guarantees that outcomes are reported in submission (index) order
// regardless of completion order, so a parallel run is observationally
// identical to a serial one. A job that throws surfaces as a failed
// outcome for that index — never as a deadlock, a torn-down pool, or an
// abort of the whole sweep.
//
// Raw std::thread lives only in parallel.cc (enforced by escort_lint
// EL010); this header deliberately exposes no threading primitives.

#ifndef SRC_SIM_PARALLEL_H_
#define SRC_SIM_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace escort {

// Outcome of one job. When `ok` is false, `error` carries the what() of
// the exception the job threw (or a placeholder for non-std exceptions).
struct JobOutcome {
  bool ok = true;
  std::string error;
};

// Number of hardware threads, always at least 1.
int HardwareConcurrency();

class ThreadPool {
 public:
  // threads <= 0 selects HardwareConcurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const;

  // Runs fn(0), fn(1), ..., fn(count - 1) across the pool's workers and
  // blocks until all of them finish. Returns one outcome per index, in
  // index order. count == 0 returns an empty vector without touching the
  // workers; count smaller than the pool simply leaves workers idle.
  //
  // Batches are sequential: RunIndexed must not be called concurrently
  // from multiple threads (the sweep harness never does).
  std::vector<JobOutcome> RunIndexed(size_t count, const std::function<void(size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One-shot convenience: runs fn over [0, count) on a temporary pool of
// `jobs` threads (jobs <= 0: hardware concurrency).
std::vector<JobOutcome> ParallelFor(int jobs, size_t count,
                                    const std::function<void(size_t)>& fn);

// Persistent gang of workers for the sharded event queue's window loop.
//
// Unlike ThreadPool::RunIndexed — which binds a fresh std::function and
// walks a mutex/condvar handshake per batch — the gang binds its body
// exactly once at construction and hands each dispatch over through a
// per-worker atomic generation slot. Workers spin briefly on the slot
// before parking on a condvar, so back-to-back windows (the hot case:
// tens of thousands per cell) skip the scheduler entirely on multicore
// hosts. On a single-core host the spin collapses to one probe.
//
// Run() dispatches args[1..count) to workers and executes args[0] on the
// calling thread, then blocks until every slot finishes. Dispatches are
// sequential (one caller), matching the queue's serial-point discipline.
class ShardGang {
 public:
  using Body = std::function<void(size_t)>;

  // `workers` persistent threads (clamped to >= 1). `body` is the one
  // function every dispatch runs; it must be safe to call concurrently
  // with distinct arguments.
  ShardGang(int workers, Body body);
  ~ShardGang();

  ShardGang(const ShardGang&) = delete;
  ShardGang& operator=(const ShardGang&) = delete;

  int worker_count() const;

  // Runs body over every element of `args` (args[0] on the caller,
  // args[1..] on workers; args.size() - 1 must not exceed worker_count()).
  // Returns "" when every slot succeeded, else the joined error messages —
  // a throwing body never deadlocks or tears down the gang.
  std::string Run(const std::vector<size_t>& args);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Milliseconds on the host's monotonic clock, for wall-clock perf
// measurement only (the bench JSON `perf` block). Simulated time always
// comes from EventQueue::now(); nothing in simulation logic may branch on
// this value — it exists so sweeps can report events/sec.
double MonotonicMillis();

}  // namespace escort

#endif  // SRC_SIM_PARALLEL_H_
