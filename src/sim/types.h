// Basic time and identifier types for the Escort simulation substrate.
//
// The entire system is timed in CPU cycles of the simulated server processor,
// matching the paper's presentation (all micro-results are given in cycles on
// a 300 MHz AlphaPC 21064).

#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>

namespace escort {

// Simulated time, measured in CPU cycles of the server processor.
using Cycles = uint64_t;

// Frequency of the simulated server CPU (300 MHz AlphaPC 21064).
inline constexpr Cycles kCpuHz = 300'000'000;

// Converts between wall-clock units and cycles at kCpuHz.
constexpr Cycles CyclesFromSeconds(double seconds) {
  return static_cast<Cycles>(seconds * static_cast<double>(kCpuHz));
}

constexpr Cycles CyclesFromMillis(double ms) { return CyclesFromSeconds(ms / 1e3); }

constexpr Cycles CyclesFromMicros(double us) { return CyclesFromSeconds(us / 1e6); }

constexpr double SecondsFromCycles(Cycles c) {
  return static_cast<double>(c) / static_cast<double>(kCpuHz);
}

constexpr double MillisFromCycles(Cycles c) { return SecondsFromCycles(c) * 1e3; }

}  // namespace escort

#endif  // SRC_SIM_TYPES_H_
