#include "src/sim/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace escort {

int HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// Workers pull indices from the current batch under a mutex. The batch
// pointer doubles as the "work available" flag; it is cleared by the last
// worker to finish so the caller can observe completion.
struct ThreadPool::Impl {
  struct Batch {
    size_t count = 0;
    size_t next = 0;
    size_t done = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::vector<JobOutcome>* outcomes = nullptr;
  };

  std::mutex mu;
  std::condition_variable work_cv;   // workers wait here for a batch / stop
  std::condition_variable done_cv;   // RunIndexed waits here for completion
  Batch* batch = nullptr;
  bool stopping = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return stopping || (batch != nullptr && batch->next < batch->count); });
      if (batch == nullptr || batch->next >= batch->count) {
        if (stopping) {
          return;
        }
        continue;
      }
      Batch* b = batch;
      size_t i = b->next++;
      lock.unlock();
      JobOutcome outcome;
      try {
        (*b->fn)(i);
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = e.what();
      } catch (...) {
        outcome.ok = false;
        outcome.error = "non-standard exception";
      }
      lock.lock();
      (*b->outcomes)[i] = std::move(outcome);
      if (++b->done == b->count) {
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  int n = threads <= 0 ? HardwareConcurrency() : threads;
  impl_->workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) {
    t.join();
  }
}

int ThreadPool::thread_count() const { return static_cast<int>(impl_->workers.size()); }

std::vector<JobOutcome> ThreadPool::RunIndexed(size_t count,
                                               const std::function<void(size_t)>& fn) {
  std::vector<JobOutcome> outcomes(count);
  if (count == 0) {
    return outcomes;
  }
  Impl::Batch batch;
  batch.count = count;
  batch.fn = &fn;
  batch.outcomes = &outcomes;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->batch = &batch;
  }
  impl_->work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] { return batch.done == batch.count; });
    impl_->batch = nullptr;
  }
  return outcomes;
}

std::vector<JobOutcome> ParallelFor(int jobs, size_t count,
                                    const std::function<void(size_t)>& fn) {
  ThreadPool pool(jobs);
  return pool.RunIndexed(count, fn);
}

// ---- ShardGang -------------------------------------------------------------

namespace {

// Spin budget before a waiter parks on its condvar. On a single-core host
// spinning only steals cycles from the thread being waited on, so the
// budget collapses to a single probe there.
int SpinLimit() { return HardwareConcurrency() > 1 ? 2048 : 1; }

}  // namespace

struct ShardGang::Impl {
  // One slot per worker. `gen` is the handoff: the dispatcher writes `arg`
  // and `error` first, then publishes with a release increment; the worker
  // acquires it, runs, and counts down `remaining`.
  struct Slot {
    std::atomic<uint64_t> gen{0};
    size_t arg = 0;
    std::string error;
    // Keep neighbouring slots off one cache line: gen is hammered by the
    // spin loops of two threads.
    char pad[64];
  };

  Body body;
  int spin_limit = 1;
  std::vector<std::unique_ptr<Slot>> slots;
  std::atomic<size_t> remaining{0};
  std::atomic<bool> stopping{false};
  std::mutex mu;
  std::condition_variable work_cv;  // workers park here between windows
  std::condition_variable done_cv;  // the dispatcher parks here at the barrier
  std::vector<std::thread> workers;

  static void RunBody(const Body& body, size_t arg, std::string* error) {
    try {
      body(arg);
    } catch (const std::exception& e) {
      *error = e.what();
      if (error->empty()) {
        *error = "unknown error";
      }
    } catch (...) {
      *error = "non-standard exception";
    }
  }

  void WorkerLoop(Slot* slot) {
    uint64_t seen = 0;
    int spins = 0;
    for (;;) {
      uint64_t gen = slot->gen.load(std::memory_order_acquire);
      if (gen == seen) {
        if (stopping.load(std::memory_order_acquire)) {
          return;
        }
        if (++spins < spin_limit) {
          continue;
        }
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return slot->gen.load(std::memory_order_acquire) != seen ||
                 stopping.load(std::memory_order_acquire);
        });
        spins = 0;
        continue;
      }
      spins = 0;
      seen = gen;
      RunBody(body, slot->arg, &slot->error);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Pair with the dispatcher's predicate re-check under the mutex so
        // the final count-down can never slip between its check and wait.
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

ShardGang::ShardGang(int workers, Body body) : impl_(std::make_unique<Impl>()) {
  if (workers < 1) {
    workers = 1;
  }
  impl_->body = std::move(body);
  impl_->spin_limit = SpinLimit();
  impl_->slots.reserve(static_cast<size_t>(workers));
  impl_->workers.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    impl_->slots.push_back(std::make_unique<Impl::Slot>());
    Impl::Slot* slot = impl_->slots.back().get();
    impl_->workers.emplace_back([this, slot] { impl_->WorkerLoop(slot); });
  }
}

ShardGang::~ShardGang() {
  impl_->stopping.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) {
    t.join();
  }
}

int ShardGang::worker_count() const { return static_cast<int>(impl_->workers.size()); }

std::string ShardGang::Run(const std::vector<size_t>& args) {
  if (args.empty()) {
    return std::string();
  }
  size_t dispatched = args.size() - 1;
  if (dispatched > impl_->slots.size()) {
    return "shard gang dispatched " + std::to_string(args.size()) + " jobs with only " +
           std::to_string(impl_->slots.size()) + " workers";
  }
  impl_->remaining.store(dispatched, std::memory_order_relaxed);
  for (size_t i = 0; i < dispatched; ++i) {
    Impl::Slot* slot = impl_->slots[i].get();
    slot->arg = args[i + 1];
    slot->error.clear();
    slot->gen.fetch_add(1, std::memory_order_release);
  }
  if (dispatched > 0) {
    // Empty critical section: a worker between its predicate check and
    // wait() holds the mutex, so acquiring it here orders this notify
    // after that worker is actually parked.
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
    }
    impl_->work_cv.notify_all();
  }
  std::string caller_error;
  Impl::RunBody(impl_->body, args[0], &caller_error);
  int spins = 0;
  while (impl_->remaining.load(std::memory_order_acquire) != 0) {
    if (++spins < impl_->spin_limit) {
      continue;
    }
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] {
      return impl_->remaining.load(std::memory_order_acquire) == 0;
    });
    break;
  }
  std::string errors = caller_error;
  for (size_t i = 0; i < dispatched; ++i) {
    const std::string& e = impl_->slots[i]->error;
    if (!e.empty()) {
      if (!errors.empty()) {
        errors += "; ";
      }
      errors += e;
    }
  }
  return errors;
}

double MonotonicMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace escort
