#include "src/sim/parallel.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace escort {

int HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

// Workers pull indices from the current batch under a mutex. The batch
// pointer doubles as the "work available" flag; it is cleared by the last
// worker to finish so the caller can observe completion.
struct ThreadPool::Impl {
  struct Batch {
    size_t count = 0;
    size_t next = 0;
    size_t done = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::vector<JobOutcome>* outcomes = nullptr;
  };

  std::mutex mu;
  std::condition_variable work_cv;   // workers wait here for a batch / stop
  std::condition_variable done_cv;   // RunIndexed waits here for completion
  Batch* batch = nullptr;
  bool stopping = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return stopping || (batch != nullptr && batch->next < batch->count); });
      if (batch == nullptr || batch->next >= batch->count) {
        if (stopping) {
          return;
        }
        continue;
      }
      Batch* b = batch;
      size_t i = b->next++;
      lock.unlock();
      JobOutcome outcome;
      try {
        (*b->fn)(i);
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.error = e.what();
      } catch (...) {
        outcome.ok = false;
        outcome.error = "non-standard exception";
      }
      lock.lock();
      (*b->outcomes)[i] = std::move(outcome);
      if (++b->done == b->count) {
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  int n = threads <= 0 ? HardwareConcurrency() : threads;
  impl_->workers.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) {
    t.join();
  }
}

int ThreadPool::thread_count() const { return static_cast<int>(impl_->workers.size()); }

std::vector<JobOutcome> ThreadPool::RunIndexed(size_t count,
                                               const std::function<void(size_t)>& fn) {
  std::vector<JobOutcome> outcomes(count);
  if (count == 0) {
    return outcomes;
  }
  Impl::Batch batch;
  batch.count = count;
  batch.fn = &fn;
  batch.outcomes = &outcomes;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->batch = &batch;
  }
  impl_->work_cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] { return batch.done == batch.count; });
    impl_->batch = nullptr;
  }
  return outcomes;
}

std::vector<JobOutcome> ParallelFor(int jobs, size_t count,
                                    const std::function<void(size_t)>& fn) {
  ThreadPool pool(jobs);
  return pool.RunIndexed(count, fn);
}

}  // namespace escort
