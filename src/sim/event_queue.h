// Discrete-event queue: the single source of simulated time.
//
// Every actor in the system (the server CPU, network links, the disk, client
// machines) schedules callbacks at absolute cycle times. Events at equal
// times fire in scheduling order (FIFO), which keeps runs deterministic.
//
// Two implementations share one interface:
//
//  * EventQueue — the serial queue. One heap, one clock, a global FIFO
//    sequence for equal-time ties. This is the semantics every unit test
//    pins and the default for all testbeds.
//
//  * ShardedEventQueue — conservative parallel discrete-event simulation
//    for a single cell. Actors are grouped into *streams* (one per client
//    machine / attacker; the server, link and kernel share stream 0), and
//    streams are partitioned across N shards, each with its own heap and
//    local clock. Shards execute concurrently inside conservative lookahead
//    windows derived from the minimum link delivery latency; cross-shard
//    sends are time-stamped mailbox deposits (PostSequenced) drained in
//    deterministic key order at window boundaries.
//
//    Determinism contract: events are totally ordered by the key
//    (when, stream, seq, minor). Stream ids and per-stream sequence numbers
//    depend only on the simulation's causal structure — never on the shard
//    count or thread scheduling — so a run is bit-identical at any N
//    (tests/test_sharded_equivalence.cc is the regression test).

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "src/sim/timer_wheel.h"
#include "src/sim/types.h"

namespace escort {

class MetricsRegistry;
class ShardGang;
class ShardedSeries;

// Tracks which event ids have been consumed (fired or cancelled). Ids are
// dense and monotonically increasing, so instead of one bit per event ever
// scheduled (which grows without bound over million-event runs) the ledger
// keeps a sliding window [base_, base_ + slots_.size()) and drops the
// fully-consumed prefix: any id below base_ is consumed by definition.
// EventId semantics are unchanged — ids are never reused or renumbered.
class ConsumedLedger {
 public:
  // Registers the next id and returns it.
  uint64_t Append() {
    slots_.push_back(false);
    return base_ + slots_.size() - 1;
  }

  // Marks `id` consumed. Returns false if it was already consumed (or was
  // never issued). Compacts the consumed prefix as a side effect.
  bool Mark(uint64_t id) {
    if (id < base_) {
      return false;
    }
    size_t idx = static_cast<size_t>(id - base_);
    if (idx >= slots_.size() || slots_[idx]) {
      return false;
    }
    slots_[idx] = true;
    while (!slots_.empty() && slots_.front()) {
      slots_.pop_front();
      ++base_;
    }
    return true;
  }

  bool IsConsumed(uint64_t id) const {
    if (id < base_) {
      return true;
    }
    size_t idx = static_cast<size_t>(id - base_);
    return idx < slots_.size() && slots_[idx];
  }

  uint64_t next_id() const { return base_ + slots_.size(); }
  // Live window size — bounded by the number of outstanding (unconsumed)
  // events, not by the total ever scheduled.
  size_t slot_count() const { return slots_.size(); }
  uint64_t base() const { return base_; }

 private:
  std::deque<bool> slots_;
  uint64_t base_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;
  // Identity of an actor for deterministic ordering. Stream 0 always
  // exists (the server/kernel/main context); testbeds allocate one stream
  // per client machine via NewStream().
  using StreamId = uint32_t;
  // A sequenced cross-actor transaction body; receives the simulated time
  // at which the transaction was posted.
  using SequencedFn = std::function<void(Cycles send_time)>;

  EventQueue() = default;
  virtual ~EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Only advances inside RunUntil/Step.
  virtual Cycles now() const { return now_; }

  // Stable reference to the clock, for components that need to observe time
  // without holding the whole queue (e.g. the EDF scheduler). On a sharded
  // queue this is the stream-0 shard's clock: only stream-0 code (the
  // kernel and server) may observe it.
  virtual const Cycles& now_ref() const { return now_; }

  // Schedules `fn` to run at absolute time `when`. Times in the past are
  // clamped to `now()`. Returns an id usable with Cancel().
  //
  // Deferred-capture contract (EA001, tools/analyze/escort_analyzer.py):
  // `fn` outlives the current event, so it must not capture raw pointers
  // or references to kernel-lifetime objects (Path, Thread, TcpPcb, ...);
  // capture a value key and revalidate at fire time instead.
  // ESCORT_DEFERRED_API
  virtual EventId ScheduleAt(Cycles when, Callback fn);

  // Schedules `fn` to run `delay` cycles from now.
  // ESCORT_DEFERRED_API
  EventId ScheduleAfter(Cycles delay, Callback fn) {
    return ScheduleAt(now() + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled. Cancellation is O(1); the slot is dropped lazily on pop.
  virtual bool Cancel(EventId id);

  // ---- Timers (hierarchical timer wheel) -------------------------------
  //
  // Per-connection timers (TCP retransmit, delayed ACK, client think time)
  // are armed and cancelled at connection rate: at million-client scale the
  // O(log n) heap churn dominates. ScheduleTimerAt files them into a
  // per-shard hierarchical TimerWheel instead — O(1) arm/cancel/fire — and
  // the queue merges the wheel's due-top against the event heap by the full
  // total-order key (when, stream, seq, minor). A timer consumes exactly
  // one sequence number from the scheduling stream, the same one a
  // ScheduleAt at that point would have consumed, so runs are bit-identical
  // whether a deadline lives in the wheel or the heap (and at any shard
  // count). set_timer_wheel(false) routes timers through ScheduleAt — the
  // equivalence grid pins both modes against each other.
  //
  // TimerId encoding: bit 63 set = heap fallback wrapping the EventId
  // (shard ids stop at bit 61, so the bit is always free); bit 63 clear =
  // wheel: bits 56..62 shard, bits 32..55 wheel entry index, bits 0..31
  // generation tag.
  using TimerId = uint64_t;
  static constexpr TimerId kTimerHeapBit = uint64_t{1} << 63;

  // Same deferred-capture contract as ScheduleAt (EA001).
  // ESCORT_DEFERRED_API
  virtual TimerId ScheduleTimerAt(Cycles when, Callback fn);

  // ESCORT_DEFERRED_API
  TimerId ScheduleTimerAfter(Cycles delay, Callback fn) {
    return ScheduleTimerAt(now() + delay, std::move(fn));
  }

  // Cancels an armed timer. False if it fired, was cancelled, or the wheel
  // slot was re-issued (generation mismatch). O(1).
  virtual bool CancelTimer(TimerId id);

  // Routes ScheduleTimerAt through the heap (legacy path) when off. Flip
  // only at a serial point, before or between runs.
  void set_timer_wheel(bool on) { use_timer_wheel_ = on; }
  bool timer_wheel() const { return use_timer_wheel_; }

  // Registers the "sim.timers_armed" occupancy series in `m` (null
  // detaches): one lane per shard, per-shard (time-bin, delta) appends
  // merged deterministically at serialization (src/sim/metrics.h). Call
  // at a serial point before any timers are armed; zero in heap-fallback
  // mode (timers live in the event heap, like timer_stats()).
  virtual void AttachMetrics(MetricsRegistry* m);

  // Wheel occupancy for the bench `memory` block (aggregated over shards).
  struct TimerWheelStats {
    uint64_t armed = 0;
    uint64_t high_water = 0;
    uint64_t capacity = 0;
    uint64_t bytes_reserved = 0;
  };
  virtual TimerWheelStats timer_stats() const;

  // Fires the next pending event, advancing time to its deadline.
  // Returns false if the queue is empty.
  virtual bool Step();

  // Runs events until `deadline` (inclusive). Time is left at `deadline`
  // even if the queue drains earlier.
  virtual void RunUntil(Cycles deadline);

  // Runs until no events remain.
  virtual void RunToCompletion();

  // Time of the earliest pending event; returns false via `ok` if none.
  virtual bool PeekNext(Cycles* when) const;

  virtual bool empty() const { return pending() == 0; }
  virtual size_t pending() const {
    return live_count_ + (wheel_ != nullptr ? wheel_->armed() : 0);
  }
  virtual uint64_t fired_count() const { return fired_count_; }

  // Size of the consumed-event bookkeeping window (test hook for the
  // prefix-compaction guarantee: bounded by outstanding events, not by
  // events ever scheduled).
  virtual size_t consumed_slot_count() const { return ledger_.slot_count(); }

  // ---- Actor streams (meaningful on ShardedEventQueue; no-ops here) ----

  // Allocates a new stream homed on `shard`. The serial queue keeps every
  // actor on stream 0.
  virtual StreamId NewStream(int shard) {
    (void)shard;
    return 0;
  }

  // Stream whose context is currently executing (or the ambient stream set
  // by a StreamScope during testbed construction).
  virtual StreamId current_stream() const { return 0; }

  // Schedules `fn` to run in the context of `exec_stream` — i.e. events
  // that `fn` itself schedules are ordered as that stream's actions. Used
  // by the shared link to hand a frame delivery to the receiving machine's
  // stream. The serial queue ignores the stream.
  // ESCORT_DEFERRED_API
  virtual EventId ScheduleAtFrom(StreamId exec_stream, Cycles when, Callback fn) {
    (void)exec_stream;
    return ScheduleAt(when, std::move(fn));
  }

  // Posts a sequenced transaction: a body that reads/writes state shared
  // between streams (the wire medium). On the serial queue it runs inline.
  // On a sharded queue it consumes exactly one sequence number from the
  // posting stream at call time; during windows (parallel or inline) the
  // body is deposited in a mailbox and drained at a window boundary in
  // deterministic (time, stream, seq) order — identical to the order the
  // bodies run inline in a serial execution. A body is held past the next
  // boundary if any shard still has a pending event at or before its post
  // time (only possible under adaptive horizons). The body runs at a serial
  // point (EA002 treats it as serial context), but it is still deferred:
  // the EA001 capture contract applies.
  // ESCORT_DEFERRED_API
  virtual void PostSequenced(SequencedFn fn) { fn(now()); }

  // RAII ambient-stream setter for testbed construction: actors created
  // and started inside the scope schedule their events on `stream`.
  class StreamScope {
   public:
    StreamScope(EventQueue* eq, StreamId stream)
        : eq_(eq), prev_(eq->SwapCurrentStream(stream)) {}
    ~StreamScope() { eq_->SwapCurrentStream(prev_); }
    StreamScope(const StreamScope&) = delete;
    StreamScope& operator=(const StreamScope&) = delete;

   private:
    EventQueue* eq_;
    StreamId prev_;
  };

 protected:
  // Swaps the ambient stream used outside event execution; returns the
  // previous value. No-op on the serial queue (everything is stream 0).
  virtual StreamId SwapCurrentStream(StreamId stream) {
    (void)stream;
    return 0;
  }

 protected:
  bool use_timer_wheel_ = true;
  // Wheel-timer occupancy series; null = metrics off (one pointer test
  // per arm/fire/cancel).
  ShardedSeries* timer_series_ = nullptr;

 private:
  struct Event {
    Cycles when;
    uint64_t seq;
    EventId id;
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Skips over cancelled entries at the head of the heap.
  void SkipCancelled() const;
  // True when the wheel's due-top precedes the (compacted) heap top in
  // (when, seq) order; stages the wheel as a side effect.
  bool TimerFirst(TimerKey* tk) const;

  mutable std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  ConsumedLedger ledger_;
  // Lazily created on the first ScheduleTimerAt; mutable because peeks
  // stage due slots (same reasoning as the compacting heap peeks).
  mutable std::unique_ptr<TimerWheel> wheel_;
  Cycles now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  uint64_t fired_count_ = 0;
};

// Per-shard scheduling profile aggregated over a run: the signal needed
// to tune conservative lookahead windows (how long windows are, how many
// shards each one dispatches, how deep the cross-shard mailbox gets).
// Collected unconditionally — every field is maintained at serial points
// of RunUntil, so the cost is a handful of adds per window.
struct ShardProfile {
  struct PerShard {
    uint64_t events_fired = 0;
    // Windows in which the scheduler dispatched this shard (it had a
    // runnable event below its horizon, so a worker was woken or the shard
    // ran inline). The complement (windows_run - windows_woken) is time the
    // shard stayed parked, which costs nothing under the gang scheduler.
    uint64_t windows_woken = 0;
    // Windows in which this shard actually fired at least one event. A
    // woken-but-inactive window is a wasted wakeup: the shard was
    // dispatched but its cap closed before the first event. The wasted
    // fraction 1 - windows_active / windows_woken is the bench
    // `idle_fraction`; participation over the whole run is recoverable as
    // windows_active / windows_run.
    uint64_t windows_active = 0;
  };

  int shards = 0;
  Cycles lookahead = 0;
  uint64_t windows_run = 0;
  uint64_t parallel_windows = 0;
  // Sum over windows of (horizon - window start): mean window length is
  // window_cycles / windows_run.
  Cycles window_cycles = 0;
  // Cross-shard mailbox traffic: total transactions drained, and the
  // largest batch observed at any single drain.
  uint64_t txns_drained = 0;
  uint64_t max_mailbox_depth = 0;
  std::vector<PerShard> per_shard;
};

// Conservative-PDES sharded queue. See the file comment for the design and
// DESIGN.md "Sharded event queue" for the synchronization contract.
class ShardedEventQueue : public EventQueue {
 public:
  // `shards` is clamped to [1, 64]. `lookahead` is the conservative window
  // length in cycles: the minimum latency of any cross-stream interaction
  // (for the testbed: the shortest possible link delivery, see
  // SharedLink::MinDeliveryLatency). 0 degenerates to serial execution.
  // `adaptive` enables per-shard adaptive horizons (see ComputeHorizons);
  // results are bit-identical either way — only window count changes.
  explicit ShardedEventQueue(int shards, Cycles lookahead = 0, bool adaptive = false);
  ~ShardedEventQueue() override;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Cycles lookahead() const { return lookahead_; }
  bool adaptive_lookahead() const { return adaptive_; }
  void set_adaptive_lookahead(bool on) { adaptive_ = on; }

  // Sentinel for "shard has no pending event" in ComputeHorizons input.
  static constexpr Cycles kNoEvent = ~static_cast<Cycles>(0);

  // Window horizon computation, exposed for unit tests (pure function).
  //
  // `earliest[s]` is shard s's earliest pending event time (kNoEvent when
  // empty). Non-adaptive: every shard gets the classic conservative window
  // H = T + lookahead, T = min earliest. Adaptive: shard r's horizon is
  //   H_r = min over s != r, s non-empty, of (earliest[s] + lookahead)
  // i.e. the earliest instant any *other* shard's pending work could make
  // a cross-shard effect land (a send posted at time t delivers at
  // >= t + lookahead). Empty shards are excluded: cross-shard inserts
  // happen only from running shards, and those cap the running window at
  // insert time (see DESIGN.md §6.8 for the correctness argument). With no
  // other non-empty shard, H_r runs to the deadline. All horizons are
  // capped at deadline + 1 (windows execute events with when < H).
  static void ComputeHorizons(const std::vector<Cycles>& earliest, Cycles lookahead,
                              Cycles deadline, bool adaptive, std::vector<Cycles>* horizons);

  Cycles now() const override;
  const Cycles& now_ref() const override;
  EventId ScheduleAt(Cycles when, Callback fn) override;
  EventId ScheduleAtFrom(StreamId exec_stream, Cycles when, Callback fn) override;
  bool Cancel(EventId id) override;
  TimerId ScheduleTimerAt(Cycles when, Callback fn) override;
  bool CancelTimer(TimerId id) override;
  void AttachMetrics(MetricsRegistry* m) override;
  TimerWheelStats timer_stats() const override;
  bool Step() override;
  void RunUntil(Cycles deadline) override;
  void RunToCompletion() override;
  bool PeekNext(Cycles* when) const override;
  bool empty() const override;
  size_t pending() const override;
  uint64_t fired_count() const override;
  size_t consumed_slot_count() const override;

  StreamId NewStream(int shard) override;
  StreamId current_stream() const override;
  void PostSequenced(SequencedFn fn) override;

  // Scheduling introspection (tests): windows executed by RunUntil, and
  // how many of them dispatched 2+ shards onto the pool.
  uint64_t windows_run() const { return windows_run_; }
  uint64_t parallel_windows() const { return parallel_windows_; }

  // Scheduling profile for lookahead tuning (serialized into the bench
  // JSON `shard_utilization` block). Call at a serial point.
  ShardProfile Profile() const;

  // Home shard of a stream (tests).
  int shard_of(StreamId stream) const { return streams_[stream].shard; }

 protected:
  StreamId SwapCurrentStream(StreamId stream) override;

 private:
  // Total order over all events; independent of shard count by
  // construction (streams and seqs are assigned causally, minors index
  // deliveries within one sequenced transaction).
  struct Key {
    Cycles when;
    StreamId stream;
    uint64_t seq;
    uint32_t minor;
    bool operator>(const Key& o) const {
      if (when != o.when) return when > o.when;
      if (stream != o.stream) return stream > o.stream;
      if (seq != o.seq) return seq > o.seq;
      return minor > o.minor;
    }
    bool operator<(const Key& o) const { return o > *this; }
  };

  struct Event {
    Key key;
    EventId id;
    StreamId exec;  // stream whose context runs `fn` (child-event identity)
    Callback fn;
    bool operator>(const Event& o) const { return key > o.key; }
  };

  // Min-heap over Key with a pre-reserved backing vector: shard heaps churn
  // tens of thousands of push/pop pairs per cell, and std::priority_queue
  // neither reserves nor lets an event be moved out of the top slot.
  class EventHeap {
   public:
    EventHeap() { events_.reserve(kReserve); }
    bool empty() const { return events_.empty(); }
    const Event& top() const { return events_.front(); }
    void push(Event ev) {
      events_.push_back(std::move(ev));
      std::push_heap(events_.begin(), events_.end(), Later());
    }
    // Removes and returns the minimum-key event.
    Event pop() {
      std::pop_heap(events_.begin(), events_.end(), Later());
      Event ev = std::move(events_.back());
      events_.pop_back();
      return ev;
    }

   private:
    struct Later {
      bool operator()(const Event& a, const Event& b) const { return a.key > b.key; }
    };
    static constexpr size_t kReserve = 256;
    std::vector<Event> events_;
  };

  struct Shard {
    mutable EventHeap heap;
    mutable ConsumedLedger ledger;
    // Per-shard timer wheel, lazily created on the first timer arm.
    // Touched only by the thread running this shard (or at serial points);
    // mutable because peeks stage due slots, like the compacting heap
    // peeks above.
    mutable std::unique_ptr<TimerWheel> wheel;
    Cycles clock = 0;
    size_t live = 0;
    uint64_t fired = 0;
    uint64_t windows_woken = 0;   // windows this shard was dispatched in
    uint64_t windows_active = 0;  // windows this shard fired >= 1 event in
    // Current window bounds. `window_horizon` is fixed at the window's
    // serial point; `window_cap` shrinks at runtime when this shard's own
    // activity bounds how far it may safely run (a posted send, or a
    // cross-shard insert observed while running inline). Both are written
    // only at serial points or by the thread running this shard.
    Cycles window_horizon = 0;
    Cycles window_cap = 0;
  };

  struct Stream {
    int shard = 0;
    uint64_t next_seq = 0;
  };

  // A deposited cross-stream transaction, drained in Key order.
  struct Txn {
    Cycles when;
    StreamId stream;
    uint64_t seq;
    SequencedFn fn;
  };

  static constexpr int kShardShift = 56;  // EventId = shard << 56 | local id

  bool PeekShard(size_t s, Key* key) const;
  bool GlobalPeek(size_t* shard, Key* key) const;
  EventId Insert(size_t shard, Key key, StreamId exec, Callback fn);
  // Window-cap / drain-floor bookkeeping shared by heap inserts and wheel
  // arms (both make a pending deadline visible to the scheduler).
  void NoteInsert(size_t shard, Cycles when);
  // True when shard s's wheel due-top precedes its (compacted) heap top.
  bool TimerFirst(const Shard& sh, TimerKey* tk) const;
  // Pops and runs the head of shard `s` (caller guarantees it exists).
  void ExecuteTop(size_t s);
  // Runs every event of shard `s` with key.when < min(window_horizon,
  // window_cap) — the bounds set up by RunUntil for the current window.
  void RunShardWindow(size_t s);
  // Runs deposited transactions in deterministic key order (serial points
  // only — never while workers run).
  void DrainTransactions();
  void RunTxn(Txn& txn);

  std::vector<Shard> shards_;
  std::vector<Stream> streams_;
  StreamId main_stream_ = 0;  // ambient stream outside event execution
  Cycles now_floor_ = 0;      // committed global time (main-context now())
  Cycles lookahead_ = 0;
  bool adaptive_ = false;
  std::vector<Txn> txns_;
  std::mutex txn_mu_;
  std::unique_ptr<ShardGang> gang_;
  bool in_parallel_window_ = false;
  // Shard whose window is currently running inline on this thread (-1
  // outside inline windows). Lets Insert() spot a cross-shard insert and
  // cap the running window so the target's new event is never overtaken.
  int inline_window_shard_ = -1;
  // Scratch buffers reused across windows (hot path: no per-window
  // allocation).
  std::vector<Cycles> earliest_;
  std::vector<Cycles> horizons_;
  std::vector<size_t> active_;
  // Sorted transactions awaiting release. A drain runs only the prefix
  // whose `when` precedes every pending event (the release floor) — under
  // adaptive horizons a shard that stopped early may still post
  // earlier-keyed transactions in a later window. Conservative boundaries
  // always release everything.
  std::vector<Txn> held_txns_;
  // Set while DrainTransactions runs released bodies; Insert() lowers
  // drain_floor_ when a body schedules an event below it.
  bool draining_ = false;
  Cycles drain_floor_ = 0;
  uint64_t windows_run_ = 0;
  uint64_t parallel_windows_ = 0;
  Cycles window_cycles_ = 0;       // sum of window lengths (horizon - T)
  uint64_t txns_drained_ = 0;      // mailbox transactions run at drains
  uint64_t max_mailbox_depth_ = 0;  // largest single drain batch
};

}  // namespace escort

#endif  // SRC_SIM_EVENT_QUEUE_H_
