// Discrete-event queue: the single source of simulated time.
//
// Every actor in the system (the server CPU, network links, the disk, client
// machines) schedules callbacks at absolute cycle times. Events at equal
// times fire in scheduling order (FIFO), which keeps runs deterministic.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/types.h"

namespace escort {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Current simulated time. Only advances inside RunUntil/Step.
  Cycles now() const { return now_; }

  // Stable reference to the clock, for components that need to observe time
  // without holding the whole queue (e.g. the EDF scheduler).
  const Cycles& now_ref() const { return now_; }

  // Schedules `fn` to run at absolute time `when`. Times in the past are
  // clamped to `now()`. Returns an id usable with Cancel().
  EventId ScheduleAt(Cycles when, Callback fn);

  // Schedules `fn` to run `delay` cycles from now.
  EventId ScheduleAfter(Cycles delay, Callback fn) { return ScheduleAt(now_ + delay, std::move(fn)); }

  // Cancels a pending event. Returns false if it already fired or was
  // cancelled. Cancellation is O(1); the slot is dropped lazily on pop.
  bool Cancel(EventId id);

  // Fires the next pending event, advancing time to its deadline.
  // Returns false if the queue is empty.
  bool Step();

  // Runs events until `deadline` (inclusive). Time is left at `deadline`
  // even if the queue drains earlier.
  void RunUntil(Cycles deadline);

  // Runs until no events remain.
  void RunToCompletion();

  // Time of the earliest pending event; returns false via `ok` if none.
  bool PeekNext(Cycles* when) const;

  bool empty() const { return live_count_ == 0; }
  size_t pending() const { return live_count_; }
  uint64_t fired_count() const { return fired_count_; }

 private:
  struct Event {
    Cycles when;
    uint64_t seq;
    EventId id;
    Callback fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Skips over cancelled entries at the head of the heap.
  void SkipCancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  mutable std::vector<bool> cancelled_;  // indexed by EventId
  Cycles now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 0;
  size_t live_count_ = 0;
  uint64_t fired_count_ = 0;
};

}  // namespace escort

#endif  // SRC_SIM_EVENT_QUEUE_H_
