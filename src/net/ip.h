// IP: the IPv4 module.
//
// The routing table is module state stored in IP's protection domain —
// the canonical example in the paper of a resource that cannot be charged
// to any individual flow and is therefore owned by the domain. Paths
// executing IP code have access to it; if the domain dies, all paths
// crossing IP die with it.

#ifndef SRC_NET_IP_H_
#define SRC_NET_IP_H_

#include <cstdint>
#include <vector>

#include "src/net/arp.h"
#include "src/net/headers.h"
#include "src/path/path.h"

namespace escort {

struct Route {
  Subnet dest;
  Ip4Addr gateway;   // 0 => on-link
  int metric = 0;
};

class RoutingTable {
 public:
  void Add(Route route) { routes_.push_back(route); }

  // Longest-prefix match; returns the next hop for `dst` (dst itself when
  // on-link) or nullopt when unroutable.
  std::optional<Ip4Addr> Lookup(Ip4Addr dst) const;

  size_t size() const { return routes_.size(); }

 private:
  std::vector<Route> routes_;
};

class IpModule : public Module {
 public:
  explicit IpModule(Ip4Addr our_ip)
      : Module("IP", {ServiceInterface::kAsyncIo}), our_ip_(our_ip) {}

  Ip4Addr our_ip() const { return our_ip_; }
  RoutingTable& routes() { return routes_; }

  void SetNeighbors(Module* tcp, ArpModule* arp) {
    tcp_ = tcp;
    arp_ = arp;
  }

  OpenResult Open(Path* path, const Attributes& attrs) override;
  DemuxDecision Demux(const Message& msg) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t rx_count() const { return rx_; }
  uint64_t tx_count() const { return tx_; }
  uint64_t checksum_failures() const { return checksum_failures_; }
  uint64_t unroutable() const { return unroutable_; }

  // Packs (src, dst) addresses into a message aux word for the TCP layer.
  static uint64_t PackAddrs(Ip4Addr src, Ip4Addr dst) {
    return (static_cast<uint64_t>(src.value) << 32) | dst.value;
  }
  static Ip4Addr AuxSrc(uint64_t aux) { return Ip4Addr{static_cast<uint32_t>(aux >> 32)}; }
  static Ip4Addr AuxDst(uint64_t aux) { return Ip4Addr{static_cast<uint32_t>(aux)}; }

 private:
  const Ip4Addr our_ip_;
  RoutingTable routes_;
  Module* tcp_ = nullptr;
  ArpModule* arp_ = nullptr;
  uint16_t next_id_ = 1;
  uint64_t rx_ = 0;
  uint64_t tx_ = 0;
  uint64_t checksum_failures_ = 0;
  uint64_t unroutable_ = 0;
};

}  // namespace escort

#endif  // SRC_NET_IP_H_
