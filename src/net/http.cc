#include "src/net/http.h"

#include <cstring>

#include "src/path/path_manager.h"

namespace escort {

HttpRequest ParseRequestLine(const std::string& text) {
  HttpRequest req;
  size_t eol = text.find("\r\n");
  if (eol == std::string::npos) {
    return req;
  }
  std::string line = text.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) {
    return req;
  }
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    return req;
  }
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  req.valid = !req.method.empty() && !req.target.empty() &&
              req.version.rfind("HTTP/", 0) == 0;
  return req;
}

OpenResult HttpServerModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.state = std::make_unique<HttpState>();
  r.next = above_;
  return r;
}

void HttpServerModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  auto* st = stage.state_as<HttpState>();
  if (st == nullptr) {
    return;
  }

  if (dir == Direction::kDown) {
    // Reply coming back from FS/CGI.
    if (msg.kind == MsgKind::kFileData) {
      const uint8_t* data = msg.Data(pd());
      if (data == nullptr) {
        SendResponse(stage, 500, "Internal Server Error", nullptr, 0, true);
        return;
      }
      SendResponse(stage, 200, "OK", data, msg.size(), true);
    } else if (msg.kind == MsgKind::kFileError) {
      SendResponse(stage, 404, "Not Found", nullptr, 0, true);
    }
    return;
  }

  // Up: request bytes from TCP.
  const uint8_t* data = msg.Data(pd());
  if (data == nullptr || st->dispatched) {
    return;
  }
  kernel()->Consume(msg.size() * kernel()->costs().per_byte_touch);
  st->reqbuf.append(reinterpret_cast<const char*>(data), msg.size());
  if (st->reqbuf.find("\r\n\r\n") == std::string::npos) {
    return;  // headers not complete yet
  }

  kernel()->ConsumeCharged(kernel()->costs().http_parse);
  HttpRequest req = ParseRequestLine(st->reqbuf);
  ++requests_;
  st->dispatched = true;
  if (!req.valid || req.method != "GET") {
    SendResponse(stage, 400, "Bad Request", nullptr, 0, true);
    return;
  }
  st->target = req.target;

  if (req.target.rfind("/cgi-bin/", 0) == 0) {
    Message cgi_req = std::move(msg);
    cgi_req.kind = MsgKind::kCgiRequest;
    cgi_req.note = req.target;
    stage.path->ForwardUp(stage, std::move(cgi_req));
    return;
  }

  if (req.target == "/stream") {
    StartStream(stage);
    return;
  }

  Message file_req = std::move(msg);
  file_req.kind = MsgKind::kFileRequest;
  file_req.note = req.target;
  stage.path->ForwardUp(stage, std::move(file_req));
}

void HttpServerModule::SendResponse(Stage& stage, int status, const std::string& reason,
                                    const uint8_t* body, uint64_t body_len, bool close) {
  kernel()->ConsumeCharged(kernel()->costs().http_respond);
  std::string hdr = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                    "\r\nServer: Escort/1.0\r\nContent-Length: " + std::to_string(body_len) +
                    "\r\n\r\n";
  if (status == 200) {
    ++responses_;
  } else {
    ++errors_;
  }
  // Header and body go down as one application write when they fit one
  // buffer; large bodies are handed over in buffer-sized pieces and TCP
  // segments them against the congestion window.
  SendToTcp(stage, MsgKind::kTcpSend, reinterpret_cast<const uint8_t*>(hdr.data()), hdr.size());
  uint64_t off = 0;
  while (off < body_len) {
    uint64_t chunk = std::min<uint64_t>(body_len - off, 4096);
    SendToTcp(stage, MsgKind::kTcpSend, body + off, chunk);
    off += chunk;
  }
  if (close) {
    Message fin;
    // An empty close marker needs no buffer.
    Message marker = Message::Alloc(kernel(), stage.path, pd(), stage.path->StageDomains(), 1, 0);
    if (marker.valid()) {
      marker.kind = MsgKind::kConnClose;
      stage.path->ForwardDown(stage, std::move(marker));
    }
    (void)fin;
  }
}

void HttpServerModule::SendToTcp(Stage& stage, MsgKind kind, const uint8_t* data, uint64_t len) {
  Message msg = Message::Alloc(kernel(), stage.path, pd(), stage.path->StageDomains(), len, 0);
  if (!msg.valid()) {
    return;
  }
  if (data != nullptr && len > 0) {
    msg.Append(pd(), data, len);
    kernel()->Consume(len * kernel()->costs().per_byte_touch);
  }
  msg.kind = kind;
  stage.path->ForwardDown(stage, std::move(msg));
}

void HttpServerModule::StartStream(Stage& stage) {
  auto* st = stage.state_as<HttpState>();
  st->streaming = true;
  ++streams_;
  // QoS policy: this path now carries a guaranteed stream. Give it the
  // reserved ticket allocation, relabel its accounting, and lift the
  // runaway budget (it yields at every hop).
  stage.path->sched().tickets = qos_tickets;
  stage.path->set_max_thread_run(0);
  kernel()->RegisterOwner(stage.path, "QoS Path");
  // Response header first.
  std::string hdr = "HTTP/1.0 200 OK\r\nServer: Escort/1.0\r\nContent-Type: video/stream\r\n\r\n";
  SendToTcp(stage, MsgKind::kTcpSend, reinterpret_cast<const uint8_t*>(hdr.data()), hdr.size());

  // The stream generator: a periodic kernel event *owned by the path*, so
  // both its dispatch cycles and the chunks it produces are charged to the
  // QoS path, and it dies with the path.
  double period_sec = static_cast<double>(stream_chunk) / static_cast<double>(stream_bytes_per_sec);
  Cycles period = CyclesFromSeconds(period_sec);
  Path* path = stage.path;
  Stage* stage_ptr = &stage;
  std::vector<uint8_t> chunk(stream_chunk, 'S');
  kernel()->RegisterEvent(
      path, "stream-gen", period, period, kernel()->costs().http_respond / 4, pd(),
      // NOLINT-EA001(the KernelEvent is path-owned: UnregisterOwner cancels it at pathKill, so the closure cannot fire after reclaim)
      [this, path, stage_ptr, chunk = std::move(chunk)] {
        if (path->destroyed()) {
          return;
        }
        ++chunks_generated_;
        Message msg = Message::Alloc(kernel(), path, pd(), path->StageDomains(), chunk.size(), 0);
        if (!msg.valid()) {
          ++chunks_dropped_;
          return;
        }
        msg.Append(pd(), chunk.data(), chunk.size());
        kernel()->Consume(chunk.size() * kernel()->costs().per_byte_touch);
        msg.kind = MsgKind::kStreamChunk;
        path->ForwardDown(*stage_ptr, std::move(msg));
      });
}

Cycles HttpServerModule::ProcessCost(Direction /*dir*/) const {
  return kernel()->costs().http_parse / 4;
}

}  // namespace escort
