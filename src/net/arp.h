// ARP: address-resolution module.
//
// Keeps the IP -> MAC table as module state (accessible to every path
// crossing the module), answers requests for our address, and learns from
// replies. At boot it creates the ARP path ([ETH, ARP]) that request/reply
// traffic travels on.

#ifndef SRC_NET_ARP_H_
#define SRC_NET_ARP_H_

#include <map>
#include <optional>

#include "src/net/headers.h"
#include "src/path/path.h"

namespace escort {

class ArpModule : public Module {
 public:
  ArpModule(Ip4Addr our_ip, MacAddr our_mac)
      : Module("ARP", {ServiceInterface::kAsyncIo, ServiceInterface::kNameResolution}),
        our_ip_(our_ip),
        our_mac_(our_mac) {}

  void Init() override;

  // Name-resolution service used by IP.
  std::optional<MacAddr> Resolve(Ip4Addr ip) const;
  void AddEntry(Ip4Addr ip, MacAddr mac) { table_[ip] = mac; }
  size_t table_size() const { return table_.size(); }

  // Sends an ARP request for `ip` (fire and forget; the reply populates the
  // table).
  void SendRequest(Ip4Addr ip);

  OpenResult Open(Path* path, const Attributes& attrs) override;
  DemuxDecision Demux(const Message& msg) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  Path* arp_path() { return arp_path_; }
  uint64_t requests_answered() const { return answered_; }
  uint64_t replies_learned() const { return learned_; }

 private:
  Message NewArpMessage(Path* path, const ArpPacket& pkt, MacAddr dst);

  const Ip4Addr our_ip_;
  const MacAddr our_mac_;
  std::map<Ip4Addr, MacAddr> table_;
  Path* arp_path_ = nullptr;
  uint64_t answered_ = 0;
  uint64_t learned_ = 0;
};

}  // namespace escort

#endif  // SRC_NET_ARP_H_
