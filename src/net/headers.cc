#include "src/net/headers.h"

#include <cstring>

#include "src/elib/byte_io.h"

namespace escort {

namespace {

// Builds the TCP/IPv4 pseudo-header partial checksum.
uint32_t PseudoHeaderSum(Ip4Addr src, Ip4Addr dst, uint16_t tcp_len) {
  uint8_t pseudo[12];
  PutU32(pseudo, src.value);
  PutU32(pseudo + 4, dst.value);
  pseudo[8] = 0;
  pseudo[9] = kIpProtoTcp;
  PutU16(pseudo + 10, tcp_len);
  return ChecksumPartial(pseudo, sizeof(pseudo));
}

}  // namespace

// --- Ethernet ---------------------------------------------------------------

void SerializeEthHeader(const EthHeader& hdr, uint8_t out[kEthHeaderLen]) {
  std::memcpy(out, hdr.dst.bytes.data(), 6);
  std::memcpy(out + 6, hdr.src.bytes.data(), 6);
  PutU16(out + 12, hdr.ethertype);
}

void SerializeIpHeader(const Ip4Header& hdr, uint64_t payload_len, uint8_t out[kIpHeaderLen]) {
  uint16_t total_len = static_cast<uint16_t>(kIpHeaderLen + payload_len);
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = 0;     // TOS
  PutU16(out + 2, total_len);
  PutU16(out + 4, hdr.id);
  PutU16(out + 6, 0);
  out[8] = hdr.ttl;
  out[9] = hdr.protocol;
  PutU16(out + 10, 0);
  PutU32(out + 12, hdr.src.value);
  PutU32(out + 16, hdr.dst.value);
  PutU16(out + 10, InternetChecksum(out, kIpHeaderLen));
}

bool WriteEthHeader(Message& msg, PdId pd, const EthHeader& hdr) {
  uint8_t bytes[kEthHeaderLen];
  SerializeEthHeader(hdr, bytes);
  return msg.Prepend(pd, bytes, kEthHeaderLen);
}

std::optional<EthHeader> ParseEthHeader(const Message& msg, PdId pd) {
  const uint8_t* p = msg.Data(pd);
  if (p == nullptr || msg.size() < kEthHeaderLen) {
    return std::nullopt;
  }
  EthHeader hdr;
  std::memcpy(hdr.dst.bytes.data(), p, 6);
  std::memcpy(hdr.src.bytes.data(), p + 6, 6);
  hdr.ethertype = GetU16(p + 12);
  return hdr;
}

// --- ARP ---------------------------------------------------------------------

bool WriteArpPacket(Message& msg, PdId pd, const ArpPacket& pkt) {
  uint8_t bytes[kArpPacketLen];
  PutU16(bytes, 1);       // htype: Ethernet
  PutU16(bytes + 2, kEtherTypeIp);
  bytes[4] = 6;           // hlen
  bytes[5] = 4;           // plen
  PutU16(bytes + 6, pkt.opcode);
  std::memcpy(bytes + 8, pkt.sender_mac.bytes.data(), 6);
  PutU32(bytes + 14, pkt.sender_ip.value);
  std::memcpy(bytes + 18, pkt.target_mac.bytes.data(), 6);
  PutU32(bytes + 24, pkt.target_ip.value);
  return msg.Append(pd, bytes, kArpPacketLen);
}

std::optional<ArpPacket> ParseArpPacket(const Message& msg, PdId pd) {
  const uint8_t* p = msg.Data(pd);
  if (p == nullptr || msg.size() < kArpPacketLen) {
    return std::nullopt;
  }
  if (GetU16(p) != 1 || GetU16(p + 2) != kEtherTypeIp || p[4] != 6 || p[5] != 4) {
    return std::nullopt;
  }
  ArpPacket pkt;
  pkt.opcode = GetU16(p + 6);
  std::memcpy(pkt.sender_mac.bytes.data(), p + 8, 6);
  pkt.sender_ip.value = GetU32(p + 14);
  std::memcpy(pkt.target_mac.bytes.data(), p + 18, 6);
  pkt.target_ip.value = GetU32(p + 24);
  return pkt;
}

// --- IPv4 ---------------------------------------------------------------------

bool WriteIpHeader(Message& msg, PdId pd, const Ip4Header& hdr) {
  uint8_t bytes[kIpHeaderLen];
  SerializeIpHeader(hdr, msg.size(), bytes);
  return msg.Prepend(pd, bytes, kIpHeaderLen);
}

std::optional<Ip4Header> ParseIpHeader(const Message& msg, PdId pd) {
  const uint8_t* p = msg.Data(pd);
  if (p == nullptr || msg.size() < kIpHeaderLen) {
    return std::nullopt;
  }
  if ((p[0] >> 4) != 4 || (p[0] & 0x0f) != 5) {
    return std::nullopt;
  }
  Ip4Header hdr;
  hdr.total_length = GetU16(p + 2);
  hdr.id = GetU16(p + 4);
  hdr.ttl = p[8];
  hdr.protocol = p[9];
  hdr.src.value = GetU32(p + 12);
  hdr.dst.value = GetU32(p + 16);
  hdr.checksum_ok = InternetChecksum(p, kIpHeaderLen) == 0;
  return hdr;
}

// --- TCP ----------------------------------------------------------------------

bool WriteTcpHeader(Message& msg, PdId pd, const TcpHeader& hdr, Ip4Addr src, Ip4Addr dst) {
  uint16_t tcp_len = static_cast<uint16_t>(kTcpHeaderLen + msg.size());
  uint8_t bytes[kTcpHeaderLen];
  PutU16(bytes, hdr.src_port);
  PutU16(bytes + 2, hdr.dst_port);
  PutU32(bytes + 4, hdr.seq);
  PutU32(bytes + 8, hdr.ack);
  bytes[12] = 5 << 4;  // data offset 5 words
  bytes[13] = hdr.flags;
  PutU16(bytes + 14, hdr.window);
  PutU16(bytes + 16, 0);  // checksum placeholder
  PutU16(bytes + 18, 0);  // urgent pointer
  // Checksum covers pseudo-header + TCP header + payload.
  uint32_t acc = PseudoHeaderSum(src, dst, tcp_len);
  acc = ChecksumPartial(bytes, kTcpHeaderLen, acc);
  const uint8_t* payload = msg.Data(pd);
  if (payload != nullptr) {
    acc = ChecksumPartial(payload, msg.size(), acc);
  }
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  PutU16(bytes + 16, static_cast<uint16_t>(~acc));
  return msg.Prepend(pd, bytes, kTcpHeaderLen);
}

std::optional<TcpHeader> ParseTcpHeader(const Message& msg, PdId pd, Ip4Addr src, Ip4Addr dst) {
  const uint8_t* p = msg.Data(pd);
  if (p == nullptr || msg.size() < kTcpHeaderLen) {
    return std::nullopt;
  }
  TcpHeader hdr;
  hdr.src_port = GetU16(p);
  hdr.dst_port = GetU16(p + 2);
  hdr.seq = GetU32(p + 4);
  hdr.ack = GetU32(p + 8);
  hdr.flags = p[13];
  hdr.window = GetU16(p + 14);
  uint32_t acc = PseudoHeaderSum(src, dst, static_cast<uint16_t>(msg.size()));
  acc = ChecksumPartial(p, msg.size(), acc);
  while (acc >> 16) {
    acc = (acc & 0xffff) + (acc >> 16);
  }
  hdr.checksum_ok = static_cast<uint16_t>(~acc) == 0;
  return hdr;
}

}  // namespace escort
