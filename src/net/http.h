// HTTP: the web-server application module.
//
// Parses HTTP/1.0 requests arriving from TCP, dispatches them — static
// documents to the file system (through the CGI stage, which passes file
// traffic through), CGI targets to the CGI module, and the /stream target
// to the QoS stream generator — and formats responses.

#ifndef SRC_NET_HTTP_H_
#define SRC_NET_HTTP_H_

#include <cstdint>
#include <string>

#include "src/path/path.h"

namespace escort {

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  bool valid = false;
};

// Parses the request line of an HTTP request. Exposed for tests.
HttpRequest ParseRequestLine(const std::string& text);

class HttpServerModule : public Module {
 public:
  HttpServerModule() : Module("HTTP", {ServiceInterface::kAsyncIo, ServiceInterface::kFileAccess}) {}

  void SetNeighbors(Module* tcp_below, Module* above) {
    tcp_ = tcp_below;
    above_ = above;
  }

  // QoS streaming parameters for the /stream target.
  uint64_t stream_bytes_per_sec = 1'000'000;  // the paper's 1 MB/s stream
  uint32_t stream_chunk = 1460;
  // Proportional-share reservation applied to a path once it starts
  // streaming (the QoS policy).
  uint64_t qos_tickets = 12'000;

  OpenResult Open(Path* path, const Attributes& attrs) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t requests_parsed() const { return requests_; }
  uint64_t responses_sent() const { return responses_; }
  uint64_t errors_sent() const { return errors_; }
  uint64_t streams_started() const { return streams_; }
  uint64_t stream_chunks_generated() const { return chunks_generated_; }
  uint64_t stream_chunks_dropped() const { return chunks_dropped_; }

 private:
  struct HttpState : StageState {
    std::string reqbuf;
    bool dispatched = false;
    bool streaming = false;
    std::string target;
  };

  void SendResponse(Stage& stage, int status, const std::string& reason, const uint8_t* body,
                    uint64_t body_len, bool close);
  void SendToTcp(Stage& stage, MsgKind kind, const uint8_t* data, uint64_t len);
  void StartStream(Stage& stage);

  Module* tcp_ = nullptr;
  Module* above_ = nullptr;  // CGI (which forwards file traffic to FS)
  uint64_t chunks_generated_ = 0;
  uint64_t chunks_dropped_ = 0;
  uint64_t requests_ = 0;
  uint64_t responses_ = 0;
  uint64_t errors_ = 0;
  uint64_t streams_ = 0;
};

}  // namespace escort

#endif  // SRC_NET_HTTP_H_
