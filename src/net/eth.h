// ETH: the Ethernet device-driver module.
//
// The driver owns the NIC: frames arriving from the wire enter the system
// here (interrupt + incremental demux), and transmit messages leave through
// it. The wire itself is provided by the workload layer as a transmit
// callback (see src/workload/network.h).

#ifndef SRC_NET_ETH_H_
#define SRC_NET_ETH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/headers.h"
#include "src/path/path.h"

namespace escort {

// Packs a MAC address into a message aux word (IP -> ETH next-hop handoff).
uint64_t MacToAux(const MacAddr& mac);
MacAddr MacFromAux(uint64_t aux);

class EthDriverModule : public Module {
 public:
  EthDriverModule(MacAddr mac)
      : Module("ETH", {ServiceInterface::kAsyncIo}), mac_(mac) {}

  MacAddr mac() const { return mac_; }

  // Wiring done by the configuration layer.
  void SetUpstream(Module* ip, Module* arp) {
    ip_ = ip;
    arp_ = arp;
  }
  void SetTransmit(std::function<void(std::vector<uint8_t>)> tx) { transmit_ = std::move(tx); }

  // Entry point from the wire (called by the simulated link at frame
  // arrival time). Performs incremental demux and schedules delivery.
  void ReceiveFrame(const std::vector<uint8_t>& frame);

  // Module interface -----------------------------------------------------
  OpenResult Open(Path* path, const Attributes& attrs) override;
  DemuxDecision Demux(const Message& msg) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  uint64_t frames_received() const { return frames_rx_; }
  uint64_t frames_transmitted() const { return frames_tx_; }

 private:
  const MacAddr mac_;
  Module* ip_ = nullptr;
  Module* arp_ = nullptr;
  std::function<void(std::vector<uint8_t>)> transmit_;
  uint64_t frames_rx_ = 0;
  uint64_t frames_tx_ = 0;
};

}  // namespace escort

#endif  // SRC_NET_ETH_H_
