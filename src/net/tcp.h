// TCP module.
//
// Implements the transport for the Escort web server: listeners backed by
// *passive paths* (which receive only connection-setup messages), one
// *active path* per established connection, a per-connection PCB as the TCP
// stage state, slow-start congestion control, and the TCP *master event* —
// the periodic timer owned by TCP's protection domain that scans PCBs for
// retransmission, SYN_RECVD and TIME_WAIT deadlines (its cycles are the
// "TCP Master Event" row of Table 1).
//
// DoS hooks (paper §4.4.1): each listener carries a subnet filter and a
// SYN_RECVD budget; the budget is enforced at *demux time*, so a SYN flood
// is rejected as early as possible, before any resources are committed.

#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/elib/slab.h"
#include "src/net/headers.h"
#include "src/path/path.h"

namespace escort {

class MetricCounter;
class MetricGauge;
class MetricHistogram;
class PathManager;

enum class TcpState {
  kListen,
  kSynRecvd,
  kEstablished,
  kFinWait1,   // we sent FIN, waiting for its ACK
  kFinWait2,   // our FIN acked, waiting for peer FIN
  kCloseWait,  // peer sent FIN first; we still may send
  kLastAck,    // peer closed, we sent FIN, waiting for final ACK
  kTimeWait,
  kClosed,
};

const char* TcpStateName(TcpState s);

// Terminal classification of a connection attempt, reported through
// TcpModule::conn_outcome_hook at the moment the module gives up on (or
// completes) the connection. Detection policies (src/server/detect.h) fold
// these into per-subnet sequential tests: kCompleted is the "benign"
// observation, everything else counts against the source.
enum class TcpConnOutcome {
  kCompleted,        // clean close (FIN handshake finished, either side)
  kAborted,          // RST from the peer, or retransmit exhaustion
  kHalfOpenExpired,  // SYN_RECVD deadline passed without the final ACK
  kSynDropped,       // SYN rejected at demux by a listener's SYN budget
  kPathKilled,       // the connection's path was destroyed under it
};

const char* TcpConnOutcomeName(TcpConnOutcome o);

struct TcpListener {
  uint64_t id = 0;
  Path* path = nullptr;  // the passive path
  uint16_t port = 0;
  Subnet subnet;  // source filter: most specific listener wins at demux

  // Demux-time SYN policy (0 = unlimited).
  uint32_t syn_limit = 0;
  uint32_t syn_recvd = 0;  // paths created by this listener still in SYN_RECVD

  // Parameters inherited by the active paths this listener creates.
  std::string active_label = "Main Active Path";
  uint64_t active_tickets = 100;
  Cycles active_max_run = 0;
  int active_priority = 0;

  // Half-open (SYN_RECVD) hold time override for connections accepted by
  // this listener; 0 uses the module default. A long hold on a budgeted
  // untrusted listener slow-walks suspect peers: accepted-SYN rate is
  // budget/hold, so doubling the hold halves the attack's amplification.
  Cycles syn_recvd_timeout = 0;

  // Penalty listeners are never chosen by subnet matching; only a demux
  // override (e.g. the blacklist policy) routes SYNs to them.
  bool penalty = false;

  // Stats.
  uint64_t syns_accepted = 0;
  uint64_t syns_dropped_at_demux = 0;
  uint64_t conns_established = 0;
};

// PCBs live in the module's generation-tagged slab (the classic TCB table):
// the stage holds only a PcbRef, and every deferred closure captures the
// ConnHandle, never a TcpPcb* or a bare ConnKey. The PR 3 retransmit bug
// captured a TcpPcb* into a deferred closure; a key capture still confuses a
// reincarnated connection under the same 4-tuple with the original — the
// handle's generation tag rejects both. Revalidate with TcpModule::Resolve
// at fire time (EA001 idiom). The slot dies with its path (pathKill at any
// time) via the path's kernel cleanup.
// ESCORT_KERNEL_LIFETIME ESCORT_SLAB_SLOT
struct TcpPcb {
  ConnHandle self;  // this PCB's own slab handle
  ConnKey key;
  TcpState state = TcpState::kClosed;
  Path* path = nullptr;
  Stage* stage = nullptr;
  TcpListener* listener = nullptr;

  uint32_t iss = 0;      // our initial seq
  uint32_t irs = 0;      // peer initial seq
  uint32_t snd_una = 0;  // oldest unacknowledged
  uint32_t snd_nxt = 0;
  uint32_t rcv_nxt = 0;
  uint32_t mss = 1460;
  uint32_t cwnd = 0;
  uint32_t ssthresh = 64 * 1024;
  uint16_t peer_window = 0xffff;

  // Send buffer: bytes the application queued; send_base_seq is the
  // sequence number of send_buf[0].
  std::vector<uint8_t> send_buf;
  uint32_t send_base_seq = 0;
  bool close_after_send = false;
  bool fin_sent = false;
  uint32_t fin_seq = 0;

  // Timers (absolute deadlines; 0 = unarmed).
  Cycles retx_deadline = 0;
  Cycles rto = 0;
  int retx_count = 0;
  Cycles syn_recvd_deadline = 0;
  Cycles time_wait_deadline = 0;

  uint64_t segments_in = 0;
  uint64_t segments_out = 0;
  uint64_t retransmits = 0;

  // Sim time the active path was opened (connection-lifetime histogram).
  Cycles created_at = 0;

  // Terminal outcome already reported through conn_outcome_hook (at most
  // one per connection).
  bool outcome_reported = false;

  uint32_t BytesUnacked() const { return snd_nxt - snd_una; }
  uint32_t BytesQueued() const {
    return static_cast<uint32_t>(send_buf.size()) - (snd_una - send_base_seq);
  }
};

class TcpModule : public Module {
 public:
  explicit TcpModule(Ip4Addr local_ip)
      : Module("TCP", {ServiceInterface::kAsyncIo}), local_ip_(local_ip) {}

  void SetNeighbors(Module* ip_below, Module* http_above) {
    ip_ = ip_below;
    http_ = http_above;
  }

  void Init() override;

  // Opens a listener on `port` accepting SYNs from `subnet`. The listener's
  // passive path is created immediately. Listener fields (syn_limit, active
  // path parameters) may be adjusted afterwards through the returned
  // pointer.
  TcpListener* Listen(uint16_t port, Subnet subnet);

  OpenResult Open(Path* path, const Attributes& attrs) override;
  DemuxDecision Demux(const Message& msg) override;
  void Process(Stage& stage, Message msg, Direction dir) override;
  Cycles ProcessCost(Direction dir) const override;

  // Number of live connections (PCBs) and listeners.
  size_t conn_count() const { return conns_.size(); }
  const std::map<ConnKey, ConnHandle>& conns() const { return conns_; }
  const std::vector<std::unique_ptr<TcpListener>>& listeners() const { return listeners_; }
  TcpPcb* FindConn(const ConnKey& key);
  // Handle revalidation: nullptr once the PCB's path was reclaimed (or the
  // slot re-issued to a later connection).
  TcpPcb* Resolve(ConnHandle h) { return pcb_slab_.Find(h); }
  const Slab<TcpPcb>& pcb_slab() const { return pcb_slab_; }

  uint64_t checksum_failures() const { return checksum_failures_; }
  uint64_t total_established() const { return total_established_; }
  uint64_t total_retransmits() const { return total_retransmits_; }
  uint64_t master_event_fires() const { return master_fires_; }

  // Demux-time listener override (side-effect free): consulted before the
  // subnet match; returning non-null steers the SYN to that listener. The
  // blacklist policy (§4.4.4) uses this to penalize repeat offenders.
  std::function<TcpListener*(Ip4Addr src)> listener_override;

  // Connection-outcome hook: fired once per terminal transition with the
  // remote address and a TcpConnOutcome classification (at most once per
  // connection, plus once per demux-time SYN drop). All TCP processing for
  // a machine happens on its home shard, so invocation order is
  // deterministic at any --shards/--jobs setting. The SPRT detector
  // (src/server/detect.h) installs this.
  std::function<void(Ip4Addr remote, TcpConnOutcome outcome)> conn_outcome_hook;

  // Timer parameters (tests shrink these).
  Cycles rto_initial = CyclesFromMillis(200);
  Cycles syn_recvd_timeout = CyclesFromMillis(500);
  Cycles time_wait_duration = CyclesFromMillis(10);
  Cycles master_event_period = CyclesFromMillis(10);

 private:
  friend class TcpStageDestructor;

  struct ListenerState : StageState {
    TcpListener* listener = nullptr;
  };

  // Flyweight stage state: the PCB itself lives in pcb_slab_, the stage
  // carries only the handle.
  struct PcbRef : StageState {
    ConnHandle conn;
  };

  // Passive-path processing: a SYN arrives, create the active path.
  void AcceptSyn(TcpListener* listener, const TcpHeader& syn, Ip4Addr peer);
  // Active-path segment processing.
  void HandleSegment(TcpPcb* pcb, const TcpHeader& hdr, Message payload);
  void HandleAck(TcpPcb* pcb, uint32_t ack);
  // Transmit as much queued data as the congestion window allows.
  void TrySend(TcpPcb* pcb);
  void SendSegment(TcpPcb* pcb, uint8_t flags, uint32_t seq, const uint8_t* payload, uint32_t len);
  void SendAck(TcpPcb* pcb);
  void MaybeSendFin(TcpPcb* pcb);
  void ArmRetx(TcpPcb* pcb);
  void EnterTimeWait(TcpPcb* pcb);
  void CloseAndDestroy(TcpPcb* pcb);
  // Fires conn_outcome_hook exactly once per connection.
  void ReportOutcome(TcpPcb* pcb, TcpConnOutcome outcome);
  // State-machine transition: updates pcb->state and emits a trace instant
  // ("tcp:FROM->TO" on the owning path's track) when a tracer is attached.
  void SetState(TcpPcb* pcb, TcpState next);
  void MasterEventScan();
  void UnregisterConn(TcpPcb* pcb);
  // Resolves a stage's PcbRef through the slab; nullptr for non-PCB stages
  // and stale handles.
  TcpPcb* PcbOf(Stage& stage);

  const Ip4Addr local_ip_;
  Module* ip_ = nullptr;
  Module* http_ = nullptr;

  Slab<TcpPcb> pcb_slab_;
  std::map<ConnKey, ConnHandle> conns_;
  std::vector<std::unique_ptr<TcpListener>> listeners_;
  uint64_t next_listener_id_ = 1;
  uint32_t next_iss_ = 10'000;

  uint64_t checksum_failures_ = 0;
  uint64_t total_established_ = 0;
  uint64_t total_retransmits_ = 0;
  uint64_t master_fires_ = 0;

  // Metric handles, registered in Init() when the kernel carries a
  // registry; null (metrics disabled) costs one pointer test per site.
  MetricCounter* m_outcomes_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
  MetricCounter* m_completed_ = nullptr;
  MetricCounter* m_syns_accepted_ = nullptr;
  MetricCounter* m_syns_dropped_ = nullptr;
  MetricCounter* m_retransmits_ = nullptr;
  MetricGauge* m_half_open_ = nullptr;
  MetricGauge* m_pcb_live_ = nullptr;
  MetricHistogram* m_conn_lifetime_us_ = nullptr;
};

}  // namespace escort

#endif  // SRC_NET_TCP_H_
