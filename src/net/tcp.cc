#include "src/net/tcp.h"

#include <algorithm>

#include "src/net/ip.h"
#include "src/path/path_manager.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"

namespace escort {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynRecvd: return "SYN_RECVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
    case TcpState::kClosed: return "CLOSED";
  }
  return "?";
}

const char* TcpConnOutcomeName(TcpConnOutcome o) {
  switch (o) {
    case TcpConnOutcome::kCompleted: return "completed";
    case TcpConnOutcome::kAborted: return "aborted";
    case TcpConnOutcome::kHalfOpenExpired: return "half-open-expired";
    case TcpConnOutcome::kSynDropped: return "syn-dropped";
    case TcpConnOutcome::kPathKilled: return "path-killed";
  }
  return "?";
}

void TcpModule::ReportOutcome(TcpPcb* pcb, TcpConnOutcome outcome) {
  // At most one terminal outcome per connection: a TIME_WAIT connection
  // counted as completed must not be recounted when its deadline Destroy
  // (or a late RST) tears it down.
  if (pcb->outcome_reported) {
    return;
  }
  pcb->outcome_reported = true;
  MetricAdd(m_outcomes_[static_cast<size_t>(outcome)]);
  if (outcome == TcpConnOutcome::kCompleted) {
    MetricAdd(m_completed_);
    if (m_conn_lifetime_us_ != nullptr && pcb->created_at != 0) {
      const Cycles lifetime = kernel()->now() - pcb->created_at;
      m_conn_lifetime_us_->Observe(lifetime / (kCpuHz / 1'000'000));
    }
  }
  if (conn_outcome_hook) {
    conn_outcome_hook(pcb->key.remote_addr, outcome);
  }
}

void TcpModule::SetState(TcpPcb* pcb, TcpState next) {
  Tracer* t = kernel()->tracer();
  if (t != nullptr && t->lifecycle_enabled() && pcb->path != nullptr &&
      pcb->state != next) {
    t->Instant(kernel()->now(), OwnerTrack(pcb->path->id(), pcb->path->name()),
               std::string("tcp:") + TcpStateName(pcb->state) + "->" + TcpStateName(next),
               "tcp");
  }
  pcb->state = next;
}

void TcpModule::Init() {
  // The TCP master event: owned by the protection domain that contains TCP
  // (paper §4.3.1), it schedules the timeouts of individual connections.
  // The per-connection timeout work is pushed to — and charged to — the
  // connection's path.
  Owner* owner = domain();
  kernel()->RegisterEvent(owner, "tcp-master", master_event_period, master_event_period,
                          kernel()->costs().tcp_master_event, pd(), [this] { MasterEventScan(); });

  if (MetricsRegistry* m = kernel()->metrics(); m != nullptr) {
    for (size_t i = 0; i < 5; ++i) {
      m_outcomes_[i] = ESCORT_METRIC_COUNTER(
          m, std::string("tcp.outcomes.") + TcpConnOutcomeName(static_cast<TcpConnOutcome>(i)),
          "terminal connection outcomes");
    }
    m_completed_ =
        ESCORT_METRIC_COUNTER(m, "tcp.conns_completed", "connections closed cleanly");
    m_syns_accepted_ =
        ESCORT_METRIC_COUNTER(m, "tcp.syns_accepted", "SYNs accepted by a listener");
    m_syns_dropped_ = ESCORT_METRIC_COUNTER(
        m, "tcp.syns_dropped", "SYNs dropped at demux by a listener's budget");
    m_retransmits_ = ESCORT_METRIC_COUNTER(m, "tcp.retransmits", "segments retransmitted");
    m_half_open_ =
        ESCORT_METRIC_GAUGE(m, "tcp.half_open", "connections in SYN_RECVD (backlog)");
    m_pcb_live_ = ESCORT_METRIC_GAUGE(m, "tcp.pcb_live", "live PCB slab slots");
    m_conn_lifetime_us_ = ESCORT_METRIC_HISTOGRAM(
        m, "tcp.conn_lifetime_us", "open-to-clean-close lifetime, microseconds");
  }
}

TcpListener* TcpModule::Listen(uint16_t port, Subnet subnet) {
  auto listener = std::make_unique<TcpListener>();
  listener->id = next_listener_id_++;
  listener->port = port;
  listener->subnet = subnet;
  TcpListener* raw = listener.get();
  listeners_.push_back(std::move(listener));

  Module* eth = paths()->graph()->Find("ETH");
  Attributes attrs;
  attrs.SetStr("role", "tcp-listen");
  attrs.SetInt("listener", raw->id);
  attrs.SetInt("port", port);
  raw->path = paths()->Create(eth, attrs, "Passive SYN Path");
  return raw;
}

OpenResult TcpModule::Open(Path* path, const Attributes& attrs) {
  const std::string role = attrs.GetStrOr("role", "");
  OpenResult r;
  if (role == "tcp-listen") {
    auto state = std::make_unique<ListenerState>();
    uint64_t id = attrs.GetIntOr("listener", 0);
    for (auto& l : listeners_) {
      if (l->id == id) {
        state->listener = l.get();
      }
    }
    if (state->listener == nullptr) {
      return OpenResult::Fail();
    }
    r.ok = true;
    r.state = std::move(state);
    r.next = nullptr;  // passive paths terminate at TCP
    return r;
  }

  if (role == "tcp-active") {
    ConnHandle h = pcb_slab_.Create();
    MetricAdd(m_pcb_live_, int64_t{1});
    TcpPcb* pcb = pcb_slab_.Find(h);
    pcb->self = h;
    pcb->created_at = kernel()->now();
    pcb->key.local_addr = local_ip_;
    pcb->key.local_port = static_cast<uint16_t>(attrs.GetIntOr("lport", 80));
    pcb->key.remote_addr = Ip4Addr{static_cast<uint32_t>(attrs.GetIntOr("raddr", 0))};
    pcb->key.remote_port = static_cast<uint16_t>(attrs.GetIntOr("rport", 0));
    pcb->irs = static_cast<uint32_t>(attrs.GetIntOr("irs", 0));
    pcb->rcv_nxt = pcb->irs + 1;
    pcb->iss = next_iss_;
    next_iss_ += 64'000;
    pcb->snd_una = pcb->iss;
    pcb->snd_nxt = pcb->iss;  // +1 once the SYN-ACK goes out
    pcb->send_base_seq = pcb->iss + 1;
    pcb->mss = static_cast<uint32_t>(attrs.GetIntOr("mss", 1460));
    pcb->cwnd = pcb->mss;  // classic initial window (one segment, pre-RFC2414)
    pcb->state = TcpState::kSynRecvd;
    pcb->syn_recvd_deadline = kernel()->now() + syn_recvd_timeout;  // listener may override below
    pcb->path = path;

    uint64_t listener_id = attrs.GetIntOr("listener", 0);
    for (auto& l : listeners_) {
      if (l->id == listener_id) {
        pcb->listener = l.get();
      }
    }
    if (pcb->listener != nullptr && pcb->listener->syn_recvd_timeout != 0) {
      pcb->syn_recvd_deadline = kernel()->now() + pcb->listener->syn_recvd_timeout;
    }

    conns_[pcb->key] = h;
    // The demux-map registration and the slab slot are kernel-maintained
    // state: both are severed on any reclamation (pathDestroy AND pathKill),
    // so neither the classifier nor a deferred closure can chase a dangling
    // PCB — Release bumps the slot generation and every outstanding handle
    // goes stale with it.
    path->AddKernelCleanup([this, h] {
      if (TcpPcb* dying = pcb_slab_.Find(h); dying != nullptr) {
        // A connection reclaimed without a terminal transition was killed
        // under TCP (pathKill); clean closes and expiries reported theirs
        // already, so the once-only guard makes this a no-op for them.
        ReportOutcome(dying, TcpConnOutcome::kPathKilled);
        UnregisterConn(dying);
      }
      pcb_slab_.Release(h);
      MetricAdd(m_pcb_live_, int64_t{-1});
    });
    auto ref = std::make_unique<PcbRef>();
    ref->conn = h;
    r.ok = true;
    r.state = std::move(ref);
    r.next = http_;
    // The destructor (pathDestroy only) releases the listener's SYN_RECVD
    // slot if still held; unregistration is idempotent and the kernel
    // cleanup repeats it for the pathKill case.
    r.destructor = [this](Path* p, Stage* stage) {
      (void)p;
      auto* dying_ref = static_cast<PcbRef*>(stage->state.get());
      if (TcpPcb* dying = pcb_slab_.Find(dying_ref->conn); dying != nullptr) {
        UnregisterConn(dying);
      }
    };
    return r;
  }

  return OpenResult::Fail();
}

void TcpModule::UnregisterConn(TcpPcb* pcb) {
  if (pcb == nullptr) {
    return;
  }
  if (pcb->state == TcpState::kSynRecvd && pcb->listener != nullptr &&
      pcb->listener->syn_recvd > 0) {
    pcb->listener->syn_recvd -= 1;
    MetricAdd(m_half_open_, int64_t{-1});
  }
  auto it = conns_.find(pcb->key);
  if (it != conns_.end() && it->second == pcb->self) {
    conns_.erase(it);
  }
  SetState(pcb, TcpState::kClosed);
}

TcpPcb* TcpModule::PcbOf(Stage& stage) {
  auto* ref = dynamic_cast<PcbRef*>(stage.state.get());
  return ref == nullptr ? nullptr : pcb_slab_.Find(ref->conn);
}

DemuxDecision TcpModule::Demux(const Message& msg) {
  // Classification over the raw frame: TCP header sits at a fixed offset
  // (no IP options on this wire). Demux is side-effect free.
  const uint8_t* p = msg.Data(pd());
  constexpr size_t kTcpOff = kEthHeaderLen + kIpHeaderLen;
  if (p == nullptr || msg.size() < kTcpOff + kTcpHeaderLen) {
    return DemuxDecision::Drop("tcp-short");
  }
  const uint8_t* ip = p + kEthHeaderLen;
  const uint8_t* tcp = p + kTcpOff;
  ConnKey key;
  key.remote_addr.value = (static_cast<uint32_t>(ip[12]) << 24) |
                          (static_cast<uint32_t>(ip[13]) << 16) |
                          (static_cast<uint32_t>(ip[14]) << 8) | ip[15];
  key.local_addr.value = (static_cast<uint32_t>(ip[16]) << 24) |
                         (static_cast<uint32_t>(ip[17]) << 16) |
                         (static_cast<uint32_t>(ip[18]) << 8) | ip[19];
  key.remote_port = static_cast<uint16_t>((tcp[0] << 8) | tcp[1]);
  key.local_port = static_cast<uint16_t>((tcp[2] << 8) | tcp[3]);
  uint8_t flags = tcp[13];

  auto it = conns_.find(key);
  if (it != conns_.end()) {
    TcpPcb* pcb = pcb_slab_.Find(it->second);
    if (pcb != nullptr && pcb->path != nullptr && !pcb->path->destroyed()) {
      return DemuxDecision::Deliver(pcb->path);
    }
    // Killed path: the map entry is stale; the master event purges it.
    return DemuxDecision::Drop("tcp-dead-conn");
  }

  if ((flags & kTcpSyn) != 0 && (flags & kTcpAck) == 0) {
    // Policy override first (e.g. blacklisted sources go to the penalty
    // listener), then the most specific matching listener.
    TcpListener* best = nullptr;
    if (listener_override) {
      best = listener_override(key.remote_addr);
      if (best != nullptr && best->port != key.local_port) {
        best = nullptr;
      }
    }
    if (best == nullptr) {
      for (const auto& l : listeners_) {
        if (l->penalty || l->port != key.local_port || !l->subnet.Contains(key.remote_addr)) {
          continue;
        }
        if (best == nullptr || l->subnet.prefix_len > best->subnet.prefix_len) {
          best = l.get();
        }
      }
    }
    if (best == nullptr) {
      return DemuxDecision::Drop("tcp-noport");
    }
    if (best->syn_limit != 0 && best->syn_recvd >= best->syn_limit) {
      // The DoS policy decides during demultiplexing: over-budget SYNs are
      // identified as early as possible and dropped instantly.
      best->syns_dropped_at_demux += 1;
      MetricAdd(m_syns_dropped_);
      if (conn_outcome_hook) {
        conn_outcome_hook(key.remote_addr, TcpConnOutcome::kSynDropped);
      }
      return DemuxDecision::Drop("syn-limit");
    }
    return DemuxDecision::Deliver(best->path);
  }
  return DemuxDecision::Drop("tcp-noconn");
}

void TcpModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  if (dir == Direction::kDown) {
    // From HTTP: application data / close.
    TcpPcb* pcb = PcbOf(stage);
    if (pcb == nullptr || pcb->state == TcpState::kClosed) {
      return;
    }
    if (msg.kind == MsgKind::kConnClose) {
      pcb->close_after_send = true;
      MaybeSendFin(pcb);
      return;
    }
    // kTcpSend / kStreamChunk: queue the bytes.
    const uint8_t* data = msg.Data(pd());
    if (data == nullptr) {
      return;
    }
    // Bound the send buffer (the QoS generator paces against this).
    if (pcb->send_buf.size() - (pcb->snd_una - pcb->send_base_seq) + msg.size() > 256 * 1024) {
      return;
    }
    kernel()->Consume(msg.size() * kernel()->costs().per_byte_touch);
    pcb->send_buf.insert(pcb->send_buf.end(), data, data + msg.size());
    TrySend(pcb);
    return;
  }

  // Up direction: a segment from IP (header at front, aux = (src,dst)).
  Ip4Addr src = IpModule::AuxSrc(msg.aux);
  Ip4Addr dst = IpModule::AuxDst(msg.aux);
  kernel()->Consume(msg.size() * kernel()->costs().per_byte_touch);  // checksum pass
  auto hdr = ParseTcpHeader(msg, pd(), src, dst);
  if (!hdr.has_value() || !hdr->checksum_ok) {
    ++checksum_failures_;
    return;
  }
  msg.Strip(kTcpHeaderLen);

  if (auto* lstate = dynamic_cast<ListenerState*>(stage.state.get()); lstate != nullptr) {
    // Passive path: only connection-setup messages arrive here.
    if ((hdr->flags & kTcpSyn) != 0 && (hdr->flags & kTcpAck) == 0) {
      AcceptSyn(lstate->listener, *hdr, src);
    }
    return;
  }

  TcpPcb* pcb = PcbOf(stage);
  if (pcb == nullptr || pcb->state == TcpState::kClosed) {
    return;
  }
  pcb->segments_in += 1;
  HandleSegment(pcb, *hdr, std::move(msg));
}

void TcpModule::AcceptSyn(TcpListener* listener, const TcpHeader& syn, Ip4Addr peer) {
  if (listener == nullptr) {
    return;
  }
  ConnKey key{local_ip_, syn.dst_port, peer, syn.src_port};
  if (conns_.count(key) != 0) {
    return;  // duplicate SYN; the original SYN-ACK will be retransmitted
  }

  Attributes attrs;
  attrs.SetStr("role", "tcp-active");
  attrs.SetInt("lport", syn.dst_port);
  attrs.SetInt("raddr", peer.value);
  attrs.SetInt("rport", syn.src_port);
  attrs.SetInt("irs", syn.seq);
  attrs.SetInt("listener", listener->id);
  Module* eth = paths()->graph()->Find("ETH");
  Path* path = paths()->Create(eth, attrs, listener->active_label);
  if (path == nullptr) {
    return;
  }
  path->sched().tickets = listener->active_tickets;
  path->sched().priority = listener->active_priority;
  if (listener->active_max_run != 0) {
    path->set_max_thread_run(listener->active_max_run);
  }

  listener->syns_accepted += 1;
  listener->syn_recvd += 1;
  MetricAdd(m_syns_accepted_);
  MetricAdd(m_half_open_, int64_t{1});

  TcpPcb* pcb = pcb_slab_.Find(conns_[key]);
  if (pcb == nullptr) {
    return;
  }
  // PCB initialization belongs to the new connection, not the passive path.
  kernel()->ConsumePrechargedTo(path, kernel()->costs().tcp_conn_setup);
  Stage* tcp_stage = path->StageOf(this);
  pcb->stage = tcp_stage;
  // SYN-ACK consumes one sequence number.
  SendSegment(pcb, kTcpSyn | kTcpAck, pcb->iss, nullptr, 0);
  pcb->snd_nxt = pcb->iss + 1;
  ArmRetx(pcb);
}

void TcpModule::HandleSegment(TcpPcb* pcb, const TcpHeader& hdr, Message payload) {
  if ((hdr.flags & kTcpRst) != 0) {
    ReportOutcome(pcb, TcpConnOutcome::kAborted);
    CloseAndDestroy(pcb);
    return;
  }
  pcb->peer_window = hdr.window;

  if ((hdr.flags & kTcpAck) != 0) {
    HandleAck(pcb, hdr.ack);
    if (pcb->state == TcpState::kClosed) {
      return;  // final ACK processed; the path is being destroyed
    }
  }

  uint32_t seg_len = static_cast<uint32_t>(payload.size());
  bool fin = (hdr.flags & kTcpFin) != 0;

  if (seg_len > 0) {
    if (hdr.seq == pcb->rcv_nxt) {
      pcb->rcv_nxt += seg_len;
      // In-order payload: hand it to the application stage.
      payload.kind = MsgKind::kData;
      payload.aux = 0;
      if (pcb->stage != nullptr) {
        pcb->path->ForwardUp(*pcb->stage, std::move(payload));
      }
      SendAck(pcb);
    } else {
      // Out-of-order: dup-ACK (no reassembly queue on this server; the
      // request fits one segment and the peer retransmits).
      SendAck(pcb);
      return;
    }
  }

  if (fin && hdr.seq + seg_len == pcb->rcv_nxt) {
    pcb->rcv_nxt += 1;
    SendAck(pcb);
    switch (pcb->state) {
      case TcpState::kEstablished:
        SetState(pcb, TcpState::kCloseWait);
        // Server closes too once pending data drains.
        pcb->close_after_send = true;
        MaybeSendFin(pcb);
        break;
      case TcpState::kFinWait1:
        // Simultaneous close; our FIN not yet acked.
        SetState(pcb, TcpState::kLastAck);
        break;
      case TcpState::kFinWait2:
        EnterTimeWait(pcb);
        break;
      default:
        break;
    }
  }
}

void TcpModule::HandleAck(TcpPcb* pcb, uint32_t ack) {
  if (pcb->state == TcpState::kSynRecvd && ack == pcb->iss + 1) {
    SetState(pcb, TcpState::kEstablished);
    pcb->snd_una = ack;
    pcb->syn_recvd_deadline = 0;
    pcb->retx_deadline = 0;
    if (pcb->listener != nullptr) {
      if (pcb->listener->syn_recvd > 0) {
        pcb->listener->syn_recvd -= 1;
        MetricAdd(m_half_open_, int64_t{-1});
      }
      pcb->listener->conns_established += 1;
    }
    ++total_established_;
    return;
  }

  if (static_cast<int32_t>(ack - pcb->snd_una) <= 0) {
    return;  // old/duplicate ACK
  }
  uint32_t newly_acked = ack - pcb->snd_una;
  pcb->snd_una = ack;

  // Slow start: cwnd grows one MSS per ACK until ssthresh.
  if (pcb->cwnd < pcb->ssthresh) {
    pcb->cwnd += pcb->mss;
  } else {
    pcb->cwnd += pcb->mss * pcb->mss / std::max(pcb->cwnd, 1u);
  }

  // Drop acked bytes from the front of the send buffer.
  uint32_t buf_acked = pcb->snd_una - pcb->send_base_seq;
  uint32_t fin_adjust = (pcb->fin_sent && static_cast<int32_t>(pcb->snd_una - pcb->fin_seq) > 0) ? 1 : 0;
  buf_acked -= fin_adjust;
  if (buf_acked > 0 && buf_acked <= pcb->send_buf.size()) {
    pcb->send_buf.erase(pcb->send_buf.begin(), pcb->send_buf.begin() + buf_acked);
    pcb->send_base_seq += buf_acked;
  }
  (void)newly_acked;

  if (pcb->BytesUnacked() == 0) {
    pcb->retx_deadline = 0;
    pcb->retx_count = 0;
  } else {
    ArmRetx(pcb);
  }

  if (pcb->fin_sent && pcb->snd_una == pcb->fin_seq + 1) {
    // Our FIN is acknowledged.
    if (pcb->state == TcpState::kFinWait1) {
      SetState(pcb, TcpState::kFinWait2);
    } else if (pcb->state == TcpState::kLastAck) {
      ReportOutcome(pcb, TcpConnOutcome::kCompleted);
      CloseAndDestroy(pcb);
      return;
    }
  }
  TrySend(pcb);
}

void TcpModule::TrySend(TcpPcb* pcb) {
  if (pcb->state != TcpState::kEstablished && pcb->state != TcpState::kCloseWait &&
      pcb->state != TcpState::kFinWait1) {
    return;
  }
  for (;;) {
    uint32_t in_flight = pcb->BytesUnacked();
    uint32_t window = std::min<uint32_t>(pcb->cwnd, pcb->peer_window);
    if (in_flight >= window) {
      break;
    }
    uint32_t next_off = pcb->snd_nxt - pcb->send_base_seq;
    if (next_off >= pcb->send_buf.size()) {
      break;  // nothing more queued
    }
    uint32_t can_send = std::min<uint32_t>(window - in_flight,
                                           static_cast<uint32_t>(pcb->send_buf.size()) - next_off);
    uint32_t len = std::min(can_send, pcb->mss);
    if (len == 0) {
      break;
    }
    SendSegment(pcb, kTcpAck | kTcpPsh, pcb->snd_nxt, pcb->send_buf.data() + next_off, len);
    pcb->snd_nxt += len;
    ArmRetx(pcb);
  }
  MaybeSendFin(pcb);
}

void TcpModule::MaybeSendFin(TcpPcb* pcb) {
  if (!pcb->close_after_send || pcb->fin_sent) {
    return;
  }
  uint32_t next_off = pcb->snd_nxt - pcb->send_base_seq;
  if (next_off < pcb->send_buf.size()) {
    return;  // data still queued
  }
  pcb->fin_sent = true;
  pcb->fin_seq = pcb->snd_nxt;
  SendSegment(pcb, kTcpFin | kTcpAck, pcb->snd_nxt, nullptr, 0);
  pcb->snd_nxt += 1;
  if (pcb->state == TcpState::kEstablished) {
    SetState(pcb, TcpState::kFinWait1);
  } else if (pcb->state == TcpState::kCloseWait) {
    SetState(pcb, TcpState::kLastAck);
  }
  ArmRetx(pcb);
}

void TcpModule::SendSegment(TcpPcb* pcb, uint8_t flags, uint32_t seq, const uint8_t* payload,
                            uint32_t len) {
  if (pcb->path == nullptr || pcb->path->destroyed() || pcb->stage == nullptr) {
    return;
  }
  kernel()->ConsumeCharged(kernel()->costs().tcp_tx_segment +
                           len * kernel()->costs().per_byte_touch);
  std::vector<PdId> read_pds;
  for (int i = 0; i <= pcb->stage->index; ++i) {
    read_pds.push_back(pcb->path->stage(static_cast<size_t>(i))->pd);
  }
  Message msg = Message::Alloc(kernel(), pcb->path, pd(), read_pds, len, kFullHeadroom);
  if (!msg.valid()) {
    return;
  }
  if (len > 0) {
    msg.Append(pd(), payload, len);
  }
  TcpHeader hdr;
  hdr.src_port = pcb->key.local_port;
  hdr.dst_port = pcb->key.remote_port;
  hdr.seq = seq;
  hdr.ack = pcb->rcv_nxt;
  hdr.flags = flags;
  hdr.window = 0xffff;
  WriteTcpHeader(msg, pd(), hdr, pcb->key.local_addr, pcb->key.remote_addr);
  msg.aux = IpModule::PackAddrs(pcb->key.local_addr, pcb->key.remote_addr);
  pcb->segments_out += 1;
  pcb->path->ForwardDown(*pcb->stage, std::move(msg));
}

void TcpModule::SendAck(TcpPcb* pcb) { SendSegment(pcb, kTcpAck, pcb->snd_nxt, nullptr, 0); }

void TcpModule::ArmRetx(TcpPcb* pcb) {
  if (pcb->rto == 0) {
    pcb->rto = rto_initial;
  }
  pcb->retx_deadline = kernel()->now() + pcb->rto;
}

void TcpModule::EnterTimeWait(TcpPcb* pcb) {
  // Completion is counted here: the handshake finished cleanly even though
  // the PCB lingers until the TIME_WAIT deadline Destroy.
  ReportOutcome(pcb, TcpConnOutcome::kCompleted);
  SetState(pcb, TcpState::kTimeWait);
  pcb->time_wait_deadline = kernel()->now() + time_wait_duration;
}

void TcpModule::CloseAndDestroy(TcpPcb* pcb) {
  kernel()->ConsumeCharged(kernel()->costs().tcp_conn_teardown);
  Path* path = pcb->path;
  SetState(pcb, TcpState::kClosed);
  // pathDestroy runs the destructors (which unregister the conn).
  paths()->Destroy(path);
}

void TcpModule::MasterEventScan() {
  ++master_fires_;
  Cycles now = kernel()->now();
  kernel()->Consume(kernel()->costs().tcp_timeout_scan * conns_.size());

  // Collect first: handlers mutate the map. Handles, not pointers — a
  // Destroy handler run for one connection can reclaim (and a later SYN
  // even re-issue) another's slot while the loop drains.
  std::vector<ConnHandle> expired_synrecvd;
  std::vector<ConnHandle> expired_timewait;
  std::vector<ConnHandle> need_retx;
  std::vector<ConnKey> stale;
  for (auto& [key, h] : conns_) {
    TcpPcb* pcb = pcb_slab_.Find(h);
    if (pcb == nullptr || pcb->path == nullptr || pcb->path->destroyed()) {
      // Defensive purge only. pathKill outcomes are reported by the PCB's
      // kernel cleanup (which also erases the conns_ entry), so reporting
      // here would double-count the connection.
      stale.push_back(key);
      continue;
    }
    // Deadlines are due at `now >= deadline`: a deadline landing exactly on
    // a scan tick expires on that scan, not one full period later.
    if (pcb->state == TcpState::kSynRecvd && pcb->syn_recvd_deadline != 0 &&
        now >= pcb->syn_recvd_deadline) {
      expired_synrecvd.push_back(h);
    } else if (pcb->state == TcpState::kTimeWait && now >= pcb->time_wait_deadline) {
      expired_timewait.push_back(h);
    } else if (pcb->retx_deadline != 0 && now >= pcb->retx_deadline && pcb->BytesUnacked() > 0) {
      need_retx.push_back(h);
    }
  }

  for (const ConnKey& key : stale) {
    // Entry left behind by pathKill (destructors did not run): purge.
    conns_.erase(key);
  }
  for (ConnHandle h : expired_synrecvd) {
    // Half-open connection never completed: reclaim everything.
    if (TcpPcb* pcb = pcb_slab_.Find(h); pcb != nullptr) {
      ReportOutcome(pcb, TcpConnOutcome::kHalfOpenExpired);
      paths()->Destroy(pcb->path);
    }
  }
  for (ConnHandle h : expired_timewait) {
    if (TcpPcb* pcb = pcb_slab_.Find(h); pcb != nullptr) {
      paths()->Destroy(pcb->path);
    }
  }
  for (ConnHandle h : need_retx) {
    TcpPcb* pcb = pcb_slab_.Find(h);
    if (pcb == nullptr) {
      continue;
    }
    if (pcb->retx_count >= 6) {
      ReportOutcome(pcb, TcpConnOutcome::kAborted);
      paths()->Destroy(pcb->path);
      continue;
    }
    // Charge the retransmission to the connection's own path. The closure
    // runs later, on the path's thread: it must not capture the raw pcb
    // pointer (the path — and with it the pcb — can be destroyed between
    // scan and execution). A ConnKey capture is not enough either: the key
    // can be *reincarnated* by a new connection from the same peer port,
    // and a deadline comparison only catches that by luck. The slab handle's
    // generation tag makes staleness exact — Resolve fails the moment the
    // slot is released or re-issued.
    Cycles armed_deadline = pcb->retx_deadline;
    pcb->path->GrabThread()->Push(0, pd(), [this, h, armed_deadline] {
      TcpPcb* target = Resolve(h);
      if (target == nullptr || target->path == nullptr || target->path->destroyed() ||
          target->state == TcpState::kClosed) {
        return;
      }
      // Timer re-armed since the scan (an ACK arrived first): this
      // closure's retransmit is no longer owed.
      if (target->retx_deadline != armed_deadline || target->BytesUnacked() == 0) {
        return;
      }
      target->retx_count += 1;
      target->retransmits += 1;
      ++total_retransmits_;
      MetricAdd(m_retransmits_);
      target->ssthresh = std::max(target->BytesUnacked() / 2, 2 * target->mss);
      target->cwnd = target->mss;
      target->rto = std::min<Cycles>(target->rto * 2, CyclesFromMillis(3000));
      if (target->state == TcpState::kSynRecvd) {
        SendSegment(target, kTcpSyn | kTcpAck, target->iss, nullptr, 0);
      } else {
        // Retransmit one segment from snd_una.
        uint32_t off = target->snd_una - target->send_base_seq;
        if (off < target->send_buf.size()) {
          uint32_t len = std::min<uint32_t>(
              target->mss, static_cast<uint32_t>(target->send_buf.size()) - off);
          SendSegment(target, kTcpAck | kTcpPsh, target->snd_una, target->send_buf.data() + off,
                      len);
        } else if (target->fin_sent) {
          SendSegment(target, kTcpFin | kTcpAck, target->fin_seq, nullptr, 0);
        }
      }
      ArmRetx(target);
    }, /*yields=*/true);
  }
}

TcpPcb* TcpModule::FindConn(const ConnKey& key) {
  auto it = conns_.find(key);
  return it == conns_.end() ? nullptr : pcb_slab_.Find(it->second);
}

Cycles TcpModule::ProcessCost(Direction dir) const {
  return dir == Direction::kUp ? kernel()->costs().tcp_rx_segment : kernel()->costs().tcp_tx_segment;
}

}  // namespace escort
