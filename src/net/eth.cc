#include "src/net/eth.h"

#include "src/path/path_manager.h"

namespace escort {

uint64_t MacToAux(const MacAddr& mac) {
  uint64_t v = 0;
  for (uint8_t b : mac.bytes) {
    v = (v << 8) | b;
  }
  return v;
}

MacAddr MacFromAux(uint64_t aux) {
  MacAddr mac;
  for (int i = 5; i >= 0; --i) {
    mac.bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(aux);
    aux >>= 8;
  }
  return mac;
}

void EthDriverModule::ReceiveFrame(const std::vector<uint8_t>& frame) {
  ++frames_rx_;
  // Receive buffers are owned by the driver's domain and readable along any
  // path (the driver cannot know the receiving path before demux).
  std::vector<PdId> read_domains;
  for (const auto& pd : kernel()->domains()) {
    read_domains.push_back(pd->pd_id());
  }
  Owner* owner = kernel()->domain(pd());
  Message msg = Message::Alloc(kernel(), owner, pd(), read_domains, frame.size(), kFullHeadroom);
  if (!msg.valid()) {
    return;
  }
  msg.Append(pd(), frame.data(), frame.size());
  paths()->DemuxAndDeliver(this, std::move(msg));
}

OpenResult EthDriverModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  OpenResult r;
  r.ok = true;
  const std::string role = attrs.GetStrOr("role", "tcp");
  r.next = role == "arp" ? arp_ : ip_;
  return r;
}

DemuxDecision EthDriverModule::Demux(const Message& msg) {
  auto hdr = ParseEthHeader(msg, pd());
  if (!hdr.has_value()) {
    return DemuxDecision::Drop("eth-parse");
  }
  if (hdr->dst != mac_ && !hdr->dst.IsBroadcast()) {
    return DemuxDecision::Drop("eth-notus");
  }
  switch (hdr->ethertype) {
    case kEtherTypeIp:
      return DemuxDecision::Continue(ip_);
    case kEtherTypeArp:
      return DemuxDecision::Continue(arp_);
    default:
      return DemuxDecision::Drop("eth-type");
  }
}

void EthDriverModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  if (dir == Direction::kUp) {
    // Strip the Ethernet header and hand the packet to the network layer.
    if (!msg.Strip(kEthHeaderLen)) {
      return;
    }
    stage.path->ForwardUp(stage, std::move(msg));
    return;
  }
  // Transmit: the network layer left the next-hop MAC in msg.aux.
  EthHeader hdr;
  hdr.dst = MacFromAux(msg.aux);
  hdr.src = mac_;
  hdr.ethertype = static_cast<uint16_t>(msg.note == "arp" ? kEtherTypeArp : kEtherTypeIp);
  uint8_t hdr_bytes[kEthHeaderLen];
  SerializeEthHeader(hdr, hdr_bytes);
  if (!msg.PrependHeaderFragment(kernel(), pd(), hdr_bytes, kEthHeaderLen)) {
    return;
  }
  std::vector<uint8_t> frame = msg.CopyOut(pd());
  kernel()->Consume(frame.size() * kernel()->costs().per_byte_touch);
  ++frames_tx_;
  if (transmit_) {
    transmit_(std::move(frame));
  }
}

Cycles EthDriverModule::ProcessCost(Direction dir) const {
  return dir == Direction::kUp ? kernel()->costs().eth_rx : kernel()->costs().eth_tx;
}

}  // namespace escort
