#include "src/net/ip.h"

#include "src/net/eth.h"

namespace escort {

std::optional<Ip4Addr> RoutingTable::Lookup(Ip4Addr dst) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (!r.dest.Contains(dst)) {
      continue;
    }
    if (best == nullptr || r.dest.prefix_len > best->dest.prefix_len ||
        (r.dest.prefix_len == best->dest.prefix_len && r.metric < best->metric)) {
      best = &r;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return best->gateway.value == 0 ? dst : best->gateway;
}

OpenResult IpModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.next = tcp_;
  return r;
}

DemuxDecision IpModule::Demux(const Message& msg) {
  // Demux sees the frame as received; the IP header sits after the
  // Ethernet header (IHL fixed at 5 on this wire).
  const uint8_t* p = msg.Data(pd());
  if (p == nullptr || msg.size() < kEthHeaderLen + kIpHeaderLen) {
    return DemuxDecision::Drop("ip-short");
  }
  const uint8_t* ip = p + kEthHeaderLen;
  if ((ip[0] >> 4) != 4) {
    return DemuxDecision::Drop("ip-version");
  }
  uint32_t dst = (static_cast<uint32_t>(ip[16]) << 24) | (static_cast<uint32_t>(ip[17]) << 16) |
                 (static_cast<uint32_t>(ip[18]) << 8) | ip[19];
  if (dst != our_ip_.value) {
    return DemuxDecision::Drop("ip-notus");
  }
  if (ip[9] != kIpProtoTcp) {
    return DemuxDecision::Drop("ip-proto");
  }
  return DemuxDecision::Continue(tcp_);
}

void IpModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  if (dir == Direction::kUp) {
    auto hdr = ParseIpHeader(msg, pd());
    if (!hdr.has_value() || !hdr->checksum_ok) {
      ++checksum_failures_;
      return;
    }
    if (hdr->dst != our_ip_ || hdr->protocol != kIpProtoTcp || hdr->ttl == 0) {
      return;
    }
    ++rx_;
    msg.Strip(kIpHeaderLen);
    // Trim link-layer padding: the IP total length is authoritative.
    uint64_t payload_len = hdr->total_length - kIpHeaderLen;
    if (msg.size() > payload_len) {
      msg.Trim(msg.size() - payload_len);
    }
    msg.aux = PackAddrs(hdr->src, hdr->dst);
    stage.path->ForwardUp(stage, std::move(msg));
    return;
  }

  // Down: encapsulate the TCP segment. TCP left the peer address in aux.
  Ip4Addr dst = AuxDst(msg.aux);
  Ip4Header hdr;
  hdr.src = our_ip_;
  hdr.dst = dst;
  hdr.protocol = kIpProtoTcp;
  hdr.id = next_id_++;
  // Headers go into a domain-local fragment: no payload copy even when this
  // domain only has a read mapping on the buffer.
  uint8_t bytes[kIpHeaderLen];
  SerializeIpHeader(hdr, msg.size(), bytes);
  if (!msg.PrependHeaderFragment(kernel(), pd(), bytes, kIpHeaderLen)) {
    return;
  }
  auto next_hop = routes_.Lookup(dst);
  if (!next_hop.has_value()) {
    ++unroutable_;
    return;
  }
  auto mac = arp_ != nullptr ? arp_->Resolve(*next_hop) : std::nullopt;
  if (!mac.has_value()) {
    // Kick off resolution and drop; the transport retransmits.
    if (arp_ != nullptr) {
      arp_->SendRequest(*next_hop);
    }
    ++unroutable_;
    return;
  }
  ++tx_;
  msg.aux = MacToAux(*mac);
  stage.path->ForwardDown(stage, std::move(msg));
}

Cycles IpModule::ProcessCost(Direction dir) const {
  return dir == Direction::kUp ? kernel()->costs().ip_rx : kernel()->costs().ip_tx;
}

}  // namespace escort
