#include "src/net/arp.h"

#include "src/net/eth.h"
#include "src/path/path_manager.h"

namespace escort {

void ArpModule::Init() {
  // The ARP path: [ETH, ARP]. Created at boot by the module's init function
  // (paper §2.3: modules initialize global state and create an initial set
  // of paths).
  Module* eth = paths()->graph()->Find("ETH");
  Attributes attrs;
  attrs.SetStr("role", "arp");
  arp_path_ = paths()->Create(eth, attrs, "ARP Path");
}

std::optional<MacAddr> ArpModule::Resolve(Ip4Addr ip) const {
  auto it = table_.find(ip);
  if (it == table_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Message ArpModule::NewArpMessage(Path* path, const ArpPacket& pkt, MacAddr dst) {
  // Readable by every domain along the ARP path (the ETH driver transmits).
  std::vector<PdId> read_pds;
  for (const auto& stage : path->stages()) {
    read_pds.push_back(stage->pd);
  }
  Message msg = Message::Alloc(kernel(), path, pd(), read_pds, kArpPacketLen, kEthHeaderLen);
  if (!msg.valid()) {
    return msg;
  }
  WriteArpPacket(msg, pd(), pkt);
  msg.aux = MacToAux(dst);
  msg.note = "arp";
  return msg;
}

void ArpModule::SendRequest(Ip4Addr ip) {
  if (arp_path_ == nullptr) {
    return;
  }
  ArpPacket pkt;
  pkt.opcode = 1;
  pkt.sender_mac = our_mac_;
  pkt.sender_ip = our_ip_;
  pkt.target_mac = MacAddr{};
  pkt.target_ip = ip;
  Message msg = NewArpMessage(arp_path_, pkt, MacAddr::Broadcast());
  if (!msg.valid()) {
    return;
  }
  Stage* my_stage = arp_path_->StageOf(this);
  if (my_stage != nullptr) {
    arp_path_->ForwardDown(*my_stage, std::move(msg));
  }
}

OpenResult ArpModule::Open(Path* path, const Attributes& attrs) {
  (void)path;
  (void)attrs;
  OpenResult r;
  r.ok = true;
  r.next = nullptr;  // ARP terminates the path
  return r;
}

DemuxDecision ArpModule::Demux(const Message& msg) {
  (void)msg;
  if (arp_path_ == nullptr) {
    return DemuxDecision::Drop("arp-nopath");
  }
  return DemuxDecision::Deliver(arp_path_);
}

void ArpModule::Process(Stage& stage, Message msg, Direction dir) {
  ConsumeCost(dir);
  if (dir != Direction::kUp) {
    // Down direction carries pre-built packets; nothing to do here (the ETH
    // stage below handles transmission).
    stage.path->ForwardDown(stage, std::move(msg));
    return;
  }
  auto pkt = ParseArpPacket(msg, pd());
  if (!pkt.has_value()) {
    return;
  }
  // Learn the sender either way.
  table_[pkt->sender_ip] = pkt->sender_mac;
  if (pkt->opcode == 1 && pkt->target_ip == our_ip_) {
    ++answered_;
    ArpPacket reply;
    reply.opcode = 2;
    reply.sender_mac = our_mac_;
    reply.sender_ip = our_ip_;
    reply.target_mac = pkt->sender_mac;
    reply.target_ip = pkt->sender_ip;
    Message out = NewArpMessage(stage.path, reply, pkt->sender_mac);
    if (out.valid()) {
      stage.path->ForwardDown(stage, std::move(out));
    }
  } else if (pkt->opcode == 2) {
    ++learned_;
  }
}

Cycles ArpModule::ProcessCost(Direction /*dir*/) const { return kernel()->costs().arp_process; }

}  // namespace escort
