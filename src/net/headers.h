// Wire-format header codecs: Ethernet II, ARP, IPv4, TCP.
//
// Headers are real bytes in network order, written into and parsed out of
// IOBuffer-backed messages; IPv4 and TCP checksums are computed with the
// RFC 1071 algorithm. Assumptions kept from the testbed: no VLAN tags,
// IPv4 IHL is always 5 (no options), TCP data offset is always 5.

#ifndef SRC_NET_HEADERS_H_
#define SRC_NET_HEADERS_H_

#include <cstdint>
#include <optional>

#include "src/elib/address.h"
#include "src/elib/message.h"

namespace escort {

inline constexpr uint16_t kEtherTypeIp = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

inline constexpr size_t kEthHeaderLen = 14;
inline constexpr size_t kIpHeaderLen = 20;
inline constexpr size_t kTcpHeaderLen = 20;
inline constexpr size_t kArpPacketLen = 28;

// Combined headroom a transmit message needs for all downstream headers.
inline constexpr size_t kFullHeadroom = kEthHeaderLen + kIpHeaderLen + kTcpHeaderLen;

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  uint16_t ethertype = 0;
};

struct ArpPacket {
  uint16_t opcode = 0;  // 1 request, 2 reply
  MacAddr sender_mac;
  Ip4Addr sender_ip;
  MacAddr target_mac;
  Ip4Addr target_ip;
};

struct Ip4Header {
  uint8_t ttl = 64;
  uint8_t protocol = 0;  // 6 = TCP
  Ip4Addr src;
  Ip4Addr dst;
  uint16_t total_length = 0;  // filled by codec on write
  uint16_t id = 0;
  bool checksum_ok = true;  // set by parse
};

inline constexpr uint8_t kIpProtoTcp = 6;

// TCP flag bits.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0xffff;
  bool checksum_ok = true;  // set by parse
};

// --- Ethernet ---------------------------------------------------------------
// Serializes a header into a caller-provided buffer (for header-fragment
// prepends from domains without payload write permission).
void SerializeEthHeader(const EthHeader& hdr, uint8_t out[kEthHeaderLen]);
void SerializeIpHeader(const Ip4Header& hdr, uint64_t payload_len, uint8_t out[kIpHeaderLen]);

// Prepends an Ethernet header; fails if headroom or permission is missing.
bool WriteEthHeader(Message& msg, PdId pd, const EthHeader& hdr);
// Parses (without stripping) the header at the front of `msg`.
std::optional<EthHeader> ParseEthHeader(const Message& msg, PdId pd);

// --- ARP ---------------------------------------------------------------------
// Serializes a full ARP packet as the message payload (after any strip of
// the Ethernet header).
bool WriteArpPacket(Message& msg, PdId pd, const ArpPacket& pkt);
std::optional<ArpPacket> ParseArpPacket(const Message& msg, PdId pd);

// --- IPv4 ---------------------------------------------------------------------
// Prepends an IPv4 header covering the current payload, computing the
// header checksum.
bool WriteIpHeader(Message& msg, PdId pd, const Ip4Header& hdr);
std::optional<Ip4Header> ParseIpHeader(const Message& msg, PdId pd);

// --- TCP ----------------------------------------------------------------------
// Prepends a TCP header covering the current payload and computes the
// checksum over the pseudo-header + segment. `src`/`dst` feed the
// pseudo-header.
bool WriteTcpHeader(Message& msg, PdId pd, const TcpHeader& hdr, Ip4Addr src, Ip4Addr dst);
// Parses + verifies the TCP checksum for a message whose front is the TCP
// header and whose tail is the payload.
std::optional<TcpHeader> ParseTcpHeader(const Message& msg, PdId pd, Ip4Addr src, Ip4Addr dst);

}  // namespace escort

#endif  // SRC_NET_HEADERS_H_
