// The Escort kernel: the privileged protection domain.
//
// Owns the simulated server CPU and everything §3 of the paper describes:
// the syscall surface and its ACL, owners and their accounting ledgers,
// threads and the configured scheduler, timer events + softclock,
// semaphores, page/kmem allocation, IOBuffers, runaway-thread detection, and
// the owner-destruction machinery behind pathDestroy/pathKill.
//
// Execution model (see src/kernel/thread.h): threads carry work items;
// the kernel dispatches the next runnable thread non-preemptively, advances
// simulated time by the item's cost, and charges the cycles to the thread's
// owner. Idle time is charged to the Idle pseudo-owner, so the Table 1
// invariant — total accounted cycles == total elapsed cycles — holds by
// construction and is verified by tests.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/acl.h"
#include "src/kernel/device.h"
#include "src/kernel/iobuffer.h"
#include "src/kernel/kernel_event.h"
#include "src/kernel/owner.h"
#include "src/kernel/page_allocator.h"
#include "src/kernel/protection_domain.h"
#include "src/kernel/scheduler.h"
#include "src/kernel/semaphore.h"
#include "src/kernel/syscall.h"
#include "src/kernel/thread.h"
#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"

namespace escort {

class Auditor;
class MetricCounter;
class MetricGauge;
class MetricsRegistry;
class Tracer;

enum class SchedulerKind { kPriority, kProportionalShare, kEdf };

struct KernelConfig {
  // Fine-grain resource accounting (the Accounting configurations). Usage is
  // always *tracked* (the experiments need the numbers); enabling this adds
  // the bookkeeping overhead cycles to every charge, reproducing the ~8%.
  bool accounting = false;
  // Hardware-enforced protection domains (the Accounting_PD configuration):
  // charges the crossing cost on every domain boundary and enforces IOBuffer
  // mappings.
  bool protection_domains = false;
  SchedulerKind scheduler = SchedulerKind::kPriority;
  uint64_t total_pages = 64 * 1024;  // 512 MB of 8 KB pages
  CostModel costs = CostModel::Calibrated();
  // Start the 1 ms softclock (disable for micro-tests that want silence).
  bool start_softclock = true;
};

// Aggregated per-label cycle accounting for reports like Table 1. Owners
// carry a free-form account label ("idle", "active-path", ...); cycles of
// destroyed owners accumulate under their label.
class CycleLedger {
 public:
  void Charge(const std::string& label, Cycles c) { totals_[label] += c; }
  Cycles Get(const std::string& label) const {
    auto it = totals_.find(label);
    return it == totals_.end() ? 0 : it->second;
  }
  Cycles Total() const;
  const std::map<std::string, Cycles>& totals() const { return totals_; }
  void Reset() { totals_.clear(); }

 private:
  std::map<std::string, Cycles> totals_;
};

class Kernel {
 public:
  Kernel(EventQueue* eq, KernelConfig config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  EventQueue* event_queue() { return eq_; }
  const KernelConfig& config() const { return config_; }
  const CostModel& costs() const { return config_.costs; }
  Cycles now() const { return eq_->now(); }

  // --- Owners and domains ---------------------------------------------------
  Owner* kernel_owner() { return kernel_owner_.get(); }
  Owner* idle_owner() { return idle_owner_.get(); }

  ProtectionDomain* CreateDomain(const std::string& name);
  ProtectionDomain* domain(PdId id);
  const std::vector<std::unique_ptr<ProtectionDomain>>& domains() const { return domains_; }

  // Owner-id allocation and registration for path owners (created by the
  // path layer, which lives above the kernel).
  uint64_t NextOwnerId() { return next_owner_id_++; }
  void RegisterOwner(Owner* owner, const std::string& account_label);
  void UnregisterOwner(Owner* owner);
  const std::string& AccountLabel(const Owner* owner) const;

  // Registered owners, keyed by owner id: iteration follows creation
  // order, never heap layout, so every consumer (snapshots, audits,
  // ledger sampling) is deterministic across runs and shard counts
  // (EA005 — pointer-keyed iteration is the bug class this replaces).
  struct AccountRecord {
    Owner* owner = nullptr;
    std::string label;
  };
  const std::map<uint64_t, AccountRecord>& account_labels() const { return account_labels_; }

  // --- Devices and console ---------------------------------------------------
  DeviceRegistry& devices() { return devices_; }
  Console& console() { return console_; }

  // --- ACL ----------------------------------------------------------------
  AclTable& acl() { return acl_; }
  // Checks the role (current domain, current thread's owner type) against
  // the ACL. Denied calls are counted and return false.
  bool CheckSyscall(PdId domain, Syscall sc);

  // --- Threads + CPU ---------------------------------------------------------
  Thread* CreateThread(Owner* owner, const std::string& name);
  // Called by Thread::Push; makes the thread runnable and kicks the CPU.
  void OnThreadHasWork(Thread* t);
  // Generates a new thread belonging to `target` and moves the remaining
  // work of `t` onto it (Escort's threadHandoff).
  Thread* Handoff(Thread* t, Owner* target, const std::string& name);
  void StopThread(Thread* t);

  // Dynamic cost consumption: module/kernel code invoked from inside a work
  // item calls this to extend the current busy period (e.g. per-byte costs
  // discovered at run time, syscall overheads). Outside a work item the cost
  // is charged directly to `fallback_owner` (or the kernel) without
  // advancing time (boot-time setup).
  void Consume(Cycles cost);
  // Consume + the accounting surcharge if accounting is enabled.
  void ConsumeCharged(Cycles cost);
  // Charges `cost` cycles to `owner` immediately and extends the current
  // busy period by the same amount without charging the running thread.
  // Used for work performed *on behalf of* another owner (pathDestroy
  // teardown is charged to the dying path, not to whichever thread noticed
  // the connection finished).
  void ConsumePrechargedTo(Owner* owner, Cycles cost);
  // Adds the syscall trap overhead when called from an unprivileged domain.
  void ConsumeSyscall(PdId from_domain);

  Thread* current_thread() { return running_; }

  // --- Timer events + softclock ---------------------------------------------
  // The handler fires from the softclock, long after registration: the
  // EA001 deferred-capture contract applies to it (no raw kernel-object
  // pointers; capture a value key and revalidate at fire time).
  // ESCORT_DEFERRED_API
  KernelEvent* RegisterEvent(Owner* owner, const std::string& name, Cycles delay, Cycles period,
                             Cycles dispatch_cost, PdId pd, KernelEvent::Handler handler);
  void CancelEvent(KernelEvent* ev);

  // --- Semaphores --------------------------------------------------------------
  Semaphore* CreateSemaphore(Owner* owner, const std::string& name, int initial);
  void DestroySemaphore(Semaphore* sem);

  // --- Memory --------------------------------------------------------------------
  PageAllocator& pages() { return pages_; }
  Page* AllocPage(Owner* owner);
  void FreePage(Page* page);
  bool ChargeKmem(Owner* owner, uint64_t bytes);
  void UnchargeKmem(Owner* owner, uint64_t bytes);

  // --- IOBuffers -------------------------------------------------------------------
  IoBufferManager& iobuffers() { return iob_; }
  IoBuffer* AllocIoBuffer(Owner* owner, uint64_t size, PdId current_pd,
                          const std::vector<PdId>& read_domains);
  void LockIoBuffer(IoBuffer* buf, Owner* locker);
  void UnlockIoBuffer(IoBuffer* buf, Owner* locker);
  void AssociateIoBuffer(IoBuffer* buf, Owner* second, const std::vector<PdId>& read_domains);

  // --- Owner destruction (pathDestroy/pathKill backend) -------------------------
  // Reclaims every kernel object on the owner's tracking lists. `pd_count`
  // is the number of protection domains the owner's paths cross (per-domain
  // teardown cost applies when protection domains are enabled). Returns the
  // number of cycles the reclamation consumed; the cycles are charged to the
  // kernel owner (reclamation must not need resources of the dying owner —
  // the containment requirement).
  Cycles DestroyOwner(Owner* owner, int pd_count);

  // Handler invoked when a thread exceeds its owner's max-run-without-yield
  // budget. Installed by the policy layer; default kills nothing.
  using RunawayHandler = std::function<void(Owner*, Thread*)>;
  void set_runaway_handler(RunawayHandler h) { runaway_handler_ = std::move(h); }
  uint64_t runaway_detections() const { return runaway_detections_; }

  // Ledger watch: consulted at the same kernel entry as the run budget
  // (after every work item — the one point where a non-preemptive,
  // non-yielding thread is back in kernel hands). Return true to have the
  // owner killed through the runaway machinery. The watch must do its own
  // bookkeeping (detection log, blacklist) before returning; it runs
  // outside the reclamation-cost collection window, so it must not Consume.
  using LedgerWatch = std::function<bool(Owner*, Thread*)>;
  void set_ledger_watch(LedgerWatch w) { ledger_watch_ = std::move(w); }

  // --- Accounting reports ---------------------------------------------------------
  // Charges any in-progress idle period up to `now` so reports balance.
  void SettleIdle();
  // Per-label cycle totals (live owners + retired owners).
  CycleLedger Snapshot();
  // Total cycles charged to anyone since construction.
  Cycles TotalCharged();
  Cycles start_time() const { return start_time_; }
  // Resets all cycle counters (start of a measurement window).
  void ResetAccounting();

  // --- Audit hooks -----------------------------------------------------------------
  // When set, the auditor drain-checks every owner at destruction time
  // (see src/kernel/audit.h). Owned by the caller (typically an AuditScope).
  void set_auditor(Auditor* a) { auditor_ = a; }
  Auditor* auditor() { return auditor_; }

  // --- Trace hooks -----------------------------------------------------------------
  // When set, the kernel and everything above it (path manager, TCP,
  // policies) emit deterministic timeline events (see src/sim/trace.h).
  // Owned by the caller; null (the default) means tracing is off and
  // every instrumentation site reduces to this one pointer test.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }

  // --- Metrics hooks ---------------------------------------------------------------
  // When set, the kernel and everything above it publish counters/gauges
  // into the registry (see src/sim/metrics.h). Same contract as the
  // tracer: caller-owned, null (the default) means metrics are off and
  // every instrumentation site reduces to one pointer test.
  void set_metrics(MetricsRegistry* m);
  MetricsRegistry* metrics() const { return metrics_; }

  // Cycles of the in-flight busy segment that have been consumed but not
  // yet charged to any owner. Negative when the segment was partially
  // precharged (teardown costs are billed up front). Zero when the CPU is
  // idle, so `Snapshot().Total() + UnsettledBusyCycles() - unsettled_at_reset()
  // == now() - start_time()` holds exactly at every instant — the Table 1
  // conservation invariant the auditor asserts.
  int64_t UnsettledBusyCycles() const;
  // UnsettledBusyCycles() captured at the last ResetAccounting (a window
  // opened mid-segment starts with this much pre-window debt).
  int64_t unsettled_at_reset() const { return unsettled_at_reset_; }

  // Kernel-wide live-object counts, cross-checked by the auditor against
  // the summed per-owner counters.
  uint64_t live_thread_count() const { return threads_.size(); }
  uint64_t live_semaphore_count() const { return semaphores_.size(); }
  uint64_t live_event_count() const;

  uint64_t dispatch_count() const { return dispatch_count_; }
  uint64_t pd_crossings() const { return pd_crossings_; }
  // Crossings rejected by the owner's allowed-crossings map. The offending
  // item is dropped (trap with no handler); the fault handler, if any, is
  // invoked with the offender.
  uint64_t crossing_violations() const { return crossing_violations_; }
  using FaultHandler = std::function<void(Owner*, Thread*)>;
  void set_fault_handler(FaultHandler h) { fault_handler_ = std::move(h); }
  Cycles accounting_overhead_cycles() const { return accounting_overhead_cycles_; }

 private:
  friend class Thread;

  void ChargeCycles(Owner* owner, Cycles c);
  // Starts the CPU if it is idle and something is runnable.
  void MaybeDispatch();
  // Picks the next thread and begins its front work item.
  void DispatchNext();
  // Runs the action of the item whose busy period just ended.
  void CompleteItem();
  void FinishItem();
  void ScheduleSoftclock();
  void SoftclockTick();
  void FireEvent(KernelEvent* ev);
  Thread* EventThreadFor(Owner* owner);
  void ReapGraveyard();

  EventQueue* const eq_;
  KernelConfig config_;
  AclTable acl_;
  DeviceRegistry devices_{this};
  Console console_{this};
  PageAllocator pages_;
  IoBufferManager iob_;
  std::unique_ptr<Scheduler> scheduler_;

  std::unique_ptr<Owner> kernel_owner_;
  std::unique_ptr<Owner> idle_owner_;
  std::vector<std::unique_ptr<ProtectionDomain>> domains_;
  uint64_t next_owner_id_ = 1;
  std::map<uint64_t, AccountRecord> account_labels_;
  CycleLedger retired_;

  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::unique_ptr<Thread>> graveyard_;
  std::vector<std::unique_ptr<Semaphore>> semaphores_;
  std::vector<std::unique_ptr<KernelEvent>> events_;
  uint64_t next_tid_ = 1;

  // CPU state.
  Thread* running_ = nullptr;
  bool cpu_busy_ = false;
  bool idle_ = true;
  Cycles idle_since_ = 0;
  WorkItem current_item_;
  Cycles current_cost_ = 0;
  bool current_item_crossed_ = false;
  Cycles pending_consume_ = 0;
  Cycles pending_precharged_ = 0;  // already charged; only time must pass
  bool in_item_ = false;
  // Conservation bookkeeping for the in-flight busy segment: when it began
  // and how much of it was already charged when it was scheduled.
  Cycles busy_segment_start_ = 0;
  Cycles busy_segment_upfront_ = 0;
  // Fault-handler time for a surviving thread, folded into its next item:
  // the duration still has to pass, and the kernel (not the item's owner)
  // is charged for it when the item completes.
  Cycles deferred_duration_ = 0;
  Cycles deferred_kernel_charge_ = 0;
  int64_t unsettled_at_reset_ = 0;

  // Softclock.
  Thread* softclock_thread_ = nullptr;
  uint64_t softclock_ticks_ = 0;
  EventQueue::EventId softclock_event_id_ = 0;
  bool softclock_event_id_valid_ = false;
  std::map<Owner*, Thread*> event_threads_;

  RunawayHandler runaway_handler_;
  LedgerWatch ledger_watch_;
  uint64_t runaway_detections_ = 0;
  FaultHandler fault_handler_;
  uint64_t crossing_violations_ = 0;
  Auditor* auditor_ = nullptr;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  MetricGauge* m_pages_in_use_ = nullptr;
  MetricCounter* m_runaway_ = nullptr;

  Cycles start_time_ = 0;
  uint64_t dispatch_count_ = 0;
  uint64_t pd_crossings_ = 0;
  Cycles accounting_overhead_cycles_ = 0;
};

}  // namespace escort

#endif  // SRC_KERNEL_KERNEL_H_
