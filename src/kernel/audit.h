// Escort Auditor: machine-checked resource-conservation invariants.
//
// The paper's Table 1 claims that end-to-end accounting charges ~100% of
// consumed cycles to the correct owner. This module turns that claim — and
// the charge/release pairing it depends on — into hard assertions:
//
//   1. Owner-drain: when an owner is destroyed, every tracking list and
//      every ResourceUsage counter except `cycles` must have drained to
//      zero. A non-zero residue is a leaked charge (an undetectable DoS
//      vector: resources consumed that no policy can see).
//   2. Cycle conservation: at any quiescent query point, the summed
//      per-owner cycles (live owners + the retired ledger) must equal the
//      elapsed simulation time, modulo the one in-flight busy segment the
//      kernel reports via UnsettledBusyCycles().
//   3. Global object conservation: the per-owner counters must agree with
//      the kernel-wide object registries (threads, semaphores, live events,
//      pages, IOBuffer locks).
//
// The auditor is always compiled so tests can exercise it directly; builds
// configured with -DESCORT_AUDIT additionally *enforce* it: the testbeds
// attach an AuditScope whose destructor aborts the process on any recorded
// violation, so every test and benchmark run doubles as a conservation
// proof.

#ifndef SRC_KERNEL_AUDIT_H_
#define SRC_KERNEL_AUDIT_H_

#include <string>
#include <vector>

#include "src/sim/types.h"

namespace escort {

class Kernel;
class Owner;

// True when the build globally enforces audits (cmake -DESCORT_AUDIT=ON).
#ifdef ESCORT_AUDIT
inline constexpr bool kAuditEnforcedByDefault = true;
#else
inline constexpr bool kAuditEnforcedByDefault = false;
#endif

// One broken invariant. `check` is a stable rule identifier
// ("owner-drain/pages", "cycle-conservation", ...), `subject` names the
// owner or kernel structure involved, `detail` carries the numbers.
struct AuditViolation {
  std::string check;
  std::string subject;
  std::string detail;
};

class Auditor {
 public:
  // Rule 1. Called by Kernel::DestroyOwner after reclamation, while the
  // owner's counters are still intact. Also usable directly by tests.
  void CheckOwnerDrained(const Owner& owner);

  // Rules 2 and 3. Runs the end-of-run conservation checks against a live
  // kernel. Settles the in-progress idle period first (via Snapshot), so
  // calling it is safe at any time.
  void CheckConservation(Kernel& kernel);

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  void Clear() { violations_.clear(); }

  // Human-readable multi-line report of all recorded violations.
  std::string Report() const;

  // Prints the report to stderr and aborts if any violation was recorded.
  void Enforce() const;

  void AddViolation(std::string check, std::string subject, std::string detail);

 private:
  std::vector<AuditViolation> violations_;
};

// RAII wiring: attaches an Auditor to `kernel` for the scope's lifetime so
// every owner destruction is drain-checked, and runs the end-of-run
// conservation checks on destruction. With `enforce` (the default under
// ESCORT_AUDIT builds) any violation aborts the process; otherwise
// violations are reported to stderr but the run continues.
class AuditScope {
 public:
  explicit AuditScope(Kernel* kernel, bool enforce = kAuditEnforcedByDefault);
  ~AuditScope();

  AuditScope(const AuditScope&) = delete;
  AuditScope& operator=(const AuditScope&) = delete;

  Auditor& auditor() { return auditor_; }

  // Runs the end-of-run checks now (they also run on destruction).
  void Finalize();

 private:
  Kernel* kernel_;
  bool enforce_;
  bool finalized_ = false;
  Auditor auditor_;
};

}  // namespace escort

#endif  // SRC_KERNEL_AUDIT_H_
