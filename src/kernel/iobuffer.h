// IOBuffers (paper §3.3): page-granular buffers used to pass blocks of data
// between protection domains without copying. Similar to FBufs, but with a
// more elaborate reference-counting scheme and more restrictive mapping
// rules:
//
//  * An IOBuffer is allocated to an owner — the current protection domain,
//    or a path crossing the current domain. Owned by the current domain it
//    maps read/write there; owned by a path it maps read/write in the
//    current domain and read-only in the other domains along the path (up to
//    an optional *termination domain*, so paths can traverse multiple
//    security levels).
//  * The identifier of the domain allowed to write is stored in the buffer
//    itself (first long word). Locking increments the refcount and revokes
//    all write permission (writer id set to 0), so a locked buffer can be
//    checked for consistency and never changes under the checker.
//  * Unlocking decrements the refcount; at zero the buffer moves to a buffer
//    cache. A cache hit that already has read mappings in the same domains
//    only upgrades the current domain to read/write — no cleaning, one
//    mapping change.
//  * A pre-existing buffer can be *associated* with a second owner (web
//    cache use case); the second owner is fully charged and the buffer is
//    locked on its behalf.

#ifndef SRC_KERNEL_IOBUFFER_H_
#define SRC_KERNEL_IOBUFFER_H_

#include <cstdint>
#include <list>
#include <map>
#include <utility>
#include <vector>

#include "src/kernel/owner.h"
#include "src/kernel/thread.h"

namespace escort {

class Kernel;
class IoBufferManager;

enum class MapPerm : uint8_t { kNone = 0, kRead = 1, kReadWrite = 2 };

// Buffers are reclaimed when the last lock drops (cache eviction) or when
// an owner dies (ReleaseAllFor during pathKill): deferred closures must
// capture the buffer id, not the IoBuffer*.
// ESCORT_KERNEL_LIFETIME
class IoBuffer {
 public:
  uint64_t id() const { return id_; }
  uint64_t size() const { return data_.size(); }

  // Total outstanding locks across all holders.
  int lock_count() const { return lock_count_; }
  bool locked() const { return lock_count_ > 0; }

  // Domain currently allowed to write. kNoWriter (the paper's "0") while
  // locked.
  static constexpr PdId kNoWriter = -1;
  PdId writer_pd() const { return writer_pd_; }

  MapPerm PermFor(PdId pd) const;
  bool CanRead(PdId pd) const { return PermFor(pd) != MapPerm::kNone; }
  bool CanWrite(PdId pd) const { return PermFor(pd) == MapPerm::kReadWrite && writer_pd_ == pd; }

  // Data access, permission-checked against the accessing domain (this is
  // the software analogue of the MMU). Returns false on a protection fault.
  bool Write(PdId pd, uint64_t offset, const void* src, uint64_t len);
  bool Read(PdId pd, uint64_t offset, void* dst, uint64_t len) const;

  // Unchecked views for the kernel.
  std::vector<uint8_t>& bytes() { return data_; }
  const std::vector<uint8_t>& bytes() const { return data_; }

  // Number of distinct owners currently charged for this buffer.
  size_t holder_count() const { return holders_.size(); }
  bool HeldBy(const Owner* owner) const;

  uint64_t fault_count() const { return fault_count_; }

 private:
  friend class IoBufferManager;

  struct Holder {
    int locks = 0;
    std::list<IoBuffer*>::iterator link;  // position in owner->iobuffer_locks()
  };

  IoBuffer(uint64_t id, uint64_t size) : id_(id), data_(size, 0) {}

  // Permission upsert helpers over the flat mappings_ vector.
  void SetMapping(PdId pd, MapPerm perm);
  void AddMappingIfAbsent(PdId pd, MapPerm perm);

  uint64_t id_;
  PdId writer_pd_ = kNoWriter;
  int lock_count_ = 0;
  std::map<Owner*, Holder> holders_;
  // Flat vector, not a map: a buffer maps into the handful of domains along
  // one path, and PermFor sits on the data-access fast path (every
  // permission-checked Read/Write), where a linear scan of 2-4 entries
  // beats tree traversal.
  std::vector<std::pair<PdId, MapPerm>> mappings_;
  std::vector<uint8_t> data_;
  bool in_cache_ = false;
  // Position in the manager's live list (valid while !in_cache_) or in its
  // size bucket (valid while in_cache_): makes live->cache and cache->live
  // transitions O(1) instead of a list scan per transition.
  std::list<IoBuffer*>::iterator link_;
  mutable uint64_t fault_count_ = 0;
};

// Kernel-side IOBuffer management: allocation (with cache), locking,
// association, reclamation. Cycle costs are charged by the Kernel wrappers;
// this class implements the mechanics and invariants.
class IoBufferManager {
 public:
  IoBufferManager() = default;
  ~IoBufferManager();

  IoBufferManager(const IoBufferManager&) = delete;
  IoBufferManager& operator=(const IoBufferManager&) = delete;

  // Allocates a buffer of `size` bytes (rounded up to whole pages), owned by
  // `owner`, writable from `current_pd`, read-only in `read_domains` (the
  // domains along the owning path up to the termination domain). Consults
  // the buffer cache first. The new buffer starts with one lock held by
  // `owner`. `cache_hit` (optional) reports whether the cache satisfied the
  // request.
  IoBuffer* Alloc(Owner* owner, uint64_t size, PdId current_pd,
                  const std::vector<PdId>& read_domains, bool* cache_hit = nullptr);

  // Locks on behalf of `locker`: refcount++, revokes write permission.
  void Lock(IoBuffer* buf, Owner* locker);

  // Unlocks for `locker`: refcount--; at zero the buffer enters the cache.
  void Unlock(IoBuffer* buf, Owner* locker);

  // Associates a buffer with a second owner: adds read mappings for
  // `read_domains`, locks the buffer for — and fully charges — the second
  // owner.
  void Associate(IoBuffer* buf, Owner* second_owner, const std::vector<PdId>& read_domains);

  // Drops every lock `owner` holds (pathKill reclamation). Returns the
  // number of buffers released.
  uint64_t ReleaseAllFor(Owner* owner);

  uint64_t live_buffers() const { return live_.size(); }
  uint64_t cached_buffers() const { return cached_count_; }
  // Outstanding locks across all live buffers (cached buffers hold none);
  // cross-checked by the auditor against the per-owner lock counters.
  uint64_t total_lock_count() const;
  uint64_t alloc_count() const { return alloc_count_; }
  uint64_t cache_hit_count() const { return cache_hit_count_; }
  uint64_t total_fault_count() const;

 private:
  void AddHolder(IoBuffer* buf, Owner* owner);
  void DropHolder(IoBuffer* buf, Owner* owner);
  void MoveToCache(IoBuffer* buf);

  uint64_t next_id_ = 1;
  std::list<IoBuffer*> live_;
  // Buffer cache, bucketed by (page-rounded) size. Each bucket keeps
  // insertion order, so a lookup sees the same candidate sequence as a
  // scan of one flat insertion-ordered list filtered by size — the
  // bucketing changes lookup cost (no walk over other sizes), never which
  // buffer a hit returns.
  std::map<uint64_t, std::list<IoBuffer*>> cache_;
  uint64_t cached_count_ = 0;
  uint64_t alloc_count_ = 0;
  uint64_t cache_hit_count_ = 0;
};

}  // namespace escort

#endif  // SRC_KERNEL_IOBUFFER_H_
