// Role-based access control for the kernel (paper §2.5, enforcement level 1).
//
// "A conventional role-based access control list is used to guard the kernel
// against unauthorized access. The role is determined by the owner of the
// thread and the current protection domain."

#ifndef SRC_KERNEL_ACL_H_
#define SRC_KERNEL_ACL_H_

#include <bitset>
#include <map>

#include "src/kernel/owner.h"
#include "src/kernel/syscall.h"
#include "src/kernel/thread.h"

namespace escort {

struct Role {
  PdId domain = kKernelDomain;
  OwnerType owner_type = OwnerType::kKernel;
};

class AclTable {
 public:
  // Builds the default policy:
  //  * the privileged domain (0) may issue every syscall;
  //  * unprivileged domains may not manage raw pages, devices, other owners,
  //    or policy (those require the privileged domain), but may use paths,
  //    IOBuffers, threads, events, semaphores, heap, console output and
  //    queries.
  AclTable();

  bool Allows(const Role& role, Syscall sc) const;

  // Grants/revokes a specific syscall for a specific unprivileged domain
  // (e.g. a device-driver module's domain gets device access).
  void Grant(PdId domain, Syscall sc);
  void Revoke(PdId domain, Syscall sc);

  uint64_t denied_count() const { return denied_; }
  void RecordDenied() const { ++denied_; }

 private:
  std::bitset<kNumSyscalls> unprivileged_default_;
  std::map<PdId, std::bitset<kNumSyscalls>> grants_;
  std::map<PdId, std::bitset<kNumSyscalls>> revocations_;
  mutable uint64_t denied_ = 0;
};

}  // namespace escort

#endif  // SRC_KERNEL_ACL_H_
