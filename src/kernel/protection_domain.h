// Protection domains (paper §2.3).
//
// A protection domain is an owner: it holds pages, threads, events and
// semaphores of its own, plus a *heap*. The kernel only hands out memory at
// page granularity; the domain's heap subdivides pages into smaller objects
// for the paths that cross the domain, transferring the charge to the path
// (and back, via module destructors, when the path is destroyed).
//
// Domain 0 is the privileged kernel domain. On the real hardware, crossings
// are enforced by the Alpha MMU; here the kernel validates each crossing
// against the path's allowed-crossings map and charges the (large, TLB-
// invalidate-dominated) crossing cost to the crossing thread's owner.

#ifndef SRC_KERNEL_PROTECTION_DOMAIN_H_
#define SRC_KERNEL_PROTECTION_DOMAIN_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/kernel/owner.h"
#include "src/kernel/thread.h"

namespace escort {

class Kernel;

class ProtectionDomain : public Owner {
 public:
  ProtectionDomain(Kernel* kernel, PdId pd_id, std::string name, uint64_t owner_id)
      : Owner(OwnerType::kProtectionDomain, owner_id, std::move(name)),
        kernel_(kernel),
        pd_id_(pd_id) {}

  PdId pd_id() const { return pd_id_; }
  bool privileged() const { return pd_id_ == kKernelDomain; }

  // --- Heap -----------------------------------------------------------------
  // Allocates `bytes` of heap memory charged to `for_owner` (a path crossing
  // this domain, or the domain itself). Grows the heap by whole pages from
  // the kernel as needed. Returns false if physical memory is exhausted.
  bool HeapAlloc(Owner* for_owner, uint64_t bytes);

  // Releases a prior HeapAlloc charge.
  void HeapFree(Owner* for_owner, uint64_t bytes);

  // Total bytes a given owner currently has charged from this heap.
  uint64_t HeapChargedTo(const Owner* owner) const;

  // Transfers all of `path_owner`'s outstanding heap charge back to this
  // domain (what a module destructor does on pathDestroy; on pathKill the
  // kernel calls it directly). Returns the number of bytes transferred.
  uint64_t HeapChargeBack(Owner* path_owner);

  uint64_t heap_bytes_in_use() const { return heap_in_use_; }
  uint64_t heap_bytes_reserved() const { return heap_reserved_; }

 private:
  Kernel* const kernel_;
  const PdId pd_id_;

  uint64_t heap_in_use_ = 0;
  uint64_t heap_reserved_ = 0;  // page-granular memory backing the heap
  std::map<const Owner*, uint64_t> heap_charges_;
};

}  // namespace escort

#endif  // SRC_KERNEL_PROTECTION_DOMAIN_H_
