#include "src/kernel/device.h"

#include "src/kernel/kernel.h"
#include "src/sim/trace.h"

namespace escort {

Device* DeviceRegistry::Register(const std::string& name, PdId driver_domain) {
  auto dev = std::make_unique<Device>(name, driver_domain);
  Device* raw = dev.get();
  devices_[name] = std::move(dev);
  // The driver's domain gets the device syscalls (configuration-time
  // grant; everyone else stays locked out).
  for (Syscall sc : {Syscall::kDevOpen, Syscall::kDevClose, Syscall::kDevRead,
                     Syscall::kDevWrite, Syscall::kDevControl, Syscall::kDevInterruptRegister}) {
    kernel_->acl().Grant(driver_domain, sc);
  }
  return raw;
}

bool DeviceRegistry::Check(Device* dev, PdId domain, Syscall sc) {
  if (dev == nullptr) {
    return false;
  }
  if (!kernel_->CheckSyscall(domain, sc)) {
    ++denied_;
    return false;
  }
  // Even with the syscall granted, a domain may only touch its own device.
  if (domain != kKernelDomain && domain != dev->owner_domain()) {
    ++denied_;
    return false;
  }
  return true;
}

Device* DeviceRegistry::Open(const std::string& name, PdId domain) {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return nullptr;
  }
  Device* dev = it->second.get();
  if (!Check(dev, domain, Syscall::kDevOpen)) {
    return nullptr;
  }
  dev->opened_ = true;
  return dev;
}

void DeviceRegistry::Close(Device* dev, PdId domain) {
  if (Check(dev, domain, Syscall::kDevClose)) {
    dev->opened_ = false;
  }
}

uint64_t DeviceRegistry::Read(Device* dev, PdId domain, uint64_t arg, void* buf, uint64_t len) {
  if (!Check(dev, domain, Syscall::kDevRead) || !dev->opened_ || !dev->read_) {
    return 0;
  }
  dev->reads_ += 1;
  return dev->read_(arg, buf, len);
}

uint64_t DeviceRegistry::Write(Device* dev, PdId domain, uint64_t arg, const void* data,
                               uint64_t len) {
  if (!Check(dev, domain, Syscall::kDevWrite) || !dev->opened_ || !dev->write_) {
    return 0;
  }
  dev->writes_ += 1;
  return dev->write_(arg, data, len);
}

uint64_t DeviceRegistry::Control(Device* dev, PdId domain, uint64_t arg) {
  if (!Check(dev, domain, Syscall::kDevControl) || !dev->opened_ || !dev->control_) {
    return 0;
  }
  return dev->control_(arg, nullptr, 0);
}

bool Console::Write(PdId domain, const std::string& line) {
  if (!kernel_->CheckSyscall(domain, Syscall::kConsoleWrite)) {
    return false;
  }
  kernel_->ConsumeCharged(line.size() * kernel_->costs().per_byte_touch + 200);
  bytes_ += line.size();
  if (lines_.size() >= kMaxLines) {
    lines_.erase(lines_.begin());
  }
  lines_.push_back(line);
  if (echo_) {
    Tracer::Diag("[console] " + line + "\n");
  }
  return true;
}

}  // namespace escort
