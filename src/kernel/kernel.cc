#include "src/kernel/kernel.h"

#include "src/sim/metrics.h"
#include "src/sim/trace.h"

#include <algorithm>
#include <cassert>

#include "src/kernel/audit.h"

namespace escort {

namespace {

constexpr uint64_t kThreadKmemBytes = 512;   // TCB
constexpr uint64_t kStackKmemBytes = 8192;   // one stack per entered domain
constexpr uint64_t kEventKmemBytes = 96;
constexpr uint64_t kSemaphoreKmemBytes = 64;

}  // namespace

Cycles CycleLedger::Total() const {
  Cycles total = 0;
  for (const auto& [label, c] : totals_) {
    total += c;
  }
  return total;
}

Kernel::Kernel(EventQueue* eq, KernelConfig config) : eq_(eq), config_(config), pages_(config.total_pages) {
  switch (config_.scheduler) {
    case SchedulerKind::kPriority:
      scheduler_ = std::make_unique<PriorityScheduler>();
      break;
    case SchedulerKind::kProportionalShare:
      scheduler_ = std::make_unique<ProportionalShareScheduler>();
      break;
    case SchedulerKind::kEdf:
      scheduler_ = std::make_unique<EdfScheduler>(&eq_->now_ref());
      break;
  }

  kernel_owner_ = std::make_unique<Owner>(OwnerType::kKernel, NextOwnerId(), "kernel");
  idle_owner_ = std::make_unique<Owner>(OwnerType::kIdle, NextOwnerId(), "idle");
  RegisterOwner(kernel_owner_.get(), "Kernel");
  RegisterOwner(idle_owner_.get(), "Idle");
  // The kernel must always win the CPU promptly: highest priority, a large
  // ticket allocation under proportional share.
  kernel_owner_->sched().priority = 1000;
  kernel_owner_->sched().tickets = 50'000;

  // The privileged domain: modules configured with PD 0 live here.
  domains_.push_back(
      std::make_unique<ProtectionDomain>(this, kKernelDomain, "privileged", NextOwnerId()));
  RegisterOwner(domains_[0].get(), "PD:privileged");

  start_time_ = eq_->now();
  idle_ = true;
  idle_since_ = eq_->now();

  if (config_.start_softclock) {
    softclock_thread_ = CreateThread(kernel_owner_.get(), "softclock");
    ScheduleSoftclock();
  }
}

Kernel::~Kernel() {
  if (softclock_event_id_valid_) {
    eq_->Cancel(softclock_event_id_);
  }
}

void Kernel::set_metrics(MetricsRegistry* m) {
  metrics_ = m;
  if (m == nullptr) {
    m_pages_in_use_ = nullptr;
    m_runaway_ = nullptr;
    return;
  }
  m_pages_in_use_ =
      ESCORT_METRIC_GAUGE(m, "kernel.pages_in_use", "physical pages allocated");
  MetricSet(m_pages_in_use_, static_cast<int64_t>(pages_.allocated_pages()));
  m_runaway_ = ESCORT_METRIC_COUNTER(m, "kernel.runaway_detections",
                                     "threads caught over the run budget");
}

// --- Owners / domains -----------------------------------------------------------

ProtectionDomain* Kernel::CreateDomain(const std::string& name) {
  PdId id = static_cast<PdId>(domains_.size());
  domains_.push_back(std::make_unique<ProtectionDomain>(this, id, name, NextOwnerId()));
  ProtectionDomain* pd = domains_.back().get();
  RegisterOwner(pd, "PD:" + name);
  return pd;
}

ProtectionDomain* Kernel::domain(PdId id) {
  if (id < 0 || static_cast<size_t>(id) >= domains_.size()) {
    return nullptr;
  }
  return domains_[static_cast<size_t>(id)].get();
}

void Kernel::RegisterOwner(Owner* owner, const std::string& account_label) {
  account_labels_[owner->id()] = AccountRecord{owner, account_label};
}

void Kernel::UnregisterOwner(Owner* owner) {
  auto it = account_labels_.find(owner->id());
  if (it == account_labels_.end()) {
    return;
  }
  retired_.Charge(it->second.label, owner->usage().cycles);
  account_labels_.erase(it);
}

const std::string& Kernel::AccountLabel(const Owner* owner) const {
  static const std::string kUnknown = "unknown";
  auto it = account_labels_.find(owner->id());
  return it == account_labels_.end() ? kUnknown : it->second.label;
}

// --- ACL --------------------------------------------------------------------------

bool Kernel::CheckSyscall(PdId pd, Syscall sc) {
  Role role;
  role.domain = pd;
  role.owner_type = running_ != nullptr ? running_->owner()->type() : OwnerType::kKernel;
  if (!acl_.Allows(role, sc)) {
    acl_.RecordDenied();
    return false;
  }
  ConsumeSyscall(pd);
  return true;
}

// --- Cycle charging -----------------------------------------------------------------

void Kernel::ChargeCycles(Owner* owner, Cycles c) {
  if (owner == nullptr || owner->destroyed()) {
    owner = kernel_owner_.get();
  }
  owner->usage().cycles += c;
}

void Kernel::Consume(Cycles cost) {
  if (in_item_) {
    pending_consume_ += cost;
  } else {
    // Outside the CPU (boot-time setup): account without advancing time.
    ChargeCycles(kernel_owner_.get(), 0);
  }
}

void Kernel::ConsumeCharged(Cycles cost) {
  if (config_.accounting) {
    cost += config_.costs.accounting_op;
    accounting_overhead_cycles_ += config_.costs.accounting_op;
  }
  Consume(cost);
}

void Kernel::ConsumePrechargedTo(Owner* owner, Cycles cost) {
  if (!in_item_) {
    // Boot-time setup happens before the clock runs; charging without a
    // matching busy period would break conservation.
    return;
  }
  if (config_.accounting) {
    cost += config_.costs.accounting_op;
    accounting_overhead_cycles_ += config_.costs.accounting_op;
  }
  ChargeCycles(owner, cost);
  pending_precharged_ += cost;
}

void Kernel::ConsumeSyscall(PdId from_domain) {
  if (from_domain != kKernelDomain) {
    Consume(config_.costs.syscall_overhead);
  }
}

// --- Threads + CPU ---------------------------------------------------------------------

Thread* Kernel::CreateThread(Owner* owner, const std::string& name) {
  ConsumeCharged(config_.costs.thread_create);
  auto thread = std::make_unique<Thread>(this, owner, name);
  Thread* raw = thread.get();
  threads_.push_back(std::move(thread));
  owner->usage().kmem_bytes += kThreadKmemBytes + kStackKmemBytes;
  return raw;
}

void Kernel::StopThread(Thread* t) {
  if (t == nullptr || t->state_ == ThreadState::kDead) {
    return;
  }
  if (t->state_ == ThreadState::kReady) {
    scheduler_->Remove(t);
  }
  if (t->blocked_on_ != nullptr) {
    auto& waiters = t->blocked_on_->waiters_;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), t), waiters.end());
    t->blocked_on_ = nullptr;
  }
  t->state_ = ThreadState::kDead;
  t->queue_.clear();
  if (!t->owner()->destroyed()) {
    t->owner()->threads().erase(t->owner_link_);
    t->owner()->usage().threads -= 1;
    t->owner()->usage().kmem_bytes -= kThreadKmemBytes + kStackKmemBytes * t->stacks_.size();
    t->owner()->usage().stacks -= t->stacks_.size();
  }
  if (running_ == t) {
    // Preempt-then-destroy: the one legal preemption in Escort.
    running_ = nullptr;
  }
  // Move ownership to the graveyard so in-flight callbacks stay valid.
  auto it = std::find_if(threads_.begin(), threads_.end(),
                         [t](const std::unique_ptr<Thread>& p) { return p.get() == t; });
  if (it != threads_.end()) {
    graveyard_.push_back(std::move(*it));
    threads_.erase(it);
  }
}

Thread* Kernel::Handoff(Thread* t, Owner* target, const std::string& name) {
  Thread* fresh = CreateThread(target, name);
  fresh->queue_ = std::move(t->queue_);
  t->queue_.clear();
  if (fresh->HasWork()) {
    OnThreadHasWork(fresh);
  }
  return fresh;
}

void Kernel::OnThreadHasWork(Thread* t) {
  if (t->state_ == ThreadState::kDead) {
    return;
  }
  if (t->state_ == ThreadState::kBlocked && t->blocked_on_ == nullptr && t->HasWork()) {
    t->state_ = ThreadState::kReady;
    scheduler_->Enqueue(t);
  }
  MaybeDispatch();
}

void Kernel::MaybeDispatch() {
  if (cpu_busy_) {
    return;
  }
  DispatchNext();
}

void Kernel::DispatchNext() {
  ReapGraveyard();
  Thread* t = running_;
  Cycles extra = 0;
  if (t == nullptr) {
    t = scheduler_->Dequeue();
    if (t == nullptr) {
      if (!idle_) {
        idle_ = true;
        idle_since_ = eq_->now();
      }
      return;
    }
    extra += config_.costs.thread_dispatch;
    ++dispatch_count_;
    t->state_ = ThreadState::kRunning;
    running_ = t;
  }
  if (idle_) {
    ChargeCycles(idle_owner_.get(), eq_->now() - idle_since_);
    idle_ = false;
  }
  assert(t->HasWork());
  current_item_ = std::move(t->queue_.front());
  t->queue_.pop_front();

  Cycles cost = current_item_.cost + extra;
  current_item_crossed_ = false;
  if (config_.protection_domains && current_item_.pd != t->current_pd_) {
    current_item_crossed_ = true;
    if (!t->owner()->CrossingAllowed(t->current_pd_, current_item_.pd)) {
      // Illegal crossing: the trap has no registered mapping. The item is
      // dropped; the fault handler (typically pathKill) deals with the
      // offender.
      ++crossing_violations_;
      current_item_.fn = nullptr;
      if (fault_handler_) {
        in_item_ = true;
        pending_consume_ = 0;
        pending_precharged_ = 0;
        fault_handler_(t->owner(), t);
        in_item_ = false;
        Cycles fault_extra = pending_consume_ + pending_precharged_;
        Cycles pc = pending_consume_;
        pending_consume_ = 0;
        pending_precharged_ = 0;
        if (running_ != t || t->state_ == ThreadState::kDead) {
          running_ = nullptr;
          // The dropped item still burned the trap cost; bill the kernel
          // and let the reclamation time pass before the next dispatch.
          cpu_busy_ = true;
          busy_segment_start_ = eq_->now();
          busy_segment_upfront_ = fault_extra - pc;  // precharged teardown
          eq_->ScheduleAfter(fault_extra + config_.costs.pd_crossing, [this, pc] {
            ChargeCycles(kernel_owner_.get(), pc + config_.costs.pd_crossing);
            cpu_busy_ = false;
            DispatchNext();
          });
          return;
        }
        // The thread survived the fault: the handler's time is folded into
        // this item's busy period, with the kernel billed for it at the
        // item's completion (charging now with no elapsed time would break
        // cycle conservation).
        deferred_duration_ += fault_extra;
        deferred_kernel_charge_ += pc;
        cost += fault_extra;
      }
    }
    cost += config_.costs.pd_crossing;
    ++pd_crossings_;
  }
  if (config_.accounting) {
    cost += config_.costs.accounting_op;
    accounting_overhead_cycles_ += config_.costs.accounting_op;
  }
  current_cost_ = cost;
  cpu_busy_ = true;
  busy_segment_start_ = eq_->now();
  busy_segment_upfront_ = deferred_duration_ - deferred_kernel_charge_;
  eq_->ScheduleAfter(cost, [this] { CompleteItem(); });
}

void Kernel::CompleteItem() {
  // Settle any fault-handler time deferred into this item: its duration is
  // part of current_cost_, but the kernel (not the item's owner) pays it.
  const Cycles owner_cost = current_cost_ - deferred_duration_;
  if (deferred_kernel_charge_ > 0) {
    ChargeCycles(kernel_owner_.get(), deferred_kernel_charge_);
  }
  deferred_duration_ = 0;
  deferred_kernel_charge_ = 0;

  Thread* t = running_;
  if (t == nullptr) {
    // The running thread was destroyed while this busy period was in
    // flight; the cycles go to the kernel (reclamation context).
    ChargeCycles(kernel_owner_.get(), owner_cost);
    cpu_busy_ = false;
    DispatchNext();
    return;
  }

  ChargeCycles(t->owner(), owner_cost);
  scheduler_->AccountRun(t, owner_cost);
  t->run_since_yield_ += owner_cost;

  if (current_item_.pd != t->current_pd_) {
    t->current_pd_ = current_item_.pd;
    if (t->stacks_.insert(current_item_.pd).second) {
      // Path threads keep one stack per domain they can execute in.
      t->owner()->usage().stacks += 1;
      t->owner()->usage().kmem_bytes += kStackKmemBytes;
    }
  }

  in_item_ = true;
  pending_consume_ = 0;
  if (current_item_.fn) {
    current_item_.fn();
  }
  in_item_ = false;

  if (pending_consume_ > 0 || pending_precharged_ > 0) {
    // Dynamic costs discovered inside the action (syscalls, per-byte work)
    // extend the busy period before the next dispatch decision.
    Cycles pc = pending_consume_;
    pending_consume_ = 0;
    if (current_item_crossed_ && config_.protection_domains) {
      // TLB refill after the crossing's full invalidate slows the work
      // performed in the freshly entered domain.
      pc += pc * config_.costs.pd_tlb_refill_percent / 100;
    }
    Cycles pre = pending_precharged_;
    pending_precharged_ = 0;
    busy_segment_start_ = eq_->now();
    busy_segment_upfront_ = pre;
    eq_->ScheduleAfter(pc + pre, [this, pc] {
      Thread* rt = running_;
      Owner* charge_to = (rt != nullptr) ? rt->owner() : kernel_owner_.get();
      ChargeCycles(charge_to, pc);
      if (rt != nullptr) {
        scheduler_->AccountRun(rt, pc);
        rt->run_since_yield_ += pc;
      }
      FinishItem();
    });
    return;
  }
  FinishItem();
}

void Kernel::FinishItem() {
  Thread* t = running_;
  if (t == nullptr || t->state_ == ThreadState::kDead) {
    running_ = nullptr;
    cpu_busy_ = false;
    DispatchNext();
    return;
  }

  Owner* owner = t->owner();
  Cycles survivor_extra = 0;
  Cycles survivor_pc = 0;
  bool over_budget = owner->max_thread_run() > 0 && t->run_since_yield_ > owner->max_thread_run();
  if (over_budget) {
    ++runaway_detections_;
    MetricAdd(m_runaway_);
    if (tracer_ != nullptr && tracer_->lifecycle_enabled()) {
      tracer_->Instant(eq_->now(), OwnerTrack(owner->id(), owner->name()),
                       "runaway-detection", "policy",
                       {{"run_since_yield", Tracer::Num(t->run_since_yield_)},
                        {"max_thread_run", Tracer::Num(owner->max_thread_run())}});
    }
  } else if (ledger_watch_ && ledger_watch_(owner, t)) {
    // The watch flagged the owner as a consumption outlier: route it
    // through the same preempt-then-destroy machinery as the run budget.
    over_budget = true;
  }
  if (over_budget) {
    if (runaway_handler_) {
      // The handler typically runs pathKill, whose reclamation cost is
      // precharged; collect it and let the corresponding CPU time pass.
      in_item_ = true;
      pending_consume_ = 0;
      pending_precharged_ = 0;
      runaway_handler_(owner, t);
      in_item_ = false;
      Cycles extra = pending_consume_ + pending_precharged_;
      Cycles pc = pending_consume_;
      pending_consume_ = 0;
      pending_precharged_ = 0;
      if (running_ == nullptr || t->state_ == ThreadState::kDead) {
        running_ = nullptr;
        if (extra > 0) {
          cpu_busy_ = true;
          busy_segment_start_ = eq_->now();
          busy_segment_upfront_ = extra - pc;  // precharged teardown
          eq_->ScheduleAfter(extra, [this, pc] {
            ChargeCycles(kernel_owner_.get(), pc);
            cpu_busy_ = false;
            DispatchNext();
          });
          return;
        }
        cpu_busy_ = false;
        DispatchNext();
        return;
      }
      // The thread survived the runaway check: the handler's time passes as
      // a kernel-billed busy segment after the state transition below
      // (charging now with no elapsed time would break cycle conservation).
      survivor_extra = extra;
      survivor_pc = pc;
    }
  }

  if (t->blocked_on_ != nullptr) {
    t->state_ = ThreadState::kBlocked;
    t->run_since_yield_ = 0;
    running_ = nullptr;
  } else if (!t->HasWork()) {
    t->state_ = ThreadState::kBlocked;
    t->run_since_yield_ = 0;
    running_ = nullptr;
  } else if (current_item_.yields) {
    t->run_since_yield_ = 0;
    t->state_ = ThreadState::kReady;
    scheduler_->Enqueue(t);
    running_ = nullptr;
  }
  // Otherwise the thread keeps the CPU: Escort threads are non-preemptive.
  if (survivor_extra > 0) {
    cpu_busy_ = true;
    busy_segment_start_ = eq_->now();
    busy_segment_upfront_ = survivor_extra - survivor_pc;
    eq_->ScheduleAfter(survivor_extra, [this, survivor_pc] {
      ChargeCycles(kernel_owner_.get(), survivor_pc);
      cpu_busy_ = false;
      DispatchNext();
    });
    return;
  }
  cpu_busy_ = false;
  DispatchNext();
}

void Kernel::ReapGraveyard() { graveyard_.clear(); }

// --- Softclock + events ----------------------------------------------------------------

void Kernel::ScheduleSoftclock() {
  Cycles period = CyclesFromMillis(static_cast<double>(config_.costs.softclock_period_ms));
  softclock_event_id_ = eq_->ScheduleAfter(period, [this] {
    ++softclock_ticks_;
    if (softclock_thread_ != nullptr && softclock_thread_->QueueDepth() < 4) {
      softclock_thread_->Push(config_.costs.softclock_tick, kKernelDomain,
                              [this] { SoftclockTick(); }, /*yields=*/true);
    }
    ScheduleSoftclock();
  });
  softclock_event_id_valid_ = true;
}

void Kernel::SoftclockTick() {
  Cycles now = eq_->now();
  // Index loop: handlers may register new events. A delayed softclock
  // fires every missed period (bounded burst) — rate-based users such as
  // the QoS stream generator rely on the cadence being preserved.
  for (size_t i = 0; i < events_.size(); ++i) {
    KernelEvent* ev = events_[i].get();
    int burst = 0;
    while (!ev->cancelled_ && ev->deadline_ <= now && burst < 16) {
      FireEvent(ev);
      ++burst;
      if (!ev->periodic_) {
        break;
      }
    }
  }
  // Compact out cancelled events occasionally.
  if (events_.size() > 64) {
    std::erase_if(events_, [](const std::unique_ptr<KernelEvent>& e) { return e->cancelled_; });
  }
}

void Kernel::FireEvent(KernelEvent* ev) {
  ev->fire_count_ += 1;
  if (ev->periodic_) {
    ev->deadline_ += ev->period_;
  } else {
    ev->cancelled_ = true;
    if (!ev->owner_->destroyed()) {
      ev->owner_->events().erase(ev->owner_link_);
      ev->owner_->usage().events -= 1;
      ev->owner_->usage().kmem_bytes -= kEventKmemBytes;
    }
  }
  Thread* dispatcher = EventThreadFor(ev->owner_);
  if (dispatcher == nullptr) {
    return;
  }
  KernelEvent::Handler handler = ev->handler_;  // copy: one-shot events die
  dispatcher->Push(ev->dispatch_cost_, ev->pd_, [handler] { handler(); }, /*yields=*/true);
}

Thread* Kernel::EventThreadFor(Owner* owner) {
  if (owner->destroyed()) {
    return nullptr;
  }
  auto it = event_threads_.find(owner);
  if (it != event_threads_.end()) {
    return it->second;
  }
  Thread* t = CreateThread(owner, AccountLabel(owner) + " event thread");
  event_threads_[owner] = t;
  return t;
}

KernelEvent* Kernel::RegisterEvent(Owner* owner, const std::string& name, Cycles delay,
                                   Cycles period, Cycles dispatch_cost, PdId pd,
                                   KernelEvent::Handler handler) {
  ConsumeCharged(config_.costs.event_register);
  auto ev = std::unique_ptr<KernelEvent>(new KernelEvent(
      this, owner, name, eq_->now() + delay, period, dispatch_cost, pd, std::move(handler)));
  KernelEvent* raw = ev.get();
  owner->events().push_front(raw);
  raw->owner_link_ = owner->events().begin();
  owner->usage().events += 1;
  owner->usage().kmem_bytes += kEventKmemBytes;
  events_.push_back(std::move(ev));
  return raw;
}

void Kernel::CancelEvent(KernelEvent* ev) {
  if (ev == nullptr || ev->cancelled_) {
    return;
  }
  ev->cancelled_ = true;
  if (!ev->owner_->destroyed()) {
    ev->owner_->events().erase(ev->owner_link_);
    ev->owner_->usage().events -= 1;
    ev->owner_->usage().kmem_bytes -= kEventKmemBytes;
  }
}

// --- Semaphores ----------------------------------------------------------------------------

Semaphore* Kernel::CreateSemaphore(Owner* owner, const std::string& name, int initial) {
  ConsumeCharged(config_.costs.semaphore_op);
  auto sem = std::make_unique<Semaphore>(this, owner, name, initial);
  Semaphore* raw = sem.get();
  owner->usage().kmem_bytes += kSemaphoreKmemBytes;
  semaphores_.push_back(std::move(sem));
  return raw;
}

void Kernel::DestroySemaphore(Semaphore* sem) {
  if (sem == nullptr) {
    return;
  }
  sem->UnblockForeign();
  if (!sem->owner()->destroyed()) {
    sem->owner()->usage().kmem_bytes -= kSemaphoreKmemBytes;
  }
  std::erase_if(semaphores_, [sem](const std::unique_ptr<Semaphore>& p) { return p.get() == sem; });
}

// --- Memory -----------------------------------------------------------------------------------

Page* Kernel::AllocPage(Owner* owner) {
  ConsumeCharged(config_.costs.alloc_page);
  Page* page = pages_.Alloc(owner);
  MetricSet(m_pages_in_use_, static_cast<int64_t>(pages_.allocated_pages()));
  return page;
}

void Kernel::FreePage(Page* page) {
  ConsumeCharged(config_.costs.free_page);
  pages_.Free(page);
  MetricSet(m_pages_in_use_, static_cast<int64_t>(pages_.allocated_pages()));
}

bool Kernel::ChargeKmem(Owner* owner, uint64_t bytes) {
  ConsumeCharged(config_.costs.alloc_kmem);
  owner->usage().kmem_bytes += bytes;
  return true;
}

void Kernel::UnchargeKmem(Owner* owner, uint64_t bytes) {
  ConsumeCharged(config_.costs.free_kmem);
  if (owner->usage().kmem_bytes >= bytes) {
    owner->usage().kmem_bytes -= bytes;
  } else {
    owner->usage().kmem_bytes = 0;
  }
}

// --- IOBuffers -----------------------------------------------------------------------------------

IoBuffer* Kernel::AllocIoBuffer(Owner* owner, uint64_t size, PdId current_pd,
                                const std::vector<PdId>& read_domains) {
  bool cache_hit = false;
  IoBuffer* buf = iob_.Alloc(owner, size, current_pd, read_domains, &cache_hit);
  ConsumeCharged(cache_hit ? config_.costs.iobuffer_alloc_cached : config_.costs.iobuffer_alloc);
  return buf;
}

void Kernel::LockIoBuffer(IoBuffer* buf, Owner* locker) {
  ConsumeCharged(config_.costs.iobuffer_lock);
  iob_.Lock(buf, locker);
}

void Kernel::UnlockIoBuffer(IoBuffer* buf, Owner* locker) {
  ConsumeCharged(config_.costs.iobuffer_unlock);
  iob_.Unlock(buf, locker);
}

void Kernel::AssociateIoBuffer(IoBuffer* buf, Owner* second, const std::vector<PdId>& read_domains) {
  ConsumeCharged(config_.costs.iobuffer_associate);
  iob_.Associate(buf, second, read_domains);
}

// --- Owner destruction ------------------------------------------------------------------------------

Cycles Kernel::DestroyOwner(Owner* owner, int pd_count) {
  if (owner == nullptr || owner->destroyed()) {
    return 0;
  }
  const CostModel& cm = config_.costs;
  Cycles cost = cm.pathkill_base;
  uint64_t reclaimed_objects = 0;

  // 1. Threads: preempt-then-destroy.
  while (!owner->threads().empty()) {
    Thread* t = owner->threads().front();
    cost += cm.reclaim_per_thread;
    ++reclaimed_objects;
    StopThread(t);
  }

  // 2. Semaphores: wake foreign waiters, then destroy. The destructor
  // unlinks the semaphore from the owner's tracking list.
  while (!owner->semaphores().empty()) {
    Semaphore* sem = owner->semaphores().front();
    sem->UnblockForeign();
    cost += cm.reclaim_per_semaphore;
    ++reclaimed_objects;
    owner->usage().kmem_bytes -= kSemaphoreKmemBytes;
    std::erase_if(semaphores_,
                  [sem](const std::unique_ptr<Semaphore>& p) { return p.get() == sem; });
  }

  // 3. Timer events.
  while (!owner->events().empty()) {
    KernelEvent* ev = owner->events().front();
    owner->events().pop_front();
    owner->usage().events -= 1;
    owner->usage().kmem_bytes -= kEventKmemBytes;
    ev->cancelled_ = true;
    cost += cm.reclaim_per_event;
    ++reclaimed_objects;
  }
  event_threads_.erase(owner);

  // 4. IOBuffer locks.
  uint64_t released = iob_.ReleaseAllFor(owner);
  cost += released * cm.reclaim_per_iobuffer;
  reclaimed_objects += released;

  // 5. Pages.
  while (!owner->pages().empty()) {
    Page* page = owner->pages().front();
    pages_.Free(page);
    cost += cm.reclaim_per_page;
    ++reclaimed_objects;
  }

  // 6. Per-domain teardown: stacks, mappings and IPC channels in every
  // protection domain the owner's path crosses.
  if (config_.protection_domains && pd_count > 0) {
    cost += static_cast<Cycles>(pd_count) * cm.pathkill_per_pd;
  }
  if (config_.accounting) {
    Cycles overhead = reclaimed_objects * cm.accounting_op;
    cost += overhead;
    accounting_overhead_cycles_ += overhead;
  }

  // The reclamation cycles are charged to the owner being torn down (its
  // ledger retires with them below); the CPU time passes on the kernel's
  // watch — removal consumes none of the offender's *remaining* resources.
  ConsumePrechargedTo(owner, cost);
  if (auditor_ != nullptr) {
    size_t violations_before = auditor_->violations().size();
    auditor_->CheckOwnerDrained(*owner);
    if (tracer_ != nullptr && auditor_->violations().size() > violations_before) {
      tracer_->DumpFlight("audit:owner-drain " + owner->name(), eq_->now());
    }
  }
  owner->mark_destroyed();
  UnregisterOwner(owner);
  return cost;
}

// --- Reports -----------------------------------------------------------------------------------------

void Kernel::SettleIdle() {
  if (idle_) {
    ChargeCycles(idle_owner_.get(), eq_->now() - idle_since_);
    idle_since_ = eq_->now();
  }
}

CycleLedger Kernel::Snapshot() {
  SettleIdle();
  CycleLedger ledger = retired_;
  for (const auto& [id, rec] : account_labels_) {
    ledger.Charge(rec.label, rec.owner->usage().cycles);
  }
  return ledger;
}

Cycles Kernel::TotalCharged() { return Snapshot().Total(); }

void Kernel::ResetAccounting() {
  SettleIdle();
  for (auto& [id, rec] : account_labels_) {
    rec.owner->usage().cycles = 0;
  }
  retired_.Reset();
  start_time_ = eq_->now();
  accounting_overhead_cycles_ = 0;
  pd_crossings_ = 0;
  dispatch_count_ = 0;
  unsettled_at_reset_ = UnsettledBusyCycles();
}

int64_t Kernel::UnsettledBusyCycles() const {
  if (!cpu_busy_) {
    return 0;
  }
  return static_cast<int64_t>(eq_->now() - busy_segment_start_) -
         static_cast<int64_t>(busy_segment_upfront_);
}

uint64_t Kernel::live_event_count() const {
  uint64_t live = 0;
  for (const auto& ev : events_) {
    if (!ev->cancelled_) {
      ++live;
    }
  }
  return live;
}

}  // namespace escort
