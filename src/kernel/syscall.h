// The Escort system-call surface.
//
// The paper (§3): "Escort currently implements 52 system calls that provide
// access to the following kernel objects: paths, IObuffers, threads, events,
// semaphores, memory pages, devices, and the console." This enumeration
// reproduces that surface; the role-based ACL (paper §2.5, first enforcement
// level) guards each call by (protection domain, owner type).

#ifndef SRC_KERNEL_SYSCALL_H_
#define SRC_KERNEL_SYSCALL_H_

#include <cstdint>

namespace escort {

enum class Syscall : uint8_t {
  // Paths
  kPathCreate,
  kPathDestroy,
  kPathKill,
  kPathEnqueue,
  kPathDequeue,
  kPathExtendCrossing,
  kPathGetAttr,
  kPathSetAttr,
  kPathRef,
  kPathUnref,
  // IOBuffers
  kIobAlloc,
  kIobLock,
  kIobUnlock,
  kIobAssociate,
  kIobSetDirection,
  kIobQuery,
  // Threads
  kThreadCreate,
  kThreadYield,
  kThreadStop,
  kThreadHandoff,
  kThreadSetRunLimit,
  kThreadQuery,
  // Events
  kEventRegister,
  kEventCancel,
  kEventQuery,
  // Semaphores
  kSemCreate,
  kSemDestroy,
  kSemP,
  kSemV,
  kSemQuery,
  // Memory
  kPageAlloc,
  kPageFree,
  kPageTransfer,
  kHeapAlloc,
  kHeapFree,
  kKmemCharge,
  kKmemUncharge,
  kMemQuery,
  // Devices
  kDevOpen,
  kDevClose,
  kDevRead,
  kDevWrite,
  kDevControl,
  kDevInterruptRegister,
  // Console
  kConsolePutc,
  kConsoleGetc,
  kConsoleWrite,
  // Owners / accounting / policy
  kOwnerQueryUsage,
  kOwnerSetPolicy,
  kOwnerSetSchedParams,
  kOwnerDestroy,
  // Misc
  kGetTime,

  kSyscallCount,
};

inline constexpr int kNumSyscalls = static_cast<int>(Syscall::kSyscallCount);
static_assert(kNumSyscalls == 52, "Escort implements exactly 52 system calls");

const char* SyscallName(Syscall sc);

}  // namespace escort

#endif  // SRC_KERNEL_SYSCALL_H_
