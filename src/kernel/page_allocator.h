// Page-level memory allocator.
//
// The Escort kernel allocates memory to owners at page granularity only
// (paper §2.4); protection domains run heaps on top of pages and hand out
// smaller objects to the paths crossing them, transferring the charge.

#ifndef SRC_KERNEL_PAGE_ALLOCATOR_H_
#define SRC_KERNEL_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <list>
#include <memory>
#include <vector>

#include "src/kernel/owner.h"

namespace escort {

inline constexpr uint64_t kPageSize = 8192;  // Alpha page size

// Pages are freed en masse on owner destruction (pathKill walks
// owner->pages()); a Page* in a deferred closure dangles.
// ESCORT_KERNEL_LIFETIME
struct Page {
  uint64_t id = 0;
  Owner* owner = nullptr;
  std::list<Page*>::iterator owner_link;  // position in owner->pages()
};

class PageAllocator {
 public:
  // `total_pages` caps physical memory; allocation beyond it fails.
  explicit PageAllocator(uint64_t total_pages) : total_pages_(total_pages) {}

  PageAllocator(const PageAllocator&) = delete;
  PageAllocator& operator=(const PageAllocator&) = delete;

  // Allocates one page charged to `owner`. Returns nullptr if out of memory.
  Page* Alloc(Owner* owner);

  // Frees a page, uncharging its owner.
  void Free(Page* page);

  // Reassigns a page to a new owner (used when a protection-domain heap
  // hands memory to a path and on destructor-time charge-back).
  void Transfer(Page* page, Owner* new_owner);

  uint64_t allocated_pages() const { return allocated_; }
  uint64_t total_pages() const { return total_pages_; }
  uint64_t free_pages() const { return total_pages_ - allocated_; }

 private:
  const uint64_t total_pages_;
  uint64_t allocated_ = 0;
  uint64_t next_id_ = 1;
  std::vector<std::unique_ptr<Page>> live_;
};

}  // namespace escort

#endif  // SRC_KERNEL_PAGE_ALLOCATOR_H_
