#include "src/kernel/page_allocator.h"

#include <algorithm>

namespace escort {

Page* PageAllocator::Alloc(Owner* owner) {
  if (allocated_ >= total_pages_ || owner == nullptr || owner->destroyed()) {
    return nullptr;
  }
  auto page = std::make_unique<Page>();
  page->id = next_id_++;
  page->owner = owner;
  owner->pages().push_front(page.get());
  page->owner_link = owner->pages().begin();
  owner->usage().pages += 1;
  ++allocated_;
  Page* raw = page.get();
  live_.push_back(std::move(page));
  return raw;
}

void PageAllocator::Free(Page* page) {
  if (page == nullptr) {
    return;
  }
  if (page->owner != nullptr) {
    page->owner->pages().erase(page->owner_link);
    page->owner->usage().pages -= 1;
    page->owner = nullptr;
  }
  auto it = std::find_if(live_.begin(), live_.end(),
                         [page](const std::unique_ptr<Page>& p) { return p.get() == page; });
  if (it != live_.end()) {
    live_.erase(it);
    --allocated_;
  }
}

void PageAllocator::Transfer(Page* page, Owner* new_owner) {
  if (page == nullptr || new_owner == nullptr) {
    return;
  }
  if (page->owner != nullptr) {
    page->owner->pages().erase(page->owner_link);
    page->owner->usage().pages -= 1;
  }
  page->owner = new_owner;
  new_owner->pages().push_front(page);
  page->owner_link = new_owner->pages().begin();
  new_owner->usage().pages += 1;
}

}  // namespace escort
