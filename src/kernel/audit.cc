#include "src/kernel/audit.h"

#include <cinttypes>
#include <cstdlib>
#include <sstream>

#include "src/kernel/kernel.h"
#include "src/kernel/owner.h"
#include "src/sim/trace.h"

namespace escort {

void Auditor::AddViolation(std::string check, std::string subject, std::string detail) {
  violations_.push_back({std::move(check), std::move(subject), std::move(detail)});
}

void Auditor::CheckOwnerDrained(const Owner& owner) {
  const std::string subject = std::string(OwnerTypeName(owner.type())) + ":" + owner.name();
  auto drained = [&](const char* what, uint64_t residue) {
    if (residue != 0) {
      AddViolation(std::string("owner-drain/") + what, subject,
                   what + std::string(" counter left at ") + std::to_string(residue) +
                       " after destruction (leaked charge or missing release)");
    }
  };
  const ResourceUsage& u = owner.usage();
  drained("kmem_bytes", u.kmem_bytes);
  drained("pages", u.pages);
  drained("stacks", u.stacks);
  drained("events", u.events);
  drained("semaphores", u.semaphores);
  drained("threads", u.threads);
  drained("iobuffer_locks", u.iobuffer_locks);

  auto empty = [&](const char* what, size_t residue) {
    if (residue != 0) {
      AddViolation(std::string("owner-drain/") + what + "-list", subject,
                   std::to_string(residue) + " object(s) left on the " + what +
                       " tracking list after destruction");
    }
  };
  empty("threads", owner.threads().size());
  empty("iobuffer_locks", owner.iobuffer_locks().size());
  empty("events", owner.events().size());
  empty("semaphores", owner.semaphores().size());
  empty("pages", owner.pages().size());
}

void Auditor::CheckConservation(Kernel& kernel) {
  const size_t violations_before = violations_.size();
  // Rule 2: Table 1 as a hard assertion. Summed per-owner cycles (live
  // owners + the retired ledger) must equal elapsed simulation time once
  // the in-flight busy segment is accounted for.
  CycleLedger ledger = kernel.Snapshot();
  const int64_t elapsed =
      static_cast<int64_t>(kernel.now()) - static_cast<int64_t>(kernel.start_time());
  const int64_t charged = static_cast<int64_t>(ledger.Total());
  const int64_t unsettled = kernel.UnsettledBusyCycles() - kernel.unsettled_at_reset();
  if (charged + unsettled != elapsed) {
    std::ostringstream os;
    os << "charged " << charged << " + unsettled " << unsettled << " != elapsed " << elapsed
       << " cycles (drift " << (charged + unsettled - elapsed) << ")";
    AddViolation("cycle-conservation", "kernel", os.str());
  }

  // Rule 3: per-owner counters must agree with the kernel-wide registries.
  uint64_t threads = 0, semaphores = 0, events = 0, pages = 0, locks = 0;
  for (const auto& [id, rec] : kernel.account_labels()) {
    const ResourceUsage& u = rec.owner->usage();
    threads += u.threads;
    semaphores += u.semaphores;
    events += u.events;
    pages += u.pages;
    locks += u.iobuffer_locks;
  }
  auto agree = [&](const char* what, uint64_t summed, uint64_t registry) {
    if (summed != registry) {
      AddViolation(std::string("object-conservation/") + what, "kernel",
                   std::string("sum of per-owner ") + what + " counters (" +
                       std::to_string(summed) + ") != kernel registry (" +
                       std::to_string(registry) + ")");
    }
  };
  agree("threads", threads, kernel.live_thread_count());
  agree("semaphores", semaphores, kernel.live_semaphore_count());
  agree("events", events, kernel.live_event_count());
  agree("pages", pages, kernel.pages().allocated_pages());
  agree("iobuffer_locks", locks, kernel.iobuffers().total_lock_count());

  // Post-mortem context: a conservation violation dumps the flight
  // recorder (the events leading up to the inconsistency) when a tracer
  // is attached.
  if (kernel.tracer() != nullptr && violations_.size() > violations_before) {
    kernel.tracer()->DumpFlight("audit:conservation " + violations_.back().check,
                                kernel.now());
  }
}

std::string Auditor::Report() const {
  std::ostringstream os;
  os << "escort-audit: " << violations_.size() << " violation(s)\n";
  for (const AuditViolation& v : violations_) {
    os << "  [" << v.check << "] " << v.subject << ": " << v.detail << "\n";
  }
  return os.str();
}

void Auditor::Enforce() const {
  if (violations_.empty()) {
    return;
  }
  Tracer::Diag(Report());
  std::abort();
}

AuditScope::AuditScope(Kernel* kernel, bool enforce) : kernel_(kernel), enforce_(enforce) {
  kernel_->set_auditor(&auditor_);
}

void AuditScope::Finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  auditor_.CheckConservation(*kernel_);
}

AuditScope::~AuditScope() {
  Finalize();
  kernel_->set_auditor(nullptr);
  if (enforce_) {
    auditor_.Enforce();
  } else if (!auditor_.ok()) {
    Tracer::Diag(auditor_.Report());
  }
}

}  // namespace escort
