// Kernel semaphores (paper §3.2).
//
// Semaphores are owned by a path or protection domain. Threads blocked on a
// semaphore are not limited to threads of the semaphore's owner — but if the
// semaphore is destroyed, all *foreign* threads blocked on it are unblocked
// (the owner's threads die with the owner anyway).

#ifndef SRC_KERNEL_SEMAPHORE_H_
#define SRC_KERNEL_SEMAPHORE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/kernel/owner.h"
#include "src/kernel/thread.h"

namespace escort {

class Kernel;

// Semaphores die with their owner (pathKill walks owner->semaphores());
// a Semaphore* in a deferred closure dangles.
// ESCORT_KERNEL_LIFETIME
class Semaphore {
 public:
  Semaphore(Kernel* kernel, Owner* owner, std::string name, int initial);
  ~Semaphore();

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  Owner* owner() const { return owner_; }
  int count() const { return count_; }
  size_t waiters() const { return waiters_.size(); }

  // P: decrements; if the count would go negative, blocks `t` (the thread
  // stops being scheduled until a matching V). Returns true if the thread
  // acquired without blocking.
  bool P(Thread* t);

  // V: increments; wakes the longest-waiting thread if any.
  void V();

  // Destruction semantics: unblocks all waiting threads that do not belong
  // to this semaphore's owner. Called by the kernel on owner teardown.
  void UnblockForeign();

 private:
  friend class Kernel;

  Kernel* const kernel_;
  Owner* const owner_;
  const std::string name_;
  int count_;
  std::deque<Thread*> waiters_;
  std::list<Semaphore*>::iterator owner_link_;
};

}  // namespace escort

#endif  // SRC_KERNEL_SEMAPHORE_H_
