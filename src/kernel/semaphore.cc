#include "src/kernel/semaphore.h"

#include <algorithm>

#include "src/kernel/kernel.h"

namespace escort {

Semaphore::Semaphore(Kernel* kernel, Owner* owner, std::string name, int initial)
    : kernel_(kernel), owner_(owner), name_(std::move(name)), count_(initial) {
  owner_->semaphores().push_front(this);
  owner_link_ = owner_->semaphores().begin();
  owner_->usage().semaphores += 1;
}

Semaphore::~Semaphore() {
  if (!owner_->destroyed()) {
    owner_->semaphores().erase(owner_link_);
    owner_->usage().semaphores -= 1;
  }
}

bool Semaphore::P(Thread* t) {
  kernel_->ConsumeCharged(kernel_->costs().semaphore_op);
  if (count_ > 0) {
    --count_;
    return true;
  }
  waiters_.push_back(t);
  t->blocked_on_ = this;
  return false;
}

void Semaphore::V() {
  kernel_->ConsumeCharged(kernel_->costs().semaphore_op);
  // Skip over threads that died while blocked.
  while (!waiters_.empty()) {
    Thread* t = waiters_.front();
    if (t->state() == ThreadState::kDead) {
      waiters_.pop_front();
      continue;
    }
    waiters_.pop_front();
    t->blocked_on_ = nullptr;
    kernel_->OnThreadHasWork(t);
    return;
  }
  ++count_;
}

void Semaphore::UnblockForeign() {
  std::deque<Thread*> keep;
  for (Thread* t : waiters_) {
    if (t->state() == ThreadState::kDead) {
      continue;
    }
    if (t->owner() != owner_) {
      t->blocked_on_ = nullptr;
      kernel_->OnThreadHasWork(t);
    } else {
      keep.push_back(t);
    }
  }
  waiters_ = std::move(keep);
}

}  // namespace escort
