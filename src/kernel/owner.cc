#include "src/kernel/owner.h"

namespace escort {

bool Owner::CrossingAllowed(PdId from, PdId to) const {
  // Non-path owners: a thread stays in its domain; entering or leaving the
  // privileged domain (syscalls, event dispatch) is always legal.
  return from == to || from == kKernelDomain || to == kKernelDomain;
}

const char* OwnerTypeName(OwnerType type) {
  switch (type) {
    case OwnerType::kPath:
      return "path";
    case OwnerType::kProtectionDomain:
      return "protection-domain";
    case OwnerType::kKernel:
      return "kernel";
    case OwnerType::kIdle:
      return "idle";
  }
  return "unknown";
}

}  // namespace escort
