// Owner: the unit of resource accounting in Escort (paper Figures 4 and 5).
//
// Every resource in the system — CPU cycles, kernel memory, memory pages,
// thread stacks, events, semaphores, IOBuffer locks — is charged to an
// owner, which is either a *path* or a *protection domain* (plus the two
// pseudo-owners the kernel itself uses: Kernel and Idle). The structure has
// three parts, exactly as in the paper:
//   1. accounting counters, consulted by security policies,
//   2. tracking lists of the live kernel objects charged to this owner,
//      supporting fast reclamation when the owner is destroyed, and
//   3. scheduling state for the threads this owner owns.

#ifndef SRC_KERNEL_OWNER_H_
#define SRC_KERNEL_OWNER_H_

#include <cstdint>
#include <list>
#include <string>

#include "src/sim/types.h"

namespace escort {

class Thread;
class IoBuffer;
class KernelEvent;
class Semaphore;
struct Page;

// Protection-domain identifier. Domain 0 is the privileged kernel domain.
using PdId = int;
inline constexpr PdId kKernelDomain = 0;

enum class OwnerType {
  kPath,
  kProtectionDomain,
  kKernel,  // pseudo-owner: softclock, interrupt handling, reclamation
  kIdle,    // pseudo-owner: cycles the CPU spends with nothing runnable
};

const char* OwnerTypeName(OwnerType type);

// Part 1 of the Owner structure: resource counters used to decide whether a
// security policy has been violated.
struct ResourceUsage {
  uint64_t kmem_bytes = 0;   // kernel memory backing objects in the lists
  uint64_t pages = 0;        // memory pages
  uint64_t stacks = 0;       // thread stacks (one per domain a thread enters)
  Cycles cycles = 0;         // CPU cycles consumed
  uint64_t events = 0;       // registered timer events
  uint64_t semaphores = 0;   // live semaphores
  uint64_t threads = 0;      // live threads
  uint64_t iobuffer_locks = 0;  // IOBuffer locks held
};

// Scheduling state, interpreted by the configured scheduler.
struct SchedState {
  // Priority scheduler: higher runs first.
  int priority = 0;
  // Proportional-share (stride) scheduler.
  uint64_t tickets = 100;
  uint64_t pass = 0;        // virtual time; owner with smallest pass runs next
  bool pass_initialized = false;
  // EDF scheduler: relative deadline (period); 0 means best-effort backlog.
  Cycles period = 0;
  Cycles next_deadline = 0;
};

// Owners (paths, protection domains) are destroyed by pathDestroy/pathKill
// while deferred work may still reference them: EA001 forbids capturing an
// Owner* (or any subclass pointer) into deferred closures — capture the
// owner id and revalidate instead.
// ESCORT_KERNEL_LIFETIME
class Owner {
 public:
  Owner(OwnerType type, uint64_t id, std::string name)
      : type_(type), id_(id), name_(std::move(name)) {}
  virtual ~Owner() = default;

  Owner(const Owner&) = delete;
  Owner& operator=(const Owner&) = delete;

  OwnerType type() const { return type_; }
  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  ResourceUsage& usage() { return usage_; }
  const ResourceUsage& usage() const { return usage_; }

  SchedState& sched() { return sched_; }
  const SchedState& sched() const { return sched_; }

  bool destroyed() const { return destroyed_; }
  void mark_destroyed() { destroyed_ = true; }

  // Maximum cycles a thread of this owner may run without yielding before
  // the kernel declares it runaway and destroys the owner (paper §3.2).
  // Zero disables the check.
  Cycles max_thread_run() const { return max_thread_run_; }
  void set_max_thread_run(Cycles c) { max_thread_run_ = c; }

  // Whether threads of this owner may cross from domain `from` to domain
  // `to`. Paths override this with their allowed-crossings map (paper §3.1);
  // protection-domain-owned threads never cross (paper §3.2).
  virtual bool CrossingAllowed(PdId from, PdId to) const;

  // Part 2: tracking lists. Objects insert/remove themselves; the kernel
  // walks these to reclaim everything on owner destruction.
  std::list<Thread*>& threads() { return threads_; }
  std::list<IoBuffer*>& iobuffer_locks() { return iobuffer_locks_; }
  std::list<KernelEvent*>& events() { return events_; }
  std::list<Semaphore*>& semaphores() { return semaphores_; }
  std::list<Page*>& pages() { return pages_; }

  const std::list<Thread*>& threads() const { return threads_; }
  const std::list<IoBuffer*>& iobuffer_locks() const { return iobuffer_locks_; }
  const std::list<KernelEvent*>& events() const { return events_; }
  const std::list<Semaphore*>& semaphores() const { return semaphores_; }
  const std::list<Page*>& pages() const { return pages_; }

 private:
  const OwnerType type_;
  const uint64_t id_;
  const std::string name_;

  ResourceUsage usage_;
  SchedState sched_;
  Cycles max_thread_run_ = 0;
  bool destroyed_ = false;

  std::list<Thread*> threads_;
  std::list<IoBuffer*> iobuffer_locks_;
  std::list<KernelEvent*> events_;
  std::list<Semaphore*> semaphores_;
  std::list<Page*> pages_;
};

}  // namespace escort

#endif  // SRC_KERNEL_OWNER_H_
