#include "src/kernel/protection_domain.h"

#include "src/kernel/kernel.h"
#include "src/kernel/page_allocator.h"

namespace escort {

bool ProtectionDomain::HeapAlloc(Owner* for_owner, uint64_t bytes) {
  // Grow the heap by whole pages; the kernel only deals in pages and the
  // pages are charged to this domain.
  while (heap_in_use_ + bytes > heap_reserved_) {
    // NOLINT-EA003(heap pages are retained on purpose: they stay charged to this domain until teardown releases the whole heap)
    Page* page = kernel_->AllocPage(this);
    if (page == nullptr) {
      return false;
    }
    heap_reserved_ += kPageSize;
  }
  heap_in_use_ += bytes;
  heap_charges_[for_owner] += bytes;
  // The sub-page charge lands on the requesting owner (typically a path
  // crossing this domain); the backing pages stay charged to the domain.
  for_owner->usage().kmem_bytes += bytes;
  kernel_->ConsumeCharged(kernel_->costs().heap_alloc);
  return true;
}

void ProtectionDomain::HeapFree(Owner* for_owner, uint64_t bytes) {
  auto it = heap_charges_.find(for_owner);
  if (it == heap_charges_.end()) {
    return;
  }
  if (bytes > it->second) {
    bytes = it->second;
  }
  it->second -= bytes;
  if (it->second == 0) {
    heap_charges_.erase(it);
  }
  heap_in_use_ -= bytes;
  for_owner->usage().kmem_bytes -= bytes;
  kernel_->ConsumeCharged(kernel_->costs().heap_free);
}

uint64_t ProtectionDomain::HeapChargedTo(const Owner* owner) const {
  auto it = heap_charges_.find(owner);
  return it == heap_charges_.end() ? 0 : it->second;
}

uint64_t ProtectionDomain::HeapChargeBack(Owner* path_owner) {
  auto it = heap_charges_.find(path_owner);
  if (it == heap_charges_.end()) {
    return 0;
  }
  uint64_t bytes = it->second;
  heap_charges_.erase(it);
  // Charge transfers back to the domain, which remains responsible for
  // ultimately returning the pages to the kernel.
  path_owner->usage().kmem_bytes -= bytes;
  usage().kmem_bytes += bytes;
  heap_charges_[this] += bytes;
  return bytes;
}

}  // namespace escort
