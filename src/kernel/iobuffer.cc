#include "src/kernel/iobuffer.h"

#include <algorithm>
#include <cstring>

#include "src/kernel/page_allocator.h"

namespace escort {

namespace {

uint64_t RoundUpToPages(uint64_t bytes) {
  if (bytes == 0) {
    return kPageSize;
  }
  return (bytes + kPageSize - 1) / kPageSize * kPageSize;
}

}  // namespace

// --- IoBuffer -----------------------------------------------------------------

MapPerm IoBuffer::PermFor(PdId pd) const {
  for (const auto& [mapped, perm] : mappings_) {
    if (mapped == pd) {
      return perm;
    }
  }
  return MapPerm::kNone;
}

void IoBuffer::SetMapping(PdId pd, MapPerm perm) {
  for (auto& [mapped, existing] : mappings_) {
    if (mapped == pd) {
      existing = perm;
      return;
    }
  }
  mappings_.emplace_back(pd, perm);
}

void IoBuffer::AddMappingIfAbsent(PdId pd, MapPerm perm) {
  for (const auto& [mapped, existing] : mappings_) {
    if (mapped == pd) {
      return;
    }
  }
  mappings_.emplace_back(pd, perm);
}

bool IoBuffer::Write(PdId pd, uint64_t offset, const void* src, uint64_t len) {
  if (!CanWrite(pd) || offset + len > data_.size()) {
    ++fault_count_;
    return false;
  }
  std::memcpy(data_.data() + offset, src, len);
  return true;
}

bool IoBuffer::Read(PdId pd, uint64_t offset, void* dst, uint64_t len) const {
  if (!CanRead(pd) || offset + len > data_.size()) {
    ++fault_count_;
    return false;
  }
  std::memcpy(dst, data_.data() + offset, len);
  return true;
}

bool IoBuffer::HeldBy(const Owner* owner) const {
  return holders_.find(const_cast<Owner*>(owner)) != holders_.end();
}

// --- IoBufferManager ------------------------------------------------------------

IoBufferManager::~IoBufferManager() {
  for (IoBuffer* buf : live_) {
    delete buf;
  }
  for (auto& [size, bucket] : cache_) {
    for (IoBuffer* buf : bucket) {
      delete buf;
    }
  }
}

void IoBufferManager::AddHolder(IoBuffer* buf, Owner* owner) {
  auto [it, inserted] = buf->holders_.try_emplace(owner);
  if (inserted) {
    owner->iobuffer_locks().push_front(buf);
    it->second.link = owner->iobuffer_locks().begin();
    owner->usage().kmem_bytes += buf->size();
  }
  it->second.locks += 1;
  owner->usage().iobuffer_locks += 1;
  buf->lock_count_ += 1;
}

void IoBufferManager::DropHolder(IoBuffer* buf, Owner* owner) {
  auto it = buf->holders_.find(owner);
  if (it == buf->holders_.end()) {
    return;
  }
  buf->lock_count_ -= it->second.locks;
  owner->usage().iobuffer_locks -= static_cast<uint64_t>(it->second.locks);
  owner->usage().kmem_bytes -= buf->size();
  owner->iobuffer_locks().erase(it->second.link);
  buf->holders_.erase(it);
}

IoBuffer* IoBufferManager::Alloc(Owner* owner, uint64_t size, PdId current_pd,
                                 const std::vector<PdId>& read_domains, bool* cache_hit) {
  uint64_t rounded = RoundUpToPages(size);
  ++alloc_count_;

  // Buffer-cache lookup: a cached buffer of the right size whose read
  // mappings already cover the requested domains needs only the current
  // domain's mapping upgraded to read/write — no cleaning required.
  auto bucket_it = cache_.find(rounded);
  if (bucket_it != cache_.end()) {
    std::list<IoBuffer*>& bucket = bucket_it->second;
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      IoBuffer* buf = *it;
      bool covers = true;
      for (PdId pd : read_domains) {
        if (!buf->CanRead(pd) && pd != current_pd) {
          covers = false;
          break;
        }
      }
      if (!covers) {
        continue;
      }
      bucket.erase(it);
      --cached_count_;
      buf->in_cache_ = false;
      buf->SetMapping(current_pd, MapPerm::kReadWrite);
      buf->writer_pd_ = current_pd;
      buf->link_ = live_.insert(live_.end(), buf);
      AddHolder(buf, owner);
      ++cache_hit_count_;
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return buf;
    }
  }

  auto* buf = new IoBuffer(next_id_++, rounded);
  buf->SetMapping(current_pd, MapPerm::kReadWrite);
  buf->writer_pd_ = current_pd;
  for (PdId pd : read_domains) {
    if (pd != current_pd) {
      buf->AddMappingIfAbsent(pd, MapPerm::kRead);
    }
  }
  buf->link_ = live_.insert(live_.end(), buf);
  AddHolder(buf, owner);
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  return buf;
}

void IoBufferManager::Lock(IoBuffer* buf, Owner* locker) {
  AddHolder(buf, locker);
  // Locking removes all write privileges: the buffer can now be checked for
  // consistency and cannot be altered by the original writer.
  buf->writer_pd_ = IoBuffer::kNoWriter;
}

void IoBufferManager::Unlock(IoBuffer* buf, Owner* locker) {
  auto it = buf->holders_.find(locker);
  if (it == buf->holders_.end()) {
    return;
  }
  it->second.locks -= 1;
  locker->usage().iobuffer_locks -= 1;
  buf->lock_count_ -= 1;
  if (it->second.locks == 0) {
    locker->usage().kmem_bytes -= buf->size();
    locker->iobuffer_locks().erase(it->second.link);
    buf->holders_.erase(it);
  }
  if (buf->lock_count_ == 0) {
    MoveToCache(buf);
  }
}

void IoBufferManager::Associate(IoBuffer* buf, Owner* second_owner,
                                const std::vector<PdId>& read_domains) {
  for (PdId pd : read_domains) {
    buf->AddMappingIfAbsent(pd, MapPerm::kRead);
  }
  // Association includes locking for — and fully charging — the second
  // owner, so the buffer survives the original owner dropping its lock.
  Lock(buf, second_owner);
}

uint64_t IoBufferManager::ReleaseAllFor(Owner* owner) {
  uint64_t released = 0;
  while (!owner->iobuffer_locks().empty()) {
    IoBuffer* buf = owner->iobuffer_locks().front();
    DropHolder(buf, owner);
    if (buf->lock_count_ == 0) {
      MoveToCache(buf);
    }
    ++released;
  }
  return released;
}

void IoBufferManager::MoveToCache(IoBuffer* buf) {
  // All write mappings are removed when the buffer is cached; read mappings
  // are kept so a future allocation in the same domains is a cheap hit.
  if (!buf->in_cache_) {
    live_.erase(buf->link_);
  }
  for (auto& [pd, perm] : buf->mappings_) {
    if (perm == MapPerm::kReadWrite) {
      perm = MapPerm::kRead;
    }
  }
  buf->writer_pd_ = IoBuffer::kNoWriter;
  buf->in_cache_ = true;
  std::list<IoBuffer*>& bucket = cache_[buf->size()];
  buf->link_ = bucket.insert(bucket.end(), buf);
  ++cached_count_;
}

uint64_t IoBufferManager::total_lock_count() const {
  uint64_t total = 0;
  for (const IoBuffer* buf : live_) {
    total += static_cast<uint64_t>(buf->lock_count());
  }
  return total;
}

uint64_t IoBufferManager::total_fault_count() const {
  uint64_t total = 0;
  for (const IoBuffer* buf : live_) {
    total += buf->fault_count();
  }
  for (const auto& [size, bucket] : cache_) {
    for (const IoBuffer* buf : bucket) {
      total += buf->fault_count();
    }
  }
  return total;
}

}  // namespace escort
