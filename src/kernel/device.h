// Device registry and the console (paper §3: the 52 syscalls provide
// access to "paths, IObuffers, threads, events, semaphores, memory pages,
// devices, and the console").
//
// Devices are named kernel objects a driver module opens to gain access to
// its hardware; opening is ACL-guarded (only domains granted kDevOpen may
// touch devices — the configuration grants a driver's domain access to its
// own device, matching "the device drivers also have access to the memory
// regions used to access their devices"). The console is the diagnostic
// output channel; writes are charged to the writing owner.

#ifndef SRC_KERNEL_DEVICE_H_
#define SRC_KERNEL_DEVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "src/kernel/owner.h"
#include "src/kernel/syscall.h"

namespace escort {

class Kernel;

// A registered device: name, interrupt hook, I/O callbacks supplied by the
// simulation layer (the wire, the disk).
class Device {
 public:
  using IoHandler = std::function<uint64_t(uint64_t arg, const void* data, uint64_t len)>;

  Device(std::string name, PdId owner_domain) : name_(std::move(name)), domain_(owner_domain) {}

  const std::string& name() const { return name_; }
  PdId owner_domain() const { return domain_; }
  bool opened() const { return opened_; }

  void set_read_handler(IoHandler h) { read_ = std::move(h); }
  void set_write_handler(IoHandler h) { write_ = std::move(h); }
  void set_control_handler(IoHandler h) { control_ = std::move(h); }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  friend class DeviceRegistry;

  const std::string name_;
  const PdId domain_;
  bool opened_ = false;
  IoHandler read_;
  IoHandler write_;
  IoHandler control_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

class DeviceRegistry {
 public:
  explicit DeviceRegistry(Kernel* kernel) : kernel_(kernel) {}

  // Registers a device bound to a driver domain (configuration time). The
  // driver's domain is granted the device syscalls.
  Device* Register(const std::string& name, PdId driver_domain);

  // devOpen from `domain`: ACL-checked; only the bound driver domain (or
  // the privileged domain) may open the device.
  Device* Open(const std::string& name, PdId domain);
  void Close(Device* dev, PdId domain);

  // devRead/devWrite/devControl: ACL-checked, charged to the caller.
  uint64_t Read(Device* dev, PdId domain, uint64_t arg, void* buf, uint64_t len);
  uint64_t Write(Device* dev, PdId domain, uint64_t arg, const void* data, uint64_t len);
  uint64_t Control(Device* dev, PdId domain, uint64_t arg);

  size_t device_count() const { return devices_.size(); }
  uint64_t denied() const { return denied_; }

 private:
  bool Check(Device* dev, PdId domain, Syscall sc);

  Kernel* const kernel_;
  std::map<std::string, std::unique_ptr<Device>> devices_;
  uint64_t denied_ = 0;
};

// The console: line-oriented diagnostic output, charged to the writing
// owner, with an in-memory ring for tests and a quiet mode for benches.
class Console {
 public:
  explicit Console(Kernel* kernel) : kernel_(kernel) {}

  // consoleWrite: appends a line; cycles charged to the current owner.
  // ACL-checked against the calling domain.
  bool Write(PdId domain, const std::string& line);

  void set_echo_to_stdout(bool on) { echo_ = on; }
  const std::vector<std::string>& lines() const { return lines_; }
  uint64_t bytes_written() const { return bytes_; }

  static constexpr size_t kMaxLines = 256;

 private:
  Kernel* const kernel_;
  std::vector<std::string> lines_;
  uint64_t bytes_ = 0;
  bool echo_ = false;
};

}  // namespace escort

#endif  // SRC_KERNEL_DEVICE_H_
