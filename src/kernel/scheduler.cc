#include "src/kernel/scheduler.h"

#include <algorithm>
#include <limits>

namespace escort {

namespace {

// Removes `t` from a deque, returning true if it was present.
bool EraseFrom(std::deque<Thread*>& dq, Thread* t) {
  auto it = std::find(dq.begin(), dq.end(), t);
  if (it == dq.end()) {
    return false;
  }
  dq.erase(it);
  return true;
}

}  // namespace

// --- PriorityScheduler -----------------------------------------------------

void PriorityScheduler::Enqueue(Thread* t) { ready_[t->owner()->sched().priority].push_back(t); }

Thread* PriorityScheduler::Dequeue() {
  for (auto it = ready_.begin(); it != ready_.end();) {
    if (it->second.empty()) {
      it = ready_.erase(it);
      continue;
    }
    Thread* t = it->second.front();
    it->second.pop_front();
    return t;
  }
  return nullptr;
}

void PriorityScheduler::Remove(Thread* t) {
  for (auto& [prio, dq] : ready_) {
    if (EraseFrom(dq, t)) {
      return;
    }
  }
}

bool PriorityScheduler::Empty() const {
  for (const auto& [prio, dq] : ready_) {
    if (!dq.empty()) {
      return false;
    }
  }
  return true;
}

// --- ProportionalShareScheduler ---------------------------------------------

void ProportionalShareScheduler::Enqueue(Thread* t) {
  SchedState& s = t->owner()->sched();
  if (!s.pass_initialized || s.pass < global_pass_) {
    // A newly arriving (or long-sleeping) owner joins at the current virtual
    // time so it cannot starve others by hoarding credit.
    s.pass = global_pass_;
    s.pass_initialized = true;
  }
  ready_.push_back(t);
  ++live_;
}

void ProportionalShareScheduler::CollectTombstones() {
  while (!ready_.empty() && ready_.front() == nullptr) {
    ready_.pop_front();
  }
  if (ready_.size() > 2 * live_) {
    ready_.erase(std::remove(ready_.begin(), ready_.end(), nullptr), ready_.end());
  }
}

Thread* ProportionalShareScheduler::Dequeue() {
  auto best = ready_.end();
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (*it == nullptr) {
      continue;
    }
    if (best == ready_.end() ||
        (*it)->owner()->sched().pass < (*best)->owner()->sched().pass) {
      best = it;
    }
  }
  if (best == ready_.end()) {
    return nullptr;
  }
  Thread* t = *best;
  *best = nullptr;
  --live_;
  CollectTombstones();
  // The global virtual time is the *minimum* pass in the system (the pass
  // of the owner just selected). Arriving owners join at this time: they
  // cannot hoard credit from a sleep, and a high-ticket owner that blocks
  // briefly keeps its low pass — its reservation survives re-joining.
  global_pass_ = t->owner()->sched().pass;
  return t;
}

void ProportionalShareScheduler::Remove(Thread* t) {
  auto it = std::find(ready_.begin(), ready_.end(), t);
  if (it != ready_.end()) {
    *it = nullptr;
    --live_;
    CollectTombstones();
  }
}

void ProportionalShareScheduler::AccountRun(Thread* t, Cycles used) {
  SchedState& s = t->owner()->sched();
  uint64_t tickets = s.tickets == 0 ? 1 : s.tickets;
  // Pass advances inversely to the ticket allocation; the scale keeps
  // precision for small runs against large ticket counts.
  s.pass += used * kStrideScale / tickets;
}

bool ProportionalShareScheduler::Empty() const { return live_ == 0; }

// --- EdfScheduler -------------------------------------------------------------

void EdfScheduler::Enqueue(Thread* t) {
  SchedState& s = t->owner()->sched();
  if (s.period != 0 && s.next_deadline <= *now_) {
    s.next_deadline = *now_ + s.period;
  }
  ready_.push_back(t);
}

Thread* EdfScheduler::Dequeue() {
  if (ready_.empty()) {
    return nullptr;
  }
  auto best = ready_.end();
  Cycles best_deadline = std::numeric_limits<Cycles>::max();
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    const SchedState& s = (*it)->owner()->sched();
    Cycles deadline =
        s.period == 0 ? std::numeric_limits<Cycles>::max() - 1 : s.next_deadline;
    if (deadline < best_deadline) {
      best_deadline = deadline;
      best = it;
    }
  }
  if (best == ready_.end()) {
    best = ready_.begin();
  }
  Thread* t = *best;
  ready_.erase(best);
  return t;
}

void EdfScheduler::Remove(Thread* t) { EraseFrom(ready_, t); }

bool EdfScheduler::Empty() const { return ready_.empty(); }

}  // namespace escort
