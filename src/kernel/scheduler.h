// Thread schedulers. Escort configures the scheduler at build time (paper
// §3.2): a priority scheduler, a proportional-share scheduler (used for the
// QoS experiments), and an EDF scheduler.
//
// Scheduling state lives in the *owner* (paper Figure 4): all threads of an
// owner share its priority / ticket allocation / deadline.

#ifndef SRC_KERNEL_SCHEDULER_H_
#define SRC_KERNEL_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/kernel/thread.h"

namespace escort {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Adds a ready thread. A thread is enqueued at most once.
  virtual void Enqueue(Thread* t) = 0;

  // Removes and returns the next thread to run; nullptr if none ready.
  virtual Thread* Dequeue() = 0;

  // Removes a thread wherever it is queued (blocking / destruction).
  virtual void Remove(Thread* t) = 0;

  // Charges `used` cycles of CPU to the owner for scheduling purposes
  // (proportional share advances the owner's pass; others ignore it).
  virtual void AccountRun(Thread* t, Cycles used) = 0;

  virtual bool Empty() const = 0;
  virtual const char* name() const = 0;
};

// Strict priority with FIFO order within a priority level.
// Owner::sched().priority — larger value runs first.
class PriorityScheduler : public Scheduler {
 public:
  void Enqueue(Thread* t) override;
  Thread* Dequeue() override;
  void Remove(Thread* t) override;
  void AccountRun(Thread* /*t*/, Cycles /*used*/) override {}
  bool Empty() const override;
  const char* name() const override { return "priority"; }

 private:
  // priority -> FIFO of threads; iterate from the highest priority.
  std::map<int, std::deque<Thread*>, std::greater<int>> ready_;
};

// Stride (proportional-share) scheduling. Each owner holds tickets; the
// owner with the smallest pass value runs next and its pass advances in
// inverse proportion to its tickets. This is the scheduler that sustains the
// 1 MB/s QoS stream in Figures 10 and 11.
class ProportionalShareScheduler : public Scheduler {
 public:
  void Enqueue(Thread* t) override;
  Thread* Dequeue() override;
  void Remove(Thread* t) override;
  void AccountRun(Thread* t, Cycles used) override;
  bool Empty() const override;
  const char* name() const override { return "proportional-share"; }

 private:
  static constexpr uint64_t kStrideScale = 1 << 20;

  // Dequeue picks the minimum-pass thread, ties broken by queue position
  // — so removal must not disturb the order of the survivors. A removed
  // thread leaves a null tombstone instead of shifting the deque;
  // tombstones are popped eagerly at the front and compacted when they
  // outnumber live entries.
  void CollectTombstones();

  std::deque<Thread*> ready_;
  size_t live_ = 0;
  uint64_t global_pass_ = 0;
};

// Earliest-deadline-first. Owners with period 0 run as best-effort backlog
// behind all deadline owners.
class EdfScheduler : public Scheduler {
 public:
  explicit EdfScheduler(const Cycles* now) : now_(now) {}

  void Enqueue(Thread* t) override;
  Thread* Dequeue() override;
  void Remove(Thread* t) override;
  void AccountRun(Thread* /*t*/, Cycles /*used*/) override {}
  bool Empty() const override;
  const char* name() const override { return "edf"; }

 private:
  const Cycles* now_;
  std::deque<Thread*> ready_;
};

}  // namespace escort

#endif  // SRC_KERNEL_SCHEDULER_H_
