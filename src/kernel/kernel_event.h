// Kernel timer events (paper §3.2).
//
// Events allow modules to fork new threads that start executing a given
// function after a specified delay. Events are owned by a path or a
// protection domain and are dispatched by the softclock, which increments
// the system timer every millisecond: the softclock tick itself is charged
// to the kernel, the dispatch of each event is charged to the event's owner
// (this split is exactly what Table 1 reports as "Softclock" vs "TCP Master
// Event").

#ifndef SRC_KERNEL_KERNEL_EVENT_H_
#define SRC_KERNEL_KERNEL_EVENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/kernel/owner.h"
#include "src/kernel/thread.h"

namespace escort {

class Kernel;

// Events are cancelled and freed when their owner is destroyed (pathKill
// walks owner->events()); a KernelEvent* in a deferred closure dangles.
// ESCORT_KERNEL_LIFETIME
class KernelEvent {
 public:
  using Handler = std::function<void()>;

  Owner* owner() const { return owner_; }
  const std::string& name() const { return name_; }
  bool periodic() const { return periodic_; }
  Cycles deadline() const { return deadline_; }
  Cycles period() const { return period_; }
  bool cancelled() const { return cancelled_; }
  uint64_t fire_count() const { return fire_count_; }

 private:
  friend class Kernel;

  KernelEvent(Kernel* kernel, Owner* owner, std::string name, Cycles deadline, Cycles period,
              Cycles dispatch_cost, PdId pd, Handler handler)
      : kernel_(kernel),
        owner_(owner),
        name_(std::move(name)),
        deadline_(deadline),
        period_(period),
        dispatch_cost_(dispatch_cost),
        pd_(pd),
        periodic_(period > 0),
        handler_(std::move(handler)) {}

  Kernel* const kernel_;
  Owner* const owner_;
  const std::string name_;
  Cycles deadline_;
  const Cycles period_;
  const Cycles dispatch_cost_;  // charged to owner_ when the event fires
  const PdId pd_;               // domain the handler executes in
  const bool periodic_;
  Handler handler_;
  bool cancelled_ = false;
  uint64_t fire_count_ = 0;
  std::list<KernelEvent*>::iterator owner_link_;
};

}  // namespace escort

#endif  // SRC_KERNEL_KERNEL_EVENT_H_
