// Escort threads (paper §3.2).
//
// Threads are owned by a path or a protection domain; their lifetime is
// bounded by their owner's. Threads are *non-preemptive*: they run until
// they yield, block, or exhaust their work, with one exception — a thread
// can be preempted if it is destroyed immediately afterwards, which is how
// the kernel deals with runaway threads (the owner of a removed thread is
// itself removed).
//
// Execution model: a thread carries a queue of WorkItems. Each item is a
// unit of computation with a cycle cost, the protection domain it executes
// in, and an action to run when the cycles have been consumed. The action
// may push further items (continuations), send packets, block on a
// semaphore, and so on. Crossing into a different protection domain than the
// thread is currently in incurs the domain-crossing cost and requires an
// entry in the owning path's allowed-crossings map, mirroring the
// trap-mediated crossings of the real system. Threads owned by a path keep
// one stack per domain they have entered (charged to the owner).

#ifndef SRC_KERNEL_THREAD_H_
#define SRC_KERNEL_THREAD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "src/kernel/owner.h"
#include "src/sim/types.h"

namespace escort {

class Kernel;
class Semaphore;

struct WorkItem {
  Cycles cost = 0;
  PdId pd = kKernelDomain;
  std::function<void()> fn;
  // True if the thread yields the CPU after this item (resets the runaway
  // clock and lets the scheduler pick another thread).
  bool yields = false;
};

enum class ThreadState { kReady, kRunning, kBlocked, kDead };

// Threads are reclaimed when their owner is destroyed (pathKill), so a
// Thread* must never be captured into a deferred closure (EA001).
// ESCORT_KERNEL_LIFETIME
class Thread {
 public:
  Thread(Kernel* kernel, Owner* owner, std::string name);
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  Owner* owner() const { return owner_; }
  const std::string& name() const { return name_; }
  uint64_t tid() const { return tid_; }
  ThreadState state() const { return state_; }
  PdId current_pd() const { return current_pd_; }

  // Enqueues work. If the thread was idle it becomes runnable.
  //
  // The action runs later, when the kernel dispatches the item: the EA001
  // deferred-capture contract applies (no raw kernel-object pointers in
  // the closure — the PR 3 retransmit bug was exactly this, a TcpPcb*
  // captured into a Push closure; capture a value key and revalidate).
  // ESCORT_DEFERRED_API
  void Push(WorkItem item);
  // ESCORT_DEFERRED_API
  void Push(Cycles cost, PdId pd, std::function<void()> fn, bool yields = false);

  bool HasWork() const { return !queue_.empty(); }
  size_t QueueDepth() const { return queue_.size(); }

  // Cycles this thread has run since it last yielded (runaway detection).
  Cycles run_since_yield() const { return run_since_yield_; }

  // Set of domains this thread has entered (a stack is kept for each).
  const std::set<PdId>& stacks() const { return stacks_; }

 private:
  friend class Kernel;
  friend class Semaphore;

  Kernel* const kernel_;
  Owner* const owner_;
  const std::string name_;
  const uint64_t tid_;

  std::deque<WorkItem> queue_;
  ThreadState state_ = ThreadState::kBlocked;  // blocked-empty until pushed
  PdId current_pd_ = kKernelDomain;
  Cycles run_since_yield_ = 0;
  std::set<PdId> stacks_;
  Semaphore* blocked_on_ = nullptr;
  std::list<Thread*>::iterator owner_link_;
};

}  // namespace escort

#endif  // SRC_KERNEL_THREAD_H_
