#include "src/kernel/syscall.h"

namespace escort {

const char* SyscallName(Syscall sc) {
  switch (sc) {
    case Syscall::kPathCreate: return "pathCreate";
    case Syscall::kPathDestroy: return "pathDestroy";
    case Syscall::kPathKill: return "pathKill";
    case Syscall::kPathEnqueue: return "pathEnqueue";
    case Syscall::kPathDequeue: return "pathDequeue";
    case Syscall::kPathExtendCrossing: return "pathExtendCrossing";
    case Syscall::kPathGetAttr: return "pathGetAttr";
    case Syscall::kPathSetAttr: return "pathSetAttr";
    case Syscall::kPathRef: return "pathRef";
    case Syscall::kPathUnref: return "pathUnref";
    case Syscall::kIobAlloc: return "iobAlloc";
    case Syscall::kIobLock: return "iobLock";
    case Syscall::kIobUnlock: return "iobUnlock";
    case Syscall::kIobAssociate: return "iobAssociate";
    case Syscall::kIobSetDirection: return "iobSetDirection";
    case Syscall::kIobQuery: return "iobQuery";
    case Syscall::kThreadCreate: return "threadCreate";
    case Syscall::kThreadYield: return "threadYield";
    case Syscall::kThreadStop: return "threadStop";
    case Syscall::kThreadHandoff: return "threadHandoff";
    case Syscall::kThreadSetRunLimit: return "threadSetRunLimit";
    case Syscall::kThreadQuery: return "threadQuery";
    case Syscall::kEventRegister: return "eventRegister";
    case Syscall::kEventCancel: return "eventCancel";
    case Syscall::kEventQuery: return "eventQuery";
    case Syscall::kSemCreate: return "semCreate";
    case Syscall::kSemDestroy: return "semDestroy";
    case Syscall::kSemP: return "semP";
    case Syscall::kSemV: return "semV";
    case Syscall::kSemQuery: return "semQuery";
    case Syscall::kPageAlloc: return "pageAlloc";
    case Syscall::kPageFree: return "pageFree";
    case Syscall::kPageTransfer: return "pageTransfer";
    case Syscall::kHeapAlloc: return "heapAlloc";
    case Syscall::kHeapFree: return "heapFree";
    case Syscall::kKmemCharge: return "kmemCharge";
    case Syscall::kKmemUncharge: return "kmemUncharge";
    case Syscall::kMemQuery: return "memQuery";
    case Syscall::kDevOpen: return "devOpen";
    case Syscall::kDevClose: return "devClose";
    case Syscall::kDevRead: return "devRead";
    case Syscall::kDevWrite: return "devWrite";
    case Syscall::kDevControl: return "devControl";
    case Syscall::kDevInterruptRegister: return "devInterruptRegister";
    case Syscall::kConsolePutc: return "consolePutc";
    case Syscall::kConsoleGetc: return "consoleGetc";
    case Syscall::kConsoleWrite: return "consoleWrite";
    case Syscall::kOwnerQueryUsage: return "ownerQueryUsage";
    case Syscall::kOwnerSetPolicy: return "ownerSetPolicy";
    case Syscall::kOwnerSetSchedParams: return "ownerSetSchedParams";
    case Syscall::kOwnerDestroy: return "ownerDestroy";
    case Syscall::kGetTime: return "getTime";
    case Syscall::kSyscallCount: break;
  }
  return "invalid";
}

}  // namespace escort
