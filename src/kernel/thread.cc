#include "src/kernel/thread.h"

#include "src/kernel/kernel.h"

namespace escort {

Thread::Thread(Kernel* kernel, Owner* owner, std::string name)
    : kernel_(kernel), owner_(owner), name_(std::move(name)), tid_(kernel->NextOwnerId()) {
  owner_->threads().push_front(this);
  owner_link_ = owner_->threads().begin();
  owner_->usage().threads += 1;
  stacks_.insert(kKernelDomain);
  owner_->usage().stacks += 1;
}

Thread::~Thread() = default;

void Thread::Push(WorkItem item) {
  if (state_ == ThreadState::kDead) {
    return;
  }
  queue_.push_back(std::move(item));
  kernel_->OnThreadHasWork(this);
}

void Thread::Push(Cycles cost, PdId pd, std::function<void()> fn, bool yields) {
  Push(WorkItem{cost, pd, std::move(fn), yields});
}

}  // namespace escort
