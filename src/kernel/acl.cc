#include "src/kernel/acl.h"

namespace escort {

namespace {

bool PrivilegedOnlyByDefault(Syscall sc) {
  switch (sc) {
    case Syscall::kPageAlloc:
    case Syscall::kPageFree:
    case Syscall::kPageTransfer:
    case Syscall::kDevOpen:
    case Syscall::kDevClose:
    case Syscall::kDevRead:
    case Syscall::kDevWrite:
    case Syscall::kDevControl:
    case Syscall::kDevInterruptRegister:
    case Syscall::kOwnerSetPolicy:
    case Syscall::kOwnerSetSchedParams:
    case Syscall::kOwnerDestroy:
    case Syscall::kPathKill:
    case Syscall::kConsoleGetc:
      return true;
    default:
      return false;
  }
}

}  // namespace

AclTable::AclTable() {
  for (int i = 0; i < kNumSyscalls; ++i) {
    auto sc = static_cast<Syscall>(i);
    unprivileged_default_[i] = !PrivilegedOnlyByDefault(sc);
  }
}

bool AclTable::Allows(const Role& role, Syscall sc) const {
  if (role.domain == kKernelDomain) {
    return true;
  }
  const int idx = static_cast<int>(sc);
  if (auto it = revocations_.find(role.domain); it != revocations_.end() && it->second[idx]) {
    return false;
  }
  if (unprivileged_default_[idx]) {
    return true;
  }
  if (auto it = grants_.find(role.domain); it != grants_.end() && it->second[idx]) {
    return true;
  }
  return false;
}

void AclTable::Grant(PdId domain, Syscall sc) {
  grants_[domain][static_cast<int>(sc)] = true;
  revocations_[domain][static_cast<int>(sc)] = false;
}

void AclTable::Revoke(PdId domain, Syscall sc) {
  revocations_[domain][static_cast<int>(sc)] = true;
  grants_[domain][static_cast<int>(sc)] = false;
}

}  // namespace escort
