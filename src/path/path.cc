#include "src/path/path.h"

#include "src/path/path_manager.h"

namespace escort {

Path::Path(Kernel* kernel, PathManager* manager, std::string name)
    : Owner(OwnerType::kPath, kernel->NextOwnerId(), std::move(name)),
      kernel_(kernel),
      manager_(manager) {}

Path::~Path() = default;

Stage* Path::AppendStage(Module* module, std::unique_ptr<StageState> state,
                         std::function<void(Path*, Stage*)> destructor) {
  auto stage = std::make_unique<Stage>();
  stage->module = module;
  stage->path = this;
  stage->index = static_cast<int>(stages_.size());
  stage->pd = module->pd();
  stage->state = std::move(state);
  stage->destructor = std::move(destructor);
  stages_.push_back(std::move(stage));
  return stages_.back().get();
}

Stage* Path::StageOf(const Module* module) {
  for (auto& stage : stages_) {
    if (stage->module == module) {
      return stage.get();
    }
  }
  return nullptr;
}

std::vector<PdId> Path::StageDomains() const {
  std::vector<PdId> pds;
  pds.reserve(stages_.size());
  for (const auto& stage : stages_) {
    pds.push_back(stage->pd);
  }
  return pds;
}

std::vector<PdId> Path::StageDomainsUpTo(size_t from_index, PdId termination) const {
  std::vector<PdId> pds;
  for (size_t i = from_index; i < stages_.size(); ++i) {
    pds.push_back(stages_[i]->pd);
    if (stages_[i]->pd == termination) {
      break;
    }
  }
  return pds;
}

int Path::DistinctDomainCount() const {
  std::set<PdId> pds;
  for (const auto& stage : stages_) {
    pds.insert(stage->pd);
  }
  return static_cast<int>(pds.size());
}

void Path::AllowCrossing(PdId from, PdId to) {
  allowed_crossings_.emplace(from, to);
  allowed_crossings_.emplace(to, from);
}

bool Path::CrossingAllowed(PdId from, PdId to) const {
  if (from == to || from == kKernelDomain || to == kKernelDomain) {
    return true;
  }
  return allowed_crossings_.count({from, to}) != 0;
}

void Path::SpawnThreads(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    pool_.push_back(kernel_->CreateThread(this, name() + " worker" + std::to_string(i)));
  }
}

Thread* Path::GrabThread() {
  if (pool_.empty()) {
    SpawnThreads(1);
  }
  Thread* t = pool_[next_thread_ % pool_.size()];
  next_thread_ += 1;
  return t;
}

void Path::DeliverAt(size_t index, Direction dir, Message msg, Cycles extra_cost, bool yields) {
  Stage* stage = this->stage(index);
  if (stage == nullptr || destroyed()) {
    return;
  }
  Thread* t = GrabThread();
  Module* module = stage->module;
  t->Push(extra_cost, stage->pd,
          // NOLINT-EA001(queue is path-owned: pathKill drains the thread pool before reclaim, the closure cannot outlive this path)
          [this, stage, module, msg = std::move(msg), dir]() mutable {
            ++messages_processed;
            module->Process(*stage, std::move(msg), dir);
          },
          yields);
}

void Path::ForwardUp(const Stage& from, Message msg) {
  DeliverAt(static_cast<size_t>(from.index) + 1, Direction::kUp, std::move(msg));
}

void Path::ForwardDown(const Stage& from, Message msg) {
  if (from.index == 0) {
    return;
  }
  DeliverAt(static_cast<size_t>(from.index) - 1, Direction::kDown, std::move(msg));
}

size_t Path::PendingItems() const {
  size_t total = 0;
  for (const Thread* t : pool_) {
    total += t->QueueDepth();
  }
  return total;
}

void Path::Unref() {
  if (refcnt_ > 0) {
    --refcnt_;
  }
  if (refcnt_ == 0 && destroy_pending_ && manager_ != nullptr) {
    manager_->Destroy(this);
  }
}

}  // namespace escort
