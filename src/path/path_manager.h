// PathManager: the kernel-resident engine behind pathCreate, pathDestroy,
// pathKill and incremental demultiplexing (paper §2.2, §3.1).

#ifndef SRC_PATH_PATH_MANAGER_H_
#define SRC_PATH_PATH_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/path/module_graph.h"
#include "src/path/path.h"

namespace escort {

class PathManager {
 public:
  PathManager(Kernel* kernel, ModuleGraph* graph);
  ~PathManager();

  PathManager(const PathManager&) = delete;
  PathManager& operator=(const PathManager&) = delete;

  Kernel* kernel() { return kernel_; }
  ModuleGraph* graph() { return graph_; }

  // pathCreate: establishes a path incrementally, invoking Open on
  // `start` and following the chain of next-modules it returns. Consecutive
  // modules must be connected in the graph. `account_label` groups the
  // path's cycles in accounting reports ("Main Active Path", ...).
  // `threads` sizes the path's thread pool.
  Path* Create(Module* start, const Attributes& attrs, const std::string& account_label,
               size_t threads = 1);

  // pathDestroy: honors the reference count (destruction is deferred until
  // the count drops to zero), invokes the module destructors in
  // initialization order, then reclaims all resources.
  void Destroy(Path* path);

  // pathKill: immediate reclamation; destructors are NOT invoked; any
  // outstanding references are ignored. Returns the reclamation cost in
  // cycles (the Table 2 metric).
  Cycles Kill(Path* path);

  // Incremental demux of an incoming message starting at `start`
  // (typically the receiving driver). Side-effect free until the unique
  // path is identified; then the message is scheduled onto that path with
  // the interrupt + demux cycles charged to it. Dropped messages consume
  // their cycles on the kernel's interrupt thread.
  // Returns the identified path, or nullptr when dropped.
  Path* DemuxAndDeliver(Module* start, Message msg, const char** drop_reason = nullptr);

  // Maximum work items a path may have pending before incoming frames for
  // it are dropped (full-ring behaviour under overload).
  void set_input_backlog_limit(size_t n) { backlog_limit_ = n; }

  const std::vector<Path*>& live_paths() const { return live_list_; }
  size_t live_count() const { return paths_.size(); }

  // Owner-id lookup, nullptr once the path has been reclaimed (retired
  // paths are NOT found). This is the revalidation point for deferred
  // work: closures capture path->id() instead of the Path* (EA001) and
  // re-resolve here at fire time.
  Path* FindLive(uint64_t owner_id);

  uint64_t created_count() const { return created_; }
  uint64_t destroyed_count() const { return destroyed_; }
  uint64_t killed_count() const { return killed_; }
  uint64_t demux_drops() const { return demux_drops_; }
  uint64_t backlog_drops() const { return backlog_drops_; }
  const std::map<std::string, uint64_t>& drop_reasons() const { return drop_reasons_; }

  // Clears lazily retired path objects (safe point housekeeping).
  void ReapRetired();

  // Teardown observer: invoked at the top of every reclamation (Destroy and
  // Kill alike), while the path's usage ledger is still intact; `killed` is
  // true for pathKill reclamations. The ledger-baseline detector
  // (src/server/detect.h) samples per-class resource consumption here —
  // clean teardowns only, so a killed runaway never poisons the baseline.
  // Runs before kernel cleanups, so the hook sees the final
  // cycle/page/IOBuffer charges.
  void set_teardown_hook(std::function<void(Path*, bool killed)> hook) {
    teardown_hook_ = std::move(hook);
  }

 private:
  Cycles ReclaimPath(Path* path, bool killed);

  Kernel* const kernel_;
  ModuleGraph* const graph_;
  Thread* interrupt_thread_ = nullptr;

  std::map<Path*, std::unique_ptr<Path>> paths_;
  std::map<uint64_t, Path*> by_id_;  // owner id -> live path (FindLive)
  std::vector<Path*> live_list_;
  std::vector<std::unique_ptr<Path>> retired_;

  std::function<void(Path*, bool)> teardown_hook_;
  size_t backlog_limit_ = 192;
  uint64_t created_ = 0;
  uint64_t destroyed_ = 0;
  uint64_t killed_ = 0;
  uint64_t demux_drops_ = 0;
  uint64_t backlog_drops_ = 0;
  std::map<std::string, uint64_t> drop_reasons_;
};

}  // namespace escort

#endif  // SRC_PATH_PATH_MANAGER_H_
