// The module graph (paper §2.1): nodes are the modules configured into the
// kernel; typed edges are the dependencies between them. Configured at build
// time, it is the second policy-enforcement level — it defines the only
// channels of communication between protection domains.

#ifndef SRC_PATH_MODULE_GRAPH_H_
#define SRC_PATH_MODULE_GRAPH_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/path/module.h"

namespace escort {

class ModuleGraph {
 public:
  explicit ModuleGraph(Kernel* kernel) : kernel_(kernel) {}

  ModuleGraph(const ModuleGraph&) = delete;
  ModuleGraph& operator=(const ModuleGraph&) = delete;

  // Adds a module, assigning it to protection domain `pd`. The graph takes
  // ownership. Returns the module for chaining.
  template <typename M>
  M* Add(std::unique_ptr<M> module, PdId pd) {
    M* raw = module.get();
    raw->pd_ = pd;
    raw->kernel_ = kernel_;
    by_name_[raw->name()] = raw;
    modules_.push_back(std::move(module));
    return raw;
  }

  // Declares the edge a<->b over `iface`. Both modules must support the
  // interface (typed, enforced — paper §2.1). Returns false otherwise.
  bool Connect(Module* a, Module* b, ServiceInterface iface);

  bool Connected(const Module* a, const Module* b) const;

  Module* Find(const std::string& name) const;

  // Boots the graph: wires every module to the path manager and invokes
  // each module's init function in its domain.
  void InitAll(PathManager* manager);

  const std::vector<std::unique_ptr<Module>>& modules() const { return modules_; }
  size_t edge_count() const { return edges_.size(); }

 private:
  Kernel* const kernel_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::map<std::string, Module*> by_name_;
  std::set<std::pair<const Module*, const Module*>> edges_;
};

}  // namespace escort

#endif  // SRC_PATH_MODULE_GRAPH_H_
