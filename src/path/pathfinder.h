// PathFinder: a pattern-based packet classifier (Bailey et al., OSDI '94 —
// the paper's reference [2]).
//
// §2.3 of the Escort paper notes that the base Scout demux trusts each
// module's demux function, and that a pattern-based classifier like
// PathFinder "would be more appropriate since [it has] more liberal trust
// assumptions": modules *declare* what their packets look like instead of
// running code on every arrival.
//
// The classifier is a DAG of *cells* — (offset, length, mask, value)
// comparisons against the raw packet — grouped into *lines* (one line per
// protocol layer). Lines that share a prefix of cells share DAG nodes, so
// adding the thousandth TCP connection only adds its distinguishing cells.
// Longest match wins; each leaf names the path the packet belongs to.

#ifndef SRC_PATH_PATHFINDER_H_
#define SRC_PATH_PATHFINDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace escort {

class Path;

// One comparison against the packet: packet[offset..offset+length) masked
// equals value. length is 1, 2 or 4 bytes (network order).
struct Cell {
  uint32_t offset = 0;
  uint8_t length = 1;
  uint32_t mask = 0xffffffff;
  uint32_t value = 0;

  bool Matches(const uint8_t* data, size_t size) const;
  bool operator==(const Cell& other) const {
    return offset == other.offset && length == other.length && mask == other.mask &&
           value == other.value;
  }
};

// A line: the conjunction of cells contributed by one protocol layer.
using Line = std::vector<Cell>;

class PathFinder {
 public:
  using NodeId = uint32_t;
  static constexpr NodeId kRoot = 0;

  PathFinder();

  PathFinder(const PathFinder&) = delete;
  PathFinder& operator=(const PathFinder&) = delete;

  // Inserts a line under `parent`. Lines with identical cells under the
  // same parent are shared (the PathFinder DAG property). Returns the node
  // to hang deeper lines (or a target) off.
  NodeId Insert(NodeId parent, const Line& line);

  // Binds a target path to a node: packets whose deepest match is this
  // node classify to `target`. `priority` breaks ties among equally deep
  // matches (higher wins) — e.g. an exact connection pattern outranks the
  // wildcard listener pattern at the same depth.
  void Bind(NodeId node, Path* target, int priority = 0);

  // Removes the binding (and prunes now-useless nodes). Used when a
  // connection closes.
  void Unbind(NodeId node);

  // Classifies a packet: returns the bound target of the deepest
  // (highest-priority) matching node, or nullptr.
  Path* Classify(const uint8_t* data, size_t size) const;
  Path* Classify(const std::vector<uint8_t>& packet) const {
    return Classify(packet.data(), packet.size());
  }

  // Number of cell comparisons performed by the last Classify (the demux
  // cost driver).
  uint64_t last_cell_count() const { return last_cells_; }
  uint64_t classify_count() const { return classifies_; }
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    Line line;                      // cells guarding entry to this node
    std::vector<NodeId> children;   // deeper lines
    Path* target = nullptr;
    int priority = 0;
    bool bound = false;
    uint32_t refs = 0;  // shared-line reference count
  };

  void ClassifyFrom(NodeId id, const uint8_t* data, size_t size, int depth, Path** best,
                    int* best_depth, int* best_priority) const;

  std::vector<Node> nodes_;
  mutable uint64_t last_cells_ = 0;
  mutable uint64_t classifies_ = 0;
};

// Convenience cell builders for the web-server protocol stack (fixed
// offsets: Ethernet II, IPv4 IHL=5, TCP).
namespace pattern {

Line EthIpv4();                         // ethertype == 0x0800
Line EthArp();                          // ethertype == 0x0806
Line IpTcpTo(uint32_t dst_ip);          // proto TCP && ip.dst == dst_ip
Line TcpDstPort(uint16_t port);         // tcp.dport == port
Line TcpSynOnly();                      // SYN set, ACK clear
Line TcpConn(uint32_t src_ip, uint16_t src_port);  // exact peer (with dst port line above)

}  // namespace pattern

}  // namespace escort

#endif  // SRC_PATH_PATHFINDER_H_
