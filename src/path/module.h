// Modules: the unit of program development and configurability in Scout
// (paper §2.1). Each module provides a well-defined, independent service —
// a protocol (HTTP, TCP, IP, ARP), a storage component (FS, SCSI), a device
// driver (ETH) — and contributes a *stage* to every path that traverses it.
//
// Modules implement three side-effect-sensitive entry points:
//   * Open   — path creation: initialize this module's stage and name the
//              next module to visit (side effects allowed: it builds state);
//   * Demux  — incremental classification of incoming data (side-effect
//              free, may be called speculatively);
//   * Process— the per-message work a stage performs when a path thread
//              executes in this module's protection domain.

#ifndef SRC_PATH_MODULE_H_
#define SRC_PATH_MODULE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "src/elib/message.h"
#include "src/kernel/kernel.h"
#include "src/path/attribute.h"

namespace escort {

class Path;
class Stage;
class Module;
class PathManager;

// Typed service interfaces (paper §2.1: edges in the module graph connect
// modules that support a common interface; §3.1: Escort currently supports
// interfaces for asynchronous I/O, name resolution, and file access).
enum class ServiceInterface { kAsyncIo, kNameResolution, kFileAccess };

// Message travel direction along a path. Stages are ordered with index 0 at
// the network/device source (ETH) and the highest index at the far end
// (SCSI in the web-server path). kUp moves toward higher indices.
enum class Direction { kUp, kDown };

// Per-stage module state (PCBs, HTTP parser state, ...).
class StageState {
 public:
  virtual ~StageState() = default;
};

struct OpenResult {
  bool ok = false;
  std::unique_ptr<StageState> state;
  Module* next = nullptr;  // nullptr terminates the path
  // Destructor function the module registers with the path (paper §2.4);
  // invoked in the module's domain on pathDestroy (not pathKill).
  std::function<void(Path*, Stage*)> destructor;

  static OpenResult Fail() { return OpenResult{}; }
};

struct DemuxDecision {
  enum class Action { kContinue, kDeliver, kDrop };
  Action action = Action::kDrop;
  Module* next = nullptr;  // kContinue: consult this module next
  Path* path = nullptr;    // kDeliver: the unique path identified
  const char* drop_reason = "";

  static DemuxDecision Continue(Module* next_module) {
    DemuxDecision d;
    d.action = Action::kContinue;
    d.next = next_module;
    return d;
  }
  static DemuxDecision Deliver(Path* p) {
    DemuxDecision d;
    d.action = Action::kDeliver;
    d.path = p;
    return d;
  }
  static DemuxDecision Drop(const char* reason) {
    DemuxDecision d;
    d.action = Action::kDrop;
    d.drop_reason = reason;
    return d;
  }
};

class Module {
 public:
  Module(std::string name, std::set<ServiceInterface> interfaces)
      : name_(std::move(name)), interfaces_(std::move(interfaces)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  bool Supports(ServiceInterface iface) const { return interfaces_.count(iface) != 0; }

  // Configuration-time wiring (done by ModuleGraph::Add).
  PdId pd() const { return pd_; }
  Kernel* kernel() const { return kernel_; }
  PathManager* paths() const { return path_manager_; }
  ProtectionDomain* domain() const;

  // Well-known initialization function, called in the module's domain when
  // the system boots (paper §2.3).
  virtual void Init() {}

  // Path creation step. Returns the stage contribution and the next module.
  virtual OpenResult Open(Path* path, const Attributes& attrs) = 0;

  // Incremental demultiplexing step. MUST be side-effect free.
  virtual DemuxDecision Demux(const Message& /*msg*/) { return DemuxDecision::Drop("no demux"); }

  // Data processing for one message at this module's stage of a path.
  virtual void Process(Stage& stage, Message msg, Direction dir) = 0;

  // Fixed per-message processing cost of this module (consumed by Process
  // implementations; exposed so the demux engine can estimate costs).
  virtual Cycles ProcessCost(Direction /*dir*/) const { return 0; }

 protected:
  // Helper for Process implementations: consume this module's cycles.
  void ConsumeCost(Direction dir) const;

 private:
  friend class ModuleGraph;

  const std::string name_;
  const std::set<ServiceInterface> interfaces_;
  PdId pd_ = kKernelDomain;
  Kernel* kernel_ = nullptr;
  PathManager* path_manager_ = nullptr;
};

}  // namespace escort

#endif  // SRC_PATH_MODULE_H_
