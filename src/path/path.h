// The path abstraction (paper §2.2, §3.1): a logical channel through the
// module graph over which I/O data flows. A path is an Owner — the entity
// all per-connection resources are charged to — and encapsulates (1) the
// sequence of stages applied to data moving through the system and (2) the
// threads scheduled to execute it.
//
// Mirrors the paper's Path structure: owner state, the hash of allowed
// protection-domain crossings, the stage list, four source/sink queues, a
// thread pool, and a reference count that delays pathDestroy (but never
// pathKill).

#ifndef SRC_PATH_PATH_H_
#define SRC_PATH_PATH_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/elib/bounded_queue.h"
#include "src/elib/message.h"
#include "src/kernel/kernel.h"
#include "src/path/attribute.h"
#include "src/path/module.h"

namespace escort {

class PathManager;

// One module's contribution to a path. Stages die with their path (they
// live in Path::stages_), so a Stage* is as dangerous to capture into a
// deferred closure as the Path* itself — capture the stage index and
// re-derive through a revalidated path.
// ESCORT_KERNEL_LIFETIME
class Stage {
 public:
  Module* module = nullptr;
  Path* path = nullptr;
  int index = 0;
  PdId pd = kKernelDomain;
  std::unique_ptr<StageState> state;
  std::function<void(Path*, Stage*)> destructor;

  template <typename T>
  T* state_as() {
    return static_cast<T*>(state.get());
  }
};

// Paths are reclaimed at arbitrary times by pathKill (runaway detection,
// policy action) and lazily freed at the next demux safe point; a raw
// Path* in a deferred closure is a use-after-free waiting for an attack
// burst. Capture path->id() and revalidate via PathManager::FindLive.
// ESCORT_KERNEL_LIFETIME
class Path : public Owner {
 public:
  // The four path-end queues (paper Figure 6: Queues[4]).
  enum QueueId { kSourceIn = 0, kSourceOut = 1, kSinkIn = 2, kSinkOut = 3 };

  Path(Kernel* kernel, PathManager* manager, std::string name);
  ~Path() override;

  Kernel* kernel() const { return kernel_; }
  PathManager* manager() const { return manager_; }

  // --- Stages -----------------------------------------------------------
  const std::vector<std::unique_ptr<Stage>>& stages() const { return stages_; }
  Stage* stage(size_t index) { return index < stages_.size() ? stages_[index].get() : nullptr; }
  Stage* AppendStage(Module* module, std::unique_ptr<StageState> state,
                     std::function<void(Path*, Stage*)> destructor);
  // Finds the first stage contributed by `module`; nullptr if none.
  Stage* StageOf(const Module* module);
  // The protection domains of all stages, in order (the read-mapping set
  // for messages that travel the whole path).
  std::vector<PdId> StageDomains() const;
  // Termination domains (paper §3.3): "to allow paths to traverse multiple
  // security levels, it is possible to designate certain protection domains
  // along a path as termination domains — this limits the read mapping to
  // the domains along the path from the current protection domain up to and
  // including the termination domain." Returns the stage domains from the
  // stage at `from_index` through the first stage in `termination` (the
  // whole path if `termination` never occurs).
  std::vector<PdId> StageDomainsUpTo(size_t from_index, PdId termination) const;
  // Number of distinct protection domains the path crosses.
  int DistinctDomainCount() const;

  // --- Allowed protection-domain crossings ---------------------------------
  void AllowCrossing(PdId from, PdId to);
  bool CrossingAllowed(PdId from, PdId to) const override;

  // --- Attributes (invariants fixed at creation) -----------------------------
  Attributes attrs;

  // --- Thread pool -------------------------------------------------------------
  void SpawnThreads(size_t count);
  Thread* GrabThread();

  // --- Delivery ------------------------------------------------------------------
  // Schedules `msg` to be processed by the stage at `index`, moving in
  // `dir`, as a work item on one of the path's threads. `extra_cost` is
  // prepended to the item (e.g. interrupt + demux cycles for the first hop).
  // Every hop yields by default: Escort module code yields at stage
  // boundaries, which is what makes the runaway budget (CPU *without*
  // yielding) selective for misbehaving code.
  void DeliverAt(size_t index, Direction dir, Message msg, Cycles extra_cost = 0,
                 bool yields = true);
  // Continue from a stage to its neighbour.
  void ForwardUp(const Stage& from, Message msg);
  void ForwardDown(const Stage& from, Message msg);

  // Total work items currently queued across the pool (overload signal; the
  // demux engine drops frames for backlogged paths like a full NIC ring).
  size_t PendingItems() const;

  // --- End queues -------------------------------------------------------------------
  BoundedQueue<Message>& queue(QueueId q) { return queues_[q]; }

  // --- Kernel-side cleanup ---------------------------------------------------
  // Callbacks run on ANY reclamation — pathDestroy and pathKill alike —
  // before the owner's resources are torn down. This is for *kernel-
  // maintained* registrations (demux map entries) that must never dangle;
  // module destructors, by contrast, are skipped by pathKill.
  void AddKernelCleanup(std::function<void()> fn) { kernel_cleanups_.push_back(std::move(fn)); }

  // --- Reference count (delays pathDestroy, never pathKill) ---------------------------
  void Ref() { ++refcnt_; }
  void Unref();
  uint64_t refcnt() const { return refcnt_; }
  bool destroy_pending() const { return destroy_pending_; }

  // --- Stats ------------------------------------------------------------------------------
  uint64_t messages_processed = 0;

 private:
  friend class PathManager;

  Kernel* const kernel_;
  PathManager* const manager_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::set<std::pair<PdId, PdId>> allowed_crossings_;
  std::vector<Thread*> pool_;
  size_t next_thread_ = 0;
  BoundedQueue<Message> queues_[4];
  std::vector<std::function<void()>> kernel_cleanups_;
  uint64_t refcnt_ = 0;
  bool destroy_pending_ = false;
};

}  // namespace escort

#endif  // SRC_PATH_PATH_H_
