// Filter modules (paper §2.5, enforcement level 4).
//
// Syntactically a filter is a module like any other; its purpose is to
// enforce policy rather than provide functionality: placed between two
// modules it narrows their interface by dropping traffic that does not
// satisfy a predicate (e.g. "receive packets" -> "receive packets to port
// 80"). Filters compose with vanilla modules — the flanked module needs no
// knowledge of the policy.

#ifndef SRC_PATH_FILTER_H_
#define SRC_PATH_FILTER_H_

#include <functional>
#include <string>

#include "src/path/path.h"

namespace escort {

class FilterModule : public Module {
 public:
  // Returns true if the message may pass in the given direction.
  using Predicate = std::function<bool(const Message&, Direction)>;

  FilterModule(std::string name, ServiceInterface iface, Module* next_up, Predicate allow,
               Cycles check_cost = 1'200)
      : Module(std::move(name), {iface}),
        next_up_(next_up),
        allow_(std::move(allow)),
        check_cost_(check_cost) {}

  OpenResult Open(Path* path, const Attributes& attrs) override {
    (void)path;
    (void)attrs;
    OpenResult r;
    r.ok = true;
    r.next = next_up_;
    return r;
  }

  DemuxDecision Demux(const Message& msg) override {
    if (!allow_(msg, Direction::kUp)) {
      return DemuxDecision::Drop("filter");
    }
    return DemuxDecision::Continue(next_up_);
  }

  void Process(Stage& stage, Message msg, Direction dir) override {
    kernel()->ConsumeCharged(check_cost_);
    if (!allow_(msg, dir)) {
      ++dropped_;
      return;
    }
    ++passed_;
    if (dir == Direction::kUp) {
      stage.path->ForwardUp(stage, std::move(msg));
    } else {
      stage.path->ForwardDown(stage, std::move(msg));
    }
  }

  Cycles ProcessCost(Direction /*dir*/) const override { return check_cost_; }

  uint64_t dropped() const { return dropped_; }
  uint64_t passed() const { return passed_; }

 private:
  Module* const next_up_;
  Predicate allow_;
  const Cycles check_cost_;
  uint64_t dropped_ = 0;
  uint64_t passed_ = 0;
};

}  // namespace escort

#endif  // SRC_PATH_FILTER_H_
