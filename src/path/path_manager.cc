#include "src/path/path_manager.h"

#include <algorithm>

#include "src/sim/trace.h"

namespace escort {

namespace {

// Lifecycle-family tracer, or null when tracing (or the family) is off.
Tracer* LifecycleTracer(Kernel* kernel) {
  Tracer* t = kernel->tracer();
  return (t != nullptr && t->lifecycle_enabled()) ? t : nullptr;
}

}  // namespace

PathManager::PathManager(Kernel* kernel, ModuleGraph* graph) : kernel_(kernel), graph_(graph) {
  interrupt_thread_ = kernel_->CreateThread(kernel_->kernel_owner(), "interrupt");
}

PathManager::~PathManager() {
  // Tear down remaining paths without destructors (the kernel is going
  // away with us). Iterate a copy of live_list_ — creation order — rather
  // than paths_, whose Path* keys would impose allocator-dependent
  // teardown order (EA005: reclamation costs and trace events must not
  // depend on where the heap put each path).
  std::vector<Path*> remaining = live_list_;
  for (Path* path : remaining) {
    Kill(path);
  }
  ReapRetired();
}

Path* PathManager::Create(Module* start, const Attributes& attrs,
                          const std::string& account_label, size_t threads) {
  auto owned = std::make_unique<Path>(kernel_, this, account_label + "#" + std::to_string(created_));
  Path* path = owned.get();
  path->attrs = attrs;
  kernel_->RegisterOwner(path, account_label);

  // Establish the path incrementally: open the starting module, then the
  // module it names, and so on (paper §2.2).
  Module* prev = nullptr;
  Module* cur = start;
  while (cur != nullptr) {
    if (prev != nullptr && !graph_->Connected(prev, cur)) {
      // Configuration violation: the module graph does not allow this hop.
      kernel_->UnregisterOwner(path);
      return nullptr;
    }
    OpenResult r = cur->Open(path, attrs);
    if (!r.ok) {
      kernel_->UnregisterOwner(path);
      return nullptr;
    }
    path->AppendStage(cur, std::move(r.state), std::move(r.destructor));
    prev = cur;
    cur = r.next;
  }

  // The allowed-crossings map: entry points between every pair of domains
  // the path traverses are established at creation time (the kernel's
  // per-thread crossing stack unwinds returns, so a thread may legally move
  // between any two of its path's domains).
  {
    std::vector<PdId> pds;
    for (const auto& stage : path->stages()) {
      pds.push_back(stage->pd);
    }
    for (size_t i = 0; i < pds.size(); ++i) {
      for (size_t j = i + 1; j < pds.size(); ++j) {
        if (pds[i] != pds[j]) {
          path->AllowCrossing(pds[i], pds[j]);
        }
      }
    }
  }

  path->SpawnThreads(threads);
  // Creation work is charged to the new path itself (it is the beneficiary;
  // the paper's passive path carries only the SYN processing).
  kernel_->ConsumePrechargedTo(path, kernel_->costs().path_create_base +
                                         kernel_->costs().path_create_per_stage *
                                             path->stages().size());
  ++created_;
  live_list_.push_back(path);
  paths_[path] = std::move(owned);
  by_id_[path->id()] = path;
  if (Tracer* t = LifecycleTracer(kernel_)) {
    t->BeginSpan(kernel_->now(), OwnerTrack(path->id(), path->name()),
                 "path:" + account_label, "path",
                 {{"owner", Tracer::Num(path->id())},
                  {"stages", Tracer::Num(path->stages().size())}});
  }
  return path;
}

void PathManager::Destroy(Path* path) {
  if (path == nullptr || path->destroyed()) {
    return;
  }
  if (path->refcnt() > 0) {
    path->destroy_pending_ = true;
    return;
  }
  // Invoke the destructor function of each module along the path, in the
  // same order in which the stages were initialized (paper §2.2). Each runs
  // in the module's protection domain; charge-backs for heap memory happen
  // here.
  for (auto& stage : path->stages_) {
    if (stage->destructor) {
      stage->destructor(path, stage.get());
    }
    if (ProtectionDomain* pd = kernel_->domain(stage->pd); pd != nullptr) {
      pd->HeapChargeBack(path);
    }
  }
  kernel_->ConsumePrechargedTo(path, kernel_->costs().path_destroy_base +
                                         kernel_->costs().path_destroy_per_stage *
                                             path->stages().size());
  ++destroyed_;
  if (Tracer* t = LifecycleTracer(kernel_)) {
    t->Instant(kernel_->now(), OwnerTrack(path->id(), path->name()), "pathDestroy", "path");
    t->EndSpan(kernel_->now(), OwnerTrack(path->id(), path->name()));
  }
  ReclaimPath(path, /*killed=*/false);
}

Cycles PathManager::Kill(Path* path) {
  if (path == nullptr || path->destroyed()) {
    return 0;
  }
  // pathKill skips destructors and ignores the reference count; module
  // state for this path is reclaimed through the owner's tracking lists.
  // Modules learn of the kill lazily (their demux maps are purged when the
  // dangling entry is touched — see Module::Process guards), mirroring the
  // real system where the kernel frees everything unilaterally.
  for (auto& stage : path->stages_) {
    if (ProtectionDomain* pd = kernel_->domain(stage->pd); pd != nullptr) {
      pd->HeapChargeBack(path);
    }
  }
  ++killed_;
  if (Tracer* t = LifecycleTracer(kernel_)) {
    t->Instant(kernel_->now(), OwnerTrack(path->id(), path->name()), "pathKill", "path",
               {{"cycles_charged", Tracer::Num(path->usage().cycles)}});
    t->EndSpan(kernel_->now(), OwnerTrack(path->id(), path->name()));
    // pathKill is a defensive action worth a post-mortem: dump the events
    // that led up to it.
    t->DumpFlight("pathKill " + path->name(), kernel_->now());
  }
  return ReclaimPath(path, /*killed=*/true);
}

Cycles PathManager::ReclaimPath(Path* path, bool killed) {
  if (teardown_hook_) {
    // The final ledger readout: usage() still carries everything the path
    // was charged. Observers must not create or destroy paths from here.
    teardown_hook_(path, killed);
  }
  // Kernel-side registrations (demux map entries) must be severed on every
  // reclamation — including pathKill, which skips module destructors.
  for (auto& cleanup : path->kernel_cleanups_) {
    cleanup();
  }
  path->kernel_cleanups_.clear();
  Cycles cost = kernel_->DestroyOwner(path, path->DistinctDomainCount());
  live_list_.erase(std::remove(live_list_.begin(), live_list_.end(), path), live_list_.end());
  by_id_.erase(path->id());
  auto it = paths_.find(path);
  if (it != paths_.end()) {
    retired_.push_back(std::move(it->second));
    paths_.erase(it);
  }
  return cost;
}

void PathManager::ReapRetired() { retired_.clear(); }

Path* PathManager::FindLive(uint64_t owner_id) {
  auto it = by_id_.find(owner_id);
  return it == by_id_.end() ? nullptr : it->second;
}

Path* PathManager::DemuxAndDeliver(Module* start, Message msg, const char** drop_reason) {
  const CostModel& cm = kernel_->costs();
  Cycles cost = cm.interrupt_overhead;
  Module* cur = start;
  const char* reason = "no-module";

  // ReapRetired here: demux time is a safe point (no path code on stack).
  ReapRetired();

  while (cur != nullptr) {
    cost += cm.demux_per_module;
    DemuxDecision d = cur->Demux(msg);
    switch (d.action) {
      case DemuxDecision::Action::kContinue:
        cur = d.next;
        continue;
      case DemuxDecision::Action::kDeliver: {
        Path* path = d.path;
        if (path == nullptr || path->destroyed()) {
          reason = "dead-path";
          cur = nullptr;
          break;
        }
        if (path->PendingItems() >= backlog_limit_) {
          ++backlog_drops_;
          reason = "backlog";
          cur = nullptr;
          break;
        }
        // Deliver at the first stage moving up-path; interrupt + demux
        // cycles are charged to the receiving path.
        path->DeliverAt(0, Direction::kUp, std::move(msg), cost, /*yields=*/true);
        if (drop_reason != nullptr) {
          *drop_reason = nullptr;
        }
        return path;
      }
      case DemuxDecision::Action::kDrop:
        reason = d.drop_reason;
        cur = nullptr;
        break;
    }
  }

  // Dropped: the cycles spent taking the interrupt and classifying the
  // message are consumed on the kernel's interrupt thread.
  ++demux_drops_;
  drop_reasons_[reason] += 1;
  if (drop_reason != nullptr) {
    *drop_reason = reason;
  }
  if (Tracer* t = LifecycleTracer(kernel_)) {
    t->Instant(kernel_->now(), "demux", "demux-drop", "path",
               {{"reason", Tracer::Str(reason)}});
  }
  interrupt_thread_->Push(cost + cm.demux_drop, kKernelDomain, nullptr, /*yields=*/true);
  return nullptr;
}

}  // namespace escort
