#include "src/path/pathfinder.h"

#include "src/net/headers.h"

namespace escort {

bool Cell::Matches(const uint8_t* data, size_t size) const {
  if (offset + length > size) {
    return false;
  }
  uint32_t field = 0;
  for (uint8_t i = 0; i < length; ++i) {
    field = (field << 8) | data[offset + i];
  }
  return (field & mask) == (value & mask);
}

PathFinder::PathFinder() {
  nodes_.push_back(Node{});  // root
  nodes_[kRoot].refs = 1;
}

PathFinder::NodeId PathFinder::Insert(NodeId parent, const Line& line) {
  Node& p = nodes_[parent];
  // Shared lines: an identical line under the same parent reuses the node.
  for (NodeId child : p.children) {
    if (nodes_[child].line == line) {
      nodes_[child].refs += 1;
      return child;
    }
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.line = line;
  node.refs = 1;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void PathFinder::Bind(NodeId node, Path* target, int priority) {
  nodes_[node].target = target;
  nodes_[node].priority = priority;
  nodes_[node].bound = true;
}

void PathFinder::Unbind(NodeId node) {
  nodes_[node].bound = false;
  nodes_[node].target = nullptr;
  if (nodes_[node].refs > 0) {
    nodes_[node].refs -= 1;
  }
  // Node slots of fully-released leaves are left in place (ids stay
  // stable); Classify skips unbound, childless nodes.
}

void PathFinder::ClassifyFrom(NodeId id, const uint8_t* data, size_t size, int depth,
                              Path** best, int* best_depth, int* best_priority) const {
  const Node& node = nodes_[id];
  if (id != kRoot) {
    for (const Cell& cell : node.line) {
      ++last_cells_;
      if (!cell.Matches(data, size)) {
        return;
      }
    }
    if (node.bound && node.refs > 0 &&
        (depth > *best_depth || (depth == *best_depth && node.priority > *best_priority))) {
      *best = node.target;
      *best_depth = depth;
      *best_priority = node.priority;
    }
  }
  for (NodeId child : node.children) {
    ClassifyFrom(child, data, size, depth + 1, best, best_depth, best_priority);
  }
}

Path* PathFinder::Classify(const uint8_t* data, size_t size) const {
  ++classifies_;
  last_cells_ = 0;
  Path* best = nullptr;
  int best_depth = -1;
  int best_priority = -1;
  ClassifyFrom(kRoot, data, size, 0, &best, &best_depth, &best_priority);
  return best;
}

namespace pattern {

namespace {
constexpr uint32_t kIpOff = kEthHeaderLen;
constexpr uint32_t kTcpOff = kEthHeaderLen + kIpHeaderLen;
}  // namespace

Line EthIpv4() { return {Cell{12, 2, 0xffff, kEtherTypeIp}}; }

Line EthArp() { return {Cell{12, 2, 0xffff, kEtherTypeArp}}; }

Line IpTcpTo(uint32_t dst_ip) {
  return {
      Cell{kIpOff + 0, 1, 0xf0, 0x40},        // version 4
      Cell{kIpOff + 9, 1, 0xff, kIpProtoTcp},  // protocol
      Cell{kIpOff + 16, 4, 0xffffffff, dst_ip},
  };
}

Line TcpDstPort(uint16_t port) { return {Cell{kTcpOff + 2, 2, 0xffff, port}}; }

Line TcpSynOnly() {
  // flags byte: SYN set, ACK clear.
  return {Cell{kTcpOff + 13, 1, kTcpSyn | kTcpAck, kTcpSyn}};
}

Line TcpConn(uint32_t src_ip, uint16_t src_port) {
  return {
      Cell{kIpOff + 12, 4, 0xffffffff, src_ip},
      Cell{kTcpOff + 0, 2, 0xffff, src_port},
  };
}

}  // namespace pattern

}  // namespace escort
