#include "src/path/module.h"

#include "src/path/path.h"

namespace escort {

ProtectionDomain* Module::domain() const {
  return kernel_ != nullptr ? kernel_->domain(pd_) : nullptr;
}

void Module::ConsumeCost(Direction dir) const {
  if (kernel_ != nullptr) {
    kernel_->ConsumeCharged(ProcessCost(dir));
  }
}

}  // namespace escort
