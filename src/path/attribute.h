// Path attributes: the invariants fixed at pathCreate time (paper §2.2),
// e.g. the peer's address and port, the document root, QoS labels.

#ifndef SRC_PATH_ATTRIBUTE_H_
#define SRC_PATH_ATTRIBUTE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace escort {

class Attributes {
 public:
  Attributes& SetInt(const std::string& key, uint64_t value) {
    ints_[key] = value;
    return *this;
  }
  Attributes& SetStr(const std::string& key, std::string value) {
    strs_[key] = std::move(value);
    return *this;
  }

  std::optional<uint64_t> GetInt(const std::string& key) const {
    auto it = ints_.find(key);
    if (it == ints_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  uint64_t GetIntOr(const std::string& key, uint64_t fallback) const {
    return GetInt(key).value_or(fallback);
  }

  std::optional<std::string> GetStr(const std::string& key) const {
    auto it = strs_.find(key);
    if (it == strs_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  std::string GetStrOr(const std::string& key, const std::string& fallback) const {
    return GetStr(key).value_or(fallback);
  }

  bool Has(const std::string& key) const {
    return ints_.count(key) != 0 || strs_.count(key) != 0;
  }

  size_t size() const { return ints_.size() + strs_.size(); }

 private:
  std::map<std::string, uint64_t> ints_;
  std::map<std::string, std::string> strs_;
};

}  // namespace escort

#endif  // SRC_PATH_ATTRIBUTE_H_
