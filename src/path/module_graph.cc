#include "src/path/module_graph.h"

namespace escort {

bool ModuleGraph::Connect(Module* a, Module* b, ServiceInterface iface) {
  if (a == nullptr || b == nullptr || !a->Supports(iface) || !b->Supports(iface)) {
    return false;
  }
  edges_.emplace(a, b);
  edges_.emplace(b, a);
  return true;
}

bool ModuleGraph::Connected(const Module* a, const Module* b) const {
  return edges_.count({a, b}) != 0;
}

Module* ModuleGraph::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

void ModuleGraph::InitAll(PathManager* manager) {
  for (auto& module : modules_) {
    module->path_manager_ = manager;
  }
  for (auto& module : modules_) {
    module->Init();
  }
}

}  // namespace escort
