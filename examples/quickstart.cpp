// Quickstart: the Escort core API in one file.
//
// Builds a kernel, defines two tiny modules, connects them in a module
// graph, creates a path across them, pushes a message through, and prints
// the per-owner cycle accounting — the essence of the architecture: every
// cycle lands on some owner's ledger.

#include <cstdio>

#include "src/path/path_manager.h"
#include "src/sim/stats.h"

using namespace escort;

namespace {

// A module that stamps each message it sees and forwards it up-path.
class StampModule : public Module {
 public:
  explicit StampModule(std::string name)
      : Module(std::move(name), {ServiceInterface::kAsyncIo}) {}

  void SetNext(Module* next) { next_ = next; }

  OpenResult Open(Path*, const Attributes&) override {
    OpenResult r;
    r.ok = true;
    r.next = next_;
    r.destructor = [this](Path*, Stage*) {
      std::printf("  [%s] destructor: path is going away\n", name().c_str());
    };
    return r;
  }

  void Process(Stage& stage, Message msg, Direction dir) override {
    kernel()->ConsumeCharged(5'000);  // five thousand cycles of "work"
    std::printf("  [%s] processing %zu-byte message at t=%.1f us\n", name().c_str(),
                static_cast<size_t>(msg.size()), SecondsFromCycles(kernel()->now()) * 1e6);
    msg.Append(pd(), name().c_str(), 1);  // stamp one byte
    if (dir == Direction::kUp) {
      stage.path->ForwardUp(stage, std::move(msg));
    }
  }

 private:
  Module* next_ = nullptr;
};

}  // namespace

int main() {
  std::printf("== Escort quickstart ==\n\n");

  // 1. A kernel with fine-grain accounting enabled.
  EventQueue eq;
  KernelConfig config;
  config.accounting = true;
  Kernel kernel(&eq, config);

  // 2. Two modules wired into a graph (build-time configuration).
  ModuleGraph graph(&kernel);
  auto* lower = graph.Add(std::make_unique<StampModule>("lower"), kKernelDomain);
  auto* upper = graph.Add(std::make_unique<StampModule>("upper"), kKernelDomain);
  lower->SetNext(upper);
  graph.Connect(lower, upper, ServiceInterface::kAsyncIo);

  PathManager paths(&kernel, &graph);
  graph.InitAll(&paths);

  // 3. A path across both modules (run-time), owning its own resources.
  Attributes attrs;
  attrs.SetStr("purpose", "demo");
  Path* path = paths.Create(lower, attrs, "Demo Path");
  std::printf("created path with %zu stages, owner id %llu\n\n", path->stages().size(),
              static_cast<unsigned long long>(path->id()));

  // 4. Send a message up the path.
  Message msg = Message::Alloc(&kernel, path, kKernelDomain, path->StageDomains(), 64, 16);
  msg.Append(kKernelDomain, "payload", 7);
  path->DeliverAt(0, Direction::kUp, std::move(msg), /*extra_cost=*/2'000);
  eq.RunUntil(CyclesFromMillis(5));

  // 5. The books: every consumed cycle is charged to an owner.
  std::printf("\ncycle ledger after %0.2f ms of simulated time:\n",
              MillisFromCycles(eq.now()));
  CycleLedger ledger = kernel.Snapshot();
  for (const auto& [label, cycles] : ledger.totals()) {
    std::printf("  %-12s %12s cycles\n", label.c_str(), WithCommas(cycles).c_str());
  }
  std::printf("  %-12s %12s cycles (== elapsed: %s)\n", "TOTAL",
              WithCommas(ledger.Total()).c_str(),
              ledger.Total() == eq.now() ? "yes" : "no");

  // 6. pathDestroy: module destructors run, resources reclaimed.
  std::printf("\ndestroying the path:\n");
  paths.Destroy(path);
  std::printf("\nlive paths: %zu\n", paths.live_count());
  return 0;
}
