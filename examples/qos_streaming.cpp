// Example: a guaranteed-bandwidth stream under load (paper §4.4.2).
//
// A receiver opens GET /stream; the server's QoS policy gives the stream's
// path a proportional-share reservation. Even with 16 best-effort clients
// saturating the CPU, the stream holds 1 MB/s (the paper: always within 1%
// of the target) — accounting is what makes the guarantee possible.

#include <cstdio>
#include <vector>

#include "src/workload/experiment.h"

using namespace escort;

int main() {
  std::printf("== QoS streaming demo ==\n\n");

  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  WebServerOptions opts;
  opts.config = ServerConfig::kAccounting;
  opts.scheduler = SchedulerKind::kProportionalShare;
  EscortWebServer server(&eq, &link, opts);

  // Best-effort load: 16 clients.
  std::vector<std::unique_ptr<ClientMachine>> machines;
  std::vector<std::unique_ptr<HttpClient>> clients;
  RateMeter completions;
  for (int i = 0; i < 16; ++i) {
    Ip4Addr ip = Ip4Addr::FromOctets(10, 0, 1, static_cast<uint8_t>(i + 1));
    machines.push_back(std::make_unique<ClientMachine>(
        &eq, &link, MacAddr::FromIndex(100 + static_cast<uint64_t>(i)), ip,
        NetworkModel::Calibrated(), 10 + static_cast<uint64_t>(i)));
    machines.back()->AddArpEntry(opts.ip, opts.mac);
    server.AddArpEntry(ip, machines.back()->mac());
    clients.push_back(std::make_unique<HttpClient>(machines.back().get(), opts.ip, "/doc1b"));
    clients.back()->set_meter(&completions);
    clients.back()->Start(CyclesFromMillis(i));
  }

  // The stream receiver.
  Ip4Addr qos_ip = Ip4Addr::FromOctets(10, 0, 2, 1);
  ClientMachine qos_machine(&eq, &link, MacAddr::FromIndex(50), qos_ip,
                            NetworkModel::Calibrated(), 7);
  qos_machine.AddArpEntry(opts.ip, opts.mac);
  server.AddArpEntry(qos_ip, qos_machine.mac());
  QosReceiver receiver(&qos_machine, opts.ip);
  receiver.Start(CyclesFromMillis(5));

  // Measure in half-second windows.
  std::printf("%10s %14s %16s\n", "window", "QoS MB/s", "best-effort c/s");
  eq.RunUntil(CyclesFromMillis(500));
  for (int w = 0; w < 5; ++w) {
    Cycles start = eq.now();
    receiver.meter().OpenWindow(start);
    completions.OpenWindow(start);
    eq.RunUntil(start + CyclesFromMillis(500));
    double mbs = receiver.meter().CloseWindowBytesPerSec(eq.now()) / 1e6;
    double cps = completions.CloseWindow(eq.now());
    std::printf("%10d %14.3f %16.1f\n", w + 1, mbs, cps);
  }

  std::printf("\nQoS path tickets: %llu vs %llu per best-effort path — the\n"
              "proportional-share scheduler turns accounting into a guarantee.\n",
              static_cast<unsigned long long>(server.http()->qos_tickets),
              static_cast<unsigned long long>(opts.active_tickets));
  return 0;
}
