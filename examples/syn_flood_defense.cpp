// Example: defending against a SYN flood (paper §4.4.1).
//
// Two passive paths split the Internet into a trusted and an untrusted
// part; the untrusted listener carries a SYN_RECVD budget enforced at
// demux time. The attack is visible — and contained — in the listener
// statistics, while trusted clients keep being served.

#include <cstdio>

#include "src/workload/experiment.h"

using namespace escort;

int main() {
  std::printf("== SYN flood defense demo ==\n\n");

  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  WebServerOptions opts;
  opts.config = ServerConfig::kAccounting;
  EscortWebServer server(&eq, &link, opts);

  // A trusted client.
  Ip4Addr client_ip = Ip4Addr::FromOctets(10, 0, 1, 1);
  ClientMachine machine(&eq, &link, MacAddr::FromIndex(100), client_ip,
                        NetworkModel::Calibrated(), 1);
  machine.AddArpEntry(opts.ip, opts.mac);
  server.AddArpEntry(client_ip, machine.mac());
  HttpClient client(&machine, opts.ip, "/doc1k");
  client.Start();

  // The attacker: 1000 SYN/s from the untrusted subnet, spoofed source.
  SynAttacker attacker(&eq, &link, MacAddr::FromIndex(60),
                       Ip4Addr::FromOctets(192, 168, 9, 9), opts.ip, opts.mac, 1000.0);
  attacker.Start(CyclesFromMillis(500));

  auto report = [&](const char* phase) {
    TcpListener* untrusted = server.untrusted_listener();
    TcpListener* trusted = server.trusted_listener();
    std::printf("%-18s client completions=%5llu | untrusted: half-open=%u (budget %u), "
                "dropped-at-demux=%llu | trusted accepted=%llu\n",
                phase, static_cast<unsigned long long>(client.completed()),
                untrusted->syn_recvd, untrusted->syn_limit,
                static_cast<unsigned long long>(untrusted->syns_dropped_at_demux),
                static_cast<unsigned long long>(trusted->syns_accepted));
  };

  eq.RunUntil(CyclesFromMillis(500));
  report("before attack:");
  eq.RunUntil(CyclesFromMillis(1500));
  report("under attack:");
  eq.RunUntil(CyclesFromMillis(2500));
  report("still attacking:");

  std::printf("\nSYNs sent by attacker: %llu\n",
              static_cast<unsigned long long>(attacker.syns_sent()));
  std::printf("Attack contained: the untrusted passive path's budget caps half-open state;\n"
              "over-budget SYNs are identified during demultiplexing and dropped instantly.\n");
  return 0;
}
