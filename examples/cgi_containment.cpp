// Example: containing a runaway CGI script (paper §4.4.3).
//
// A GET /cgi-bin/loop request spawns an infinite-loop thread on the
// request's path. The kernel's per-owner CPU budget (2 ms without a yield)
// detects it; pathKill reclaims every resource the path owns — threads,
// IOBuffers, pages, its stage state in every protection domain — at a
// measured, bounded cost (the paper's Table 2).

#include <cstdio>

#include "src/workload/experiment.h"

using namespace escort;

int main() {
  std::printf("== runaway CGI containment demo ==\n\n");

  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  WebServerOptions opts;
  opts.config = ServerConfig::kAccountingPd;  // full isolation: one domain per module
  EscortWebServer server(&eq, &link, opts);

  // A well-behaved client fetching documents...
  Ip4Addr good_ip = Ip4Addr::FromOctets(10, 0, 1, 1);
  ClientMachine good(&eq, &link, MacAddr::FromIndex(100), good_ip,
                     NetworkModel::Calibrated(), 1);
  good.AddArpEntry(opts.ip, opts.mac);
  server.AddArpEntry(good_ip, good.mac());
  HttpClient client(&good, opts.ip, "/doc1b");
  client.Start();

  // ...and an attacker launching one runaway CGI request per second.
  Ip4Addr bad_ip = Ip4Addr::FromOctets(10, 0, 3, 1);
  ClientMachine bad(&eq, &link, MacAddr::FromIndex(200), bad_ip,
                    NetworkModel::Calibrated(), 2);
  bad.AddArpEntry(opts.ip, opts.mac);
  server.AddArpEntry(bad_ip, bad.mac());
  CgiAttacker attacker(&bad, opts.ip);
  attacker.Start(CyclesFromMillis(100));

  eq.RunUntil(CyclesFromSeconds(3.0));

  std::printf("attacks launched:        %llu\n",
              static_cast<unsigned long long>(attacker.attacks_launched()));
  std::printf("runaways detected:       %llu\n",
              static_cast<unsigned long long>(server.kernel().runaway_detections()));
  std::printf("paths killed:            %llu\n",
              static_cast<unsigned long long>(server.paths_killed()));
  std::printf("mean pathKill cost:      %s cycles (paper Table 2: 111,568 with PDs)\n",
              WithCommas(static_cast<uint64_t>(server.kill_cost_cycles().Mean())).c_str());
  std::printf("good client completions: %llu (service continued throughout)\n",
              static_cast<unsigned long long>(client.completed()));

  // Quiesce: stop the good client and let in-flight connections drain, then
  // show that nothing of the attacks survives.
  client.Stop();
  attacker.Stop();
  eq.RunUntil(eq.now() + CyclesFromSeconds(1.0));
  std::printf("live paths after drain:  %zu (boot paths only: ARP + 2 listeners %s)\n",
              server.paths().live_count(),
              server.paths().live_count() == 3 ? "- all attack state reclaimed" : "!!");
  return 0;
}
