// Example: the Escort web server under plain client load.
//
// Builds the full testbed (server + clients over the shared 100 Mbps
// segment), runs each of the three Escort configurations plus the
// Linux/Apache comparator, and prints the achieved connection rates —
// a miniature of the paper's Figure 8.

#include <cstdio>

#include "src/workload/experiment.h"

using namespace escort;

int main() {
  std::printf("Escort web server demo: 8 clients fetching /doc1k\n");
  std::printf("%-15s %14s %14s %12s\n", "configuration", "conns/sec", "completions", "failures");

  for (bool linux_mode : {false, true}) {
    if (linux_mode) {
      ExperimentSpec spec;
      spec.linux_server = true;
      spec.clients = 8;
      spec.doc = "/doc1k";
      ExperimentResult r = RunExperiment(spec);
      std::printf("%-15s %14.1f %14llu %12llu\n", "Linux/Apache", r.conns_per_sec,
                  static_cast<unsigned long long>(r.completions_total),
                  static_cast<unsigned long long>(r.client_failures));
      continue;
    }
    for (ServerConfig config :
         {ServerConfig::kScout, ServerConfig::kAccounting, ServerConfig::kAccountingPd}) {
      ExperimentSpec spec;
      spec.config = config;
      spec.clients = 8;
      spec.doc = "/doc1k";
      ExperimentResult r = RunExperiment(spec);
      std::printf("%-15s %14.1f %14llu %12llu\n", ServerConfigName(config), r.conns_per_sec,
                  static_cast<unsigned long long>(r.completions_total),
                  static_cast<unsigned long long>(r.client_failures));
    }
  }
  return 0;
}
