// escort_analyzer self-test corpus: patterns that must stay silent.
//
// Exercises the lookalikes next to each rule: value-key revalidation,
// immediate (non-deferred) callables, id-keyed iteration, relaxed atomics.
// The analyzer must report nothing for this file.
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

// ESCORT_KERNEL_LIFETIME
class Session {
 public:
  uint64_t id() const;
  void Poke();
};

class SessionTable {
 public:
  Session* FindLive(uint64_t id);
};

class DelayLine {
 public:
  // ESCORT_DEFERRED_API
  void ScheduleAfter(uint64_t delay, std::function<void()> fn);
};

class CleanWorker {
 public:
  // Value key + revalidation through the table: the EA001-clean idiom.
  void Defer(DelayLine* line, SessionTable* table, Session* session) {
    uint64_t key = session->id();
    line->ScheduleAfter(5, [table, key] {
      Session* live = table->FindLive(key);
      if (live != nullptr) {
        live->Poke();
      }
    });
  }

  // visitor_ runs its argument immediately; raw capture is fine.
  void Inline(Session* session) {
    visitor_([session] { session->Poke(); });
  }

  uint64_t Drain() {
    uint64_t total = 0;
    for (const auto& entry : by_key_) {
      total += entry.second;
    }
    return total + inflight_.load(std::memory_order_relaxed);
  }

 private:
  std::function<void(std::function<void()>)> visitor_;
  std::map<uint64_t, uint64_t> by_key_;
  std::atomic<uint64_t> inflight_{0};
};
