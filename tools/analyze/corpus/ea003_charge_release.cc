// escort_analyzer self-test corpus: EA003 charge/release flow pairing.
//
// Every handle from AllocPage / AllocIoBuffer / LockIoBuffer must be
// released, transferred (returned, stored, passed on), or provably null on
// every exit path of the acquiring function.
#include <cstdint>

class AcctOwner;

struct MemPage {
  uint64_t id = 0;
};

class DiskBuffer {};

class ResourceKernel {
 public:
  MemPage* AllocPage(AcctOwner* owner);
  void FreePage(AcctOwner* owner, MemPage* page);
  DiskBuffer* AllocIoBuffer(AcctOwner* owner, uint64_t bytes);
  void LockIoBuffer(DiskBuffer* buf, AcctOwner* owner);
  void UnlockIoBuffer(DiskBuffer* buf, AcctOwner* owner);
};

class BlockDriver {
 public:
  void LeakOnEarlyReturn(AcctOwner* owner, bool flush) {
    MemPage* page = kernel_->AllocPage(owner);  // EXPECT: EA003
    if (page == nullptr) {
      return;
    }
    if (flush) {
      return;
    }
    kernel_->FreePage(owner, page);
  }

  void LeakAtFunctionEnd(AcctOwner* owner) {
    MemPage* page = kernel_->AllocPage(owner);  // EXPECT: EA003
    if (page == nullptr) {
      return;
    }
    page->id = 7;
  }

  void LockHeldAcrossReturn(DiskBuffer* buf, AcctOwner* owner, bool poll) {
    kernel_->LockIoBuffer(buf, owner);  // EXPECT: EA003
    if (poll) {
      return;
    }
    kernel_->UnlockIoBuffer(buf, owner);
  }

  // Released on both branches: clean.
  void GoodBalancedPaths(AcctOwner* owner, bool flush) {
    MemPage* page = kernel_->AllocPage(owner);
    if (page == nullptr) {
      return;
    }
    if (flush) {
      kernel_->FreePage(owner, page);
      return;
    }
    kernel_->FreePage(owner, page);
  }

  // Ownership transfer: returned to the caller.
  MemPage* GoodTransferReturn(AcctOwner* owner) {
    MemPage* page = kernel_->AllocPage(owner);
    return page;
  }

  // Ownership transfer: stored into a field.
  void GoodTransferStore(AcctOwner* owner) {
    MemPage* page = kernel_->AllocPage(owner);
    if (page == nullptr) {
      return;
    }
    spare_ = page;
  }

  // Ownership transfer: handed to another call.
  void GoodTransferCall(AcctOwner* owner, uint64_t bytes) {
    DiskBuffer* buf = kernel_->AllocIoBuffer(owner, bytes);
    if (buf == nullptr) {
      return;
    }
    Publish(buf);
  }

  void SuppressedWithReason(AcctOwner* owner) {
    MemPage* page = kernel_->AllocPage(owner);  // NOLINT-EA003(page belongs to the fixture arena and is reclaimed at teardown)
    if (page == nullptr) {
      return;
    }
    page->id = 9;
  }

 private:
  void Publish(DiskBuffer* buf);

  ResourceKernel* kernel_ = nullptr;
  MemPage* spare_ = nullptr;
};
