// escort_analyzer self-test corpus: EA001 deferred-capture safety.
//
// A lambda handed to a deferred API outlives the current event; raw
// pointers/references to kernel-lifetime objects inside it dangle when the
// owner is reclaimed (pathKill) before the closure fires. The clean idiom
// captures a value key and revalidates through the manager at fire time.
#include <cstdint>
#include <functional>
#include <utility>

// ESCORT_KERNEL_LIFETIME
class Path {
 public:
  uint64_t id() const { return id_; }
  void Touch();

 private:
  uint64_t id_ = 0;
};

class EventQueue {
 public:
  // ESCORT_DEFERRED_API
  void ScheduleAt(uint64_t at, std::function<void()> fn);
  // ESCORT_DEFERRED_API
  void PostSequenced(std::function<void()> fn);
  uint64_t now() const;
};

class PathManager {
 public:
  Path* FindLive(uint64_t id);
};

class Module {
 public:
  void BadRawPointer(EventQueue* eq, Path* path) {
    eq->ScheduleAt(10, [path] { path->Touch(); });  // EXPECT: EA001
  }

  void BadReference(EventQueue* eq, Path& path) {
    eq->ScheduleAt(10, [&path] { path.Touch(); });  // EXPECT: EA001
  }

  void BadCaptureDefault(EventQueue* eq, Path* path) {
    eq->PostSequenced([=] { path->Touch(); });  // EXPECT: EA001
  }

  void BadInitCapture(EventQueue* eq, Path* path) {
    eq->ScheduleAt(10, [p = path] { p->Touch(); });  // EXPECT: EA001
  }

  // Value key + revalidation: the blessed pattern.
  void GoodRevalidated(EventQueue* eq, PathManager* pm, Path* path) {
    uint64_t path_id = path->id();
    eq->ScheduleAt(10, [pm, path_id] {
      Path* live = pm->FindLive(path_id);
      if (live != nullptr) {
        live->Touch();
      }
    });
  }

  // Immediate invocation is not deferral; raw captures are fine here.
  void GoodImmediate(Path* path) {
    Apply([path] { path->Touch(); });
  }

  void SuppressedWithReason(EventQueue* eq, Path* path) {
    eq->ScheduleAt(10, [path] { path->Touch(); });  // NOLINT-EA001(closure is drained before any reclaim point in this corpus fixture)
  }

 private:
  void Apply(std::function<void()> fn);
};
