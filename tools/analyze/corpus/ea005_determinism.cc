// escort_analyzer self-test corpus: EA005 determinism.
//
// Iteration order over pointer-keyed or unordered containers follows the
// allocator/hash, not the program; float accumulation inside per-shard
// loops makes the rounding depend on the shard count. Both break the
// bit-identical-at-any-shard-count guarantee.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

class FlowState {
 public:
  uint64_t id() const;
};

class FlowRegistry {
 public:
  void IterateByAddress() {
    for (const auto& entry : flows_) {  // EXPECT: EA005
      Use(entry.first);
    }
  }

  void DrainByAddress() {
    while (!flows_.empty()) {
      Retire(flows_.begin()->first);  // EXPECT: EA005
    }
  }

  void IterateByHash() {
    for (const auto& entry : cache_) {  // EXPECT: EA005
      Touch(entry.second);
    }
  }

  // Id-keyed map: creation-order deterministic, clean.
  void GoodIterateById() {
    for (const auto& entry : by_id_) {
      Touch(entry.second->id());
    }
  }

  double ShardFloatAccumulate(int shards) {
    double total = 0.0;
    for (int shard = 0; shard < shards; ++shard) {
      total += weights_[shard];  // EXPECT: EA005
    }
    return total;
  }

  // Integer accumulation commutes exactly: clean.
  uint64_t GoodShardIntAccumulate(int shards) {
    uint64_t total = 0;
    for (int shard = 0; shard < shards; ++shard) {
      total += counts_[shard];
    }
    return total;
  }

  void SuppressedWithReason() {
    for (const auto& entry : flows_) {  // NOLINT-EA005(diagnostic dump only; output never feeds simulation state)
      Use(entry.first);
    }
  }

 private:
  void Use(const FlowState* flow);
  void Touch(uint64_t v);
  void Retire(const FlowState* flow);

  std::map<const FlowState*, uint64_t> flows_;
  std::unordered_map<std::string, uint64_t> cache_;
  std::map<uint64_t, FlowState*> by_id_;
  std::vector<double> weights_;
  std::vector<uint64_t> counts_;
};
