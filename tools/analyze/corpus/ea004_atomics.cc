// escort_analyzer self-test corpus: EA004 atomic memory-order contract.
//
// Outside the sharded-queue internals, atomics exist only for
// relaxed-commutative meters; defaulted (seq_cst) operations, operator
// forms, and acquire/release orders are contract violations.
#include <atomic>
#include <cstdint>

class CommutativeMeter {
 public:
  void GoodRecord(uint64_t n) {
    ops_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t GoodPeek() const {
    return ops_.load(std::memory_order_relaxed);
  }

  void DefaultedAdd(uint64_t n) {
    bytes_.fetch_add(n);  // EXPECT: EA004
  }

  uint64_t AcquireLoad() const {
    return ops_.load(std::memory_order_acquire);  // EXPECT: EA004
  }

  void OperatorIncrement() {
    ops_++;  // EXPECT: EA004
  }

  void OperatorCompound(uint64_t n) {
    bytes_ -= n;  // EXPECT: EA004
  }

  void SuppressedWithReason() {
    done_.store(true, std::memory_order_release);  // NOLINT-EA004(fixture models the documented drain handshake)
  }

 private:
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<bool> done_{false};
};
