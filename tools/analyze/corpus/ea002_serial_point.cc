// escort_analyzer self-test corpus: EA002 serial-point discipline.
//
// Methods of ESCORT_SHARD_CONTEXT classes run on shard-worker streams when
// --shards > 1; no call path from them may reach an ESCORT_SERIAL_ONLY
// method. ESCORT_SHARD_SAFE methods are traversal barriers, and the body of
// a lambda passed to PostSequenced runs at a serial point, so it is excised.
#include <cstdint>
#include <functional>
#include <string>

class SpanTracer {
 public:
  // ESCORT_SERIAL_ONLY
  void Instant(const std::string& name, uint64_t at);
  // ESCORT_SERIAL_ONLY
  void Counter(const std::string& name, uint64_t at, double value);
};

class SampleVec {
 public:
  // ESCORT_SERIAL_ONLY
  void Add(double v);
};

class WindowMeter {
 public:
  // ESCORT_SHARD_SAFE
  void Record(uint64_t n);
  // ESCORT_SERIAL_ONLY
  void OpenWindow(uint64_t at);
};

class Sequencer {
 public:
  // ESCORT_DEFERRED_API
  void PostSequenced(std::function<void()> fn);
};

class SimCell {
 public:
  SpanTracer* tracer();
};

// ESCORT_SHARD_CONTEXT
class ShardClient {
 public:
  void DirectViolation(uint64_t now) {
    tracer_->Instant("client", now);  // EXPECT: EA002
  }

  void TransitiveViolation(double v) {
    RecordSample(v);  // EXPECT: EA002
  }

  void ChainedViolation(uint64_t now) {
    cell_->tracer()->Counter("load", now, 1.0);  // EXPECT: EA002
  }

  // Relaxed-commutative meter: shard-safe barrier, no finding.
  void GoodMeter(uint64_t n) {
    meter_->Record(n);
  }

  // The deposit closure runs at a serial point; its body is excised.
  void GoodDeposit(Sequencer* seq, uint64_t now) {
    seq->PostSequenced([this, now] { tracer_->Instant("deposited", now); });
  }

 private:
  void RecordSample(double v) { samples_->Add(v); }  // EXPECT: EA002

  SpanTracer* tracer_ = nullptr;
  SampleVec* samples_ = nullptr;
  WindowMeter* meter_ = nullptr;
  SimCell* cell_ = nullptr;
};

// Not shard-context: serial-side code may call serial-only APIs freely.
class SerialHarness {
 public:
  void Fine(uint64_t now) {
    tracer_->Instant("harness", now);
    samples_->Add(1.0);
    meter_->OpenWindow(now);
  }

 private:
  SpanTracer* tracer_ = nullptr;
  SampleVec* samples_ = nullptr;
  WindowMeter* meter_ = nullptr;
};
