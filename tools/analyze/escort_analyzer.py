#!/usr/bin/env python3
"""escort_analyzer: AST-level contract checking for the Escort tree.

escort_lint (EL001-EL011) enforces token-level invariants; this tool checks
the contracts that need *structure* — scopes, capture lists, call graphs,
control flow. Contracts are declared in the source with marker comments on
the line(s) directly above a declaration:

  // ESCORT_KERNEL_LIFETIME   class/struct whose instances are reclaimed by
                              pathKill/owner teardown at arbitrary times; raw
                              pointers to them must not be captured into
                              deferred closures.
  // ESCORT_DEFERRED_API      function whose callable argument runs after the
                              current event (ScheduleAt, Thread::Push, ...).
  // ESCORT_SERIAL_ONLY       method that must only execute on stream 0 or at
                              a ShardedEventQueue serial point (unsynchronized
                              trace buffer, sample vectors, window toggles).
  // ESCORT_SHARD_SAFE        method that is safe from any stream (relaxed
                              commutative meters, PostSequenced deposit); an
                              EA002 traversal barrier.
  // ESCORT_SHARD_CONTEXT     class whose methods run on per-client-machine
                              streams, i.e. on shard workers when --shards>1.

Rules (continuing escort_lint's ELxxx numbering in a new EAxxx series):

  EA001  deferred-capture safety: a lambda literal passed to an
         ESCORT_DEFERRED_API must not capture `this` of a kernel-lifetime
         class, a pointer/reference to a kernel-lifetime object, or use a
         capture-default ([=] / [&]). Capture a value key (ConnKey, owner
         id, stage index) and revalidate at fire time — the PR 3 TCP
         retransmit bug and the SCSI completion bug were both this.
  EA002  serial-point discipline: no call path from a method of an
         ESCORT_SHARD_CONTEXT class may reach an ESCORT_SERIAL_ONLY method.
         ESCORT_SHARD_SAFE methods are barriers; the body of a lambda passed
         to PostSequenced runs at a serial point and is excised from the
         shard-context traversal.
  EA003  charge/release flow pairing: a resource handle acquired from
         AllocPage / AllocIoBuffer / LockIoBuffer must, on every exit path
         of the acquiring function, be released (FreePage / UnlockIoBuffer),
         transferred (passed to a call, stored into a field or container,
         returned), or provably null.
  EA004  atomic memory-order contract: outside the sharded-queue internals
         (src/sim/parallel.cc, src/sim/event_queue.cc and their headers),
         every atomic operation must spell out std::memory_order_relaxed —
         the documented commutative-meter pattern. Defaulted (seq_cst) and
         acquire/release orders are flagged.
  EA005  determinism: no iteration over pointer-keyed std::map/std::set
         (or any unordered container), and no float accumulation inside
         per-shard loops (sum order would vary with the shard count).

Suppression: `// NOLINT-EA00x(reason)` on the flagged line, or alone on the
line above, suppresses that rule there. The reason is mandatory; an empty
reason is itself reported (EA000).

Engines: with a working libclang (clang.cindex importable and the C API
library loadable) type facts come from the real AST; otherwise a pure-Python
C++ micro-parser supplies them. Either way the rule logic is identical and
the tool prints which engine ran — the fallback is a first-class, fully
self-tested engine, not a degraded mode, so CI gates on it deterministically.

Usage:
  escort_analyzer.py -p BUILD_DIR            # compile_commands.json driven
  escort_analyzer.py --self-test             # corpus expectations
  escort_analyzer.py --report-serial -p DIR  # EA002 reachability proof

Exit status: 0 clean (or self-test passed), 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys

RULES = ("EA001", "EA002", "EA003", "EA004", "EA005")

MARKERS = (
    "ESCORT_KERNEL_LIFETIME",
    "ESCORT_DEFERRED_API",
    "ESCORT_SERIAL_ONLY",
    "ESCORT_SHARD_SAFE",
    "ESCORT_SHARD_CONTEXT",
)

# EA004: the queue/pool internals legitimately use acquire/release fences.
ATOMIC_ALLOWLIST = (
    "src/sim/parallel.cc",
    "src/sim/parallel.h",
    "src/sim/event_queue.cc",
    "src/sim/event_queue.h",
)

# EA003 acquire -> (handle source, releases). "Transfer" covers
# PageAllocator::Transfer; any other escape is recognized structurally.
CHARGE_PAIRS = {
    "AllocPage": ("FreePage", "Transfer"),
    "AllocIoBuffer": ("UnlockIoBuffer",),
    "LockIoBuffer": ("UnlockIoBuffer",),
}

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "return", "break",
    "continue", "goto", "sizeof", "new", "delete", "throw", "catch", "try",
    "static_assert", "alignas", "alignof", "decltype", "using", "typedef",
    "namespace", "template", "typename", "public", "private", "protected",
    "friend", "class", "struct", "enum", "union", "operator", "default",
}

TYPE_NOT_KEYWORDS = CONTROL_KEYWORDS | {"const", "constexpr", "mutable",
                                        "static", "inline", "virtual",
                                        "explicit", "volatile", "register"}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = False

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                prev = out[-1] if out else ""
                if prev.isalnum() or prev == "_":
                    out.append(" ")  # digit separator (50'000)
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            out.append(c if c == "\n" else " ")
            if c == "\n":
                state = "code"
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def match_brace(code: str, open_idx: int, open_ch: str = "{", close_ch: str = "}") -> int:
    """Index of the brace closing code[open_idx], or -1."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return -1


def line_of(code: str, offset: int) -> int:
    return code.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Model: what the rules consume. Both engines fill these structures.
# ---------------------------------------------------------------------------

class ClassInfo:
    def __init__(self, name, path, line):
        self.name = name
        self.path = path
        self.line = line
        self.bases = []          # base class names
        self.members = {}        # var name -> (type, ptrness)
        self.methods = set()     # method names declared in the class body
        self.span = (0, 0)       # offset span of the body in the file


class FuncDef:
    def __init__(self, path, cls, name, line):
        self.path = path
        self.cls = cls           # enclosing/qualifying class name or None
        self.name = name
        self.line = line
        self.params = {}         # name -> (type, ptrness)
        self.locals = []         # (offset_in_body, name, type, ptrness)
        self.body = ""           # masked body text (between braces)
        self.body_off = 0        # file offset of the opening brace + 1

    @property
    def key(self):
        return (self.cls or "", self.name)


class Model:
    def __init__(self):
        self.files = {}              # relpath -> (raw, masked)
        self.classes = {}            # name -> ClassInfo
        self.functions = []          # FuncDef, definition order
        self.kernel_lifetime = set()     # class names
        self.shard_context = set()       # class names
        self.serial_only = set()         # (class, method)
        self.shard_safe = set()          # (class, method)
        self.deferred_apis = set()       # method names
        self.nolint = {}             # (relpath, line) -> set of rules
        self.findings = []

    def add(self, path, line, rule, message):
        self.findings.append(Finding(path, line, rule, message))

    def func_at(self, path, offset):
        """Innermost function definition containing a file offset."""
        best = None
        for f in self.functions:
            if f.path != path:
                continue
            if f.body_off <= offset < f.body_off + len(f.body):
                if best is None or f.body_off > best.body_off:
                    best = f
        return best

    def class_of(self, name):
        return self.classes.get(name)

    def is_kernel_lifetime(self, type_name):
        """Transitive through known bases (Path : Owner)."""
        seen = set()
        stack = [type_name]
        while stack:
            t = stack.pop()
            if t in seen:
                continue
            seen.add(t)
            if t in self.kernel_lifetime:
                return True
            ci = self.classes.get(t)
            if ci is not None:
                stack.extend(ci.bases)
        return False

    def in_serial_only(self, cls, method):
        """(cls, method) with base-class lookup."""
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            if (c, method) in self.serial_only:
                return c
            ci = self.classes.get(c)
            if ci is not None:
                stack.extend(ci.bases)
        return None

    def in_shard_safe(self, cls, method):
        seen = set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c in seen:
                continue
            seen.add(c)
            if (c, method) in self.shard_safe:
                return True
            ci = self.classes.get(c)
            if ci is not None:
                stack.extend(ci.bases)
        return False


# ---------------------------------------------------------------------------
# Text engine: the pure-Python C++ micro-parser.
# ---------------------------------------------------------------------------

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(:\s*[^{;]+)?\{")

MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|const\s+|constexpr\s+)*"
    r"((?:std::)?[A-Za-z_][\w:]*(?:<[^;]*>)?)\s*([*&]*)\s*"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")

FUNC_RE = re.compile(
    r"(?:^|[;{}\n])[ \t]*(?:template\s*<[^>]*>\s*)?"
    r"(?:inline\s+|static\s+|virtual\s+|constexpr\s+|explicit\s+)*"
    r"(?:[A-Za-z_][\w:<>,*&\s]*?[\s*&])??"
    r"((?:[A-Za-z_]\w*::)*)([A-Za-z_~]\w*)\s*\(([^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
    r"(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?(?:final\s*)?(?::[^{;]*?)?\{",
    re.S)

PARAM_RE = re.compile(
    r"((?:const\s+)?(?:std::)?[A-Za-z_][\w:]*(?:<[^<>]*(?:<[^<>]*>[^<>]*)*>)?)"
    r"\s*((?:\s*(?:const|[*&]))*)\s*([A-Za-z_]\w*)\s*(?:=[^,]*)?$")

LOCAL_RE = re.compile(
    r"^\s*(?:const\s+|constexpr\s+|static\s+)*"
    r"((?:std::)?[A-Za-z_][\w:]*(?:<[^;=]*>)?)\s*([*&]*)\s*"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;")

COND_DECL_RE = re.compile(
    r"\b(?:if|while|for)\s*\(\s*((?:std::)?[A-Za-z_][\w:]*)\s*([*&])\s*"
    r"([A-Za-z_]\w*)\s*[=:]")


def normalize_type(t: str) -> str:
    t = t.strip()
    for prefix in ("const ", "std::"):
        if t.startswith(prefix):
            t = t[len(prefix):]
    return t.split("<")[0].strip()


def parse_params(args_text: str):
    """name -> (type, ptrness) from a signature's argument text."""
    params = {}
    depth = 0
    arg = ""
    parts = []
    for c in args_text:
        if c in "<(":
            depth += 1
        elif c in ">)":
            depth -= 1
        if c == "," and depth == 0:
            parts.append(arg)
            arg = ""
        else:
            arg += c
    if arg.strip():
        parts.append(arg)
    for part in parts:
        m = PARAM_RE.match(part.strip())
        if m is None:
            continue
        typ, ptr, name = m.groups()
        base = normalize_type(typ)
        if base in TYPE_NOT_KEYWORDS:
            continue
        params[name] = (base, "*" in (ptr or "") or "&" in (ptr or ""))
    return params


class TextEngine:
    """Builds the Model from masked source text alone."""

    name = "fallback"

    def build(self, model: Model):
        for path, (raw, code) in sorted(model.files.items()):
            self._scan_annotations(model, path, raw, code)
        for path, (raw, code) in sorted(model.files.items()):
            self._scan_classes(model, path, code)
        for path, (raw, code) in sorted(model.files.items()):
            self._scan_functions(model, path, code)
        self._attach_annotations(model)

    # -- annotations --------------------------------------------------------
    def _scan_annotations(self, model, path, raw, code):
        lines = raw.split("\n")
        pending = []  # markers awaiting their declaration
        for idx, line in enumerate(lines):
            lineno = idx + 1
            nol = re.search(r"//\s*NOLINT-(EA\d{3})\s*\(([^)]*)\)", line)
            if nol is not None:
                rule, reason = nol.group(1), nol.group(2).strip()
                if not reason:
                    model.add(path, lineno, "EA000",
                              f"NOLINT-{rule} without a reason — say why")
                stripped = line.strip()
                target = lineno + 1 if stripped.startswith("//") else lineno
                model.nolint.setdefault((path, target), set()).add(rule)
                model.nolint.setdefault((path, lineno), set()).add(rule)
            for marker in MARKERS:
                if re.search(r"//.*\b" + marker + r"\b", line):
                    pending.append((marker, lineno))
            if pending and not line.strip().startswith("//") \
                    and not re.search(r"//.*\bESCORT_\w+", line):
                stripped_code = code.split("\n")[idx].strip()
                if stripped_code:
                    self._bind_annotation(model, path, code, idx, pending)
                    pending = []

    def _bind_annotation(self, model, path, code, line_idx, pending):
        """Attach pending markers to the declaration starting at line_idx."""
        lines = code.split("\n")
        decl = lines[line_idx]
        # Gather continuation lines until we see { ; or ( — enough to name it.
        probe = decl
        j = line_idx
        while "(" not in probe and "{" not in probe and ";" not in probe \
                and j + 1 < len(lines) and j - line_idx < 4:
            j += 1
            probe += " " + lines[j]
        cm = re.search(r"\b(?:class|struct)\s+([A-Za-z_]\w*)", probe)
        fm = re.search(r"\b([A-Za-z_~]\w*)\s*\(", probe)
        for marker, _ in pending:
            if marker in ("ESCORT_KERNEL_LIFETIME", "ESCORT_SHARD_CONTEXT"):
                if cm is not None:
                    target = model.kernel_lifetime \
                        if marker == "ESCORT_KERNEL_LIFETIME" else model.shard_context
                    target.add(cm.group(1))
            elif marker == "ESCORT_DEFERRED_API":
                if fm is not None:
                    model.deferred_apis.add(fm.group(1))
            else:  # SERIAL_ONLY / SHARD_SAFE — method; class resolved later
                if fm is not None:
                    key = ("?", fm.group(1), path, line_idx + 1)
                    target = model.serial_only \
                        if marker == "ESCORT_SERIAL_ONLY" else model.shard_safe
                    target.add(key)

    def _attach_annotations(self, model):
        """Resolve ('?', method, path, line) entries to their enclosing class."""
        for attr in ("serial_only", "shard_safe"):
            resolved = set()
            for entry in getattr(model, attr):
                if len(entry) == 2:
                    resolved.add(entry)
                    continue
                _, method, path, lineno = entry
                cls = self._class_at_line(model, path, lineno)
                resolved.add((cls or "", method))
            setattr(model, attr, resolved)

    def _class_at_line(self, model, path, lineno):
        raw, code = model.files[path]
        offset = 0
        for _ in range(lineno - 1):
            offset = code.find("\n", offset) + 1
        best = None
        for ci in model.classes.values():
            if ci.path != path:
                continue
            lo, hi = ci.span
            if lo <= offset <= hi:
                if best is None or lo > best.span[0]:
                    best = ci
        return best.name if best else None

    # -- classes ------------------------------------------------------------
    def _scan_classes(self, model, path, code):
        for m in CLASS_RE.finditer(code):
            name = m.group(1)
            brace = code.index("{", m.start())
            close = match_brace(code, brace)
            if close < 0:
                continue
            ci = model.classes.get(name)
            if ci is None:
                ci = ClassInfo(name, path, line_of(code, m.start()))
                model.classes[name] = ci
            ci.span = (brace, close)
            bases = m.group(2)
            if bases:
                for b in bases.lstrip(":").split(","):
                    b = b.strip()
                    b = re.sub(r"^(public|private|protected|virtual)\s+", "", b)
                    b = b.split("<")[0].strip().split("::")[-1]
                    if b:
                        ci.bases.append(b)
            body = code[brace + 1:close]
            # Only depth-0 statements of the class body (skip nested bodies).
            ci_depth = 0
            stmt = ""

            def flush(stmt, with_member):
                stmt = re.sub(r"^\s*(?:public|private|protected)\s*:", "",
                              stmt).strip()
                if not stmt:
                    return
                if with_member:
                    mm = MEMBER_RE.match(stmt)
                    if mm is not None:
                        typ = normalize_type(mm.group(1))
                        if typ not in TYPE_NOT_KEYWORDS:
                            ci.members[mm.group(3)] = (typ, bool(mm.group(2)))
                fm = re.search(r"\b([A-Za-z_~]\w*)\s*\(", stmt)
                if fm is not None:
                    ci.methods.add(fm.group(1))

            for c in body:
                if c == "{":
                    if ci_depth == 0:
                        flush(stmt, False)  # inline method signature
                        stmt = ""
                    ci_depth += 1
                    continue
                if c == "}":
                    ci_depth -= 1
                    stmt = ""
                    continue
                if ci_depth == 0:
                    stmt += c
                    if c == ";":
                        flush(stmt, True)
                        stmt = ""

    # -- functions ----------------------------------------------------------
    def _scan_functions(self, model, path, code):
        for m in FUNC_RE.finditer(code):
            qual, name, args = m.group(1), m.group(2), m.group(3)
            if name in CONTROL_KEYWORDS:
                continue
            brace = m.end() - 1
            close = match_brace(code, brace)
            if close < 0:
                continue
            cls = qual.rstrip(":").split("::")[-1] if qual else None
            if cls is None:
                # Inline method? attach the innermost class whose span covers us.
                for ci in model.classes.values():
                    if ci.path != path:
                        continue
                    lo, hi = ci.span
                    if lo < m.start() < hi:
                        if cls is None or lo > model.classes[cls].span[0]:
                            cls = ci.name
            f = FuncDef(path, cls, name, line_of(code, m.start(2)))
            f.params = parse_params(args)
            f.body = code[brace + 1:close]
            f.body_off = brace + 1
            self._scan_locals(f)
            model.functions.append(f)
            if cls is not None and cls in model.classes:
                model.classes[cls].methods.add(name)

    def _scan_locals(self, f):
        offset = 0
        for stmt_line in f.body.split("\n"):
            m = LOCAL_RE.match(stmt_line)
            if m is not None:
                typ = normalize_type(m.group(1))
                if typ not in TYPE_NOT_KEYWORDS:
                    f.locals.append((offset, m.group(3), typ, bool(m.group(2))))
            for cm in COND_DECL_RE.finditer(stmt_line):
                typ = normalize_type(cm.group(1))
                if typ not in TYPE_NOT_KEYWORDS:
                    f.locals.append((offset, cm.group(3), typ, True))
            offset += len(stmt_line) + 1


# ---------------------------------------------------------------------------
# Optional libclang engine: replaces the regex type facts with AST facts.
# ---------------------------------------------------------------------------

class ClangEngine(TextEngine):
    """TextEngine whose type resolution is refined by clang.cindex.

    The structural scan (annotations, call sites, lambdas, control flow) is
    shared with the text engine; what libclang contributes is authoritative
    declared types for parameters, locals and fields, plus the class
    hierarchy — exactly the facts the regex parser approximates.
    """

    name = "libclang"

    def __init__(self, compile_commands):
        self.compile_commands = compile_commands
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.index = cindex.Index.create()  # raises if the C API is missing

    def build(self, model: Model):
        super().build(model)
        try:
            self._refine_types(model)
        except Exception as e:  # pragma: no cover - depends on local clang
            sys.stderr.write(
                f"escort-analyzer: NOTICE: libclang refinement failed ({e}); "
                "continuing with text-engine facts\n")

    def _refine_types(self, model):  # pragma: no cover - needs libclang
        ck = self.cindex.CursorKind
        by_file = {}
        for entry in self.compile_commands:
            fn = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
            args = [a for a in entry.get("arguments", entry.get("command", "").split())
                    if a not in ("-c", "-o")][1:]
            args = [a for a in args if not a.endswith((".cc", ".o"))]
            tu = self.index.parse(fn, args=args)
            for cur in tu.cursor.walk_preorder():
                if cur.location.file is None:
                    continue
                f = os.path.relpath(str(cur.location.file), os.getcwd())
                if f not in model.files:
                    continue
                if cur.kind in (ck.VAR_DECL, ck.PARM_DECL, ck.FIELD_DECL):
                    t = cur.type.spelling
                    base = normalize_type(t.replace("*", "").replace("&", ""))
                    ptr = "*" in t or "&" in t
                    by_file.setdefault(f, {})[cur.spelling] = (base, ptr)
                elif cur.kind == ck.CXX_BASE_SPECIFIER:
                    parent = cur.semantic_parent
                    if parent is not None and parent.spelling in model.classes:
                        b = normalize_type(cur.type.spelling).split("::")[-1]
                        if b not in model.classes[parent.spelling].bases:
                            model.classes[parent.spelling].bases.append(b)
        # AST facts override regex guesses wherever they disagree.
        for f in model.functions:
            table = by_file.get(f.path)
            if not table:
                continue
            for name, fact in table.items():
                if name in f.params:
                    f.params[name] = fact
            f.locals = [(off, n, *(table.get(n, (t, p)))) for off, n, t, p in f.locals]


# ---------------------------------------------------------------------------
# Scope resolution shared by the rules.
# ---------------------------------------------------------------------------

def resolve_var(model, func, name, at_offset=None):
    """(type, is_ptr) for `name` visible in `func` at body offset, or None."""
    if func is None:
        return None
    best = None
    for off, n, typ, ptr in func.locals:
        if n != name:
            continue
        if at_offset is not None and off > at_offset:
            continue
        if best is None or off >= best[0]:
            best = (off, typ, ptr)
    if best is not None:
        return (best[1], best[2])
    if name in func.params:
        return func.params[name]
    cls = func.cls
    seen = set()
    while cls and cls not in seen:
        seen.add(cls)
        ci = model.classes.get(cls)
        if ci is None:
            break
        if name in ci.members:
            return ci.members[name]
        cls = ci.bases[0] if ci.bases else None
    return None


# ---------------------------------------------------------------------------
# EA001: deferred-capture safety.
# ---------------------------------------------------------------------------

def split_top_level(text, sep=","):
    parts, depth, cur, prev = [], 0, "", ""
    for c in text:
        if c in "([{<":
            depth += 1
        elif c == ">" and prev == "-":
            pass  # `->` is not a closing angle bracket
        elif c in ")]}>":
            depth -= 1
        prev = c
        if c == sep and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += c
    parts.append(cur)
    return parts


def find_lambdas_in_args(code, open_paren):
    """Offsets of '[' starting lambda literals that are arguments of the
    call whose '(' is at open_paren. Nested calls' own lambdas are found by
    their own call-site scan, but a lambda inside *this* argument list at
    any paren depth still belongs to a callable being built for this call,
    so every argument-position '[' in the span is returned."""
    close = match_brace(code, open_paren, "(", ")")
    if close < 0:
        return []
    out = []
    i = open_paren + 1
    while i < close:
        c = code[i]
        if c == "[":
            j = i - 1
            while j > open_paren and code[j].isspace():
                j -= 1
            if code[j] in "(,":
                out.append(i)
            # skip the capture list either way (avoid [] inside it)
            end = match_brace(code, i, "[", "]")
            i = (end if end > 0 else i) + 1
            continue
        i += 1
    return out


def check_ea001(model):
    if not model.deferred_apis:
        return
    call_re = re.compile(
        r"\b(" + "|".join(sorted(model.deferred_apis)) + r")\s*\(")
    for path, (raw, code) in sorted(model.files.items()):
        for cm in call_re.finditer(code):
            api = cm.group(1)
            open_paren = cm.end() - 1
            for lb in find_lambdas_in_args(code, open_paren):
                rb = match_brace(code, lb, "[", "]")
                if rb < 0:
                    continue
                caps = code[lb + 1:rb]
                lineno = line_of(code, lb)
                func = model.func_at(path, lb)
                for cap in split_top_level(caps):
                    cap = cap.strip()
                    if not cap:
                        continue
                    bad = classify_capture(model, func, cap, lb)
                    if bad is not None:
                        model.add(path, lineno, "EA001",
                                  f"deferred closure passed to {api}() {bad}; "
                                  "capture a value key (owner id / ConnKey / "
                                  "index) and revalidate at fire time")


def classify_capture(model, func, cap, at_offset):
    """Reason string if the capture violates EA001, else None."""
    if cap in ("=", "&"):
        return f"uses capture-default [{cap}] (explicit captures required)"
    if cap in ("this", "*this"):
        cls = func.cls if func is not None else None
        if cls is not None and model.is_kernel_lifetime(cls):
            return f"captures `this` of kernel-lifetime class {cls}"
        return None
    m = re.match(r"^&\s*([A-Za-z_]\w*)$", cap)
    if m is not None:
        name = m.group(1)
        fact = resolve_var(model, func, name,
                           at_offset - (func.body_off if func else 0))
        if fact is not None and model.is_kernel_lifetime(fact[0]):
            return f"captures `&{name}` referencing kernel-lifetime {fact[0]}"
        return None
    m = re.match(r"^([A-Za-z_]\w*)\s*=\s*(.+)$", cap, re.S)
    if m is not None:
        init = m.group(2).strip()
        im = re.match(r"^(?:std::move\(\s*)?([A-Za-z_]\w*)\s*\)?$", init)
        if im is None:
            return None  # computed initializer (ids, keys) — fine
        name = im.group(1)
    else:
        if not re.match(r"^[A-Za-z_]\w*$", cap):
            return None
        name = cap
    fact = resolve_var(model, func, name,
                       at_offset - (func.body_off if func else 0))
    if fact is not None and fact[1] and model.is_kernel_lifetime(fact[0]):
        return f"captures raw `{fact[0]}*` `{name}`"
    return None


# ---------------------------------------------------------------------------
# EA002: serial-point discipline.
# ---------------------------------------------------------------------------

CALL_SITE_RE = re.compile(
    r"(?:\b([A-Za-z_]\w*)\s*(->|\.)\s*)?([A-Za-z_]\w*)\s*\(")


def excise_postsequenced(code, body, body_off):
    """Blank the argument span of PostSequenced( calls inside `body` —
    those lambdas run at a serial point, not in shard context."""
    out = body
    for m in re.finditer(r"\bPostSequenced\s*\(", body):
        op = m.end() - 1
        close = match_brace(body, op, "(", ")")
        if close > 0:
            out = out[:op + 1] + re.sub(r"\S", " ", out[op + 1:close]) + out[close:]
    return out


def body_calls(model, func):
    """Yield (line, receiver_cls_or_None, method) for calls in func's body."""
    raw, code = model.files[func.path]
    body = excise_postsequenced(code, func.body, func.body_off)
    for m in CALL_SITE_RE.finditer(body):
        recv, _, method = m.group(1), m.group(2), m.group(3)
        if method in CONTROL_KEYWORDS or method in TYPE_NOT_KEYWORDS:
            continue
        lineno = line_of(code, func.body_off + m.start())
        recv_cls = None
        if m.group(2) is not None and recv is not None:
            fact = resolve_var(model, func, recv, m.start())
            if fact is not None:
                recv_cls = fact[0]
        elif m.group(2) is None:
            # Unqualified: a method of the enclosing class (or its bases)?
            cls = func.cls
            seen = set()
            while cls and cls not in seen:
                seen.add(cls)
                ci = model.classes.get(cls)
                if ci is None:
                    break
                if method in ci.methods:
                    recv_cls = cls
                    break
                cls = ci.bases[0] if ci.bases else None
        yield (lineno, recv_cls, method, recv_cls is None)


def serial_only_unique_names(model):
    """Serial-only method names that no other indexed class declares —
    safe to match even when the receiver's type cannot be resolved."""
    names = {}
    for ci in model.classes.values():
        for meth in ci.methods:
            names.setdefault(meth, set()).add(ci.name)
    unique = set()
    for cls, meth in model.serial_only:
        owners = names.get(meth, set())
        if owners <= {cls} or not owners:
            unique.add(meth)
    return unique


def check_ea002(model, report=False):
    defs = {}
    for f in model.functions:
        defs.setdefault(f.key, f)
    unique_serial = serial_only_unique_names(model)
    reachable = {}   # (cls, meth) serial target -> first chain found

    def walk(func, chain, visited, anchor=None):
        hits = []
        for lineno, recv_cls, method, unresolved in body_calls(model, func):
            target_cls = None
            if recv_cls is not None:
                target_cls = model.in_serial_only(recv_cls, method)
            elif unresolved and method in unique_serial:
                target_cls = next(c for c, mth in model.serial_only if mth == method)
            if target_cls is not None:
                hits.append((anchor or lineno, target_cls, method, list(chain)))
                continue
            if recv_cls is not None:
                if model.in_shard_safe(recv_cls, method):
                    continue
                callee = defs.get((recv_cls, method))
                if callee is not None and callee.key not in visited:
                    visited.add(callee.key)
                    hits.extend(walk(callee, chain + [f"{recv_cls}::{method}"],
                                     visited, anchor or lineno))
        return hits

    roots = [f for f in model.functions if f.cls in model.shard_context]
    for root in roots:
        visited = {root.key}
        for lineno, tcls, meth, chain in walk(root, [f"{root.cls}::{root.name}"],
                                              visited):
            via = " -> ".join(chain)
            model.add(root.path, lineno, "EA002",
                      f"serial-only {tcls}::{meth}() reachable from "
                      f"shard context via {via}")
            reachable.setdefault((tcls, meth), via)

    if report:
        print("EA002 serial-point reachability proof "
              f"({len(roots)} shard-context root methods):")
        for cls, meth in sorted(model.serial_only):
            label = f"{cls}::{meth}" if cls else meth
            if (cls, meth) in reachable:
                print(f"  REACHABLE   {label}  via {reachable[(cls, meth)]}")
            else:
                print(f"  unreachable {label}")


# ---------------------------------------------------------------------------
# EA003: charge/release flow pairing.
# ---------------------------------------------------------------------------

class Stmt:
    def __init__(self, kind, text, line, then=None, els=None):
        self.kind = kind      # plain | if | loop | block
        self.text = text      # statement or control-header text
        self.line = line
        self.then = then or []
        self.els = els


def parse_stmts(code, body, body_off):
    """Flat-ish statement tree for one function body. Splits only at paren
    depth 0, so for(;;) headers and lambda-literal arguments stay inside one
    statement."""
    stmts = []
    i, n = 0, len(body)
    start = 0
    pdepth = 0
    while i < n:
        c = body[i]
        if c == "(":
            pdepth += 1
        elif c == ")":
            pdepth = max(0, pdepth - 1)
        elif pdepth > 0:
            pass
        elif c == ";":
            seg = body[start:i]
            text = seg.strip()
            if text:
                lead = len(seg) - len(seg.lstrip())
                stmts.append(Stmt("plain", text,
                                  line_of(code, body_off + start + lead)))
            start = i + 1
        elif c == "{":
            seg = body[start:i]
            header = seg.strip()
            close = match_brace(body, i)
            if close < 0:
                break
            inner = parse_stmts(code, body[i + 1:close], body_off + i + 1)
            hline = line_of(code, body_off + start + len(seg) - len(seg.lstrip()))
            if re.match(r"^(else\s+if|if)\b", header):
                stmts.append(Stmt("if", header, hline, then=inner))
            elif re.match(r"^(for|while|do|switch)\b", header):
                stmts.append(Stmt("loop", header, hline, then=inner))
            elif header.startswith("else"):
                if stmts and stmts[-1].kind == "if":
                    stmts[-1].els = inner
                else:
                    stmts.append(Stmt("block", header, hline, then=inner))
            else:
                stmts.append(Stmt("block", header, hline, then=inner))
            i = close
            start = i + 1
        i += 1
    seg = body[start:]
    tail = seg.strip()
    if tail:
        stmts.append(Stmt("plain", tail,
                          line_of(code, body_off + start +
                                  len(seg) - len(seg.lstrip()))))
    return stmts


def stmt_guard(text, handle):
    """'null' / 'nonnull' if the if-header tests the handle, else None."""
    if re.search(r"\b" + handle + r"\s*==\s*nullptr", text) or \
            re.search(r"!\s*" + handle + r"\b", text):
        return "null"
    if re.search(r"\b" + handle + r"\s*!=\s*nullptr", text) or \
            re.search(r"\(\s*" + handle + r"\s*\)", text):
        return "nonnull"
    return None


def stmt_discharges(text, handle, releases):
    """True if the statement releases or transfers the handle."""
    for rel in releases:
        if re.search(r"\b" + rel + r"\s*\([^;]*\b" + handle + r"\b", text):
            return True
    if re.search(r"\breturn\s+(?:std::move\(\s*)?" + handle + r"\b", text):
        return True
    if re.search(r"\bstd::move\(\s*" + handle + r"\s*\)", text):
        return True
    # Stored: assigned into a field/container/deref (escapes the function).
    if re.search(r"[\w\])\]]\s*(?:\[[^\]]*\]\s*)?=\s*" + handle + r"\s*(?:[;,)]|$)",
                 text):
        return True
    # Passed to any call as an argument (ownership handed over).
    if re.search(r"\w\s*\([^;]*[(,]\s*" + handle + r"\s*[,)]", text) or \
            re.search(r"\w\s*\(\s*" + handle + r"\s*[,)]", text):
        return True
    return False


def exits_without(seq, handle, releases):
    """Line number of an exit path that drops the handle, or None.

    seq is the continuation: every statement that may run after the charge.
    """
    if not seq:
        return 0  # fell off the end of the function holding the handle
    s, rest = seq[0], seq[1:]
    if s.kind == "plain":
        if stmt_discharges(s.text, handle, releases):
            return None
        if re.match(r"^return\b", s.text):
            return s.line
        return exits_without(rest, handle, releases)
    if s.kind == "if":
        guard = stmt_guard(s.text, handle)
        if guard == "null":
            # Then-branch runs with no resource; else/fallthrough holds it.
            branch = s.els if s.els is not None else []
            return exits_without(branch + rest, handle, releases)
        if guard == "nonnull":
            # Else/fallthrough is the null case — exempt.
            return exits_without(s.then + rest, handle, releases)
        leak = exits_without(s.then + rest, handle, releases)
        if leak is not None:
            return leak
        return exits_without((s.els or []) + rest, handle, releases)
    if s.kind in ("loop", "block"):
        if s.kind == "loop":
            # Zero-iteration path first; then one pass through the body.
            leak = exits_without(rest, handle, releases)
            if leak is not None and not any(
                    stmt_discharges(t.text, handle, releases)
                    for t in s.then):
                return leak
            return exits_without(s.then + rest, handle, releases)
        return exits_without(s.then + rest, handle, releases)
    return exits_without(rest, handle, releases)


def check_ea003(model):
    charge_re = re.compile(
        r"(?:([A-Za-z_]\w*)\s*=\s*[^;=]*?)?\b(" +
        "|".join(CHARGE_PAIRS) + r")\s*\(\s*([^,();]*)")
    for f in model.functions:
        raw, code = model.files[f.path]
        tree = parse_stmts(code, f.body, f.body_off)

        def flatten(seq, trail):
            for idx, s in enumerate(seq):
                yield (s, seq[idx + 1:], trail)
                if s.kind in ("if", "loop", "block"):
                    yield from flatten(s.then, seq[idx + 1:] + trail)
                    if s.els:
                        yield from flatten(s.els, seq[idx + 1:] + trail)

        for s, rest, trail in flatten(tree, []):
            if s.kind != "plain":
                continue
            for m in charge_re.finditer(s.text):
                assigned, api, first_arg = m.group(1), m.group(2), m.group(3)
                if api == "LockIoBuffer":
                    handle = first_arg.strip()
                    if not re.match(r"^[A-Za-z_]\w*$", handle):
                        continue  # locking a field-held buffer: retained state
                else:
                    if assigned is None:
                        continue  # result unused — the decl site, not a call
                    handle = assigned
                # Skip declarations in headers (pure signatures have no body
                # here by construction) and the kernel wrappers themselves.
                if f.name == api:
                    continue
                releases = CHARGE_PAIRS[api]
                leak = exits_without(rest + trail, handle, releases)
                if stmt_discharges(s.text[m.end():], handle, releases):
                    leak = None
                if leak is not None:
                    where = f"line {leak}" if leak else "function end"
                    model.add(f.path, s.line, "EA003",
                              f"{api}() handle `{handle}` not released "
                              f"({'/'.join(releases)}) or transferred on the "
                              f"exit path reaching {where}")


# ---------------------------------------------------------------------------
# EA004: atomic memory-order contract.
# ---------------------------------------------------------------------------

ATOMIC_DECL_RE = re.compile(r"\bstd::atomic<[^;>]*>\s*([A-Za-z_]\w*)")
ATOMIC_OP_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\.\s*"
    r"(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_weak|compare_exchange_strong)\s*\(")
BAD_ORDER_RE = re.compile(
    r"\bstd::memory_order_(seq_cst|acquire|release|acq_rel|consume)\b")


def check_ea004(model):
    # Atomics are usually declared in a header and used in the matching .cc,
    # so membership is checked against the union across all indexed files.
    atomic_names = set()
    for path, (raw, code) in model.files.items():
        for m in ATOMIC_DECL_RE.finditer(code):
            atomic_names.add(m.group(1))
    for path, (raw, code) in sorted(model.files.items()):
        if path in ATOMIC_ALLOWLIST:
            continue
        for m in BAD_ORDER_RE.finditer(code):
            model.add(path, line_of(code, m.start()), "EA004",
                      f"std::memory_order_{m.group(1)} outside the queue "
                      "internals — meters are relaxed-commutative only")
        for m in ATOMIC_OP_RE.finditer(code):
            var, op = m.group(1), m.group(2)
            if var not in atomic_names:
                continue
            close = match_brace(code, m.end() - 1, "(", ")")
            args = code[m.end():close] if close > 0 else ""
            if "memory_order_relaxed" in args:
                continue
            if BAD_ORDER_RE.search(args):
                continue  # already flagged above
            model.add(path, line_of(code, m.start()), "EA004",
                      f"{var}.{op}() defaults to seq_cst — spell out "
                      "std::memory_order_relaxed (commutative-meter contract)")
        for name in atomic_names:
            for m in re.finditer(r"(\+\+|--)\s*" + name + r"\b|\b" + name +
                                 r"\s*(\+\+|--|\+=|-=|\|=|&=)", code):
                model.add(path, line_of(code, m.start()), "EA004",
                          f"operator form on atomic `{name}` is seq_cst — "
                          "use fetch_add/fetch_sub with "
                          "std::memory_order_relaxed")


# ---------------------------------------------------------------------------
# EA005: determinism.
# ---------------------------------------------------------------------------

CONTAINER_DECL_RE = re.compile(
    r"\bstd::(map|set|unordered_map|unordered_set|multimap|multiset)\s*<"
    r"([^;{}()=]*)>\s*([A-Za-z_]\w*)")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^:;()]*:\s*([A-Za-z_]\w*(?:\(\))?)\s*\)")
SHARD_LOOP_RE = re.compile(r"\bfor\s*\([^)]*shard[^)]*\)", re.I)
FLOAT_ACCUM_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\+=")


def container_key_is_pointer(args):
    key = split_top_level(args)[0].strip()
    return key.endswith("*")


def check_ea005(model):
    containers = {}  # (path, name) -> (kind, ptr_key)
    for path, (raw, code) in model.files.items():
        for m in CONTAINER_DECL_RE.finditer(code):
            kind, args, name = m.groups()
            containers[(path, name)] = (kind, container_key_is_pointer(args))

    def lookup(path, func, name):
        hit = containers.get((path, name))
        if hit is not None:
            return hit
        # Member declared in a header: search every indexed file.
        for (p, n), v in containers.items():
            if n == name:
                return v
        return None

    for f in model.functions:
        raw, code = model.files[f.path]
        for m in RANGE_FOR_RE.finditer(f.body):
            base = m.group(1).replace("()", "")
            info = lookup(f.path, f, base)
            if info is None:
                continue
            kind, ptr_key = info
            lineno = line_of(code, f.body_off + m.start())
            if kind.startswith("unordered"):
                model.add(f.path, lineno, "EA005",
                          f"iteration over std::{kind} `{base}` — order is "
                          "implementation-defined")
            elif ptr_key:
                model.add(f.path, lineno, "EA005",
                          f"iteration over pointer-keyed std::{kind} `{base}` "
                          "— order follows the allocator, not the program; "
                          "key by owner id instead")
        # The while (!m.empty()) Kill(m.begin()->first) teardown pattern.
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*begin\s*\(\)", f.body):
            info = lookup(f.path, f, m.group(1))
            if info is not None and info[1]:
                model.add(f.path, line_of(code, f.body_off + m.start()),
                          "EA005",
                          f"begin() on pointer-keyed std::{info[0]} "
                          f"`{m.group(1)}` selects by address order")
        for lm in SHARD_LOOP_RE.finditer(f.body):
            close = lm.end() - 1
            brace = f.body.find("{", close)
            if brace < 0:
                continue
            bclose = match_brace(f.body, brace)
            if bclose < 0:
                continue
            loop_body = f.body[brace:bclose]
            for am in FLOAT_ACCUM_RE.finditer(loop_body):
                fact = resolve_var(model, f, am.group(1), brace)
                if fact is not None and fact[0] in ("double", "float"):
                    model.add(f.path,
                              line_of(code, f.body_off + brace + am.start()),
                              "EA005",
                              f"float accumulation into `{am.group(1)}` "
                              "inside a per-shard loop — the sum order (and "
                              "rounding) varies with the shard count; "
                              "accumulate integers or fixed order")


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def load_compile_commands(p):
    path = p
    if os.path.isdir(p):
        path = os.path.join(p, "compile_commands.json")
    if not os.path.isfile(path):
        return None, path
    with open(path, encoding="utf-8") as fh:
        return json.load(fh), path


def collect_files(root, compile_commands, explicit):
    """relpath -> absolute path for every file to index."""
    files = {}
    if explicit:
        for f in explicit:
            files[os.path.relpath(f, root)] = os.path.abspath(f)
        return files
    tus = set()
    if compile_commands:
        for entry in compile_commands:
            fn = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
            rel = os.path.relpath(fn, root)
            if rel.startswith("src" + os.sep):
                tus.add(rel)
    for pattern in ("src/**/*.h", "src/**/*.cc"):
        for f in glob.glob(os.path.join(root, pattern), recursive=True):
            tus.add(os.path.relpath(f, root))
    for rel in sorted(tus):
        files[rel] = os.path.join(root, rel)
    return files


def make_engine(requested, compile_commands):
    """(engine, notice). Tries libclang for 'auto'/'libclang'."""
    if requested in ("auto", "libclang"):
        try:
            return ClangEngine(compile_commands or []), None
        except Exception as e:
            notice = (f"libclang engine unavailable ({e.__class__.__name__}: {e}); "
                      "using the pure-Python fallback parser")
            if requested == "libclang":
                return None, notice
            return TextEngine(), notice
    return TextEngine(), None


def analyze(root, files, engine, report_serial=False):
    model = Model()
    for rel, absf in sorted(files.items()):
        try:
            with open(absf, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError as e:
            sys.stderr.write(f"escort-analyzer: cannot read {rel}: {e}\n")
            continue
        model.files[rel] = (raw, strip_comments_and_strings(raw))
    engine.build(model)
    check_ea001(model)
    check_ea002(model, report=report_serial)
    check_ea003(model)
    check_ea004(model)
    check_ea005(model)
    # Dedup (several detectors can anchor the same line) then suppress.
    seen = set()
    unique = []
    for f in model.findings:
        k = (f.path, f.line, f.rule, f.message)
        if k in seen:
            continue
        seen.add(k)
        if f.rule in model.nolint.get((f.path, f.line), set()):
            f.suppressed = True
        unique.append(f)
    model.findings = unique
    return model


# ---------------------------------------------------------------------------
# Self-test: the corpus files carry `// EXPECT: EA00x` markers on the exact
# lines the analyzer must flag; everything else must stay silent.
# ---------------------------------------------------------------------------

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*((?:EA\d{3}[ \t]*)+)")


def run_self_test(corpus_dir, engine):
    files = {}
    for f in sorted(glob.glob(os.path.join(corpus_dir, "*.cc"))):
        files[os.path.relpath(f, corpus_dir)] = f
    if not files:
        print(f"escort-analyzer: self-test: no corpus files in {corpus_dir}")
        return 2
    expected = set()
    for rel, absf in files.items():
        with open(absf, encoding="utf-8") as fh:
            for idx, line in enumerate(fh):
                m = EXPECT_RE.search(line)
                if m is not None:
                    for rule in m.group(1).split():
                        expected.add((rel, idx + 1, rule))
    model = analyze(corpus_dir, files, engine)
    got = {(f.path, f.line, f.rule) for f in model.findings
           if not f.suppressed and f.rule != "EA000"}
    missing = expected - got
    surprise = got - expected
    ok = not missing and not surprise
    for rel, line, rule in sorted(missing):
        print(f"SELF-TEST MISSING  {rel}:{line}: expected {rule}, not reported")
    for rel, line, rule in sorted(surprise):
        msg = next((f.message for f in model.findings
                    if (f.path, f.line, f.rule) == (rel, line, rule)), "")
        print(f"SELF-TEST SPURIOUS {rel}:{line}: {rule}: {msg}")
    n = len(expected)
    print(f"escort-analyzer self-test ({engine.name} engine): "
          f"{'PASS' if ok else 'FAIL'} "
          f"({n} expected findings, {len(got)} produced)")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-p", "--build", default=None,
                        help="build dir (or file) holding compile_commands.json")
    parser.add_argument("--root", default=None,
                        help="repository root (default: derived from this file)")
    parser.add_argument("--engine", choices=("auto", "libclang", "fallback"),
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="run the corpus expectations and exit")
    parser.add_argument("--corpus", default=None,
                        help="corpus dir for --self-test "
                             "(default: tools/analyze/corpus)")
    parser.add_argument("--report-serial", action="store_true",
                        help="print the EA002 reachability proof")
    parser.add_argument("-q", "--quiet", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (corpus/test use)")
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))

    compile_commands = None
    if args.build:
        compile_commands, cc_path = load_compile_commands(args.build)
        if compile_commands is None:
            sys.stderr.write(
                f"escort-analyzer: no compile_commands.json at {cc_path} "
                "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON); "
                "falling back to a source glob\n")

    engine, notice = make_engine(args.engine, compile_commands)
    if notice:
        print(f"escort-analyzer: NOTICE: {notice}")
    if engine is None:
        return 2

    if args.self_test:
        corpus = args.corpus or os.path.join(here, "corpus")
        return run_self_test(corpus, engine)

    files = collect_files(root, compile_commands, args.files)
    model = analyze(root, files, engine, report_serial=args.report_serial)

    active = [f for f in model.findings if not f.suppressed]
    suppressed = [f for f in model.findings if f.suppressed]
    for f in sorted(active, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
    if not args.quiet:
        print(f"escort-analyzer: engine={engine.name} files={len(files)} "
              f"findings={len(active)} suppressed={len(suppressed)}")
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
