#!/usr/bin/env python3
"""escort_lint: project-specific invariant checks for the Escort tree.

Generic linters cannot express the invariants this reproduction depends on
(resource-conservation accounting, bit-for-bit deterministic simulation),
so this tool checks them statically:

  EL001  include guard must match the file path (SRC_KERNEL_OWNER_H_ style)
         and the closing #endif must carry the guard comment.
  EL002  header hygiene: no `using namespace` at file scope in headers, no
         `#pragma once` (the tree uses path-derived guards).
  EL003  simulation determinism: no ambient randomness or wall-clock time
         in src/ — rand(), srand(), std::random_device, std::mt19937,
         time(), clock(), gettimeofday(), chrono clocks, including clock
         access laundered through a type alias (`using Clock =
         std::chrono::steady_clock;` in one file, `Clock::now()` in
         another — aliases are resolved tree-wide). All randomness flows
         through src/sim/rng.h, all time through src/sim/event_queue.h.
  EL004  no std::unordered_map / std::unordered_set in src/: iteration
         order is implementation-defined and anything feeding the event
         queue must be deterministic.
  EL005  no naked new/delete outside the kernel allocators: allocation
         goes through std::unique_ptr/std::make_unique (a `new` directly
         wrapped in a smart-pointer constructor is fine).
  EL006  charge/release bookkeeping is kernel-only: code outside
         src/kernel must not mutate Owner::usage() counters or the owner
         tracking lists directly.
  EL007  charge/release pairing: every ResourceUsage counter charged
         (`usage().x +=`) somewhere in src/kernel must also be released
         (`usage().x -=` or zeroed) somewhere in src/kernel, and vice
         versa. `cycles` is exempt (monotonic; retired at destruction).
  EL008  reclamation/audit completeness: every tracking list declared in
         class Owner must be reclaimed in Kernel::DestroyOwner, and every
         tracking list and ResourceUsage counter (except cycles) must be
         drain-checked in Auditor::CheckOwnerDrained. A new resource class
         cannot silently skip reclamation or auditing.
  EL009  thread hygiene / cell isolation: no mutable static state in src/
         (file-scope or function-local). The parallel sweep runner runs
         one simulation cell per worker thread; determinism there means
         "no cross-cell shared mutable state", and a mutable static is
         exactly that. `static const` / `static constexpr` / constexpr
         are fine (immutable singletons such as CostModel::Calibrated()).
  EL010  threading primitives are confined to src/sim/: std::thread /
         std::jthread / std::async / thread_local / #include <thread>
         appear nowhere in src/ except src/sim/parallel.cc (the pool)
         and src/sim/event_queue.cc (the sharded queue's per-worker
         execution context). Everything else stays single-threaded code
         that the pool may replicate.
         Threads themselves are NOT banned — shared mutable state is;
         EL009+EL010 together replace the old "no threads" reading of
         the determinism invariant.
  EL011  diagnostics funnel through Tracer::Diag: no printf/fprintf/
         fputs/puts, no std::cout/cerr/clog, and no bare stdout/stderr
         anywhere in src/ except src/sim/trace.cc (the funnel itself)
         and src/workload/sweep.cc (the bench CLI layer, whose tables
         ARE its output). Simulation code writing to the console
         directly bypasses the single choke point that keeps output
         deterministic and redirectable; snprintf (formatting into a
         buffer) is fine.
  EL012  no std::function constructed inside a loop body in src/sim/:
         every std::function construction type-erases through a heap
         allocation, and the simulator's windowed scheduler runs its
         loops millions of times per cell. Hoist the callable out of
         the loop (construct it once and reuse it), or use a plain
         lambda / function pointer that never type-erases.
  EL013  slab-slot hygiene: a type marked ESCORT_SLAB_SLOT (stored by
         value in a generation-tagged Slab<T>, src/elib/slab.h) must not
         own shared_ptr members. Slab storage is recycled across
         incarnations under a generation tag; a shared_ptr member keeps
         its referent alive past Release, resurrecting exactly the
         refcount webs and stale-owner aliasing the slab replaces.
  EL014  detection-accumulator determinism: a type marked
         ESCORT_DETECT_ACCUMULATOR (src/server/detect.h) holds online
         detection state whose decision sequence must be bit-identical
         at any --jobs/--shards. Unordered containers iterate in
         hash-seed order and float/double members accumulate in
         arrival order, so both leak scheduling into the decisions:
         marked types must hold only integer state, and the detection
         module itself (src/server/detect.*) must use ordered
         containers throughout. Derive float views (mean, sigma) at
         compare time from the integer moments instead.
  EL015  metric registration goes through the ESCORT_METRIC_* macros
         (src/sim/metrics.h): no direct MetricsRegistry::Register*
         calls in src/ outside the metrics module itself. The macros
         keep every instrumentation site greppable under one prefix
         and preserve the null-registry (metrics disabled) idiom the
         MetricAdd/MetricSet/MetricObserve helpers rely on. Tests and
         benches exercise the registry directly and are exempt.

Usage:
  escort_lint.py [--root DIR] [--self-test] [-q]

Exit status: 0 clean (or self-test passed), 1 violations found, 2 error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

# Directories scanned relative to the repository root.
SCAN_DIRS = ("src", "tests", "bench", "examples")
CXX_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")

# EL005: files allowed to use naked new/delete (the kernel's own
# allocators, which hand out raw objects by design).
NAKED_NEW_ALLOWLIST = ("src/kernel/iobuffer.cc",)

# EL008: alternate reclamation markers for lists not drained by name in
# DestroyOwner (the IOBuffer locks are released through the manager).
RECLAIM_MARKERS = {"iobuffer_locks": ("iobuffer_locks()", "ReleaseAllFor")}

# Counters that are charged but intentionally never released.
PAIRING_EXEMPT_COUNTERS = {"cycles"}

# EL010: the only files in src/ allowed to touch threading primitives —
# the sweep thread pool (std::thread behind a pimpl) and the sharded
# event queue (a thread_local execution context per worker).
THREADING_ALLOWLIST = ("src/sim/parallel.cc", "src/sim/event_queue.cc")

# EL011: the only files in src/ allowed to write to the console — the
# diagnostics funnel itself and the bench CLI layer (its tables are the
# product, not diagnostics).
DIAG_ALLOWLIST = ("src/sim/trace.cc", "src/workload/sweep.cc")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # A quote directly after an identifier/number character is a
                # C++14 digit separator (50'000), not a char literal.
                prev = out[-1] if out else ""
                if prev.isalnum() or prev == "_":
                    out.append(" ")
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else "\n")
        i += 1
    return "".join(out)


def guard_for(relpath: str) -> str:
    return re.sub(r"[^A-Za-z0-9]", "_", relpath).upper() + "_"


def check_include_guard(relpath: str, raw: str, violations: list) -> None:
    want = guard_for(relpath)
    ifndef = re.search(r"^#ifndef\s+(\S+)\s*$", raw, re.M)
    if ifndef is None:
        violations.append(Violation(relpath, 1, "EL001", f"missing include guard (expected {want})"))
        return
    line = raw[: ifndef.start()].count("\n") + 1
    if ifndef.group(1) != want:
        violations.append(
            Violation(relpath, line, "EL001",
                      f"include guard {ifndef.group(1)} does not match path (expected {want})"))
        return
    if re.search(rf"^#define\s+{re.escape(want)}\s*$", raw, re.M) is None:
        violations.append(Violation(relpath, line, "EL001", f"#ifndef {want} without matching #define"))
    endif = re.compile(rf"^#endif\s*//\s*{re.escape(want)}\s*$", re.M)
    if endif.search(raw) is None:
        last = raw.count("\n") + 1
        violations.append(
            Violation(relpath, last, "EL001", f"closing #endif must carry the guard comment: '#endif  // {want}'"))


def check_header_hygiene(relpath: str, code: str, violations: list) -> None:
    for m in re.finditer(r"^\s*#pragma\s+once", code, re.M):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL002",
                                    "#pragma once: this tree uses path-derived include guards"))
    for m in re.finditer(r"^\s*using\s+namespace\s+[\w:]+\s*;", code, re.M):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL002",
                                    "file-scope 'using namespace' in a header leaks into every includer"))


NONDET_PATTERNS = (
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("), "rand()/srand(): seed an escort::Rng instead (src/sim/rng.h)"),
    (re.compile(r"\brandom_device\b"), "std::random_device is nondeterministic; use escort::Rng (src/sim/rng.h)"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937: use escort::Rng so runs stay reproducible"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "wall-clock time(): simulated time comes from EventQueue::now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday(): simulated time comes from EventQueue::now()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock(): simulated time comes from EventQueue::now()"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "chrono clocks are wall-clock; simulated time comes from EventQueue::now()"),
)

# src/sim/rng.* implements the deterministic generator itself;
# src/sim/parallel.cc additionally owns MonotonicMillis(), the *host*
# wall-clock used only for the bench perf trajectory (never for
# simulated time — the JSON perf block is determinism-exempt).
NONDET_ALLOWLIST = ("src/sim/rng.h", "src/sim/rng.cc", "src/sim/parallel.cc")

CLOCK_ALIAS_USING_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*[^;]*\b(?:system_clock|steady_clock|high_resolution_clock)\b")
CLOCK_ALIAS_TYPEDEF_RE = re.compile(
    r"\btypedef\s+[^;]*\b(?:system_clock|steady_clock|high_resolution_clock)\b[^;]*?([A-Za-z_]\w*)\s*;")


def check_clock_aliases(files: dict, violations: list) -> None:
    """EL003 second pass: wall-clock access laundered through a type alias.

    The alias declaration itself carries a clock token and is flagged by
    NONDET_PATTERNS where it stands, but a use site in another file
    (`Clock::now()`) has no token of its own — so aliases are collected
    tree-wide first and their qualified uses flagged per file.
    """
    aliases = set()
    for _relpath, code in files.items():
        for m in CLOCK_ALIAS_USING_RE.finditer(code):
            aliases.add(m.group(1))
        for m in CLOCK_ALIAS_TYPEDEF_RE.finditer(code):
            aliases.add(m.group(1))
    if not aliases:
        return
    use_re = re.compile(r"\b(" + "|".join(sorted(aliases)) + r")\s*::\s*\w+")
    for relpath, code in files.items():
        if not relpath.startswith("src/") or relpath in NONDET_ALLOWLIST:
            continue
        for m in use_re.finditer(code):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL003",
                                        f"'{m.group(1)}' aliases a wall-clock chrono clock; "
                                        "simulated time comes from EventQueue::now()"))


def check_determinism(relpath: str, code: str, violations: list) -> None:
    if not relpath.startswith("src/") or relpath in NONDET_ALLOWLIST:
        return
    for pattern, why in NONDET_PATTERNS:
        for m in pattern.finditer(code):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL003", why))
    for m in re.finditer(r"\bunordered_(?:map|set|multimap|multiset)\b", code):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL004",
                                    "unordered containers have implementation-defined iteration order; "
                                    "use std::map/std::set (the event queue must stay deterministic)"))


SMART_WRAP = re.compile(r"(?:unique_ptr|shared_ptr)\s*<[^;]*>?\s*\($")


def check_allocation(relpath: str, code: str, violations: list) -> None:
    if relpath.replace(os.sep, "/") in NAKED_NEW_ALLOWLIST:
        return
    lines = code.split("\n")
    for m in re.finditer(r"\bnew\b(?!\s*\()", code):
        lineno = code[: m.start()].count("\n") + 1
        # A `new` directly inside a smart-pointer constructor is fine; the
        # wrap may start on the same line or the line above (clang-format
        # wraps long constructor calls).
        before = code[: m.start()]
        window = "".join(lines[max(0, lineno - 2): lineno])
        if re.search(r"(?:unique_ptr|shared_ptr)\s*<[^\n]*\(\s*new\b", window) or \
           re.search(r"(?:unique_ptr|shared_ptr)\s*<[^\n]*>\s*\(\s*$", "".join(before.split("\n")[-2:])):
            continue
        violations.append(Violation(relpath, lineno, "EL005",
                                    "naked `new` outside the kernel allocators; use std::make_unique "
                                    "or wrap the result in a smart pointer on the same statement"))
    for m in re.finditer(r"\bdelete(?:\[\])?\s+\w", code):
        lineno = code[: m.start()].count("\n") + 1
        violations.append(Violation(relpath, lineno, "EL005",
                                    "naked `delete` outside the kernel allocators; owning smart "
                                    "pointers release automatically"))


TRACK_LISTS_MUTATION = re.compile(
    r"\b(?:threads|iobuffer_locks|events|semaphores|pages)\(\)\s*\.\s*"
    r"(?:push_front|push_back|erase|pop_front|pop_back|clear|insert|emplace\w*)\s*\(")
USAGE_MUTATION = re.compile(r"\busage\(\)\s*\.\s*(\w+)\s*(\+=|-=|=)")


def check_kernel_only_bookkeeping(relpath: str, code: str, violations: list) -> None:
    if not relpath.startswith("src/") or relpath.startswith("src/kernel/"):
        return
    for m in USAGE_MUTATION.finditer(code):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL006",
                                    f"direct mutation of Owner::usage().{m.group(1)} outside src/kernel; "
                                    "charge through the Kernel API so the auditor can pair it"))
    for m in TRACK_LISTS_MUTATION.finditer(code):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL006",
                                    "direct mutation of an Owner tracking list outside src/kernel; "
                                    "objects insert/remove themselves via the kernel only"))


STATIC_KEYWORD = re.compile(r"\bstatic\b")
THREAD_PRIMITIVE = re.compile(r"\bstd\s*::\s*(?:jthread|thread|async)\b")
THREAD_LOCAL = re.compile(r"\bthread_local\b")
THREAD_INCLUDE = re.compile(r"^\s*#\s*include\s*<thread>", re.M)


def check_thread_hygiene(relpath: str, code: str, violations: list) -> None:
    """EL009 (no mutable static state) + EL010 (threading confined to the pool).

    Simulation cells run one-per-worker-thread in the sweep runner; the
    isolation contract (DESIGN.md) is that a cell touches only its own
    world plus immutable singletons. Both rules apply to src/ only —
    tests and benches may use threads and statics freely.
    """
    if not relpath.startswith("src/"):
        return

    # EL009 — a `static` that is not const/constexpr and not a function.
    for m in STATIC_KEYWORD.finditer(code):
        # `constexpr static int k = ...` — qualifier may precede the keyword.
        line_start = code.rfind("\n", 0, m.start()) + 1
        prefix = code[line_start: m.start()]
        if "constexpr" in prefix or re.search(r"\bconst\b", prefix):
            continue
        # Statement snippet: up to the first `;` or `{`, whichever is nearer.
        stop = len(code)
        for terminator in (";", "{"):
            j = code.find(terminator, m.start())
            if 0 <= j < stop:
                stop = j
        snippet = code[m.start(): min(stop, m.start() + 400)]
        if re.match(r"static\s+(?:inline\s+)?(?:const\b|constexpr\b)", snippet):
            continue
        # A `(` before any `=` means a function declaration/definition
        # (default arguments put their `=` inside the parens), not data.
        paren = snippet.find("(")
        eq = snippet.find("=")
        if paren != -1 and (eq == -1 or paren < eq):
            continue
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL009",
                                    "mutable static state in simulation code: sweep cells run "
                                    "concurrently and must share nothing mutable — make it "
                                    "`static const`/`constexpr`, or move it into per-cell state"))

    # EL010 — threading primitives outside the pool implementation.
    if relpath in THREADING_ALLOWLIST:
        return
    for pattern, why in (
        (THREAD_PRIMITIVE, "std::thread/jthread/async outside src/sim/; "
                           "parallelism in src/ goes through the sweep ThreadPool"),
        (THREAD_LOCAL, "thread_local in simulation code hides per-thread mutable state "
                       "from the cell-isolation contract; pass state explicitly"),
        (THREAD_INCLUDE, "#include <thread> outside src/sim/; the pool keeps "
                         "threading primitives behind its pimpl"),
    ):
        for m in pattern.finditer(code):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL010", why))


DIAG_PATTERNS = (
    # \b keeps snprintf/sprintf (buffer formatting) out of scope.
    (re.compile(r"\b(?:printf|fprintf|vfprintf|fputs|puts|fputc|putchar|perror)\s*\("),
     "console I/O call in simulation code; route diagnostics through Tracer::Diag "
     "(src/sim/trace.h) so output stays deterministic and redirectable"),
    (re.compile(r"\bstd\s*::\s*(?:cout|cerr|clog)\b"),
     "iostream console object in simulation code; route diagnostics through "
     "Tracer::Diag (src/sim/trace.h)"),
    (re.compile(r"\bstd(?:out|err)\b"),
     "bare stdout/stderr in simulation code; route diagnostics through "
     "Tracer::Diag (src/sim/trace.h)"),
)


def check_diagnostics(relpath: str, code: str, violations: list) -> None:
    """EL011 — console output is confined to the Tracer::Diag funnel."""
    if not relpath.startswith("src/") or relpath in DIAG_ALLOWLIST:
        return
    for pattern, why in DIAG_PATTERNS:
        for m in pattern.finditer(code):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1,
                                        "EL011", why))


LOOP_HEADER = re.compile(r"\b(?:for|while)\s*\(")
STD_FUNCTION = re.compile(r"\bstd\s*::\s*function\s*<")


def loop_body_spans(code: str) -> list:
    """Returns [(start, end)] character spans of every brace-delimited
    for/while loop body (nested loops yield nested spans)."""
    spans = []
    for m in LOOP_HEADER.finditer(code):
        # Match the header's parens, then the body braces (a brace-less
        # single-statement body cannot declare a std::function anyway).
        depth = 0
        i = code.find("(", m.start())
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(code) and code[j] in " \t\n\r":
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        depth = 0
        for k in range(j, len(code)):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((j, k + 1))
                    break
    return spans


def check_hot_loop_allocations(relpath: str, code: str, violations: list) -> None:
    """EL012 — no std::function constructed inside src/sim/ loop bodies.

    The windowed scheduler runs its loops millions of times per cell;
    a std::function built per iteration means a type-erasure heap
    allocation per iteration. Declarations-as-members or constructions
    outside loops are fine — only in-loop construction is flagged.
    """
    if not relpath.startswith("src/sim/"):
        return
    spans = loop_body_spans(code)
    if not spans:
        return
    for m in STD_FUNCTION.finditer(code):
        if any(start < m.start() < end for start, end in spans):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL012",
                                        "std::function constructed inside a loop body in the "
                                        "simulator hot path: each construction type-erases "
                                        "through a heap allocation — hoist it out of the loop "
                                        "or use a non-erasing callable"))


SLAB_SLOT_MARKER = re.compile(r"\bESCORT_SLAB_SLOT\b")
SHARED_PTR_MEMBER = re.compile(r"\b(?:std\s*::\s*)?shared_ptr\s*<")


def check_slab_slot_members(relpath: str, raw: str, code: str, violations: list) -> None:
    """EL013 — no shared_ptr members inside ESCORT_SLAB_SLOT types.

    The marker lives in the doc comment above the class, so it is located
    in the raw text; the member scan runs over the stripped text (same
    offsets — stripping is length-preserving) so commented-out members and
    string literals do not fire.
    """
    for marker in SLAB_SLOT_MARKER.finditer(raw):
        # The marked type is the next class/struct definition after the
        # marker; its body is the next brace-matched block.
        decl = re.compile(r"\b(?:class|struct)\s+\w+").search(code, marker.end())
        if decl is None:
            continue
        i = code.find("{", decl.end())
        if i < 0:
            continue
        depth = 0
        end = len(code)
        for j in range(i, len(code)):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    end = j + 1
                    break
        for m in SHARED_PTR_MEMBER.finditer(code, i, end):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL013",
                                        "shared_ptr member in an ESCORT_SLAB_SLOT type: slab slots "
                                        "are recycled under a generation tag, and shared ownership "
                                        "keeps the referent alive past Release — store a ConnHandle "
                                        "(or a plain value) and revalidate at use"))


DETECT_ACC_MARKER = re.compile(r"\bESCORT_DETECT_ACCUMULATOR\b")
UNORDERED_CONTAINER = re.compile(r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
FLOAT_MEMBER = re.compile(r"^\s*(?:float|double)\s+\w+", re.MULTILINE)


def check_detect_accumulators(relpath: str, raw: str, code: str, violations: list) -> None:
    """EL014 — detection accumulators use only deterministic state.

    Two scopes: (a) any type marked ESCORT_DETECT_ACCUMULATOR must hold
    only integer members (no float/double, no unordered containers);
    (b) the detection module files themselves must not use unordered
    containers anywhere — the accumulator maps are iterated to produce
    the decision digest, and hash-seed iteration order would leak the
    host into the decisions.
    """
    if relpath.startswith("src/server/detect."):
        for m in UNORDERED_CONTAINER.finditer(code):
            violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL014",
                                        "unordered container in the detection module: accumulator "
                                        "iteration feeds the decision digest, and hash-seed order "
                                        "differs across hosts — use std::map/std::set"))
    for marker in DETECT_ACC_MARKER.finditer(raw):
        decl = re.compile(r"\b(?:class|struct)\s+\w+").search(code, marker.end())
        if decl is None:
            continue
        i = code.find("{", decl.end())
        if i < 0:
            continue
        depth = 0
        end = len(code)
        for j in range(i, len(code)):
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
                if depth == 0:
                    end = j + 1
                    break
        body = code[i:end]
        for m in FLOAT_MEMBER.finditer(body):
            violations.append(Violation(relpath, code[: i + m.start()].count("\n") + 1, "EL014",
                                        "float/double member in an ESCORT_DETECT_ACCUMULATOR type: "
                                        "float accumulation order leaks scheduling into detection "
                                        "decisions — keep integer moments (fixed-point / sum + "
                                        "sum-of-squares) and derive float views at compare time"))
        for m in UNORDERED_CONTAINER.finditer(body):
            violations.append(Violation(relpath, code[: i + m.start()].count("\n") + 1, "EL014",
                                        "unordered container in an ESCORT_DETECT_ACCUMULATOR type: "
                                        "hash-seed iteration order differs across hosts — use "
                                        "std::map/std::set"))


METRIC_REGISTER = re.compile(
    r"\bRegister(?:Counter|Gauge|Histogram|ShardedSeries)\s*\(")
# The metrics module declares/defines Register* and the macros that wrap
# them; everything else in src/ must call through the macros.
METRICS_ALLOWLIST = ("src/sim/metrics.h", "src/sim/metrics.cc")


def check_metric_registration(relpath: str, code: str, violations: list) -> None:
    """EL015 — metric registration goes through the ESCORT_METRIC_* macros.

    A direct Register* call site is invisible to a grep for
    ESCORT_METRIC_ and tends to skip the null-registry guard (metrics
    are optional; raw pointers are null when collection is off). Macro
    call sites contain no Register* token of their own, so the scan is a
    plain token match over stripped text.
    """
    if not relpath.startswith("src/") or relpath in METRICS_ALLOWLIST:
        return
    for m in METRIC_REGISTER.finditer(code):
        violations.append(Violation(relpath, code[: m.start()].count("\n") + 1, "EL015",
                                    "direct MetricsRegistry::Register* call; register through "
                                    "the ESCORT_METRIC_* macros (src/sim/metrics.h) so every "
                                    "instrumentation site is greppable and null-registry safe"))


def extract_function_body(code: str, signature_re: str) -> str:
    """Returns the brace-matched body of the first function whose signature
    matches `signature_re`, or '' if not found."""
    m = re.search(signature_re, code)
    if m is None:
        return ""
    i = code.find("{", m.end())
    if i < 0:
        return ""
    depth = 0
    for j in range(i, len(code)):
        if code[j] == "{":
            depth += 1
        elif code[j] == "}":
            depth -= 1
            if depth == 0:
                return code[i: j + 1]
    return ""


def check_pairing_and_completeness(root: str, files: dict, violations: list) -> None:
    """EL007 (charge/release pairing) + EL008 (reclamation/audit coverage).

    `files` maps relpath -> stripped source text for the scanned tree.
    """
    owner_h = files.get("src/kernel/owner.h", "")
    kernel_cc = files.get("src/kernel/kernel.cc", "")
    audit_cc = files.get("src/kernel/audit.cc", "")
    if not owner_h:
        return  # not the Escort tree (e.g. a self-test fixture without it)

    # Discover the Owner tracking lists and ResourceUsage counters.
    lists = [m.group(1).rstrip("_") for m in
             re.finditer(r"std::list<[^>]+>\s+(\w+_)\s*;", owner_h)]
    usage_body = extract_function_body(owner_h, r"struct\s+ResourceUsage")
    counters = [m.group(1) for m in
                re.finditer(r"(?:uint64_t|Cycles)\s+(\w+)\s*=", usage_body)]

    # EL007: each counter must be both charged and released in src/kernel.
    kernel_sources = {p: t for p, t in files.items() if p.startswith("src/kernel/")}
    charged, released = {}, {}
    for path, text in kernel_sources.items():
        for m in USAGE_MUTATION.finditer(text):
            counter, op = m.group(1), m.group(2)
            line = text[: m.start()].count("\n") + 1
            if op == "+=":
                charged.setdefault(counter, (path, line))
            elif op == "-=" or (op == "=" and re.match(r"=\s*0", text[m.end(2) - 1:])):
                released.setdefault(counter, (path, line))
    for counter in sorted(set(charged) | set(released)):
        if counter in PAIRING_EXEMPT_COUNTERS:
            continue
        if counter in charged and counter not in released:
            path, line = charged[counter]
            violations.append(Violation(path, line, "EL007",
                                        f"usage().{counter} is charged but never released anywhere in "
                                        "src/kernel (leaked charge)"))
        if counter in released and counter not in charged:
            path, line = released[counter]
            violations.append(Violation(path, line, "EL007",
                                        f"usage().{counter} is released but never charged anywhere in "
                                        "src/kernel (double release / dead counter)"))

    # EL008a: every tracking list must be reclaimed in Kernel::DestroyOwner.
    destroy_body = extract_function_body(kernel_cc, r"Cycles\s+Kernel::DestroyOwner\s*\(")
    if destroy_body:
        for name in lists:
            markers = RECLAIM_MARKERS.get(name, (f"{name}()",))
            if not any(marker in destroy_body for marker in markers):
                violations.append(Violation("src/kernel/kernel.cc", 1, "EL008",
                                            f"Owner tracking list '{name}' is not reclaimed in "
                                            "Kernel::DestroyOwner — a destroyed owner would leak it"))
    # EL008b: every list and counter must be drain-checked by the auditor.
    drain_body = extract_function_body(audit_cc, r"void\s+Auditor::CheckOwnerDrained\s*\(")
    if drain_body:
        for counter in counters:
            if counter in PAIRING_EXEMPT_COUNTERS:
                continue
            if not re.search(rf"\b(?:drained|empty)\(\s*{counter}|u\.{counter}\b", drain_body):
                violations.append(Violation("src/kernel/audit.cc", 1, "EL008",
                                            f"ResourceUsage::{counter} is not drain-checked in "
                                            "Auditor::CheckOwnerDrained"))
        for name in lists:
            if f'"{name}"' not in drain_body and f".{name}()" not in drain_body:
                violations.append(Violation("src/kernel/audit.cc", 1, "EL008",
                                            f"Owner tracking list '{name}' is not drain-checked in "
                                            "Auditor::CheckOwnerDrained"))


def lint_tree(root: str) -> list:
    violations: list = []
    files: dict = {}
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _dirnames, filenames in os.walk(top):
            for fname in sorted(filenames):
                if not fname.endswith(CXX_EXTS):
                    continue
                path = os.path.join(dirpath, fname)
                relpath = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, encoding="utf-8", errors="replace") as f:
                    raw = f.read()
                code = strip_comments_and_strings(raw)
                files[relpath] = code
                if fname.endswith((".h", ".hh", ".hpp")):
                    check_include_guard(relpath, raw, violations)
                    check_header_hygiene(relpath, code, violations)
                check_determinism(relpath, code, violations)
                check_allocation(relpath, code, violations)
                check_kernel_only_bookkeeping(relpath, code, violations)
                check_thread_hygiene(relpath, code, violations)
                check_diagnostics(relpath, code, violations)
                check_hot_loop_allocations(relpath, code, violations)
                check_slab_slot_members(relpath, raw, code, violations)
                check_detect_accumulators(relpath, raw, code, violations)
                check_metric_registration(relpath, code, violations)
    check_clock_aliases(files, violations)
    check_pairing_and_completeness(root, files, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# --- self-test ---------------------------------------------------------------

SELF_TEST_CASES = [
    ("EL001", "src/bad_guard.h", "#ifndef WRONG_GUARD_H_\n#define WRONG_GUARD_H_\n#endif\n"),
    ("EL002", "src/using_ns.h",
     "#ifndef SRC_USING_NS_H_\n#define SRC_USING_NS_H_\nusing namespace std;\n"
     "#endif  // SRC_USING_NS_H_\n"),
    ("EL003", "src/nondet.cc", "int jitter() { return rand() % 7; }\n"),
    ("EL003", "src/wallclock.cc", "long t() { return time(nullptr); }\n"),
    ("EL003", "src/alias_clock.cc",
     "#include <chrono>\nusing Clock = std::chrono::steady_clock;\n"
     "long t() { return Clock::now().time_since_epoch().count(); }\n"),
    ("EL003", "src/typedef_clock.cc",
     "#include <chrono>\ntypedef std::chrono::high_resolution_clock HrClock;\n"
     "long t() { return HrClock::now().time_since_epoch().count(); }\n"),
    ("EL004", "src/unordered.cc",
     "#include <unordered_map>\nstd::unordered_map<int, int> table;\n"),
    ("EL005", "src/naked_new.cc", "int* leak() { return new int(7); }\n"),
    ("EL005", "src/naked_delete.cc", "void drop(int* p) { delete p; }\n"),
    ("EL006", "src/path/rogue_charge.cc",
     "void f(Owner* o) { o->usage().pages += 1; }\n"),
    ("EL006", "src/path/rogue_list.cc",
     "void f(Owner* o, Thread* t) { o->threads().push_front(t); }\n"),
    ("EL009", "src/sneaky_static.cc",
     "int Counter() {\n  static int calls = 0;\n  return ++calls;\n}\n"),
    ("EL009", "src/global_table.cc",
     "#include <vector>\nstatic std::vector<int> g_shared_results;\n"),
    ("EL010", "src/rogue_thread.cc",
     "#include <thread>\nvoid Fire() { std::thread t([] {}); t.join(); }\n"),
    ("EL010", "src/sneaky_tls.cc",
     "int Next() {\n  thread_local int last = 0;\n  return ++last;\n}\n"),
    ("EL011", "src/chatty_printf.cc",
     "#include <cstdio>\nvoid Report(int n) { printf(\"%d\\n\", n); }\n"),
    ("EL011", "src/chatty_cout.cc",
     "#include <iostream>\nvoid Report(int n) { std::cout << n; }\n"),
    ("EL011", "src/chatty_stderr.cc",
     "#include <cstdio>\nvoid Warn(const char* m) { fputs(m, stderr); }\n"),
    ("EL012", "src/sim/hot_loop_fn.cc",
     "#include <functional>\n"
     "void Drain(int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    std::function<void()> fire = [i] {};\n"
     "    fire();\n"
     "  }\n"
     "}\n"),
    ("EL012", "src/sim/hot_while_fn.cc",
     "#include <functional>\n"
     "void Pump(bool (*more)()) {\n"
     "  while (more()) {\n"
     "    Post(std::function<void()>([] {}));\n"
     "  }\n"
     "}\n"),
    ("EL013", "src/slab_shared_ptr.cc",
     "#include <memory>\n"
     "// ESCORT_SLAB_SLOT: stored by value in a Slab<Conn>.\n"
     "struct Conn {\n"
     "  int fd = -1;\n"
     "  std::shared_ptr<int> token;\n"
     "};\n"),
    ("EL013", "src/slab_shared_ptr_class.cc",
     "#include <memory>\n"
     "// ESCORT_SLAB_SLOT\n"
     "class Peer {\n"
     " private:\n"
     "  std::shared_ptr<Peer> parent_;\n"
     "};\n"),
    ("EL014", "src/server/detect.cc",
     "#include <unordered_map>\n"
     "std::unordered_map<unsigned, long> subnets;\n"),
    ("EL014", "src/acc_float.cc",
     "// ESCORT_DETECT_ACCUMULATOR\n"
     "struct SprtState {\n"
     "  double llr = 0.0;\n"
     "};\n"),
    ("EL014", "src/acc_unordered.cc",
     "#include <unordered_set>\n"
     "// ESCORT_DETECT_ACCUMULATOR\n"
     "struct ClassStats {\n"
     "  std::unordered_set<int> seen;\n"
     "};\n"),
    ("EL015", "src/server/rogue_metric.cc",
     "#include \"src/sim/metrics.h\"\n"
     "void Wire(MetricsRegistry* m) {\n"
     "  auto* drops = m->RegisterCounter(\"net.drops\", \"dropped SYNs\");\n"
     "  (void)drops;\n"
     "}\n"),
    ("EL015", "src/server/rogue_sharded.cc",
     "#include \"src/sim/metrics.h\"\n"
     "void Wire(MetricsRegistry* m) {\n"
     "  m->RegisterShardedSeries(\"sim.timers\", \"armed timers\", 4);\n"
     "}\n"),
]

SELF_TEST_CLEAN = [
    ("src/clean.h",
     "#ifndef SRC_CLEAN_H_\n#define SRC_CLEAN_H_\nint f();\n#endif  // SRC_CLEAN_H_\n"),
    ("src/clean.cc",
     "#include <memory>\n"
     "// rand() in a comment is fine, as is \"new\" in a string.\n"
     "const char* s = \"new int\";\n"
     "auto p = std::make_unique<int>(3);\n"
     "auto q = std::unique_ptr<int>(new int(4));\n"),
    # EL009 negative space: const/constexpr statics, static member
    # functions (with default arguments), and static_cast must all pass.
    ("src/clean_statics.cc",
     "#include <string>\n"
     "const std::string& Name() {\n"
     "  static const std::string kName = \"escort\";\n"
     "  return kName;\n"
     "}\n"
     "struct Calib {\n"
     "  static constexpr int kScale = 7;\n"
     "  static Calib Make(int base = 3);\n"
     "  constexpr static int kOther = 9;\n"
     "};\n"
     "static int Twice(int v) { return static_cast<int>(v) * 2; }\n"),
    # EL014 negative space: integer-only marked accumulators pass, as do
    # ordered containers and compare-time float locals in the detection
    # module.
    ("src/server/detect.cc",
     "#include <cstdint>\n"
     "#include <map>\n"
     "// ESCORT_DETECT_ACCUMULATOR\n"
     "struct SprtState {\n"
     "  int64_t llr = 0;\n"
     "  uint64_t observations = 0;\n"
     "};\n"
     "std::map<unsigned, SprtState> subnets;\n"
     "bool Exceeds(uint64_t sum, uint64_t n, uint64_t value) {\n"
     "  double mean = static_cast<double>(sum) / static_cast<double>(n);\n"
     "  return static_cast<double>(value) > mean;\n"
     "}\n"),
    # EL010 negative space: the pool implementation itself may use
    # std::thread, and std::this_thread elsewhere must not match.
    ("src/sim/parallel.cc",
     "#include <thread>\n"
     "#include <vector>\n"
     "void Spin() {\n"
     "  std::vector<std::thread> workers;\n"
     "  workers.emplace_back([] {});\n"
     "  workers.back().join();\n"
     "}\n"),
    # ...and the sharded queue may keep a thread_local execution context.
    ("src/sim/event_queue.cc",
     "struct ExecContext { int stream = 0; };\n"
     "thread_local ExecContext tls_exec;\n"),
    # EL011 negative space: the funnel itself may hit stderr, buffer
    # formatting (snprintf) is allowed everywhere, and identifiers that
    # merely contain "stdout" must not match.
    ("src/sim/trace.cc",
     "#include <cstdio>\n"
     "void Diag(const char* t) { std::fwrite(t, 1, 1, stderr); std::fflush(stderr); }\n"),
    ("src/format_ok.cc",
     "#include <cstdio>\n"
     "void Format(char* buf) { snprintf(buf, 8, \"%d\", 3); }\n"
     "void set_echo_to_stdout(bool on);\n"),
    # EL012 negative space: a std::function hoisted out of the loop, one
    # in straight-line code, and one outside src/sim/ must all pass.
    ("src/sim/hoisted_fn.cc",
     "#include <functional>\n"
     "void Drain(int n) {\n"
     "  std::function<void(int)> fire = [](int) {};\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    fire(i);\n"
     "  }\n"
     "}\n"
     "std::function<void()> MakeIdle() { return [] {}; }\n"),
    ("src/workload/cold_loop_fn.cc",
     "#include <functional>\n"
     "void Setup(int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    std::function<void()> once = [] {};\n"
     "    once();\n"
     "  }\n"
     "}\n"),
    # EL013 negative space: unique_ptr and plain members in a marked slot
    # are fine; a shared_ptr in an UNmarked type is out of scope; a
    # shared_ptr mentioned only in the marked type's comments must not
    # fire (the member scan runs over stripped text).
    ("src/slab_slot_ok.cc",
     "#include <memory>\n"
     "// ESCORT_SLAB_SLOT: flyweight slot.\n"
     "struct Conn {\n"
     "  // Why not shared_ptr: the slab recycles this storage.\n"
     "  std::unique_ptr<int> scratch;\n"
     "  int fd = -1;\n"
     "};\n"
     "struct FreeRoaming {\n"
     "  std::shared_ptr<int> token;  // not a slab slot: allowed\n"
     "};\n"),
    # EL015 negative space: macro call sites in src/ pass (no Register*
    # token of their own), and tests may drive the registry directly.
    ("src/server/metric_macro_ok.cc",
     "#include \"src/sim/metrics.h\"\n"
     "void Wire(MetricsRegistry* m) {\n"
     "  auto* drops = ESCORT_METRIC_COUNTER(m, \"net.drops\", \"dropped SYNs\");\n"
     "  auto* depth = ESCORT_METRIC_SHARDED(m, \"sim.timers\", \"armed\", 4);\n"
     "  (void)drops;\n"
     "  (void)depth;\n"
     "}\n"),
    ("tests/test_registry_direct.cc",
     "#include \"src/sim/metrics.h\"\n"
     "void Probe(MetricsRegistry* m) {\n"
     "  m->RegisterGauge(\"x\", \"direct registration in a test is fine\");\n"
     "}\n"),
]

# EL007/EL008 fixture: a counter charged but never released, a tracking
# list neither reclaimed nor audited.
SELF_TEST_KERNEL_FIXTURE = [
    ("src/kernel/owner.h",
     "#ifndef SRC_KERNEL_OWNER_H_\n#define SRC_KERNEL_OWNER_H_\n"
     "#include <list>\n"
     "struct ResourceUsage {\n  uint64_t widgets = 0;\n  uint64_t cycles = 0;\n};\n"
     "class Owner {\n  std::list<int*> widgets_;\n};\n"
     "#endif  // SRC_KERNEL_OWNER_H_\n"),
    ("src/kernel/kernel.cc",
     "#include \"src/kernel/owner.h\"\n"
     "void ChargeWidget(Owner* o) { o->usage().widgets += 1; }\n"
     "Cycles Kernel::DestroyOwner(Owner* owner, int pd_count) {\n  return 0;\n}\n"),
    ("src/kernel/audit.cc",
     "#include \"src/kernel/owner.h\"\n"
     "void Auditor::CheckOwnerDrained(const Owner& owner) {\n}\n"),
]


def run_self_test() -> int:
    failures = []

    def expect(rule: str, produced: list, context: str) -> None:
        if not any(v.rule == rule for v in produced):
            got = ", ".join(sorted({v.rule for v in produced})) or "none"
            failures.append(f"{context}: expected {rule}, got [{got}]")

    with tempfile.TemporaryDirectory(prefix="escort_lint_selftest_") as tmp:
        for rule, relpath, content in SELF_TEST_CASES:
            case_root = os.path.join(tmp, rule + "_" + os.path.basename(relpath))
            full = os.path.join(case_root, relpath)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)
            expect(rule, lint_tree(case_root), relpath)

        clean_root = os.path.join(tmp, "clean")
        for relpath, content in SELF_TEST_CLEAN:
            full = os.path.join(clean_root, relpath)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)
        clean = lint_tree(clean_root)
        if clean:
            failures.append("clean fixture produced violations: " +
                            "; ".join(str(v) for v in clean))

        # Cross-file alias laundering: the decl is in a header, the use in a
        # .cc with no clock token of its own — only the tree-wide alias pass
        # can flag the use site.
        alias_root = os.path.join(tmp, "clock_alias_fixture")
        alias_fixture = [
            ("src/sim_tick.h",
             "#ifndef SRC_SIM_TICK_H_\n#define SRC_SIM_TICK_H_\n"
             "#include <chrono>\n"
             "using SimTick = std::chrono::steady_clock;\n"
             "#endif  // SRC_SIM_TICK_H_\n"),
            ("src/sim_tick_use.cc",
             "#include \"src/sim_tick.h\"\n"
             "long Stamp() { return SimTick::now().time_since_epoch().count(); }\n"),
        ]
        for relpath, content in alias_fixture:
            full = os.path.join(alias_root, relpath)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)
        produced = lint_tree(alias_root)
        expect("EL003", produced, "clock-alias fixture")
        if not any(v.rule == "EL003" and v.path == "src/sim_tick_use.cc" for v in produced):
            failures.append("clock-alias fixture: cross-file use site "
                            "src/sim_tick_use.cc not flagged by EL003")

        fixture_root = os.path.join(tmp, "kernel_fixture")
        for relpath, content in SELF_TEST_KERNEL_FIXTURE:
            full = os.path.join(fixture_root, relpath)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(content)
        produced = lint_tree(fixture_root)
        expect("EL007", produced, "kernel fixture (widgets charged, never released)")
        expect("EL008", produced, "kernel fixture (widgets list unreclaimed/unaudited)")

    if failures:
        for failure in failures:
            print("self-test FAIL:", failure, file=sys.stderr)
        return 1
    print("escort_lint self-test: all rules fire on seeded violations; clean fixture passes")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on seeded violations, then exit")
    parser.add_argument("-q", "--quiet", action="store_true", help="suppress the summary line")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not any(os.path.isdir(os.path.join(root, d)) for d in SCAN_DIRS):
        print(f"escort_lint: {root} contains none of {'/'.join(SCAN_DIRS)} — "
              "wrong --root? refusing to report a vacuously clean tree", file=sys.stderr)
        return 2
    violations = lint_tree(root)
    for v in violations:
        print(v)
    if violations:
        print(f"escort_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print("escort_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
