#!/usr/bin/env python3
"""check_perf_regression: gate the scheduler's measured perf trajectory.

The committed snapshot bench/snapshots/BENCH_pr7.json is a composite
document with two runs of the pinned fig9 quick grid on the same machine:

  {"baseline":  <sweep JSON, adaptive lookahead off, round-robin placement>,
   "optimized": <sweep JSON, adaptive lookahead on, weighted placement>}

Because absolute events/sec and wall-clock are machine-dependent, the
primary gate is the *ratio* between the two runs: for every cell,

    speedup(cell) = optimized.events_per_sec / baseline.events_per_sec

must not regress by more than --tolerance (default 5%) against the
snapshot's recorded speedup for the same cell. A fresh pair of runs on any
machine reproduces the ratio; only a scheduling regression moves it.

A second committed snapshot, bench/snapshots/BENCH_pr8.json, is a plain
sweep document from the fig8_scale bench (the million-client grid). Its
gate is memory, not speed: every cell's `memory.bytes_per_client` must fit
the flyweight budget, and the grid must actually reach the headline client
count — both machine-independent, so the committed file itself is checked.

Modes:
  --check-snapshot SNAP
      Validate the snapshot's own acceptance numbers: mean speedup >= 1.5x,
      windows_run reduced in every cell, and max per-shard idle_fraction
      < 0.5 under the optimized placement.
  --check-scale SNAP
      Validate a fig8_scale sweep document: all cells ok, the largest cell
      has >= --min-clients regular clients (default 1,000,000), and every
      client-bearing cell's memory.bytes_per_client is within
      --max-bytes-per-client (default 2048).
  --compare SNAP --baseline B.json --optimized O.json
      The CI perf job: rerun the pinned grid twice on this machine and
      compare per-cell speedups (and optionally absolute numbers with
      --absolute) against the snapshot.
  --write-snapshot OUT --baseline B.json --optimized O.json
      Produce a new composite snapshot from fresh runs.

--baseline and --optimized are repeatable. With N > 1 runs per side the
tool takes the per-cell MEDIAN: for each cell id it keeps the whole cell
from the run whose events_per_sec is the median across the N runs (lower
median for even N), so every retained cell is one internally consistent
measurement rather than a mix of fields from different runs. Quick-grid
cells run for a few milliseconds each, so single runs are noisy;
median-of-5 is the methodology used for the committed snapshot.

On noisy shared runners, pass --warn-only to demote failures to warnings
(exit 0), or raise --tolerance. Exit status: 0 ok, 1 regression/validation
failure, 2 usage/IO error. Stdlib only — no dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: unreadable or invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)


def cells_by_id(doc: dict, path: str) -> dict:
    cells = {}
    for cell in doc.get("cells", []):
        if not isinstance(cell, dict) or not cell.get("ok", False):
            print(f"{path}: cell {cell.get('id')!r} is not ok", file=sys.stderr)
            sys.exit(2)
        cells[cell["id"]] = cell
    if not cells:
        print(f"{path}: no cells", file=sys.stderr)
        sys.exit(2)
    return cells


def split_snapshot(snap: dict, path: str):
    if not isinstance(snap, dict) or "baseline" not in snap or "optimized" not in snap:
        print(f"{path}: snapshot must be an object with 'baseline' and "
              "'optimized' sweep documents", file=sys.stderr)
        sys.exit(2)
    return (cells_by_id(snap["baseline"], f"{path}:baseline"),
            cells_by_id(snap["optimized"], f"{path}:optimized"))


def eps(cell: dict) -> float:
    return float(cell.get("perf", {}).get("events_per_sec", 0.0))


def median_cells(paths: list) -> dict:
    """Per-cell median over N runs of the same grid.

    Keeps, for each cell id, the cell from the run whose events_per_sec is
    the median of the N measurements (lower median for even N). Selecting a
    whole cell — not mixing medians of individual fields — keeps perf,
    shard_utilization and metrics mutually consistent.
    """
    runs = [cells_by_id(load(p), p) for p in paths]
    ids = sorted(runs[0])
    for path, run in zip(paths[1:], runs[1:]):
        if sorted(run) != ids:
            print(f"{path}: grid differs from {paths[0]}: "
                  f"{sorted(set(run) ^ set(ids))}", file=sys.stderr)
            sys.exit(2)
    out = {}
    for cid in ids:
        ranked = sorted((eps(run[cid]), i) for i, run in enumerate(runs))
        out[cid] = runs[ranked[(len(ranked) - 1) // 2][1]][cid]
    return out


def merged_doc(paths: list) -> dict:
    """First run's sweep document with each cell replaced by the median."""
    doc = load(paths[0])
    chosen = median_cells(paths)
    doc["cells"] = [chosen[c["id"]] for c in doc.get("cells", [])]
    return doc


def speedups(base: dict, opt: dict, where: str) -> dict:
    if sorted(base) != sorted(opt):
        print(f"{where}: baseline and optimized grids differ: "
              f"{sorted(set(base) ^ set(opt))}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for cid in sorted(base):
        b, o = eps(base[cid]), eps(opt[cid])
        if b <= 0.0 or o <= 0.0:
            print(f"{where}: cell '{cid}' has non-positive events_per_sec",
                  file=sys.stderr)
            sys.exit(2)
        out[cid] = o / b
    return out


def check_snapshot(snap_path: str, min_speedup: float) -> list:
    """The acceptance gate the snapshot itself must clear."""
    base, opt = split_snapshot(load(snap_path), snap_path)
    ratios = speedups(base, opt, snap_path)
    failures = []
    mean = 1.0
    for r in ratios.values():
        mean *= r
    mean **= 1.0 / len(ratios)  # geometric mean: ratios multiply
    if mean < min_speedup:
        failures.append(f"geomean speedup {mean:.3f}x < required {min_speedup}x")
    for cid in sorted(base):
        b_util = base[cid].get("shard_utilization", {})
        o_util = opt[cid].get("shard_utilization", {})
        bw, ow = b_util.get("windows_run", 0), o_util.get("windows_run", 0)
        if not ow < bw:
            failures.append(f"cell '{cid}': windows_run not reduced "
                            f"({bw} -> {ow})")
        idles = [e.get("idle_fraction", 1.0)
                 for e in o_util.get("per_shard", [])]
        if idles and max(idles) >= 0.5:
            failures.append(f"cell '{cid}': max idle_fraction "
                            f"{max(idles):.3f} >= 0.5 on balanced placement")
    print(f"{snap_path}: geomean speedup {mean:.3f}x over {len(ratios)} cells")
    return failures


def check_scale(snap_path: str, min_clients: int, max_bytes_per_client: float) -> list:
    """Memory gate for the fig8_scale snapshot (machine-independent)."""
    cells = cells_by_id(load(snap_path), snap_path)
    failures = []
    biggest = 0
    for cid in sorted(cells):
        spec = cells[cid].get("spec", {})
        clients = spec.get("clients", 0)
        if not isinstance(clients, int) or clients <= 0:
            continue
        biggest = max(biggest, clients)
        mem = cells[cid].get("memory", {})
        bpc = float(mem.get("bytes_per_client", 0.0))
        if bpc <= 0.0:
            failures.append(f"cell '{cid}': missing/zero memory.bytes_per_client")
        elif bpc > max_bytes_per_client:
            failures.append(
                f"cell '{cid}': {bpc:.1f} bytes/client exceeds the "
                f"{max_bytes_per_client:.0f}-byte flyweight budget")
        else:
            print(f"cell '{cid}': {clients} clients, {bpc:.1f} bytes/client")
    if biggest < min_clients:
        failures.append(
            f"largest cell has {biggest} clients < required {min_clients}")
    return failures


def compare(snap_path: str, base_paths: list, opt_paths: list, tolerance: float,
            absolute: bool) -> list:
    snap_base, snap_opt = split_snapshot(load(snap_path), snap_path)
    cur_base = median_cells(base_paths)
    cur_opt = median_cells(opt_paths)
    snap_ratio = speedups(snap_base, snap_opt, snap_path)
    cur_ratio = speedups(cur_base, cur_opt, "current runs")
    failures = []
    for cid in sorted(snap_ratio):
        if cid not in cur_ratio:
            failures.append(f"cell '{cid}' missing from current runs")
            continue
        want, got = snap_ratio[cid], cur_ratio[cid]
        if got < want * (1.0 - tolerance):
            failures.append(
                f"cell '{cid}': speedup regressed {want:.3f}x -> {got:.3f}x "
                f"(> {tolerance:.0%} below snapshot)")
        else:
            print(f"cell '{cid}': speedup {got:.3f}x (snapshot {want:.3f}x)")
    if absolute:
        # Same-machine mode: also gate absolute events/sec and wall-clock of
        # the optimized run against the snapshot.
        for cid in sorted(snap_opt):
            if cid not in cur_opt:
                continue
            want_eps, got_eps = eps(snap_opt[cid]), eps(cur_opt[cid])
            if got_eps < want_eps * (1.0 - tolerance):
                failures.append(
                    f"cell '{cid}': events/sec regressed "
                    f"{want_eps:.0f} -> {got_eps:.0f}")
            want_ms = float(snap_opt[cid].get("perf", {}).get("wall_ms", 0.0))
            got_ms = float(cur_opt[cid].get("perf", {}).get("wall_ms", 0.0))
            if want_ms > 0.0 and got_ms > want_ms * (1.0 + tolerance):
                failures.append(
                    f"cell '{cid}': wall-clock regressed "
                    f"{want_ms:.1f}ms -> {got_ms:.1f}ms")
    return failures


def write_snapshot(out_path: str, base_paths: list, opt_paths: list) -> list:
    composite = {"baseline": merged_doc(base_paths),
                 "optimized": merged_doc(opt_paths)}
    # Refuse to commit a snapshot that would fail its own gate.
    try:
        with open(out_path, "w", encoding="utf-8") as f:
            json.dump(composite, f, indent=1)
            f.write("\n")
    except OSError as e:
        print(f"{out_path}: {e}", file=sys.stderr)
        sys.exit(2)
    print(f"wrote {out_path}")
    return check_snapshot(out_path, min_speedup=1.5)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check-snapshot", metavar="SNAP",
                      help="validate a committed snapshot's acceptance numbers")
    mode.add_argument("--check-scale", metavar="SNAP",
                      help="validate a fig8_scale sweep's memory budget")
    mode.add_argument("--compare", metavar="SNAP",
                      help="compare fresh --baseline/--optimized runs against SNAP")
    mode.add_argument("--write-snapshot", metavar="OUT",
                      help="compose --baseline/--optimized into a new snapshot")
    parser.add_argument("--baseline", action="append",
                        help="fresh run, adaptive off + rr placement "
                             "(repeatable: N runs -> per-cell median)")
    parser.add_argument("--optimized", action="append",
                        help="fresh run, adaptive on + weighted placement "
                             "(repeatable: N runs -> per-cell median)")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative regression (default 0.05 = 5%%)")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required geomean speedup for snapshot checks")
    parser.add_argument("--min-clients", type=int, default=1_000_000,
                        help="with --check-scale: required largest-cell client count")
    parser.add_argument("--max-bytes-per-client", type=float, default=2048.0,
                        help="with --check-scale: reserved connection+timer bytes "
                             "allowed per client")
    parser.add_argument("--absolute", action="store_true",
                        help="with --compare: also gate absolute events/sec and "
                             "wall-clock (same-machine snapshots only)")
    parser.add_argument("--warn-only", action="store_true",
                        help="demote failures to warnings (noisy runners)")
    args = parser.parse_args()

    if args.check_snapshot:
        failures = check_snapshot(args.check_snapshot, args.min_speedup)
    elif args.check_scale:
        failures = check_scale(args.check_scale, args.min_clients,
                               args.max_bytes_per_client)
    else:
        if not args.baseline or not args.optimized:
            print("--compare/--write-snapshot need --baseline and --optimized",
                  file=sys.stderr)
            return 2
        if args.compare:
            failures = compare(args.compare, args.baseline, args.optimized,
                               args.tolerance, args.absolute)
        else:
            failures = write_snapshot(args.write_snapshot, args.baseline,
                                      args.optimized)

    if failures:
        tag = "warning" if args.warn_only else "FAIL"
        for f in failures:
            print(f"{tag}: {f}", file=sys.stderr)
        return 0 if args.warn_only else 1
    print("perf gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
