#!/usr/bin/env python3
"""check_trace_json: validate trace files emitted by src/sim/trace.cc.

The benches' `--trace PATH` flag writes Chrome trace-event JSON (loadable
in Perfetto / chrome://tracing) stamped in simulated cycles. Because every
emission site runs on event stream 0 or at a serial point, the file is a
pure function of the experiment spec — byte-identical across --jobs and
--shards. CI's bench smoke job produces two traces at different shard
counts and runs this script over both plus an --expect-equal diff.

Checks per file:
  * parses as JSON with top-level keys {traceEvents, displayTimeUnit,
    otherData}; otherData.clock == "sim-cycles"
  * every event has ph in {B, E, I, C, M}, integer ts >= 0, integer
    pid/tid >= 0; non-M events carry cat/name as required by phase
  * per (pid, tid) track: timestamps are monotonically non-decreasing
    over non-metadata events
  * per (pid, tid) track: B/E spans balance — no E without an open B,
    and every track ends at depth 0 (Tracer::Finalize guarantees this)
  * C events carry a non-empty numeric args series

Flight-recorder dumps: when the HealthMonitor opens an incident it asks
the tracer to dump its in-memory ring to PATH.flight.json (standalone
runs) or PATH.<cell>.flight.json (sweeps). Those documents carry a
top-level `flight` object ({reason, ts, depth}) and are *partial* by
construction — the ring may begin mid-span — so the span-balance checks
relax but the per-track monotonicity checks still apply. This script
discovers the dumps next to each FILE argument automatically and
validates them with the same machinery (plus the flight-header schema).

Usage:
  check_trace_json.py FILE [FILE...]
  check_trace_json.py --no-flight FILE...  # skip sibling dump discovery
  check_trace_json.py --expect-equal A B   # byte-for-byte determinism diff

Exit status: 0 all files valid, 1 validation failure, 2 usage/IO error.
Stdlib only — no dependencies.
"""

from __future__ import annotations

import argparse
import glob
import json
import sys

TOP_KEYS = {"traceEvents", "displayTimeUnit", "otherData"}
FLIGHT_KEYS = {"reason", "ts", "depth"}
PHASES = {"B", "E", "I", "C", "M"}
MAX_ERRORS_PER_FILE = 20


def check_flight_header(path: str, flight, err) -> None:
    """Schema of the `flight` object Tracer::DumpFlight writes."""
    if not isinstance(flight, dict):
        err(f"{path}: 'flight' must be an object, got {type(flight).__name__}")
        return
    extra = flight.keys() - FLIGHT_KEYS
    missing = FLIGHT_KEYS - flight.keys()
    if missing:
        err(f"{path}: flight header missing keys {sorted(missing)}")
    if extra:
        err(f"{path}: flight header has unexpected keys {sorted(extra)}")
    reason = flight.get("reason")
    if "reason" in flight and (not isinstance(reason, str) or not reason):
        err(f"{path}: flight.reason must be a non-empty string, got {reason!r}")
    for key in ("ts", "depth"):
        v = flight.get(key)
        if key in flight and (not isinstance(v, int) or isinstance(v, bool)
                              or v < 0):
            err(f"{path}: flight.{key} must be a non-negative integer, "
                f"got {v!r}")


def find_flight_dumps(path: str) -> list:
    """Sibling flight-recorder dumps for a trace at `path`.

    Standalone runs write PATH.flight.json; sweeps write one
    PATH.<cell-id>.flight.json per cell (src/sim/trace.cc
    ResolvedFlightPath / sweep.cc per-cell flight paths).
    """
    if path.endswith(".flight.json"):
        return []  # already a dump; don't recurse
    found = set(glob.glob(glob.escape(path) + ".flight.json"))
    found.update(glob.glob(glob.escape(path) + ".*.flight.json"))
    return sorted(found)


def check_file(path: str) -> list:
    errors: list = []

    def err(msg: str) -> None:
        if len(errors) < MAX_ERRORS_PER_FILE:
            errors.append(msg)

    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(root, dict):
        return [f"{path}: top level is not an object"]
    missing = TOP_KEYS - root.keys()
    if missing:
        err(f"{path}: top level missing keys {sorted(missing)}")
    other = root.get("otherData")
    clock = other.get("clock") if isinstance(other, dict) else other
    if clock != "sim-cycles":
        err(f"{path}: otherData.clock must be 'sim-cycles' (got {clock!r})")

    events = root.get("traceEvents")
    if not isinstance(events, list):
        err(f"{path}: traceEvents must be an array")
        return errors

    # Per-(pid,tid) state for the monotonicity and span-balance checks.
    last_ts: dict = {}
    depth: dict = {}
    flight = "flight" in root  # flight dumps are partial
    if flight:
        check_flight_header(path, root.get("flight"), err)
    elif path.endswith(".flight.json"):
        err(f"{path}: named like a flight dump but has no 'flight' header")
    for i, ev in enumerate(events):
        what = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{what}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in PHASES:
            err(f"{what}: ph is {ph!r}, expected one of {sorted(PHASES)}")
            continue
        for key in ("ts", "pid", "tid"):
            v = ev.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                err(f"{what}: '{key}' must be a non-negative integer, got {v!r}")
        if ph == "M":
            continue  # metadata carries no timeline semantics
        track = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if isinstance(ts, int):
            if track in last_ts and ts < last_ts[track]:
                err(f"{what}: ts {ts} goes backwards on track pid={track[0]} "
                    f"tid={track[1]} (previous {last_ts[track]})")
            last_ts[track] = ts
        if ph in ("B", "I", "C"):
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                err(f"{what}: '{ph}' event needs a non-empty name")
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            if depth.get(track, 0) <= 0:
                if not flight:  # ring eviction may drop a span's B
                    err(f"{what}: 'E' with no open span on track pid={track[0]} "
                        f"tid={track[1]}")
            else:
                depth[track] -= 1
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                err(f"{what}: 'C' event needs a non-empty args series")
            else:
                for k, v in args.items():
                    if not isinstance(v, (int, float)) or isinstance(v, bool):
                        err(f"{what}: counter series '{k}' is not numeric: {v!r}")

    if not flight:  # a flight-recorder ring may begin mid-span
        for track, d in sorted(depth.items()):
            if d != 0:
                err(f"{path}: track pid={track[0]} tid={track[1]} ends with "
                    f"{d} unclosed span(s) — Tracer::Finalize not called?")
    if len(errors) >= MAX_ERRORS_PER_FILE:
        errors.append(f"{path}: ... further errors suppressed")
    return errors


def check_equal(path_a: str, path_b: str) -> list:
    blobs = []
    for path in (path_a, path_b):
        try:
            with open(path, "rb") as f:
                blobs.append(f.read())
        except OSError as e:
            return [f"{path}: unreadable: {e}"]
    if blobs[0] == blobs[1]:
        return []
    # Locate the first differing line so the CI log points at the event.
    lines_a, lines_b = (b.split(b"\n") for b in blobs)
    for n, (la, lb) in enumerate(zip(lines_a, lines_b), start=1):
        if la != lb:
            return [f"{path_a} and {path_b} differ at line {n}:",
                    f"  a: {la[:200].decode('utf-8', 'replace')}",
                    f"  b: {lb[:200].decode('utf-8', 'replace')}"]
    return [f"{path_a} and {path_b} differ in length "
            f"({len(lines_a)} vs {len(lines_b)} lines)"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", help="trace .json files to validate")
    parser.add_argument("--no-flight", action="store_true",
                        help="do not discover and validate sibling "
                             "PATH[.<cell>].flight.json flight-recorder dumps")
    parser.add_argument("--expect-equal", action="store_true",
                        help="take exactly two files and require them to be "
                             "byte-identical (cross-shard determinism check)")
    args = parser.parse_args()

    if args.expect_equal:
        if len(args.files) != 2:
            print("--expect-equal takes exactly two files", file=sys.stderr)
            return 2
        errors = check_equal(args.files[0], args.files[1])
        if errors:
            for e in errors:
                print(e, file=sys.stderr)
            return 1
        print(f"{args.files[0]} == {args.files[1]} (byte-identical)")
        return 0

    paths = []
    for path in args.files:
        paths.append(path)
        if not args.no_flight:
            paths.extend(find_flight_dumps(path))

    failures = 0
    for path in paths:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                root = json.load(f)
            n = len(root["traceEvents"])
            kind = "flight dump" if "flight" in root else "trace"
            print(f"{path}: valid {kind} ({n} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
