#!/usr/bin/env python3
"""check_bench_json: validate BENCH_*.json files emitted by the sweep runner.

The bench binaries (`--json PATH`) write one record per sweep cell. The
perf-trajectory tooling diffs these files across PRs, so the schema is a
contract: this script enforces the same key sets that
tests/test_bench_json.cc pins at the C++ level, but from the outside —
CI's bench smoke job runs it against freshly produced output.

Checks per file:
  * parses as JSON, schema_version in {4, 5, 6} (4/5: committed snapshots
    from earlier PRs; 5 added `detection`, 6 adds the per-cell
    `incidents` block — key sets are enforced per version)
  * top-level keys exactly {schema_version, bench, jobs, cells}
  * every cell carries exactly {id, ok, error, tags, spec, metrics,
    ledger, shard_utilization, perf, memory, detection, [incidents,]
    extra} with the pinned spec/metric/shard_utilization/perf/memory/
    detection/incidents key sets
  * v6: incidents.count == len(records); each record has finite
    onset_ms >= 0 and ttd_ms/ttr_ms either -1 (unreached) or >= 0
  * cell ids are unique and non-empty; jobs >= 1
  * ok:true cells have empty error; ok:false cells have a message
  * all metric and detection values are finite numbers (detection also
    non-negative); spec.detect is one of off/sprt/baseline
  * shard_utilization.imbalance is consistent with per_shard events_fired
  * spec.placement_map is a list of shard indices in [0, spec.shards)

Usage:
  check_bench_json.py FILE [FILE...]
  check_bench_json.py --require-ok FILE   # additionally fail on any ok:false cell
  check_bench_json.py --expect-equal A B  # A and B must carry identical results
                                          # (top-level jobs, the scheduling spec
                                          # knobs in SPEC_EXEMPT_KEYS, and the
                                          # determinism-exempt blocks in
                                          # DETERMINISM_EXEMPT_BLOCKS ignored:
                                          # the sharded-equivalence CI check)
  check_bench_json.py --dump-detection F  # print one canonical line per cell
                                          # with the detection counters and the
                                          # decision digest; CI byte-diffs this
                                          # across --jobs/--shards combinations
                                          # (detection decisions are required to
                                          # be bit-identical even though the
                                          # block is stripped by --expect-equal)

Exit status: 0 all files valid, 1 validation failure, 2 usage/IO error.
Stdlib only — no dependencies.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

TOP_KEYS = {"schema_version", "bench", "jobs", "cells"}
SCHEMA_VERSIONS = (4, 5, 6)
CELL_KEYS = {"id", "ok", "error", "tags", "spec", "metrics", "ledger",
             "shard_utilization", "perf", "memory", "detection", "extra"}
CELL_KEYS_V4 = CELL_KEYS - {"detection"}
CELL_KEYS_V6 = CELL_KEYS | {"incidents"}
SPEC_KEYS = {
    "linux_server", "config", "clients", "doc", "qos_stream",
    "syn_attack_rate", "cgi_attackers", "shards", "adaptive_lookahead",
    "timer_wheel", "placement", "placement_map", "warmup_s", "window_s",
    "detect",
}
SPEC_KEYS_V4 = SPEC_KEYS - {"detect"}
METRIC_KEYS = {
    "conns_per_sec", "qos_bytes_per_sec", "completions_total", "client_failures",
    "paths_killed", "syns_dropped_at_demux", "syns_sent", "runaway_detections",
    "kill_cost_mean", "window_cycles", "pd_crossings", "accounting_overhead",
    "ledger_total",
}
UTIL_KEYS = {
    "shards", "lookahead_cycles", "windows_run", "parallel_windows",
    "mean_window_cycles", "txns_drained", "max_mailbox_depth", "imbalance",
    "per_shard",
}
PER_SHARD_KEYS = {"shard", "events_fired", "windows_woken", "windows_active", "idle_fraction"}
PERF_KEYS = {"wall_ms", "events_per_sec", "windows_per_sec"}
MEMORY_KEYS = {
    "pcb_slot_bytes", "pcb_live", "pcb_high_water", "pcb_bytes_reserved",
    "peer_slot_bytes", "peer_live", "peer_high_water", "peer_bytes_reserved",
    "timers_armed", "timer_high_water", "timer_capacity",
    "timer_bytes_reserved", "bytes_per_client",
}
DETECTION_KEYS = {
    "detections", "true_positives", "false_positives",
    "paths_killed_by_detector", "blacklist_size", "first_detection_ms",
    "decision_digest",
}
DETECT_MODES = ("off", "sprt", "baseline")
INCIDENTS_KEYS = {"count", "records"}
INCIDENT_RECORD_KEYS = {
    "trigger", "onset_ms", "detected_ms", "contained_ms", "recovered_ms",
    "ttd_ms", "ttr_ms", "pressure_breaches", "detection_signals",
    "containment_actions",
}

# The shared determinism-exempt lists: --expect-equal strips exactly these.
# Keep in sync with the serializer comments in src/workload/sweep.cc —
# anything machine-dependent (perf), partition-dependent
# (shard_utilization, the scheduling spec knobs), or timer-backend-
# dependent (memory) goes here, nothing else. `detection` is stripped too,
# but NOT because it may differ: detection decisions are required to be
# bit-identical at any scheduling, and CI enforces that separately with a
# --dump-detection byte-diff (the stricter check owns the block).
DETERMINISM_EXEMPT_BLOCKS = ("shard_utilization", "perf", "memory", "detection")
SPEC_EXEMPT_KEYS = ("shards", "adaptive_lookahead", "timer_wheel",
                    "placement", "placement_map")
PLACEMENT_MODES = ("rr", "weighted", "profile")


def expect_keys(errors: list, got: dict, want: set, what: str) -> None:
    missing = want - got.keys()
    extra = got.keys() - want
    if missing:
        errors.append(f"{what}: missing keys {sorted(missing)}")
    if extra:
        errors.append(f"{what}: unexpected keys {sorted(extra)} "
                      "(schema change? update tests/test_bench_json.cc and this script together)")


def check_file(path: str, require_ok: bool) -> list:
    errors: list = []
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(root, dict):
        return [f"{path}: top level is not an object"]
    expect_keys(errors, root, TOP_KEYS, f"{path}: top level")
    schema = root.get("schema_version")
    if schema not in SCHEMA_VERSIONS:
        errors.append(f"{path}: schema_version is {schema!r}, "
                      f"expected one of {SCHEMA_VERSIONS}")
    if not isinstance(root.get("bench"), str) or not root.get("bench"):
        errors.append(f"{path}: 'bench' must be a non-empty string")
    jobs = root.get("jobs")
    if not isinstance(jobs, int) or jobs < 1:
        errors.append(f"{path}: 'jobs' must be an integer >= 1, got {jobs!r}")

    cells = root.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{path}: 'cells' must be a non-empty array")
        return errors

    seen_ids: set = set()
    for i, cell in enumerate(cells):
        what = f"{path}: cells[{i}]"
        if not isinstance(cell, dict):
            errors.append(f"{what}: not an object")
            continue
        cell_keys = (CELL_KEYS_V6 if schema == 6
                     else CELL_KEYS if schema == 5 else CELL_KEYS_V4)
        expect_keys(errors, cell, cell_keys, what)
        cid = cell.get("id")
        if not isinstance(cid, str) or not cid:
            errors.append(f"{what}: 'id' must be a non-empty string")
        elif cid in seen_ids:
            errors.append(f"{what}: duplicate cell id '{cid}'")
        else:
            seen_ids.add(cid)

        ok = cell.get("ok")
        err = cell.get("error")
        if not isinstance(ok, bool):
            errors.append(f"{what}: 'ok' must be a boolean")
        elif ok and err:
            errors.append(f"{what}: ok:true but error is non-empty: {err!r}")
        elif not ok:
            if not err:
                errors.append(f"{what}: ok:false but error message is empty")
            if require_ok:
                errors.append(f"{what}: cell failed ({err!r}) and --require-ok is set")

        spec_keys = SPEC_KEYS if schema != 4 else SPEC_KEYS_V4
        for sub, want in (("spec", spec_keys), ("metrics", METRIC_KEYS),
                          ("perf", PERF_KEYS), ("memory", MEMORY_KEYS)):
            obj = cell.get(sub)
            if not isinstance(obj, dict):
                errors.append(f"{what}: '{sub}' must be an object")
                continue
            expect_keys(errors, obj, want, f"{what}.{sub}")
        if schema != 4:
            detection = cell.get("detection")
            if not isinstance(detection, dict):
                errors.append(f"{what}: 'detection' must be an object")
            else:
                expect_keys(errors, detection, DETECTION_KEYS, f"{what}.detection")
                for key, value in detection.items():
                    if not isinstance(value, (int, float)) or isinstance(value, bool) \
                            or not math.isfinite(value) or value < 0:
                        errors.append(f"{what}.detection.{key}: not a finite "
                                      f"non-negative number: {value!r}")
        if schema == 6:
            incidents = cell.get("incidents")
            if not isinstance(incidents, dict):
                errors.append(f"{what}: 'incidents' must be an object (schema v6)")
            else:
                expect_keys(errors, incidents, INCIDENTS_KEYS, f"{what}.incidents")
                records = incidents.get("records")
                if not isinstance(records, list):
                    errors.append(f"{what}.incidents.records: not an array")
                else:
                    if incidents.get("count") != len(records):
                        errors.append(
                            f"{what}.incidents: count={incidents.get('count')!r} "
                            f"but records has {len(records)} entries")
                    for j, rec in enumerate(records):
                        rwhat = f"{what}.incidents.records[{j}]"
                        if not isinstance(rec, dict):
                            errors.append(f"{rwhat}: not an object")
                            continue
                        expect_keys(errors, rec, INCIDENT_RECORD_KEYS, rwhat)
                        if not isinstance(rec.get("trigger"), str) or not rec.get("trigger"):
                            errors.append(f"{rwhat}.trigger: must be a non-empty string")
                        for key in ("onset_ms", "detected_ms", "contained_ms",
                                    "recovered_ms", "ttd_ms", "ttr_ms"):
                            v = rec.get(key)
                            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                                    or not math.isfinite(v):
                                errors.append(f"{rwhat}.{key}: not a finite number: {v!r}")
                            elif key == "onset_ms" and v < 0:
                                errors.append(f"{rwhat}.onset_ms: negative: {v!r}")
                            elif v < 0 and v != -1.0:
                                errors.append(f"{rwhat}.{key}: {v!r} is neither >= 0 "
                                              "nor the -1 unreached sentinel")
                        for key in ("pressure_breaches", "detection_signals",
                                    "containment_actions"):
                            v = rec.get(key)
                            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                                errors.append(f"{rwhat}.{key}: not a non-negative "
                                              f"integer: {v!r}")
        spec = cell.get("spec")
        if isinstance(spec, dict):
            if schema != 4 and spec.get("detect") not in DETECT_MODES:
                errors.append(f"{what}.spec.detect: {spec.get('detect')!r} "
                              f"not one of {DETECT_MODES}")
            if spec.get("placement") not in PLACEMENT_MODES:
                errors.append(f"{what}.spec.placement: {spec.get('placement')!r} "
                              f"not one of {PLACEMENT_MODES}")
            pmap = spec.get("placement_map")
            shards = spec.get("shards")
            if not isinstance(pmap, list):
                errors.append(f"{what}.spec.placement_map: not an array")
            else:
                for j, entry in enumerate(pmap):
                    if not isinstance(entry, int) or isinstance(entry, bool) or \
                            entry < 0 or (isinstance(shards, int) and entry >= shards):
                        errors.append(f"{what}.spec.placement_map[{j}]: "
                                      f"{entry!r} is not a shard index in "
                                      f"[0, {shards})")
        metrics = cell.get("metrics")
        if isinstance(metrics, dict):
            for key, value in metrics.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool) \
                        or not math.isfinite(value):
                    errors.append(f"{what}.metrics.{key}: not a finite number: {value!r}")
        memory = cell.get("memory")
        if isinstance(memory, dict):
            for key, value in memory.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool) \
                        or not math.isfinite(value) or value < 0:
                    errors.append(f"{what}.memory.{key}: not a finite non-negative "
                                  f"number: {value!r}")
        for sub in ("tags", "ledger", "extra"):
            if not isinstance(cell.get(sub), dict):
                errors.append(f"{what}: '{sub}' must be an object")

        util = cell.get("shard_utilization")
        if not isinstance(util, dict):
            errors.append(f"{what}: 'shard_utilization' must be an object")
        else:
            expect_keys(errors, util, UTIL_KEYS, f"{what}.shard_utilization")
            per_shard = util.get("per_shard")
            if not isinstance(per_shard, list):
                errors.append(f"{what}.shard_utilization.per_shard: not an array")
            else:
                if isinstance(util.get("shards"), int) and \
                        len(per_shard) != util["shards"]:
                    errors.append(
                        f"{what}.shard_utilization: per_shard has "
                        f"{len(per_shard)} entries but shards={util['shards']}")
                for j, entry in enumerate(per_shard):
                    if not isinstance(entry, dict):
                        errors.append(
                            f"{what}.shard_utilization.per_shard[{j}]: not an object")
                        continue
                    expect_keys(errors, entry, PER_SHARD_KEYS,
                                f"{what}.shard_utilization.per_shard[{j}]")
                fired = [e.get("events_fired") for e in per_shard
                         if isinstance(e, dict) and isinstance(e.get("events_fired"), int)]
                imb = util.get("imbalance")
                if not isinstance(imb, (int, float)) or isinstance(imb, bool) \
                        or not math.isfinite(imb):
                    errors.append(f"{what}.shard_utilization.imbalance: "
                                  f"not a finite number: {imb!r}")
                elif len(fired) == len(per_shard) and per_shard:
                    total = sum(fired)
                    want_imb = (max(fired) * len(fired) / total) if total else 0.0
                    if abs(imb - want_imb) > 1e-9 * max(1.0, want_imb):
                        errors.append(
                            f"{what}.shard_utilization.imbalance: {imb!r} "
                            f"inconsistent with per_shard events_fired "
                            f"(expected {want_imb!r})")
    return errors


def normalized_for_equality(root: dict) -> dict:
    """Strips the knobs that legitimately differ between two schedulings of
    the same grid: top-level jobs, the scheduling spec knobs
    (SPEC_EXEMPT_KEYS), and every determinism-exempt cell block
    (DETERMINISM_EXEMPT_BLOCKS) — scheduling/host detail, not results."""
    out = json.loads(json.dumps(root))  # deep copy
    out.pop("jobs", None)
    for cell in out.get("cells", []):
        if isinstance(cell, dict):
            if isinstance(cell.get("spec"), dict):
                for key in SPEC_EXEMPT_KEYS:
                    cell["spec"].pop(key, None)
            for block in DETERMINISM_EXEMPT_BLOCKS:
                cell.pop(block, None)
    return out


def check_equal(path_a: str, path_b: str) -> list:
    loaded = []
    for path in (path_a, path_b):
        try:
            with open(path, encoding="utf-8") as f:
                loaded.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            return [f"{path}: unreadable or invalid JSON: {e}"]
    a, b = (normalized_for_equality(r) for r in loaded)
    if a == b:
        return []
    errors = [f"{path_a} and {path_b} differ (ignoring jobs, "
              f"spec {'/'.join(SPEC_EXEMPT_KEYS)}, "
              f"and {'/'.join(DETERMINISM_EXEMPT_BLOCKS)})"]
    cells_a = {c.get("id"): c for c in a.get("cells", []) if isinstance(c, dict)}
    cells_b = {c.get("id"): c for c in b.get("cells", []) if isinstance(c, dict)}
    for cid in sorted(set(cells_a) | set(cells_b)):
        if cells_a.get(cid) != cells_b.get(cid):
            errors.append(f"  cell '{cid}' differs")
    return errors


def dump_detection(path: str) -> list:
    """Prints one canonical line per cell: id, detection counters, digest.
    The output is a pure function of the detection decision sequence, so CI
    byte-diffs it across --jobs/--shards runs of the same grid."""
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]
    errors: list = []
    for cell in root.get("cells", []):
        if not isinstance(cell, dict):
            continue
        det = cell.get("detection")
        if not isinstance(det, dict):
            errors.append(f"{path}: cell '{cell.get('id')}' has no detection block")
            continue
        print(f"{cell.get('id')} "
              f"detect={cell.get('spec', {}).get('detect')} "
              f"detections={det.get('detections')} "
              f"tp={det.get('true_positives')} "
              f"fp={det.get('false_positives')} "
              f"killed={det.get('paths_killed_by_detector')} "
              f"blacklist={det.get('blacklist_size')} "
              f"first_ms={det.get('first_detection_ms'):.6f} "
              f"digest={det.get('decision_digest')}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files to validate")
    parser.add_argument("--require-ok", action="store_true",
                        help="fail if any cell has ok:false (CI smoke runs use this)")
    parser.add_argument("--expect-equal", action="store_true",
                        help="take exactly two files and require identical results "
                             "modulo jobs and the scheduling knobs "
                             "(sharded-equivalence check)")
    parser.add_argument("--dump-detection", action="store_true",
                        help="print canonical per-cell detection lines for the "
                             "CI detection-determinism byte-diff")
    args = parser.parse_args()

    if args.dump_detection:
        failures = 0
        for path in args.files:
            errors = dump_detection(path)
            if errors:
                failures += 1
                for e in errors:
                    print(e, file=sys.stderr)
        return 1 if failures else 0

    if args.expect_equal:
        if len(args.files) != 2:
            print("--expect-equal takes exactly two files", file=sys.stderr)
            return 2
        errors = check_equal(args.files[0], args.files[1])
        if errors:
            for e in errors:
                print(e, file=sys.stderr)
            return 1
        print(f"{args.files[0]} == {args.files[1]} (modulo jobs, "
              f"spec {'/'.join(SPEC_EXEMPT_KEYS)}, "
              f"and {'/'.join(DETERMINISM_EXEMPT_BLOCKS)})")
        return 0

    failures = 0
    for path in args.files:
        errors = check_file(path, args.require_ok)
        if errors:
            failures += 1
            for e in errors:
                print(e, file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["cells"])
            print(f"{path}: valid ({n} cells)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
