#!/usr/bin/env python3
"""report_incidents: render HealthMonitor incident forensics from bench JSON.

Schema-v6 bench documents (sweep --json) carry one `incidents` block per
cell: the onset -> detection -> containment -> recovery timeline the
HealthMonitor (src/server/health.h) recorded, with derived time-to-detect
(TTD) and time-to-recover (TTR). This tool turns those blocks into a
human-readable Markdown report:

  * one timeline section per cell that had an incident, in grid order
  * a cross-cell comparison table (trigger, TTD, TTR, signal counts) so
    fig9 / fig11 / ext_detection runs can be compared defense-by-defense

Usage:
  report_incidents.py FILE [FILE...]            # Markdown to stdout
  report_incidents.py --out report.md FILE...   # Markdown to a file
  report_incidents.py --check FILE...           # CI gate, no rendering noise

--check enforces the acceptance contract of the incident plane:
  * every ATTACK cell (spec.syn_attack_rate > 0 or spec.cgi_attackers > 0)
    reports at least one incident whose ttd_ms and ttr_ms are both finite
    and >= 0 — the defense detected the attack and service recovered;
  * every BENIGN cell reports exactly zero incidents — no false alarms.
Files with schema_version < 6 have no incidents block and are rejected.

Exit status: 0 ok, 1 check/validation failure, 2 usage/IO error.
Stdlib only — no dependencies.
"""

from __future__ import annotations

import argparse
import json
import sys


def is_attack_cell(cell: dict) -> bool:
    spec = cell.get("spec", {})
    return spec.get("syn_attack_rate", 0) > 0 or spec.get("cgi_attackers", 0) > 0


def fmt_ms(v) -> str:
    """-1 is the serializer's 'milestone never reached' sentinel."""
    if not isinstance(v, (int, float)) or v < 0:
        return "—"
    return f"{v:.2f}"


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        root = json.load(f)
    if not isinstance(root, dict) or not isinstance(root.get("cells"), list):
        raise ValueError(f"{path}: not a bench JSON document")
    if root.get("schema_version", 0) < 6:
        raise ValueError(
            f"{path}: schema_version {root.get('schema_version')!r} has no "
            "incidents block (needs >= 6)")
    return root


def render(root: dict, path: str) -> str:
    lines: list = []
    bench = root.get("bench", path)
    lines.append(f"# Incident report: {bench}")
    lines.append("")
    cells = [c for c in root["cells"] if isinstance(c, dict)]
    with_incidents = [c for c in cells
                      if c.get("incidents", {}).get("records")]

    # Cross-cell comparison table first: the defense-by-defense view.
    lines.append("| cell | load | incidents | trigger | TTD (ms) | TTR (ms) "
                 "| pressure | detections | containment |")
    lines.append("|---|---|---:|---|---:|---:|---:|---:|---:|")
    for cell in cells:
        kind = "attack" if is_attack_cell(cell) else "benign"
        records = cell.get("incidents", {}).get("records", [])
        if not records:
            lines.append(f"| {cell.get('id')} | {kind} | 0 | — | — | — "
                         "| — | — | — |")
            continue
        first = records[0]
        lines.append(
            f"| {cell.get('id')} | {kind} | {len(records)} "
            f"| {first.get('trigger')} | {fmt_ms(first.get('ttd_ms'))} "
            f"| {fmt_ms(first.get('ttr_ms'))} "
            f"| {first.get('pressure_breaches')} "
            f"| {first.get('detection_signals')} "
            f"| {first.get('containment_actions')} |")
    lines.append("")

    # Per-cell timelines for every cell that had an incident.
    for cell in with_incidents:
        cid = cell.get("id")
        kind = "attack" if is_attack_cell(cell) else "benign"
        lines.append(f"## {cid} ({kind})")
        lines.append("")
        for i, rec in enumerate(cell["incidents"]["records"]):
            lines.append(f"Incident {i + 1}: trigger `{rec.get('trigger')}`")
            lines.append("")
            lines.append("| milestone | sim time (ms) |")
            lines.append("|---|---:|")
            lines.append(f"| onset | {fmt_ms(rec.get('onset_ms'))} |")
            lines.append(f"| detected | {fmt_ms(rec.get('detected_ms'))} |")
            lines.append(f"| contained | {fmt_ms(rec.get('contained_ms'))} |")
            lines.append(f"| recovered | {fmt_ms(rec.get('recovered_ms'))} |")
            lines.append("")
            lines.append(f"TTD {fmt_ms(rec.get('ttd_ms'))} ms, "
                         f"TTR {fmt_ms(rec.get('ttr_ms'))} ms; "
                         f"{rec.get('pressure_breaches')} pressure breaches, "
                         f"{rec.get('detection_signals')} detection signals, "
                         f"{rec.get('containment_actions')} containment "
                         "actions over the incident.")
            lines.append("")
    if not with_incidents:
        lines.append("No incidents recorded in any cell.")
        lines.append("")
    return "\n".join(lines) + "\n"


def check(root: dict, path: str) -> list:
    errors: list = []
    for cell in root["cells"]:
        if not isinstance(cell, dict):
            continue
        cid = cell.get("id")
        records = cell.get("incidents", {}).get("records")
        if records is None:
            errors.append(f"{path}: cell '{cid}' has no incidents block")
            continue
        if is_attack_cell(cell):
            if not records:
                errors.append(f"{path}: attack cell '{cid}' reported no "
                              "incident (defense timeline missing)")
                continue
            good = [r for r in records
                    if isinstance(r.get("ttd_ms"), (int, float))
                    and isinstance(r.get("ttr_ms"), (int, float))
                    and r["ttd_ms"] >= 0 and r["ttr_ms"] >= 0]
            if not good:
                errors.append(
                    f"{path}: attack cell '{cid}' has no incident with "
                    f"finite TTD and TTR (records: "
                    f"{[(r.get('trigger'), r.get('ttd_ms'), r.get('ttr_ms')) for r in records]})")
        elif records:
            errors.append(
                f"{path}: benign cell '{cid}' reported "
                f"{len(records)} incident(s) — false alarm: "
                f"{[(r.get('trigger')) for r in records]}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+", help="schema-v6 BENCH_*.json files")
    parser.add_argument("--out", help="write the Markdown report here instead of stdout")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: attack cells must have an incident with "
                             "finite TTD/TTR, benign cells must have none")
    args = parser.parse_args()

    roots = []
    for path in args.files:
        try:
            roots.append((path, load(path)))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(e, file=sys.stderr)
            return 2

    if args.check:
        failures = 0
        for path, root in roots:
            errors = check(root, path)
            for e in errors:
                print(e, file=sys.stderr)
            if errors:
                failures += 1
            else:
                attack = sum(1 for c in root["cells"]
                             if isinstance(c, dict) and is_attack_cell(c))
                print(f"{path}: ok ({attack} attack cells with finite "
                      f"TTD/TTR, {len(root['cells']) - attack} benign cells "
                      "clean)")
        return 1 if failures else 0

    report = "".join(render(root, path) for path, root in roots)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
