// Figure 11: best-effort client performance as 0..50 CGI attackers (one
// runaway /cgi-bin/loop request per second each) attack a server with 64
// clients and a 1 MB/s QoS stream.
//
// Paper shapes: the QoS stream stays within 1% of its target throughout;
// best-effort throughput degrades with the attacker count (each attack
// burns its 2 ms CPU budget before detection), and every killed path's
// resources are fully reclaimed.

#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

struct Variant {
  const char* key;
  ServerConfig config;
};

const Variant kVariants[] = {
    {"acct", ServerConfig::kAccounting},
    {"pd", ServerConfig::kAccountingPd},
};

std::string CellId(const char* doc, const Variant& v, int attackers) {
  return std::string(doc) + "/" + v.key + "/a" + std::to_string(attackers);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> attackers =
      opts.quick ? std::vector<int>{0, 10, 50} : std::vector<int>{0, 1, 10, 25, 50};

  Sweep sweep("fig11_cgi");
  for (const char* doc : {"/doc1b", "/doc10k"}) {
    for (int n : attackers) {
      for (const Variant& v : kVariants) {
        ExperimentSpec spec;
        spec.config = v.config;
        spec.clients = 64;
        spec.doc = doc;
        spec.qos_stream = true;
        spec.cgi_attackers = n;
        SweepCell& cell = sweep.Add(CellId(doc, v, n), spec);
        cell.tags = {{"doc", doc}, {"variant", v.key}};
      }
    }
  }
  sweep.Run(opts);

  std::printf(
      "=== Figure 11: 64 clients + 1 MB/s QoS stream vs number of CGI attackers ===\n\n");

  for (const char* doc : {"/doc1b", "/doc10k"}) {
    std::printf("--- %s document ---\n", doc);
    std::printf("%10s %12s %12s %12s %12s %10s %10s\n", "attackers", "Acct", "QoS MB/s",
                "Acct_PD", "QoS MB/s", "kills", "kills_PD");
    for (int n : attackers) {
      const ExperimentResult& a = sweep.Result(CellId(doc, kVariants[0], n));
      const ExperimentResult& p = sweep.Result(CellId(doc, kVariants[1], n));
      std::printf("%10d %12.1f %12.3f %12.1f %12.3f %10llu %10llu\n", n, a.conns_per_sec,
                  a.qos_bytes_per_sec / 1e6, p.conns_per_sec, p.qos_bytes_per_sec / 1e6,
                  static_cast<unsigned long long>(a.paths_killed),
                  static_cast<unsigned long long>(p.paths_killed));
    }
    std::printf("\n");
  }
  return sweep.failed_count() == 0 ? 0 : 1;
}
