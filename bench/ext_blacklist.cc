// Extension experiment (paper §4.4.4): the offender-blacklist policy.
//
// "Clients that have previously violated some resource bound — e.g. the
// CGI attackers in our example — can be identified and their future
// connection request packets demultiplexed to a different distinct passive
// path with a very small resource allocation."
//
// This bench extends Figure 11: the same CGI attack, with and without the
// blacklist. Without it, every attack burns its full 2 ms budget before
// detection; with it, an offender gets one free shot — subsequent attempts
// are squeezed through the penalty listener's one-connection budget, so
// best-effort throughput recovers.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/server/policy.h"
#include "src/workload/sweep.h"

using namespace escort;

namespace {

// One sweep cell: its own testbed (32 best-effort clients + the attack),
// with or without the blacklist policy. Everything mutable is cell-local.
CellMetrics RunBlacklistCell(const ExperimentSpec& spec, bool blacklist) {
  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  WebServerOptions opts;
  opts.config = ServerConfig::kAccounting;
  EscortWebServer server(&eq, &link, opts);
  std::unique_ptr<BlacklistPolicy> policy;
  if (blacklist) {
    BlacklistPolicy::Options popts;
    popts.strikes = 1;
    popts.penalty_syn_limit = 1;
    policy = std::make_unique<BlacklistPolicy>(&server, popts);
  }

  std::vector<std::unique_ptr<ClientMachine>> machines;
  std::vector<std::unique_ptr<HttpClient>> clients;
  std::vector<std::unique_ptr<CgiAttacker>> cgi;
  RateMeter completions;

  auto add_machine = [&](Ip4Addr ip, uint64_t mac, uint64_t seed) {
    machines.push_back(std::make_unique<ClientMachine>(&eq, &link, MacAddr::FromIndex(mac), ip,
                                                       NetworkModel::Calibrated(), seed));
    machines.back()->AddArpEntry(opts.ip, opts.mac);
    server.AddArpEntry(ip, machines.back()->mac());
    return machines.back().get();
  };

  for (int i = 0; i < spec.clients; ++i) {
    ClientMachine* m = add_machine(Ip4Addr::FromOctets(10, 0, 1, static_cast<uint8_t>(i + 1)),
                                   100 + static_cast<uint64_t>(i), 7 + static_cast<uint64_t>(i));
    clients.push_back(std::make_unique<HttpClient>(m, opts.ip, "/doc1b"));
    clients.back()->set_meter(&completions);
    clients.back()->Start(CyclesFromMillis(i));
  }
  for (int i = 0; i < spec.cgi_attackers; ++i) {
    ClientMachine* m = add_machine(Ip4Addr::FromOctets(10, 0, 3, static_cast<uint8_t>(i + 1)),
                                   200 + static_cast<uint64_t>(i), 99 + static_cast<uint64_t>(i));
    // Aggressive: one attack every 100 ms per attacker.
    cgi.push_back(std::make_unique<CgiAttacker>(m, opts.ip, CyclesFromMillis(100)));
    cgi.back()->Start(CyclesFromMillis(3 * i));
  }

  eq.RunUntil(CyclesFromSeconds(spec.warmup_s));
  completions.OpenWindow(eq.now());
  eq.RunUntil(eq.now() + CyclesFromSeconds(spec.window_s));

  CellMetrics m;
  m.experiment.conns_per_sec = completions.CloseWindow(eq.now());
  m.experiment.completions_total = completions.total();
  m.experiment.paths_killed = server.paths_killed();
  double penalty_drops = 0;
  if (policy != nullptr) {
    penalty_drops = static_cast<double>(policy->penalty_listener()->syns_dropped_at_demux);
  }
  m.extra = {{"penalty_drops", penalty_drops}};
  return m;
}

std::string CellId(int attackers, bool blacklist) {
  return std::string(blacklist ? "on" : "off") + "/a" + std::to_string(attackers);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> attacker_counts =
      opts.quick ? std::vector<int>{0, 5} : std::vector<int>{0, 2, 5, 10};

  Sweep sweep("ext_blacklist");
  for (int attackers : attacker_counts) {
    for (bool blacklist : {false, true}) {
      ExperimentSpec spec;
      spec.config = ServerConfig::kAccounting;
      spec.clients = 32;
      spec.cgi_attackers = attackers;
      sweep.AddCustom(CellId(attackers, blacklist), spec,
                      [blacklist](const ExperimentSpec& s) {
                        return RunBlacklistCell(s, blacklist);
                      })
          .tags = {{"blacklist", blacklist ? "on" : "off"}};
    }
  }
  sweep.Run(opts);

  std::printf("=== Extension (paper §4.4.4): blacklisting repeat CGI offenders ===\n");
  std::printf("32 best-effort clients; attackers fire one runaway CGI request per 100 ms.\n\n");
  std::printf("%10s | %14s %8s | %14s %8s %14s\n", "attackers", "no-blacklist", "kills",
              "blacklist", "kills", "penalty-drops");
  for (int attackers : attacker_counts) {
    const ExperimentResult& off = sweep.Result(CellId(attackers, false));
    const ExperimentResult& on = sweep.Result(CellId(attackers, true));
    std::printf("%10d | %14.1f %8llu | %14.1f %8llu %14llu\n", attackers, off.conns_per_sec,
                static_cast<unsigned long long>(off.paths_killed), on.conns_per_sec,
                static_cast<unsigned long long>(on.paths_killed),
                static_cast<unsigned long long>(sweep.Extra(CellId(attackers, true),
                                                            "penalty_drops")));
  }
  std::printf("\nWith the blacklist, each offender burns its 2 ms budget once; afterwards its\n"
              "SYNs demux to the penalty passive path and are mostly dropped there, so the\n"
              "kill rate collapses and best-effort throughput recovers.\n");
  return sweep.failed_count() == 0 ? 0 : 1;
}
