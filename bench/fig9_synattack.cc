// Figure 9: best-effort client performance with and without a SYN attack
// of 1000 SYNs/second from the untrusted subnet.
//
// Policy (paper §4.4.1): separate passive paths for the trusted and
// untrusted subnets; the untrusted passive path tracks its SYN_RECVD count
// and over-budget SYNs are dropped at demux time.
//
// Paper shapes: best-effort slows <5% under Accounting, <15% under
// Accounting_PD (the extra loss is interrupt + demux time per attack
// datagram, aggravated by TLB invalidation); 1K results within 3% of 1B.

#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

struct Variant {
  const char* key;
  ServerConfig config;
  double syn_rate;
};

const Variant kVariants[] = {
    {"acct", ServerConfig::kAccounting, 0},
    {"acct_syn", ServerConfig::kAccounting, 1000},
    {"pd", ServerConfig::kAccountingPd, 0},
    {"pd_syn", ServerConfig::kAccountingPd, 1000},
};

std::string CellId(const char* doc, const Variant& v, int clients) {
  return std::string(doc) + "/" + v.key + "/c" + std::to_string(clients);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> clients = opts.quick ? std::vector<int>{8, 64} : ClientSweep();

  Sweep sweep("fig9_synattack");
  for (const char* doc : {"/doc1b", "/doc10k"}) {
    for (int n : clients) {
      for (const Variant& v : kVariants) {
        ExperimentSpec spec;
        spec.config = v.config;
        spec.clients = n;
        spec.doc = doc;
        spec.syn_attack_rate = v.syn_rate;
        SweepCell& cell = sweep.Add(CellId(doc, v, n), spec);
        cell.tags = {{"doc", doc}, {"variant", v.key}};
      }
    }
  }
  sweep.Run(opts);

  std::printf(
      "=== Figure 9: client throughput with a 1000 SYN/s attack (untrusted subnet) ===\n\n");

  for (const char* doc : {"/doc1b", "/doc10k"}) {
    std::printf("--- %s document ---\n", doc);
    std::printf("%8s %12s %16s %14s %18s\n", "clients", "Acct", "Acct+SYNattack", "Acct_PD",
                "Acct_PD+SYNattack");
    for (int n : clients) {
      std::printf("%8d %12.1f %16.1f %14.1f %18.1f\n", n,
                  sweep.Result(CellId(doc, kVariants[0], n)).conns_per_sec,
                  sweep.Result(CellId(doc, kVariants[1], n)).conns_per_sec,
                  sweep.Result(CellId(doc, kVariants[2], n)).conns_per_sec,
                  sweep.Result(CellId(doc, kVariants[3], n)).conns_per_sec);
    }
    std::printf("\n");
  }

  // Slowdown summary at saturation (the 64-client cells above).
  std::printf("--- Slowdown under attack (64 clients, 1-byte) ---\n");
  const ExperimentResult& a0 = sweep.Result(CellId("/doc1b", kVariants[0], 64));
  const ExperimentResult& a1 = sweep.Result(CellId("/doc1b", kVariants[1], 64));
  const ExperimentResult& p0 = sweep.Result(CellId("/doc1b", kVariants[2], 64));
  const ExperimentResult& p1 = sweep.Result(CellId("/doc1b", kVariants[3], 64));
  std::printf("Accounting:    %.1f%%  (paper: <5%%)\n",
              100.0 * (1.0 - a1.conns_per_sec / a0.conns_per_sec));
  std::printf("Accounting_PD: %.1f%%  (paper: <15%%)\n",
              100.0 * (1.0 - p1.conns_per_sec / p0.conns_per_sec));
  std::printf("SYNs sent (window incl. warmup): %llu, dropped at demux: %llu\n",
              static_cast<unsigned long long>(a1.syns_sent),
              static_cast<unsigned long long>(a1.syns_dropped_at_demux));
  return sweep.failed_count() == 0 ? 0 : 1;
}
