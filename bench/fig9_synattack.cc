// Figure 9: best-effort client performance with and without a SYN attack
// of 1000 SYNs/second from the untrusted subnet.
//
// Policy (paper §4.4.1): separate passive paths for the trusted and
// untrusted subnets; the untrusted passive path tracks its SYN_RECVD count
// and over-budget SYNs are dropped at demux time.
//
// Paper shapes: best-effort slows <5% under Accounting, <15% under
// Accounting_PD (the extra loss is interrupt + demux time per attack
// datagram, aggravated by TLB invalidation); 1K results within 3% of 1B.

#include <cstdio>

#include "bench/bench_util.h"

using namespace escort;

namespace {

ExperimentResult RunPoint(ServerConfig config, const char* doc, int clients, double syn_rate) {
  ExperimentSpec spec;
  spec.config = config;
  spec.clients = clients;
  spec.doc = doc;
  spec.syn_attack_rate = syn_rate;
  return RunExperiment(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> clients = quick ? std::vector<int>{8, 64} : ClientSweep();

  std::printf(
      "=== Figure 9: client throughput with a 1000 SYN/s attack (untrusted subnet) ===\n\n");

  for (const char* doc : {"/doc1b", "/doc10k"}) {
    std::printf("--- %s document ---\n", doc);
    std::printf("%8s %12s %16s %14s %18s\n", "clients", "Acct", "Acct+SYNattack", "Acct_PD",
                "Acct_PD+SYNattack");
    for (int n : clients) {
      ExperimentResult a0 = RunPoint(ServerConfig::kAccounting, doc, n, 0);
      ExperimentResult a1 = RunPoint(ServerConfig::kAccounting, doc, n, 1000);
      ExperimentResult p0 = RunPoint(ServerConfig::kAccountingPd, doc, n, 0);
      ExperimentResult p1 = RunPoint(ServerConfig::kAccountingPd, doc, n, 1000);
      std::printf("%8d %12.1f %16.1f %14.1f %18.1f\n", n, a0.conns_per_sec, a1.conns_per_sec,
                  p0.conns_per_sec, p1.conns_per_sec);
    }
    std::printf("\n");
  }

  // Slowdown summary at saturation.
  std::printf("--- Slowdown under attack (64 clients, 1-byte) ---\n");
  ExperimentResult a0 = RunPoint(ServerConfig::kAccounting, "/doc1b", 64, 0);
  ExperimentResult a1 = RunPoint(ServerConfig::kAccounting, "/doc1b", 64, 1000);
  ExperimentResult p0 = RunPoint(ServerConfig::kAccountingPd, "/doc1b", 64, 0);
  ExperimentResult p1 = RunPoint(ServerConfig::kAccountingPd, "/doc1b", 64, 1000);
  std::printf("Accounting:    %.1f%%  (paper: <5%%)\n",
              100.0 * (1.0 - a1.conns_per_sec / a0.conns_per_sec));
  std::printf("Accounting_PD: %.1f%%  (paper: <15%%)\n",
              100.0 * (1.0 - p1.conns_per_sec / p0.conns_per_sec));
  std::printf("SYNs sent (window incl. warmup): %llu, dropped at demux: %llu\n",
              static_cast<unsigned long long>(a1.syns_sent),
              static_cast<unsigned long long>(a1.syns_dropped_at_demux));
  return 0;
}
