// Extension experiment: statistical attack detection (src/server/detect.h).
//
// The paper's defenses decide on a single event: a SYN over budget is
// dropped, a thread 2 ms past its budget is killed. This bench measures the
// *online detection* layer on the same two attack grids:
//
//  * Figure 9's SYN flood — the per-subnet SPRT folds connection outcomes
//    (completed vs. dropped/half-open) and blacklists the attacking subnet
//    after a handful of observations; detection latency is the time from
//    first attack packet to the SPRT's H1 decision.
//
//  * Figure 11's runaway CGI — the ledger-baseline detector learns
//    per-request-class cycle/page/IOBuffer distributions during warmup and
//    pathKills k-sigma outliers, typically well before the static 2 ms
//    budget fires.
//
// Every cell reports detections / true+false positives / first-detection
// latency in the bench JSON `detection` block; decisions are bit-identical
// across --jobs and --shards (the decision_digest is the witness the CI
// detection-determinism step byte-diffs).

#include <cstdio>
#include <string>
#include <vector>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

std::string CellId(const char* grid, DetectMode mode, int axis) {
  return std::string(grid) + "/" + DetectModeName(mode) + "/" + std::to_string(axis);
}

void PrintRow(const Sweep& sweep, const char* grid, int axis) {
  for (DetectMode mode : {DetectMode::kOff, DetectMode::kSprt, DetectMode::kBaseline}) {
    const ExperimentResult& r = sweep.Result(CellId(grid, mode, axis));
    const DetectionStats& d = r.detection;
    std::printf("%8d %9s | %10.1f %7llu %7llu | %6llu %4llu %4llu %12.2f\n", axis,
                DetectModeName(mode), r.conns_per_sec,
                static_cast<unsigned long long>(r.paths_killed),
                static_cast<unsigned long long>(r.syns_dropped_at_demux),
                static_cast<unsigned long long>(d.detections),
                static_cast<unsigned long long>(d.true_positives),
                static_cast<unsigned long long>(d.false_positives), d.first_detection_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);

  // Figure 9 axis: SYN-flood rate (SYNs/s) against 8 best-effort clients.
  const std::vector<int> syn_rates =
      opts.quick ? std::vector<int>{1000} : std::vector<int>{200, 1000, 5000};
  // Figure 11 axis: runaway-CGI attacker count against 32 clients.
  const std::vector<int> cgi_counts =
      opts.quick ? std::vector<int>{10} : std::vector<int>{1, 10, 25};

  Sweep sweep("ext_detection");
  for (int rate : syn_rates) {
    for (DetectMode mode : {DetectMode::kOff, DetectMode::kSprt, DetectMode::kBaseline}) {
      ExperimentSpec spec;
      spec.config = ServerConfig::kAccounting;
      spec.clients = 8;
      spec.doc = "/doc1b";
      spec.syn_attack_rate = rate;
      spec.detect.mode = mode;
      sweep.Add(CellId("syn", mode, rate), spec).tags = {
          {"grid", "fig9"}, {"detect", DetectModeName(mode)}};
    }
  }
  for (int attackers : cgi_counts) {
    for (DetectMode mode : {DetectMode::kOff, DetectMode::kSprt, DetectMode::kBaseline}) {
      ExperimentSpec spec;
      spec.config = ServerConfig::kAccounting;
      spec.clients = 32;
      spec.doc = "/doc1b";
      spec.cgi_attackers = attackers;
      spec.detect.mode = mode;
      sweep.Add(CellId("cgi", mode, attackers), spec).tags = {
          {"grid", "fig11"}, {"detect", DetectModeName(mode)}};
    }
  }
  sweep.Run(opts);

  std::printf("=== Extension: statistical attack detection (SPRT + ledger baselines) ===\n");
  std::printf("Detections chain into the §4.4.4 blacklist; `latency` is attack start to\n"
              "first true-positive decision. `off` rows are the static-policy baseline.\n\n");
  std::printf("%8s %9s | %10s %7s %7s | %6s %4s %4s %12s\n", "syn/s", "detect", "conns/s",
              "kills", "drops", "det", "TP", "FP", "latency(ms)");
  PrintHeaderRule();
  for (int rate : syn_rates) {
    PrintRow(sweep, "syn", rate);
  }
  std::printf("\n%8s %9s | %10s %7s %7s | %6s %4s %4s %12s\n", "cgi", "detect", "conns/s",
              "kills", "drops", "det", "TP", "FP", "latency(ms)");
  PrintHeaderRule();
  for (int attackers : cgi_counts) {
    PrintRow(sweep, "cgi", attackers);
  }
  std::printf("\nThe SPRT decides the SYN subnet in a few outcome observations; the baseline\n"
              "detector flags runaway CGI paths as cycle outliers and kills them before the\n"
              "static 2 ms budget, at zero false positives on the learned classes.\n");
  return sweep.failed_count() == 0 ? 0 : 1;
}
