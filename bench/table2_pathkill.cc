// Table 2: cycles needed to destroy a non-cooperating path, measured from
// the moment the runaway thread is detected until all resources associated
// with the path — in every protection domain it crosses — are reclaimed.
//
// Paper: Accounting 17,951; Accounting_PD 111,568; Linux (kill+waitpid,
// not directly comparable) 11,003.

#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

CellMetrics KillCostCell(const ExperimentSpec& spec) {
  KillCostResult k = RunKillCost(spec.config, 10);
  CellMetrics m;
  m.experiment.paths_killed = k.kills;
  m.experiment.kill_cost_mean = k.mean_cycles;
  m.extra = {{"kill_cost_min", k.min_cycles},
             {"kill_cost_max", k.max_cycles},
             {"kills", static_cast<double>(k.kills)}};
  return m;
}

// Context the paper gives: the full-PD kill is ~10% of the cycles used to
// satisfy a single 1-byte request.
CellMetrics PdRequestCostCell(const ExperimentSpec& spec) {
  AccuracyResult a = RunAccountingAccuracy(spec.config, 20);
  CellMetrics m;
  m.experiment.ledger = a.ledger;
  m.extra = {{"requests", static_cast<double>(a.requests)}};
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);

  Sweep sweep("table2_pathkill");
  for (ServerConfig config : {ServerConfig::kAccounting, ServerConfig::kAccountingPd}) {
    ExperimentSpec spec;
    spec.config = config;
    spec.clients = 0;
    spec.cgi_attackers = 1;
    sweep.AddCustom(std::string("kill/") + ServerConfigName(config), spec, KillCostCell).tags = {
        {"measurement", "kill_cost"}};
  }
  {
    ExperimentSpec spec;
    spec.config = ServerConfig::kAccountingPd;
    spec.clients = 0;
    sweep.AddCustom("request_cost/pd", spec, PdRequestCostCell).tags = {
        {"measurement", "serial_accuracy"}};
  }
  sweep.Run(opts);

  std::printf("=== Table 2: cycles to destroy a non-cooperative path ===\n\n");

  const ExperimentResult& acct = sweep.Result("kill/Accounting");
  const ExperimentResult& pd = sweep.Result("kill/Accounting_PD");
  Cycles linux_cost = CostModel::Calibrated().linux_kill_process;

  std::printf("%-16s %12s %12s %8s\n", "configuration", "cycles", "paper", "kills");
  PrintHeaderRule();
  std::printf("%-16s %12s %12s %8llu\n", "Accounting",
              WithCommas(static_cast<uint64_t>(acct.kill_cost_mean)).c_str(), "17,951",
              static_cast<unsigned long long>(acct.paths_killed));
  std::printf("%-16s %12s %12s %8llu\n", "Accounting_PD",
              WithCommas(static_cast<uint64_t>(pd.kill_cost_mean)).c_str(), "111,568",
              static_cast<unsigned long long>(pd.paths_killed));
  std::printf("%-16s %12s %12s %8s\n", "Linux (model)", WithCommas(linux_cost).c_str(), "11,003",
              "-");
  std::printf("\n(The Linux row is the paper's kill-to-waitpid reference; the paper itself\n"
              " cautions it is not directly comparable — a process kill does NOT reclaim\n"
              " kernel-held resources such as device buffers or connection state.)\n");

  const ExperimentResult& pd_req = sweep.Result("request_cost/pd");
  double req_cycles = static_cast<double>(pd_req.ledger.Total()) /
                      sweep.Extra("request_cost/pd", "requests");
  std::printf("\nAccounting_PD kill cost vs one 1-byte request: %.1f%%  (paper: ~10%%)\n",
              100.0 * pd.kill_cost_mean / req_cycles);
  return sweep.failed_count() == 0 ? 0 : 1;
}
