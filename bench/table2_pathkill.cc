// Table 2: cycles needed to destroy a non-cooperating path, measured from
// the moment the runaway thread is detected until all resources associated
// with the path — in every protection domain it crosses — are reclaimed.
//
// Paper: Accounting 17,951; Accounting_PD 111,568; Linux (kill+waitpid,
// not directly comparable) 11,003.

#include <cstdio>

#include "bench/bench_util.h"

using namespace escort;

int main() {
  std::printf("=== Table 2: cycles to destroy a non-cooperative path ===\n\n");

  KillCostResult acct = RunKillCost(ServerConfig::kAccounting, 10);
  KillCostResult pd = RunKillCost(ServerConfig::kAccountingPd, 10);
  Cycles linux_cost = CostModel::Calibrated().linux_kill_process;

  std::printf("%-16s %12s %12s %8s\n", "configuration", "cycles", "paper", "kills");
  PrintHeaderRule();
  std::printf("%-16s %12s %12s %8llu\n", "Accounting", WithCommas((uint64_t)acct.mean_cycles).c_str(),
              "17,951", static_cast<unsigned long long>(acct.kills));
  std::printf("%-16s %12s %12s %8llu\n", "Accounting_PD",
              WithCommas((uint64_t)pd.mean_cycles).c_str(), "111,568",
              static_cast<unsigned long long>(pd.kills));
  std::printf("%-16s %12s %12s %8s\n", "Linux (model)", WithCommas(linux_cost).c_str(), "11,003",
              "-");
  std::printf("\n(The Linux row is the paper's kill-to-waitpid reference; the paper itself\n"
              " cautions it is not directly comparable — a process kill does NOT reclaim\n"
              " kernel-held resources such as device buffers or connection state.)\n");

  // Context the paper gives: the full-PD kill is ~10% of the cycles used to
  // satisfy a single 1-byte request.
  AccuracyResult pd_req = RunAccountingAccuracy(ServerConfig::kAccountingPd, 20);
  double req_cycles = static_cast<double>(pd_req.ledger.Total()) / pd_req.requests;
  std::printf("\nAccounting_PD kill cost vs one 1-byte request: %.1f%%  (paper: ~10%%)\n",
              100.0 * pd.mean_cycles / req_cycles);
  return 0;
}
