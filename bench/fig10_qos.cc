// Figure 10: best-effort client performance with and without a 1 MB/s QoS
// stream sustained by the proportional-share scheduler.
//
// Paper shapes: the stream's ten-second average is always within 1% of the
// target; best-effort traffic slows ~15% under Accounting and ~50% under
// Accounting_PD (sustaining the stream simply costs the PD configuration
// far more cycles). The paper notes accounting is *required* for QoS, so
// there is no Scout/Linux row.

#include <cstdio>

#include "bench/bench_util.h"

using namespace escort;

namespace {

ExperimentResult RunPoint(ServerConfig config, const char* doc, int clients, bool qos) {
  ExperimentSpec spec;
  spec.config = config;
  spec.clients = clients;
  spec.doc = doc;
  spec.qos_stream = qos;
  return RunExperiment(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const std::vector<int> clients = quick ? std::vector<int>{8, 64} : ClientSweep();

  std::printf("=== Figure 10: client throughput with and without a 1 MB/s QoS stream ===\n\n");

  double worst_qos_err = 0.0;
  for (const char* doc : {"/doc1b", "/doc10k"}) {
    std::printf("--- %s document ---\n", doc);
    std::printf("%8s %12s %14s %12s %14s %12s\n", "clients", "Acct", "Acct+QoS", "Acct_PD",
                "Acct_PD+QoS", "QoS MB/s");
    for (int n : clients) {
      ExperimentResult a0 = RunPoint(ServerConfig::kAccounting, doc, n, false);
      ExperimentResult a1 = RunPoint(ServerConfig::kAccounting, doc, n, true);
      ExperimentResult p0 = RunPoint(ServerConfig::kAccountingPd, doc, n, false);
      ExperimentResult p1 = RunPoint(ServerConfig::kAccountingPd, doc, n, true);
      double qos_mbs = p1.qos_bytes_per_sec / 1e6;
      worst_qos_err = std::max(worst_qos_err, std::abs(1.0 - a1.qos_bytes_per_sec / 1e6));
      worst_qos_err = std::max(worst_qos_err, std::abs(1.0 - qos_mbs));
      std::printf("%8d %12.1f %14.1f %12.1f %14.1f %12.3f\n", n, a0.conns_per_sec,
                  a1.conns_per_sec, p0.conns_per_sec, p1.conns_per_sec, qos_mbs);
    }
    std::printf("\n");
  }

  std::printf("--- Best-effort slowdown with the stream (64 clients, 1-byte) ---\n");
  ExperimentResult a0 = RunPoint(ServerConfig::kAccounting, "/doc1b", 64, false);
  ExperimentResult a1 = RunPoint(ServerConfig::kAccounting, "/doc1b", 64, true);
  ExperimentResult p0 = RunPoint(ServerConfig::kAccountingPd, "/doc1b", 64, false);
  ExperimentResult p1 = RunPoint(ServerConfig::kAccountingPd, "/doc1b", 64, true);
  std::printf("Accounting:    %.1f%%  (paper: ~15%%)\n",
              100.0 * (1.0 - a1.conns_per_sec / a0.conns_per_sec));
  std::printf("Accounting_PD: %.1f%%  (paper: ~50%%)\n",
              100.0 * (1.0 - p1.conns_per_sec / p0.conns_per_sec));
  std::printf("Worst stream deviation from 1 MB/s: %.2f%%  (paper: within 1%%)\n",
              100.0 * worst_qos_err);
  return 0;
}
