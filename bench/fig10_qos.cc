// Figure 10: best-effort client performance with and without a 1 MB/s QoS
// stream sustained by the proportional-share scheduler.
//
// Paper shapes: the stream's ten-second average is always within 1% of the
// target; best-effort traffic slows ~15% under Accounting and ~50% under
// Accounting_PD (sustaining the stream simply costs the PD configuration
// far more cycles). The paper notes accounting is *required* for QoS, so
// there is no Scout/Linux row.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

struct Variant {
  const char* key;
  ServerConfig config;
  bool qos;
};

const Variant kVariants[] = {
    {"acct", ServerConfig::kAccounting, false},
    {"acct_qos", ServerConfig::kAccounting, true},
    {"pd", ServerConfig::kAccountingPd, false},
    {"pd_qos", ServerConfig::kAccountingPd, true},
};

std::string CellId(const char* doc, const Variant& v, int clients) {
  return std::string(doc) + "/" + v.key + "/c" + std::to_string(clients);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> clients = opts.quick ? std::vector<int>{8, 64} : ClientSweep();

  Sweep sweep("fig10_qos");
  for (const char* doc : {"/doc1b", "/doc10k"}) {
    for (int n : clients) {
      for (const Variant& v : kVariants) {
        ExperimentSpec spec;
        spec.config = v.config;
        spec.clients = n;
        spec.doc = doc;
        spec.qos_stream = v.qos;
        SweepCell& cell = sweep.Add(CellId(doc, v, n), spec);
        cell.tags = {{"doc", doc}, {"variant", v.key}};
      }
    }
  }
  sweep.Run(opts);

  std::printf("=== Figure 10: client throughput with and without a 1 MB/s QoS stream ===\n\n");

  double worst_qos_err = 0.0;
  for (const char* doc : {"/doc1b", "/doc10k"}) {
    std::printf("--- %s document ---\n", doc);
    std::printf("%8s %12s %14s %12s %14s %12s\n", "clients", "Acct", "Acct+QoS", "Acct_PD",
                "Acct_PD+QoS", "QoS MB/s");
    for (int n : clients) {
      const ExperimentResult& a0 = sweep.Result(CellId(doc, kVariants[0], n));
      const ExperimentResult& a1 = sweep.Result(CellId(doc, kVariants[1], n));
      const ExperimentResult& p0 = sweep.Result(CellId(doc, kVariants[2], n));
      const ExperimentResult& p1 = sweep.Result(CellId(doc, kVariants[3], n));
      double qos_mbs = p1.qos_bytes_per_sec / 1e6;
      worst_qos_err = std::max(worst_qos_err, std::abs(1.0 - a1.qos_bytes_per_sec / 1e6));
      worst_qos_err = std::max(worst_qos_err, std::abs(1.0 - qos_mbs));
      std::printf("%8d %12.1f %14.1f %12.1f %14.1f %12.3f\n", n, a0.conns_per_sec,
                  a1.conns_per_sec, p0.conns_per_sec, p1.conns_per_sec, qos_mbs);
    }
    std::printf("\n");
  }

  std::printf("--- Best-effort slowdown with the stream (64 clients, 1-byte) ---\n");
  const ExperimentResult& a0 = sweep.Result(CellId("/doc1b", kVariants[0], 64));
  const ExperimentResult& a1 = sweep.Result(CellId("/doc1b", kVariants[1], 64));
  const ExperimentResult& p0 = sweep.Result(CellId("/doc1b", kVariants[2], 64));
  const ExperimentResult& p1 = sweep.Result(CellId("/doc1b", kVariants[3], 64));
  std::printf("Accounting:    %.1f%%  (paper: ~15%%)\n",
              100.0 * (1.0 - a1.conns_per_sec / a0.conns_per_sec));
  std::printf("Accounting_PD: %.1f%%  (paper: ~50%%)\n",
              100.0 * (1.0 - p1.conns_per_sec / p0.conns_per_sec));
  std::printf("Worst stream deviation from 1 MB/s: %.2f%%  (paper: within 1%%)\n",
              100.0 * worst_qos_err);
  return sweep.failed_count() == 0 ? 0 : 1;
}
