// Shared helpers for the paper-reproduction bench binaries.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/workload/experiment.h"

namespace escort {

inline const std::vector<int>& ClientSweep() {
  static const std::vector<int> kClients = {1, 2, 4, 8, 16, 32, 48, 64};
  return kClients;
}

struct DocSpec {
  const char* label;
  const char* path;
};

inline const std::vector<DocSpec>& DocSweep() {
  static const std::vector<DocSpec> kDocs = {
      {"1-byte", "/doc1b"}, {"1K-byte", "/doc1k"}, {"10K-byte", "/doc10k"}};
  return kDocs;
}

inline void PrintHeaderRule() {
  std::printf("--------------------------------------------------------------------------\n");
}

}  // namespace escort

#endif  // BENCH_BENCH_UTIL_H_
