// Micro-benchmarks (google-benchmark) over the metrics plane's hot-path
// primitives: the per-site cost budget that lets instrumentation stay
// always-on in the fig benches.
//
//  * counter Add / gauge Set through the null-safe helpers — the cost a
//    site pays when metrics are ENABLED,
//  * the same helpers against a null pointer — the cost when DISABLED
//    (must stay a single predictable branch),
//  * histogram Observe — bucket index + three increments,
//  * ShardedSeries Record — the per-shard timer-occupancy path, with the
//    same-bin coalescing fast path and the bin-advance slow path,
//  * Registry Sample over a realistic metric population — the 5 ms-tick
//    cost the sampler event pays,
//  * SerializeCell — the end-of-run document cost.
//
// Wall-clock numbers are host-dependent; CI runs this for sanity, while
// the regression gate for the simulator proper stays on the ratio-based
// trajectory (tools/check_perf_regression.py).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "src/sim/metrics.h"

namespace escort {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  MetricsRegistry reg;
  MetricCounter* c = ESCORT_METRIC_COUNTER(&reg, "bm.counter", "bench");
  for (auto _ : state) {
    MetricAdd(c);
  }
  benchmark::DoNotOptimize(c->value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddDisabled(benchmark::State& state) {
  // The null-registry idiom: instrumented sites hold a null pointer when
  // collection is off. This is the cost every site pays in a run with
  // metrics disabled.
  MetricCounter* c = nullptr;
  benchmark::DoNotOptimize(c);
  for (auto _ : state) {
    MetricAdd(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_GaugeSet(benchmark::State& state) {
  MetricsRegistry reg;
  MetricGauge* g = ESCORT_METRIC_GAUGE(&reg, "bm.gauge", "bench");
  int64_t v = 0;
  for (auto _ : state) {
    MetricSet(g, ++v);
  }
  benchmark::DoNotOptimize(g->value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry reg;
  MetricHistogram* h = ESCORT_METRIC_HISTOGRAM(&reg, "bm.hist", "bench");
  // A deterministic spread of magnitudes exercises the log2 loop depth.
  uint64_t v = 1;
  for (auto _ : state) {
    MetricObserve(h, v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 32;  // cheap LCG walk
  }
  benchmark::DoNotOptimize(h->count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

void BM_ShardedRecordSameBin(benchmark::State& state) {
  // The coalescing fast path: repeated deltas inside one time bin append
  // nothing, they bump the lane tail in place.
  ShardedSeries s(4, 1 << 20);
  for (auto _ : state) {
    MetricRecord(&s, 0, 1000, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedRecordSameBin);

void BM_ShardedRecordAdvancingBins(benchmark::State& state) {
  // The slow path: every record opens a fresh bin (vector append).
  const Cycles interval = 1024;
  for (auto _ : state) {
    state.PauseTiming();
    ShardedSeries s(4, interval);
    state.ResumeTiming();
    Cycles t = 0;
    for (int i = 0; i < 1024; ++i) {
      MetricRecord(&s, static_cast<uint32_t>(i & 3), t, 1);
      t += interval;
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ShardedRecordAdvancingBins);

void BM_RegistrySample(benchmark::State& state) {
  // A realistic population (the instrumented run registers ~20 metrics);
  // the tick cost is what the 5 ms sampler event pays on stream 0.
  MetricsRegistry reg;
  const int metrics = static_cast<int>(state.range(0));
  for (int i = 0; i < metrics; ++i) {
    ESCORT_METRIC_COUNTER(&reg, "bm.counter." + std::to_string(i), "bench")
        ->Add(static_cast<uint64_t>(i));
    ESCORT_METRIC_GAUGE(&reg, "bm.gauge." + std::to_string(i), "bench")
        ->Set(i);
  }
  Cycles now = 0;
  for (auto _ : state) {
    reg.Sample(now += 1500000);
  }
  state.SetItemsProcessed(state.iterations() * metrics * 2);
}
BENCHMARK(BM_RegistrySample)->Arg(8)->Arg(32);

void BM_SerializeCell(benchmark::State& state) {
  MetricsRegistry reg;
  for (int i = 0; i < 16; ++i) {
    MetricCounter* c =
        ESCORT_METRIC_COUNTER(&reg, "bm.counter." + std::to_string(i), "bench");
    MetricHistogram* h =
        ESCORT_METRIC_HISTOGRAM(&reg, "bm.hist." + std::to_string(i), "bench");
    for (int k = 0; k < 256; ++k) {
      c->Add(1);
      h->Observe(static_cast<uint64_t>(k * k));
    }
  }
  for (Cycles t = 0; t < 100; ++t) reg.Sample(t * 1500000);
  for (auto _ : state) {
    std::string doc = reg.SerializeCell("bm");
    benchmark::DoNotOptimize(doc.data());
  }
}
BENCHMARK(BM_SerializeCell);

}  // namespace
}  // namespace escort

BENCHMARK_MAIN();
