// Micro-benchmarks (google-benchmark) over the sharded event queue's
// scheduling hot path — the PR-7 perf trajectory at its smallest scale.
// Three traffic shapes, each swept over shard count x adaptive lookahead:
//
//  * ping-pong: two streams exchanging sequenced messages at exactly the
//    lookahead latency — the worst case for windowing (every window holds
//    one event per side) and the case adaptive horizons help least,
//  * fan-out: a hub stream broadcasting to many workers each round trip —
//    mailbox drain and cross-shard insert throughput,
//  * timer storm: independent self-rescheduling timers with no cross-
//    stream traffic at all — the best case for adaptive horizons, which
//    collapse the lockstep t_min+L windows into one window per shard
//    batch.
//
// Wall-clock events/sec here measure the simulator itself (host-machine
// dependent); the committed trajectory gate works on ratios instead —
// see tools/check_perf_regression.py and bench/snapshots/.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"

namespace escort {
namespace {

constexpr Cycles kLookahead = 100;

// One simulated ping-pong match: `hops` sequenced round trips between two
// streams, each delivery landing exactly one lookahead later.
uint64_t RunPingPong(int shards, bool adaptive, int hops) {
  ShardedEventQueue eq(shards, kLookahead, adaptive);
  EventQueue::StreamId a = eq.NewStream(1);
  EventQueue::StreamId b = eq.NewStream(2);
  int remaining = hops;
  std::function<void(EventQueue::StreamId, EventQueue::StreamId)> volley =
      [&](EventQueue::StreamId from, EventQueue::StreamId to) {
        if (remaining-- <= 0) {
          return;
        }
        eq.PostSequenced([&eq, &volley, from, to](Cycles send_time) {
          eq.ScheduleAtFrom(to, send_time + kLookahead,
                            [&volley, from, to] { volley(to, from); });
        });
      };
  {
    EventQueue::StreamScope scope(&eq, a);
    eq.ScheduleAt(1, [&] { volley(a, b); });
  }
  eq.RunToCompletion();
  return eq.fired_count();
}

// One fan-out round: the hub posts a sequenced broadcast to every worker
// stream, each worker replies, and the hub re-arms until `rounds` is spent.
uint64_t RunFanOut(int shards, bool adaptive, int workers, int rounds) {
  ShardedEventQueue eq(shards, kLookahead, adaptive);
  EventQueue::StreamId hub = eq.NewStream(1);
  std::vector<EventQueue::StreamId> crew;
  crew.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    crew.push_back(eq.NewStream(1 + i % (shards > 1 ? shards - 1 : 1)));
  }
  int remaining = rounds;
  std::function<void()> broadcast = [&] {
    if (remaining-- <= 0) {
      return;
    }
    for (EventQueue::StreamId w : crew) {
      eq.PostSequenced([&eq, w](Cycles send_time) {
        eq.ScheduleAtFrom(w, send_time + kLookahead, [] {});
      });
    }
    eq.PostSequenced([&eq, &broadcast, hub](Cycles send_time) {
      eq.ScheduleAtFrom(hub, send_time + kLookahead, [&broadcast] { broadcast(); });
    });
  };
  {
    EventQueue::StreamScope scope(&eq, hub);
    eq.ScheduleAt(1, [&] { broadcast(); });
  }
  eq.RunToCompletion();
  return eq.fired_count();
}

// Independent periodic timers, no cross-stream traffic: pure per-shard
// work where a conservative scheduler still pays one barrier per t_min+L.
uint64_t RunTimerStorm(int shards, bool adaptive, int timers, Cycles horizon) {
  ShardedEventQueue eq(shards, kLookahead, adaptive);
  std::vector<std::function<void()>> ticks(static_cast<size_t>(timers));
  for (int i = 0; i < timers; ++i) {
    EventQueue::StreamId s = eq.NewStream(1 + i % (shards > 1 ? shards - 1 : 1));
    // Coprime-ish periods so shards stay out of phase.
    Cycles period = static_cast<Cycles>(37 + 13 * (i % 7));
    ticks[static_cast<size_t>(i)] = [&eq, i, period, &ticks, horizon] {
      Cycles next = eq.now() + period;
      if (next < horizon) {
        eq.ScheduleAt(next, [&ticks, i] { ticks[static_cast<size_t>(i)](); });
      }
    };
    EventQueue::StreamScope scope(&eq, s);
    eq.ScheduleAt(static_cast<Cycles>(1 + i), [&ticks, i] { ticks[static_cast<size_t>(i)](); });
  }
  eq.RunUntil(horizon);
  return eq.fired_count();
}

void BM_PingPong(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  uint64_t events = 0;
  for (auto _ : state) {
    events += RunPingPong(shards, adaptive, 2000);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_PingPong)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "adaptive"});

void BM_FanOut(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  uint64_t events = 0;
  for (auto _ : state) {
    events += RunFanOut(shards, adaptive, 16, 200);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_FanOut)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "adaptive"});

void BM_TimerStorm(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  uint64_t events = 0;
  for (auto _ : state) {
    events += RunTimerStorm(shards, adaptive, 16, 200000);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}
BENCHMARK(BM_TimerStorm)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"shards", "adaptive"});

}  // namespace
}  // namespace escort

BENCHMARK_MAIN();
