// Figure 8 (scale axis): how far the cell scales in *clients*, not load.
//
// The original figure stops at 64 parallel clients — enough to saturate
// the server. This bench instead grows the client population to a million
// concurrent machines against one server cell, which is only feasible
// because connections are slab-indexed flyweights (src/elib/slab.h) and
// timers live in per-shard hierarchical wheels (src/sim/timer_wheel.h):
// the JSON `memory` block records the reserved bytes per client that the
// perf gate (tools/check_perf_regression.py --check-scale) pins.
//
// The grid also carries one heap-timer comparison cell: with the wheel
// off, every workload metric must be bit-identical — only `memory` and
// `perf` may move. The binary enforces that equality itself.

#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

std::string CellId(int clients, bool wheel) {
  return "c" + std::to_string(clients) + (wheel ? "" : "-heap");
}

ExperimentSpec ScaleSpec(int clients, bool wheel) {
  ExperimentSpec spec;
  spec.config = ServerConfig::kAccounting;
  spec.clients = clients;
  spec.doc = "/doc1b";
  spec.timer_wheel = wheel;
  // Short protocol: at these populations the server saturates within
  // milliseconds, and the measured quantity is footprint, not rate.
  spec.warmup_s = 0.05;
  spec.window_s = 0.2;
  return spec;
}

// The workload-visible slice of a result: everything the timer backend is
// NOT allowed to change. (memory/perf/shard_profile are exempt, exactly
// like check_bench_json.py --expect-equal.)
bool SameWorkloadMetrics(const ExperimentResult& a, const ExperimentResult& b) {
  return a.conns_per_sec == b.conns_per_sec && a.completions_total == b.completions_total &&
         a.client_failures == b.client_failures && a.window_cycles == b.window_cycles &&
         a.paths_killed == b.paths_killed && a.pd_crossings == b.pd_crossings &&
         a.ledger.Total() == b.ledger.Total();
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> clients =
      opts.quick ? std::vector<int>{1000, 10000} : std::vector<int>{1000, 10000, 100000, 1000000};
  const int compare_at = 10000;  // wheel-vs-heap equivalence cell

  Sweep sweep("fig8_scale");
  for (int n : clients) {
    SweepCell& cell = sweep.Add(CellId(n, true), ScaleSpec(n, true));
    cell.tags = {{"timers", "wheel"}};
  }
  SweepCell& heap_cell = sweep.Add(CellId(compare_at, false), ScaleSpec(compare_at, false));
  heap_cell.tags = {{"timers", "heap"}};
  sweep.Run(opts);

  std::printf("=== Figure 8 (scale): one cell, up to a million concurrent clients ===\n\n");
  std::printf("%9s %10s %12s %10s %10s %11s %13s\n", "clients", "conns/s", "completions",
              "peer_hw", "pcb_hw", "timers_hw", "bytes/client");
  for (int n : clients) {
    const ExperimentResult& r = sweep.Result(CellId(n, true));
    const MemoryProfile& m = r.memory;
    double bytes_per_client =
        static_cast<double>(m.pcb_bytes_reserved + m.peer_bytes_reserved +
                            m.timer_bytes_reserved) /
        static_cast<double>(n);
    std::printf("%9d %10.1f %12llu %10llu %10llu %11llu %13.1f\n", n, r.conns_per_sec,
                static_cast<unsigned long long>(r.completions_total),
                static_cast<unsigned long long>(m.peer_high_water),
                static_cast<unsigned long long>(m.pcb_high_water),
                static_cast<unsigned long long>(m.timer_high_water), bytes_per_client);
  }

  // Wheel-vs-heap: the backends must agree on every workload metric.
  const ExperimentResult& wheel = sweep.Result(CellId(compare_at, true));
  const ExperimentResult& heap = sweep.Result(CellId(compare_at, false));
  bool identical = SameWorkloadMetrics(wheel, heap);
  std::printf("\n--- Timer backend equivalence (%d clients) ---\n", compare_at);
  std::printf("wheel: %.1f conn/s, %llu timers armed peak, heap fallback: %.1f conn/s\n",
              wheel.conns_per_sec,
              static_cast<unsigned long long>(wheel.memory.timer_high_water),
              heap.conns_per_sec);
  std::printf("workload metrics bit-identical: %s\n", identical ? "yes" : "NO — BUG");

  return sweep.failed_count() == 0 && identical ? 0 : 1;
}
