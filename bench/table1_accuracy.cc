// Table 1: accounting accuracy — the average number of cycles spent serving
// 100 serial requests for a one-byte document, broken down by owner.
//
// Paper (Accounting / Accounting_PD):
//   Total Measured     402,033 / 1,123,195
//   Idle               201,493 (50%) / 9,825 (1%)
//   Passive SYN Path    11,223 (3%)  / 78,882 (7%)
//   Main Active Path   188,685 (47%) / 1,033,772 (92%)
//   TCP Master Event        38 (0%)  / 514 (0%)
//   Softclock               92 (0%)  / 200 (0%)
//   Total Accounted    402,031 (100%) / 1,123,193 (100%)
//
// The headline property: Escort accounts for virtually every cycle (Total
// Accounted == Total Measured) and >92% of non-idle cycles land on the
// active path serving the request.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace escort;

namespace {

struct Row {
  const char* label;
  Cycles acct;
  Cycles acct_pd;
};

Cycles PerRequest(Cycles total, uint64_t requests) { return total / requests; }

}  // namespace

int main() {
  std::printf("=== Table 1: cycles per one-byte request, by owner (100 serial requests) ===\n\n");

  AccuracyResult acct = RunAccountingAccuracy(ServerConfig::kAccounting, 100);
  AccuracyResult pd = RunAccountingAccuracy(ServerConfig::kAccountingPd, 100);

  auto get = [](const AccuracyResult& r, const std::string& label) {
    return r.ledger.Get(label);
  };
  // "Softclock" covers the kernel pseudo-owner: softclock ticks, interrupt
  // handling for dropped frames, reclamation (see DESIGN.md).
  auto kernel_row = [&](const AccuracyResult& r) {
    return get(r, "Kernel") + get(r, "ARP Path");
  };
  // The TCP master event is charged to the protection domain containing
  // TCP: "PD:tcp" in the PD configuration, the privileged domain otherwise.
  auto master_row = [&](const AccuracyResult& r) {
    return get(r, "PD:tcp") + get(r, "PD:privileged");
  };

  const uint64_t n = acct.requests;
  std::vector<Row> rows = {
      {"Idle", PerRequest(get(acct, "Idle"), n), PerRequest(get(pd, "Idle"), n)},
      {"Passive SYN Path", PerRequest(get(acct, "Passive SYN Path"), n),
       PerRequest(get(pd, "Passive SYN Path"), n)},
      {"Main Active Path", PerRequest(get(acct, "Main Active Path"), n),
       PerRequest(get(pd, "Main Active Path"), n)},
      {"TCP Master Event", PerRequest(master_row(acct), n), PerRequest(master_row(pd), n)},
      {"Softclock (kernel)", PerRequest(kernel_row(acct), n), PerRequest(kernel_row(pd), n)},
  };

  Cycles total_acct = PerRequest(acct.ledger.Total(), n);
  Cycles total_pd = PerRequest(pd.ledger.Total(), n);
  Cycles measured_acct = PerRequest(acct.total_measured, n);
  Cycles measured_pd = PerRequest(pd.total_measured, n);

  std::printf("%-22s %18s %18s\n", "Owner", "Accounting", "Accounting_PD");
  PrintHeaderRule();
  std::printf("%-22s %18s %18s\n", "Total Measured", WithCommas(measured_acct).c_str(),
              WithCommas(measured_pd).c_str());
  for (const Row& row : rows) {
    double pct_a = total_acct ? 100.0 * static_cast<double>(row.acct) / total_acct : 0;
    double pct_p = total_pd ? 100.0 * static_cast<double>(row.acct_pd) / total_pd : 0;
    std::printf("%-22s %12s (%2.0f%%) %12s (%2.0f%%)\n", row.label,
                WithCommas(row.acct).c_str(), pct_a, WithCommas(row.acct_pd).c_str(), pct_p);
  }
  PrintHeaderRule();
  std::printf("%-22s %18s %18s\n", "Total Accounted", WithCommas(total_acct).c_str(),
              WithCommas(total_pd).c_str());

  double cover_a = 100.0 * static_cast<double>(acct.ledger.Total()) /
                   static_cast<double>(acct.total_measured);
  double cover_p =
      100.0 * static_cast<double>(pd.ledger.Total()) / static_cast<double>(pd.total_measured);
  std::printf("\nAccounted/Measured: %.2f%% / %.2f%%   (paper: ~100%% both)\n", cover_a, cover_p);

  Cycles nonidle_a = total_acct - PerRequest(get(acct, "Idle"), n);
  Cycles nonidle_p = total_pd - PerRequest(get(pd, "Idle"), n);
  double active_share_a =
      nonidle_a ? 100.0 * static_cast<double>(PerRequest(get(acct, "Main Active Path"), n)) /
                      static_cast<double>(nonidle_a)
                : 0;
  double active_share_p =
      nonidle_p ? 100.0 * static_cast<double>(PerRequest(get(pd, "Main Active Path"), n)) /
                      static_cast<double>(nonidle_p)
                : 0;
  std::printf("Active path share of non-idle cycles: %.1f%% / %.1f%%  (paper: >92%%)\n",
              active_share_a, active_share_p);
  return 0;
}
