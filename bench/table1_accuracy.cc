// Table 1: accounting accuracy — the average number of cycles spent serving
// 100 serial requests for a one-byte document, broken down by owner.
//
// Paper (Accounting / Accounting_PD):
//   Total Measured     402,033 / 1,123,195
//   Idle               201,493 (50%) / 9,825 (1%)
//   Passive SYN Path    11,223 (3%)  / 78,882 (7%)
//   Main Active Path   188,685 (47%) / 1,033,772 (92%)
//   TCP Master Event        38 (0%)  / 514 (0%)
//   Softclock               92 (0%)  / 200 (0%)
//   Total Accounted    402,031 (100%) / 1,123,193 (100%)
//
// The headline property: Escort accounts for virtually every cycle (Total
// Accounted == Total Measured) and >92% of non-idle cycles land on the
// active path serving the request.

#include <cstdio>
#include <string>
#include <vector>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

struct Row {
  const char* label;
  Cycles acct;
  Cycles acct_pd;
};

Cycles PerRequest(Cycles total, uint64_t requests) { return total / requests; }

// Serial accuracy measurement as a sweep cell: the ledger rides in the
// common result block, the bracketed totals as named extras.
CellMetrics AccuracyCell(const ExperimentSpec& spec) {
  AccuracyResult a = RunAccountingAccuracy(spec.config, 100);
  CellMetrics m;
  m.experiment.ledger = a.ledger;
  m.extra = {{"total_measured", static_cast<double>(a.total_measured)},
             {"requests", static_cast<double>(a.requests)}};
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);

  Sweep sweep("table1_accuracy");
  for (ServerConfig config : {ServerConfig::kAccounting, ServerConfig::kAccountingPd}) {
    ExperimentSpec spec;
    spec.config = config;
    spec.clients = 0;
    sweep.AddCustom(ServerConfigName(config), spec, AccuracyCell).tags = {
        {"measurement", "serial_accuracy"}};
  }
  sweep.Run(opts);

  std::printf("=== Table 1: cycles per one-byte request, by owner (100 serial requests) ===\n\n");

  const std::string acct_id = ServerConfigName(ServerConfig::kAccounting);
  const std::string pd_id = ServerConfigName(ServerConfig::kAccountingPd);
  const CycleLedger& acct = sweep.Result(acct_id).ledger;
  const CycleLedger& pd = sweep.Result(pd_id).ledger;
  const uint64_t n = static_cast<uint64_t>(sweep.Extra(acct_id, "requests"));
  const Cycles measured_acct_total = static_cast<Cycles>(sweep.Extra(acct_id, "total_measured"));
  const Cycles measured_pd_total = static_cast<Cycles>(sweep.Extra(pd_id, "total_measured"));

  // "Softclock" covers the kernel pseudo-owner: softclock ticks, interrupt
  // handling for dropped frames, reclamation (see DESIGN.md).
  auto kernel_row = [](const CycleLedger& l) { return l.Get("Kernel") + l.Get("ARP Path"); };
  // The TCP master event is charged to the protection domain containing
  // TCP: "PD:tcp" in the PD configuration, the privileged domain otherwise.
  auto master_row = [](const CycleLedger& l) {
    return l.Get("PD:tcp") + l.Get("PD:privileged");
  };

  std::vector<Row> rows = {
      {"Idle", PerRequest(acct.Get("Idle"), n), PerRequest(pd.Get("Idle"), n)},
      {"Passive SYN Path", PerRequest(acct.Get("Passive SYN Path"), n),
       PerRequest(pd.Get("Passive SYN Path"), n)},
      {"Main Active Path", PerRequest(acct.Get("Main Active Path"), n),
       PerRequest(pd.Get("Main Active Path"), n)},
      {"TCP Master Event", PerRequest(master_row(acct), n), PerRequest(master_row(pd), n)},
      {"Softclock (kernel)", PerRequest(kernel_row(acct), n), PerRequest(kernel_row(pd), n)},
  };

  Cycles total_acct = PerRequest(acct.Total(), n);
  Cycles total_pd = PerRequest(pd.Total(), n);
  Cycles measured_acct = PerRequest(measured_acct_total, n);
  Cycles measured_pd = PerRequest(measured_pd_total, n);

  std::printf("%-22s %18s %18s\n", "Owner", "Accounting", "Accounting_PD");
  PrintHeaderRule();
  std::printf("%-22s %18s %18s\n", "Total Measured", WithCommas(measured_acct).c_str(),
              WithCommas(measured_pd).c_str());
  for (const Row& row : rows) {
    double pct_a = total_acct ? 100.0 * static_cast<double>(row.acct) / total_acct : 0;
    double pct_p = total_pd ? 100.0 * static_cast<double>(row.acct_pd) / total_pd : 0;
    std::printf("%-22s %12s (%2.0f%%) %12s (%2.0f%%)\n", row.label,
                WithCommas(row.acct).c_str(), pct_a, WithCommas(row.acct_pd).c_str(), pct_p);
  }
  PrintHeaderRule();
  std::printf("%-22s %18s %18s\n", "Total Accounted", WithCommas(total_acct).c_str(),
              WithCommas(total_pd).c_str());

  double cover_a =
      100.0 * static_cast<double>(acct.Total()) / static_cast<double>(measured_acct_total);
  double cover_p =
      100.0 * static_cast<double>(pd.Total()) / static_cast<double>(measured_pd_total);
  std::printf("\nAccounted/Measured: %.2f%% / %.2f%%   (paper: ~100%% both)\n", cover_a, cover_p);

  Cycles nonidle_a = total_acct - PerRequest(acct.Get("Idle"), n);
  Cycles nonidle_p = total_pd - PerRequest(pd.Get("Idle"), n);
  double active_share_a =
      nonidle_a ? 100.0 * static_cast<double>(PerRequest(acct.Get("Main Active Path"), n)) /
                      static_cast<double>(nonidle_a)
                : 0;
  double active_share_p =
      nonidle_p ? 100.0 * static_cast<double>(PerRequest(pd.Get("Main Active Path"), n)) /
                      static_cast<double>(nonidle_p)
                : 0;
  std::printf("Active path share of non-idle cycles: %.1f%% / %.1f%%  (paper: >92%%)\n",
              active_share_a, active_share_p);
  return sweep.failed_count() == 0 ? 0 : 1;
}
