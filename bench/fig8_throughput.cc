// Figure 8: basic performance of the four configurations, in connections
// per second, for 1-byte, 1K-byte and 10K-byte documents, 1..64 parallel
// clients.
//
// Paper shapes to reproduce (§4.2):
//   * base Scout ~800 conn/s at saturation, over 2x Apache/Linux (~400);
//   * fine-grain accounting costs ~8% on average;
//   * one-protection-domain-per-module costs over 4x vs Accounting;
//   * 1 KB within 3% of 1 B; 10 KB RTT-limited below 16 clients, then
//     50-60% of the 1 KB rate.
//
// Absolute numbers depend on the calibrated cost model (see DESIGN.md);
// the shape is the result.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"

using namespace escort;

namespace {

double RunPoint(bool linux_mode, ServerConfig config, const char* doc, int clients) {
  ExperimentSpec spec;
  spec.linux_server = linux_mode;
  spec.config = config;
  spec.clients = clients;
  spec.doc = doc;
  return RunExperiment(spec).conns_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const std::vector<int> clients = quick ? std::vector<int>{4, 16, 64} : ClientSweep();

  std::printf("=== Figure 8: connections/second vs number of parallel clients ===\n\n");

  for (const DocSpec& doc : DocSweep()) {
    std::printf("--- %s document ---\n", doc.label);
    std::printf("%8s %10s %10s %12s %14s\n", "clients", "Linux", "Scout", "Accounting",
                "Accounting_PD");
    for (int n : clients) {
      double linux_r = RunPoint(true, ServerConfig::kScout, doc.path, n);
      double scout = RunPoint(false, ServerConfig::kScout, doc.path, n);
      double acct = RunPoint(false, ServerConfig::kAccounting, doc.path, n);
      double acct_pd = RunPoint(false, ServerConfig::kAccountingPd, doc.path, n);
      std::printf("%8d %10.1f %10.1f %12.1f %14.1f\n", n, linux_r, scout, acct, acct_pd);
    }
    std::printf("\n");
  }

  // Overhead summary at saturation (64 clients, 1-byte doc): the prose
  // claims of §4.2.
  std::printf("--- Overhead summary (64 clients, 1-byte document) ---\n");
  double linux_r = RunPoint(true, ServerConfig::kScout, "/doc1b", 64);
  double scout = RunPoint(false, ServerConfig::kScout, "/doc1b", 64);
  double acct = RunPoint(false, ServerConfig::kAccounting, "/doc1b", 64);
  double acct_pd = RunPoint(false, ServerConfig::kAccountingPd, "/doc1b", 64);
  std::printf("Scout vs Linux:            %.2fx   (paper: >2x, 800 vs 400)\n", scout / linux_r);
  std::printf("Accounting overhead:       %.1f%%  (paper: ~8%%)\n", 100.0 * (1.0 - acct / scout));
  std::printf("Accounting_PD slowdown:    %.2fx   (paper: over 4x)\n", acct / acct_pd);
  return 0;
}
