// Figure 8: basic performance of the four configurations, in connections
// per second, for 1-byte, 1K-byte and 10K-byte documents, 1..64 parallel
// clients.
//
// Paper shapes to reproduce (§4.2):
//   * base Scout ~800 conn/s at saturation, over 2x Apache/Linux (~400);
//   * fine-grain accounting costs ~8% on average;
//   * one-protection-domain-per-module costs over 4x vs Accounting;
//   * 1 KB within 3% of 1 B; 10 KB RTT-limited below 16 clients, then
//     50-60% of the 1 KB rate.
//
// Absolute numbers depend on the calibrated cost model (see DESIGN.md);
// the shape is the result.

#include <cstdio>
#include <string>

#include "src/workload/sweep.h"

using namespace escort;

namespace {

struct Variant {
  const char* key;
  bool linux_server;
  ServerConfig config;
};

const Variant kVariants[] = {
    {"linux", true, ServerConfig::kScout},
    {"scout", false, ServerConfig::kScout},
    {"acct", false, ServerConfig::kAccounting},
    {"acct_pd", false, ServerConfig::kAccountingPd},
};

std::string CellId(const DocSpec& doc, const Variant& v, int clients) {
  return std::string(doc.label) + "/" + v.key + "/c" + std::to_string(clients);
}

}  // namespace

int main(int argc, char** argv) {
  SweepOptions opts = ParseSweepArgs(argc, argv);
  const std::vector<int> clients = opts.quick ? std::vector<int>{4, 16, 64} : ClientSweep();

  Sweep sweep("fig8_throughput");
  for (const DocSpec& doc : DocSweep()) {
    for (int n : clients) {
      for (const Variant& v : kVariants) {
        ExperimentSpec spec;
        spec.linux_server = v.linux_server;
        spec.config = v.config;
        spec.clients = n;
        spec.doc = doc.path;
        SweepCell& cell = sweep.Add(CellId(doc, v, n), spec);
        cell.tags = {{"doc", doc.label}, {"variant", v.key}};
      }
    }
  }
  sweep.Run(opts);

  std::printf("=== Figure 8: connections/second vs number of parallel clients ===\n\n");

  auto rate = [&](const DocSpec& doc, const Variant& v, int n) {
    return sweep.Result(CellId(doc, v, n)).conns_per_sec;
  };

  for (const DocSpec& doc : DocSweep()) {
    std::printf("--- %s document ---\n", doc.label);
    std::printf("%8s %10s %10s %12s %14s\n", "clients", "Linux", "Scout", "Accounting",
                "Accounting_PD");
    for (int n : clients) {
      std::printf("%8d %10.1f %10.1f %12.1f %14.1f\n", n, rate(doc, kVariants[0], n),
                  rate(doc, kVariants[1], n), rate(doc, kVariants[2], n),
                  rate(doc, kVariants[3], n));
    }
    std::printf("\n");
  }

  // Overhead summary at saturation (64 clients, 1-byte doc): the prose
  // claims of §4.2. The cells are already in the grid above.
  const DocSpec& doc1b = DocSweep()[0];
  std::printf("--- Overhead summary (64 clients, 1-byte document) ---\n");
  double linux_r = rate(doc1b, kVariants[0], 64);
  double scout = rate(doc1b, kVariants[1], 64);
  double acct = rate(doc1b, kVariants[2], 64);
  double acct_pd = rate(doc1b, kVariants[3], 64);
  std::printf("Scout vs Linux:            %.2fx   (paper: >2x, 800 vs 400)\n", scout / linux_r);
  std::printf("Accounting overhead:       %.1f%%  (paper: ~8%%)\n", 100.0 * (1.0 - acct / scout));
  std::printf("Accounting_PD slowdown:    %.2fx   (paper: over 4x)\n", acct / acct_pd);
  return sweep.failed_count() == 0 ? 0 : 1;
}
