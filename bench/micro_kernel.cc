// Micro-benchmarks (google-benchmark) over the kernel primitives, plus the
// ablations DESIGN.md calls out:
//
//  * accounting on/off cost per work item (the source of the ~8%),
//  * protection-domain crossing cost sensitivity — including the paper's
//    prediction that replacing the buggy OSF1 PAL code (full TLB
//    invalidate per crossing) would cut per-domain overhead by >2x,
//  * IOBuffer allocation: cache hit vs cold,
//  * demux cost per classified frame.
//
// These report *simulated* cycles consumed per operation via counters, and
// google-benchmark's wall-clock numbers measure the simulator itself.

#include <benchmark/benchmark.h>

#include "src/workload/experiment.h"
#include "src/workload/wire.h"

namespace escort {
namespace {

// --- Simulator throughput: work-item dispatch -------------------------------

void BM_DispatchLoop(benchmark::State& state) {
  const bool accounting = state.range(0) != 0;
  EventQueue eq;
  KernelConfig kc;
  kc.accounting = accounting;
  kc.start_softclock = false;
  Kernel kernel(&eq, kc);
  Thread* t = kernel.CreateThread(kernel.kernel_owner(), "bench");

  uint64_t items = 0;
  for (auto _ : state) {
    t->Push(1000, kKernelDomain, nullptr, true);
    eq.RunToCompletion();
    ++items;
  }
  state.counters["sim_cycles_per_item"] =
      static_cast<double>(kernel.kernel_owner()->usage().cycles) / static_cast<double>(items);
}
BENCHMARK(BM_DispatchLoop)->Arg(0)->Arg(1)->ArgNames({"accounting"});

// --- IOBuffer allocation: cold vs cache hit -----------------------------------

void BM_IoBufferAlloc(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  EventQueue eq;
  KernelConfig kc;
  kc.start_softclock = false;
  Kernel kernel(&eq, kc);
  Owner* owner = kernel.kernel_owner();
  for (auto _ : state) {
    IoBuffer* buf = kernel.AllocIoBuffer(owner, 2048, kKernelDomain, {kKernelDomain});
    if (cached) {
      kernel.UnlockIoBuffer(buf, owner);  // recycle through the cache
    } else {
      benchmark::DoNotOptimize(buf);
    }
  }
  state.counters["cache_hit_rate"] =
      static_cast<double>(kernel.iobuffers().cache_hit_count()) /
      static_cast<double>(kernel.iobuffers().alloc_count());
}
BENCHMARK(BM_IoBufferAlloc)->Arg(0)->Arg(1)->ArgNames({"recycle"});

// --- Frame classification (demux) ------------------------------------------------

void BM_DemuxFrame(benchmark::State& state) {
  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  WebServerOptions opts;
  EscortWebServer server(&eq, &link, opts);

  // A frame for an unknown connection: full demux chain, then drop.
  TcpHeader hdr;
  hdr.src_port = 9999;
  hdr.dst_port = 80;
  hdr.flags = kTcpAck;
  std::vector<uint8_t> frame =
      BuildTcpFrame(MacAddr::FromIndex(9), opts.mac, Ip4Addr::FromOctets(10, 0, 1, 9), opts.ip,
                    hdr, {});
  for (auto _ : state) {
    server.eth()->ReceiveFrame(frame);
    eq.RunUntil(eq.now() + CyclesFromMicros(50));
  }
  state.counters["demux_drops"] = static_cast<double>(server.paths().demux_drops());
}
BENCHMARK(BM_DemuxFrame);

// --- Ablation: PD crossing cost sensitivity ------------------------------------
//
// Sweeps pd_crossing from the calibrated (buggy-PAL) value down to the
// paper's predicted fixed-PAL regime, reporting the achieved 1-byte
// throughput of the full-separation configuration. The paper: fixing the
// PAL code should cut per-domain overhead by more than a factor of two.

void BM_PdCrossingAblation(benchmark::State& state) {
  double scale = static_cast<double>(state.range(0)) / 100.0;
  double conns = 0;
  for (auto _ : state) {
    ExperimentSpec spec;
    spec.config = ServerConfig::kAccountingPd;
    spec.clients = 16;
    spec.doc = "/doc1b";
    spec.warmup_s = 0.2;
    spec.window_s = 0.5;
    spec.server_options.costs.pd_crossing =
        static_cast<Cycles>(CostModel::Calibrated().pd_crossing * scale);
    spec.server_options.costs.pd_tlb_refill_percent =
        static_cast<uint32_t>(CostModel::Calibrated().pd_tlb_refill_percent * scale);
    conns = RunExperiment(spec).conns_per_sec;
  }
  state.counters["conns_per_sec"] = conns;
}
BENCHMARK(BM_PdCrossingAblation)
    ->Arg(100)  // calibrated: the OSF1 PAL bug (full TLB invalidate)
    ->Arg(50)   // half-cost crossings
    ->Arg(25)   // the paper's predicted custom-PAL regime
    ->ArgNames({"crossing_pct"})
    ->Unit(benchmark::kMillisecond);

// --- Ablation: accounting overhead vs accounting_op cost ---------------------------

void BM_AccountingOpAblation(benchmark::State& state) {
  Cycles op_cost = static_cast<Cycles>(state.range(0));
  double overhead = 0;
  for (auto _ : state) {
    ExperimentSpec base;
    base.config = ServerConfig::kScout;
    base.clients = 16;
    base.warmup_s = 0.2;
    base.window_s = 0.5;
    double scout = RunExperiment(base).conns_per_sec;

    ExperimentSpec spec = base;
    spec.config = ServerConfig::kAccounting;
    spec.server_options.costs.accounting_op = op_cost;
    double acct = RunExperiment(spec).conns_per_sec;
    overhead = 100.0 * (1.0 - acct / scout);
  }
  state.counters["overhead_pct"] = overhead;
}
BENCHMARK(BM_AccountingOpAblation)
    ->Arg(0)
    ->Arg(140)
    ->Arg(280)  // calibrated (~8%)
    ->Arg(560)
    ->ArgNames({"op_cycles"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace escort

BENCHMARK_MAIN();
