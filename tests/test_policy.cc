// Blacklist / penalty-path policy tests (paper §4.4.4) and passive-path
// CPU limiting.

#include <gtest/gtest.h>

#include <memory>

#include "src/server/policy.h"
#include "tests/testbed.h"

namespace escort {
namespace {

TEST(BlacklistPolicy, RepeatOffenderRoutedToPenaltyPath) {
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.strikes = 1;
  popts.penalty_syn_limit = 1;
  BlacklistPolicy policy(tb.server.get(), popts);

  // The attacker runs one runaway CGI request, gets killed, and lands on
  // the blacklist.
  ClientMachine* bad = tb.AddClient(0);
  CgiAttacker attacker(bad, tb.server->options().ip, CyclesFromMillis(400));
  attacker.Start();
  tb.RunFor(0.3);
  EXPECT_EQ(tb.server->paths_killed(), 1u);
  EXPECT_EQ(policy.violations_recorded(), 1u);
  EXPECT_TRUE(policy.IsBlacklisted(bad->ip(), tb.eq.now()));

  // Subsequent connection attempts demux to the penalty listener.
  uint64_t penalty_before = policy.penalty_listener()->syns_accepted;
  tb.RunFor(1.0);
  EXPECT_GT(policy.penalty_listener()->syns_accepted, penalty_before);
  // The regular listeners saw only the first attempt.
  EXPECT_EQ(tb.server->trusted_listener()->syns_accepted, 1u);
}

TEST(BlacklistPolicy, PenaltyBudgetCapsOffenderHalfOpenState) {
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.strikes = 1;
  popts.penalty_syn_limit = 1;
  BlacklistPolicy policy(tb.server.get(), popts);

  // Blacklist the address directly, then flood SYNs from it.
  Ip4Addr addr = Ip4Addr::FromOctets(10, 0, 1, 1);
  policy.RecordViolation(addr, tb.eq.now());
  ClientMachine* m = tb.AddClient(0);
  SynAttacker flood(&tb.eq, tb.link.get(), MacAddr::FromIndex(62), addr,
                    tb.server->options().ip, tb.server->options().mac, 500.0);
  (void)m;
  flood.Start();
  tb.RunFor(0.3);
  EXPECT_LE(policy.penalty_listener()->syn_recvd, 1u);
  EXPECT_GT(policy.penalty_listener()->syns_dropped_at_demux, 50u);
  // Regular clients are untouched by this flood.
  EXPECT_EQ(tb.server->trusted_listener()->syns_dropped_at_demux, 0u);
}

TEST(BlacklistPolicy, InnocentClientsUnaffected) {
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy policy(tb.server.get(), BlacklistPolicy::Options{});

  ClientMachine* bad = tb.AddClient(0);
  CgiAttacker attacker(bad, tb.server->options().ip, CyclesFromMillis(300));
  attacker.Start();

  ClientMachine* good = tb.AddClient(1);
  HttpClient client(good, tb.server->options().ip, "/doc1b");
  client.Start();
  tb.RunFor(1.0);

  EXPECT_TRUE(policy.IsBlacklisted(bad->ip(), tb.eq.now()));
  EXPECT_FALSE(policy.IsBlacklisted(good->ip(), tb.eq.now()));
  EXPECT_GT(client.completed(), 100u);
  EXPECT_EQ(client.failed(), 0u);
}

TEST(BlacklistPolicy, StrikesThresholdRespected) {
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.strikes = 3;
  BlacklistPolicy policy(tb.server.get(), popts);
  Ip4Addr addr = Ip4Addr::FromOctets(10, 0, 1, 7);
  policy.RecordViolation(addr, 0);
  policy.RecordViolation(addr, 0);
  EXPECT_FALSE(policy.IsBlacklisted(addr, 0));
  policy.RecordViolation(addr, 0);
  EXPECT_TRUE(policy.IsBlacklisted(addr, 0));
}

TEST(BlacklistPolicy, EntriesExpire) {
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.expiry = CyclesFromMillis(10);
  BlacklistPolicy policy(tb.server.get(), popts);
  Ip4Addr addr = Ip4Addr::FromOctets(10, 0, 1, 9);
  policy.RecordViolation(addr, 1000);
  EXPECT_TRUE(policy.IsBlacklisted(addr, 1000));
  EXPECT_FALSE(policy.IsBlacklisted(addr, 1000 + CyclesFromMillis(11)));
}

TEST(BlacklistPolicy, PruneOnExpiry) {
  // Regression: entries_ grew without bound — an address-rotating attacker
  // could append one map entry per spoofed source forever, because expired
  // entries were only consulted (IsBlacklisted) and never erased.
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.expiry = CyclesFromMillis(10);
  BlacklistPolicy policy(tb.server.get(), popts);
  for (uint8_t i = 1; i <= 50; ++i) {
    policy.RecordViolation(Ip4Addr::FromOctets(10, 0, 2, i), 1000);
  }
  EXPECT_EQ(policy.size(), 50u);
  // The next violation after the expiry horizon sweeps the dead entries.
  policy.RecordViolation(Ip4Addr::FromOctets(10, 0, 3, 1),
                         1000 + CyclesFromMillis(11));
  EXPECT_EQ(policy.size(), 1u);
}

TEST(BlacklistPolicy, StrikesResetAfterExpiry) {
  // Regression: a stale entry's strike counter survived its own expiry, so
  // two violations a day apart could count as consecutive strikes.
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.strikes = 3;
  popts.expiry = CyclesFromMillis(10);
  BlacklistPolicy policy(tb.server.get(), popts);
  Ip4Addr addr = Ip4Addr::FromOctets(10, 0, 1, 12);
  policy.RecordViolation(addr, 1000);
  policy.RecordViolation(addr, 1000);
  EXPECT_FALSE(policy.IsBlacklisted(addr, 1000));
  // Long after expiry, the count restarts from scratch: two more strikes
  // must NOT reach the 3-strike threshold.
  Cycles later = 1000 + CyclesFromMillis(20);
  policy.RecordViolation(addr, later);
  policy.RecordViolation(addr, later);
  EXPECT_FALSE(policy.IsBlacklisted(addr, later));
  policy.RecordViolation(addr, later);
  EXPECT_TRUE(policy.IsBlacklisted(addr, later));
}

TEST(BlacklistPolicy, ExactExpiryBoundary) {
  // Regression: `now > expiry deadline` kept an entry blacklisted for one
  // extra cycle at exactly last_violation + expiry. Deadlines in this
  // codebase are exclusive (a timer firing at its deadline has fired).
  Testbed tb(ServerConfig::kAccounting);
  BlacklistPolicy::Options popts;
  popts.expiry = CyclesFromMillis(10);
  BlacklistPolicy policy(tb.server.get(), popts);
  Ip4Addr addr = Ip4Addr::FromOctets(10, 0, 1, 13);
  policy.RecordViolation(addr, 1000);
  EXPECT_TRUE(policy.IsBlacklisted(addr, 1000 + CyclesFromMillis(10) - 1));
  EXPECT_FALSE(policy.IsBlacklisted(addr, 1000 + CyclesFromMillis(10)));
}

TEST(PassivePathLimiting, NewConnectionsYieldToExistingPaths) {
  // §4.4.4: "the passive path that fields requests for new TCP connections
  // can be given a limited share of the CPU, meaning that existing active
  // paths are allowed to run in preference to starting new paths."
  Testbed tb(ServerConfig::kAccounting);
  tb.server->trusted_listener()->path->sched().tickets = 5;   // starve new conns
  tb.server->untrusted_listener()->path->sched().tickets = 5;

  // A long-running QoS-ish transfer plus a barrage of new connections.
  ClientMachine* qm = tb.AddClient(30);
  QosReceiver receiver(qm, tb.server->options().ip);
  receiver.Start();
  std::vector<std::unique_ptr<HttpClient>> churn;
  for (int i = 0; i < 8; ++i) {
    churn.push_back(
        std::make_unique<HttpClient>(tb.AddClient(i), tb.server->options().ip, "/doc1b"));
    churn.back()->Start(CyclesFromMillis(i));
  }
  tb.RunFor(0.5);
  receiver.meter().OpenWindow(tb.eq.now());
  tb.RunFor(1.0);
  // The stream (an existing path) is fully served despite connection churn.
  EXPECT_NEAR(receiver.meter().CloseWindowBytesPerSec(tb.eq.now()), 1e6, 0.02e6);
}

}  // namespace
}  // namespace escort
