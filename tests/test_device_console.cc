// Device registry and console tests: ACL-guarded access (a driver domain
// may only touch its own device), charged console output.

#include <gtest/gtest.h>

#include <cstring>

#include "src/kernel/kernel.h"

namespace escort {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() {
    KernelConfig kc;
    kc.start_softclock = false;
    kc.protection_domains = true;
    kernel_ = std::make_unique<Kernel>(&eq_, kc);
    eth_domain_ = kernel_->CreateDomain("eth-driver")->pd_id();
    scsi_domain_ = kernel_->CreateDomain("scsi-driver")->pd_id();
    app_domain_ = kernel_->CreateDomain("app")->pd_id();
  }

  EventQueue eq_;
  std::unique_ptr<Kernel> kernel_;
  PdId eth_domain_;
  PdId scsi_domain_;
  PdId app_domain_;
};

TEST_F(DeviceTest, DriverDomainCanOpenItsDevice) {
  kernel_->devices().Register("de500", eth_domain_);
  Device* dev = kernel_->devices().Open("de500", eth_domain_);
  ASSERT_NE(dev, nullptr);
  EXPECT_TRUE(dev->opened());
  EXPECT_EQ(dev->name(), "de500");
}

TEST_F(DeviceTest, ForeignDomainCannotTouchDevice) {
  kernel_->devices().Register("de500", eth_domain_);
  // Another driver's domain has the syscalls, but not for this device.
  kernel_->devices().Register("disk0", scsi_domain_);
  EXPECT_EQ(kernel_->devices().Open("de500", scsi_domain_), nullptr);
  // A plain application domain lacks even the syscall.
  EXPECT_EQ(kernel_->devices().Open("de500", app_domain_), nullptr);
  EXPECT_GE(kernel_->devices().denied(), 2u);
}

TEST_F(DeviceTest, PrivilegedDomainMayOpenAnything) {
  kernel_->devices().Register("de500", eth_domain_);
  EXPECT_NE(kernel_->devices().Open("de500", kKernelDomain), nullptr);
}

TEST_F(DeviceTest, ReadWriteGoThroughHandlers) {
  Device* dev = kernel_->devices().Register("disk0", scsi_domain_);
  std::vector<uint8_t> backing(64, 0);
  dev->set_write_handler([&](uint64_t off, const void* data, uint64_t len) {
    std::memcpy(backing.data() + off, data, len);
    return len;
  });
  dev->set_read_handler([&](uint64_t off, const void* buf, uint64_t len) {
    std::memcpy(const_cast<void*>(buf), backing.data() + off, len);
    return len;
  });
  kernel_->devices().Open("disk0", scsi_domain_);

  const char msg[] = "sector0";
  EXPECT_EQ(kernel_->devices().Write(dev, scsi_domain_, 0, msg, 7), 7u);
  char out[8] = {0};
  EXPECT_EQ(kernel_->devices().Read(dev, scsi_domain_, 0, out, 7), 7u);
  EXPECT_STREQ(out, "sector0");
  EXPECT_EQ(dev->reads(), 1u);
  EXPECT_EQ(dev->writes(), 1u);
  // The wrong domain gets nothing.
  EXPECT_EQ(kernel_->devices().Read(dev, eth_domain_, 0, out, 7), 0u);
}

TEST_F(DeviceTest, ClosedDeviceRefusesIo) {
  Device* dev = kernel_->devices().Register("disk0", scsi_domain_);
  dev->set_read_handler([](uint64_t, const void*, uint64_t len) { return len; });
  char buf[4];
  EXPECT_EQ(kernel_->devices().Read(dev, scsi_domain_, 0, buf, 4), 0u);  // never opened
  kernel_->devices().Open("disk0", scsi_domain_);
  EXPECT_EQ(kernel_->devices().Read(dev, scsi_domain_, 0, buf, 4), 4u);
  kernel_->devices().Close(dev, scsi_domain_);
  EXPECT_EQ(kernel_->devices().Read(dev, scsi_domain_, 0, buf, 4), 0u);
}

TEST_F(DeviceTest, ConsoleWriteRecordsAndCharges) {
  Owner o(OwnerType::kKernel, kernel_->NextOwnerId(), "writer");
  kernel_->RegisterOwner(&o, "writer");
  Thread* t = kernel_->CreateThread(&o, "t");
  bool ok = false;
  t->Push(100, kKernelDomain, [&] { ok = kernel_->console().Write(kKernelDomain, "panic: just kidding"); });
  eq_.RunToCompletion();
  EXPECT_TRUE(ok);
  ASSERT_EQ(kernel_->console().lines().size(), 1u);
  EXPECT_EQ(kernel_->console().lines()[0], "panic: just kidding");
  EXPECT_GT(o.usage().cycles, 100u);  // the write cost landed on the writer
}

TEST_F(DeviceTest, ConsoleRingBounded) {
  for (size_t i = 0; i < Console::kMaxLines + 10; ++i) {
    kernel_->console().Write(kKernelDomain, "line " + std::to_string(i));
  }
  EXPECT_EQ(kernel_->console().lines().size(), Console::kMaxLines);
  EXPECT_EQ(kernel_->console().lines().front(), "line 10");
}

TEST_F(DeviceTest, ConsoleGetcIsPrivileged) {
  // Reading the console is privileged-only by default (kConsoleGetc).
  EXPECT_FALSE(kernel_->CheckSyscall(app_domain_, Syscall::kConsoleGetc));
  EXPECT_TRUE(kernel_->CheckSyscall(kKernelDomain, Syscall::kConsoleGetc));
}

}  // namespace
}  // namespace escort
