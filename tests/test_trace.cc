// Trace subsystem tests (src/sim/trace.h): span bookkeeping and the
// flight-recorder ring in isolation, then the system-level guarantees —
// the same experiment produces a byte-identical trace at every shard
// count, tracing never perturbs measured results, and flight dumps fire
// on pathKill and on audit violations with the preceding events intact.
//
// Also pins the shard-safety contract of the stats meters (DESIGN.md
// §6.5): RateMeter/ThroughputMeter recordings from concurrently running
// shards are commutative relaxed atomics, so totals are exact at any
// shard count. That test races for real under the TSan CI preset.

#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/kernel/audit.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/workload/experiment.h"
#include "tests/testbed.h"

namespace escort {
namespace {

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceUnit, SpansBalanceAndFinalizeClosesOpenOnes) {
  TraceConfig tc;
  tc.path = ::testing::TempDir() + "trace_unit.json";
  Tracer tracer(tc);

  tracer.BeginSpan(10, "track-a", "outer", "test");
  tracer.BeginSpan(20, "track-a", "inner", "test");
  tracer.EndSpan(30, "track-a");
  tracer.BeginSpan(15, "track-b", "other", "test");
  // EndSpan on a track with no open span is dropped (spans that began
  // before tracing attached).
  tracer.EndSpan(40, "track-c");
  tracer.Finalize(50);  // closes track-a's outer and track-b's span

  std::string doc = tracer.SerializeStandalone();
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"B\""), 3u);
  EXPECT_EQ(CountOccurrences(doc, "\"ph\":\"E\""), 3u);
  EXPECT_NE(doc.find("\"clock\": \"sim-cycles\""), std::string::npos);
  EXPECT_NE(doc.find("\"outer\""), std::string::npos);

  // A second Finalize is a no-op: everything is already balanced.
  tracer.Finalize(60);
  EXPECT_EQ(CountOccurrences(tracer.SerializeStandalone(), "\"ph\":\"E\""), 3u);
}

TEST(TraceUnit, StrEscapesJsonMetacharacters) {
  EXPECT_EQ(Tracer::Str("plain"), "\"plain\"");
  EXPECT_EQ(Tracer::Str("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Tracer::Str("line\nbreak\t"), "\"line\\nbreak\\t\"");
  EXPECT_EQ(Tracer::Str(std::string("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(Tracer::Num(0), "0");
  EXPECT_EQ(Tracer::Num(18446744073709551615ull), "18446744073709551615");
}

TEST(TraceUnit, FlightRingIsBoundedAndDumpsMostRecent) {
  TraceConfig tc;
  tc.path = ::testing::TempDir() + "trace_flight_unit.json";
  tc.flight_capacity = 4;
  Tracer tracer(tc);

  for (int i = 0; i < 10; ++i) {
    tracer.Instant(static_cast<Cycles>(i), "t", "event-" + std::to_string(i), "test");
  }
  tracer.DumpFlight("unit-test-reason", 10);

  EXPECT_EQ(tracer.flight_dumps(), 1u);
  const std::string& dump = tracer.last_flight_dump();
  EXPECT_NE(dump.find("unit-test-reason"), std::string::npos);
  EXPECT_NE(dump.find("\"depth\": 4"), std::string::npos);
  // Only the 4 most recent events survive the ring.
  EXPECT_EQ(dump.find("event-5"), std::string::npos);
  EXPECT_NE(dump.find("event-6"), std::string::npos);
  EXPECT_NE(dump.find("event-9"), std::string::npos);

  // The dump landed on disk at the derived <path>.flight.json location.
  FILE* f = std::fopen(tc.ResolvedFlightPath().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(tc.ResolvedFlightPath().c_str());
}

ExperimentSpec AttackSpec(int shards) {
  ExperimentSpec spec;
  spec.config = ServerConfig::kAccounting;
  spec.clients = 4;
  spec.doc = "/doc1b";
  spec.syn_attack_rate = 1000.0;
  spec.shards = shards;
  spec.warmup_s = 0.05;
  spec.window_s = 0.2;
  return spec;
}

// The headline determinism property: every emission site runs on stream 0
// or at a serial point, so the trace byte stream is a pure function of the
// spec — independent of the shard partition.
TEST(Trace, ByteIdenticalAcrossShardCounts) {
  TraceConfig tc;  // external sink: path stays empty, nothing hits disk
  Tracer t1(tc);
  Tracer t4(tc);

  ExperimentSpec s1 = AttackSpec(1);
  s1.tracer = &t1;
  ExperimentSpec s4 = AttackSpec(4);
  s4.tracer = &t4;
  RunExperiment(s1);
  RunExperiment(s4);

  ASSERT_GT(t1.event_count(), 0u);
  std::string doc1 = t1.SerializeStandalone();
  std::string doc4 = t4.SerializeStandalone();
  EXPECT_EQ(doc1, doc4) << "trace differs between shards=1 and shards=4";

  // All three event families are present: lifecycle spans, TCP state
  // transitions, and ledger counter tracks.
  EXPECT_NE(doc1.find("\"path:"), std::string::npos);
  EXPECT_NE(doc1.find("tcp:SYN_RECVD->ESTABLISHED"), std::string::npos);
  EXPECT_NE(doc1.find("cycles/"), std::string::npos);
  EXPECT_NE(doc1.find("pages/"), std::string::npos);
}

// Tracing is observation only: attaching a tracer must not change any
// measured result (the instrumentation sites branch on the pointer and
// do no work when it is null — zero overhead when disabled, zero
// perturbation when enabled).
TEST(Trace, TracingDoesNotPerturbResults) {
  ExperimentSpec plain = AttackSpec(1);
  ExperimentResult off = RunExperiment(plain);

  TraceConfig tc;
  Tracer tracer(tc);
  ExperimentSpec traced = AttackSpec(1);
  traced.tracer = &tracer;
  ExperimentResult on = RunExperiment(traced);

  EXPECT_EQ(off.completions_total, on.completions_total);
  EXPECT_EQ(off.conns_per_sec, on.conns_per_sec);
  EXPECT_EQ(off.syns_sent, on.syns_sent);
  EXPECT_EQ(off.syns_dropped_at_demux, on.syns_dropped_at_demux);
  EXPECT_EQ(off.paths_killed, on.paths_killed);
  EXPECT_EQ(off.window_cycles, on.window_cycles);
  EXPECT_EQ(off.ledger.Total(), on.ledger.Total());
}

// A runaway CGI attack ends in pathKill, which must dump the flight
// recorder with the events leading up to the kill.
TEST(Trace, FlightDumpOnPathKill) {
  TraceConfig tc;
  tc.flight_path = ::testing::TempDir() + "trace_pathkill.flight.json";
  Tracer tracer(tc);

  ExperimentSpec spec;
  spec.config = ServerConfig::kAccounting;
  spec.clients = 0;
  spec.cgi_attackers = 1;
  spec.warmup_s = 0.05;
  spec.window_s = 1.5;  // long enough for >= 1 attack -> runaway -> kill
  spec.tracer = &tracer;
  ExperimentResult r = RunExperiment(spec);

  ASSERT_GE(r.paths_killed, 1u);
  ASSERT_GE(tracer.flight_dumps(), 1u);
  const std::string& dump = tracer.last_flight_dump();
  EXPECT_NE(dump.find("pathKill"), std::string::npos);
  // The ring preserved context from before the kill: the runaway
  // detection that triggered it.
  EXPECT_NE(dump.find("runaway-detection"), std::string::npos);

  FILE* f = std::fopen(tc.ResolvedFlightPath().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(tc.ResolvedFlightPath().c_str());
}

// Audit violations dump the flight recorder too: both the end-of-run
// conservation checks and the per-owner drain check on destruction.
TEST(Trace, FlightDumpOnAuditViolation) {
  KernelConfig kc;
  kc.start_softclock = false;
  EventQueue eq;
  Kernel kernel(&eq, kc);
  AuditScope scope(&kernel, /*enforce=*/false);

  TraceConfig tc;
  tc.flight_path = ::testing::TempDir() + "trace_audit.flight.json";
  Tracer tracer(tc);
  kernel.set_tracer(&tracer);

  tracer.Instant(0, "test", "before-violation", "test");

  // Rule 2 violation: cycles charged with no elapsed simulation time.
  Owner victim(OwnerType::kPath, kernel.NextOwnerId(), "victim");
  kernel.RegisterOwner(&victim, "victim");
  victim.usage().cycles += 9999;
  scope.auditor().CheckConservation(kernel);
  ASSERT_FALSE(scope.auditor().ok());
  EXPECT_EQ(tracer.flight_dumps(), 1u);
  EXPECT_NE(tracer.last_flight_dump().find("audit:conservation"), std::string::npos);
  EXPECT_NE(tracer.last_flight_dump().find("before-violation"), std::string::npos);

  // Rule 1 violation: a counter that never drained before destruction.
  Owner leaky(OwnerType::kPath, kernel.NextOwnerId(), "leaky");
  kernel.RegisterOwner(&leaky, "leaky");
  leaky.usage().pages += 1;
  kernel.DestroyOwner(&leaky, 0);
  EXPECT_EQ(tracer.flight_dumps(), 2u);
  EXPECT_NE(tracer.last_flight_dump().find("audit:owner-drain leaky"),
            std::string::npos);

  scope.auditor().Clear();
  kernel.set_tracer(nullptr);
  std::remove(tc.ResolvedFlightPath().c_str());
  // Unregister the stack-allocated victim before the kernel tears down.
  kernel.DestroyOwner(&victim, 0);
  scope.auditor().Clear();
}

// DESIGN.md §6.5: RateMeter and ThroughputMeter recordings commute, so a
// meter shared across concurrently running shards reads exactly right at
// any shard count. Under the TSan preset this test also proves the
// accesses are race-free (they were plain uint64_t before).
TEST(Meters, SharedRecordingAcrossShards) {
  constexpr int kShards = 4;
  constexpr int kStreams = 8;
  constexpr int kEventsPerStream = 200;

  ShardedEventQueue eq(kShards, /*lookahead=*/50);
  RateMeter rate;
  ThroughputMeter tput;
  rate.OpenWindow(0);
  tput.OpenWindow(0);

  for (int s = 0; s < kStreams; ++s) {
    EventQueue::StreamId stream = eq.NewStream(static_cast<size_t>(s));
    EventQueue::StreamScope scope(&eq, stream);
    for (int i = 0; i < kEventsPerStream; ++i) {
      Cycles at = static_cast<Cycles>(10 + i * 7 + s);
      eq.ScheduleAt(at, [&eq, &rate, &tput] {
        rate.Record(eq.now());
        tput.Record(eq.now(), 100);
      });
    }
  }
  eq.RunToCompletion();

  constexpr uint64_t kTotal = static_cast<uint64_t>(kStreams) * kEventsPerStream;
  EXPECT_EQ(rate.total(), kTotal);
  EXPECT_EQ(rate.window_count(), kTotal);
  EXPECT_EQ(tput.total_bytes(), kTotal * 100);
  EXPECT_GT(rate.last_event(), 0u);
  rate.CloseWindow(eq.now());
  tput.CloseWindowBytesPerSec(eq.now());
}

}  // namespace
}  // namespace escort
