// HealthMonitor incident state machine: rule evaluation, pressure
// persistence, immediate opens on detection signals, the recovery
// clean-streak, baseline arming, and the end-to-end property that attack
// experiments produce exactly one incident with finite TTD/TTR while
// benign experiments produce none.

#include <string>

#include <gtest/gtest.h>

#include "src/server/health.h"
#include "src/sim/metrics.h"
#include "src/workload/experiment.h"

namespace escort {
namespace {

constexpr Cycles kTick = CyclesFromMillis(5.0);

// Drives the monitor directly through a hand-held registry: tests pick
// exactly which metrics exist and how they move between samples.
struct Harness {
  MetricsRegistry registry;
  HealthConfig config;

  Harness() {
    // Keep the default rule set small and fully controllable.
    config.memory_page_frac = 0.0;  // no memory rule without total_pages
  }
};

TEST(HealthMonitorTest, DetectionSignalOpensImmediatelyWithZeroTtd) {
  Harness h;
  HealthMonitor mon(&h.registry, h.config);
  MetricCounter* drops =
      ESCORT_METRIC_COUNTER(&h.registry, "tcp.syns_dropped", "t");

  mon.Sample(kTick);  // primes the delta baselines; no incident
  EXPECT_TRUE(mon.incidents().empty());

  drops->Add(3);
  mon.Sample(2 * kTick);
  ASSERT_EQ(mon.incidents().size(), 1u);
  const IncidentRecord& rec = mon.incidents()[0];
  // tcp.syns_dropped is both a detection rule (syn-budget) and a
  // containment rule (syn-drop): one sample stamps onset, detected and
  // contained all at once — TTD is legitimately zero.
  EXPECT_EQ(rec.trigger, "syn-budget");
  EXPECT_EQ(rec.onset, 2 * kTick);
  EXPECT_EQ(rec.detected, 2 * kTick);
  EXPECT_EQ(rec.contained, 2 * kTick);
  EXPECT_EQ(rec.ttd_ms(), 0.0);
  EXPECT_EQ(rec.detection_signals, 3u);
  EXPECT_EQ(rec.containment_actions, 3u);
  EXPECT_TRUE(mon.incident_open());
}

TEST(HealthMonitorTest, PressureNeedsPersistenceConsecutiveBreaches) {
  Harness h;
  HealthMonitor mon(&h.registry, h.config);
  MetricGauge* backlog = ESCORT_METRIC_GAUGE(&h.registry, "tcp.half_open", "t");

  // half-open-backlog has persistence 3: two breached samples, one clean
  // sample, then two more breaches must NOT open an incident.
  backlog->Set(h.config.half_open_high_water + 1);
  mon.Sample(1 * kTick);
  mon.Sample(2 * kTick);
  backlog->Set(0);
  mon.Sample(3 * kTick);  // streak resets
  backlog->Set(h.config.half_open_high_water + 1);
  mon.Sample(4 * kTick);
  mon.Sample(5 * kTick);
  EXPECT_TRUE(mon.incidents().empty());

  // The third consecutive breach opens it.
  mon.Sample(6 * kTick);
  ASSERT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].trigger, "half-open-backlog");
  EXPECT_EQ(mon.incidents()[0].onset, 6 * kTick);
  // Pressure alone never stamps detection: TTD is the -1 sentinel.
  EXPECT_EQ(mon.incidents()[0].ttd_ms(), -1.0);
}

TEST(HealthMonitorTest, RecoveryAfterCleanSamplesPostContainment) {
  Harness h;
  h.config.recovery_clean_samples = 4;
  HealthMonitor mon(&h.registry, h.config);
  MetricCounter* drops =
      ESCORT_METRIC_COUNTER(&h.registry, "tcp.syns_dropped", "t");
  MetricGauge* backlog = ESCORT_METRIC_GAUGE(&h.registry, "tcp.half_open", "t");

  mon.Sample(kTick);
  drops->Add(1);
  backlog->Set(h.config.half_open_high_water + 1);  // pressure during attack
  mon.Sample(2 * kTick);
  ASSERT_EQ(mon.incidents().size(), 1u);

  // Pressure still breaching: the clean streak cannot start.
  mon.Sample(3 * kTick);
  EXPECT_EQ(mon.incidents()[0].recovered, 0u);

  // Pressure clears; recovery needs 4 clean ticks after containment.
  backlog->Set(0);
  mon.Sample(4 * kTick);
  mon.Sample(5 * kTick);
  mon.Sample(6 * kTick);
  EXPECT_EQ(mon.incidents()[0].recovered, 0u);
  mon.Sample(7 * kTick);
  EXPECT_EQ(mon.incidents()[0].recovered, 7 * kTick);
  EXPECT_GT(mon.incidents()[0].ttr_ms(), 0.0);

  // One incident per run: later signals accumulate, never reopen.
  drops->Add(5);
  mon.Sample(8 * kTick);
  EXPECT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].detection_signals, 1u + 5u);
}

TEST(HealthMonitorTest, GoodputRuleDisarmedWithoutBaseline) {
  Harness h;
  HealthMonitor mon(&h.registry, h.config);
  ESCORT_METRIC_COUNTER(&h.registry, "tcp.conns_completed", "t");

  // Never OpenWindow'd: a flat completion counter (rate 0, far below any
  // baseline fraction) must not breach.
  for (Cycles t = kTick; t <= 40 * kTick; t += kTick) mon.Sample(t);
  EXPECT_TRUE(mon.incidents().empty());
  EXPECT_EQ(mon.baseline_rate(), 0.0);
}

TEST(HealthMonitorTest, OpenWindowArmsBaselineAboveMinimumRate) {
  Harness h;
  HealthMonitor mon(&h.registry, h.config);
  MetricCounter* done =
      ESCORT_METRIC_COUNTER(&h.registry, "tcp.conns_completed", "t");

  // 100 completions over 0.1 s of warmup = 1000 conns/s baseline.
  done->Add(100);
  mon.OpenWindow(CyclesFromSeconds(0.1));
  EXPECT_DOUBLE_EQ(mon.baseline_rate(), 1000.0);

  // Below min_baseline_rate the rule stays disarmed.
  Harness h2;
  HealthMonitor idle(&h2.registry, h2.config);
  MetricCounter* few =
      ESCORT_METRIC_COUNTER(&h2.registry, "tcp.conns_completed", "t");
  few->Add(1);  // 10 conns/s < min_baseline_rate? no: 1/0.1s = 10 > 5
  idle.OpenWindow(CyclesFromSeconds(10.0));  // 0.1 conns/s < 5
  EXPECT_EQ(idle.baseline_rate(), 0.0);
}

TEST(HealthMonitorTest, GoodputCollapseOpensAfterPersistence) {
  Harness h;
  h.config.goodput_trailing_samples = 4;
  h.config.goodput_persistence = 2;
  HealthMonitor mon(&h.registry, h.config);
  MetricCounter* done =
      ESCORT_METRIC_COUNTER(&h.registry, "tcp.conns_completed", "t");

  done->Add(100);
  mon.OpenWindow(CyclesFromSeconds(0.1));  // 1000 conns/s baseline
  ASSERT_GT(mon.baseline_rate(), 0.0);

  // Healthy window first: ~1000 conns/s (5 per 5 ms tick) fills the ring.
  Cycles t = CyclesFromSeconds(0.1);
  for (int i = 0; i < 8; ++i) {
    t += kTick;
    done->Add(5);
    mon.Sample(t);
  }
  EXPECT_TRUE(mon.incidents().empty());

  // Collapse: the counter stops. The trailing rate needs 4 ticks to flush
  // the healthy samples, then 2 persistent breaches open the incident.
  int samples_to_open = 0;
  while (mon.incidents().empty() && samples_to_open < 20) {
    t += kTick;
    mon.Sample(t);
    ++samples_to_open;
  }
  ASSERT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].trigger, "goodput-collapse");
  EXPECT_GE(samples_to_open, 2);  // persistence floor
}

TEST(HealthMonitorTest, CustomRuleParticipates) {
  Harness h;
  HealthMonitor mon(&h.registry, h.config);
  MetricGauge* depth = ESCORT_METRIC_GAUGE(&h.registry, "custom.depth", "t");
  HealthRule rule;
  rule.name = "custom-depth";
  rule.role = RuleRole::kDetection;
  rule.kind = RuleKind::kGaugeAbove;
  rule.metric = "custom.depth";
  rule.threshold = 10.0;
  mon.AddRule(rule);

  depth->Set(11);
  mon.Sample(kTick);
  ASSERT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].trigger, "custom-depth");
}

// --- end-to-end through RunExperiment ------------------------------------

ExperimentSpec BaseSpec() {
  ExperimentSpec spec;
  spec.config = ServerConfig::kAccountingPd;
  spec.clients = 4;
  spec.doc = "/doc1k";
  spec.warmup_s = 0.05;
  spec.window_s = 0.2;
  return spec;
}

TEST(HealthIncidentE2ETest, SynAttackYieldsOneIncidentWithFiniteTtdTtr) {
  ExperimentSpec spec = BaseSpec();
  spec.syn_attack_rate = 800.0;
  const ExperimentResult r = RunExperiment(spec);
  ASSERT_EQ(r.incidents.size(), 1u);
  const IncidentRecord& rec = r.incidents[0];
  EXPECT_EQ(rec.trigger, "syn-budget");
  EXPECT_GE(rec.ttd_ms(), 0.0);
  EXPECT_GT(rec.ttr_ms(), 0.0);
  EXPECT_GT(rec.detection_signals, 0u);
  EXPECT_GT(rec.containment_actions, 0u);
}

TEST(HealthIncidentE2ETest, CgiAttackYieldsRunawayKillIncident) {
  ExperimentSpec spec = BaseSpec();
  spec.cgi_attackers = 2;
  const ExperimentResult r = RunExperiment(spec);
  ASSERT_GE(r.incidents.size(), 1u);
  const IncidentRecord& rec = r.incidents[0];
  EXPECT_EQ(rec.trigger, "runaway-kill");
  EXPECT_GE(rec.ttd_ms(), 0.0);
  EXPECT_GT(rec.ttr_ms(), 0.0);
}

TEST(HealthIncidentE2ETest, BenignRunYieldsNoIncidents) {
  for (int clients : {4, 64}) {
    ExperimentSpec spec = BaseSpec();
    spec.clients = clients;
    const ExperimentResult r = RunExperiment(spec);
    EXPECT_TRUE(r.incidents.empty())
        << "clients=" << clients << " trigger="
        << (r.incidents.empty() ? "" : r.incidents[0].trigger);
  }
}

}  // namespace
}  // namespace escort
