// The headline determinism regression test for the sharded event queue:
// the same ExperimentSpec, run on a single-queue testbed (shards=1) and on
// sharded testbeds (shards=2, 4), must produce bit-identical
// ExperimentResults for every cell — throughput, the full cycle ledger,
// kills, and drops. Sharding partitions the simulation's actors across
// worker threads inside conservative lookahead windows; the stream-keyed
// event order makes the execution order — and therefore every result bit —
// independent of the shard count. This test runs under TSan in CI.
//
// (tests/test_parallel_equivalence.cc pins the same property for
// cross-cell parallelism; this file pins it for intra-cell parallelism.)

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/sweep.h"

namespace escort {
namespace {

// The grid covers the features whose event interleavings are most at risk
// from sharding: multi-client load on the shared medium, the SYN flood
// (high cross-stream frame rate), the QoS stream (rate-based cadence), and
// CGI attackers (pathKill and reclamation).
std::vector<SweepCell> BuildGrid() {
  Sweep proto("sharded_equivalence_grid");
  auto add = [&proto](const std::string& id, ServerConfig config, int clients,
                      const std::string& doc) -> ExperimentSpec& {
    ExperimentSpec spec;
    spec.config = config;
    spec.clients = clients;
    spec.doc = doc;
    spec.warmup_s = 0.05;
    spec.window_s = 0.25;
    return proto.Add(id, spec).spec;
  };
  add("scout/c4/1b", ServerConfig::kScout, 4, "/doc1b");
  add("acct/c8/1k", ServerConfig::kAccounting, 8, "/doc1k");
  add("acct/syn/c4", ServerConfig::kAccounting, 4, "/doc1b").syn_attack_rate = 800.0;
  add("acct/qos/c2", ServerConfig::kAccounting, 2, "/doc10k").qos_stream = true;
  add("acct/cgi/c4", ServerConfig::kAccounting, 4, "/doc1b").cgi_attackers = 2;
  return proto.cells();
}

void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b,
                     const std::string& cell, int shards) {
  std::string ctx = cell + " (shards=" + std::to_string(shards) + ")";
  // Doubles compared with ==: same binary, same inputs, same event order
  // must give the same bits, not merely close values.
  EXPECT_EQ(a.conns_per_sec, b.conns_per_sec) << ctx;
  EXPECT_EQ(a.qos_bytes_per_sec, b.qos_bytes_per_sec) << ctx;
  EXPECT_EQ(a.completions_total, b.completions_total) << ctx;
  EXPECT_EQ(a.client_failures, b.client_failures) << ctx;
  EXPECT_EQ(a.paths_killed, b.paths_killed) << ctx;
  EXPECT_EQ(a.syns_dropped_at_demux, b.syns_dropped_at_demux) << ctx;
  EXPECT_EQ(a.syns_sent, b.syns_sent) << ctx;
  EXPECT_EQ(a.runaway_detections, b.runaway_detections) << ctx;
  EXPECT_EQ(a.kill_cost_mean, b.kill_cost_mean) << ctx;
  EXPECT_EQ(a.window_cycles, b.window_cycles) << ctx;
  EXPECT_EQ(a.pd_crossings, b.pd_crossings) << ctx;
  EXPECT_EQ(a.accounting_overhead, b.accounting_overhead) << ctx;
  // The full per-owner ledger, label by label.
  EXPECT_EQ(a.ledger.totals(), b.ledger.totals()) << ctx;
}

TEST(ShardedEquivalence, ShardsTwoAndFourMatchSingleQueue) {
  std::vector<SweepCell> grid = BuildGrid();

  Sweep single("sharded_equiv_single");
  for (const SweepCell& cell : grid) {
    single.Add(cell.id, cell.spec);  // spec.shards defaults to 1
  }
  SweepOptions opts;
  opts.jobs = 2;
  single.Run(opts);
  ASSERT_EQ(single.failed_count(), 0);

  for (int shards : {2, 4}) {
    Sweep sharded("sharded_equiv_n" + std::to_string(shards));
    for (const SweepCell& cell : grid) {
      ExperimentSpec spec = cell.spec;
      spec.shards = shards;
      sharded.Add(cell.id, spec);
    }
    sharded.Run(opts);
    ASSERT_EQ(sharded.failed_count(), 0) << "shards=" << shards;
    for (const SweepCell& cell : grid) {
      ExpectIdentical(single.Result(cell.id), sharded.Result(cell.id), cell.id, shards);
    }
  }
}

// The --shards sweep override (SweepOptions::shards) reaches every cell:
// results must equal per-spec sharding, and the spec records the override.
TEST(ShardedEquivalence, SweepShardsOverrideMatchesPerSpecShards) {
  std::vector<SweepCell> grid = BuildGrid();
  const std::string id = grid[0].id;

  Sweep per_spec("override_per_spec");
  ExperimentSpec spec = grid[0].spec;
  spec.shards = 4;
  per_spec.Add(id, spec);
  SweepOptions opts;
  opts.jobs = 1;
  per_spec.Run(opts);
  ASSERT_EQ(per_spec.failed_count(), 0);

  Sweep overridden("override_via_opts");
  overridden.Add(id, grid[0].spec);  // spec.shards left at 1
  SweepOptions override_opts;
  override_opts.jobs = 1;
  override_opts.shards = 4;
  overridden.Run(override_opts);
  ASSERT_EQ(overridden.failed_count(), 0);

  EXPECT_EQ(overridden.cells()[0].spec.shards, 4);
  ExpectIdentical(per_spec.Result(id), overridden.Result(id), id, 4);
}

// The full scheduling-mode cross product — {conservative, adaptive
// lookahead} x {rr, weighted, profile placement} x shards {1, 2, 4, 8} —
// must leave every result bit-identical to the plain single-queue run.
// Adaptive horizons change which events share a window; placement changes
// which shard owns each actor; neither may change the stream-keyed total
// order. The two cells picked have the heaviest cross-stream traffic in
// the grid (the SYN flood and the QoS bulk stream).
TEST(ShardedEquivalence, SchedulingModesAreBitIdentical) {
  std::vector<SweepCell> grid = BuildGrid();
  std::vector<SweepCell> picked = {grid[2], grid[3]};  // acct/syn, acct/qos
  for (SweepCell& cell : picked) {
    cell.spec.warmup_s = 0.04;  // 24 sweeps: keep each window short
    cell.spec.window_s = 0.15;
  }
  SweepOptions opts;
  opts.jobs = 2;

  Sweep baseline("modes_baseline");
  for (const SweepCell& cell : picked) {
    baseline.Add(cell.id, cell.spec);  // shards=1, adaptive off, rr
  }
  baseline.Run(opts);
  ASSERT_EQ(baseline.failed_count(), 0);

  // A synthetic prior profile (as if a 4-shard rr run fed back its
  // per-shard events_fired); placement must be deterministic in it.
  const std::vector<uint64_t> kPriorShardEvents = {5000, 900, 600, 300};
  const PlacementMode kModes[] = {PlacementMode::kRoundRobin,
                                  PlacementMode::kWeighted,
                                  PlacementMode::kProfile};
  uint64_t conservative_windows = 0;
  uint64_t adaptive_windows = 0;
  for (int shards : {1, 2, 4, 8}) {
    for (bool adaptive : {false, true}) {
      for (PlacementMode mode : kModes) {
        std::string label = "modes_s" + std::to_string(shards) +
                            (adaptive ? "_adaptive_" : "_conservative_") +
                            PlacementModeName(mode);
        Sweep run(label);
        for (const SweepCell& cell : picked) {
          ExperimentSpec spec = cell.spec;
          spec.shards = shards;
          spec.adaptive_lookahead = adaptive;
          spec.placement = mode;
          if (mode == PlacementMode::kProfile) {
            spec.profile_shard_events = kPriorShardEvents;
          }
          run.Add(cell.id, spec);
        }
        run.Run(opts);
        ASSERT_EQ(run.failed_count(), 0) << label;
        // The resolved actor->shard map is recorded on the spec.
        EXPECT_EQ(run.cells()[0].spec.placement_map.size(),
                  static_cast<size_t>(ActorCount(run.cells()[0].spec)))
            << label;
        for (const SweepCell& cell : picked) {
          ExpectIdentical(baseline.Result(cell.id), run.Result(cell.id),
                          cell.id + " " + label, shards);
        }
        if (shards == 4 && mode == PlacementMode::kRoundRobin) {
          uint64_t windows = run.Result(picked[0].id).shard_profile.windows_run;
          (adaptive ? adaptive_windows : conservative_windows) = windows;
        }
      }
    }
  }
  // Identical results, fewer barriers: the whole point of the adaptive
  // horizons is that they collapse lockstep t_min+L windows.
  EXPECT_LT(adaptive_windows, conservative_windows);
}

// The timer backend axis: {timer wheel, comparison-heap fallback} x
// {conservative, adaptive lookahead} x shards {1, 2, 4, 8} must all be
// bit-identical to a heap-fallback single-queue run. The wheel is a
// staging structure under the same total event order — ScheduleTimerAt
// consumes stream sequence numbers identically in both modes, so the only
// things allowed to differ are the memory block and host wall-clock.
TEST(ShardedEquivalence, TimerBackendsAreBitIdentical) {
  std::vector<SweepCell> grid = BuildGrid();
  std::vector<SweepCell> picked = {grid[1], grid[2]};  // multi-client + SYN flood
  for (SweepCell& cell : picked) {
    cell.spec.warmup_s = 0.04;  // 15 sweeps: keep each window short
    cell.spec.window_s = 0.15;
  }
  SweepOptions opts;
  opts.jobs = 2;

  Sweep baseline("timer_baseline");  // heap fallback on the single queue
  for (const SweepCell& cell : picked) {
    ExperimentSpec spec = cell.spec;
    spec.timer_wheel = false;
    baseline.Add(cell.id, spec);
  }
  baseline.Run(opts);
  ASSERT_EQ(baseline.failed_count(), 0);
  EXPECT_EQ(baseline.Result(picked[0].id).memory.timer_high_water, 0u)
      << "heap fallback must not touch the wheel";

  for (int shards : {1, 2, 4, 8}) {
    for (bool adaptive : {false, true}) {
      for (bool wheel : {false, true}) {
        if (shards == 1 && !adaptive && !wheel) {
          continue;  // that is the baseline itself
        }
        std::string label = "timer_s" + std::to_string(shards) +
                            (adaptive ? "_adaptive" : "_conservative") +
                            (wheel ? "_wheel" : "_heap");
        Sweep run(label);
        for (const SweepCell& cell : picked) {
          ExperimentSpec spec = cell.spec;
          spec.shards = shards;
          spec.adaptive_lookahead = adaptive;
          spec.timer_wheel = wheel;
          run.Add(cell.id, spec);
        }
        run.Run(opts);
        ASSERT_EQ(run.failed_count(), 0) << label;
        for (const SweepCell& cell : picked) {
          ExpectIdentical(baseline.Result(cell.id), run.Result(cell.id),
                          cell.id + " " + label, shards);
          const MemoryProfile& mem = run.Result(cell.id).memory;
          if (wheel) {
            EXPECT_GT(mem.timer_high_water, 0u) << label;
          } else {
            EXPECT_EQ(mem.timer_high_water, 0u) << label;
            EXPECT_EQ(mem.timer_bytes_reserved, 0u) << label;
          }
        }
      }
    }
  }
}

// Sharded runs are reproducible against themselves: two shards=4 runs of
// the same cell are bit-identical (thread scheduling never leaks in).
TEST(ShardedEquivalence, ShardedRunsAreReproducible) {
  std::vector<SweepCell> grid = BuildGrid();
  SweepOptions opts;
  opts.jobs = 1;
  opts.shards = 4;

  Sweep first("sharded_repro_a");
  Sweep second("sharded_repro_b");
  // A couple of representative cells, not the whole grid twice.
  for (size_t i = 0; i < grid.size(); i += 2) {
    first.Add(grid[i].id, grid[i].spec);
    second.Add(grid[i].id, grid[i].spec);
  }
  first.Run(opts);
  second.Run(opts);
  ASSERT_EQ(first.failed_count(), 0);
  ASSERT_EQ(second.failed_count(), 0);
  for (const SweepCell& cell : first.cells()) {
    ExpectIdentical(first.Result(cell.id), second.Result(cell.id), cell.id, 4);
  }
}

}  // namespace
}  // namespace escort
