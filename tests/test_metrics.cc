// Metrics-plane core tests: log2 histogram bucket math, the cross-shard
// ShardedSeries merge (differential against a naive serial reference),
// the pinned metrics-JSON schema, byte-identity of the --metrics document
// across --jobs/--shards, and zero perturbation of simulation results
// when metrics collection is toggled.

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/metrics.h"
#include "src/sim/rng.h"
#include "src/workload/sweep.h"

namespace escort {
namespace {

// --- histogram bucket boundaries ---------------------------------------

TEST(MetricHistogramTest, BucketOfEdges) {
  const uint32_t kBuckets = 40;
  EXPECT_EQ(MetricHistogram::BucketOf(0, kBuckets), 0u);
  EXPECT_EQ(MetricHistogram::BucketOf(1, kBuckets), 1u);
  // Bucket k > 0 holds [2^(k-1), 2^k): both edges of several powers.
  for (uint32_t k = 1; k < 20; ++k) {
    const uint64_t lo = 1ull << (k - 1);
    const uint64_t hi = (1ull << k) - 1;
    EXPECT_EQ(MetricHistogram::BucketOf(lo, kBuckets), k) << "lo of bucket " << k;
    EXPECT_EQ(MetricHistogram::BucketOf(hi, kBuckets), k) << "hi of bucket " << k;
  }
  // Values past the range clamp into the last bucket.
  EXPECT_EQ(MetricHistogram::BucketOf(~0ull, kBuckets), kBuckets - 1);
  EXPECT_EQ(MetricHistogram::BucketOf(1ull << 50, 8), 7u);
}

TEST(MetricHistogramTest, BucketUpperBounds) {
  EXPECT_EQ(MetricHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(64), ~0ull);
  // Consistency: a value's bucket upper bound is >= the value.
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 100ull, 65535ull, 65536ull}) {
    const uint32_t b = MetricHistogram::BucketOf(v, 40);
    EXPECT_GE(MetricHistogram::BucketUpperBound(b), v) << "v=" << v;
  }
}

TEST(MetricHistogramTest, ObserveAndPercentiles) {
  MetricHistogram h(16);
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.Observe(3);    // bucket 2, ub 3
  for (int i = 0; i < 10; ++i) h.Observe(200);  // bucket 8, ub 255
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 3 + 10u * 200);
  EXPECT_EQ(h.Percentile(0.50), 3u);
  EXPECT_EQ(h.Percentile(0.90), 3u);
  EXPECT_EQ(h.Percentile(0.99), 255u);
  EXPECT_EQ(h.Percentile(0.0), 3u);   // clamped to rank 1
  EXPECT_EQ(h.Percentile(1.0), 255u);
}

// --- cross-shard merge: differential vs a naive serial reference --------

// The merged series must be a pure function of the (when, delta) event
// multiset — independent of how events are partitioned across lanes.
TEST(ShardedSeriesTest, MergeMatchesSerialReferenceAtAnyLaneCount) {
  const Cycles kInterval = 1000;
  const int kEvents = 5000;
  Rng rng(0xE5C0A7u);

  // One global event sequence with non-decreasing times (as produced by
  // a forward-running simulation).
  std::vector<std::pair<Cycles, int64_t>> events;
  events.reserve(kEvents);
  Cycles when = 0;
  for (int i = 0; i < kEvents; ++i) {
    when += rng.NextBelow(300);
    const int64_t delta = static_cast<int64_t>(rng.NextBelow(7)) - 3;
    events.emplace_back(when, delta);
  }

  // Naive serial reference: sum per bin, then prefix-sum.
  std::map<uint64_t, int64_t> by_bin;
  for (const auto& [t, d] : events) by_bin[t / kInterval] += d;
  std::vector<std::pair<Cycles, int64_t>> want;
  int64_t running = 0;
  for (const auto& [bin, d] : by_bin) {
    running += d;
    want.emplace_back(bin * kInterval, running);
  }

  for (uint32_t lanes : {1u, 2u, 4u, 8u}) {
    ShardedSeries s(lanes, kInterval);
    // Partition by a seeded hash so every lane count sees a different
    // partition of the same events.
    Rng part(0xBADCAFEu + lanes);
    for (const auto& [t, d] : events) {
      s.Record(static_cast<uint32_t>(part.NextBelow(lanes)), t, d);
    }
    EXPECT_EQ(s.Merged(), want) << "lanes=" << lanes;
  }
}

TEST(ShardedSeriesTest, CoalescesWithinBinAndClampsLane) {
  ShardedSeries s(2, 100);
  s.Record(0, 10, 1);
  s.Record(0, 20, 2);   // same bin, coalesces
  s.Record(7, 150, 5);  // out-of-range lane clamps to the last lane
  auto merged = s.Merged();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::pair<Cycles, int64_t>{0, 3}));
  EXPECT_EQ(merged[1], (std::pair<Cycles, int64_t>{100, 8}));
}

// --- golden JSON schema --------------------------------------------------

// Pins the exact serialized form. A diff here is a schema change: update
// the golden string AND tools/ consumers (check_bench_json.py renderers,
// DESIGN.md §6.11) together.
TEST(MetricsRegistryTest, GoldenDocument) {
  MetricsConfig mc;
  mc.sample_interval = 100;
  mc.histogram_buckets = 8;
  MetricsRegistry reg(mc);

  ESCORT_METRIC_COUNTER(&reg, "a.count", "alpha")->Add(3);
  ESCORT_METRIC_GAUGE(&reg, "g", "gee")->Set(-2);
  MetricHistogram* h = ESCORT_METRIC_HISTOGRAM(&reg, "h", "aitch");
  h->Observe(0);
  h->Observe(1);
  h->Observe(5);
  ShardedSeries* s = ESCORT_METRIC_SHARDED(&reg, "s", "ess", 2);
  s->Record(0, 0, 1);
  s->Record(1, 50, 5);
  s->Record(0, 150, 2);
  reg.Sample(100);

  const std::string cell = reg.SerializeCell("golden");
  const std::string want_cell =
      "{\"cell\": \"golden\", \"sample_interval\": 100,\n"
      "\"counters\": [\n"
      "{\"name\": \"a.count\", \"help\": \"alpha\", \"value\": 3, "
      "\"series\": [[100,3]]}],\n"
      "\"gauges\": [\n"
      "{\"name\": \"g\", \"help\": \"gee\", \"value\": -2, "
      "\"series\": [[100,-2]]}],\n"
      "\"histograms\": [\n"
      "{\"name\": \"h\", \"help\": \"aitch\", \"count\": 3, \"sum\": 6, "
      "\"p50\": 0, \"p90\": 1, \"p99\": 1, \"buckets\": [1,1,0,1]}],\n"
      "\"sharded\": [\n"
      "{\"name\": \"s\", \"help\": \"ess\", \"series\": [[0,6],[100,8]]}]}";
  EXPECT_EQ(cell, want_cell);

  const std::string doc = MetricsRegistry::WrapDocument({cell});
  const std::string want_doc = "{\n\"escort_metrics_schema\": 1,\n\"cpu_hz\": " +
                               std::to_string(kCpuHz) + ",\n\"cells\": [\n" +
                               want_cell + "\n]\n}\n";
  EXPECT_EQ(doc, want_doc);
}

TEST(MetricsRegistryTest, SampleCoalescesRepeatedValues) {
  MetricsRegistry reg;
  MetricCounter* c = ESCORT_METRIC_COUNTER(&reg, "c", "c");
  c->Increment();
  reg.Sample(10);
  reg.Sample(20);  // unchanged value: no new point
  c->Increment();
  reg.Sample(30);
  const std::string cell = reg.SerializeCell("x");
  EXPECT_NE(cell.find("\"series\": [[10,1],[30,2]]"), std::string::npos) << cell;
}

TEST(MetricsRegistryTest, NullSafeHelpersNoOp) {
  MetricAdd(static_cast<MetricCounter*>(nullptr));
  MetricAdd(static_cast<MetricGauge*>(nullptr), 3);
  MetricSet(nullptr, 5);
  MetricObserve(nullptr, 9);
  MetricRecord(nullptr, 0, 100, 1);  // all must be safe no-ops
}

// --- byte-identity across --jobs/--shards --------------------------------

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<SweepCell> SmallGrid() {
  Sweep proto("metrics_identity");
  ExperimentSpec benign;
  benign.config = ServerConfig::kAccountingPd;
  benign.clients = 4;
  benign.doc = "/doc1k";
  benign.warmup_s = 0.05;
  benign.window_s = 0.2;
  proto.Add("benign", benign);
  ExperimentSpec attack = benign;
  attack.syn_attack_rate = 800.0;
  proto.Add("attack", attack);
  return proto.cells();
}

TEST(MetricsDeterminismTest, DocumentByteIdenticalAcrossJobsAndShards) {
  std::vector<SweepCell> grid = SmallGrid();
  std::string reference;
  for (int jobs : {1, 4}) {
    for (int shards : {1, 4}) {
      const std::string path = testing::TempDir() + "metrics_j" +
                               std::to_string(jobs) + "_s" +
                               std::to_string(shards) + ".json";
      Sweep sweep("metrics_identity");
      for (const SweepCell& cell : grid) sweep.Add(cell.id, cell.spec);
      SweepOptions opts;
      opts.jobs = jobs;
      opts.shards = shards;
      opts.metrics_path = path;
      sweep.Run(opts);
      ASSERT_EQ(sweep.failed_count(), 0);
      const std::string doc = Slurp(path);
      ASSERT_FALSE(doc.empty());
      if (reference.empty()) {
        reference = doc;
      } else {
        EXPECT_EQ(doc, reference)
            << "metrics document differs at jobs=" << jobs
            << " shards=" << shards;
      }
    }
  }
}

// --- zero perturbation ---------------------------------------------------

// Metrics collection is observation only: toggling it must not change a
// single bit of the simulation results. The sampler runs as scheduled
// events, so this is a real property, not a tautology.
TEST(MetricsDeterminismTest, CollectionDoesNotPerturbResults) {
  for (bool attack : {false, true}) {
    ExperimentSpec spec;
    spec.config = ServerConfig::kAccountingPd;
    spec.clients = 4;
    spec.doc = "/doc1k";
    spec.warmup_s = 0.05;
    spec.window_s = 0.2;
    if (attack) spec.syn_attack_rate = 800.0;

    ExperimentSpec with = spec;
    with.collect_metrics = true;
    ExperimentSpec without = spec;
    without.collect_metrics = false;
    const ExperimentResult a = RunExperiment(with);
    const ExperimentResult b = RunExperiment(without);

    const std::string ctx = attack ? "attack" : "benign";
    EXPECT_EQ(a.conns_per_sec, b.conns_per_sec) << ctx;
    EXPECT_EQ(a.completions_total, b.completions_total) << ctx;
    EXPECT_EQ(a.client_failures, b.client_failures) << ctx;
    EXPECT_EQ(a.paths_killed, b.paths_killed) << ctx;
    EXPECT_EQ(a.syns_dropped_at_demux, b.syns_dropped_at_demux) << ctx;
    EXPECT_EQ(a.syns_sent, b.syns_sent) << ctx;
    EXPECT_EQ(a.runaway_detections, b.runaway_detections) << ctx;
    EXPECT_EQ(a.window_cycles, b.window_cycles) << ctx;
    EXPECT_EQ(a.ledger.totals(), b.ledger.totals()) << ctx;
    // With collection on, the monitor reports; off, it cannot.
    EXPECT_TRUE(b.incidents.empty()) << ctx;
    if (attack) EXPECT_FALSE(a.incidents.empty()) << ctx;
  }
}

}  // namespace
}  // namespace escort
