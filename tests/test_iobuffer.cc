// IOBuffer tests (paper §3.3): mapping rules, lock/refcount semantics,
// buffer cache reuse, second-owner association, reclamation.

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"

namespace escort {
namespace {

class IoBufferTest : public ::testing::Test {
 protected:
  IoBufferTest() {
    KernelConfig kc;
    kc.start_softclock = false;
    kc.protection_domains = true;
    kernel_ = std::make_unique<Kernel>(&eq_, kc);
    pd1_ = kernel_->CreateDomain("one");
    pd2_ = kernel_->CreateDomain("two");
    pd3_ = kernel_->CreateDomain("three");
  }

  EventQueue eq_;
  std::unique_ptr<Kernel> kernel_;
  ProtectionDomain* pd1_;
  ProtectionDomain* pd2_;
  ProtectionDomain* pd3_;
};

TEST_F(IoBufferTest, AllocMapsWriterAndReaders) {
  IoBuffer* buf =
      kernel_->AllocIoBuffer(pd1_, 100, pd1_->pd_id(), {pd1_->pd_id(), pd2_->pd_id()});
  ASSERT_NE(buf, nullptr);
  EXPECT_TRUE(buf->CanWrite(pd1_->pd_id()));
  EXPECT_TRUE(buf->CanRead(pd2_->pd_id()));
  EXPECT_FALSE(buf->CanWrite(pd2_->pd_id()));
  EXPECT_FALSE(buf->CanRead(pd3_->pd_id()));
  EXPECT_EQ(buf->writer_pd(), pd1_->pd_id());
}

TEST_F(IoBufferTest, SizeRoundsUpToWholePages) {
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 1, pd1_->pd_id(), {});
  EXPECT_EQ(buf->size(), kPageSize);
  IoBuffer* big = kernel_->AllocIoBuffer(pd1_, kPageSize + 1, pd1_->pd_id(), {});
  EXPECT_EQ(big->size(), 2 * kPageSize);
}

TEST_F(IoBufferTest, ReadWriteEnforceMappings) {
  IoBuffer* buf =
      kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id(), pd2_->pd_id()});
  uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_TRUE(buf->Write(pd1_->pd_id(), 0, data, 4));
  // pd2 has a read-only mapping.
  uint8_t out[4] = {0};
  EXPECT_TRUE(buf->Read(pd2_->pd_id(), 0, out, 4));
  EXPECT_EQ(out[3], 4);
  EXPECT_FALSE(buf->Write(pd2_->pd_id(), 0, data, 4));
  // pd3 has no mapping at all.
  EXPECT_FALSE(buf->Read(pd3_->pd_id(), 0, out, 4));
  EXPECT_EQ(buf->fault_count(), 2u);
}

TEST_F(IoBufferTest, OutOfBoundsAccessFaults) {
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {});
  uint8_t byte = 7;
  EXPECT_FALSE(buf->Write(pd1_->pd_id(), buf->size(), &byte, 1));
}

TEST_F(IoBufferTest, LockRevokesAllWritePermission) {
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {});
  uint8_t byte = 9;
  ASSERT_TRUE(buf->Write(pd1_->pd_id(), 0, &byte, 1));
  kernel_->LockIoBuffer(buf, pd2_);
  // After locking, even the original writer cannot alter the buffer.
  EXPECT_FALSE(buf->Write(pd1_->pd_id(), 0, &byte, 1));
  EXPECT_EQ(buf->writer_pd(), IoBuffer::kNoWriter);
}

TEST_F(IoBufferTest, UnlockToZeroEntersCacheAndReuses) {
  IoBuffer* buf =
      kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id(), pd2_->pd_id()});
  uint64_t id = buf->id();
  kernel_->UnlockIoBuffer(buf, pd1_);  // drops the alloc lock -> cached
  EXPECT_EQ(kernel_->iobuffers().cached_buffers(), 1u);

  // Same size + read mappings covered: the cache satisfies the request with
  // one mapping change (the current domain upgrades to read/write).
  bool was_hit = kernel_->iobuffers().cache_hit_count();
  IoBuffer* again =
      kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id(), pd2_->pd_id()});
  EXPECT_EQ(again->id(), id);
  EXPECT_GT(kernel_->iobuffers().cache_hit_count(), static_cast<uint64_t>(was_hit));
  EXPECT_TRUE(again->CanWrite(pd1_->pd_id()));
}

TEST_F(IoBufferTest, CacheMissWhenMappingsDontCover) {
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id()});
  kernel_->UnlockIoBuffer(buf, pd1_);
  // Requesting read mapping in pd3, which the cached buffer lacks.
  IoBuffer* other =
      kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id(), pd3_->pd_id()});
  EXPECT_NE(other->id(), buf->id());
  EXPECT_EQ(kernel_->iobuffers().cache_hit_count(), 0u);
}

TEST_F(IoBufferTest, OwnerChargedForBufferMemory) {
  uint64_t before = pd1_->usage().kmem_bytes;
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 100, pd1_->pd_id(), {});
  EXPECT_EQ(pd1_->usage().kmem_bytes, before + buf->size());
  EXPECT_EQ(pd1_->usage().iobuffer_locks, 1u);
  kernel_->UnlockIoBuffer(buf, pd1_);
  EXPECT_EQ(pd1_->usage().kmem_bytes, before);
  EXPECT_EQ(pd1_->usage().iobuffer_locks, 0u);
}

TEST_F(IoBufferTest, AssociateChargesSecondOwnerFully) {
  // The web-cache use case: FS's domain allocates; the buffer is later
  // associated with a path-like second owner which is fully charged.
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {pd1_->pd_id()});
  Owner second(OwnerType::kKernel, kernel_->NextOwnerId(), "second");
  kernel_->RegisterOwner(&second, "second");
  kernel_->AssociateIoBuffer(buf, &second, {pd2_->pd_id(), pd3_->pd_id()});

  EXPECT_TRUE(buf->CanRead(pd2_->pd_id()));
  EXPECT_TRUE(buf->CanRead(pd3_->pd_id()));
  EXPECT_EQ(second.usage().kmem_bytes, buf->size());
  EXPECT_EQ(buf->holder_count(), 2u);

  // The original owner dropping its lock must not free the buffer: the
  // second owner holds it.
  kernel_->UnlockIoBuffer(buf, pd1_);
  EXPECT_EQ(kernel_->iobuffers().cached_buffers(), 0u);
  kernel_->UnlockIoBuffer(buf, &second);
  EXPECT_EQ(kernel_->iobuffers().cached_buffers(), 1u);
}

TEST_F(IoBufferTest, ReleaseAllForDropsEveryLock) {
  Owner owner(OwnerType::kKernel, kernel_->NextOwnerId(), "o");
  kernel_->RegisterOwner(&owner, "o");
  for (int i = 0; i < 5; ++i) {
    kernel_->AllocIoBuffer(&owner, 64, pd1_->pd_id(), {});
  }
  EXPECT_EQ(owner.usage().iobuffer_locks, 5u);
  uint64_t released = kernel_->iobuffers().ReleaseAllFor(&owner);
  EXPECT_EQ(released, 5u);
  EXPECT_EQ(owner.usage().iobuffer_locks, 0u);
  EXPECT_EQ(owner.usage().kmem_bytes, 0u);
  EXPECT_EQ(kernel_->iobuffers().cached_buffers(), 5u);
}

TEST_F(IoBufferTest, DoubleLockBySameOwnerCountsOnce) {
  IoBuffer* buf = kernel_->AllocIoBuffer(pd1_, 64, pd1_->pd_id(), {});
  kernel_->LockIoBuffer(buf, pd1_);
  EXPECT_EQ(buf->lock_count(), 2);
  EXPECT_EQ(buf->holder_count(), 1u);
  // kmem charged once per holder, not per lock.
  EXPECT_EQ(pd1_->usage().kmem_bytes, buf->size());
  kernel_->UnlockIoBuffer(buf, pd1_);
  kernel_->UnlockIoBuffer(buf, pd1_);
  EXPECT_EQ(buf->lock_count(), 0);
}

}  // namespace
}  // namespace escort
