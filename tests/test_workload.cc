// Workload-layer tests: the shared link, bounded queues, the experiment
// harness itself, and the elib bounded queue.

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/elib/bounded_queue.h"
#include "src/workload/experiment.h"

namespace escort {
namespace {

TEST(BoundedQueue, FifoAndCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_FALSE(q.Push(3));  // full: dropped
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.high_water(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

class NullEndpoint : public NetEndpoint {
 public:
  void DeliverFrame(const std::vector<uint8_t>& frame) override {
    ++frames;
    last_size = frame.size();
    times.push_back(now ? *now : 0);
  }
  uint64_t frames = 0;
  size_t last_size = 0;
  const Cycles* now = nullptr;
  std::vector<Cycles> times;
};

TEST(SharedLink, DeliversUnicastToOwnerOfDestinationMac) {
  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  NullEndpoint a;
  NullEndpoint b;
  a.now = &eq.now_ref();
  b.now = &eq.now_ref();
  link.Attach(MacAddr::FromIndex(1), &a);
  link.Attach(MacAddr::FromIndex(2), &b);

  std::vector<uint8_t> frame(100, 0);
  std::copy_n(MacAddr::FromIndex(2).bytes.begin(), 6, frame.begin());
  link.Send(MacAddr::FromIndex(1), frame);
  eq.RunToCompletion();
  EXPECT_EQ(a.frames, 0u);
  EXPECT_EQ(b.frames, 1u);
  EXPECT_EQ(b.last_size, 100u);
}

TEST(SharedLink, BroadcastReachesEveryoneButSender) {
  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  NullEndpoint a, b, c;
  link.Attach(MacAddr::FromIndex(1), &a);
  link.Attach(MacAddr::FromIndex(2), &b);
  link.Attach(MacAddr::FromIndex(3), &c);
  std::vector<uint8_t> frame(64, 0);
  std::copy_n(MacAddr::Broadcast().bytes.begin(), 6, frame.begin());
  link.Send(MacAddr::FromIndex(1), frame);
  eq.RunToCompletion();
  EXPECT_EQ(a.frames, 0u);
  EXPECT_EQ(b.frames, 1u);
  EXPECT_EQ(c.frames, 1u);
}

TEST(SharedLink, MediumSerializesTransmissions) {
  EventQueue eq;
  NetworkModel model = NetworkModel::Calibrated();
  SharedLink link(&eq, model);
  NullEndpoint sink;
  sink.now = &eq.now_ref();
  link.Attach(MacAddr::FromIndex(2), &sink, 0);

  // Two back-to-back 1500-byte frames: the second arrives one
  // serialization time after the first.
  std::vector<uint8_t> frame(1500, 0);
  std::copy_n(MacAddr::FromIndex(2).bytes.begin(), 6, frame.begin());
  link.Send(MacAddr::FromIndex(1), frame);
  link.Send(MacAddr::FromIndex(1), frame);
  eq.RunToCompletion();
  ASSERT_EQ(sink.times.size(), 2u);
  Cycles gap = sink.times[1] - sink.times[0];
  double expected_secs = (1500 + 24) * 8 / model.link_bandwidth_bps;
  EXPECT_NEAR(SecondsFromCycles(gap), expected_secs, expected_secs * 0.05);
}

TEST(SharedLink, DropEveryNDropsDeterministically) {
  EventQueue eq;
  SharedLink link(&eq, NetworkModel::Calibrated());
  NullEndpoint sink;
  link.Attach(MacAddr::FromIndex(2), &sink);
  link.set_drop_every(3);
  std::vector<uint8_t> frame(64, 0);
  std::copy_n(MacAddr::FromIndex(2).bytes.begin(), 6, frame.begin());
  for (int i = 0; i < 9; ++i) {
    link.Send(MacAddr::FromIndex(1), frame);
  }
  eq.RunToCompletion();
  EXPECT_EQ(link.frames_dropped(), 3u);
  EXPECT_EQ(sink.frames, 6u);
}

TEST(ExperimentHarness, BasicRunProducesThroughput) {
  ExperimentSpec spec;
  spec.clients = 4;
  spec.warmup_s = 0.2;
  spec.window_s = 0.4;
  ExperimentResult r = RunExperiment(spec);
  EXPECT_GT(r.conns_per_sec, 100.0);
  EXPECT_EQ(r.client_failures, 0u);
  EXPECT_GT(r.ledger.Get("Main Active Path"), 0u);
  // Conservation over the measurement window.
  double drift = std::abs(static_cast<double>(r.ledger.Total()) -
                          static_cast<double>(r.window_cycles));
  EXPECT_LT(drift / static_cast<double>(r.window_cycles), 0.001);
}

TEST(ExperimentHarness, LinuxComparatorRuns) {
  ExperimentSpec spec;
  spec.linux_server = true;
  spec.clients = 4;
  spec.warmup_s = 0.2;
  spec.window_s = 0.4;
  ExperimentResult r = RunExperiment(spec);
  EXPECT_GT(r.conns_per_sec, 100.0);
}

TEST(ExperimentHarness, DeterministicAcrossRuns) {
  ExperimentSpec spec;
  spec.clients = 2;
  spec.warmup_s = 0.1;
  spec.window_s = 0.2;
  ExperimentResult a = RunExperiment(spec);
  ExperimentResult b = RunExperiment(spec);
  EXPECT_EQ(a.conns_per_sec, b.conns_per_sec);
  EXPECT_EQ(a.completions_total, b.completions_total);
  EXPECT_EQ(a.ledger.Total(), b.ledger.Total());
}

TEST(ExperimentHarness, EnvOverridesRespected) {
  ::setenv("ESCORT_TEST_SECONDS", "1.5", 1);
  EXPECT_DOUBLE_EQ(EnvSeconds("ESCORT_TEST_SECONDS", 9.9), 1.5);
  ::setenv("ESCORT_TEST_SECONDS", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvSeconds("ESCORT_TEST_SECONDS", 9.9), 9.9);
  ::unsetenv("ESCORT_TEST_SECONDS");
  EXPECT_DOUBLE_EQ(EnvSeconds("ESCORT_TEST_SECONDS", 9.9), 9.9);
}

TEST(ExperimentHarness, AccuracyRunBalancesExactly) {
  AccuracyResult r = RunAccountingAccuracy(ServerConfig::kAccounting, 10);
  EXPECT_EQ(r.requests, 10u);
  EXPECT_EQ(r.ledger.Total(), r.total_measured);
  EXPECT_GT(r.ledger.Get("Main Active Path"), 0u);
  EXPECT_GT(r.ledger.Get("Passive SYN Path"), 0u);
}

TEST(ExperimentHarness, KillCostMatchesTable2Band) {
  KillCostResult r = RunKillCost(ServerConfig::kAccounting, 3);
  EXPECT_EQ(r.kills, 3u);
  // Calibrated near the paper's 17,951 cycles.
  EXPECT_GT(r.mean_cycles, 10'000.0);
  EXPECT_LT(r.mean_cycles, 30'000.0);

  KillCostResult pd = RunKillCost(ServerConfig::kAccountingPd, 3);
  // Full separation costs several times more (paper: 111,568 vs 17,951).
  EXPECT_GT(pd.mean_cycles, 3 * r.mean_cycles);
}

}  // namespace
}  // namespace escort
