// End-to-end integration tests: the full web server over real frames, in
// all three configurations — request completion, accounting conservation,
// resource reclamation, DoS policies.

#include <gtest/gtest.h>

#include <cmath>

#include "tests/testbed.h"

namespace escort {
namespace {

class ConfigSweep : public ::testing::TestWithParam<ServerConfig> {};

TEST_P(ConfigSweep, ClientFetchesDocumentEndToEnd) {
  Testbed tb(GetParam());
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1k");
  client.max_requests = 3;
  client.Start();
  tb.RunFor(1.0);

  EXPECT_EQ(client.completed(), 3u);
  EXPECT_EQ(client.failed(), 0u);
  // 3 x (response header + 1024 bytes body).
  EXPECT_GT(client.bytes_received(), 3 * 1024u);
  EXPECT_EQ(tb.server->http()->responses_sent(), 3u);
}

TEST_P(ConfigSweep, AccountingConservationUnderLoad) {
  Testbed tb(GetParam());
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(
        std::make_unique<HttpClient>(tb.AddClient(i), tb.server->options().ip, "/doc1b"));
    clients.back()->Start(CyclesFromMillis(i));
  }
  tb.RunFor(0.5);
  // Every cycle of simulated time is charged to exactly one owner. The
  // snapshot is taken mid-flight; the kernel reports the one in-flight busy
  // segment's uncharged cycles, making the invariant exact at any instant.
  CycleLedger ledger = tb.server->kernel().Snapshot();
  int64_t elapsed =
      static_cast<int64_t>(tb.eq.now() - tb.server->kernel().start_time());
  EXPECT_EQ(static_cast<int64_t>(ledger.Total()) +
                tb.server->kernel().UnsettledBusyCycles(),
            elapsed);
  EXPECT_GT(ledger.Get("Main Active Path"), 0u);
  EXPECT_GT(ledger.Get("Passive SYN Path"), 0u);
}

TEST_P(ConfigSweep, PathsAreReclaimedAfterConnectionsClose) {
  Testbed tb(GetParam());
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1b");
  client.max_requests = 5;
  client.Start();
  tb.RunFor(1.5);

  EXPECT_EQ(client.completed(), 5u);
  // All active paths destroyed: only the boot-time paths remain (ARP path +
  // two passive listeners).
  EXPECT_EQ(tb.server->paths().live_count(), 3u);
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
}

TEST_P(ConfigSweep, NotFoundProduces404) {
  Testbed tb(GetParam());
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/missing");
  client.max_requests = 1;
  client.Start();
  tb.RunFor(0.5);
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(tb.server->http()->errors_sent(), 1u);
  EXPECT_EQ(tb.server->fs()->lookup_failures(), 1u);
}

TEST_P(ConfigSweep, BenignCgiProducesOutput) {
  Testbed tb(GetParam());
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/cgi-bin/hello");
  client.max_requests = 1;
  client.Start();
  tb.RunFor(0.5);
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_EQ(tb.server->cgi()->scripts_started(), 1u);
  EXPECT_GT(client.bytes_received(), 30u);  // "Hello from the Escort CGI module\n"
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigSweep,
                         ::testing::Values(ServerConfig::kScout, ServerConfig::kAccounting,
                                           ServerConfig::kAccountingPd),
                         [](const ::testing::TestParamInfo<ServerConfig>& pinfo) { return ServerConfigName(pinfo.param); });

TEST(WebServerIntegration, FsCacheMissesDiskThenHits) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc10k");
  client.max_requests = 3;
  client.Start();
  tb.RunFor(1.5);
  EXPECT_EQ(client.completed(), 3u);
  EXPECT_EQ(tb.server->fs()->cache_misses(), 1u);  // first access reads the disk
  EXPECT_EQ(tb.server->fs()->cache_hits(), 2u);
  EXPECT_EQ(tb.server->scsi()->reads_issued(), 1u);
}

TEST(WebServerIntegration, RunawayCgiIsDetectedAndKilled) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  CgiAttacker attacker(m, tb.server->options().ip, CyclesFromSeconds(10));  // one attack
  attacker.Start();
  tb.RunFor(0.5);

  EXPECT_EQ(tb.server->cgi()->runaways_started(), 1u);
  EXPECT_EQ(tb.server->kernel().runaway_detections(), 1u);
  EXPECT_EQ(tb.server->paths_killed(), 1u);
  // The runaway burned roughly the 2 ms budget before detection.
  EXPECT_GT(tb.server->cgi()->runaway_chunks_run(), 10u);
  // All path resources reclaimed; only boot paths remain.
  EXPECT_EQ(tb.server->paths().live_count(), 3u);
  EXPECT_GT(tb.server->kill_cost_cycles().Mean(), 0.0);
}

TEST(WebServerIntegration, RunawayDoesNotStarveOtherClients) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* good = tb.AddClient(0);
  HttpClient client(good, tb.server->options().ip, "/doc1b");
  client.Start();
  ClientMachine* bad = tb.AddClient(1);
  CgiAttacker attacker(bad, tb.server->options().ip, CyclesFromMillis(100));
  attacker.Start(CyclesFromMillis(50));
  tb.RunFor(1.0);

  EXPECT_GT(tb.server->paths_killed(), 3u);
  // The good client keeps completing requests throughout.
  EXPECT_GT(client.completed(), 100u);
}

TEST(WebServerIntegration, SynFloodDroppedAtDemuxTrustedUnaffected) {
  Testbed tb(ServerConfig::kAccounting);
  // Untrusted SYN attacker at 2000/s.
  MacAddr amac = MacAddr::FromIndex(60);
  SynAttacker attacker(&tb.eq, tb.link.get(), amac, Ip4Addr::FromOctets(192, 168, 9, 9),
                       tb.server->options().ip, tb.server->options().mac, 2000.0);
  attacker.Start();

  ClientMachine* good = tb.AddClient(0);
  HttpClient client(good, tb.server->options().ip, "/doc1b");
  client.Start();
  tb.RunFor(1.0);

  TcpListener* untrusted = tb.server->untrusted_listener();
  EXPECT_GT(attacker.syns_sent(), 1500u);
  EXPECT_GT(untrusted->syns_dropped_at_demux, 1000u);
  // Half-open connections bounded by the listener budget.
  EXPECT_LE(untrusted->syn_recvd, tb.server->options().untrusted_syn_limit);
  // Trusted client service continues.
  EXPECT_GT(client.completed(), 100u);
  EXPECT_EQ(client.failed(), 0u);
}

TEST(WebServerIntegration, HalfOpenConnectionsTimeOutAndAreReclaimed) {
  WebServerOptions opts;
  opts.untrusted_syn_limit = 0;  // no demux budget: rely on SYN_RECVD timeout
  Testbed tb(ServerConfig::kAccounting, opts);
  MacAddr amac = MacAddr::FromIndex(60);
  SynAttacker attacker(&tb.eq, tb.link.get(), amac, Ip4Addr::FromOctets(192, 168, 9, 9),
                       tb.server->options().ip, tb.server->options().mac, 100.0);
  attacker.Start();
  tb.RunFor(0.4);
  EXPECT_GT(tb.server->tcp()->conn_count(), 10u);  // half-open paths alive
  attacker.Stop();
  // The untrusted listener slow-walks half-open connections for 1.5 s;
  // everything must be reclaimed afterwards.
  tb.RunFor(2.0);
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
  EXPECT_EQ(tb.server->paths().live_count(), 3u);
}

TEST(WebServerIntegration, QosStreamHoldsRateUnderLoad) {
  Testbed tb(ServerConfig::kAccounting);
  std::vector<std::unique_ptr<HttpClient>> churn;
  for (int i = 0; i < 8; ++i) {
    churn.push_back(
        std::make_unique<HttpClient>(tb.AddClient(i), tb.server->options().ip, "/doc1b"));
    churn.back()->Start(CyclesFromMillis(i));
  }
  ClientMachine* qm = tb.AddClient(40);
  QosReceiver receiver(qm, tb.server->options().ip);
  receiver.Start();
  tb.RunFor(0.5);
  receiver.meter().OpenWindow(tb.eq.now());
  tb.RunFor(1.0);
  double rate = receiver.meter().CloseWindowBytesPerSec(tb.eq.now());
  EXPECT_NEAR(rate, 1e6, 0.02e6);  // within 2% in the unit test
  EXPECT_EQ(tb.server->http()->streams_started(), 1u);
}

TEST(WebServerIntegration, PdConfigCrossesDomains) {
  Testbed tb(ServerConfig::kAccountingPd);
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1b");
  client.max_requests = 1;
  client.Start();
  tb.RunFor(0.5);
  EXPECT_EQ(client.completed(), 1u);
  EXPECT_GT(tb.server->kernel().pd_crossings(), 10u);
  EXPECT_EQ(tb.server->kernel().crossing_violations(), 0u);
  // Every module got its own domain: privileged + 8 modules.
  EXPECT_EQ(tb.server->kernel().domains().size(), 9u);
}

TEST(WebServerIntegration, ScoutConfigHasNoAccountingOverhead) {
  Testbed tb(ServerConfig::kScout);
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1b");
  client.max_requests = 2;
  client.Start();
  tb.RunFor(0.5);
  EXPECT_EQ(client.completed(), 2u);
  EXPECT_EQ(tb.server->kernel().accounting_overhead_cycles(), 0u);
  EXPECT_EQ(tb.server->kernel().pd_crossings(), 0u);
}

TEST(WebServerIntegration, ArpRequestsAreAnswered) {
  Testbed tb(ServerConfig::kAccounting);
  // A client without a preloaded server ARP entry resolves it first.
  Ip4Addr ip = Ip4Addr::FromOctets(10, 0, 1, 200);
  ClientMachine fresh(&tb.eq, tb.link.get(), MacAddr::FromIndex(77), ip,
                      NetworkModel::Calibrated(), 99);
  tb.server->AddArpEntry(ip, fresh.mac());

  ArpPacket req;
  req.opcode = 1;
  req.sender_mac = fresh.mac();
  req.sender_ip = ip;
  req.target_ip = tb.server->options().ip;
  fresh.Transmit(BuildArpFrame(fresh.mac(), MacAddr::Broadcast(), req));
  tb.RunFor(0.05);

  EXPECT_EQ(tb.server->arp()->requests_answered(), 1u);
  // The reply taught the client the server's MAC; a TCP connection works.
  HttpClient client(&fresh, tb.server->options().ip, "/doc1b");
  client.max_requests = 1;
  client.Start();
  tb.RunFor(0.5);
  EXPECT_EQ(client.completed(), 1u);
}

TEST(WebServerIntegration, RetransmissionRecoversFromFrameLoss) {
  Testbed tb(ServerConfig::kAccounting);
  tb.link->set_drop_every(29);  // drop ~3.5% of frames
  ClientMachine* m = tb.AddClient(0);
  m->retransmit_timeout = CyclesFromMillis(300);
  m->max_retransmits = 12;
  HttpClient client(m, tb.server->options().ip, "/doc1b");
  client.max_requests = 10;
  client.Start();
  tb.RunFor(12.0);
  EXPECT_EQ(client.completed(), 10u);
  EXPECT_GT(tb.link->frames_dropped(), 0u);
}

}  // namespace
}  // namespace escort
