// Unit-level network tests: routing table, ARP protocol behaviour, and the
// web server under each of the three configurable schedulers.

#include <gtest/gtest.h>

#include "tests/testbed.h"

namespace escort {
namespace {

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.Add(Route{Subnet{Ip4Addr{0}, 0}, Ip4Addr::FromOctets(10, 0, 0, 254), 10});  // default gw
  table.Add(Route{Subnet{Ip4Addr::FromOctets(10, 0, 0, 0), 8}, Ip4Addr{0}, 5});     // on-link

  // 10/8 destination: on-link (next hop == destination).
  auto hop = table.Lookup(Ip4Addr::FromOctets(10, 1, 2, 3));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, Ip4Addr::FromOctets(10, 1, 2, 3));

  // Anything else: via the default gateway.
  hop = table.Lookup(Ip4Addr::FromOctets(8, 8, 8, 8));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, Ip4Addr::FromOctets(10, 0, 0, 254));
}

TEST(RoutingTable, EmptyTableIsUnroutable) {
  RoutingTable table;
  EXPECT_FALSE(table.Lookup(Ip4Addr::FromOctets(1, 2, 3, 4)).has_value());
}

TEST(RoutingTable, MetricBreaksTies) {
  RoutingTable table;
  table.Add(Route{Subnet{Ip4Addr::FromOctets(10, 0, 0, 0), 8}, Ip4Addr::FromOctets(10, 9, 9, 1), 20});
  table.Add(Route{Subnet{Ip4Addr::FromOctets(10, 0, 0, 0), 8}, Ip4Addr::FromOctets(10, 9, 9, 2), 5});
  auto hop = table.Lookup(Ip4Addr::FromOctets(10, 1, 1, 1));
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(*hop, Ip4Addr::FromOctets(10, 9, 9, 2));
}

TEST(ArpModule, ResolveAfterStaticEntry) {
  Testbed tb(ServerConfig::kAccounting);
  ArpModule* arp = tb.server->arp();
  EXPECT_FALSE(arp->Resolve(Ip4Addr::FromOctets(10, 0, 5, 5)).has_value());
  arp->AddEntry(Ip4Addr::FromOctets(10, 0, 5, 5), MacAddr::FromIndex(55));
  auto mac = arp->Resolve(Ip4Addr::FromOctets(10, 0, 5, 5));
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, MacAddr::FromIndex(55));
}

TEST(ArpModule, LearnsFromIncomingRequests) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  size_t before = tb.server->arp()->table_size();
  ArpPacket req;
  req.opcode = 1;
  req.sender_mac = MacAddr::FromIndex(200);
  req.sender_ip = Ip4Addr::FromOctets(10, 0, 9, 9);
  req.target_ip = tb.server->options().ip;
  m->Transmit(BuildArpFrame(MacAddr::FromIndex(200), MacAddr::Broadcast(), req));
  tb.RunFor(0.05);
  EXPECT_EQ(tb.server->arp()->table_size(), before + 1);
  EXPECT_EQ(tb.server->arp()->requests_answered(), 1u);
  auto mac = tb.server->arp()->Resolve(Ip4Addr::FromOctets(10, 0, 9, 9));
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(*mac, MacAddr::FromIndex(200));
}

TEST(ArpModule, RequestsForOthersNotAnswered) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  ArpPacket req;
  req.opcode = 1;
  req.sender_mac = m->mac();
  req.sender_ip = m->ip();
  req.target_ip = Ip4Addr::FromOctets(10, 0, 0, 200);  // not the server
  m->Transmit(BuildArpFrame(m->mac(), MacAddr::Broadcast(), req));
  tb.RunFor(0.05);
  EXPECT_EQ(tb.server->arp()->requests_answered(), 0u);
}

TEST(IpModule, UnroutableOutboundTriggersArpRequest) {
  Testbed tb(ServerConfig::kAccounting);
  // A SYN from a peer the server has no ARP entry for: the SYN-ACK cannot
  // be sent, so IP kicks off resolution; the client answers the request,
  // and the server's SYN-ACK retransmission then succeeds.
  Ip4Addr ip = Ip4Addr::FromOctets(10, 0, 1, 77);
  ClientMachine fresh(&tb.eq, tb.link.get(), MacAddr::FromIndex(77), ip,
                      NetworkModel::Calibrated(), 3);
  fresh.AddArpEntry(tb.server->options().ip, tb.server->options().mac);
  // NOTE: no tb.server->AddArpEntry for this client.
  HttpClient client(&fresh, tb.server->options().ip, "/doc1b");
  client.max_requests = 1;
  client.Start();
  tb.RunFor(2.0);
  EXPECT_GT(tb.server->ip_module()->unroutable(), 0u);
  EXPECT_EQ(client.completed(), 1u);  // recovered via ARP + retransmit
}

class SchedulerSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(SchedulerSweep, WebServerWorksUnderEveryScheduler) {
  WebServerOptions opts;
  opts.scheduler = GetParam();
  Testbed tb(ServerConfig::kAccounting, opts);
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1k");
  client.max_requests = 5;
  client.Start();
  tb.RunFor(1.0);
  EXPECT_EQ(client.completed(), 5u);
  EXPECT_EQ(client.failed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Values(SchedulerKind::kPriority,
                                           SchedulerKind::kProportionalShare,
                                           SchedulerKind::kEdf),
                         [](const ::testing::TestParamInfo<SchedulerKind>& pinfo) {
                           switch (pinfo.param) {
                             case SchedulerKind::kPriority: return "priority";
                             case SchedulerKind::kProportionalShare: return "stride";
                             case SchedulerKind::kEdf: return "edf";
                           }
                           return "?";
                         });

TEST(EthDriver, NonIpNonArpFramesDropped) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  // An IPX-ish frame: ethertype 0x8137.
  std::vector<uint8_t> frame(64, 0);
  std::copy_n(tb.server->options().mac.bytes.begin(), 6, frame.begin());
  std::copy_n(m->mac().bytes.begin(), 6, frame.begin() + 6);
  frame[12] = 0x81;
  frame[13] = 0x37;
  m->Transmit(frame);
  tb.RunFor(0.05);
  EXPECT_EQ(tb.server->paths().drop_reasons().at("eth-type"), 1u);
}

TEST(EthDriver, FramesForOtherMacsIgnored) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  TcpHeader syn;
  syn.src_port = 1;
  syn.dst_port = 80;
  syn.flags = kTcpSyn;
  // Unicast-addressed to a third party, but delivered here (hub behaviour
  // is emulated by addressing the frame to the server MAC at the link
  // layer destination while the inner dst differs — build to wrong MAC).
  std::vector<uint8_t> frame = BuildTcpFrame(m->mac(), MacAddr::FromIndex(42), m->ip(),
                                             tb.server->options().ip, syn, {});
  // Force-deliver to the server as if the hub flooded it.
  tb.server->DeliverFrame(frame);
  tb.RunFor(0.05);
  EXPECT_EQ(tb.server->paths().drop_reasons().at("eth-notus"), 1u);
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
}

}  // namespace
}  // namespace escort
