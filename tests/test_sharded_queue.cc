// Unit semantics of ShardedEventQueue: the stream-keyed total order
// (when, stream, seq, minor), conservative windows, sequenced cross-shard
// transactions, and — the headline property — that a scripted workload
// produces the identical trace at every shard count. The full-system
// version of that property is tests/test_sharded_equivalence.cc; this file
// pins the queue mechanics in isolation.

#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

namespace escort {
namespace {

TEST(ShardedQueue, ShardCountIsClampedAndStreamsRoundRobin) {
  ShardedEventQueue eq(4, 100);
  EXPECT_EQ(eq.shard_count(), 4);
  EXPECT_EQ(eq.lookahead(), 100u);
  // Stream 0 pre-exists on shard 0.
  EXPECT_EQ(eq.shard_of(0), 0);
  EXPECT_EQ(eq.NewStream(1), 1u);
  EXPECT_EQ(eq.NewStream(2), 2u);
  EXPECT_EQ(eq.NewStream(5), 3u);  // home shard taken modulo shard count
  EXPECT_EQ(eq.shard_of(1), 1);
  EXPECT_EQ(eq.shard_of(2), 2);
  EXPECT_EQ(eq.shard_of(3), 1);

  ShardedEventQueue clamped_low(0);
  EXPECT_EQ(clamped_low.shard_count(), 1);
  ShardedEventQueue clamped_high(1000);
  EXPECT_EQ(clamped_high.shard_count(), 64);
}

TEST(ShardedQueue, BehavesLikeSerialQueueAtOneShard) {
  ShardedEventQueue eq(1, 50);
  std::vector<int> order;
  eq.ScheduleAt(300, [&] { order.push_back(3); });
  eq.ScheduleAt(100, [&] { order.push_back(1); });
  eq.ScheduleAt(200, [&] { order.push_back(2); });
  eq.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.fired_count(), 3u);
  EXPECT_TRUE(eq.empty());
}

// Equal-time events are ordered by (stream, seq): a lower stream id wins
// regardless of scheduling order. This is the key-order contract that
// makes the total order independent of shard count.
TEST(ShardedQueue, EqualTimesOrderByStreamThenSeq) {
  ShardedEventQueue eq(1, 50);  // one shard: execution order == key order
  EventQueue::StreamId s1 = eq.NewStream(0);
  std::vector<int> order;
  {
    EventQueue::StreamScope scope(&eq, s1);
    eq.ScheduleAt(10, [&] { order.push_back(10); });  // stream 1, seq 0
    eq.ScheduleAt(10, [&] { order.push_back(11); });  // stream 1, seq 1
  }
  eq.ScheduleAt(10, [&] { order.push_back(0); });  // stream 0, scheduled later
  eq.RunUntil(10);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
}

TEST(ShardedQueue, CurrentStreamFollowsScopeAndExecution) {
  ShardedEventQueue eq(2, 50);
  EventQueue::StreamId s1 = eq.NewStream(1);
  EXPECT_EQ(eq.current_stream(), 0u);
  EventQueue::StreamId seen = 999;
  {
    EventQueue::StreamScope scope(&eq, s1);
    EXPECT_EQ(eq.current_stream(), s1);
    eq.ScheduleAt(5, [&] { seen = eq.current_stream(); });
  }
  EXPECT_EQ(eq.current_stream(), 0u);
  eq.RunUntil(5);
  EXPECT_EQ(seen, s1);  // the event executed in its scheduling stream
}

TEST(ShardedQueue, CancelWorksAcrossShards) {
  ShardedEventQueue eq(4, 50);
  EventQueue::StreamId s1 = eq.NewStream(1);
  EventQueue::StreamId s2 = eq.NewStream(2);
  bool fired = false;
  EventQueue::EventId a;
  EventQueue::EventId b;
  {
    EventQueue::StreamScope scope(&eq, s1);
    a = eq.ScheduleAt(10, [&] { fired = true; });
  }
  {
    EventQueue::StreamScope scope(&eq, s2);
    b = eq.ScheduleAt(20, [] {});
  }
  EXPECT_NE(a, b);  // ids encode the home shard: distinct across shards
  EXPECT_EQ(eq.pending(), 2u);
  EXPECT_TRUE(eq.Cancel(a));
  EXPECT_FALSE(eq.Cancel(a));  // double cancel fails
  EXPECT_EQ(eq.pending(), 1u);
  eq.RunToCompletion();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(eq.Cancel(b));  // fired, no longer cancellable
  EXPECT_EQ(eq.fired_count(), 1u);
}

TEST(ShardedQueue, PeekAndStepSeeTheGlobalMinimum) {
  ShardedEventQueue eq(4, 50);
  EventQueue::StreamId s1 = eq.NewStream(1);
  EventQueue::StreamId s2 = eq.NewStream(2);
  std::vector<int> order;
  {
    EventQueue::StreamScope scope(&eq, s1);
    eq.ScheduleAt(30, [&] { order.push_back(30); });
  }
  {
    EventQueue::StreamScope scope(&eq, s2);
    eq.ScheduleAt(20, [&] { order.push_back(20); });
  }
  Cycles when = 0;
  ASSERT_TRUE(eq.PeekNext(&when));
  EXPECT_EQ(when, 20u);  // minimum across shards
  EXPECT_TRUE(eq.Step());
  EXPECT_EQ(order, (std::vector<int>{20}));
  EXPECT_EQ(eq.now(), 20u);
  EXPECT_TRUE(eq.Step());
  EXPECT_EQ(order, (std::vector<int>{20, 30}));
  EXPECT_FALSE(eq.Step());
}

TEST(ShardedQueue, RunUntilAdvancesTimeEvenWhenIdle) {
  ShardedEventQueue eq(4, 50);
  eq.RunUntil(12345);
  EXPECT_EQ(eq.now(), 12345u);
  // Main-context scheduling clamps to the committed floor.
  bool fired = false;
  eq.ScheduleAt(10, [&] { fired = true; });
  Cycles when = 0;
  ASSERT_TRUE(eq.PeekNext(&when));
  EXPECT_EQ(when, 12345u);
  eq.RunToCompletion();
  EXPECT_TRUE(fired);
}

TEST(ShardedQueue, NowRefTracksStreamZeroClock) {
  ShardedEventQueue eq(2, 50);
  const Cycles& clock = eq.now_ref();
  EXPECT_EQ(clock, 0u);
  eq.ScheduleAt(40, [] {});
  eq.RunUntil(100);
  EXPECT_EQ(clock, 100u);
}

TEST(ShardedQueue, WindowsRunInParallelWhenMultipleShardsHaveWork) {
  ShardedEventQueue eq(4, 1000);
  std::vector<int> counts(4, 0);
  for (int s = 1; s <= 3; ++s) {
    EventQueue::StreamId stream = eq.NewStream(s);
    EventQueue::StreamScope scope(&eq, stream);
    for (int i = 0; i < 5; ++i) {
      // Each stream records only into its own slot: no cross-shard state.
      eq.ScheduleAt(static_cast<Cycles>(10 + i), [&counts, s] { ++counts[static_cast<size_t>(s)]; });
    }
  }
  eq.RunUntil(2000);
  EXPECT_EQ(counts, (std::vector<int>{0, 5, 5, 5}));
  EXPECT_GE(eq.windows_run(), 1u);
  EXPECT_GE(eq.parallel_windows(), 1u);  // three shards shared one window
  EXPECT_EQ(eq.fired_count(), 15u);
}

// Sequenced transactions are the cross-shard channel: posted inside a
// parallel window they are deposited and drained at the boundary, in
// (when, stream, seq) order — the same order the bodies run inline in a
// serial execution — with the posting time passed as send_time.
TEST(ShardedQueue, SequencedTransactionsDrainInKeyOrder) {
  ShardedEventQueue eq(4, 1000);
  EventQueue::StreamId s1 = eq.NewStream(1);
  EventQueue::StreamId s2 = eq.NewStream(2);
  std::vector<std::pair<uint32_t, Cycles>> txns;  // (posting stream, send_time)
  auto post = [&eq, &txns](EventQueue::StreamId stream) {
    eq.PostSequenced([&txns, stream](Cycles send_time) {
      txns.push_back({stream, send_time});
    });
  };
  {
    // Schedule in "wrong" stream order; both events land in one window.
    EventQueue::StreamScope scope(&eq, s2);
    eq.ScheduleAt(10, [&post, s2] { post(s2); });
  }
  {
    EventQueue::StreamScope scope(&eq, s1);
    eq.ScheduleAt(10, [&post, s1] { post(s1); });
  }
  eq.RunUntil(2000);
  ASSERT_EQ(txns.size(), 2u);
  EXPECT_EQ(txns[0], (std::pair<uint32_t, Cycles>{s1, 10}));  // stream order, not post order
  EXPECT_EQ(txns[1], (std::pair<uint32_t, Cycles>{s2, 10}));
}

// Children of one sequenced transaction inherit its (stream, seq) and are
// ordered by minor index: deliveries fire in the order they were scheduled
// inside the body, even at equal times.
TEST(ShardedQueue, SequencedChildrenFireInMinorOrder) {
  ShardedEventQueue eq(2, 1000);
  EventQueue::StreamId s1 = eq.NewStream(1);
  std::vector<int> order;
  {
    EventQueue::StreamScope scope(&eq, s1);
    eq.ScheduleAt(10, [&] {
      eq.PostSequenced([&](Cycles send_time) {
        eq.ScheduleAt(send_time + 100, [&] { order.push_back(1); });
        eq.ScheduleAt(send_time + 100, [&] { order.push_back(2); });
        eq.ScheduleAt(send_time + 100, [&] { order.push_back(3); });
      });
    });
  }
  eq.RunUntil(2000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// The headline unit property: an identical scripted workload — ticking
// streams that reschedule themselves and post cross-stream transactions —
// produces the identical per-stream traces, transaction order, and final
// counters at every shard count.
struct ScriptTrace {
  std::vector<std::vector<int>> per_stream;
  std::vector<int> txn_order;
  uint64_t fired = 0;
  Cycles final_now = 0;
  // Scheduling effort, NOT part of the identity comparison: adaptive
  // lookahead runs fewer windows by design while producing the same trace.
  uint64_t windows = 0;

  bool operator==(const ScriptTrace& o) const {
    return per_stream == o.per_stream && txn_order == o.txn_order && fired == o.fired &&
           final_now == o.final_now;
  }
};

ScriptTrace RunScript(int shards, bool adaptive = false) {
  ShardedEventQueue eq(shards, /*lookahead=*/50, adaptive);
  constexpr int kStreams = 4;
  ScriptTrace tr;
  tr.per_stream.resize(kStreams);
  // Owns the self-rescheduling tick functions for the duration of the run;
  // the closures capture a raw pointer (a shared_ptr self-capture would be
  // a reference cycle and leak).
  std::vector<std::unique_ptr<std::function<void(int)>>> ticks;
  for (int i = 0; i < kStreams; ++i) {
    EventQueue::StreamId stream = eq.NewStream(1 + i);
    EventQueue::StreamScope scope(&eq, stream);
    ticks.push_back(std::make_unique<std::function<void(int)>>());
    std::function<void(int)>* tick = ticks.back().get();
    *tick = [&eq, &tr, i, tick](int n) {
      // Per-stream state only: each event touches its own trace vector.
      tr.per_stream[static_cast<size_t>(i)].push_back(n);
      if (n % 3 == 0) {
        // A cross-stream transaction (the shared-medium pattern). Bodies
        // run serially at window boundaries; appending to the global
        // trace is safe and its order is part of the determinism contract.
        eq.PostSequenced([&tr, i, n](Cycles) { tr.txn_order.push_back(i * 100 + n); });
      }
      if (n < 9) {
        eq.ScheduleAfter(static_cast<Cycles>(7 + i), [tick, n] { (*tick)(n + 1); });
      }
    };
    eq.ScheduleAt(static_cast<Cycles>(5 + i), [tick] { (*tick)(0); });
  }
  eq.RunUntil(500);
  tr.fired = eq.fired_count();
  tr.final_now = eq.now();
  tr.windows = eq.windows_run();
  return tr;
}

TEST(ShardedQueue, ScriptedWorkloadIsIdenticalAtEveryShardCount) {
  ScriptTrace base = RunScript(1);
  ASSERT_EQ(base.fired, 40u);  // 4 streams x 10 ticks
  ASSERT_EQ(base.txn_order.size(), 16u);
  for (int shards : {2, 3, 4, 8}) {
    ScriptTrace t = RunScript(shards);
    EXPECT_TRUE(t == base) << "shards=" << shards;
  }
}

// Adaptive lookahead: the identical trace (per-stream orders, transaction
// order, final clock) with strictly fewer scheduling windows — per-shard
// horizons let a shard run past t_min + L when no other shard can touch it.
TEST(ShardedQueue, AdaptiveLookaheadIsIdenticalWithFewerWindows) {
  ScriptTrace base = RunScript(1);
  for (int shards : {1, 2, 3, 4, 8}) {
    ScriptTrace conservative = RunScript(shards, /*adaptive=*/false);
    ScriptTrace adaptive = RunScript(shards, /*adaptive=*/true);
    EXPECT_TRUE(adaptive == base) << "shards=" << shards;
    EXPECT_LE(adaptive.windows, conservative.windows) << "shards=" << shards;
  }
}

// Where the collapse is strict: shards whose work is separated in time.
// A conservative scheduler grinds through a busy shard in t_min+L steps
// even though the only other shard cannot interact until much later; the
// adaptive horizon lets the busy shard run its whole phase in one window.
TEST(ShardedQueue, AdaptiveHorizonsCollapsePhaseSeparatedWindows) {
  auto run = [](bool adaptive) {
    ShardedEventQueue eq(4, /*lookahead=*/50, adaptive);
    EventQueue::StreamId early = eq.NewStream(1);
    EventQueue::StreamId late = eq.NewStream(2);
    int fired = 0;
    std::function<void()> tick = [&] {
      ++fired;
      if (eq.now() < 400) {
        eq.ScheduleAfter(7, [&tick] { tick(); });
      }
    };
    {
      EventQueue::StreamScope scope(&eq, early);
      eq.ScheduleAt(1, [&tick] { tick(); });
    }
    {
      EventQueue::StreamScope scope(&eq, late);
      eq.ScheduleAt(10000, [&fired] { fired += 1000; });
    }
    eq.RunUntil(20000);
    EXPECT_EQ(fired, 1058);  // 58 early ticks + the late event, any mode
    return eq.windows_run();
  };
  uint64_t conservative = run(false);
  uint64_t adaptive = run(true);
  // Conservative: one window per t_min+L step across the early phase.
  EXPECT_GE(conservative, 8u);
  // Adaptive: one window for the whole early phase, one for the late event.
  EXPECT_EQ(adaptive, 2u);
}

// The horizon computation itself, pinned as a pure function.
TEST(ShardedQueue, ComputeHorizonsConservativeIsUniformTMinPlusLookahead) {
  const Cycles kNone = ShardedEventQueue::kNoEvent;
  std::vector<Cycles> horizons;
  ShardedEventQueue::ComputeHorizons({100, 130, kNone}, 50, 1000, false, &horizons);
  EXPECT_EQ(horizons, (std::vector<Cycles>{150, 150, 150}));
  // The horizon is exclusive (events with when < H run), so it may reach
  // deadline + 1 but no further.
  ShardedEventQueue::ComputeHorizons({100, 130, kNone}, 50, 120, false, &horizons);
  EXPECT_EQ(horizons, (std::vector<Cycles>{121, 121, 121}));
}

TEST(ShardedQueue, ComputeHorizonsAdaptiveBoundsEachShardByTheOthers) {
  const Cycles kNone = ShardedEventQueue::kNoEvent;
  std::vector<Cycles> horizons;
  // Shard 0 is bounded by shard 1's earliest (130 + 50), shard 1 by shard
  // 0's (100 + 50); the empty shard never constrains anyone.
  ShardedEventQueue::ComputeHorizons({100, 130, kNone}, 50, 1000, true, &horizons);
  ASSERT_EQ(horizons.size(), 3u);
  EXPECT_EQ(horizons[0], 180u);
  EXPECT_EQ(horizons[1], 150u);
  // A shard alone with work runs straight to the deadline: no other shard
  // can reach it, so its horizon is the cap, not t_min + L.
  ShardedEventQueue::ComputeHorizons({200, kNone}, 50, 1000, true, &horizons);
  EXPECT_EQ(horizons[0], 1001u);
  // All empty: no window to bound.
  ShardedEventQueue::ComputeHorizons({kNone, kNone}, 50, 1000, true, &horizons);
  EXPECT_EQ(horizons, (std::vector<Cycles>{0, 0}));
}

}  // namespace
}  // namespace escort
