// Escort Auditor tests: the machine-checked resource-conservation layer
// (src/kernel/audit.h). Seeded violations — a leaked charge, a missing
// release, injected cycles — must be reported; clean teardowns and full
// end-to-end runs must pass with zero drift.

#include <gtest/gtest.h>

#include "src/kernel/audit.h"
#include "tests/testbed.h"

namespace escort {
namespace {

KernelConfig QuietConfig() {
  KernelConfig kc;
  kc.start_softclock = false;
  return kc;
}

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : kernel_(&eq_, QuietConfig()), scope_(&kernel_, /*enforce=*/false) {}

  Owner* MakeOwner(const std::string& name) {
    owners_.push_back(
        std::make_unique<Owner>(OwnerType::kPath, kernel_.NextOwnerId(), name));
    kernel_.RegisterOwner(owners_.back().get(), name);
    return owners_.back().get();
  }

  // Declaration order matters: scope_ is last so its destructor (which
  // runs the final conservation checks against the kernel) executes first,
  // while the owners it inspects are still alive.
  EventQueue eq_;
  Kernel kernel_;
  std::vector<std::unique_ptr<Owner>> owners_;
  AuditScope scope_;
};

TEST_F(AuditTest, LeakedKmemChargeIsReportedOnDestroy) {
  Owner* o = MakeOwner("leaky");
  // A charge with no matching release: the classic mis-accounting bug the
  // auditor exists to catch.
  kernel_.ChargeKmem(o, 123);
  kernel_.DestroyOwner(o, 0);

  ASSERT_FALSE(scope_.auditor().ok());
  EXPECT_EQ(scope_.auditor().violations().size(), 1u);
  EXPECT_EQ(scope_.auditor().violations()[0].check, "owner-drain/kmem_bytes");
  scope_.auditor().Clear();
}

TEST_F(AuditTest, MissingReleaseInCounterIsReportedOnDestroy) {
  Owner* o = MakeOwner("skewed");
  // Simulate a broken charge/track-list pairing: the counter says one page
  // is held but no page is on the tracking list, so reclamation cannot
  // find it and the counter never drains.
  o->usage().pages += 1;
  kernel_.DestroyOwner(o, 0);

  ASSERT_FALSE(scope_.auditor().ok());
  EXPECT_EQ(scope_.auditor().violations()[0].check, "owner-drain/pages");
  scope_.auditor().Clear();
}

TEST_F(AuditTest, CleanTeardownDrainsEveryResource) {
  Owner* o = MakeOwner("clean");
  kernel_.CreateThread(o, "worker");
  kernel_.CreateSemaphore(o, "sem", 1);
  kernel_.RegisterEvent(o, "tick", 1000, 0, 10, kKernelDomain, [] {});
  ASSERT_NE(kernel_.AllocPage(o), nullptr);
  ASSERT_NE(kernel_.AllocIoBuffer(o, 100, kKernelDomain, {kKernelDomain}), nullptr);

  kernel_.DestroyOwner(o, 0);
  EXPECT_TRUE(scope_.auditor().ok()) << scope_.auditor().Report();
}

TEST_F(AuditTest, ObjectConservationCrossChecksRegistries) {
  Owner* o = MakeOwner("live");
  // A live owner whose counter disagrees with the kernel-wide registry.
  o->usage().iobuffer_locks += 2;
  scope_.auditor().CheckConservation(kernel_);

  ASSERT_FALSE(scope_.auditor().ok());
  EXPECT_EQ(scope_.auditor().violations()[0].check, "object-conservation/iobuffer_locks");
  scope_.auditor().Clear();
}

TEST_F(AuditTest, InjectedCyclesBreakCycleConservation) {
  Owner* o = MakeOwner("cheater");
  Thread* t = kernel_.CreateThread(o, "t");
  t->Push(5000, kKernelDomain, nullptr);
  eq_.RunToCompletion();

  // Sanity: the untampered run conserves cycles exactly.
  scope_.auditor().CheckConservation(kernel_);
  ASSERT_TRUE(scope_.auditor().ok()) << scope_.auditor().Report();

  // Cycles charged with no elapsed time — a mis-charge the ledger cannot
  // hide from the conservation check.
  o->usage().cycles += 9999;
  scope_.auditor().CheckConservation(kernel_);
  ASSERT_FALSE(scope_.auditor().ok());
  EXPECT_EQ(scope_.auditor().violations()[0].check, "cycle-conservation");
  scope_.auditor().Clear();
}

using AuditDeathTest = AuditTest;

TEST_F(AuditDeathTest, EnforcingScopeAbortsOnSeededViolation) {
  EXPECT_DEATH(
      {
        EventQueue eq;
        Kernel kernel(&eq, QuietConfig());
        AuditScope scope(&kernel, /*enforce=*/true);
        Owner o(OwnerType::kPath, kernel.NextOwnerId(), "leaky");
        kernel.RegisterOwner(&o, "leaky");
        kernel.ChargeKmem(&o, 64);
        kernel.DestroyOwner(&o, 0);
        // Scope destruction enforces: report + abort.
      },
      "escort-audit");
}

// The Table 1 claim as a hard assertion over a fig8-style throughput run:
// every cycle of simulated time is charged to exactly one owner, in every
// server configuration, with zero drift.
class AuditConfigSweep : public ::testing::TestWithParam<ServerConfig> {};

TEST_P(AuditConfigSweep, CycleConservationExactOverThroughputRun) {
  Testbed tb(GetParam());
  std::vector<std::unique_ptr<HttpClient>> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(
        std::make_unique<HttpClient>(tb.AddClient(i), tb.server->options().ip, "/doc1k"));
    clients.back()->Start(CyclesFromMillis(i));
  }
  tb.RunFor(1.0);

  Kernel& kernel = tb.server->kernel();
  CycleLedger ledger = kernel.Snapshot();
  int64_t elapsed = static_cast<int64_t>(kernel.now() - kernel.start_time());
  EXPECT_EQ(static_cast<int64_t>(ledger.Total()) + kernel.UnsettledBusyCycles() -
                kernel.unsettled_at_reset(),
            elapsed);

  tb.audit->auditor().CheckConservation(kernel);
  EXPECT_TRUE(tb.audit->auditor().ok()) << tb.audit->auditor().Report();

  // The run did real work (not a vacuous conservation proof).
  uint64_t completed = 0;
  for (const auto& c : clients) {
    completed += c->completed();
  }
  EXPECT_GT(completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, AuditConfigSweep,
                         ::testing::Values(ServerConfig::kScout, ServerConfig::kAccounting,
                                           ServerConfig::kAccountingPd));

}  // namespace
}  // namespace escort
