// Boundary and lifetime tests for the TCP master-event timers.
//
// The master event scans every connection once per period. Two families of
// regressions are pinned here:
//
//  * Off-by-one at the scan boundary: a deadline landing exactly on a scan
//    tick must expire on THAT scan (`now >= deadline`), not one full master
//    event period later (`now > deadline`). The tests measure the actual
//    scan cadence from the running system, plant a deadline exactly on the
//    predicted next tick, and assert the action happens on that tick.
//
//  * Deferred-retransmit lifetime: the scan pushes the retransmit work
//    onto the path's thread as a closure that runs later. The closure must
//    not capture the raw TcpPcb* (the path — and the PCB it owns — can be
//    reclaimed, and the connection key even reincarnated, between scan and
//    execution). It captures the generation-tagged ConnHandle and the armed
//    deadline instead and revalidates through TcpModule::Resolve; a
//    reincarnated connection occupies a new slot generation, so the stale
//    closure resolves to nothing (see ReincarnatedKey... below).

#include <gtest/gtest.h>

#include <vector>

#include "src/workload/wire.h"
#include "tests/testbed.h"

namespace escort {
namespace {

constexpr Cycles kFarFuture = CyclesFromSeconds(100);

// Steps the queue one event at a time until the master event fires once
// more, and returns the simulated time of that scan (the event fires with
// kernel()->now() == eq.now() of the step that ran it).
Cycles StepToNextScan(Testbed* tb) {
  uint64_t n0 = tb->server->tcp()->master_event_fires();
  while (tb->server->tcp()->master_event_fires() == n0) {
    if (!tb->eq.Step()) {
      ADD_FAILURE() << "event queue drained before the next master scan";
      return 0;
    }
  }
  return tb->eq.now();
}

// Sends a bare SYN from the machine. The server answers SYN-ACK and holds
// the connection half-open: nothing ever ACKs the SYN-ACK, so the PCB sits
// in SYN-RCVD with one byte unacked and the retransmit timer armed —
// exactly the state every timer in the scan can be tested against.
TcpPcb* PlantHalfOpenConn(Testbed* tb, ClientMachine* m) {
  TcpHeader syn;
  syn.src_port = 5000;
  syn.dst_port = 80;
  syn.seq = 1;
  syn.flags = kTcpSyn;
  std::vector<uint8_t> frame = BuildTcpFrame(m->mac(), tb->server->options().mac, m->ip(),
                                             tb->server->options().ip, syn, {});
  m->Transmit(frame);
  tb->RunFor(0.005);  // deliver + SYN-ACK; before the first 10ms scan
  const auto& conns = tb->server->tcp()->conns();
  if (conns.size() != 1u) {
    ADD_FAILURE() << "expected exactly one half-open connection";
    return nullptr;
  }
  TcpPcb* pcb = tb->server->tcp()->Resolve(conns.begin()->second);
  EXPECT_EQ(pcb->state, TcpState::kSynRecvd);
  EXPECT_GT(pcb->BytesUnacked(), 0u);
  // Park both timers out of the way; each test re-plants the one it needs.
  pcb->syn_recvd_deadline = kFarFuture;
  pcb->retx_deadline = kFarFuture;
  return pcb;
}

// Measures the scan cadence until it is stable — the first scans carry
// startup transients (thread wake-up costs) — then returns the predicted
// time of the next scan. The prediction is asserted at use, so a cadence
// change fails loudly instead of silently skewing the test.
Cycles PredictNextScan(Testbed* tb) {
  Cycles prev = StepToNextScan(tb);
  Cycles delta = 0;
  for (int i = 0; i < 16; ++i) {
    Cycles t = StepToNextScan(tb);
    Cycles d = t - prev;
    prev = t;
    if (d == delta) {
      return t + delta;
    }
    delta = d;
  }
  ADD_FAILURE() << "master scan cadence did not settle within 16 scans";
  return 0;
}

TEST(TcpTimers, SynRecvdExpiresOnTheScanAtItsDeadline) {
  Testbed tb(ServerConfig::kAccounting);
  TcpPcb* pcb = PlantHalfOpenConn(&tb, tb.AddClient(0));
  ASSERT_NE(pcb, nullptr);

  Cycles t3 = PredictNextScan(&tb);
  // The deadline lands exactly on the next scan tick: `now >= deadline`
  // expires it on that scan; the pre-fix `now > deadline` slipped a full
  // master-event period.
  pcb->syn_recvd_deadline = t3;
  ASSERT_EQ(StepToNextScan(&tb), t3);
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
}

TEST(TcpTimers, TimeWaitReapsOnTheScanAtItsDeadline) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  HttpClient client(m, tb.server->options().ip, "/doc1b");
  client.max_requests = 1;
  client.Start();
  // Step to the completed request, then to the server side entering
  // TIME-WAIT (the FIN exchange trails the response by a few events).
  while (client.completed() == 0) {
    ASSERT_TRUE(tb.eq.Step());
  }
  ASSERT_EQ(tb.server->tcp()->conn_count(), 1u);
  TcpPcb* pcb = tb.server->tcp()->Resolve(tb.server->tcp()->conns().begin()->second);
  while (pcb->state != TcpState::kTimeWait) {
    ASSERT_TRUE(tb.eq.Step());
  }
  pcb->time_wait_deadline = kFarFuture;

  Cycles t3 = PredictNextScan(&tb);
  pcb->time_wait_deadline = t3;
  ASSERT_EQ(StepToNextScan(&tb), t3);
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
}

TEST(TcpTimers, RetransmitFiresOnTheScanAtItsDeadline) {
  Testbed tb(ServerConfig::kAccounting);
  TcpPcb* pcb = PlantHalfOpenConn(&tb, tb.AddClient(0));
  ASSERT_NE(pcb, nullptr);

  Cycles t3 = PredictNextScan(&tb);
  Cycles period = t3 - tb.eq.now();
  uint64_t base = tb.server->tcp()->total_retransmits();
  pcb->retx_deadline = t3;
  ASSERT_EQ(StepToNextScan(&tb), t3);
  // The scan pushed the retransmit closure onto the path's thread; it runs
  // within a few events — well before the next scan.
  Cycles cutoff = t3 + period / 2;
  while (tb.eq.now() < cutoff && tb.server->tcp()->total_retransmits() == base) {
    ASSERT_TRUE(tb.eq.Step());
  }
  EXPECT_EQ(tb.server->tcp()->total_retransmits(), base + 1);
  EXPECT_EQ(pcb->retransmits, 1u);
}

// The scan observed a due timer and queued the retransmit; before the
// closure runs, the timer re-arms (in production: an ACK arrived and new
// data was sent). The closure must notice the armed-deadline mismatch and
// retransmit nothing — the pre-fix closure fired a stale retransmit.
TEST(TcpTimers, StaleRetransmitClosureIsDroppedWhenTimerRearms) {
  Testbed tb(ServerConfig::kAccounting);
  TcpPcb* pcb = PlantHalfOpenConn(&tb, tb.AddClient(0));
  ASSERT_NE(pcb, nullptr);

  Cycles t3 = PredictNextScan(&tb);
  uint64_t base = tb.server->tcp()->total_retransmits();
  // One cycle before the tick: overdue under either boundary comparison,
  // so this test isolates the closure-staleness bug from the off-by-one.
  pcb->retx_deadline = t3 - 1;
  ASSERT_EQ(StepToNextScan(&tb), t3);  // closure queued on the path thread
  pcb->retx_deadline = t3 + CyclesFromMillis(500);  // re-armed before it runs
  StepToNextScan(&tb);  // a full period: the stale closure has executed
  EXPECT_EQ(tb.server->tcp()->total_retransmits(), base);
  EXPECT_EQ(pcb->retransmits, 0u);
}

// A connection dies and the same peer 4-tuple reconnects before a deferred
// closure armed against the old incarnation runs. The freed slab slot is
// re-issued to the new PCB — same index, bumped generation. The pre-fix
// revalidation (FindConn(key) plus a deadline comparison) resolves the NEW
// connection and, when the deadlines coincide, acts on it; the handle's
// generation tag makes the staleness check exact.
TEST(TcpTimers, ReincarnatedKeyDoesNotSatisfyStaleHandle) {
  Testbed tb(ServerConfig::kAccounting);
  ClientMachine* m = tb.AddClient(0);
  TcpPcb* pcb = PlantHalfOpenConn(&tb, m);
  ASSERT_NE(pcb, nullptr);
  ConnKey key = pcb->key;
  ConnHandle stale = pcb->self;
  Cycles armed_deadline = pcb->retx_deadline;
  tb.server->paths().Destroy(pcb->path);
  ASSERT_EQ(tb.server->tcp()->conn_count(), 0u);

  TcpPcb* again = PlantHalfOpenConn(&tb, m);  // same src port: same ConnKey
  ASSERT_NE(again, nullptr);
  ASSERT_EQ(again->self.index, stale.index);  // slot reused...
  EXPECT_NE(again->self.gen, stale.gen);      // ...under a new generation
  again->retx_deadline = armed_deadline;  // the coincidence key-capture fell for
  // Key-based revalidation finds the reincarnated connection — that is the
  // pre-fix bug surface. Handle-based revalidation refuses it.
  EXPECT_EQ(tb.server->tcp()->FindConn(key), again);
  EXPECT_EQ(tb.server->tcp()->Resolve(stale), nullptr);
}

// pathKill lands between the scan and the closure: the kernel reclaims the
// path unilaterally (no destructors), the kernel cleanup severs the
// conns_ entry, and reaping the retired path frees the PCB the pre-fix
// closure captured raw. In the current system the closure happens to die
// with the path's own thread pool, so the old capture was latent rather
// than reachable — this test pins the safe behavior (and ASan builds
// verify no freed memory is touched) so a future shared-thread dispatch
// cannot resurrect the use-after-free.
TEST(TcpTimers, RetransmitClosureSurvivesPathKill) {
  Testbed tb(ServerConfig::kAccounting);
  TcpPcb* pcb = PlantHalfOpenConn(&tb, tb.AddClient(0));
  ASSERT_NE(pcb, nullptr);

  Cycles t3 = PredictNextScan(&tb);
  uint64_t base = tb.server->tcp()->total_retransmits();
  pcb->retx_deadline = t3 - 1;  // overdue under either boundary comparison
  ASSERT_EQ(StepToNextScan(&tb), t3);  // closure queued on the path thread
  Path* path = pcb->path;
  tb.server->paths().Kill(path);
  tb.server->paths().ReapRetired();  // actually free the path and its PCB
  EXPECT_EQ(tb.server->tcp()->conn_count(), 0u);
  StepToNextScan(&tb);  // run well past where the closure would have fired
  EXPECT_EQ(tb.server->tcp()->total_retransmits(), base);
  EXPECT_EQ(tb.server->paths().killed_count(), 1u);
}

}  // namespace
}  // namespace escort
