// Unit tests for the deterministic stream->shard placement layer
// (src/workload/placement.h): mode parsing, actor enumeration, the legacy
// round-robin map, LPT weighted packing, and the profile-feedback path
// (parsing a prior run's bench JSON back into per-shard event counts).
// Placement is a pure function of the spec — determinism here is what
// lets a bench JSON spec reproduce its run exactly.

#include "src/workload/placement.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/experiment.h"

namespace escort {
namespace {

ExperimentSpec SpecWith(int clients, int cgi, bool qos, double syn_rate,
                        int shards, const std::string& doc = "/doc1k") {
  ExperimentSpec spec;
  spec.clients = clients;
  spec.cgi_attackers = cgi;
  spec.qos_stream = qos;
  spec.syn_attack_rate = syn_rate;
  spec.shards = shards;
  spec.doc = doc;
  return spec;
}

TEST(Placement, ModeNamesRoundTrip) {
  for (PlacementMode mode : {PlacementMode::kRoundRobin, PlacementMode::kWeighted,
                             PlacementMode::kProfile}) {
    PlacementMode parsed = PlacementMode::kRoundRobin;
    EXPECT_TRUE(ParsePlacementMode(PlacementModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  PlacementMode parsed = PlacementMode::kRoundRobin;
  EXPECT_FALSE(ParsePlacementMode("balanced", &parsed));
  EXPECT_FALSE(ParsePlacementMode("", &parsed));
}

TEST(Placement, ActorCountMatchesTestbedConstructionOrder) {
  EXPECT_EQ(ActorCount(SpecWith(0, 0, false, 0.0, 1)), 0);
  EXPECT_EQ(ActorCount(SpecWith(8, 0, false, 0.0, 1)), 8);
  // clients + cgi attackers + qos machine + syn attacker.
  EXPECT_EQ(ActorCount(SpecWith(4, 2, true, 800.0, 1)), 8);
}

TEST(Placement, WeightsFollowTheSpec) {
  // Bigger documents make heavier clients (more wire events per fetch).
  std::vector<uint64_t> small = ActorWeights(SpecWith(1, 0, false, 0.0, 4, "/doc1b"));
  std::vector<uint64_t> large = ActorWeights(SpecWith(1, 0, false, 0.0, 4, "/doc10k"));
  ASSERT_EQ(small.size(), 1u);
  ASSERT_EQ(large.size(), 1u);
  EXPECT_LT(small[0], large[0]);
  // A SYN flood's weight scales with its rate and is listed last.
  std::vector<uint64_t> slow = ActorWeights(SpecWith(0, 0, false, 100.0, 4));
  std::vector<uint64_t> fast = ActorWeights(SpecWith(0, 0, false, 4000.0, 4));
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_LT(slow[0], fast[0]);
}

TEST(Placement, RoundRobinMatchesTheLegacyFormula) {
  ExperimentSpec spec = SpecWith(7, 0, false, 0.0, 4);
  std::vector<int> map = ComputePlacement(spec);
  ASSERT_EQ(map.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    // Lanes 1..shards-1; shard 0 stays with the server/kernel.
    EXPECT_EQ(map[static_cast<size_t>(i)], 1 + i % 3) << "actor " << i;
  }
}

TEST(Placement, SingleShardMapsEveryActorToShardZero) {
  for (PlacementMode mode : {PlacementMode::kRoundRobin, PlacementMode::kWeighted}) {
    ExperimentSpec spec = SpecWith(5, 1, true, 0.0, 1);
    spec.placement = mode;
    std::vector<int> map = ComputePlacement(spec);
    ASSERT_EQ(map.size(), 7u);
    EXPECT_TRUE(std::all_of(map.begin(), map.end(), [](int s) { return s == 0; }));
  }
}

TEST(Placement, WeightedPackingIsDeterministicAndBounded) {
  ExperimentSpec spec = SpecWith(8, 2, true, 800.0, 4);
  spec.placement = PlacementMode::kWeighted;
  std::vector<int> map = ComputePlacement(spec);
  ASSERT_EQ(map.size(), static_cast<size_t>(ActorCount(spec)));
  // Same spec, same map — placement is a pure function.
  EXPECT_EQ(map, ComputePlacement(spec));
  // Every actor lands on a worker lane (never shard 0, never >= shards).
  for (int shard : map) {
    EXPECT_GE(shard, 1);
    EXPECT_LT(shard, 4);
  }
  // LPT bound: no lane's load exceeds any other's by more than the
  // heaviest single weight.
  std::vector<uint64_t> weights = ActorWeights(spec);
  std::vector<uint64_t> load(4, 0);
  uint64_t heaviest = *std::max_element(weights.begin(), weights.end());
  for (size_t i = 0; i < map.size(); ++i) {
    load[static_cast<size_t>(map[i])] += weights[i];
  }
  uint64_t lo = *std::min_element(load.begin() + 1, load.end());
  uint64_t hi = *std::max_element(load.begin() + 1, load.end());
  EXPECT_LE(hi - lo, heaviest);
}

TEST(Placement, ProfileModeUsesPriorCountsAndFallsBackToSpecWeights) {
  ExperimentSpec spec = SpecWith(6, 0, false, 0.0, 4);
  spec.placement = PlacementMode::kProfile;
  // Prior 4-shard rr run: lane 1 did most of the firing, so its former
  // residents (actors 0 and 3) are the heaviest and must spread apart.
  spec.profile_shard_events = {9000, 6000, 300, 300};
  std::vector<int> with_profile = ComputePlacement(spec);
  ASSERT_EQ(with_profile.size(), 6u);
  EXPECT_EQ(with_profile, ComputePlacement(spec));  // deterministic
  EXPECT_NE(with_profile[0], with_profile[3]);
  // No usable profile (fewer than 2 shard entries): spec weights take
  // over — for identical clients that degenerates to an even spread.
  spec.profile_shard_events = {9000};
  std::vector<int> fallback = ComputePlacement(spec);
  std::vector<int> counts(4, 0);
  for (int shard : fallback) {
    ++counts[static_cast<size_t>(shard)];
  }
  EXPECT_EQ(counts, (std::vector<int>{0, 2, 2, 2}));
}

TEST(Placement, ParseProfileShardEventsReadsTheSerializerFormat) {
  // The exact key shapes Sweep::ToJson emits, over two cells; the second
  // cell has no per_shard block (a failed cell) and must be skipped.
  const std::string json =
      "{\n"
      " \"cells\": [\n"
      "  {\"id\": \"doc1b/acct/c8\",\n"
      "   \"shard_utilization\": {\"windows_run\": 12, \"per_shard\": ["
      "{\"shard\": 0, \"events_fired\": 4100, \"windows_active\": 9},"
      " {\"shard\": 1, \"events_fired\": 900, \"windows_active\": 7}]}},\n"
      "  {\"id\": \"doc1b/acct/failing\", \"error\": \"boom\"}\n"
      " ]\n"
      "}\n";
  std::map<std::string, std::vector<uint64_t>> profile = ParseProfileShardEvents(json);
  ASSERT_EQ(profile.size(), 1u);
  ASSERT_TRUE(profile.count("doc1b/acct/c8"));
  EXPECT_EQ(profile["doc1b/acct/c8"], (std::vector<uint64_t>{4100, 900}));
  EXPECT_TRUE(ParseProfileShardEvents("").empty());
  EXPECT_TRUE(ParseProfileShardEvents("{\"cells\": []}").empty());
}

}  // namespace
}  // namespace escort
