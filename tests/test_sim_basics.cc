#include <gtest/gtest.h>

#include "src/sim/cost_model.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/sim/types.h"

namespace escort {
namespace {

TEST(Cycles, Conversions) {
  EXPECT_EQ(CyclesFromSeconds(1.0), kCpuHz);
  EXPECT_EQ(CyclesFromMillis(1.0), kCpuHz / 1000);
  EXPECT_EQ(CyclesFromMicros(1.0), kCpuHz / 1'000'000);
  EXPECT_DOUBLE_EQ(SecondsFromCycles(kCpuHz), 1.0);
  EXPECT_DOUBLE_EQ(MillisFromCycles(kCpuHz / 2), 500.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RateMeter, WindowedRate) {
  RateMeter meter;
  meter.Record(0);
  meter.OpenWindow(CyclesFromSeconds(1.0));
  for (int i = 0; i < 100; ++i) {
    meter.Record(CyclesFromSeconds(1.0) + static_cast<Cycles>(i));
  }
  double rate = meter.CloseWindow(CyclesFromSeconds(3.0));
  EXPECT_NEAR(rate, 50.0, 1e-9);  // 100 events over 2 seconds
  EXPECT_EQ(meter.total(), 101u);
}

TEST(ThroughputMeter, BytesPerSecond) {
  ThroughputMeter meter;
  meter.OpenWindow(0);
  meter.Record(CyclesFromSeconds(0.5), 1000);
  meter.Record(CyclesFromSeconds(1.5), 3000);
  EXPECT_NEAR(meter.CloseWindowBytesPerSec(CyclesFromSeconds(2.0)), 2000.0, 1e-9);
}

TEST(Samples, Statistics) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
  EXPECT_NEAR(s.StdDev(), 1.5811, 1e-3);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(99), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(Samples, PercentileBoundaries) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 17.5);  // linear interpolation
}

// Regression: p outside [0,100] used to produce a negative rank, which
// cast to a huge size_t and read out of bounds. The domain is clamped.
TEST(Samples, PercentileOutOfRangeIsClamped) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-1e9), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1e9), 30.0);
}

TEST(Samples, PercentileSingleSample) {
  Samples s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(-3), 42.0);
  EXPECT_DOUBLE_EQ(s.Percentile(101), 42.0);
}

TEST(Stats, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1123195), "1,123,195");
  EXPECT_EQ(WithCommas(402031), "402,031");
}

TEST(CostModel, CalibratedSingleton) {
  const CostModel& a = CostModel::Calibrated();
  const CostModel& b = CostModel::Calibrated();
  EXPECT_EQ(&a, &b);
  EXPECT_GT(a.pd_crossing, a.accounting_op);
  EXPECT_EQ(a.max_thread_run_default, CyclesFromMillis(2.0));
}

}  // namespace
}  // namespace escort
