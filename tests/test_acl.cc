// Role-based ACL tests (paper §2.5 enforcement level 1; §3: 52 syscalls).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/kernel/acl.h"
#include "src/kernel/kernel.h"

namespace escort {
namespace {

TEST(Acl, ExactlyFiftyTwoSyscalls) {
  EXPECT_EQ(kNumSyscalls, 52);
  // Every syscall has a distinct non-"invalid" name.
  std::set<std::string> names;
  for (int i = 0; i < kNumSyscalls; ++i) {
    std::string n = SyscallName(static_cast<Syscall>(i));
    EXPECT_NE(n, "invalid");
    names.insert(n);
  }
  EXPECT_EQ(names.size(), 52u);
}

TEST(Acl, PrivilegedDomainMayCallEverything) {
  AclTable acl;
  Role priv{kKernelDomain, OwnerType::kKernel};
  for (int i = 0; i < kNumSyscalls; ++i) {
    EXPECT_TRUE(acl.Allows(priv, static_cast<Syscall>(i)));
  }
}

TEST(Acl, UnprivilegedDomainDeniedDeviceAndPageCalls) {
  AclTable acl;
  Role user{3, OwnerType::kPath};
  EXPECT_FALSE(acl.Allows(user, Syscall::kPageAlloc));
  EXPECT_FALSE(acl.Allows(user, Syscall::kDevWrite));
  EXPECT_FALSE(acl.Allows(user, Syscall::kOwnerDestroy));
  EXPECT_FALSE(acl.Allows(user, Syscall::kPathKill));
  // But common object calls pass.
  EXPECT_TRUE(acl.Allows(user, Syscall::kPathCreate));
  EXPECT_TRUE(acl.Allows(user, Syscall::kIobAlloc));
  EXPECT_TRUE(acl.Allows(user, Syscall::kSemP));
  EXPECT_TRUE(acl.Allows(user, Syscall::kHeapAlloc));
  EXPECT_TRUE(acl.Allows(user, Syscall::kConsoleWrite));
  EXPECT_TRUE(acl.Allows(user, Syscall::kGetTime));
}

TEST(Acl, GrantAllowsSpecificDomain) {
  AclTable acl;
  Role driver{5, OwnerType::kProtectionDomain};
  Role other{6, OwnerType::kProtectionDomain};
  acl.Grant(5, Syscall::kDevWrite);
  acl.Grant(5, Syscall::kDevInterruptRegister);
  EXPECT_TRUE(acl.Allows(driver, Syscall::kDevWrite));
  EXPECT_TRUE(acl.Allows(driver, Syscall::kDevInterruptRegister));
  EXPECT_FALSE(acl.Allows(other, Syscall::kDevWrite));
}

TEST(Acl, RevokeDeniesDefaultAllowedCall) {
  AclTable acl;
  Role sandboxed{7, OwnerType::kPath};
  EXPECT_TRUE(acl.Allows(sandboxed, Syscall::kPathCreate));
  acl.Revoke(7, Syscall::kPathCreate);
  EXPECT_FALSE(acl.Allows(sandboxed, Syscall::kPathCreate));
  // Re-granting restores.
  acl.Grant(7, Syscall::kPathCreate);
  EXPECT_TRUE(acl.Allows(sandboxed, Syscall::kPathCreate));
}

TEST(Acl, KernelCheckCountsDenials) {
  EventQueue eq;
  KernelConfig kc;
  kc.start_softclock = false;
  kc.protection_domains = true;
  Kernel kernel(&eq, kc);
  ProtectionDomain* pd = kernel.CreateDomain("mod");
  EXPECT_TRUE(kernel.CheckSyscall(pd->pd_id(), Syscall::kIobAlloc));
  EXPECT_FALSE(kernel.CheckSyscall(pd->pd_id(), Syscall::kDevControl));
  EXPECT_EQ(kernel.acl().denied_count(), 1u);
}

}  // namespace
}  // namespace escort
